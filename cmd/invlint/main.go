// Command invlint runs the repository's invariant analyzer suite
// (internal/lint) over the module and prints vet-style findings.
//
// Usage:
//
//	invlint [dir ...]
//
// With no arguments (or the conventional "./...") the whole module is
// analyzed. Directory arguments restrict analysis to those packages
// plus their intra-module dependencies. The exit status is 0 when the
// tree is clean, 1 when any finding (or malformed //lint:ignore
// directive) is reported, and 2 when the module cannot be loaded.
//
// The enforced invariants are cataloged in docs/ANALYSIS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"github.com/dcdb/wintermute/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: invlint [-list] [dir ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "invlint:", err)
		os.Exit(2)
	}
	var dirs []string
	for _, arg := range flag.Args() {
		if arg == "./..." || arg == "..." {
			continue // module-wide, the default
		}
		dirs = append(dirs, filepath.Clean(arg))
	}

	m, err := lint.Load(root, dirs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "invlint:", err)
		os.Exit(2)
	}

	findings := lint.RunAll(m, analyzers)
	findings = append(findings, lint.BadDirectives(m)...)
	for _, f := range findings {
		fmt.Println(relativize(root, f))
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

// moduleRoot walks upward from the working directory to the nearest
// go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above the working directory")
		}
		dir = parent
	}
}

// relativize renders a finding with a module-relative path so output is
// stable across checkouts.
func relativize(root string, f lint.Finding) string {
	if rel, err := filepath.Rel(root, f.Pos.Filename); err == nil && !filepath.IsAbs(rel) {
		f.Pos.Filename = rel
	}
	return f.String()
}
