// Command dcdbconfig is the control CLI for DCDB components, wrapping the
// RESTful API of Pushers and Collect Agents (paper §V-A: requests "can
// instruct the manager to start, stop, or load plugins dynamically, as
// well as triggering specific actions on a per-plugin basis").
//
// Usage:
//
//	dcdbconfig -host 127.0.0.1:8080 sensors [prefix]
//	dcdbconfig -host H operators
//	dcdbconfig -host H units <operator>
//	dcdbconfig -host H query <sensor> [lookback]
//	dcdbconfig -host H average <sensor> [window]
//	dcdbconfig -host H compute <operator> [unit]
//	dcdbconfig -host H start|stop <operator>
//	dcdbconfig -host H load <plugin> <config.json>
//	dcdbconfig -host H unload <plugin>
//	dcdbconfig -host H plugins
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"os"
	"strings"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dcdbconfig: ")
	host := flag.String("host", "127.0.0.1:8080", "REST endpoint of the target component")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	cmd, args := args[0], args[1:]
	base := "http://" + *host

	get := func(path string) { show(http.Get(base + path)) }
	post := func(path string, body io.Reader) {
		resp, err := http.Post(base+path, "application/json", body)
		show(resp, err)
	}

	switch cmd {
	case "sensors":
		q := ""
		if len(args) > 0 {
			q = "?prefix=" + url.QueryEscape(args[0])
		}
		get("/sensors" + q)
	case "plugins":
		get("/plugins")
	case "operators":
		get("/operators")
	case "units":
		need(args, 1, "units <operator>")
		get("/units?operator=" + url.QueryEscape(args[0]))
	case "query":
		need(args, 1, "query <sensor> [lookback]")
		q := "/query?sensor=" + url.QueryEscape(args[0])
		if len(args) > 1 {
			q += "&lookback=" + url.QueryEscape(args[1])
		}
		get(q)
	case "average":
		need(args, 1, "average <sensor> [window]")
		q := "/average?sensor=" + url.QueryEscape(args[0])
		if len(args) > 1 {
			q += "&window=" + url.QueryEscape(args[1])
		}
		get(q)
	case "compute":
		need(args, 1, "compute <operator> [unit]")
		q := "/compute?operator=" + url.QueryEscape(args[0])
		if len(args) > 1 {
			q += "&unit=" + url.QueryEscape(args[1])
		}
		post(q, nil)
	case "start", "stop":
		need(args, 1, cmd+" <operator>")
		post("/operators/"+cmd+"?operator="+url.QueryEscape(args[0]), nil)
	case "load":
		need(args, 2, "load <plugin> <config.json>")
		raw, err := os.ReadFile(args[1])
		if err != nil {
			log.Fatal(err)
		}
		post("/plugins/load?plugin="+url.QueryEscape(args[0]), strings.NewReader(string(raw)))
	case "unload":
		need(args, 1, "unload <plugin>")
		post("/plugins/unload?plugin="+url.QueryEscape(args[0]), nil)
	default:
		log.Fatalf("unknown command %q", cmd)
	}
}

func need(args []string, n int, usage string) {
	if len(args) < n {
		log.Fatalf("usage: dcdbconfig %s", usage)
	}
}

func show(resp *http.Response, err error) {
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(strings.TrimSpace(string(body)))
	if resp.StatusCode >= 400 {
		os.Exit(1)
	}
}
