// Command dcdbpusher runs a DCDB Pusher daemon: it samples sensors from
// monitoring plugins (here: the simulated hardware backends and the tester
// plugin), hosts the Wintermute ODA framework, exposes the RESTful API and
// forwards readings to a Collect Agent over the MQTT-style transport.
//
// Usage:
//
//	dcdbpusher -node /r01/c01/s01/ -app hpl -mqtt 127.0.0.1:1883 \
//	           -http 127.0.0.1:8080 -config wintermute.json
//
// The -config file is a Wintermute configuration:
//
//	{"plugins": [{"plugin": "aggregator", "config": {...}}]}
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/dcdb/wintermute/internal/core"
	_ "github.com/dcdb/wintermute/internal/plugins/all"
	"github.com/dcdb/wintermute/internal/pusher"
	"github.com/dcdb/wintermute/internal/rest"
	"github.com/dcdb/wintermute/internal/samplers"
	"github.com/dcdb/wintermute/internal/sensor"
	"github.com/dcdb/wintermute/internal/sim/hardware"
	"github.com/dcdb/wintermute/internal/sim/workload"
	"github.com/dcdb/wintermute/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dcdbpusher: ")
	var (
		nodePath   = flag.String("node", "/r01/c01/s01/", "component path of this node in the sensor tree")
		app        = flag.String("app", "idle", "simulated application (hpl, lammps, amg, kripke, nekbone, idle)")
		cores      = flag.Int("cores", 16, "simulated cores")
		mqttAddr   = flag.String("mqtt", "", "collect agent broker address (empty: standalone)")
		spool      = flag.Int("spool", 256, "at-least-once spool size in batches (0: fire-and-forget forwarding)")
		spoolDir   = flag.String("spool-dir", "", "on-disk spool overflow directory (empty: memory-only spool)")
		ackTimeout = flag.Duration("ack-timeout", 0, "broker acknowledgement timeout (0: transport default, 5s)")
		retryMin   = flag.Duration("retry-min", 0, "initial reconnect backoff (0: transport default, 50ms)")
		retryMax   = flag.Duration("retry-max", 0, "reconnect backoff ceiling (0: transport default, 2s)")
		drainTO    = flag.Duration("drain-timeout", 0, "shutdown spool drain bound (0: transport default, 5s)")
		httpAddr   = flag.String("http", "127.0.0.1:0", "REST API listen address")
		interval   = flag.Duration("interval", time.Second, "sampling interval")
		retention  = flag.Duration("retention", 180*time.Second, "sensor cache retention")
		configPath = flag.String("config", "", "Wintermute plugin configuration (JSON)")
		testers    = flag.Int("testers", 0, "additional tester sensors (monotonic counters)")
		threads    = flag.Int("threads", 0, "Wintermute worker pool size (0: GOMAXPROCS)")
		seed       = flag.Int64("seed", 1, "simulation seed")
		debugAddr  = flag.String("debug-addr", "", "diagnostics listen address (pprof + /metrics; keep off the public port)")
		slowQuery  = flag.Duration("slow-query", 0, "log REST requests running at or over this duration (0: off)")
	)
	flag.Parse()

	p, err := pusher.New(pusher.Config{
		Name:           *nodePath,
		CacheRetention: *retention,
		MQTTAddr:       *mqttAddr,
		Spool:          *spool,
		SpoolDir:       *spoolDir,
		AckTimeout:     *ackTimeout,
		RetryMin:       *retryMin,
		RetryMax:       *retryMax,
		DrainTimeout:   *drainTO,
		Threads:        *threads,
		Metrics:        telemetry.Default,
	})
	if err != nil {
		log.Fatal(err)
	}
	p.Manager.EnableTelemetry(telemetry.Default)

	node := hardware.NewNode(hardware.Config{Cores: *cores, Seed: *seed})
	node.SetApp(workload.MustNew(*app, *seed, 1e9), time.Now().UnixNano())
	path := sensor.Topic(*nodePath)
	for _, s := range []samplers.Sampler{
		samplers.NewPowerSim(node, path, *interval),
		samplers.NewProcSim(node, path, *interval),
		samplers.NewPerfSim(node, path, *interval),
	} {
		if err := p.AddSampler(s); err != nil {
			log.Fatal(err)
		}
	}
	if *testers > 0 {
		if err := p.AddSampler(samplers.NewTester("tester", path, *testers, *interval)); err != nil {
			log.Fatal(err)
		}
	}

	if *configPath != "" {
		raw, err := os.ReadFile(*configPath)
		if err != nil {
			log.Fatal(err)
		}
		var cfg core.Config
		if err := json.Unmarshal(raw, &cfg); err != nil {
			log.Fatalf("parsing %s: %v", *configPath, err)
		}
		if err := p.Manager.LoadConfig(cfg); err != nil {
			log.Fatal(err)
		}
		// An explicit -threads flag beats the config file's threads field.
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "threads" && *threads > 0 {
				p.Manager.SetThreads(*threads)
			}
		})
	}

	srv, err := rest.Serve(*httpAddr, p.Manager, p.QE, rest.Options{
		Metrics:   telemetry.Default,
		SlowQuery: *slowQuery,
	})
	if err != nil {
		log.Fatal(err)
	}
	var dbg *rest.DebugServer
	if *debugAddr != "" {
		dbg, err = rest.ServeDebug(*debugAddr, telemetry.Default)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("diagnostics (pprof + /metrics) on http://%s", dbg.Addr())
	}
	p.Start()
	log.Printf("node %s running %s on %d cores; REST on http://%s; %d sensors; %d wintermute threads",
		*nodePath, *app, *cores, srv.Addr(), p.Nav.NumSensors(), p.Manager.Threads())
	fmt.Printf("REST: http://%s\n", srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("shutting down")
	p.Stop()
	if dbg != nil {
		_ = dbg.Close()
	}
	_ = srv.Close()
}
