// benchjson implements `benchrunner -bench-json <file>`: it re-runs the
// repository's hot-path benchmark pairs through testing.Benchmark and
// writes the results as machine-readable JSON, starting the per-PR
// performance trajectory (BENCH_PR2.json and successors).
//
// The workloads deliberately mirror the pairs in the repository's
// bench_test.go (which, as a test file, cannot be imported here); when
// changing a workload shape, change both so the JSON trajectory stays
// comparable to `make bench`.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/dcdb/wintermute/internal/cache"
	"github.com/dcdb/wintermute/internal/collect"
	"github.com/dcdb/wintermute/internal/core"
	"github.com/dcdb/wintermute/internal/core/units"
	"github.com/dcdb/wintermute/internal/navigator"
	"github.com/dcdb/wintermute/internal/plugins/aggregator"
	"github.com/dcdb/wintermute/internal/rest"
	"github.com/dcdb/wintermute/internal/resultcache"
	"github.com/dcdb/wintermute/internal/sensor"
	"github.com/dcdb/wintermute/internal/store"
	"github.com/dcdb/wintermute/internal/telemetry"
	"github.com/dcdb/wintermute/internal/transport"
	"github.com/dcdb/wintermute/internal/tsdb"
)

type benchResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

// storageAcceptance is the PR3 acceptance scenario measured end to end:
// a persistent backend fed >=100k readings across >=64 topics, flushed,
// killed without Close, reopened, verified identical — with the
// amortised on-disk footprint per reading.
type storageAcceptance struct {
	Topics          int     `json:"topics"`
	Readings        int     `json:"readings"`
	DiskBytes       int64   `json:"disk_bytes"`
	BytesPerReading float64 `json:"bytes_per_reading"`
	RecoveryMs      float64 `json:"recovery_ms"`
	RecoveredSame   bool    `json:"recovered_identical"`
}

// ingestAcceptance is the PR5 acceptance scenario: sustained concurrent
// InsertBatch throughput at 16 writers with WAL sync enabled, pre-PR
// path (single-lock WAL, one fsync per batch, global head resolution)
// vs group-commit WAL + sharded head map (acceptance: >=4x), plus the
// single-writer sanity pair.
type ingestAcceptance struct {
	Writers        int     `json:"writers"`
	BatchLen       int     `json:"batch_len"`
	LegacyNsPerOp  float64 `json:"legacy_ns_per_op"`
	GroupedNsPerOp float64 `json:"grouped_ns_per_op"`
	Speedup        float64 `json:"speedup"`
	SyncEnabled    bool    `json:"wal_sync"`
}

// aggAcceptance is the PR4 acceptance scenario: an aggregate over 100k+
// readings across 64 topics answered by the chunk-metadata engine vs
// the naive Range+reduce path, with the measured speedup and allocation
// ratio (acceptance: >=5x and >=10x) and a result-equivalence check.
type aggAcceptance struct {
	Topics       int     `json:"topics"`
	Readings     int     `json:"readings"`
	NaiveNsPerOp float64 `json:"naive_ns_per_op"`
	NaiveAllocs  int64   `json:"naive_allocs_per_op"`
	EngineNs     float64 `json:"engine_ns_per_op"`
	EngineAllocs int64   `json:"engine_allocs_per_op"`
	Speedup      float64 `json:"speedup"`
	AllocRatio   float64 `json:"alloc_ratio"`
	Equivalent   bool    `json:"results_equivalent"`
}

// servingAcceptance is the PR7 acceptance scenario: a hot dashboard
// wildcard aggregate (64 sensors, step-aligned absolute window) served
// end to end through the REST handler while a writer keeps ingesting
// in-order readings beyond the window — uncached recompute vs the
// result cache revalidated against the ingest frontier (acceptance:
// >=5x, responses byte-identical), plus '#' expansion of one 8-sensor
// rack with the sorted prefix index vs the linear fallback at 64- and
// 4096-topic namespaces (acceptance: indexed cost independent of
// namespace size).
type servingAcceptance struct {
	Topics           int     `json:"topics"`
	ReadingsPerTopic int     `json:"readings_per_topic"`
	UncachedNsPerOp  float64 `json:"uncached_ns_per_op"`
	CachedNsPerOp    float64 `json:"cached_ns_per_op"`
	Speedup          float64 `json:"speedup"`
	Equivalent       bool    `json:"responses_equivalent"`
	Indexed64Ns      float64 `json:"wildcard_indexed_64_ns"`
	Indexed4096Ns    float64 `json:"wildcard_indexed_4096_ns"`
	IndexedRatio     float64 `json:"wildcard_indexed_ratio"`
	Linear64Ns       float64 `json:"wildcard_linear_64_ns"`
	Linear4096Ns     float64 `json:"wildcard_linear_4096_ns"`
	LinearRatio      float64 `json:"wildcard_linear_ratio"`
}

// telemetryAcceptance pins the PR8 self-telemetry overhead bound: the
// instrumented hot paths (the PR5 grouped-ingest shape and the PR7
// cached dashboard round trip) re-run with a registry attached, once
// with the global telemetry switch off and once on. Acceptance: the on
// side within 2% of the off side on both scenarios.
type telemetryAcceptance struct {
	IngestOffNsPerOp     float64 `json:"ingest_off_ns_per_op"`
	IngestOnNsPerOp      float64 `json:"ingest_on_ns_per_op"`
	IngestOverheadPct    float64 `json:"ingest_overhead_pct"`
	DashboardOffNsPerOp  float64 `json:"dashboard_off_ns_per_op"`
	DashboardOnNsPerOp   float64 `json:"dashboard_on_ns_per_op"`
	DashboardOverheadPct float64 `json:"dashboard_overhead_pct"`
}

// deliveryAcceptance pins the PR10 at-least-once overhead bound: the
// publish->local-delivery pair, fire-and-forget v1 frames vs the
// spooled acked v2 path, on a healthy connection (acceptance: acked
// within 5% of unacked), with the acked side's drain bookkeeping —
// every published batch acknowledged, Close returning clean.
type deliveryAcceptance struct {
	UnackedNsPerOp float64 `json:"unacked_ns_per_op"`
	AckedNsPerOp   float64 `json:"acked_ns_per_op"`
	OverheadPct    float64 `json:"overhead_pct"`
	AckedBatches   uint64  `json:"acked_batches"`
	CleanDrain     bool    `json:"clean_drain"`
}

type benchReport struct {
	PR          int                  `json:"pr"`
	Note        string               `json:"note"`
	Benchmarks  []benchResult        `json:"benchmarks"`
	Storage     *storageAcceptance   `json:"storage,omitempty"`
	Aggregation *aggAcceptance       `json:"aggregation,omitempty"`
	Ingest      *ingestAcceptance    `json:"ingest,omitempty"`
	Serving     *servingAcceptance   `json:"serving,omitempty"`
	Telemetry   *telemetryAcceptance `json:"telemetry,omitempty"`
	Delivery    *deliveryAcceptance  `json:"delivery,omitempty"`
}

const benchSec = int64(time.Second)

// warmCache fills one cache with 180 s of ramp history in a single
// batched store.
func warmCache(c *cache.Cache) {
	rs := make([]sensor.Reading, 180)
	for k := range rs {
		rs[k] = sensor.Reading{Value: float64(k), Time: int64(k) * benchSec}
	}
	c.StoreBatch(rs)
}

// queryEnv builds one warm cached sensor.
func queryEnv() *core.QueryEngine {
	nav := navigator.New()
	caches := cache.NewSet()
	_ = nav.AddSensor("/n/power")
	warmCache(caches.GetOrCreate("/n/power", 180, time.Second))
	return core.NewQueryEngine(nav, caches, nil)
}

// tickEnv builds an aggregator over 64 warm node units.
func tickEnv(nodes int) (*core.QueryEngine, *aggregator.Operator, core.Sink, error) {
	nav := navigator.New()
	caches := cache.NewSet()
	for n := 0; n < nodes; n++ {
		topic := sensor.Topic(fmt.Sprintf("/r1/n%02d/power", n))
		if err := nav.AddSensor(topic); err != nil {
			return nil, nil, nil, err
		}
		warmCache(caches.GetOrCreate(topic, 180, time.Second))
	}
	qe := core.NewQueryEngine(nav, caches, nil)
	op, err := aggregator.New(aggregator.Config{
		OperatorConfig: core.OperatorConfig{
			Name:    "agg",
			Inputs:  []string{"power"},
			Outputs: []string{"<bottomup>power-agg"},
		},
		Operation: aggregator.Mean,
		WindowMs:  60000,
	}, qe)
	if err != nil {
		return nil, nil, nil, err
	}
	return qe, op, core.SinkFunc(func(sensor.Topic, sensor.Reading) {}), nil
}

// legacyOnly strips every optional interface off an operator, forcing the
// tick path onto the allocating Compute shim — the before side of the
// scratch-arena pair.
type legacyOnly struct{ core.Operator }

// linearScanBackend hides the in-memory store's PrefixMatcher, forcing
// the dispatcher onto the filter-everything fallback — the before side
// of the wildcard-expansion pair.
type linearScanBackend struct{ store.Backend }

// queryProbeOp mirrors the repository bench suite's contention probe
// without the fixed probe latency: per-unit cache queries against the
// shared sharded set. legacy selects the unbound, allocating path.
type queryProbeOp struct {
	*core.Base
	queries int
	legacy  bool
}

func (o *queryProbeOp) Compute(qe *core.QueryEngine, u *units.Unit, now time.Time) ([]core.Output, error) {
	if !o.legacy {
		return o.computeBound(qe, u, now, core.NewTickContext())
	}
	buf := make([]sensor.Reading, 0, 256)
	for q := 0; q < o.queries; q++ {
		buf = qe.QueryRelative(u.Inputs[q%len(u.Inputs)], 100*time.Second, buf[:0])
	}
	outs := make([]core.Output, 0, len(u.Outputs))
	for _, topic := range u.Outputs {
		outs = append(outs, core.Output{Topic: topic, Reading: sensor.At(float64(len(buf)), now)})
	}
	return outs, nil
}

// ComputeInto implements core.ContextOperator; the legacy variant opts
// back out by delegating to the allocating path.
func (o *queryProbeOp) ComputeInto(qe *core.QueryEngine, u *units.Unit, now time.Time, tc *core.TickContext) ([]core.Output, error) {
	if o.legacy {
		return o.Compute(qe, u, now)
	}
	return o.computeBound(qe, u, now, tc)
}

func (o *queryProbeOp) computeBound(qe *core.QueryEngine, u *units.Unit, now time.Time, tc *core.TickContext) ([]core.Output, error) {
	bu := qe.BindUnit(u)
	buf := tc.Readings
	for q := 0; q < o.queries; q++ {
		buf = bu.Inputs[q%len(u.Inputs)].QueryRelative(100*time.Second, buf[:0])
	}
	tc.Readings = buf
	outs := tc.Outputs[:0]
	for _, topic := range u.Outputs {
		outs = append(outs, core.Output{Topic: topic, Reading: sensor.At(float64(len(buf)), now)})
	}
	tc.Outputs = outs
	return outs, nil
}

// contentionEnv builds the TickAll contention workload of the repository
// bench suite — 8 parallel-unit operators over 16 shared node sensors on
// an 8-thread pool — with the chosen computation path.
func contentionEnv(legacy bool) (*core.Manager, error) {
	nav := navigator.New()
	caches := cache.NewSet()
	for n := 0; n < 16; n++ {
		topic := sensor.Topic(fmt.Sprintf("/r1/n%02d/power", n))
		if err := nav.AddSensor(topic); err != nil {
			return nil, err
		}
		warmCache(caches.GetOrCreate(topic, 180, time.Second))
	}
	qe := core.NewQueryEngine(nav, caches, nil)
	sink := core.NewCacheSink(caches, nav, 180, time.Second)
	m := core.NewManager(qe, sink, core.Env{})
	m.SetThreads(8)
	for i := 0; i < 8; i++ {
		oc := core.OperatorConfig{
			Name:     fmt.Sprintf("probe%d", i),
			Inputs:   []string{"power"},
			Outputs:  []string{fmt.Sprintf("<bottomup>probe%d", i)},
			Parallel: true,
		}
		base, err := oc.Build("benchprobe", qe.Navigator())
		if err != nil {
			m.Close()
			return nil, err
		}
		op := &queryProbeOp{Base: base, queries: 25, legacy: legacy}
		if err := m.AdoptOperator(op); err != nil {
			m.Close()
			return nil, err
		}
	}
	return m, nil
}

func runBenchJSON(path string) error {
	report := benchReport{
		PR: 10,
		Note: "paired hot-path benchmarks: unbound vs bound QueryRelative, " +
			"legacy Compute vs ComputeInto scratch arenas (64-unit aggregator tick), " +
			"TickAll query contention (8 ops x 16 parallel units, 8-thread pool) legacy vs bound, " +
			"the PR3 storage pairs (in-memory store vs tsdb insert/range, crash recovery, " +
			"100k-reading/64-topic on-disk footprint), the PR4 aggregation pairs " +
			"(naive Range+reduce vs the chunk-metadata aggregation engine, with the " +
			"100k-reading/64-topic aggregate acceptance scenario), the PR5 ingest " +
			"pairs: pre-PR single-lock WAL (one fsync per batch) vs group-commit WAL + " +
			"sharded heads at 8/16/32 concurrent writers, sync on and off, with the " +
			"16-writer sync-enabled acceptance scenario, and the PR7 dashboard " +
			"read-path pairs: uncached vs result-cached wildcard aggregates over a " +
			"64-sensor/2000-reading corpus under live in-order ingest, indexed vs " +
			"linear '#' expansion at 64- and 4096-topic namespaces, and the PR8 " +
			"telemetry overhead pairs: the ingest and cached-dashboard scenarios " +
			"re-run fully instrumented with the global telemetry switch off vs on, " +
			"and the PR10 delivery pair: publish->local-delivery through the broker " +
			"with the fire-and-forget client vs the spooled acked client (v2 frames, " +
			"PubAcks, redelivery bookkeeping), bounding the no-fault ack overhead",
	}
	add := func(name string, fn func(b *testing.B)) benchResult {
		r := testing.Benchmark(fn)
		res := benchResult{
			Name:        name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Iterations:  r.N,
		}
		report.Benchmarks = append(report.Benchmarks, res)
		fmt.Printf("  %-28s %12.1f ns/op %8d B/op %6d allocs/op\n",
			name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
		return res
	}

	fmt.Println("==> bench-json: query hot path")
	qe := queryEnv()
	add("query_relative_unbound", func(b *testing.B) {
		buf := make([]sensor.Reading, 0, 256)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf = qe.QueryRelative("/n/power", 60*time.Second, buf[:0])
		}
		_ = buf
	})
	h := qe.Bind("/n/power")
	add("query_relative_bound", func(b *testing.B) {
		buf := make([]sensor.Reading, 0, 256)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf = h.QueryRelative(60*time.Second, buf[:0])
		}
		_ = buf
	})

	tqe, op, sink, err := tickEnv(64)
	if err != nil {
		return err
	}
	now := time.Unix(179, 0)
	add("tick_compute_legacy", func(b *testing.B) {
		lop := legacyOnly{op}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := core.Tick(lop, tqe, sink, now); err != nil {
				b.Fatal(err)
			}
		}
	})
	add("tick_compute_scratch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := core.Tick(op, tqe, sink, now); err != nil {
				b.Fatal(err)
			}
		}
	})

	for _, variant := range []struct {
		name   string
		legacy bool
	}{
		{"tickall_query_contention_legacy", true},
		{"tickall_query_contention_bound", false},
	} {
		m, err := contentionEnv(variant.legacy)
		if err != nil {
			return err
		}
		add(variant.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := m.TickAll(now); err != nil {
					b.Fatal(err)
				}
			}
		})
		m.Close()
	}

	fmt.Println("==> bench-json: storage backend (memory vs tsdb)")
	benchSeries := func(n, offset int) []sensor.Reading {
		rng := rand.New(rand.NewSource(7))
		rs := make([]sensor.Reading, n)
		for i := range rs {
			rs[i] = sensor.Reading{
				Value: 100 + float64(i%23) + float64(rng.Intn(5)),
				Time:  int64(offset+i) * benchSec,
			}
		}
		return rs
	}
	tmp, err := os.MkdirTemp("", "wintermute-bench-tsdb-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	add("backend_insert_batch_memory", func(b *testing.B) {
		st := store.New(0)
		batch := benchSeries(64, 0)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for j := range batch {
				batch[j].Time = int64(i*64+j) * benchSec
			}
			st.InsertBatch("/n/power", batch)
		}
	})
	insertRun := 0
	add("backend_insert_batch_tsdb", func(b *testing.B) {
		// A fresh directory per escalation run, and Close (which flushes
		// everything inserted, cost scaling with b.N) outside the timed
		// window — otherwise each run would pay for the previous run's
		// segments and the flush would pollute the insert ns/op.
		insertRun++
		db, err := tsdb.Open(fmt.Sprintf("%s/insert%d", tmp, insertRun),
			tsdb.Options{FlushEvery: -1})
		if err != nil {
			b.Fatal(err)
		}
		batch := benchSeries(64, 0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := range batch {
				batch[j].Time = int64(i*64+j) * benchSec
			}
			db.InsertBatch("/n/power", batch)
		}
		b.StopTimer()
		db.Close()
		b.StartTimer()
	})
	add("backend_range_memory", func(b *testing.B) {
		st := store.New(0)
		st.InsertBatch("/n/power", benchSeries(100000, 0))
		buf := make([]sensor.Reading, 0, 512)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf = st.Range("/n/power", 50000*benchSec, 50300*benchSec, buf[:0])
		}
		_ = buf
	})
	rangeDB, err := tsdb.Open(tmp+"/range", tsdb.Options{FlushEvery: -1})
	if err != nil {
		return err
	}
	rangeDB.InsertBatch("/n/power", benchSeries(100000, 0))
	if err := rangeDB.Flush(); err != nil {
		return err
	}
	add("backend_range_tsdb_segment", func(b *testing.B) {
		buf := make([]sensor.Reading, 0, 512)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf = rangeDB.Range("/n/power", 50000*benchSec, 50300*benchSec, buf[:0])
		}
		_ = buf
	})
	rangeDB.Close()

	fmt.Println("==> bench-json: aggregation (naive Range+reduce vs chunk-metadata engine)")
	const aggTopicCount, aggPerTopic = 64, 1600
	aggDB, err := tsdb.Open(tmp+"/agg", tsdb.Options{FlushEvery: -1})
	if err != nil {
		return err
	}
	aggTopics := make([]sensor.Topic, aggTopicCount)
	aggRS := benchSeries(aggPerTopic, 0)
	for n := range aggTopics {
		aggTopics[n] = sensor.Topic(fmt.Sprintf("/r%02d/n%02d/power", n/8, n%8))
		aggDB.InsertBatch(aggTopics[n], aggRS)
	}
	if err := aggDB.Flush(); err != nil {
		return err
	}
	aggWindowHi := int64(aggPerTopic) * benchSec
	wantCount := int64(aggTopicCount * aggPerTopic)
	naive := add("aggregate_naive_range", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var total store.AggResult
			for _, tp := range aggTopics {
				total.Merge(store.AggregateNaive(aggDB, tp, 0, aggWindowHi))
			}
			if total.Count != wantCount {
				b.Fatalf("aggregated %d readings", total.Count)
			}
		}
	})
	engine := add("aggregate_engine", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var total store.AggResult
			for _, tp := range aggTopics {
				total.Merge(aggDB.Aggregate(tp, 0, aggWindowHi))
			}
			if total.Count != wantCount {
				b.Fatalf("aggregated %d readings", total.Count)
			}
		}
	})
	add("downsample_naive_range", func(b *testing.B) {
		var buckets []store.Bucket
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buckets = store.DownsampleNaive(aggDB, aggTopics[i%len(aggTopics)], 0, aggWindowHi, 60*benchSec, buckets[:0])
		}
		_ = buckets
	})
	add("downsample_engine", func(b *testing.B) {
		var buckets []store.Bucket
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buckets = aggDB.Downsample(aggTopics[i%len(aggTopics)], 0, aggWindowHi, 60*benchSec, buckets[:0])
		}
		_ = buckets
	})
	// Equivalence: the engine must answer exactly like the reference on
	// full, boundary and bucketed windows of the corpus.
	equivalent := true
	for _, tp := range aggTopics {
		for _, w := range [][2]int64{{0, aggWindowHi}, {137 * benchSec, 731 * benchSec}} {
			if aggDB.Aggregate(tp, w[0], w[1]) != store.AggregateNaive(aggDB, tp, w[0], w[1]) {
				equivalent = false
			}
		}
		gotB := aggDB.Downsample(tp, 0, aggWindowHi, 60*benchSec, nil)
		wantB := store.DownsampleNaive(aggDB, tp, 0, aggWindowHi, 60*benchSec, nil)
		if len(gotB) != len(wantB) {
			equivalent = false
		} else {
			for i := range gotB {
				if gotB[i] != wantB[i] {
					equivalent = false
				}
			}
		}
	}
	aggAcc := &aggAcceptance{
		Topics:       aggTopicCount,
		Readings:     aggTopicCount * aggPerTopic,
		NaiveNsPerOp: naive.NsPerOp,
		NaiveAllocs:  naive.AllocsPerOp,
		EngineNs:     engine.NsPerOp,
		EngineAllocs: engine.AllocsPerOp,
		Speedup:      naive.NsPerOp / engine.NsPerOp,
		Equivalent:   equivalent,
	}
	if engine.AllocsPerOp > 0 {
		aggAcc.AllocRatio = float64(naive.AllocsPerOp) / float64(engine.AllocsPerOp)
	} else {
		aggAcc.AllocRatio = float64(naive.AllocsPerOp)
	}
	report.Aggregation = aggAcc
	fmt.Printf("  acceptance: %d readings / %d topics, %.1fx faster, %.0fx fewer allocs, equivalent=%v\n",
		aggAcc.Readings, aggAcc.Topics, aggAcc.Speedup, aggAcc.AllocRatio, aggAcc.Equivalent)
	if aggAcc.Speedup < 5 || aggAcc.AllocRatio < 10 || !aggAcc.Equivalent {
		fmt.Printf("  WARNING: aggregation acceptance bounds missed (need >=5x ns, >=10x allocs, equivalence)\n")
	}
	if err := aggDB.Close(); err != nil {
		return err
	}

	fmt.Println("==> bench-json: concurrent ingest (single-lock WAL vs group commit)")
	ingestDir := 0
	benchIngest := func(writers int, walSync, legacy bool, reg *telemetry.Registry) func(b *testing.B) {
		return func(b *testing.B) {
			ingestDir++
			db, err := tsdb.Open(fmt.Sprintf("%s/ingest%d", tmp, ingestDir), tsdb.Options{
				FlushEvery:   -1,
				WALSync:      walSync,
				LegacyIngest: legacy,
				Metrics:      reg,
			})
			if err != nil {
				b.Fatal(err)
			}
			proto := benchSeries(64, 0)
			topics := make([]sensor.Topic, writers)
			for w := range topics {
				topics[w] = sensor.Topic(fmt.Sprintf("/r%02d/n%02d/power", w/8, w%8))
			}
			b.ReportAllocs()
			b.ResetTimer()
			var next atomic.Int64
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					batch := make([]sensor.Reading, len(proto))
					copy(batch, proto)
					for {
						i := next.Add(1) - 1
						if i >= int64(b.N) {
							return
						}
						for j := range batch {
							batch[j].Time = (i*64 + int64(j)) * benchSec
						}
						db.InsertBatch(topics[w], batch)
					}
				}(w)
			}
			wg.Wait()
			b.StopTimer()
			db.Close()
			b.StartTimer()
		}
	}
	var legacy16, grouped16 benchResult
	for _, writers := range []int{8, 16, 32} {
		for _, walSync := range []bool{false, true} {
			tag := "nosync"
			if walSync {
				tag = "sync"
			}
			l := add(fmt.Sprintf("ingest_concurrent_legacy_%dw_%s", writers, tag),
				benchIngest(writers, walSync, true, nil))
			g := add(fmt.Sprintf("ingest_concurrent_grouped_%dw_%s", writers, tag),
				benchIngest(writers, walSync, false, nil))
			if writers == 16 && walSync {
				legacy16, grouped16 = l, g
			}
		}
	}
	ingestAcc := &ingestAcceptance{
		Writers:        16,
		BatchLen:       64,
		LegacyNsPerOp:  legacy16.NsPerOp,
		GroupedNsPerOp: grouped16.NsPerOp,
		Speedup:        legacy16.NsPerOp / grouped16.NsPerOp,
		SyncEnabled:    true,
	}
	report.Ingest = ingestAcc
	fmt.Printf("  acceptance: 16 writers, WAL sync on: %.1fx sustained insert throughput vs pre-PR path\n",
		ingestAcc.Speedup)
	if ingestAcc.Speedup < 4 {
		fmt.Printf("  WARNING: ingest acceptance bound missed (need >=4x at 16 writers with sync)\n")
	}

	fmt.Println("==> bench-json: dashboard read path (result cache + wildcard index)")
	// Mirrors the DashboardQuery pair in bench_test.go: one serving stack
	// (in-memory backend, write-through invalidation, REST handler) with
	// a plain and a cached handler over the same corpus, a background
	// writer appending in-order readings beyond the hot window, and one
	// op = one full HTTP round trip.
	const dashTopics, dashReadings = 64, 2000
	dashNav := navigator.New()
	dashCaches := cache.NewSet()
	dashStore := store.New(0)
	dashRC := resultcache.New(1024, 0)
	dashSink := core.NewCacheSink(dashCaches, dashNav, 16, time.Second)
	dashSink.Store = dashStore
	dashSink.Results = dashRC
	dashRS := make([]sensor.Reading, dashReadings)
	for i := range dashRS {
		dashRS[i] = sensor.Reading{Value: float64(i), Time: int64(i) * benchSec}
	}
	dashTopicList := make([]sensor.Topic, dashTopics)
	for n := range dashTopicList {
		dashTopicList[n] = sensor.Topic(fmt.Sprintf("/r%02d/n%02d/power", n/8, n%8))
		dashSink.PushSeries(dashTopicList[n], dashRS)
	}
	dashQE := core.NewQueryEngine(dashNav, dashCaches, dashStore)
	dashMgr := core.NewManager(dashQE, dashSink, core.Env{})
	plainHandler := rest.NewHandler(dashMgr, dashQE)
	cachedHandler := rest.NewHandler(dashMgr, dashQE, rest.Options{ResultCache: dashRC})
	dashStop := make(chan struct{})
	dashDone := make(chan struct{})
	dashOuts := make([]core.Output, len(dashTopicList))
	for n, tp := range dashTopicList {
		dashOuts[n] = core.Output{Topic: tp, Reading: sensor.Reading{Value: 1}}
	}
	go func() {
		defer close(dashDone)
		for t := int64(dashReadings); ; t++ {
			select {
			case <-dashStop:
				return
			default:
			}
			for n := range dashOuts {
				dashOuts[n].Reading.Time = t * benchSec
			}
			dashSink.PushBatch(dashOuts)
			time.Sleep(time.Millisecond)
		}
	}()
	dashTarget := "/query?op=avg&sensor=/%23&start=0&end=" +
		strconv.FormatInt((dashReadings-1)*benchSec, 10)
	dashServe := func(h http.Handler) *httptest.ResponseRecorder {
		req := httptest.NewRequest("GET", dashTarget, nil)
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		return w
	}
	dashBench := func(h http.Handler) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if w := dashServe(h); w.Code != http.StatusOK {
					b.Fatalf("status %d: %s", w.Code, w.Body.String())
				}
			}
		}
	}
	uncached := add("dashboard_query_uncached", dashBench(plainHandler))
	cachedRes := add("dashboard_query_cached", dashBench(cachedHandler))
	// The writer only appends in-order beyond the window, so a fresh
	// recompute and the memoized entry must agree byte for byte.
	dashEquivalent := dashServe(plainHandler).Body.String() == dashServe(cachedHandler).Body.String()
	close(dashStop)
	<-dashDone
	dashMgr.Close()

	expandEnv := func(n int, indexed bool) store.Backend {
		st := store.New(0)
		for i := 0; i < n; i++ {
			//lint:ignore batchinsert one reading per distinct topic to populate the namespace; batches are per-topic, so no batch can form
			st.Insert(sensor.Topic(fmt.Sprintf("/r%03d/n%d/power", i/8, i%8)),
				sensor.Reading{Value: 1, Time: 1})
		}
		if indexed {
			return st
		}
		return linearScanBackend{st}
	}
	expandBench := func(be store.Backend) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if got := store.TopicsPrefix(be, "/r000"); len(got) != 8 {
					b.Fatalf("%d matches", len(got))
				}
			}
		}
	}
	idx64 := add("wildcard_expand_indexed_64", expandBench(expandEnv(64, true)))
	idx4096 := add("wildcard_expand_indexed_4096", expandBench(expandEnv(4096, true)))
	lin64 := add("wildcard_expand_linear_64", expandBench(expandEnv(64, false)))
	lin4096 := add("wildcard_expand_linear_4096", expandBench(expandEnv(4096, false)))
	servingAcc := &servingAcceptance{
		Topics:           dashTopics,
		ReadingsPerTopic: dashReadings,
		UncachedNsPerOp:  uncached.NsPerOp,
		CachedNsPerOp:    cachedRes.NsPerOp,
		Speedup:          uncached.NsPerOp / cachedRes.NsPerOp,
		Equivalent:       dashEquivalent,
		Indexed64Ns:      idx64.NsPerOp,
		Indexed4096Ns:    idx4096.NsPerOp,
		IndexedRatio:     idx4096.NsPerOp / idx64.NsPerOp,
		Linear64Ns:       lin64.NsPerOp,
		Linear4096Ns:     lin4096.NsPerOp,
		LinearRatio:      lin4096.NsPerOp / lin64.NsPerOp,
	}
	report.Serving = servingAcc
	fmt.Printf("  acceptance: cached dashboard query %.1fx faster, equivalent=%v; "+
		"indexed expansion 64->4096 topics %.1fx (linear fallback %.0fx)\n",
		servingAcc.Speedup, servingAcc.Equivalent, servingAcc.IndexedRatio, servingAcc.LinearRatio)
	if servingAcc.Speedup < 5 || !servingAcc.Equivalent {
		fmt.Printf("  WARNING: serving acceptance bounds missed (need >=5x cached speedup and byte-equivalent responses)\n")
	}
	if servingAcc.IndexedRatio > 4 {
		fmt.Printf("  WARNING: indexed wildcard expansion not size-independent (64->4096 ratio %.1fx > 4x)\n",
			servingAcc.IndexedRatio)
	}

	fmt.Println("==> bench-json: telemetry overhead (instrumented hot paths, switch off vs on)")
	// Both scenarios run with the registry fully attached so the off side
	// executes every instrumented call site and pays exactly the
	// one-atomic-load gate the disabled path promises. Ingest uses the
	// grouped 16-writer no-sync shape — the configuration with the
	// smallest fixed per-batch cost, where instrumentation overhead is
	// proportionally largest.
	telemetry.SetEnabled(false)
	ingestOff := add("ingest_telemetry_off", benchIngest(16, false, false, telemetry.NewRegistry()))
	telemetry.SetEnabled(true)
	ingestOn := add("ingest_telemetry_on", benchIngest(16, false, false, telemetry.NewRegistry()))
	// The dashboard pair re-runs the PR7 cached round trip through a
	// serving stack with per-route HTTP metrics, request traces and
	// result-cache/backend/scheduler series registered. No background
	// writer here: a steady corpus keeps the off/on delta clean.
	dashTelemetry := func(on bool) func(b *testing.B) {
		return func(b *testing.B) {
			telemetry.SetEnabled(on)
			defer telemetry.SetEnabled(true)
			reg := telemetry.NewRegistry()
			nav := navigator.New()
			caches := cache.NewSet()
			st := store.New(0)
			rc := resultcache.New(1024, 0)
			sink := core.NewCacheSink(caches, nav, 16, time.Second)
			sink.Store = st
			sink.Results = rc
			for n := 0; n < dashTopics; n++ {
				sink.PushSeries(sensor.Topic(fmt.Sprintf("/r%02d/n%02d/power", n/8, n%8)), dashRS)
			}
			qe := core.NewQueryEngine(nav, caches, st)
			m := core.NewManager(qe, sink, core.Env{})
			defer m.Close()
			store.RegisterBackendMetrics(reg, st)
			rc.RegisterMetrics(reg)
			m.EnableTelemetry(reg)
			h := rest.NewHandler(m, qe, rest.Options{ResultCache: rc, Metrics: reg})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if w := dashServe(h); w.Code != http.StatusOK {
					b.Fatalf("status %d: %s", w.Code, w.Body.String())
				}
			}
		}
	}
	dashOff := add("dashboard_telemetry_off", dashTelemetry(false))
	dashOn := add("dashboard_telemetry_on", dashTelemetry(true))
	telemetryAcc := &telemetryAcceptance{
		IngestOffNsPerOp:     ingestOff.NsPerOp,
		IngestOnNsPerOp:      ingestOn.NsPerOp,
		IngestOverheadPct:    (ingestOn.NsPerOp - ingestOff.NsPerOp) / ingestOff.NsPerOp * 100,
		DashboardOffNsPerOp:  dashOff.NsPerOp,
		DashboardOnNsPerOp:   dashOn.NsPerOp,
		DashboardOverheadPct: (dashOn.NsPerOp - dashOff.NsPerOp) / dashOff.NsPerOp * 100,
	}
	report.Telemetry = telemetryAcc
	fmt.Printf("  acceptance: telemetry overhead ingest %+.2f%%, dashboard %+.2f%%\n",
		telemetryAcc.IngestOverheadPct, telemetryAcc.DashboardOverheadPct)
	if telemetryAcc.IngestOverheadPct > 2 || telemetryAcc.DashboardOverheadPct > 2 {
		fmt.Printf("  WARNING: telemetry acceptance bound missed (need <=2%% overhead on both scenarios)\n")
	}

	fmt.Println("==> bench-json: delivery (fire-and-forget vs acked spool)")
	// Mirrors the PublishUnacked/PublishAcked pair in bench_test.go:
	// publishes are pipelined (the production shape: pushers never wait
	// per batch) and one op is one batch fully delivered, with the acked
	// side additionally paying v2 framing, the broker's PubAck and the
	// client's spool/ack bookkeeping.
	var ackedStats transport.ClientStats
	ackedDrainClean := false
	benchDelivery := func(spool int) func(b *testing.B) {
		return func(b *testing.B) {
			broker, err := transport.NewBroker("127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			defer broker.Close()
			target := int64(b.N)
			var delivered atomic.Int64
			done := make(chan struct{}, 1)
			broker.SubscribeLocal("#", func(m transport.Message) {
				if delivered.Add(1) == target {
					done <- struct{}{}
				}
			})
			var client *transport.Client
			if spool > 0 {
				client, err = transport.DialOptions(broker.Addr(), transport.Options{SpoolBatches: spool})
			} else {
				client, err = transport.Dial(broker.Addr())
			}
			if err != nil {
				b.Fatal(err)
			}
			batch := make([]sensor.Reading, 10)
			for i := range batch {
				batch[i] = sensor.Reading{Value: float64(i), Time: int64(i)}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := client.Publish("/r1/n1/power", batch); err != nil {
					b.Fatal(err)
				}
			}
			<-done
			b.StopTimer()
			err = client.Close()
			if spool > 0 {
				// The longest escalation run wins: it drained the most batches.
				ackedDrainClean = err == nil
				ackedStats = client.Stats()
			}
			b.StartTimer()
		}
	}
	unackedRes := add("publish_unacked", benchDelivery(0))
	ackedRes := add("publish_acked", benchDelivery(1024))
	deliveryAcc := &deliveryAcceptance{
		UnackedNsPerOp: unackedRes.NsPerOp,
		AckedNsPerOp:   ackedRes.NsPerOp,
		OverheadPct:    (ackedRes.NsPerOp - unackedRes.NsPerOp) / unackedRes.NsPerOp * 100,
		AckedBatches:   ackedStats.Acked,
		CleanDrain:     ackedDrainClean && ackedStats.Acked == ackedStats.Published,
	}
	report.Delivery = deliveryAcc
	fmt.Printf("  acceptance: acked publish overhead %+.2f%%, %d batches acked, clean drain=%v\n",
		deliveryAcc.OverheadPct, deliveryAcc.AckedBatches, deliveryAcc.CleanDrain)
	if deliveryAcc.OverheadPct > 5 || !deliveryAcc.CleanDrain {
		fmt.Printf("  WARNING: delivery acceptance bounds missed (need <=5%% acked overhead and a clean drain)\n")
	}

	accept, err := runStorageAcceptance(tmp + "/accept")
	if err != nil {
		return err
	}
	report.Storage = accept
	fmt.Printf("  acceptance: %d readings / %d topics, %d bytes on disk = %.2f B/reading, "+
		"recovery %.1f ms, identical=%v\n",
		accept.Readings, accept.Topics, accept.DiskBytes, accept.BytesPerReading,
		accept.RecoveryMs, accept.RecoveredSame)
	if accept.BytesPerReading >= 4 {
		fmt.Printf("  WARNING: bytes/reading %.2f exceeds the 4-byte acceptance bound\n",
			accept.BytesPerReading)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("==> wrote %s\n", path)
	return nil
}

// runStorageAcceptance executes the PR3 acceptance scenario against a
// real Collect Agent: >=100k readings over >=64 topics into a persistent
// backend, flushed to segments, the agent killed without Close, a second
// agent recovering the directory, and every Range/Latest/REST-query
// answer compared bit for bit.
func runStorageAcceptance(dir string) (*storageAcceptance, error) {
	const (
		topics     = 64
		perTopic   = 1600 // 102,400 readings total
		windowLo   = 0
		windowHi   = int64(perTopic) * benchSec
		probeTopic = "/r00/n00/power"
	)
	topic := func(i int) sensor.Topic {
		return sensor.Topic(fmt.Sprintf("/r%02d/n%02d/power", i/8, i%8))
	}

	agent, err := collect.New(collect.Config{StoreDir: dir})
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < topics; i++ {
		tp := topic(i)
		for k := 0; k < perTopic; k += 64 {
			batch := make([]sensor.Reading, 64)
			for j := range batch {
				batch[j] = sensor.Reading{
					Value: 100 + float64((k+j)%23) + float64(rng.Intn(5)),
					Time:  int64(k+j) * benchSec,
				}
			}
			agent.IngestBatch(tp, batch)
		}
	}
	// The janitor would flush on its own cadence; force the steady state
	// the 4-byte amortised bound is defined over (heads compacted into
	// segments, WAL retired).
	if err := agent.DB.Flush(); err != nil {
		return nil, err
	}

	type answers struct {
		ranges  map[sensor.Topic][]sensor.Reading
		latest  map[sensor.Topic]sensor.Reading
		restRaw string
	}
	collectAnswers := func(a *collect.Agent) (answers, error) {
		ans := answers{
			ranges: map[sensor.Topic][]sensor.Reading{},
			latest: map[sensor.Topic]sensor.Reading{},
		}
		for i := 0; i < topics; i++ {
			tp := topic(i)
			ans.ranges[tp] = a.Store.Range(tp, windowLo, windowHi, nil)
			if r, ok := a.Store.Latest(tp); ok {
				ans.latest[tp] = r
			}
		}
		srv, err := rest.Serve("127.0.0.1:0", a.Manager, a.QE)
		if err != nil {
			return ans, err
		}
		defer srv.Close()
		resp, err := http.Get(fmt.Sprintf("http://%s/query?sensor=%s&from=%d&to=%d",
			srv.Addr(), probeTopic, windowLo, windowHi))
		if err != nil {
			return ans, err
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			return ans, err
		}
		ans.restRaw = string(raw)
		return ans, nil
	}

	before, err := collectAnswers(agent)
	if err != nil {
		return nil, err
	}
	// Kill: the agent is abandoned with no Close — no flush, no WAL sync
	// beyond what IngestBatch already wrote. Abandon releases the file
	// handles and directory lock the way process death would, and the
	// operator manager is stopped so stray goroutines don't skew later
	// measurements.
	agent.Manager.Close()
	agent.DB.Abandon()

	start := time.Now()
	agent2, err := collect.New(collect.Config{StoreDir: dir})
	if err != nil {
		return nil, err
	}
	recovery := time.Since(start)
	defer agent2.Close()
	after, err := collectAnswers(agent2)
	if err != nil {
		return nil, err
	}

	same := after.restRaw == before.restRaw
	for i := 0; same && i < topics; i++ {
		tp := topic(i)
		a, b := before.ranges[tp], after.ranges[tp]
		if len(a) != len(b) || before.latest[tp] != after.latest[tp] {
			same = false
			break
		}
		for j := range a {
			if a[j] != b[j] {
				same = false
				break
			}
		}
	}

	st := agent2.DB.Stats()
	total := topics * perTopic
	return &storageAcceptance{
		Topics:          topics,
		Readings:        total,
		DiskBytes:       st.DiskBytes,
		BytesPerReading: float64(st.DiskBytes) / float64(total),
		RecoveryMs:      float64(recovery.Microseconds()) / 1000,
		RecoveredSame:   same,
	}, nil
}
