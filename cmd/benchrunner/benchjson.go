// benchjson implements `benchrunner -bench-json <file>`: it re-runs the
// repository's hot-path benchmark pairs through testing.Benchmark and
// writes the results as machine-readable JSON, starting the per-PR
// performance trajectory (BENCH_PR2.json and successors).
//
// The workloads deliberately mirror the pairs in the repository's
// bench_test.go (which, as a test file, cannot be imported here); when
// changing a workload shape, change both so the JSON trajectory stays
// comparable to `make bench`.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	"github.com/dcdb/wintermute/internal/cache"
	"github.com/dcdb/wintermute/internal/core"
	"github.com/dcdb/wintermute/internal/core/units"
	"github.com/dcdb/wintermute/internal/navigator"
	"github.com/dcdb/wintermute/internal/plugins/aggregator"
	"github.com/dcdb/wintermute/internal/sensor"
)

type benchResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

type benchReport struct {
	PR         int           `json:"pr"`
	Note       string        `json:"note"`
	Benchmarks []benchResult `json:"benchmarks"`
}

const benchSec = int64(time.Second)

// queryEnv builds one warm cached sensor.
func queryEnv() *core.QueryEngine {
	nav := navigator.New()
	caches := cache.NewSet()
	_ = nav.AddSensor("/n/power")
	c := caches.GetOrCreate("/n/power", 180, time.Second)
	for k := 0; k < 180; k++ {
		c.Store(sensor.Reading{Value: float64(k), Time: int64(k) * benchSec})
	}
	return core.NewQueryEngine(nav, caches, nil)
}

// tickEnv builds an aggregator over 64 warm node units.
func tickEnv(nodes int) (*core.QueryEngine, *aggregator.Operator, core.Sink, error) {
	nav := navigator.New()
	caches := cache.NewSet()
	for n := 0; n < nodes; n++ {
		topic := sensor.Topic(fmt.Sprintf("/r1/n%02d/power", n))
		if err := nav.AddSensor(topic); err != nil {
			return nil, nil, nil, err
		}
		c := caches.GetOrCreate(topic, 180, time.Second)
		for k := 0; k < 180; k++ {
			c.Store(sensor.Reading{Value: float64(k), Time: int64(k) * benchSec})
		}
	}
	qe := core.NewQueryEngine(nav, caches, nil)
	op, err := aggregator.New(aggregator.Config{
		OperatorConfig: core.OperatorConfig{
			Name:    "agg",
			Inputs:  []string{"power"},
			Outputs: []string{"<bottomup>power-agg"},
		},
		Operation: aggregator.Mean,
		WindowMs:  60000,
	}, qe)
	if err != nil {
		return nil, nil, nil, err
	}
	return qe, op, core.SinkFunc(func(sensor.Topic, sensor.Reading) {}), nil
}

// legacyOnly strips every optional interface off an operator, forcing the
// tick path onto the allocating Compute shim — the before side of the
// scratch-arena pair.
type legacyOnly struct{ core.Operator }

// queryProbeOp mirrors the repository bench suite's contention probe
// without the fixed probe latency: per-unit cache queries against the
// shared sharded set. legacy selects the unbound, allocating path.
type queryProbeOp struct {
	*core.Base
	queries int
	legacy  bool
}

func (o *queryProbeOp) Compute(qe *core.QueryEngine, u *units.Unit, now time.Time) ([]core.Output, error) {
	if !o.legacy {
		return o.computeBound(qe, u, now, core.NewTickContext())
	}
	buf := make([]sensor.Reading, 0, 256)
	for q := 0; q < o.queries; q++ {
		buf = qe.QueryRelative(u.Inputs[q%len(u.Inputs)], 100*time.Second, buf[:0])
	}
	outs := make([]core.Output, 0, len(u.Outputs))
	for _, topic := range u.Outputs {
		outs = append(outs, core.Output{Topic: topic, Reading: sensor.At(float64(len(buf)), now)})
	}
	return outs, nil
}

// ComputeInto implements core.ContextOperator; the legacy variant opts
// back out by delegating to the allocating path.
func (o *queryProbeOp) ComputeInto(qe *core.QueryEngine, u *units.Unit, now time.Time, tc *core.TickContext) ([]core.Output, error) {
	if o.legacy {
		return o.Compute(qe, u, now)
	}
	return o.computeBound(qe, u, now, tc)
}

func (o *queryProbeOp) computeBound(qe *core.QueryEngine, u *units.Unit, now time.Time, tc *core.TickContext) ([]core.Output, error) {
	bu := qe.BindUnit(u)
	buf := tc.Readings
	for q := 0; q < o.queries; q++ {
		buf = bu.Inputs[q%len(u.Inputs)].QueryRelative(100*time.Second, buf[:0])
	}
	tc.Readings = buf
	outs := tc.Outputs[:0]
	for _, topic := range u.Outputs {
		outs = append(outs, core.Output{Topic: topic, Reading: sensor.At(float64(len(buf)), now)})
	}
	tc.Outputs = outs
	return outs, nil
}

// contentionEnv builds the TickAll contention workload of the repository
// bench suite — 8 parallel-unit operators over 16 shared node sensors on
// an 8-thread pool — with the chosen computation path.
func contentionEnv(legacy bool) (*core.Manager, error) {
	nav := navigator.New()
	caches := cache.NewSet()
	for n := 0; n < 16; n++ {
		topic := sensor.Topic(fmt.Sprintf("/r1/n%02d/power", n))
		if err := nav.AddSensor(topic); err != nil {
			return nil, err
		}
		c := caches.GetOrCreate(topic, 180, time.Second)
		for k := 0; k < 180; k++ {
			c.Store(sensor.Reading{Value: float64(k), Time: int64(k) * benchSec})
		}
	}
	qe := core.NewQueryEngine(nav, caches, nil)
	sink := core.NewCacheSink(caches, nav, 180, time.Second)
	m := core.NewManager(qe, sink, core.Env{})
	m.SetThreads(8)
	for i := 0; i < 8; i++ {
		oc := core.OperatorConfig{
			Name:     fmt.Sprintf("probe%d", i),
			Inputs:   []string{"power"},
			Outputs:  []string{fmt.Sprintf("<bottomup>probe%d", i)},
			Parallel: true,
		}
		base, err := oc.Build("benchprobe", qe.Navigator())
		if err != nil {
			m.Close()
			return nil, err
		}
		op := &queryProbeOp{Base: base, queries: 25, legacy: legacy}
		if err := m.AdoptOperator(op); err != nil {
			m.Close()
			return nil, err
		}
	}
	return m, nil
}

func runBenchJSON(path string) error {
	report := benchReport{
		PR: 2,
		Note: "paired hot-path benchmarks: unbound vs bound QueryRelative, " +
			"legacy Compute vs ComputeInto scratch arenas (64-unit aggregator tick), " +
			"and TickAll query contention (8 ops x 16 parallel units, 8-thread pool) legacy vs bound",
	}
	add := func(name string, fn func(b *testing.B)) {
		r := testing.Benchmark(fn)
		report.Benchmarks = append(report.Benchmarks, benchResult{
			Name:        name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Iterations:  r.N,
		})
		fmt.Printf("  %-28s %12.1f ns/op %8d B/op %6d allocs/op\n",
			name, float64(r.T.Nanoseconds())/float64(r.N), r.AllocedBytesPerOp(), r.AllocsPerOp())
	}

	fmt.Println("==> bench-json: query hot path")
	qe := queryEnv()
	add("query_relative_unbound", func(b *testing.B) {
		buf := make([]sensor.Reading, 0, 256)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf = qe.QueryRelative("/n/power", 60*time.Second, buf[:0])
		}
		_ = buf
	})
	h := qe.Bind("/n/power")
	add("query_relative_bound", func(b *testing.B) {
		buf := make([]sensor.Reading, 0, 256)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf = h.QueryRelative(60*time.Second, buf[:0])
		}
		_ = buf
	})

	tqe, op, sink, err := tickEnv(64)
	if err != nil {
		return err
	}
	now := time.Unix(179, 0)
	add("tick_compute_legacy", func(b *testing.B) {
		lop := legacyOnly{op}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := core.Tick(lop, tqe, sink, now); err != nil {
				b.Fatal(err)
			}
		}
	})
	add("tick_compute_scratch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := core.Tick(op, tqe, sink, now); err != nil {
				b.Fatal(err)
			}
		}
	})

	for _, variant := range []struct {
		name   string
		legacy bool
	}{
		{"tickall_query_contention_legacy", true},
		{"tickall_query_contention_bound", false},
	} {
		m, err := contentionEnv(variant.legacy)
		if err != nil {
			return err
		}
		add(variant.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := m.TickAll(now); err != nil {
					b.Fatal(err)
				}
			}
		})
		m.Close()
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("==> wrote %s\n", path)
	return nil
}
