// Command benchrunner regenerates every figure of the paper's evaluation
// (§VI) and the in-text footprint numbers, printing paper-style tables
// and optionally writing CSV series for plotting.
//
// Usage:
//
//	benchrunner -exp all            # everything (several minutes)
//	benchrunner -exp fig5 -quick    # one experiment, scaled down
//	benchrunner -exp fig6 -out results/
//
// Experiments:
//
//	fig5       Query Engine overhead heatmaps (absolute & relative mode)
//	fig6       online power prediction (time series + error profile)
//	fig7       per-job CPI deciles through the perfmetrics->persyst pipeline
//	fig8       fleet clustering on 2-week aggregates
//	footprint  Pusher CPU/memory footprint
//
// With -bench-json <file>, benchrunner instead runs the hot-path
// benchmark pairs and writes machine-readable results (the per-PR
// performance trajectory, e.g. BENCH_PR2.json):
//
//	benchrunner -bench-json BENCH_PR2.json
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"time"

	"github.com/dcdb/wintermute/internal/experiments"
	_ "github.com/dcdb/wintermute/internal/plugins/all"
)

func main() {
	log.SetFlags(0)
	exp := flag.String("exp", "all", "experiment: all, fig5, fig6, fig7, fig8, footprint")
	quick := flag.Bool("quick", false, "use scaled-down configurations")
	out := flag.String("out", "", "directory for CSV output (optional)")
	benchJSON := flag.String("bench-json", "", "run hot-path benchmark pairs and write JSON results to this file")
	flag.Parse()

	if *benchJSON != "" {
		if err := runBenchJSON(*benchJSON); err != nil {
			log.Fatalf("bench-json: %v", err)
		}
		return
	}

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			log.Fatalf("creating output dir: %v", err)
		}
	}
	run := func(name string, f func(quick bool, out string) error) {
		if *exp != "all" && *exp != name {
			return
		}
		start := time.Now()
		fmt.Printf("==> %s\n", name)
		if err := f(*quick, *out); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Printf("==> %s done in %s\n\n", name, time.Since(start).Round(time.Millisecond))
	}
	run("fig5", runFig5)
	run("fig6", runFig6)
	run("fig7", runFig7)
	run("fig8", runFig8)
	run("footprint", runFootprint)
}

func writeCSV(dir, name string, header []string, rows [][]string) error {
	if dir == "" {
		return nil
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write(header); err != nil {
		return err
	}
	if err := w.WriteAll(rows); err != nil {
		return err
	}
	w.Flush()
	return w.Error()
}

func f2(v float64) string { return strconv.FormatFloat(v, 'f', 2, 64) }
func f3(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }

func maxBound(res *experiments.Fig5Result) float64 {
	max := 0.0
	for _, cells := range [][]experiments.Fig5Cell{res.Absolute, res.Relative} {
		for _, c := range cells {
			if c.BoundPc > max {
				max = c.BoundPc
			}
		}
	}
	return max
}

func runFig5(quick bool, out string) error {
	cfg := experiments.DefaultFig5()
	if quick {
		cfg = experiments.QuickFig5()
	}
	res, err := experiments.RunFig5(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("baseline kernel runtime: %s\n", res.Baseline.Round(time.Millisecond))
	var rows [][]string
	find := func(cells []experiments.Fig5Cell, q, w int) experiments.Fig5Cell {
		for _, c := range cells {
			if c.Queries == q && c.WindowMs == w {
				return c
			}
		}
		return experiments.Fig5Cell{}
	}
	for _, mode := range []struct {
		name  string
		abs   bool
		cells []experiments.Fig5Cell
	}{
		{"relative (O(1) views)", false, res.Relative},
		{"absolute (O(log N) binary search)", true, res.Absolute},
	} {
		fmt.Printf("\nFigure 5 — %s mode\n", mode.name)
		fmt.Printf("analytical overhead bound %% (operator tick cost / interval / cores):\n")
		fmt.Printf("%-14s", "window\\queries")
		for _, q := range cfg.Queries {
			fmt.Printf("%9d", q)
		}
		fmt.Println()
		for _, w := range cfg.WindowsMs {
			fmt.Printf("%-14s", fmt.Sprintf("%dms", w))
			for _, q := range cfg.Queries {
				c := find(mode.cells, q, w)
				fmt.Printf("%9.4f", c.BoundPc)
				rows = append(rows, []string{mode.name, strconv.Itoa(q), strconv.Itoa(w),
					f3(c.OverheadPc), f3(c.BoundPc), strconv.FormatInt(c.TickCost.Microseconds(), 10)})
			}
			fmt.Println()
		}
		fmt.Printf("measured wall-clock overhead %% (noisy on shared machines):\n")
		fmt.Printf("%-14s", "window\\queries")
		for _, q := range cfg.Queries {
			fmt.Printf("%9d", q)
		}
		fmt.Println()
		for _, w := range cfg.WindowsMs {
			fmt.Printf("%-14s", fmt.Sprintf("%dms", w))
			for _, q := range cfg.Queries {
				c := find(mode.cells, q, w)
				fmt.Printf("%9.2f", c.OverheadPc)
			}
			fmt.Println()
		}
	}
	fmt.Printf("\nmax analytical bound across both modes: %.4f%% (paper: measured overhead below 0.5%% in all cells)\n",
		maxBound(res))
	return writeCSV(out, "fig5_overhead.csv",
		[]string{"mode", "queries", "window_ms", "overhead_pct", "bound_pct", "tick_cost_us"}, rows)
}

func runFig6(quick bool, out string) error {
	intervals := []int{250, 125, 500} // paper's main + in-text variants
	if quick {
		intervals = []int{250}
	}
	for _, ms := range intervals {
		cfg := experiments.DefaultFig6()
		if quick {
			cfg = experiments.QuickFig6()
		}
		cfg.IntervalMs = ms
		res, err := experiments.RunFig6(cfg)
		if err != nil {
			return err
		}
		fmt.Printf("Figure 6 — power prediction @%dms: avg relative error %.1f%% "+
			"(paper: 6.2%% @250ms, 10.4%% @125ms, 6.7%% @500ms)\n",
			ms, 100*res.AvgRelError)
		if ms == 250 {
			var rows [][]string
			for _, p := range res.Series {
				rows = append(rows, []string{f2(p.T), f2(p.Real), f2(p.Pred)})
			}
			if err := writeCSV(out, "fig6a_timeseries.csv",
				[]string{"t_s", "power_w", "predicted_w"}, rows); err != nil {
				return err
			}
			fmt.Println("\nFigure 6b — relative error by power bin")
			fmt.Printf("%12s %12s %12s %8s\n", "power bin W", "rel. error", "probability", "count")
			rows = rows[:0]
			for _, b := range res.Bins {
				if b.Count == 0 {
					continue
				}
				fmt.Printf("%5.0f-%-6.0f %12.3f %12.4f %8d\n",
					b.PowerLo, b.PowerHi, b.MeanRelErr, b.Probability, b.Count)
				rows = append(rows, []string{f2(b.PowerLo), f2(b.PowerHi),
					f3(b.MeanRelErr), f3(b.Probability), strconv.Itoa(b.Count)})
			}
			if err := writeCSV(out, "fig6b_error_bins.csv",
				[]string{"power_lo", "power_hi", "mean_rel_err", "probability", "count"}, rows); err != nil {
				return err
			}
		}
	}
	return nil
}

func runFig7(quick bool, out string) error {
	cfg := experiments.DefaultFig7()
	if quick {
		cfg = experiments.QuickFig7()
	}
	res, err := experiments.RunFig7(cfg)
	if err != nil {
		return err
	}
	apps := make([]string, 0, len(res.PerApp))
	for app := range res.PerApp {
		apps = append(apps, app)
	}
	sort.Strings(apps)
	var rows [][]string
	for _, app := range apps {
		series := res.PerApp[app]
		fmt.Printf("Figure 7 — %s: %d time points; sample rows (t, dec0, dec2, dec5, dec8, dec10):\n",
			app, len(series))
		step := len(series) / 6
		if step == 0 {
			step = 1
		}
		// An odd stride avoids aliasing with periodic workloads (Kripke's
		// iteration ramp would otherwise sample at a fixed phase).
		if step%2 == 0 {
			step++
		}
		for i := 0; i < len(series); i += step {
			r := series[i]
			fmt.Printf("  t=%5.0fs  %6.2f %6.2f %6.2f %6.2f %6.2f\n",
				r.T, r.Deciles[0], r.Deciles[2], r.Deciles[5], r.Deciles[8], r.Deciles[10])
		}
		for _, r := range series {
			row := []string{app, f2(r.T)}
			for d := 0; d <= 10; d++ {
				row = append(row, f3(r.Deciles[d]))
			}
			rows = append(rows, row)
		}
	}
	header := []string{"app", "t_s"}
	for d := 0; d <= 10; d++ {
		header = append(header, fmt.Sprintf("dec%d", d))
	}
	return writeCSV(out, "fig7_cpi_deciles.csv", header, rows)
}

func runFig8(quick bool, out string) error {
	cfg := experiments.DefaultFig8()
	if quick {
		cfg = experiments.QuickFig8()
	}
	res, err := experiments.RunFig8(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("Figure 8 — fleet clustering of %d nodes:\n", len(res.Points))
	fmt.Printf("  clusters found: %d (paper: 3)\n", res.NumClusters)
	fmt.Printf("  outliers: %d, implanted anomalies flagged: %d\n", res.Outliers, res.ImplantFlagged)
	fmt.Printf("  corr(power, temp) = %.3f (paper: strong linear trend)\n", res.CorrPowerTemp)
	fmt.Printf("  corr(power, idle) = %.3f (negative: idling nodes draw less)\n", res.CorrPowerIdle)
	// Per-cluster summary.
	type agg struct {
		n                 int
		power, temp, idle float64
	}
	byLabel := map[int]*agg{}
	for _, p := range res.Points {
		a := byLabel[p.Label]
		if a == nil {
			a = &agg{}
			byLabel[p.Label] = a
		}
		a.n++
		a.power += p.Power
		a.temp += p.Temp
		a.idle += p.IdleTime
	}
	labels := make([]int, 0, len(byLabel))
	for l := range byLabel {
		labels = append(labels, l)
	}
	sort.Ints(labels)
	fmt.Printf("  %-8s %6s %10s %10s %14s\n", "cluster", "nodes", "avg power", "avg temp", "avg idle [s]")
	for _, l := range labels {
		a := byLabel[l]
		name := strconv.Itoa(l)
		if l == -1 {
			name = "outlier"
		}
		fmt.Printf("  %-8s %6d %10.1f %10.2f %14.0f\n",
			name, a.n, a.power/float64(a.n), a.temp/float64(a.n), a.idle/float64(a.n))
	}
	var rows [][]string
	for _, p := range res.Points {
		rows = append(rows, []string{p.Node, f2(p.Power), f2(p.Temp), f2(p.IdleTime),
			strconv.Itoa(p.Label), strconv.FormatBool(p.Implant)})
	}
	return writeCSV(out, "fig8_clusters.csv",
		[]string{"node", "power_w", "temp_c", "idle_s", "label", "implanted"}, rows)
}

func runFootprint(quick bool, out string) error {
	cfg := experiments.DefaultFootprint()
	if quick {
		cfg.NumSensors = 200
		cfg.Duration = 3 * time.Second
	}
	res, err := experiments.RunFootprint(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("Pusher footprint (tester plugin, %d sensors, %d queries/interval):\n",
		cfg.NumSensors, cfg.Queries)
	fmt.Printf("  heap alloc: %.1f MB, runtime sys: %.1f MB (paper: < 25 MB)\n",
		res.HeapAllocMB, res.SysMB)
	if res.CPUPercent >= 0 {
		fmt.Printf("  process CPU: %.2f%% total, %.2f%% per core (paper: peaks at 1.2%% per core)\n",
			res.CPUPercent, res.PerCorePct)
	}
	fmt.Printf("  goroutines: %d, samples: %d (%.0f/s)\n",
		res.Goroutines, res.SamplesTotal, res.SamplesPerSec)
	return writeCSV(out, "footprint.csv",
		[]string{"heap_mb", "sys_mb", "cpu_pct", "per_core_pct", "samples_per_sec"},
		[][]string{{f2(res.HeapAllocMB), f2(res.SysMB), f2(res.CPUPercent),
			f2(res.PerCorePct), f2(res.SamplesPerSec)}})
}
