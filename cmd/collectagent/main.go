// Command collectagent runs a DCDB Collect Agent daemon: the MQTT-style
// broker receiving Pusher data, the Storage Backend, system-wide sensor
// caches, the Wintermute framework with whole-system visibility and the
// RESTful API.
//
// Usage:
//
//	collectagent -mqtt 127.0.0.1:1883 -http 127.0.0.1:8081 \
//	             -config wintermute.json
//
// With -store-dir the agent runs the embedded persistent time-series
// backend (WAL + Gorilla-compressed segments) instead of the in-memory
// store; a killed agent recovers every acknowledged reading on restart:
//
//	collectagent -store-dir /var/lib/dcdb -store-retention 720h
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/dcdb/wintermute/internal/collect"
	"github.com/dcdb/wintermute/internal/core"
	_ "github.com/dcdb/wintermute/internal/plugins/all"
	"github.com/dcdb/wintermute/internal/rest"
	"github.com/dcdb/wintermute/internal/store"
	"github.com/dcdb/wintermute/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("collectagent: ")
	var (
		mqttAddr   = flag.String("mqtt", "127.0.0.1:1883", "broker listen address")
		brokerWD   = flag.Duration("broker-write-deadline", 0, "per-frame write deadline for broker connections (0: 10s)")
		brokerOutQ = flag.Int("broker-out-queue", 0, "per-connection outbound frame queue; slow subscribers drop beyond it (0: 1024)")
		httpAddr   = flag.String("http", "127.0.0.1:0", "REST API listen address")
		retention  = flag.Duration("retention", 180*time.Second, "sensor cache retention")
		storeDir   = flag.String("store-dir", "", "persistent storage backend directory (empty: in-memory store)")
		storeRet   = flag.Duration("store-retention", 0, "persistent backend retention window (0: keep forever)")
		storeSync  = flag.Bool("store-wal-sync", false, "fsync the storage WAL on every group commit")
		storeWin   = flag.Duration("store-wal-group-window", 0, "WAL group-commit linger window (0: commit immediately)")
		ingestWrk  = flag.Int("ingest-workers", 0, "broker->storage ingest workers (0: min(4, GOMAXPROCS), negative: synchronous)")
		storeMax   = flag.Int("store-max", 100000, "in-memory store: max readings per sensor (0: unlimited)")
		configPath = flag.String("config", "", "Wintermute plugin configuration (JSON)")
		threads    = flag.Int("threads", 0, "Wintermute worker pool size (0: GOMAXPROCS)")
		snapshot   = flag.String("snapshot", "", "in-memory store snapshot file: loaded at start, written at shutdown")
		rcSize     = flag.Int("result-cache-size", 4096, "query result cache entries (0: disable memoization)")
		rcTTL      = flag.Duration("result-cache-ttl", 0, "bounded staleness for memoized query results (0: strict)")
		rateLimit  = flag.Float64("rate-limit", 0, "REST requests per second per client (0: unlimited)")
		rateBurst  = flag.Int("rate-burst", 0, "REST per-client burst size (0: 2x rate-limit)")
		debugAddr  = flag.String("debug-addr", "", "diagnostics listen address (pprof + /metrics; keep off the public port)")
		slowQuery  = flag.Duration("slow-query", 0, "log REST requests running at or over this duration (0: off)")
		selfMon    = flag.Duration("self-monitor", 0, "republish telemetry as /telemetry/# sensors at this interval (0: off)")
	)
	flag.Parse()

	agent, err := collect.New(collect.Config{
		ListenMQTT:          *mqttAddr,
		BrokerWriteDeadline: *brokerWD,
		BrokerOutQueue:      *brokerOutQ,
		CacheRetention:      *retention,
		StoreDir:            *storeDir,
		StoreRetention:      *storeRet,
		StoreWALSync:        *storeSync,
		StoreWALGroupWindow: *storeWin,
		IngestWorkers:       *ingestWrk,
		StoreMax:            *storeMax,
		ResultCacheSize:     *rcSize,
		ResultCacheTTL:      *rcTTL,
		Threads:             *threads,
		Metrics:             telemetry.Default,
		SelfMonitorEvery:    *selfMon,
	})
	if err != nil {
		log.Fatal(err)
	}
	if agent.DB != nil {
		st := agent.DB.Stats()
		log.Printf("storage backend: tsdb at %s (%d readings, %d topics, %d segments recovered)",
			*storeDir, st.TotalReadings, st.Topics, st.Segments)
		if *snapshot != "" {
			log.Fatal("-snapshot applies to the in-memory store only; the tsdb backend is durable by itself")
		}
	}

	if *snapshot != "" {
		ms := agent.Store.(*store.Store)
		switch err := ms.LoadFile(*snapshot); {
		case err == nil:
			// Restore the sensor tree so pattern units bind immediately.
			for _, topic := range ms.Topics() {
				if err := agent.Nav.AddSensor(topic); err != nil {
					log.Printf("restoring sensor %s: %v", topic, err)
				}
			}
			log.Printf("restored %d readings from %s", ms.TotalReadings(), *snapshot)
		case os.IsNotExist(err):
			log.Printf("no snapshot at %s, starting fresh", *snapshot)
		default:
			log.Fatalf("loading snapshot: %v", err)
		}
	}

	if *configPath != "" {
		raw, err := os.ReadFile(*configPath)
		if err != nil {
			log.Fatal(err)
		}
		var cfg core.Config
		if err := json.Unmarshal(raw, &cfg); err != nil {
			log.Fatalf("parsing %s: %v", *configPath, err)
		}
		if err := agent.Manager.LoadConfig(cfg); err != nil {
			log.Fatal(err)
		}
		// An explicit -threads flag beats the config file's threads field.
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "threads" && *threads > 0 {
				agent.Manager.SetThreads(*threads)
			}
		})
	}

	srv, err := rest.Serve(*httpAddr, agent.Manager, agent.QE, rest.Options{
		ResultCache: agent.Results,
		RateLimit:   *rateLimit,
		RateBurst:   *rateBurst,
		Metrics:     telemetry.Default,
		SlowQuery:   *slowQuery,
	})
	if err != nil {
		log.Fatal(err)
	}
	var dbg *rest.DebugServer
	if *debugAddr != "" {
		dbg, err = rest.ServeDebug(*debugAddr, telemetry.Default)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("diagnostics (pprof + /metrics) on http://%s", dbg.Addr())
	}
	agent.Start()
	log.Printf("broker on %s; REST on http://%s; %d wintermute threads",
		agent.Addr(), srv.Addr(), agent.Manager.Threads())
	fmt.Printf("MQTT: %s\nREST: http://%s\n", agent.Addr(), srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("shutting down")
	if dbg != nil {
		_ = dbg.Close()
	}
	_ = srv.Close()
	_ = agent.Close() // flushes and closes the tsdb backend, if any
	if *snapshot != "" {
		ms := agent.Store.(*store.Store)
		if err := ms.SaveFile(*snapshot); err != nil {
			log.Printf("saving snapshot: %v", err)
		} else {
			log.Printf("saved %d readings to %s", ms.TotalReadings(), *snapshot)
		}
	}
}
