// Command doclint enforces the repository's documentation contract in
// `make ci` (a go-vet-style check, no external dependencies):
//
//   - every package under internal/ carries a package doc comment
//     ("// Package xxx ..."), and
//   - the public surfaces listed in surfaceDirs (cache, collect, store,
//     tsdb, core and transport — the packages other components program
//     against)
//     document every exported symbol: types, functions, methods on
//     exported types, and exported const/var specs (a doc comment on
//     the enclosing const/var block covers the whole block).
//
// Findings print as file:line messages; any finding fails the run.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// surfaceDirs are the packages whose exported symbols must all carry
// doc comments. internal/core/units rides along with core: operator
// plugins program directly against it; cache and collect joined when
// they became the sink and agent surfaces other components consume;
// resultcache joined when the serving tier started programming against
// its invalidation protocol.
var surfaceDirs = []string{
	"internal/cache",
	"internal/collect",
	"internal/store",
	"internal/tsdb",
	"internal/core",
	"internal/core/units",
	"internal/resultcache",
	"internal/telemetry",
	"internal/transport",
}

func main() {
	var findings []string
	pkgDirs, err := goPackageDirs("internal")
	if err != nil {
		fmt.Fprintf(os.Stderr, "doclint: %v\n", err)
		os.Exit(2)
	}
	surface := make(map[string]bool, len(surfaceDirs))
	for _, d := range surfaceDirs {
		surface[filepath.Clean(d)] = true
	}
	for _, dir := range pkgDirs {
		fs, err := lintDir(dir, surface[filepath.Clean(dir)])
		if err != nil {
			fmt.Fprintf(os.Stderr, "doclint: %v\n", err)
			os.Exit(2)
		}
		findings = append(findings, fs...)
	}
	if len(findings) > 0 {
		sort.Strings(findings)
		for _, f := range findings {
			fmt.Println(f)
		}
		fmt.Fprintf(os.Stderr, "doclint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// goPackageDirs returns every directory under root containing at least
// one non-test Go file.
func goPackageDirs(root string) ([]string, error) {
	seen := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			seen[filepath.Dir(path)] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	dirs := make([]string, 0, len(seen))
	for d := range seen {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	return dirs, nil
}

// lintDir checks one package directory: the package doc always, the
// exported surface when surface is set.
func lintDir(dir string, surface bool) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var findings []string
	for name, pkg := range pkgs {
		hasDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil {
				hasDoc = true
			}
		}
		if !hasDoc {
			findings = append(findings, fmt.Sprintf("%s: package %s has no package doc comment", dir, name))
		}
		if !surface {
			continue
		}
		for path, f := range pkg.Files {
			findings = append(findings, lintFile(fset, path, f)...)
		}
	}
	return findings, nil
}

// lintFile reports every exported top-level symbol of one file that
// lacks a doc comment.
func lintFile(fset *token.FileSet, path string, f *ast.File) []string {
	var findings []string
	report := func(pos token.Pos, what, name string) {
		findings = append(findings,
			fmt.Sprintf("%s: exported %s %s has no doc comment", fset.Position(pos), what, name))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil {
				continue
			}
			if d.Recv != nil {
				recv := receiverTypeName(d.Recv)
				if !ast.IsExported(recv) {
					continue // method on an unexported type
				}
				report(d.Pos(), "method", recv+"."+d.Name.Name)
			} else {
				report(d.Pos(), "function", d.Name.Name)
			}
		case *ast.GenDecl:
			switch d.Tok {
			case token.TYPE:
				for _, spec := range d.Specs {
					ts := spec.(*ast.TypeSpec)
					if ts.Name.IsExported() && d.Doc == nil && ts.Doc == nil {
						report(ts.Pos(), "type", ts.Name.Name)
					}
				}
			case token.CONST, token.VAR:
				// A doc comment on the block documents every spec in it
				// (the idiomatic shape for enums and sentinel errors).
				if d.Doc != nil {
					continue
				}
				for _, spec := range d.Specs {
					vs := spec.(*ast.ValueSpec)
					if vs.Doc != nil || vs.Comment != nil {
						continue
					}
					for _, n := range vs.Names {
						if n.IsExported() {
							report(n.Pos(), strings.ToLower(d.Tok.String()), n.Name)
						}
					}
				}
			}
		}
	}
	return findings
}

// receiverTypeName unwraps a method receiver to its type name.
func receiverTypeName(recv *ast.FieldList) string {
	if len(recv.List) == 0 {
		return ""
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.Ident:
			return tt.Name
		default:
			return ""
		}
	}
}
