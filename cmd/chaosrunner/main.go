// Command chaosrunner executes one chaos scenario (internal/chaos)
// against the real in-process pipeline and emits its JSON verdict.
//
// The exit status is the gate: 0 when the accounting is clean (zero
// acked-lost, duplicate, phantom and value-mismatch readings and a
// clean drain), 1 otherwise. `make chaos` runs the full pre-merge
// configuration and writes BENCH_PR9.json; `make chaos-smoke` runs the
// seeded in-package smoke test under -race instead.
//
// Usage:
//
//	chaosrunner -pushers 1500 -topics 4 -rate 10 -duration 30s -out verdict.json
//
// A fixed -seed reproduces a run's fault dice exactly; 0 derives one
// from the wall clock and prints it in the verdict for replay.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/dcdb/wintermute/internal/chaos"
)

func main() {
	var (
		seed        = flag.Int64("seed", 0, "scenario seed (0 = derive from wall clock, reported in the verdict)")
		pushers     = flag.Int("pushers", 1000, "simulated pusher connections")
		topics      = flag.Int("topics", 4, "sensor topics per pusher")
		rate        = flag.Float64("rate", 5, "batches per topic per second")
		batch       = flag.Int("batch", 10, "readings per batch")
		duration    = flag.Duration("duration", 30*time.Second, "publish window")
		workers     = flag.Int("ingest-workers", 0, "agent ingest workers (0 = default)")
		queueCap    = flag.Int("queue-cap", 2, "agent ingest queue capacity (tiny = standing backpressure)")
		queryLoad   = flag.Int("query-workers", 4, "concurrent REST query workers")
		groupWindow = flag.Duration("group-window", 0, "WAL group-commit linger")
		dir         = flag.String("dir", "", "store directory (empty = temp)")
		out         = flag.String("out", "", "write the JSON verdict to this file (always printed to stdout)")
	)
	flag.Parse()
	if *seed == 0 {
		*seed = time.Now().UnixNano()
	}
	v, err := chaos.Scenario{
		Seed:           *seed,
		Pushers:        *pushers,
		Topics:         *topics,
		Rate:           *rate,
		BatchSize:      *batch,
		Duration:       *duration,
		IngestWorkers:  *workers,
		IngestQueueCap: *queueCap,
		QueryWorkers:   *queryLoad,
		WALGroupWindow: *groupWindow,
		Dir:            *dir,
	}.Run()
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaosrunner: %v\n", err)
		os.Exit(1)
	}
	enc, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaosrunner: encoding verdict: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(string(enc))
	if *out != "" {
		if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "chaosrunner: writing %s: %v\n", *out, err)
			os.Exit(1)
		}
	}
	if !v.Pass {
		fmt.Fprintf(os.Stderr, "chaosrunner: FAIL: %v\n", v.Failures)
		os.Exit(1)
	}
}
