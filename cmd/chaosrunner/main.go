// Command chaosrunner executes one chaos scenario (internal/chaos)
// against the real in-process pipeline and emits its JSON verdict.
//
// The exit status is the gate: 0 when the accounting is clean — with
// the default at-least-once spool that means zero lost readings, period
// (nothing acked-lost, nothing unacked-dropped), plus zero duplicates,
// phantoms, mismatches and a clean drain — 1 otherwise. `make chaos`
// runs the full pre-merge configuration and merges the verdict into
// BENCH_PR10.json; `make chaos-smoke` runs the seeded in-package smoke
// test under -race instead.
//
// Usage:
//
//	chaosrunner -pushers 1500 -topics 4 -rate 10 -duration 30s -out verdict.json
//
// With -merge <file> the verdict is additionally folded into an
// existing JSON report under a "chaos" key (the file is created when
// absent), which is how the per-PR BENCH_*.json artifacts carry both
// the benchmark pairs and the chaos verdict.
//
// A fixed -seed reproduces a run's fault dice exactly; 0 derives one
// from the wall clock and prints it in the verdict for replay.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/dcdb/wintermute/internal/chaos"
)

func main() {
	var (
		seed        = flag.Int64("seed", 0, "scenario seed (0 = derive from wall clock, reported in the verdict)")
		pushers     = flag.Int("pushers", 1000, "simulated pusher connections")
		topics      = flag.Int("topics", 4, "sensor topics per pusher")
		rate        = flag.Float64("rate", 5, "batches per topic per second")
		batch       = flag.Int("batch", 10, "readings per batch")
		duration    = flag.Duration("duration", 30*time.Second, "publish window")
		workers     = flag.Int("ingest-workers", 0, "agent ingest workers (0 = default)")
		queueCap    = flag.Int("queue-cap", 2, "agent ingest queue capacity (tiny = standing backpressure)")
		queryLoad   = flag.Int("query-workers", 4, "concurrent REST query workers")
		groupWindow = flag.Duration("group-window", 0, "WAL group-commit linger")
		dir         = flag.String("dir", "", "store directory (empty = temp)")
		out         = flag.String("out", "", "write the JSON verdict to this file (always printed to stdout)")
		merge       = flag.String("merge", "", "fold the verdict into this JSON report under a 'chaos' key")
		spool       = flag.Int("spool", 0, "pusher spool size in batches (0 = default 256, negative = fire-and-forget)")
	)
	flag.Parse()
	if *seed == 0 {
		*seed = time.Now().UnixNano()
	}
	v, err := chaos.Scenario{
		Seed:           *seed,
		Pushers:        *pushers,
		Topics:         *topics,
		Rate:           *rate,
		BatchSize:      *batch,
		Duration:       *duration,
		IngestWorkers:  *workers,
		IngestQueueCap: *queueCap,
		QueryWorkers:   *queryLoad,
		WALGroupWindow: *groupWindow,
		Dir:            *dir,
		SpoolBatches:   *spool,
	}.Run()
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaosrunner: %v\n", err)
		os.Exit(1)
	}
	enc, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaosrunner: encoding verdict: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(string(enc))
	if *out != "" {
		if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "chaosrunner: writing %s: %v\n", *out, err)
			os.Exit(1)
		}
	}
	if *merge != "" {
		if err := mergeVerdict(*merge, v); err != nil {
			fmt.Fprintf(os.Stderr, "chaosrunner: merging into %s: %v\n", *merge, err)
			os.Exit(1)
		}
	}
	if !v.Pass {
		fmt.Fprintf(os.Stderr, "chaosrunner: FAIL: %v\n", v.Failures)
		os.Exit(1)
	}
}

// mergeVerdict folds the verdict into an existing JSON report (usually
// the per-PR BENCH_*.json benchrunner artifact) under a "chaos" key,
// preserving every other key; a missing file starts a fresh report.
func mergeVerdict(path string, v *chaos.Verdict) error {
	report := map[string]any{}
	raw, err := os.ReadFile(path)
	switch {
	case err == nil:
		if err := json.Unmarshal(raw, &report); err != nil {
			return fmt.Errorf("existing report: %w", err)
		}
	case os.IsNotExist(err):
	default:
		return err
	}
	report["chaos"] = v
	enc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(enc, '\n'), 0o644)
}
