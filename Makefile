GO ?= go

.PHONY: all build vet doclint test race bench bench-json ci

all: build vet doclint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Documentation lint: every internal package carries a package doc
# comment, and the public surfaces of store, tsdb, core and transport
# document every exported symbol (see cmd/doclint).
doclint:
	$(GO) run ./cmd/doclint

test:
	$(GO) test ./...

# Race-enabled run over every internal package; the hottest suspects are
# the operator manager/scheduler, the sharded sensor caches, the
# bound-handle/scratch-arena tick path and the tsdb ingest/flush paths.
race:
	$(GO) test -race -count=1 ./internal/...

# Short benchmark smoke: the tick-path contention pairs, the cache view
# micro-benches, the storage backend pairs (in-memory store vs tsdb
# insert/range plus crash recovery) and the aggregation pairs (naive
# Range+reduce vs the chunk-metadata engine).
# Full suite: go test -bench=. -benchmem .
bench:
	$(GO) test -run '^$$' -bench 'TickAllContention|QueryContention|CacheView|BackendInsertBatch|BackendRange|TSDBRecovery|Aggregate|Downsample' -benchtime 10x -benchmem .

# Machine-readable hot-path results for the per-PR perf trajectory,
# including the storage and aggregation acceptance scenarios (on-disk
# bytes per reading, crash-recovery parity, aggregate speedup and
# allocation ratio vs naive Range+reduce).
bench-json:
	$(GO) run ./cmd/benchrunner -bench-json BENCH_PR4.json

ci: build vet doclint test race bench
