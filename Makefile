GO ?= go

.PHONY: all build vet test race bench bench-json ci

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-enabled run over every internal package; the hottest suspects are
# the operator manager/scheduler, the sharded sensor caches and the new
# bound-handle/scratch-arena tick path.
race:
	$(GO) test -race -count=1 ./internal/...

# Short benchmark smoke: the tick-path contention pairs plus the cache
# view micro-benches. Full suite: go test -bench=. -benchmem .
bench:
	$(GO) test -run '^$$' -bench 'TickAllContention|QueryContention|CacheView' -benchtime 10x -benchmem .

# Machine-readable hot-path results for the per-PR perf trajectory.
bench-json:
	$(GO) run ./cmd/benchrunner -bench-json BENCH_PR2.json

ci: build vet test race bench
