GO ?= go

.PHONY: all build vet test race bench ci

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-enabled runs for the concurrency-sensitive packages: the operator
# manager/scheduler and the sharded sensor caches.
race:
	$(GO) test -race -count=1 ./internal/core/... ./internal/cache/...

# Short benchmark smoke: the tick-path contention pair plus the cache view
# micro-benches. Full suite: go test -bench=. -benchmem .
bench:
	$(GO) test -run '^$$' -bench 'TickAllContention|CacheView' -benchtime 10x -benchmem .

ci: build vet test race bench
