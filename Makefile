GO ?= go

.PHONY: all build vet doclint lint test race bench bench-smoke bench-json chaos chaos-smoke ci

all: build vet doclint lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Documentation lint: every internal package carries a package doc
# comment, and the public surfaces of store, tsdb, cache, collect, core
# and transport document every exported symbol (see cmd/doclint).
doclint:
	$(GO) run ./cmd/doclint

# Invariant lint: the repo-specific analyzer suite (atomicmix,
# lockorder, poolescape, batchinsert) that mechanically enforces the
# concurrency and pooling contracts cataloged in docs/ANALYSIS.md.
lint:
	$(GO) run ./cmd/invlint ./...

test:
	$(GO) test ./...

# Race-enabled run over every internal package; the hottest suspects are
# the operator manager/scheduler, the sharded sensor caches, the
# bound-handle/scratch-arena tick path and the tsdb ingest/flush paths.
# The second leg runs the root-package benchmark suite one iteration
# under the race detector: the paired contention workloads exercise
# cross-goroutine interleavings the unit tests cannot reach.
race:
	$(GO) test -race -count=1 ./internal/...
	$(GO) test -race -run '^$$' -bench . -benchtime 1x .

# Short benchmark run: the tick-path contention pairs, the cache view
# micro-benches, the storage backend pairs (in-memory store vs tsdb
# insert/range plus crash recovery), the aggregation pairs (naive
# Range+reduce vs the chunk-metadata engine), the concurrent-ingest
# pairs (single-lock WAL vs group commit), the dashboard read-path
# pairs (uncached vs result-cached queries, linear vs indexed wildcard
# expansion), the telemetry overhead pairs (instrumented ingest and
# dashboard hot paths with the switch off vs on) and the delivery pairs
# (fire-and-forget publish vs the spooled acked path).
# Full suite: go test -bench=. -benchmem .
bench:
	$(GO) test -run '^$$' -bench 'TickAllContention|QueryContention|CacheView|BackendInsertBatch|BackendRange|TSDBRecovery|Aggregate|Downsample|IngestConcurrent|DashboardQuery|WildcardExpand|Telemetry|PublishUnacked|PublishAcked' -benchtime 10x -benchmem .

# One-iteration smoke over the ENTIRE benchmark suite: every benchmark
# must still compile and execute, so the paired before/after workloads
# cannot bit-rot between the fuller runs. Wired into `make ci`.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

# Machine-readable hot-path results for the per-PR perf trajectory,
# including the storage, aggregation, concurrent-ingest, dashboard
# read-path and telemetry-overhead acceptance scenarios (on-disk bytes
# per reading, crash-recovery parity, aggregate speedup vs naive
# Range+reduce, 16-writer ingest speedup vs the pre-group-commit path,
# cached dashboard-query speedup and wildcard-expansion scaling, the
# <=2% telemetry overhead bound on the ingest and dashboard hot paths,
# and the <=5% acked-publish overhead bound vs fire-and-forget).
bench-json:
	$(GO) run ./cmd/benchrunner -bench-json BENCH_PR10.json

# Seeded chaos smoke (~10s): the fault-injected end-to-end scenario and
# the integration-tier recovery case, both under the race detector. A
# fixed WINTERMUTE_TEST_SEED keeps CI deterministic; drop the variable to
# explore fresh seeds locally (failures log their replay incantation).
# See docs/TESTING.md for the harness design and verdict format.
chaos-smoke:
	WINTERMUTE_TEST_SEED=42 $(GO) test -race -count=1 \
		-run 'TestScenarioSmoke|TestChaosSmokeRecovery' \
		./internal/chaos/ ./internal/integration/

# Full chaos run: 1000 simulated pushers, 30s of scheduled faults
# (killed connections, torn/stalled/failed fsyncs, disk-full, slow
# readers, OOO floods, clock skew) with the at-least-once spool on, so
# the verdict requires zero lost readings, period. The verdict is
# merged into the per-PR benchmark artifact under a "chaos" key.
# Pre-merge gate for storage/transport/ingest changes.
chaos:
	$(GO) run ./cmd/chaosrunner -seed 42 -merge BENCH_PR10.json

ci: build vet doclint lint test race bench-smoke bench chaos-smoke
