GO ?= go

.PHONY: all build vet test race bench bench-json ci

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-enabled run over every internal package; the hottest suspects are
# the operator manager/scheduler, the sharded sensor caches, the
# bound-handle/scratch-arena tick path and the tsdb ingest/flush paths.
race:
	$(GO) test -race -count=1 ./internal/...

# Short benchmark smoke: the tick-path contention pairs, the cache view
# micro-benches and the storage backend pairs (in-memory store vs tsdb
# insert/range plus crash recovery). Full suite: go test -bench=. -benchmem .
bench:
	$(GO) test -run '^$$' -bench 'TickAllContention|QueryContention|CacheView|BackendInsertBatch|BackendRange|TSDBRecovery' -benchtime 10x -benchmem .

# Machine-readable hot-path results for the per-PR perf trajectory,
# including the tsdb insert/range/recovery benches and the PR3 storage
# acceptance scenario (on-disk bytes per reading, crash-recovery parity).
bench-json:
	$(GO) run ./cmd/benchrunner -bench-json BENCH_PR3.json

ci: build vet test race bench
