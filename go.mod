module github.com/dcdb/wintermute

go 1.22
