// Package wintermute holds the repository-level benchmark suite: one
// bench per evaluation figure of the paper plus the ablation benches
// called out in DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
package wintermute

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/dcdb/wintermute/internal/cache"
	"github.com/dcdb/wintermute/internal/core"
	"github.com/dcdb/wintermute/internal/core/units"
	"github.com/dcdb/wintermute/internal/ml/bgmm"
	"github.com/dcdb/wintermute/internal/ml/forest"
	"github.com/dcdb/wintermute/internal/ml/quantile"
	"github.com/dcdb/wintermute/internal/navigator"
	"github.com/dcdb/wintermute/internal/plugins/aggregator"
	"github.com/dcdb/wintermute/internal/plugins/tester"
	"github.com/dcdb/wintermute/internal/rest"
	"github.com/dcdb/wintermute/internal/resultcache"
	"github.com/dcdb/wintermute/internal/sensor"
	"github.com/dcdb/wintermute/internal/sim/cluster"
	"github.com/dcdb/wintermute/internal/store"
	"github.com/dcdb/wintermute/internal/telemetry"
	"github.com/dcdb/wintermute/internal/transport"
	"github.com/dcdb/wintermute/internal/tsdb"

	_ "github.com/dcdb/wintermute/internal/plugins/all"
)

const sec = int64(time.Second)

// --- Figure 5 ablation: cache view modes --------------------------------

func filledCache(n int) *cache.Cache {
	c := cache.New(n, time.Second)
	for i := 0; i < n; i++ {
		c.Store(sensor.Reading{Value: float64(i), Time: int64(i) * sec})
	}
	return c
}

// BenchmarkCacheViewRelative measures the O(1) relative view (Fig. 5b's
// query path).
func BenchmarkCacheViewRelative(b *testing.B) {
	c := filledCache(180)
	buf := make([]sensor.Reading, 0, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = c.ViewRelative(50*time.Second, buf[:0])
	}
	_ = buf
}

// BenchmarkCacheViewAbsolute measures the O(log N) binary-search view
// (Fig. 5a's query path).
func BenchmarkCacheViewAbsolute(b *testing.B) {
	c := filledCache(180)
	latest, _ := c.Latest()
	buf := make([]sensor.Reading, 0, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = c.ViewAbsolute(latest.Time-50*sec, latest.Time, buf[:0])
	}
	_ = buf
}

// --- Figure 5: tester operator query load -------------------------------

func testerEnv(b *testing.B, sensors int) (*core.QueryEngine, *core.Manager) {
	b.Helper()
	nav := navigator.New()
	caches := cache.NewSet()
	for i := 0; i < sensors; i++ {
		topic := sensor.Topic(fmt.Sprintf("/node/test%d", i))
		if err := nav.AddSensor(topic); err != nil {
			b.Fatal(err)
		}
		c := caches.GetOrCreate(topic, 180, time.Second)
		for k := 0; k < 180; k++ {
			c.Store(sensor.Reading{Value: float64(k), Time: int64(k) * sec})
		}
	}
	qe := core.NewQueryEngine(nav, caches, nil)
	sink := core.NewCacheSink(caches, nav, 180, time.Second)
	m := core.NewManager(qe, sink, core.Env{})
	b.Cleanup(m.Close)
	return qe, m
}

func benchTesterOperator(b *testing.B, absolute bool) {
	qe, m := testerEnv(b, 1000)
	inputs := make([]string, 1000)
	for i := range inputs {
		inputs[i] = fmt.Sprintf("test%d", i)
	}
	raw, _ := json.Marshal(tester.Config{
		OperatorConfig: core.OperatorConfig{
			Name: "t", Inputs: inputs, Outputs: []string{"n"}, Unit: "/node/",
		},
		Queries:  1000,
		WindowMs: 100000,
		Absolute: absolute,
	})
	if err := m.LoadPlugin("tester", raw); err != nil {
		b.Fatal(err)
	}
	now := time.Unix(179, 0)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := m.TickAll(now); err != nil {
			b.Fatal(err)
		}
	}
	_ = qe
}

// BenchmarkQueryEngineRelative reproduces Fig. 5's heaviest relative-mode
// cell: 1000 queries over 100 s ranges per interval.
func BenchmarkQueryEngineRelative(b *testing.B) { benchTesterOperator(b, false) }

// BenchmarkQueryEngineAbsolute reproduces the same cell in absolute mode.
func BenchmarkQueryEngineAbsolute(b *testing.B) { benchTesterOperator(b, true) }

// --- Ablation: cache hit vs store fallback ------------------------------

func BenchmarkQueryCacheHit(b *testing.B) {
	nav := navigator.New()
	caches := cache.NewSet()
	st := store.New(0)
	_ = nav.AddSensor("/n/power")
	c := caches.GetOrCreate("/n/power", 180, time.Second)
	for k := 0; k < 180; k++ {
		r := sensor.Reading{Value: float64(k), Time: int64(k) * sec}
		c.Store(r)
		st.Insert("/n/power", r)
	}
	qe := core.NewQueryEngine(nav, caches, st)
	buf := make([]sensor.Reading, 0, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = qe.QueryRelative("/n/power", 60*time.Second, buf[:0])
	}
	_ = buf
}

func BenchmarkQueryStoreFallback(b *testing.B) {
	nav := navigator.New()
	caches := cache.NewSet()
	st := store.New(0)
	_ = nav.AddSensor("/n/power")
	for k := 0; k < 180; k++ {
		st.Insert("/n/power", sensor.Reading{Value: float64(k), Time: int64(k) * sec})
	}
	qe := core.NewQueryEngine(nav, caches, st) // no cache: store answers
	buf := make([]sensor.Reading, 0, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = qe.QueryRelative("/n/power", 60*time.Second, buf[:0])
	}
	_ = buf
}

// --- Tentpole: bound sensor handles vs per-call topic resolution ---------

// boundQueryEnv builds one hot sensor served from a populated cache set.
func boundQueryEnv(b *testing.B) *core.QueryEngine {
	b.Helper()
	nav := navigator.New()
	caches := cache.NewSet()
	_ = nav.AddSensor("/n/power")
	c := caches.GetOrCreate("/n/power", 180, time.Second)
	for k := 0; k < 180; k++ {
		c.Store(sensor.Reading{Value: float64(k), Time: int64(k) * sec})
	}
	return core.NewQueryEngine(nav, caches, nil)
}

// BenchmarkQueryRelativeUnbound is the per-call resolution path: every
// query pays the FNV topic hash, the shard map lookup and the shard RLock
// before touching the ring buffer.
func BenchmarkQueryRelativeUnbound(b *testing.B) {
	qe := boundQueryEnv(b)
	buf := make([]sensor.Reading, 0, 256)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = qe.QueryRelative("/n/power", 60*time.Second, buf[:0])
	}
	_ = buf
}

// BenchmarkQueryRelativeBound is the same query through a bound handle:
// topic resolution was paid once at Bind time, the steady state goes
// straight to the ring buffer — and performs zero allocations.
func BenchmarkQueryRelativeBound(b *testing.B) {
	qe := boundQueryEnv(b)
	h := qe.Bind("/n/power")
	buf := make([]sensor.Reading, 0, 256)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = h.QueryRelative(60*time.Second, buf[:0])
	}
	_ = buf
}

// --- Tentpole: per-tick allocations, legacy Compute vs scratch arenas ----

// legacyOnly wraps an operator exposing nothing but the plain Operator
// interface, forcing the tick path onto the allocating Compute shim —
// the pre-scratch-arena behaviour, kept measurable for the before/after
// comparison.
type legacyOnly struct{ core.Operator }

// tickAllocEnv builds an aggregator over 64 node units whose caches are
// warm, the steady-state shape of a roll-up operator.
func tickAllocEnv(b *testing.B, legacy bool) (*core.QueryEngine, core.Operator, core.Sink) {
	b.Helper()
	nav := navigator.New()
	caches := cache.NewSet()
	for n := 0; n < 64; n++ {
		topic := sensor.Topic(fmt.Sprintf("/r1/n%02d/power", n))
		_ = nav.AddSensor(topic)
		c := caches.GetOrCreate(topic, 180, time.Second)
		for k := 0; k < 180; k++ {
			c.Store(sensor.Reading{Value: float64(k), Time: int64(k) * sec})
		}
	}
	qe := core.NewQueryEngine(nav, caches, nil)
	// Keep this workload in sync with tickEnv in cmd/benchrunner/benchjson.go:
	// the JSON trajectory numbers must stay comparable to `make bench`.
	op, err := aggregator.New(aggregator.Config{
		OperatorConfig: core.OperatorConfig{
			Name:    "agg",
			Inputs:  []string{"power"},
			Outputs: []string{"<bottomup>power-agg"},
		},
		Operation: aggregator.Mean,
		WindowMs:  60000,
	}, qe)
	if err != nil {
		b.Fatal(err)
	}
	sink := core.SinkFunc(func(sensor.Topic, sensor.Reading) {})
	if legacy {
		return qe, legacyOnly{op}, sink
	}
	return qe, op, sink
}

// BenchmarkTickComputeLegacy drives 64 sequential unit computations per
// tick through the allocating Compute path (fresh context, fresh buffers
// per unit).
func BenchmarkTickComputeLegacy(b *testing.B) {
	qe, op, sink := tickAllocEnv(b, true)
	now := time.Unix(179, 0)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := core.Tick(op, qe, sink, now); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTickComputeScratch drives the same 64 computations through
// ComputeInto with pooled scratch arenas and bound sensor handles: the
// steady-state tick performs ~zero allocations.
func BenchmarkTickComputeScratch(b *testing.B) {
	qe, op, sink := tickAllocEnv(b, false)
	now := time.Unix(179, 0)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := core.Tick(op, qe, sink, now); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Unit System at scale ------------------------------------------------

// BenchmarkUnitResolution instantiates one pattern-unit block over the
// full CooLMUC-3 tree (148 nodes x 64 cores), producing one unit per core
// — the large-scale configuration mechanism of paper §III-C.
func BenchmarkUnitResolution(b *testing.B) {
	nav := navigator.New()
	if err := cluster.CooLMUC3().Populate(nav); err != nil {
		b.Fatal(err)
	}
	tpl, err := units.NewTemplate(
		[]string{"<bottomup>cpu-cycles", "<bottomup>instructions"},
		[]string{"<bottomup>cpi"},
	)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		us, err := tpl.Instantiate(nav)
		if err != nil {
			b.Fatal(err)
		}
		if len(us) != 148*64 {
			b.Fatalf("units = %d", len(us))
		}
	}
}

// BenchmarkPatternParse measures pattern-expression parsing.
func BenchmarkPatternParse(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := units.Parse("<bottomup, filter cpu>cpu-cycles"); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation: sequential vs parallel unit management (§IV-c) -----------

func unitMgmtEnv(b *testing.B, parallel bool) (*core.QueryEngine, core.Operator, core.Sink) {
	b.Helper()
	nav := navigator.New()
	caches := cache.NewSet()
	for n := 0; n < 64; n++ {
		topic := sensor.Topic(fmt.Sprintf("/r1/n%02d/power", n))
		_ = nav.AddSensor(topic)
		c := caches.GetOrCreate(topic, 180, time.Second)
		for k := 0; k < 180; k++ {
			c.Store(sensor.Reading{Value: float64(k), Time: int64(k) * sec})
		}
	}
	qe := core.NewQueryEngine(nav, caches, nil)
	cfg := tester.Config{
		OperatorConfig: core.OperatorConfig{
			Name:     "t",
			Inputs:   []string{"power"},
			Outputs:  []string{"<bottomup>out"},
			Parallel: parallel,
		},
		Queries:  200,
		WindowMs: 100000,
	}
	op, err := tester.New(cfg, qe)
	if err != nil {
		b.Fatal(err)
	}
	return qe, op, core.SinkFunc(func(sensor.Topic, sensor.Reading) {})
}

func BenchmarkUnitsSequential(b *testing.B) {
	qe, op, sink := unitMgmtEnv(b, false)
	now := time.Unix(179, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := core.Tick(op, qe, sink, now); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnitsParallel(b *testing.B) {
	qe, op, sink := unitMgmtEnv(b, true)
	now := time.Unix(179, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := core.Tick(op, qe, sink, now); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Tentpole: pooled TickAll under many-operator contention -------------

// probeOp models an in-band analytics operator at realistic shape: each
// per-unit computation issues cache queries through the Query Engine (lock
// contention on the sharded cache.Set) and then pays a fixed probe latency,
// standing in for the blocking reads of perf counters / sysfs / IPMI that
// real node-level operators perform. Operator-level concurrency can overlap
// the probes; the query load contends on the cache shards.
type probeOp struct {
	*core.Base
	queries int
	probe   time.Duration
}

func (o *probeOp) Compute(qe *core.QueryEngine, u *units.Unit, now time.Time) ([]core.Output, error) {
	return o.ComputeInto(qe, u, now, core.NewTickContext())
}

// ComputeInto runs the probe workload on the zero-allocation path: bound
// sensor handles and context scratch, like the production plugins.
func (o *probeOp) ComputeInto(qe *core.QueryEngine, u *units.Unit, now time.Time, tc *core.TickContext) ([]core.Output, error) {
	bu := qe.BindUnit(u)
	buf := tc.Readings
	for q := 0; q < o.queries; q++ {
		buf = bu.Inputs[q%len(u.Inputs)].QueryRelative(100*time.Second, buf[:0])
	}
	tc.Readings = buf
	if o.probe > 0 {
		time.Sleep(o.probe)
	}
	outs := tc.Outputs[:0]
	for _, topic := range u.Outputs {
		outs = append(outs, core.Output{Topic: topic, Reading: sensor.At(float64(len(buf)), now)})
	}
	tc.Outputs = outs
	return outs, nil
}

// legacyProbeOp is the pre-PR2 probe: per-call topic resolution through
// the unbound Query Engine API and fresh buffers every computation. It is
// kept as the before side of the hot-path before/after pair.
type legacyProbeOp struct {
	*core.Base
	queries int
	probe   time.Duration
}

func (o *legacyProbeOp) Compute(qe *core.QueryEngine, u *units.Unit, now time.Time) ([]core.Output, error) {
	buf := make([]sensor.Reading, 0, 256)
	for q := 0; q < o.queries; q++ {
		in := u.Inputs[q%len(u.Inputs)]
		buf = qe.QueryRelative(in, 100*time.Second, buf[:0])
	}
	if o.probe > 0 {
		time.Sleep(o.probe)
	}
	outs := make([]core.Output, 0, len(u.Outputs))
	for _, topic := range u.Outputs {
		outs = append(outs, core.Output{Topic: topic, Reading: sensor.At(float64(len(buf)), now)})
	}
	return outs, nil
}

type probeConfig struct {
	Ops     int `json:"ops"`
	Queries int `json:"queries"`
	ProbeUs int `json:"probeUs"`
	// Legacy selects the unbound, allocating computation path.
	Legacy bool `json:"legacy"`
}

func init() {
	core.RegisterPlugin("benchprobe", func(cfg json.RawMessage, qe *core.QueryEngine, env core.Env) ([]core.Operator, error) {
		var c probeConfig
		if err := json.Unmarshal(cfg, &c); err != nil {
			return nil, err
		}
		ops := make([]core.Operator, 0, c.Ops)
		for i := 0; i < c.Ops; i++ {
			oc := core.OperatorConfig{
				Name:     fmt.Sprintf("probe%d", i),
				Inputs:   []string{"power"},
				Outputs:  []string{fmt.Sprintf("<bottomup>probe%d", i)},
				Parallel: true,
			}
			base, err := oc.Build("benchprobe", qe.Navigator())
			if err != nil {
				return nil, err
			}
			probe := time.Duration(c.ProbeUs) * time.Microsecond
			if c.Legacy {
				ops = append(ops, &legacyProbeOp{Base: base, queries: c.Queries, probe: probe})
			} else {
				ops = append(ops, &probeOp{Base: base, queries: c.Queries, probe: probe})
			}
		}
		return ops, nil
	})
}

// benchTickAllContention drives 8 online operators with parallel units (16
// units each) over one sharded cache.Set through Manager.TickAll, with the
// manager's worker pool sized by threads. threads=1 is the sequential
// baseline: every computation of every operator runs one after another,
// like the pre-scheduler TickAll.
func benchTickAllContention(b *testing.B, threads int) {
	benchTickAllContentionCfg(b, threads, 100, false)
}

// benchTickAllContentionCfg drives the contention workload with a chosen
// probe latency and computation path. probeUs=0 removes the fixed probe
// sleep so the query and allocation costs dominate — the configuration
// that isolates the hot-path gains of bound handles and scratch arenas.
func benchTickAllContentionCfg(b *testing.B, threads, probeUs int, legacy bool) {
	nav := navigator.New()
	caches := cache.NewSet()
	for n := 0; n < 16; n++ {
		topic := sensor.Topic(fmt.Sprintf("/r1/n%02d/power", n))
		if err := nav.AddSensor(topic); err != nil {
			b.Fatal(err)
		}
		c := caches.GetOrCreate(topic, 180, time.Second)
		for k := 0; k < 180; k++ {
			c.Store(sensor.Reading{Value: float64(k), Time: int64(k) * sec})
		}
	}
	qe := core.NewQueryEngine(nav, caches, nil)
	sink := core.NewCacheSink(caches, nav, 180, time.Second)
	m := core.NewManager(qe, sink, core.Env{})
	m.SetThreads(threads)
	b.Cleanup(m.Close)
	raw, _ := json.Marshal(probeConfig{Ops: 8, Queries: 25, ProbeUs: probeUs, Legacy: legacy})
	if err := m.LoadPlugin("benchprobe", raw); err != nil {
		b.Fatal(err)
	}
	now := time.Unix(179, 0)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := m.TickAll(now); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTickAllContentionSequential is the pre-scheduler baseline: one
// computation at a time.
func BenchmarkTickAllContentionSequential(b *testing.B) { benchTickAllContention(b, 1) }

// BenchmarkTickAllContentionPooled runs the same load on an 8-thread pool
// (the paper's `threads` knob); 8 operators x 16 parallel units overlap
// both their probe latencies and their cache queries.
func BenchmarkTickAllContentionPooled(b *testing.B) { benchTickAllContention(b, 8) }

// BenchmarkTickAllQueryContentionLegacy is the probe-free contention
// workload on the pre-PR2 path: unbound queries and fresh buffers per
// computation, 8 operators x 16 parallel units on an 8-thread pool.
func BenchmarkTickAllQueryContentionLegacy(b *testing.B) {
	benchTickAllContentionCfg(b, 8, 0, true)
}

// BenchmarkTickAllQueryContentionBound is the same workload on the bound
// handle + scratch arena path — the paired after-measurement.
func BenchmarkTickAllQueryContentionBound(b *testing.B) {
	benchTickAllContentionCfg(b, 8, 0, false)
}

// --- Figure 6: random forest ---------------------------------------------

func trainedForest(b *testing.B, trees, depth int) (*forest.Forest, []float64) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	n, d := 4000, 28 // 4 sensors x 7 features, like the regressor
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = make([]float64, d)
		for j := range x[i] {
			x[i][j] = rng.Float64()
		}
		y[i] = 150 + 50*x[i][0] - 30*x[i][7] + rng.NormFloat64()*5
	}
	f := forest.New(forest.Params{Trees: trees, MaxDepth: depth, Seed: 3})
	if err := f.Fit(x, y); err != nil {
		b.Fatal(err)
	}
	return f, x[0]
}

// BenchmarkRegressorPredict measures one online prediction of the Fig. 6
// model (32 trees, 28 features) — the per-interval inference cost that
// must stay negligible next to 250 ms sampling.
func BenchmarkRegressorPredict(b *testing.B) {
	f, probe := trainedForest(b, 32, 12)
	b.ResetTimer()
	b.ReportAllocs()
	var s float64
	for i := 0; i < b.N; i++ {
		s += f.Predict(probe)
	}
	_ = s
}

// BenchmarkForestSweep ablates ensemble size and depth.
func BenchmarkForestSweep(b *testing.B) {
	for _, cfg := range []struct{ trees, depth int }{
		{8, 8}, {32, 12}, {64, 16},
	} {
		b.Run(fmt.Sprintf("trees=%d/depth=%d", cfg.trees, cfg.depth), func(b *testing.B) {
			f, probe := trainedForest(b, cfg.trees, cfg.depth)
			b.ResetTimer()
			var s float64
			for i := 0; i < b.N; i++ {
				s += f.Predict(probe)
			}
			_ = s
		})
	}
}

// --- Figure 7: decile aggregation ----------------------------------------

// BenchmarkDeciles2048 measures one persyst decile computation over 2048
// per-core CPI samples — "each decile is aggregated from 2048 samples at
// a time" (paper §VI-C).
func BenchmarkDeciles2048(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	vals := make([]float64, 2048)
	for i := range vals {
		vals[i] = 1.5 + rng.ExpFloat64()
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d := quantile.Deciles(vals)
		if d[0] > d[10] {
			b.Fatal("deciles inverted")
		}
	}
}

// --- Figure 8: Bayesian GMM ----------------------------------------------

// BenchmarkBGMMFit148 measures one clustering pass at the paper's fleet
// size: 148 nodes x 3 aggregate metrics, the hourly computation of §VI-D.
func BenchmarkBGMMFit148(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	x := make([][]float64, 148)
	centers := [][]float64{{95, 47.5, 5e5}, {145, 50.5, 2.7e5}, {195, 53.5, 5e4}}
	for i := range x {
		c := centers[i%3]
		x[i] = []float64{
			c[0] + rng.NormFloat64()*6,
			c[1] + rng.NormFloat64()*0.4,
			c[2] + rng.NormFloat64()*3e4,
		}
	}
	z, _, _ := bgmm.Standardize(x)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := bgmm.Fit(z, bgmm.Params{MaxComponents: 8, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if m.NumActive() < 2 {
			b.Fatalf("clusters = %d", m.NumActive())
		}
	}
}

// --- Substrate micro-benches ----------------------------------------------

func BenchmarkStoreInsert(b *testing.B) {
	st := store.New(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		st.Insert("/n/power", sensor.Reading{Value: float64(i), Time: int64(i)})
	}
}

func BenchmarkStoreRange(b *testing.B) {
	st := store.New(0)
	for i := 0; i < 100000; i++ {
		st.Insert("/n/power", sensor.Reading{Value: float64(i), Time: int64(i) * sec})
	}
	buf := make([]sensor.Reading, 0, 512)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = st.Range("/n/power", 50000*sec, 50300*sec, buf[:0])
	}
	_ = buf
}

func BenchmarkNavigatorResolve(b *testing.B) {
	nav := navigator.New()
	if err := cluster.CooLMUC3().Populate(nav); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := nav.Resolve("/r03/c02/s05/"); !ok {
			b.Fatal("resolve failed")
		}
	}
}

// BenchmarkTransportPublish measures the Pusher->Collect Agent data path:
// encode, route through the broker, decode and deliver locally.
func BenchmarkTransportPublish(b *testing.B) {
	broker, err := transport.NewBroker("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer broker.Close()
	recv := make(chan struct{}, 1024)
	broker.SubscribeLocal("#", func(m transport.Message) { recv <- struct{}{} })
	client, err := transport.Dial(broker.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()
	batch := make([]sensor.Reading, 10)
	for i := range batch {
		batch[i] = sensor.Reading{Value: float64(i), Time: int64(i)}
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := client.Publish("/r1/n1/power", batch); err != nil {
			b.Fatal(err)
		}
		<-recv
	}
}

// --- PR10: at-least-once delivery overhead ------------------------------

// benchPublishDelivery measures sustained publish->local-delivery
// throughput with the chosen client mode: the fire-and-forget v1
// client, or the spooled at-least-once client whose batches travel as
// acknowledged v2 frames. Publishes are pipelined (the production
// shape: pushers never wait per batch) and one op is one batch fully
// delivered. The pair bounds the ack machinery's no-fault throughput
// overhead (acceptance: acked within 5% of unacked).
func benchPublishDelivery(b *testing.B, spool int) {
	broker, err := transport.NewBroker("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer broker.Close()
	target := int64(b.N)
	var delivered atomic.Int64
	done := make(chan struct{}, 1)
	broker.SubscribeLocal("#", func(m transport.Message) {
		if delivered.Add(1) == target {
			done <- struct{}{}
		}
	})
	var client *transport.Client
	if spool > 0 {
		client, err = transport.DialOptions(broker.Addr(), transport.Options{SpoolBatches: spool})
	} else {
		client, err = transport.Dial(broker.Addr())
	}
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()
	batch := make([]sensor.Reading, 10)
	for i := range batch {
		batch[i] = sensor.Reading{Value: float64(i), Time: int64(i)}
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := client.Publish("/r1/n1/power", batch); err != nil {
			b.Fatal(err)
		}
	}
	<-done
}

// BenchmarkPublishUnacked is the fire-and-forget baseline of the pair.
func BenchmarkPublishUnacked(b *testing.B) { benchPublishDelivery(b, 0) }

// BenchmarkPublishAcked routes the same workload through the spool:
// v2 frames, broker PubAcks, client-side ack tracking.
func BenchmarkPublishAcked(b *testing.B) { benchPublishDelivery(b, 1024) }

// --- PR3: persistent storage backend (tsdb) vs in-memory store ----------

// tsdbBenchSeries generates the paired-bench workload: regularly sampled
// integer-ish sensor values, the shape the Gorilla compressor is built
// for.
func tsdbBenchSeries(n int) []sensor.Reading {
	rng := rand.New(rand.NewSource(7))
	rs := make([]sensor.Reading, n)
	for i := range rs {
		rs[i] = sensor.Reading{
			Value: 100 + float64(i%23) + float64(rng.Intn(5)),
			Time:  int64(i) * sec,
		}
	}
	return rs
}

// BenchmarkBackendInsertBatchMemory / ...TSDB pair the batched ingest
// path of both store.Backend implementations: 64-reading batches, the
// shape one delivered MQTT message produces.
func BenchmarkBackendInsertBatchMemory(b *testing.B) {
	st := store.New(0)
	benchBackendInsertBatch(b, st)
}

func BenchmarkBackendInsertBatchTSDB(b *testing.B) {
	db, err := tsdb.Open(b.TempDir(), tsdb.Options{FlushEvery: -1})
	if err != nil {
		b.Fatal(err)
	}
	benchBackendInsertBatch(b, db)
	// Close flushes everything inserted (cost scales with b.N): keep it
	// out of the timed window or it pollutes the insert ns/op.
	b.StopTimer()
	db.Close()
	b.StartTimer()
}

func benchBackendInsertBatch(b *testing.B, backend store.Backend) {
	batch := tsdbBenchSeries(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range batch {
			batch[j].Time = int64(i*64+j) * sec
		}
		backend.InsertBatch("/n/power", batch)
	}
}

// BenchmarkBackendRangeMemory / ...TSDB pair a 300-reading range query
// against 100k stored readings; the tsdb variant answers from a
// compressed segment (decode included).
func BenchmarkBackendRangeMemory(b *testing.B) {
	st := store.New(0)
	st.InsertBatch("/n/power", tsdbBenchSeries(100000))
	benchBackendRange(b, st)
}

func BenchmarkBackendRangeTSDB(b *testing.B) {
	db, err := tsdb.Open(b.TempDir(), tsdb.Options{FlushEvery: -1})
	if err != nil {
		b.Fatal(err)
	}
	db.InsertBatch("/n/power", tsdbBenchSeries(100000))
	if err := db.Flush(); err != nil {
		b.Fatal(err)
	}
	benchBackendRange(b, db)
	b.StopTimer()
	db.Close()
	b.StartTimer()
}

func benchBackendRange(b *testing.B, backend store.Backend) {
	buf := make([]sensor.Reading, 0, 512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = backend.Range("/n/power", 50000*sec, 50300*sec, buf[:0])
	}
	if len(buf) != 301 {
		b.Fatalf("range = %d readings", len(buf))
	}
}

// BenchmarkTSDBRecoveryOpen measures crash recovery: opening a database
// whose WAL holds 64 topics x 256 readings with no prior flush. Each
// iteration recovers a fresh copy of the crash directory (copied outside
// the timer) so the measured state never accumulates WAL files or open
// descriptors across iterations.
func BenchmarkTSDBRecoveryOpen(b *testing.B) {
	crashDir := b.TempDir()
	db, err := tsdb.Open(crashDir, tsdb.Options{FlushEvery: -1})
	if err != nil {
		b.Fatal(err)
	}
	rs := tsdbBenchSeries(256)
	for n := 0; n < 64; n++ {
		db.InsertBatch(sensor.Topic(fmt.Sprintf("/r1/n%02d/power", n)), rs)
	}
	// db is never Closed: crashDir is the post-kill on-disk state.
	copies := b.TempDir()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir := fmt.Sprintf("%s/i%d", copies, i)
		copyCrashState(b, crashDir, dir)
		b.StartTimer()
		db2, err := tsdb.Open(dir, tsdb.Options{FlushEvery: -1})
		if err != nil {
			b.Fatal(err)
		}
		if db2.TotalReadings() != 64*256 {
			b.Fatalf("recovered %d readings", db2.TotalReadings())
		}
		b.StopTimer()
		db2.Close()
		os.RemoveAll(dir)
		b.StartTimer()
	}
}

// copyCrashState clones a tsdb directory tree (wal/ and seg/ files).
func copyCrashState(b *testing.B, src, dst string) {
	b.Helper()
	for _, sub := range []string{"wal", "seg"} {
		if err := os.MkdirAll(filepath.Join(dst, sub), 0o755); err != nil {
			b.Fatal(err)
		}
		entries, err := os.ReadDir(filepath.Join(src, sub))
		if err != nil {
			b.Fatal(err)
		}
		for _, e := range entries {
			data, err := os.ReadFile(filepath.Join(src, sub, e.Name()))
			if err != nil {
				b.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dst, sub, e.Name()), data, 0o644); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- PR4: aggregation engine vs naive Range+reduce -----------------------

// aggBenchDB builds the PR4 acceptance corpus: 100k+ readings across 64
// topics, flushed into segments so the per-chunk pre-aggregates exist.
func aggBenchDB(b *testing.B) (*tsdb.DB, []sensor.Topic) {
	b.Helper()
	db, err := tsdb.Open(b.TempDir(), tsdb.Options{FlushEvery: -1})
	if err != nil {
		b.Fatal(err)
	}
	rs := tsdbBenchSeries(1600) // 64 x 1600 = 102,400 readings
	topics := make([]sensor.Topic, 64)
	for n := range topics {
		topics[n] = sensor.Topic(fmt.Sprintf("/r%02d/n%02d/power", n/8, n%8))
		db.InsertBatch(topics[n], rs)
	}
	if err := db.Flush(); err != nil {
		b.Fatal(err)
	}
	return db, topics
}

// BenchmarkAggregateNaiveRange is the before side of the PR4 pair: an
// average over every topic's full history computed the pre-engine way —
// materialize the raw range into a slice, reduce it in the caller, throw
// the slice away.
func BenchmarkAggregateNaiveRange(b *testing.B) {
	db, topics := aggBenchDB(b)
	defer db.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var total store.AggResult
		for _, tp := range topics {
			total.Merge(store.AggregateNaive(db, tp, 0, 1600*sec))
		}
		if total.Count != 102400 {
			b.Fatalf("aggregated %d readings", total.Count)
		}
	}
}

// BenchmarkAggregateEngine is the after side: the same query through the
// tsdb aggregation engine — fully-covered chunks answer from index
// pre-aggregates in O(1), no reading is materialized.
func BenchmarkAggregateEngine(b *testing.B) {
	db, topics := aggBenchDB(b)
	defer db.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var total store.AggResult
		for _, tp := range topics {
			total.Merge(db.Aggregate(tp, 0, 1600*sec))
		}
		if total.Count != 102400 {
			b.Fatalf("aggregated %d readings", total.Count)
		}
	}
}

// BenchmarkDownsampleNaiveRange / ...Engine pair 60-second bucketed
// averages over one topic's 1600-reading history: materialize+bucket in
// the caller vs the engine's streaming chunk decode.
func BenchmarkDownsampleNaiveRange(b *testing.B) {
	db, topics := aggBenchDB(b)
	defer db.Close()
	b.ReportAllocs()
	b.ResetTimer()
	var buckets []store.Bucket
	for i := 0; i < b.N; i++ {
		buckets = store.DownsampleNaive(db, topics[i%len(topics)], 0, 1600*sec, 60*sec, buckets[:0])
		if len(buckets) != 27 {
			b.Fatalf("%d buckets", len(buckets))
		}
	}
}

func BenchmarkDownsampleEngine(b *testing.B) {
	db, topics := aggBenchDB(b)
	defer db.Close()
	b.ReportAllocs()
	b.ResetTimer()
	var buckets []store.Bucket
	for i := 0; i < b.N; i++ {
		buckets = db.Downsample(topics[i%len(topics)], 0, 1600*sec, 60*sec, buckets[:0])
		if len(buckets) != 27 {
			b.Fatalf("%d buckets", len(buckets))
		}
	}
}

// --- PR5: concurrent ingest, legacy single-lock WAL vs group commit ------

// benchIngestConcurrent measures sustained multi-writer InsertBatch
// throughput: `writers` goroutines each appending 64-reading batches to
// their own topic. One op is one batch, so ns/op is the sustained
// per-batch cost across the whole writer cohort. legacy selects the
// pre-PR5 path (WAL encode+write+fsync under one lock, global head
// resolution); grouped is the group-commit WAL + sharded head map.
func benchIngestConcurrent(b *testing.B, writers int, walSync, legacy bool, reg *telemetry.Registry) {
	db, err := tsdb.Open(b.TempDir(), tsdb.Options{
		FlushEvery:   -1,
		WALSync:      walSync,
		LegacyIngest: legacy,
		Metrics:      reg,
	})
	if err != nil {
		b.Fatal(err)
	}
	proto := tsdbBenchSeries(64)
	topics := make([]sensor.Topic, writers)
	for w := range topics {
		topics[w] = sensor.Topic(fmt.Sprintf("/r%02d/n%02d/power", w/8, w%8))
	}
	b.ReportAllocs()
	b.ResetTimer()
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			batch := make([]sensor.Reading, len(proto))
			copy(batch, proto)
			for {
				i := next.Add(1) - 1
				if i >= int64(b.N) {
					return
				}
				for j := range batch {
					batch[j].Time = (i*64 + int64(j)) * sec
				}
				db.InsertBatch(topics[w], batch)
			}
		}(w)
	}
	wg.Wait()
	b.StopTimer()
	db.Close()
	b.StartTimer()
}

// BenchmarkIngestConcurrentLegacy is the before side of the PR5 pair:
// every concurrent batch serializes on the WAL writer lock (encode +
// write + per-batch fsync when sync is on) and a global head lookup.
func BenchmarkIngestConcurrentLegacy(b *testing.B) {
	for _, writers := range []int{8, 16, 32} {
		for _, walSync := range []bool{false, true} {
			b.Run(fmt.Sprintf("writers=%d/sync=%v", writers, walSync), func(b *testing.B) {
				benchIngestConcurrent(b, writers, walSync, true, nil)
			})
		}
	}
}

// BenchmarkIngestConcurrentGrouped is the after side: writers encode
// outside the lock and share one write + one fsync per commit cohort,
// and head resolution touches only the topic's shard.
func BenchmarkIngestConcurrentGrouped(b *testing.B) {
	for _, writers := range []int{8, 16, 32} {
		for _, walSync := range []bool{false, true} {
			b.Run(fmt.Sprintf("writers=%d/sync=%v", writers, walSync), func(b *testing.B) {
				benchIngestConcurrent(b, writers, walSync, false, nil)
			})
		}
	}
}

// --- PR7: dashboard read path — result cache + wildcard topic index ------

// dashReadings sizes each sensor's history: a dashboard-scale window
// (2000 points per sensor, 64 sensors) so the uncached side pays a
// realistic recompute per request.
const dashReadings = 2000

// dashBenchStack builds a Collect-Agent-shaped serving stack: 64 sensors
// x dashReadings readings in the in-memory backend, write-through invalidation
// wired when a result cache is supplied, and the REST handler on top.
func dashBenchStack(b *testing.B, rc *resultcache.Cache, reg *telemetry.Registry) (http.Handler, *core.CacheSink, []sensor.Topic) {
	b.Helper()
	nav := navigator.New()
	caches := cache.NewSet()
	st := store.New(0)
	sink := core.NewCacheSink(caches, nav, 16, time.Second)
	sink.Store = st
	sink.Results = rc
	rs := make([]sensor.Reading, dashReadings)
	for i := range rs {
		rs[i] = sensor.Reading{Value: float64(i), Time: int64(i) * sec}
	}
	topics := make([]sensor.Topic, 64)
	for n := range topics {
		topics[n] = sensor.Topic(fmt.Sprintf("/r%02d/n%02d/power", n/8, n%8))
		sink.PushSeries(topics[n], rs)
	}
	qe := core.NewQueryEngine(nav, caches, st)
	m := core.NewManager(qe, sink, core.Env{})
	b.Cleanup(func() { m.Close() })
	if reg != nil {
		// Full production instrumentation: backend gauges, result-cache
		// counters, scheduler gauges, per-route HTTP metrics and traces.
		store.RegisterBackendMetrics(reg, st)
		if rc != nil {
			rc.RegisterMetrics(reg)
		}
		m.EnableTelemetry(reg)
		return rest.NewHandler(m, qe, rest.Options{ResultCache: rc, Metrics: reg}), sink, topics
	}
	if rc != nil {
		return rest.NewHandler(m, qe, rest.Options{ResultCache: rc}), sink, topics
	}
	return rest.NewHandler(m, qe), sink, topics
}

// benchDashboardQuery measures the dashboard steady state: one hot
// wildcard aggregate (64 sensors, step-aligned absolute window) issued
// repeatedly while a writer keeps ingesting in-order readings beyond
// the window — the shape where the frontier shortcut keeps the memoized
// entry valid. One op is one full HTTP round trip through the handler.
func benchDashboardQuery(b *testing.B, rc *resultcache.Cache, reg *telemetry.Registry) {
	h, sink, topics := dashBenchStack(b, rc, reg)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for t := int64(dashReadings); ; t++ {
			select {
			case <-stop:
				return
			default:
			}
			for _, tp := range topics {
				sink.Push(tp, sensor.Reading{Value: 1, Time: t * sec})
			}
			time.Sleep(time.Millisecond)
		}
	}()
	target := "/query?op=avg&sensor=/%23&start=0&end=" + strconv.FormatInt((dashReadings-1)*sec, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("GET", target, nil)
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != 200 {
			b.Fatalf("status %d: %s", w.Code, w.Body.String())
		}
	}
	b.StopTimer()
	close(stop)
	<-done
}

// BenchmarkDashboardQueryUncached is the before side of the PR7 pair:
// every request re-expands the wildcard and re-aggregates 64 windows.
func BenchmarkDashboardQueryUncached(b *testing.B) { benchDashboardQuery(b, nil, nil) }

// BenchmarkDashboardQueryCached is the after side: the same requests
// served from the memoized op-independent payload, revalidated against
// the ingest frontier per lookup.
func BenchmarkDashboardQueryCached(b *testing.B) {
	benchDashboardQuery(b, resultcache.New(1024, 0), nil)
}

// --- PR8: telemetry overhead — instrumented hot paths, switch on vs off --

// benchIngestTelemetry re-runs the PR5 grouped-ingest shape (16 writers,
// no WAL sync — the configuration where fixed per-batch cost is smallest
// and instrumentation overhead proportionally largest) with a registry
// attached to the engine. `on` toggles the global telemetry switch: the
// off side still executes every instrumented call site and pays exactly
// the one-atomic-load gate the disabled path promises.
func benchIngestTelemetry(b *testing.B, on bool) {
	telemetry.SetEnabled(on)
	b.Cleanup(func() { telemetry.SetEnabled(true) })
	benchIngestConcurrent(b, 16, false, false, telemetry.NewRegistry())
}

func BenchmarkIngestTelemetryOff(b *testing.B) { benchIngestTelemetry(b, false) }
func BenchmarkIngestTelemetryOn(b *testing.B)  { benchIngestTelemetry(b, true) }

// benchDashboardTelemetry re-runs the PR7 cached dashboard scenario with
// the serving tier fully instrumented: per-route counters and latency
// histogram, in-flight gauge, request traces, result-cache and backend
// series. One op remains one HTTP round trip.
func benchDashboardTelemetry(b *testing.B, on bool) {
	telemetry.SetEnabled(on)
	b.Cleanup(func() { telemetry.SetEnabled(true) })
	benchDashboardQuery(b, resultcache.New(1024, 0), telemetry.NewRegistry())
}

func BenchmarkDashboardTelemetryOff(b *testing.B) { benchDashboardTelemetry(b, false) }
func BenchmarkDashboardTelemetryOn(b *testing.B)  { benchDashboardTelemetry(b, true) }

// linearScanBackend hides the in-memory store's PrefixMatcher, forcing
// the dispatcher's filter-everything fallback (the pre-PR7 cost shape).
type linearScanBackend struct{ store.Backend }

// benchWildcardExpand measures '#' expansion of one 8-sensor rack while
// the namespace holds n topics: with the sorted prefix index the cost
// tracks the match count, without it the full (re-sorted) topic listing.
func benchWildcardExpand(b *testing.B, n int, indexed bool) {
	st := store.New(0)
	for i := 0; i < n; i++ {
		st.Insert(sensor.Topic(fmt.Sprintf("/r%03d/n%d/power", i/8, i%8)),
			sensor.Reading{Value: 1, Time: 1})
	}
	var be store.Backend = st
	if !indexed {
		be = linearScanBackend{st}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := store.TopicsPrefix(be, "/r000"); len(got) != 8 {
			b.Fatalf("%d matches", len(got))
		}
	}
}

// BenchmarkWildcardExpandIndexed64 / ...4096 are the acceptance pair:
// expansion cost must be independent of namespace size.
func BenchmarkWildcardExpandIndexed64(b *testing.B)   { benchWildcardExpand(b, 64, true) }
func BenchmarkWildcardExpandIndexed4096(b *testing.B) { benchWildcardExpand(b, 4096, true) }

// BenchmarkWildcardExpandLinear64 / ...4096 show the fallback scaling
// with namespace size instead.
func BenchmarkWildcardExpandLinear64(b *testing.B)   { benchWildcardExpand(b, 64, false) }
func BenchmarkWildcardExpandLinear4096(b *testing.B) { benchWildcardExpand(b, 4096, false) }
