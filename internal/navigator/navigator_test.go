package navigator

import (
	"fmt"
	"regexp"
	"testing"
	"testing/quick"

	"github.com/dcdb/wintermute/internal/sensor"
)

// paperTree builds the example tree of the paper's Figure 2:
// racks r01..r04, chassis c01..c03 under r03, servers s01..s04 under c02,
// cpus cpu0/cpu1 under s02, with the sensors shown in the figure.
func paperTree(t testing.TB) *Navigator {
	t.Helper()
	nv := New()
	topics := []sensor.Topic{
		"/db-uptime", "/time-to-live",
		"/r03/inlet-temp",
		"/r03/c02/power",
		"/r03/c02/s02/memfree", "/r03/c02/s02/healthy",
		"/r03/c02/s02/cpu0/cache-misses", "/r03/c02/s02/cpu0/cpu-cycles",
		"/r03/c02/s02/cpu1/cache-misses", "/r03/c02/s02/cpu1/cpu-cycles",
	}
	for _, r := range []string{"r01", "r02", "r04"} {
		topics = append(topics, sensor.Topic("/"+r+"/inlet-temp"))
	}
	for _, c := range []string{"c01", "c03"} {
		topics = append(topics, sensor.Topic("/r03/"+c+"/power"))
	}
	for _, s := range []string{"s01", "s03", "s04"} {
		topics = append(topics, sensor.Topic("/r03/c02/"+s+"/memfree"))
	}
	if err := nv.AddSensors(topics); err != nil {
		t.Fatal(err)
	}
	return nv
}

func TestAddAndResolve(t *testing.T) {
	nv := paperTree(t)
	n, ok := nv.Resolve("/r03/c02/s02/")
	if !ok {
		t.Fatal("node /r03/c02/s02/ not found")
	}
	if n.Depth() != 3 || n.Name() != "s02" {
		t.Fatalf("depth/name = %d/%q", n.Depth(), n.Name())
	}
	// Resolve tolerates missing trailing slash.
	if _, ok := nv.Resolve("/r03/c02/s02"); !ok {
		t.Error("Resolve should normalise to node form")
	}
	if _, ok := nv.Resolve("/nope/"); ok {
		t.Error("unknown path resolved")
	}
}

func TestAddSensorIdempotent(t *testing.T) {
	nv := New()
	for i := 0; i < 3; i++ {
		if err := nv.AddSensor("/r1/n1/power"); err != nil {
			t.Fatal(err)
		}
	}
	if nv.NumSensors() != 1 {
		t.Fatalf("NumSensors = %d, want 1", nv.NumSensors())
	}
}

func TestAddSensorErrors(t *testing.T) {
	nv := New()
	if err := nv.AddSensor("/"); err == nil {
		t.Error("adding root as sensor should fail")
	}
	if err := nv.AddSensor("/a b/c"); err == nil {
		t.Error("whitespace segment should fail")
	}
}

func TestMaxDepthAndSensorCount(t *testing.T) {
	nv := paperTree(t)
	if nv.MaxDepth() != 4 {
		t.Errorf("MaxDepth = %d, want 4 (cpu level)", nv.MaxDepth())
	}
	if nv.NumSensors() != 18 {
		t.Errorf("NumSensors = %d, want 18", nv.NumSensors())
	}
}

func TestNodesAtDepth(t *testing.T) {
	nv := paperTree(t)
	racks := nv.NodesAtDepth(1)
	if len(racks) != 4 {
		t.Fatalf("racks = %d, want 4", len(racks))
	}
	if racks[0].Name() != "r01" || racks[3].Name() != "r04" {
		t.Errorf("racks not sorted: %v, %v", racks[0].Name(), racks[3].Name())
	}
	cpus := nv.NodesAtDepth(4)
	if len(cpus) != 2 {
		t.Fatalf("cpus = %d, want 2", len(cpus))
	}
	if nv.NodesAtDepth(0)[0].Path() != sensor.Root {
		t.Error("depth 0 should be the root")
	}
	if nv.NodesAtDepth(99) != nil || nv.NodesAtDepth(-1) != nil {
		t.Error("out-of-range depths should return nil")
	}
}

func TestNodesAtDepthFiltered(t *testing.T) {
	nv := paperTree(t)
	re := regexp.MustCompile(`^cpu`)
	cpus := nv.NodesAtDepthFiltered(4, re)
	if len(cpus) != 2 {
		t.Fatalf("filtered cpus = %d, want 2", len(cpus))
	}
	none := nv.NodesAtDepthFiltered(4, regexp.MustCompile(`^gpu`))
	if len(none) != 0 {
		t.Fatalf("filter should exclude all: %d", len(none))
	}
	all := nv.NodesAtDepthFiltered(1, nil)
	if len(all) != 4 {
		t.Fatalf("nil filter should accept all racks: %d", len(all))
	}
}

func TestNodeSensors(t *testing.T) {
	nv := paperTree(t)
	n, _ := nv.Resolve("/r03/c02/s02/")
	ss := n.Sensors()
	if len(ss) != 2 {
		t.Fatalf("sensors = %v", ss)
	}
	if ss[0] != "/r03/c02/s02/healthy" || ss[1] != "/r03/c02/s02/memfree" {
		t.Errorf("sensor order/content wrong: %v", ss)
	}
	if topic, ok := n.Sensor("memfree"); !ok || topic != "/r03/c02/s02/memfree" {
		t.Errorf("Sensor lookup = %q, %v", topic, ok)
	}
	if _, ok := n.Sensor("nope"); ok {
		t.Error("missing sensor lookup should fail")
	}
}

func TestHasSensor(t *testing.T) {
	nv := paperTree(t)
	if !nv.HasSensor("/r03/c02/power") {
		t.Error("power sensor should exist")
	}
	if nv.HasSensor("/r03/c02/voltage") {
		t.Error("voltage sensor should not exist")
	}
	if nv.HasSensor("/x/y/z") {
		t.Error("sensor under unknown node should not exist")
	}
}

func TestRelated(t *testing.T) {
	nv := paperTree(t)
	rack, _ := nv.Resolve("/r03/")
	node, _ := nv.Resolve("/r03/c02/s02/")
	cpu, _ := nv.Resolve("/r03/c02/s02/cpu0/")
	other, _ := nv.Resolve("/r01/")
	if !Related(rack, node) || !Related(node, rack) {
		t.Error("rack and node should be related")
	}
	if !Related(node, cpu) {
		t.Error("node and its cpu should be related")
	}
	if Related(other, node) {
		t.Error("different racks are unrelated")
	}
	if !Related(node, node) {
		t.Error("a node is related to itself")
	}
	if Related(nil, node) || Related(node, nil) {
		t.Error("nil nodes are never related")
	}
}

func TestRelatedAtDepth(t *testing.T) {
	nv := paperTree(t)
	node, _ := nv.Resolve("/r03/c02/s02/")
	// Same depth: the node itself.
	got := nv.RelatedAtDepth(node, 3, nil)
	if len(got) != 1 || got[0] != node {
		t.Fatalf("same depth = %v", got)
	}
	// Above: the unique ancestor.
	got = nv.RelatedAtDepth(node, 1, nil)
	if len(got) != 1 || got[0].Path() != "/r03/" {
		t.Fatalf("ancestor = %v", got)
	}
	// Below: the descendants.
	got = nv.RelatedAtDepth(node, 4, nil)
	if len(got) != 2 {
		t.Fatalf("descendants = %v", got)
	}
	// Filter applies at every position.
	got = nv.RelatedAtDepth(node, 4, regexp.MustCompile(`^cpu1$`))
	if len(got) != 1 || got[0].Name() != "cpu1" {
		t.Fatalf("filtered descendants = %v", got)
	}
	if nv.RelatedAtDepth(node, 1, regexp.MustCompile(`^r99$`)) != nil {
		t.Error("non-matching ancestor should yield nil")
	}
	if nv.RelatedAtDepth(nil, 1, nil) != nil {
		t.Error("nil node should yield nil")
	}
	// Agreement with the level-scan definition on every (node, depth).
	for d := 0; d <= nv.MaxDepth(); d++ {
		level := nv.NodesAtDepth(d)
		for _, n := range nv.Subtree(nv.Root()) {
			fast := nv.RelatedAtDepth(n, d, nil)
			var slow []*Node
			for _, x := range level {
				if Related(n, x) {
					slow = append(slow, x)
				}
			}
			if len(fast) != len(slow) {
				t.Fatalf("mismatch at node %s depth %d: %d vs %d", n.Path(), d, len(fast), len(slow))
			}
		}
	}
}

func TestSubtreeAndSensorsBelow(t *testing.T) {
	nv := paperTree(t)
	n, _ := nv.Resolve("/r03/c02/s02/")
	sub := nv.Subtree(n)
	if len(sub) != 3 { // s02, cpu0, cpu1
		t.Fatalf("subtree size = %d, want 3", len(sub))
	}
	below := nv.SensorsBelow("/r03/c02/s02/")
	if len(below) != 6 {
		t.Fatalf("sensors below = %d, want 6: %v", len(below), below)
	}
	if nv.SensorsBelow("/none/") != nil {
		t.Error("unknown path should yield nil")
	}
}

func TestAllSensors(t *testing.T) {
	nv := paperTree(t)
	all := nv.AllSensors()
	if len(all) != nv.NumSensors() {
		t.Fatalf("AllSensors = %d, NumSensors = %d", len(all), nv.NumSensors())
	}
	for i := 1; i < len(all); i++ {
		if all[i] <= all[i-1] {
			t.Fatalf("AllSensors not strictly sorted at %d", i)
		}
	}
}

func TestLevel(t *testing.T) {
	nv := paperTree(t) // MaxDepth 4
	if nv.Level(true, 0) != 1 {
		t.Error("topdown should be depth 1")
	}
	if nv.Level(true, 2) != 3 {
		t.Error("topdown+2 should be depth 3")
	}
	if nv.Level(false, 0) != 4 {
		t.Error("bottomup should be MaxDepth")
	}
	if nv.Level(false, 1) != 3 {
		t.Error("bottomup-1 should be MaxDepth-1")
	}
}

// TestDepthInvariant: every node's depth equals its path depth, for
// arbitrary synthetic trees.
func TestDepthInvariant(t *testing.T) {
	f := func(racks, nodes uint8) bool {
		nr := int(racks%5) + 1
		nn := int(nodes%5) + 1
		nv := New()
		for r := 0; r < nr; r++ {
			for n := 0; n < nn; n++ {
				topic := sensor.Topic(fmt.Sprintf("/r%d/n%d/power", r, n))
				if err := nv.AddSensor(topic); err != nil {
					return false
				}
			}
		}
		for d := 0; d <= nv.MaxDepth(); d++ {
			for _, node := range nv.NodesAtDepth(d) {
				if node.Depth() != node.Path().Depth() {
					return false
				}
			}
		}
		return len(nv.NodesAtDepth(1)) == nr && len(nv.NodesAtDepth(2)) == nr*nn
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestChildrenSorted(t *testing.T) {
	nv := New()
	for _, r := range []string{"r3", "r1", "r2"} {
		if err := nv.AddSensor(sensor.Topic("/" + r + "/power")); err != nil {
			t.Fatal(err)
		}
	}
	kids := nv.Root().Children()
	if kids[0].Name() != "r1" || kids[1].Name() != "r2" || kids[2].Name() != "r3" {
		t.Errorf("children not sorted: %v %v %v", kids[0].Name(), kids[1].Name(), kids[2].Name())
	}
}
