// Package navigator maintains the hierarchical sensor-tree representation
// of a monitored HPC system (paper §III-A and §V-B).
//
// Sensor topics are slash-separated paths; each interior path element is a
// system component (rack, chassis, compute node, CPU, ...) and each leaf is
// a sensor. The navigator builds the tree incrementally as sensors are
// registered, exposes depth-based level queries for vertical navigation and
// name filters for horizontal navigation, and answers the
// hierarchical-relation questions needed to resolve pattern units.
package navigator

import (
	"fmt"
	"regexp"
	"sort"
	"sync"

	"github.com/dcdb/wintermute/internal/sensor"
)

// Node is a component in the sensor tree: the root, a rack, a chassis, a
// compute node, a CPU, and so on. Leaf sensors hang off nodes; they are not
// nodes themselves.
type Node struct {
	path     sensor.Topic // component path with trailing slash; "/" for root
	depth    int          // 0 for root
	parent   *Node
	children map[string]*Node
	sensors  map[string]sensor.Topic // sensor name -> full topic
}

// Path returns the component path of the node (with trailing slash).
func (n *Node) Path() sensor.Topic { return n.path }

// Depth returns the node's depth in the tree; the root has depth 0.
func (n *Node) Depth() int { return n.depth }

// Name returns the node's own name (last path segment).
func (n *Node) Name() string { return n.path.Name() }

// Parent returns the parent node, or nil for the root.
func (n *Node) Parent() *Node { return n.parent }

// Children returns the child nodes sorted by name.
func (n *Node) Children() []*Node {
	names := make([]string, 0, len(n.children))
	for name := range n.children {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]*Node, len(names))
	for i, name := range names {
		out[i] = n.children[name]
	}
	return out
}

// Sensors returns the topics of the sensors attached directly to this node,
// sorted by name.
func (n *Node) Sensors() []sensor.Topic {
	names := make([]string, 0, len(n.sensors))
	for name := range n.sensors {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]sensor.Topic, len(names))
	for i, name := range names {
		out[i] = n.sensors[name]
	}
	return out
}

// Sensor returns the full topic of the sensor with the given short name
// attached to this node, if present.
func (n *Node) Sensor(name string) (sensor.Topic, bool) {
	t, ok := n.sensors[name]
	return t, ok
}

// Navigator is the concurrency-safe sensor tree. The zero value is not
// usable; construct with New.
type Navigator struct {
	mu       sync.RWMutex
	root     *Node
	byPath   map[sensor.Topic]*Node
	maxDepth int // deepest component depth seen
	nsensors int
}

// New creates an empty navigator containing only the root component.
func New() *Navigator {
	root := &Node{
		path:     sensor.Root,
		children: make(map[string]*Node),
		sensors:  make(map[string]sensor.Topic),
	}
	return &Navigator{
		root:   root,
		byPath: map[sensor.Topic]*Node{sensor.Root: root},
	}
}

// AddSensor registers a sensor topic, creating any missing intermediate
// component nodes. It is safe to add the same topic repeatedly.
func (nv *Navigator) AddSensor(topic sensor.Topic) error {
	topic = sensor.Clean(string(topic)).AsSensor()
	if err := topic.Validate(); err != nil {
		return fmt.Errorf("navigator: %w: %q", err, topic)
	}
	segs := topic.Segments()
	if len(segs) == 0 {
		return fmt.Errorf("navigator: cannot add root as a sensor")
	}
	nv.mu.Lock()
	defer nv.mu.Unlock()
	node := nv.root
	for _, s := range segs[:len(segs)-1] {
		child, ok := node.children[s]
		if !ok {
			child = &Node{
				path:     node.path.JoinNode(s),
				depth:    node.depth + 1,
				parent:   node,
				children: make(map[string]*Node),
				sensors:  make(map[string]sensor.Topic),
			}
			node.children[s] = child
			nv.byPath[child.path] = child
			if child.depth > nv.maxDepth {
				nv.maxDepth = child.depth
			}
		}
		node = child
	}
	name := segs[len(segs)-1]
	if _, ok := node.sensors[name]; !ok {
		node.sensors[name] = topic
		nv.nsensors++
	}
	return nil
}

// AddSensors registers many topics, stopping at the first error.
func (nv *Navigator) AddSensors(topics []sensor.Topic) error {
	for _, t := range topics {
		if err := nv.AddSensor(t); err != nil {
			return err
		}
	}
	return nil
}

// Root returns the root node.
func (nv *Navigator) Root() *Node {
	nv.mu.RLock()
	defer nv.mu.RUnlock()
	return nv.root
}

// MaxDepth returns the depth of the deepest component node. In the paper's
// level scheme this is the "bottomup" level; "topdown" is depth 1 (the root
// is excluded from pattern navigation).
func (nv *Navigator) MaxDepth() int {
	nv.mu.RLock()
	defer nv.mu.RUnlock()
	return nv.maxDepth
}

// NumSensors returns the number of registered sensors.
func (nv *Navigator) NumSensors() int {
	nv.mu.RLock()
	defer nv.mu.RUnlock()
	return nv.nsensors
}

// Resolve returns the component node at the given path, if present. The
// path is normalised to node form, so both "/r01/c01" and "/r01/c01/" work.
func (nv *Navigator) Resolve(path sensor.Topic) (*Node, bool) {
	nv.mu.RLock()
	defer nv.mu.RUnlock()
	n, ok := nv.byPath[sensor.Clean(string(path)).AsNode()]
	return n, ok
}

// HasSensor reports whether the exact sensor topic is registered. Node
// resolution and the sensor lookup happen under one critical section, so
// the answer reflects a single consistent tree state — the previous
// two-phase locking (resolve, release, re-lock) left a window in which a
// concurrent AddSensor could be half-observed.
func (nv *Navigator) HasSensor(topic sensor.Topic) bool {
	nv.mu.RLock()
	defer nv.mu.RUnlock()
	node, ok := nv.byPath[sensor.Clean(string(topic.Node())).AsNode()]
	if !ok {
		return false
	}
	_, ok = node.sensors[topic.Name()]
	return ok
}

// NodesAtDepth returns all component nodes at the given depth, sorted by
// path. Depth 0 returns the root; depths beyond MaxDepth return nil.
func (nv *Navigator) NodesAtDepth(depth int) []*Node {
	nv.mu.RLock()
	defer nv.mu.RUnlock()
	if depth < 0 || depth > nv.maxDepth {
		return nil
	}
	var out []*Node
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.depth == depth {
			out = append(out, n)
			return
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(nv.root)
	sort.Slice(out, func(i, j int) bool { return out[i].path < out[j].path })
	return out
}

// NodesAtDepthFiltered returns the nodes at the given depth whose name
// matches the filter regexp (horizontal navigation). A nil filter accepts
// every node.
func (nv *Navigator) NodesAtDepthFiltered(depth int, filter *regexp.Regexp) []*Node {
	nodes := nv.NodesAtDepth(depth)
	if filter == nil {
		return nodes
	}
	out := nodes[:0]
	for _, n := range nodes {
		if filter.MatchString(n.Name()) {
			out = append(out, n)
		}
	}
	return out
}

// Related reports whether the two component nodes lie on a common
// root-to-leaf path (one is an ancestor of, or equal to, the other). This
// is the test that binds pattern-expression domains to a unit (paper
// §III-B: input sensors may "belong to any other node in the sensor tree
// connected by an ascending or descending path to the unit node").
func Related(a, b *Node) bool {
	if a == nil || b == nil {
		return false
	}
	return sensor.Related(a.path, b.path)
}

// RelatedAtDepth returns the nodes at the given depth that lie on a common
// root-to-leaf path with n (ancestor, self, or descendant), optionally
// restricted by a name filter. This is the hierarchical binding step of
// pattern-unit resolution, computed by walking the tree from n — O(answer)
// instead of scanning the whole level.
func (nv *Navigator) RelatedAtDepth(n *Node, depth int, filter *regexp.Regexp) []*Node {
	if n == nil || depth < 0 {
		return nil
	}
	nv.mu.RLock()
	defer nv.mu.RUnlock()
	match := func(x *Node) bool {
		return filter == nil || filter.MatchString(x.Name())
	}
	switch {
	case depth == n.depth:
		if match(n) {
			return []*Node{n}
		}
		return nil
	case depth < n.depth:
		x := n
		for x != nil && x.depth > depth {
			x = x.parent
		}
		if x != nil && match(x) {
			return []*Node{x}
		}
		return nil
	default:
		var out []*Node
		var walk func(x *Node)
		walk = func(x *Node) {
			if x.depth == depth {
				if match(x) {
					out = append(out, x)
				}
				return
			}
			for _, c := range x.Children() {
				walk(c)
			}
		}
		walk(n)
		return out
	}
}

// Subtree returns all component nodes in the subtree rooted at n (including
// n itself), in depth-first sorted order.
func (nv *Navigator) Subtree(n *Node) []*Node {
	nv.mu.RLock()
	defer nv.mu.RUnlock()
	var out []*Node
	var walk func(x *Node)
	walk = func(x *Node) {
		out = append(out, x)
		for _, c := range x.Children() {
			walk(c)
		}
	}
	walk(n)
	return out
}

// AllSensors returns every registered sensor topic, sorted.
func (nv *Navigator) AllSensors() []sensor.Topic {
	nv.mu.RLock()
	defer nv.mu.RUnlock()
	out := make([]sensor.Topic, 0, nv.nsensors)
	var walk func(n *Node)
	walk = func(n *Node) {
		for _, t := range n.Sensors() {
			out = append(out, t)
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(nv.root)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SensorsBelow returns all sensor topics in the subtree rooted at the node
// with the given path, sorted. It returns nil when the path is unknown.
func (nv *Navigator) SensorsBelow(path sensor.Topic) []sensor.Topic {
	n, ok := nv.Resolve(path)
	if !ok {
		return nil
	}
	var out []sensor.Topic
	for _, sub := range nv.Subtree(n) {
		out = append(out, sub.Sensors()...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Level converts a paper-style level specification into a tree depth.
// Anchor "topdown" means depth 1 + offset (the root is excluded from
// pattern navigation); anchor "bottomup" means MaxDepth - offset. The
// returned depth is not range-checked; callers decide how to handle empty
// levels.
func (nv *Navigator) Level(topdown bool, offset int) int {
	if topdown {
		return 1 + offset
	}
	return nv.MaxDepth() - offset
}
