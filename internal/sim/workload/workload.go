// Package workload models the applications of the paper's evaluation as
// phase-based synthetic workloads: the HPL overhead baseline (§VI-A) and
// the CORAL-2 applications Kripke, AMG, Nekbone and LAMMPS (§VI-B/C).
//
// Each model maps (core, time) to instantaneous CPI, node utilisation and
// instruction-mix fractions, reproducing the per-application signatures
// the paper reports in Figure 7:
//
//   - LAMMPS: compute-bound; CPI tight around 1.6 with minimal spread;
//   - AMG: network-bound; low median CPI but heavy-tailed per-core
//     latency spikes pushing top deciles to CPI ≈ 30;
//   - Kripke: network/memory-bound; CPI ramps and resets with each sweep
//     iteration, synchronously across all cores;
//   - Nekbone: compute-bound at first, then — as growing problem sizes
//     exceed the 16 GB high-bandwidth memory — at least 20 % of cores
//     drift to high CPI, widening the decile spread dramatically.
//
// Models are deterministic functions of (seed, core, time): noise comes
// from a counter-based hash, so readings are reproducible regardless of
// sampling order.
package workload

import (
	"fmt"
	"math"
	"sort"
)

// App is a synthetic application running on one simulated node.
type App interface {
	// Name returns the application name.
	Name() string
	// Duration returns the nominal run time in seconds.
	Duration() float64
	// Util returns the node utilisation in [0, 1] at time t seconds from
	// job start.
	Util(t float64) float64
	// CPI returns the instantaneous cycles-per-instruction of a core at
	// time t seconds from job start.
	CPI(core int, t float64) float64
	// FlopFrac returns the fraction of retired instructions that are
	// floating-point operations at time t.
	FlopFrac(core int, t float64) float64
	// VectorRatio returns the fraction of floating-point instructions
	// that are vectorised at time t.
	VectorRatio(core int, t float64) float64
}

// noiseTick quantises time for noise generation (250 ms), matching the
// finest sampling interval used in the paper's case studies.
const noiseTick = 0.25

// splitmix64 is the counter-based hash behind all model noise.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// uniform returns a deterministic pseudo-uniform in [0,1) for the tuple
// (seed, core, tick, salt).
func uniform(seed uint64, core int, t float64, salt uint64) float64 {
	tick := uint64(int64(t / noiseTick))
	h := splitmix64(seed ^ splitmix64(uint64(core)+1) ^ splitmix64(tick+7) ^ splitmix64(salt+13))
	return float64(h>>11) / (1 << 53)
}

// gauss returns a deterministic standard-normal sample via Box-Muller.
func gauss(seed uint64, core int, t float64, salt uint64) float64 {
	u1 := uniform(seed, core, t, salt)
	u2 := uniform(seed, core, t, salt+0x5bd1)
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// coreTrait returns a stable pseudo-uniform per (seed, core): the per-core
// "personality" used to pick affected subsets (e.g. Nekbone's memory-bound
// cores).
func coreTrait(seed uint64, core int) float64 {
	h := splitmix64(seed ^ splitmix64(uint64(core)*0x9e37+0x51))
	return float64(h>>11) / (1 << 53)
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// base carries the fields shared by all application models.
type base struct {
	name     string
	seed     uint64
	duration float64
}

func (b base) Name() string      { return b.name }
func (b base) Duration() float64 { return b.duration }

// flopsFromCPI derives a plausible floating-point instruction fraction:
// compute-bound phases (low CPI) retire more FP work.
func flopsFromCPI(cpi float64) float64 {
	return clamp(0.55/cpi, 0.02, 0.5)
}

// vecFromCPI derives a vectorisation ratio that degrades as codes become
// memory- or network-bound.
func vecFromCPI(cpi float64) float64 {
	return clamp(0.9-0.12*(cpi-1), 0.05, 0.9)
}

// --- HPL ---------------------------------------------------------------

// hpl models the High-Performance Linpack benchmark: steady, CPU-saturating
// and compute-bound — the interference baseline of §VI-A.
type hpl struct{ base }

func (a hpl) Util(t float64) float64 { return 0.98 }

func (a hpl) CPI(core int, t float64) float64 {
	return clamp(1.2+0.05*gauss(a.seed, core, t, 1), 0.4, 4)
}

func (a hpl) FlopFrac(core int, t float64) float64 { return 0.45 }

func (a hpl) VectorRatio(core int, t float64) float64 { return 0.88 }

// --- LAMMPS ------------------------------------------------------------

// lammps models the molecular-dynamics code: "low CPI values averaging at
// 1.6, with minimum spread in the distribution" (paper §VI-C).
type lammps struct{ base }

func (a lammps) Util(t float64) float64 {
	return 0.95 + 0.01*gauss(a.seed, -1, t, 2)
}

func (a lammps) CPI(core int, t float64) float64 {
	return clamp(1.6+0.1*gauss(a.seed, core, t, 3), 0.8, 4)
}

func (a lammps) FlopFrac(core int, t float64) float64 {
	return flopsFromCPI(a.CPI(core, t))
}

func (a lammps) VectorRatio(core int, t float64) float64 {
	return vecFromCPI(a.CPI(core, t))
}

// --- AMG ---------------------------------------------------------------

// amg models the algebraic multigrid solver: low CPI up to the median but
// heavy network-latency tails — "deciles 8 and 10 show spikes up to CPI
// values of 30" (paper §VI-C).
type amg struct{ base }

func (a amg) Util(t float64) float64 {
	// Multigrid V-cycles alternate compute and communication phases.
	phase := math.Sin(2 * math.Pi * t / 25)
	return clamp(0.86+0.05*phase+0.01*gauss(a.seed, -1, t, 4), 0, 1)
}

func (a amg) CPI(core int, t float64) float64 {
	cpi := 2.0 + 0.25*gauss(a.seed, core, t, 5)
	// A random minority of cores waits on network I/O each tick.
	if uniform(a.seed, core, t, 6) < 0.12 {
		tail := -6 * math.Log(1-uniform(a.seed, core, t, 7))
		cpi += tail
	}
	return clamp(cpi, 0.8, 30)
}

func (a amg) FlopFrac(core int, t float64) float64 {
	return flopsFromCPI(a.CPI(core, t))
}

func (a amg) VectorRatio(core int, t float64) float64 {
	return vecFromCPI(a.CPI(core, t))
}

// --- Kripke ------------------------------------------------------------

// kripkeIterPeriod is the sweep iteration length in seconds; the paper
// notes "it is possible to separate each single iteration, thanks to the
// increase and decrease in CPI values across all deciles".
const kripkeIterPeriod = 40.0

// kripke models the particle-transport proxy app with its per-iteration
// CPI ramps, synchronised across cores.
type kripke struct{ base }

func (a kripke) iterPhase(t float64) float64 {
	return math.Mod(t, kripkeIterPeriod) / kripkeIterPeriod
}

func (a kripke) Util(t float64) float64 {
	// Communication-heavy at iteration boundaries.
	return clamp(0.92-0.08*a.iterPhase(t)+0.01*gauss(a.seed, -1, t, 8), 0, 1)
}

func (a kripke) CPI(core int, t float64) float64 {
	ramp := 3 + 11*a.iterPhase(t)
	return clamp(ramp*(0.95+0.1*gauss(a.seed, core, t, 9)), 1, 25)
}

func (a kripke) FlopFrac(core int, t float64) float64 {
	return flopsFromCPI(a.CPI(core, t))
}

func (a kripke) VectorRatio(core int, t float64) float64 {
	return vecFromCPI(a.CPI(core, t))
}

// --- Nekbone -----------------------------------------------------------

// nekboneAffectedFrac is the share of cores that become memory-limited in
// the second half of the run ("at least 20% of the CPUs exhibiting higher
// CPI values", paper §VI-C).
const nekboneAffectedFrac = 0.25

// nekbone models the spectral-element proxy: compute-bound batches of
// increasing problem size until the working set exceeds high-bandwidth
// memory.
type nekbone struct{ base }

func (a nekbone) Util(t float64) float64 {
	u := 0.93
	if t > a.duration/2 {
		u = 0.88
	}
	return clamp(u+0.01*gauss(a.seed, -1, t, 10), 0, 1)
}

func (a nekbone) CPI(core int, t float64) float64 {
	cpi := 1.5 + 0.12*gauss(a.seed, core, t, 11)
	half := a.duration / 2
	if t > half && coreTrait(a.seed, core) < nekboneAffectedFrac {
		// Memory pressure grows with problem size past the HBM capacity.
		growth := (t - half) / half * 18
		cpi = 6 + growth + 1.5*gauss(a.seed, core, t, 12)
	}
	return clamp(cpi, 0.8, 40)
}

func (a nekbone) FlopFrac(core int, t float64) float64 {
	return flopsFromCPI(a.CPI(core, t))
}

func (a nekbone) VectorRatio(core int, t float64) float64 {
	return vecFromCPI(a.CPI(core, t))
}

// --- Idle --------------------------------------------------------------

// idle models an unallocated node: background OS activity only.
type idle struct{ base }

func (a idle) Util(t float64) float64 {
	return clamp(0.02+0.005*gauss(a.seed, -1, t, 13), 0, 0.1)
}

func (a idle) CPI(core int, t float64) float64 {
	return clamp(2.5+0.3*gauss(a.seed, core, t, 14), 1, 6)
}

func (a idle) FlopFrac(core int, t float64) float64 { return 0.02 }

func (a idle) VectorRatio(core int, t float64) float64 { return 0.05 }

// --- Registry ----------------------------------------------------------

type factory func(seed int64, duration float64) App

var registry = map[string]factory{
	"hpl":     func(s int64, d float64) App { return hpl{base{"hpl", uint64(s), d}} },
	"lammps":  func(s int64, d float64) App { return lammps{base{"lammps", uint64(s), d}} },
	"amg":     func(s int64, d float64) App { return amg{base{"amg", uint64(s), d}} },
	"kripke":  func(s int64, d float64) App { return kripke{base{"kripke", uint64(s), d}} },
	"nekbone": func(s int64, d float64) App { return nekbone{base{"nekbone", uint64(s), d}} },
	"idle":    func(s int64, d float64) App { return idle{base{"idle", uint64(s), d}} },
}

// Names returns the sorted names of available application models.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// New instantiates an application model. Each simulated node gets its own
// instance with a distinct seed so per-core traits differ between nodes.
// A non-positive duration defaults to 600 s.
func New(name string, seed int64, duration float64) (App, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown application %q (have %v)", name, Names())
	}
	if duration <= 0 {
		duration = 600
	}
	return f(seed, duration), nil
}

// MustNew is New for static names; it panics on unknown applications.
func MustNew(name string, seed int64, duration float64) App {
	a, err := New(name, seed, duration)
	if err != nil {
		panic(err)
	}
	return a
}
