package workload

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"github.com/dcdb/wintermute/internal/testseed"
)

func sampleCPIs(a App, cores int, t float64) []float64 {
	out := make([]float64, cores)
	for c := 0; c < cores; c++ {
		out[c] = a.CPI(c, t)
	}
	return out
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func TestRegistryAndNew(t *testing.T) {
	names := Names()
	if len(names) != 6 {
		t.Fatalf("Names = %v", names)
	}
	for _, n := range names {
		a, err := New(n, 1, 600)
		if err != nil {
			t.Fatal(err)
		}
		if a.Name() != n {
			t.Errorf("Name = %q, want %q", a.Name(), n)
		}
		if a.Duration() != 600 {
			t.Errorf("%s Duration = %v", n, a.Duration())
		}
	}
	if _, err := New("fortnite", 1, 10); err == nil {
		t.Error("unknown app should fail")
	}
	a := MustNew("hpl", 1, 0)
	if a.Duration() != 600 {
		t.Error("default duration should be 600")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew should panic on unknown app")
		}
	}()
	MustNew("nope", 0, 0)
}

func TestDeterminism(t *testing.T) {
	// The property must hold for ANY seed, so draw it from the logged
	// session seed: failures replay with WINTERMUTE_TEST_SEED.
	seed := testseed.Seed(t)
	a1 := MustNew("amg", seed, 600)
	a2 := MustNew("amg", seed, 600)
	for _, tt := range []float64{0, 1.3, 77.7, 599} {
		for c := 0; c < 8; c++ {
			if a1.CPI(c, tt) != a2.CPI(c, tt) {
				t.Fatalf("CPI not deterministic at core %d t %v", c, tt)
			}
		}
		if a1.Util(tt) != a2.Util(tt) {
			t.Fatalf("Util not deterministic at %v", tt)
		}
	}
	// Different seeds differ.
	a3 := MustNew("amg", seed+1, 600)
	if a1.CPI(0, 10) == a3.CPI(0, 10) {
		t.Error("different seeds should (almost surely) differ")
	}
}

// TestLAMMPSSignature: CPI tight around 1.6 with minimal spread.
func TestLAMMPSSignature(t *testing.T) {
	a := MustNew("lammps", 7, 600)
	var all []float64
	for tt := 10.0; tt < 500; tt += 25 {
		all = append(all, sampleCPIs(a, 64, tt)...)
	}
	m := mean(all)
	if m < 1.4 || m > 1.8 {
		t.Errorf("LAMMPS mean CPI = %v, want ~1.6", m)
	}
	sort.Float64s(all)
	spread := all[len(all)*9/10] - all[len(all)/10]
	if spread > 0.6 {
		t.Errorf("LAMMPS decile spread = %v, want tight", spread)
	}
}

// TestAMGSignature: low median, heavy right tail reaching high CPI.
func TestAMGSignature(t *testing.T) {
	a := MustNew("amg", 7, 600)
	var all []float64
	for tt := 10.0; tt < 500; tt += 5 {
		all = append(all, sampleCPIs(a, 64, tt)...)
	}
	sort.Float64s(all)
	median := all[len(all)/2]
	p99 := all[len(all)*99/100]
	if median > 3.5 {
		t.Errorf("AMG median CPI = %v, want low", median)
	}
	if p99 < 8 {
		t.Errorf("AMG p99 CPI = %v, want heavy tail", p99)
	}
	if all[len(all)-1] > 30.001 {
		t.Errorf("AMG max CPI = %v, should clamp at 30", all[len(all)-1])
	}
}

// TestKripkeSignature: CPI must ramp within an iteration and reset at the
// boundary, synchronously across cores.
func TestKripkeSignature(t *testing.T) {
	a := MustNew("kripke", 7, 600)
	early := mean(sampleCPIs(a, 64, 41)) // just after iteration start
	late := mean(sampleCPIs(a, 64, 79))  // near iteration end
	reset := mean(sampleCPIs(a, 64, 81)) // next iteration began
	if late < early+5 {
		t.Errorf("Kripke ramp missing: early %v late %v", early, late)
	}
	if reset > early+2 {
		t.Errorf("Kripke reset missing: reset %v early %v", reset, early)
	}
}

// TestNekboneSignature: tight low CPI in the first half; wide spread with
// a high-CPI core subset in the second half.
func TestNekboneSignature(t *testing.T) {
	a := MustNew("nekbone", 7, 800)
	first := sampleCPIs(a, 64, 100)
	second := sampleCPIs(a, 64, 700)
	sort.Float64s(first)
	sort.Float64s(second)
	if first[62] > 3 {
		t.Errorf("first-half high decile = %v, want low", first[62])
	}
	// At least ~20% of cores should be memory-limited late in the run.
	high := 0
	for _, v := range second {
		if v > 6 {
			high++
		}
	}
	if high < 64/5 {
		t.Errorf("only %d/64 cores memory-limited in second half", high)
	}
	// The unaffected majority stays low.
	if second[10] > 3 {
		t.Errorf("low decile in second half = %v, want low", second[10])
	}
}

func TestHPLSteady(t *testing.T) {
	a := MustNew("hpl", 7, 600)
	for tt := 0.0; tt < 600; tt += 60 {
		if u := a.Util(tt); u < 0.9 {
			t.Errorf("HPL util at %v = %v, want saturated", tt, u)
		}
	}
}

func TestIdleLow(t *testing.T) {
	a := MustNew("idle", 7, 600)
	for tt := 0.0; tt < 600; tt += 60 {
		if u := a.Util(tt); u > 0.1 {
			t.Errorf("idle util = %v, want < 0.1", u)
		}
	}
}

// TestBoundsProperty: every model keeps util in [0,1] and CPI positive and
// finite for arbitrary times and cores.
func TestBoundsProperty(t *testing.T) {
	apps := make([]App, 0, len(Names()))
	for _, n := range Names() {
		apps = append(apps, MustNew(n, 99, 600))
	}
	f := func(coreSeed uint8, tSeed uint16) bool {
		core := int(coreSeed)
		tt := float64(tSeed) / 10
		for _, a := range apps {
			u := a.Util(tt)
			if u < 0 || u > 1 || math.IsNaN(u) {
				return false
			}
			cpi := a.CPI(core, tt)
			if cpi <= 0 || cpi > 100 || math.IsNaN(cpi) {
				return false
			}
			ff := a.FlopFrac(core, tt)
			if ff < 0 || ff > 1 {
				return false
			}
			vr := a.VectorRatio(core, tt)
			if vr < 0 || vr > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestClamp(t *testing.T) {
	if clamp(5, 0, 1) != 1 || clamp(-5, 0, 1) != 0 || clamp(0.5, 0, 1) != 0.5 {
		t.Error("clamp broken")
	}
}

func TestCoreTraitStable(t *testing.T) {
	if coreTrait(1, 5) != coreTrait(1, 5) {
		t.Error("coreTrait must be stable")
	}
	if coreTrait(1, 5) == coreTrait(2, 5) {
		t.Error("coreTrait should vary with seed")
	}
}
