package hardware

import (
	"math"
	"math/rand"
	"testing"

	"github.com/dcdb/wintermute/internal/sim/workload"
	"github.com/dcdb/wintermute/internal/testseed"
)

// snapshot captures every externally-observable quantity of a node at a
// point in time, for trajectory comparisons.
type snapshot struct {
	power, temp, idle, energy float64
	counters                  [5]float64 // core 0: cycles, instrs, misses, flops, vecOps
}

func snap(n *Node) snapshot {
	var s snapshot
	s.power, s.temp = n.Power(), n.Temp()
	s.idle, s.energy = n.IdleSeconds(), n.EnergyJoules()
	s.counters[0], s.counters[1], s.counters[2], s.counters[3], s.counters[4] = n.CoreCounters(0)
	return s
}

// TestDeterminismUnderSeed: two nodes built from the same seed and driven
// through the same Advance schedule must produce bit-identical sensor
// trajectories — the property the chaos harness leans on for replayable
// scenarios — and a different seed must diverge. The seed itself comes
// from testseed so any failure replays via WINTERMUTE_TEST_SEED.
func TestDeterminismUnderSeed(t *testing.T) {
	seed := testseed.Seed(t)
	mk := func(s int64) *Node {
		n := NewNode(Config{Cores: 8, Seed: s})
		n.SetApp(workload.MustNew("amg", s, 600), 0)
		return n
	}
	a, b, c := mk(seed), mk(seed), mk(seed+1)
	diverged := false
	for step := 0; step <= 100; step++ {
		now := int64(step) * sec
		a.Advance(now)
		b.Advance(now)
		c.Advance(now)
		sa, sb := snap(a), snap(b)
		if sa != sb {
			t.Fatalf("step %d: same seed diverged: %+v vs %+v", step, sa, sb)
		}
		if sa != snap(c) {
			diverged = true
		}
	}
	if !diverged {
		t.Error("different seeds never diverged over 100 steps")
	}
}

// TestShapeInvariantsAnySeed: for arbitrary seeds and every workload, the
// node's physics stay sane — power within the configured envelope,
// temperature bounded by the ambient/steady-state band, cumulative
// counters monotonic, instructions never outrunning cycles, idle time
// never exceeding wall time.
func TestShapeInvariantsAnySeed(t *testing.T) {
	base := testseed.Seed(t)
	for i, app := range workload.Names() {
		t.Run(app, func(t *testing.T) {
			seed := testseed.Derive(base, app)
			rng := rand.New(rand.NewSource(seed))
			cfg := DefaultConfig()
			cfg.Cores = 4
			cfg.Seed = seed
			n := NewNode(cfg)
			n.SetApp(workload.MustNew(app, seed+int64(i), 600), 0)

			prev := snap(n)
			var now int64
			for step := 0; step < 200; step++ {
				now += sec/2 + rng.Int63n(2*sec) // irregular sampling cadence
				n.Advance(now)
				s := snap(n)
				elapsed := float64(now) / 1e9

				// Power envelope: floor is half idle power; ceiling is max
				// power plus the full Turbo boost plus noise tail room.
				if s.power < 0.5*cfg.IdlePower || s.power > cfg.MaxPower+cfg.TurboBoost+6*cfg.NoisePower {
					t.Fatalf("step %d: power %.1f W outside envelope", step, s.power)
				}
				// Temperature is a first-order lag of the power-derived
				// steady state: it can never leave the band spanned by the
				// ambient baseline and the hottest achievable steady state.
				tMin := cfg.AmbientTemp
				tMax := cfg.AmbientTemp + cfg.TempPerWatt*(cfg.MaxPower+cfg.TurboBoost+6*cfg.NoisePower)
				if s.temp < tMin-1 || s.temp > tMax+1 {
					t.Fatalf("step %d: temp %.1f °C outside [%.1f, %.1f]", step, s.temp, tMin, tMax)
				}
				// Cumulative quantities only grow.
				if s.idle < prev.idle || s.energy < prev.energy {
					t.Fatalf("step %d: cumulative sensor went backwards: %+v -> %+v", step, prev, s)
				}
				for k, v := range s.counters {
					if v < prev.counters[k] {
						t.Fatalf("step %d: counter %d went backwards: %g -> %g", step, k, prev.counters[k], v)
					}
					if math.IsNaN(v) || math.IsInf(v, 0) {
						t.Fatalf("step %d: counter %d is %g", step, k, v)
					}
				}
				// CPI >= 1 in every model: instructions never outrun cycles.
				if s.counters[1] > s.counters[0]+1 {
					t.Fatalf("step %d: instrs %.0f > cycles %.0f", step, s.counters[1], s.counters[0])
				}
				// Idle time integrates (1-util) <= 1, so it is bounded by
				// wall time.
				if s.idle > elapsed+1e-6 {
					t.Fatalf("step %d: idle %.2fs exceeds elapsed %.2fs", step, s.idle, elapsed)
				}
				prev = s
			}
			if prev.energy == 0 || prev.counters[0] == 0 {
				t.Fatalf("no accumulation after 200 steps: %+v", prev)
			}
		})
	}
}
