// Package hardware models the physical sensors of a simulated compute
// node: power draw, temperature, cumulative CPU idle time, energy, and
// per-core performance counters (cycles, instructions, cache misses,
// floating-point and vector operations).
//
// The models are physically motivated and calibrated to the CooLMUC-3
// ranges visible in the paper's Figure 8: node power between roughly 80 W
// (idle) and 205 W (saturated, with Turbo spikes above), temperature
// tracking power through a first-order thermal RC response between ~47 °C
// and ~54 °C, and idle-time counters that integrate (1 - utilisation).
// Sampler plugins read the node state exactly like the perfevent/sysFS/
// ProcFS plugins read real hardware.
package hardware

import (
	"math"
	"math/rand"
	"sync"

	"github.com/dcdb/wintermute/internal/sim/workload"
)

// Config parameterises a node model. Zero fields take CooLMUC-3-like
// defaults from DefaultConfig.
type Config struct {
	Cores       int     // physical cores (KNL: 64)
	IdlePower   float64 // W at zero utilisation
	MaxPower    float64 // W at full utilisation (pre-Turbo)
	NoisePower  float64 // sensor + electrical noise, std dev in W
	TurboProb   float64 // probability of a Turbo spike per step
	TurboBoost  float64 // W added during a Turbo spike
	AmbientTemp float64 // °C inlet
	TempPerWatt float64 // steady-state °C per W above ambient baseline
	ThermalTau  float64 // thermal time constant, seconds
	CoreFreqHz  float64 // nominal core clock
	Seed        int64
}

// DefaultConfig returns the CooLMUC-3-like calibration.
func DefaultConfig() Config {
	return Config{
		Cores:       64,
		IdlePower:   78,
		MaxPower:    205,
		NoisePower:  2.5,
		TurboProb:   0.02,
		TurboBoost:  18,
		AmbientTemp: 42,
		TempPerWatt: 0.058,
		ThermalTau:  45,
		CoreFreqHz:  1.3e9,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Cores <= 0 {
		c.Cores = d.Cores
	}
	if c.IdlePower <= 0 {
		c.IdlePower = d.IdlePower
	}
	if c.MaxPower <= 0 {
		c.MaxPower = d.MaxPower
	}
	if c.NoisePower < 0 {
		c.NoisePower = d.NoisePower
	}
	if c.TurboProb <= 0 {
		c.TurboProb = d.TurboProb
	}
	if c.TurboBoost <= 0 {
		c.TurboBoost = d.TurboBoost
	}
	if c.AmbientTemp <= 0 {
		c.AmbientTemp = d.AmbientTemp
	}
	if c.TempPerWatt <= 0 {
		c.TempPerWatt = d.TempPerWatt
	}
	if c.ThermalTau <= 0 {
		c.ThermalTau = d.ThermalTau
	}
	if c.CoreFreqHz <= 0 {
		c.CoreFreqHz = d.CoreFreqHz
	}
	return c
}

// Node is the state of one simulated compute node. All methods are safe
// for concurrent use; Advance is idempotent per timestamp so several
// sampler plugins can share one node.
type Node struct {
	cfg Config

	mu       sync.Mutex
	rng      *rand.Rand
	lastNs   int64
	started  bool
	app      workload.App
	appStart int64

	// Degradation multiplies power draw, modelling the anomalous node of
	// Figure 8 (~20 % extra power at equal load).
	powerFactor float64
	// FreqScale models a DVFS knob in [0.5, 1]: the feedback-loop case
	// study's actuator. It scales utilisation's power contribution and
	// core clocks.
	freqScale float64

	power   float64
	temp    float64
	idleSec float64
	energyJ float64

	cycles    []float64
	instrs    []float64
	cacheMiss []float64
	flops     []float64
	vecOps    []float64
}

// NewNode builds a node model.
func NewNode(cfg Config) *Node {
	cfg = cfg.withDefaults()
	n := &Node{
		cfg:         cfg,
		rng:         rand.New(rand.NewSource(cfg.Seed)),
		powerFactor: 1,
		freqScale:   1,
		temp:        cfg.AmbientTemp + cfg.TempPerWatt*cfg.IdlePower,
		power:       cfg.IdlePower,
		cycles:      make([]float64, cfg.Cores),
		instrs:      make([]float64, cfg.Cores),
		cacheMiss:   make([]float64, cfg.Cores),
		flops:       make([]float64, cfg.Cores),
		vecOps:      make([]float64, cfg.Cores),
	}
	return n
}

// Cores returns the number of modelled cores.
func (n *Node) Cores() int { return n.cfg.Cores }

// SetApp assigns the application running on the node from startNs onward;
// a nil app returns the node to idle.
func (n *Node) SetApp(app workload.App, startNs int64) {
	n.mu.Lock()
	n.app = app
	n.appStart = startNs
	n.mu.Unlock()
}

// App returns the currently-assigned application, if any.
func (n *Node) App() workload.App {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.app
}

// SetPowerFactor scales the node's power draw, modelling component-level
// degradation (Figure 8's outlier consumes ~20 % extra power: factor 1.2).
func (n *Node) SetPowerFactor(f float64) {
	n.mu.Lock()
	n.powerFactor = f
	n.mu.Unlock()
}

// SetFreqScale adjusts the simulated DVFS knob in [0.5, 1].
func (n *Node) SetFreqScale(f float64) {
	n.mu.Lock()
	n.freqScale = math.Max(0.5, math.Min(1, f))
	n.mu.Unlock()
}

// FreqScale returns the current DVFS setting.
func (n *Node) FreqScale() float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.freqScale
}

// Advance integrates the node state up to nowNs. Repeated calls with the
// same timestamp are no-ops, so multiple samplers can call it freely.
func (n *Node) Advance(nowNs int64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.started {
		n.started = true
		n.lastNs = nowNs
		return
	}
	if nowNs <= n.lastNs {
		return
	}
	dt := float64(nowNs-n.lastNs) / 1e9
	n.lastNs = nowNs

	util := 0.02
	var t float64
	if n.app != nil {
		t = float64(nowNs-n.appStart) / 1e9
		if t >= 0 {
			util = n.app.Util(t)
		}
	}
	eff := util * n.freqScale

	// Power: linear in effective utilisation plus Turbo excursions and
	// measurement noise; degradation scales the whole draw.
	p := n.cfg.IdlePower + (n.cfg.MaxPower-n.cfg.IdlePower)*eff
	if util > 0.5 && n.rng.Float64() < n.cfg.TurboProb {
		p += n.cfg.TurboBoost * n.rng.Float64()
	}
	p += n.rng.NormFloat64() * n.cfg.NoisePower
	p *= n.powerFactor
	if p < 0.5*n.cfg.IdlePower {
		p = 0.5 * n.cfg.IdlePower
	}
	n.power = p

	// First-order thermal response towards the steady-state temperature.
	steady := n.cfg.AmbientTemp + n.cfg.TempPerWatt*p
	alpha := 1 - math.Exp(-dt/n.cfg.ThermalTau)
	n.temp += (steady - n.temp) * alpha

	n.idleSec += (1 - util) * dt
	n.energyJ += p * dt

	// Per-core counters.
	freq := n.cfg.CoreFreqHz * n.freqScale
	for c := 0; c < n.cfg.Cores; c++ {
		dCycles := freq * dt * math.Max(util, 0.01)
		cpi := 2.5
		flopFrac, vecFrac := 0.02, 0.05
		if n.app != nil && t >= 0 {
			cpi = n.app.CPI(c, t)
			flopFrac = n.app.FlopFrac(c, t)
			vecFrac = n.app.VectorRatio(c, t)
		}
		dInstr := dCycles / cpi
		n.cycles[c] += dCycles
		n.instrs[c] += dInstr
		// Miss rate grows with CPI: stalls come from the memory system.
		n.cacheMiss[c] += dInstr * 0.002 * cpi
		dFlops := dInstr * flopFrac
		n.flops[c] += dFlops
		n.vecOps[c] += dFlops * vecFrac
	}
}

// Power returns the instantaneous node power draw in W.
func (n *Node) Power() float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.power
}

// Temp returns the node temperature in °C.
func (n *Node) Temp() float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.temp
}

// IdleSeconds returns cumulative idle time in seconds.
func (n *Node) IdleSeconds() float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.idleSec
}

// EnergyJoules returns cumulative energy in J.
func (n *Node) EnergyJoules() float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.energyJ
}

// CoreCounters returns the cumulative counters of one core:
// cycles, instructions, cache misses, floating-point ops and vector ops.
func (n *Node) CoreCounters(core int) (cycles, instrs, cacheMiss, flops, vecOps float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.cycles[core], n.instrs[core], n.cacheMiss[core], n.flops[core], n.vecOps[core]
}
