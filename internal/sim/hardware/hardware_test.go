package hardware

import (
	"sync"
	"testing"
	"time"

	"github.com/dcdb/wintermute/internal/sim/workload"
)

const sec = int64(time.Second)

func TestIdleNodeRanges(t *testing.T) {
	n := NewNode(Config{Seed: 1})
	for i := int64(0); i < 300; i++ {
		n.Advance(i * sec)
	}
	p := n.Power()
	if p < 60 || p > 100 {
		t.Errorf("idle power = %v, want ~78", p)
	}
	tc := n.Temp()
	if tc < 44 || tc > 50 {
		t.Errorf("idle temp = %v, want ~46.5", tc)
	}
	// Nearly all time idle.
	if idle := n.IdleSeconds(); idle < 280 {
		t.Errorf("idle seconds = %v, want ~293", idle)
	}
}

func TestLoadedNodeRanges(t *testing.T) {
	n := NewNode(Config{Seed: 2})
	n.SetApp(workload.MustNew("hpl", 1, 3600), 0)
	for i := int64(0); i < 600; i++ {
		n.Advance(i * sec)
	}
	p := n.Power()
	if p < 170 || p > 240 {
		t.Errorf("loaded power = %v, want ~200", p)
	}
	tc := n.Temp()
	if tc < 51 || tc > 57 {
		t.Errorf("loaded temp = %v, want ~54", tc)
	}
	if idle := n.IdleSeconds(); idle > 30 {
		t.Errorf("idle seconds under load = %v, want small", idle)
	}
	if n.EnergyJoules() < 100*599 {
		t.Errorf("energy = %v, too low", n.EnergyJoules())
	}
}

func TestTemperatureTracksPowerSlowly(t *testing.T) {
	n := NewNode(Config{Seed: 3})
	for i := int64(0); i < 100; i++ {
		n.Advance(i * sec)
	}
	coldTemp := n.Temp()
	n.SetApp(workload.MustNew("hpl", 1, 3600), 100*sec)
	n.Advance(101 * sec)
	// One second after the load starts the temperature has barely moved
	// (thermal tau is 45s) even though power jumped.
	if n.Temp() > coldTemp+2 {
		t.Errorf("temp rose too fast: %v -> %v", coldTemp, n.Temp())
	}
	for i := int64(102); i < 400; i++ {
		n.Advance(i * sec)
	}
	if n.Temp() < coldTemp+4 {
		t.Errorf("temp did not converge upward: %v -> %v", coldTemp, n.Temp())
	}
}

func TestCountersMonotonic(t *testing.T) {
	n := NewNode(Config{Cores: 4, Seed: 4})
	n.SetApp(workload.MustNew("lammps", 1, 3600), 0)
	var prev [5]float64
	for i := int64(1); i < 50; i++ {
		n.Advance(i * sec)
		for c := 0; c < 4; c++ {
			cy, in, cm, fl, ve := n.CoreCounters(c)
			if c == 0 {
				cur := [5]float64{cy, in, cm, fl, ve}
				for k := range cur {
					if cur[k] < prev[k] {
						t.Fatalf("counter %d decreased: %v -> %v", k, prev[k], cur[k])
					}
				}
				prev = cur
			}
			if in > cy {
				t.Fatalf("instructions %v exceed cycles %v (CPI < 1 impossible here)", in, cy)
			}
		}
	}
}

func TestCPIRecoverableFromCounters(t *testing.T) {
	n := NewNode(Config{Cores: 2, Seed: 5})
	n.SetApp(workload.MustNew("lammps", 1, 3600), 0)
	n.Advance(0)
	n.Advance(10 * sec)
	c0, i0, _, _, _ := n.CoreCounters(0)
	n.Advance(20 * sec)
	c1, i1, _, _, _ := n.CoreCounters(0)
	cpi := (c1 - c0) / (i1 - i0)
	if cpi < 1.2 || cpi > 2.2 {
		t.Errorf("derived CPI = %v, want ~1.6 for LAMMPS", cpi)
	}
}

func TestAdvanceIdempotentPerTimestamp(t *testing.T) {
	n := NewNode(Config{Seed: 6})
	n.Advance(0)
	n.Advance(10 * sec)
	p := n.Power()
	e := n.EnergyJoules()
	// Re-advancing to the same (or an older) time must not change state.
	n.Advance(10 * sec)
	n.Advance(5 * sec)
	if n.Power() != p || n.EnergyJoules() != e {
		t.Error("Advance not idempotent per timestamp")
	}
}

func TestPowerFactorDegradation(t *testing.T) {
	mkAvg := func(factor float64) float64 {
		n := NewNode(Config{Seed: 7, NoisePower: 0.01, TurboProb: 1e-9})
		n.SetPowerFactor(factor)
		n.SetApp(workload.MustNew("hpl", 1, 3600), 0)
		var sum float64
		var cnt int
		for i := int64(0); i < 120; i++ {
			n.Advance(i * sec)
			if i > 20 {
				sum += n.Power()
				cnt++
			}
		}
		return sum / float64(cnt)
	}
	healthy := mkAvg(1.0)
	degraded := mkAvg(1.2)
	ratio := degraded / healthy
	if ratio < 1.15 || ratio > 1.25 {
		t.Errorf("degradation ratio = %v, want ~1.2", ratio)
	}
}

func TestFreqScaleReducesPowerAndCycles(t *testing.T) {
	run := func(scale float64) (power, cycles float64) {
		n := NewNode(Config{Cores: 2, Seed: 8, NoisePower: 0.01, TurboProb: 1e-9})
		n.SetFreqScale(scale)
		n.SetApp(workload.MustNew("hpl", 1, 3600), 0)
		for i := int64(0); i <= 60; i++ {
			n.Advance(i * sec)
		}
		cy, _, _, _, _ := n.CoreCounters(0)
		return n.Power(), cy
	}
	pFull, cFull := run(1.0)
	pHalf, cHalf := run(0.5)
	if pHalf >= pFull {
		t.Errorf("power at half freq (%v) should be below full (%v)", pHalf, pFull)
	}
	if cHalf >= cFull*0.7 {
		t.Errorf("cycles at half freq (%v) should be well below full (%v)", cHalf, cFull)
	}
	// Clamping.
	n := NewNode(Config{Seed: 9})
	n.SetFreqScale(0.1)
	if n.FreqScale() != 0.5 {
		t.Errorf("FreqScale clamped = %v, want 0.5", n.FreqScale())
	}
	n.SetFreqScale(2)
	if n.FreqScale() != 1 {
		t.Errorf("FreqScale clamped = %v, want 1", n.FreqScale())
	}
}

func TestSetAppSwitchesBehavior(t *testing.T) {
	n := NewNode(Config{Seed: 10})
	n.SetApp(workload.MustNew("hpl", 1, 3600), 0)
	for i := int64(0); i < 120; i++ {
		n.Advance(i * sec)
	}
	loaded := n.Power()
	n.SetApp(nil, 0)
	for i := int64(120); i < 360; i++ {
		n.Advance(i * sec)
	}
	idle := n.Power()
	if idle >= loaded-40 {
		t.Errorf("power did not drop after app removal: %v -> %v", loaded, idle)
	}
	if n.App() != nil {
		t.Error("App() should be nil after reset")
	}
}

func TestConcurrentSamplers(t *testing.T) {
	n := NewNode(Config{Cores: 8, Seed: 11})
	n.SetApp(workload.MustNew("amg", 1, 3600), 0)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := int64(0); i < 200; i++ {
				n.Advance(i * sec / 4)
				n.Power()
				n.Temp()
				n.IdleSeconds()
				n.CoreCounters(int(i) % 8)
			}
		}()
	}
	wg.Wait()
}

func TestDefaultsApplied(t *testing.T) {
	cfg := Config{}.withDefaults()
	d := DefaultConfig()
	if cfg.Cores != d.Cores || cfg.IdlePower != d.IdlePower || cfg.ThermalTau != d.ThermalTau {
		t.Errorf("defaults = %+v", cfg)
	}
	n := NewNode(Config{})
	if n.Cores() != 64 {
		t.Errorf("Cores = %d, want 64", n.Cores())
	}
}
