// Package cluster generates the topology — and thus the sensor-topic tree
// — of a simulated HPC system: racks containing chassis containing compute
// nodes containing CPU cores.
//
// The default topology mirrors CooLMUC-3, the evaluation system of the
// paper: 148 compute nodes with 64 cores each.
package cluster

import (
	"fmt"

	"github.com/dcdb/wintermute/internal/navigator"
	"github.com/dcdb/wintermute/internal/sensor"
)

// Topology describes the component hierarchy of a cluster.
type Topology struct {
	Racks           int
	ChassisPerRack  int
	NodesPerChassis int
	CoresPerNode    int
	// MaxNodes caps the total number of nodes generated (0 = no cap); it
	// allows non-rectangular totals such as CooLMUC-3's 148.
	MaxNodes int
}

// CooLMUC3 returns the topology of the paper's evaluation system:
// 148 nodes of 64 cores, arranged in 4 racks x 4 chassis x 10 node slots.
func CooLMUC3() Topology {
	return Topology{
		Racks:           4,
		ChassisPerRack:  4,
		NodesPerChassis: 10,
		CoresPerNode:    64,
		MaxNodes:        148,
	}
}

// Small returns a compact topology for tests and examples.
func Small() Topology {
	return Topology{Racks: 2, ChassisPerRack: 2, NodesPerChassis: 2, CoresPerNode: 4}
}

// NumNodes returns the total number of compute nodes in the topology.
func (t Topology) NumNodes() int {
	n := t.Racks * t.ChassisPerRack * t.NodesPerChassis
	if t.MaxNodes > 0 && n > t.MaxNodes {
		n = t.MaxNodes
	}
	return n
}

// NodePaths returns the component paths of all compute nodes, in
// deterministic order: /r01/c01/s01/, /r01/c01/s02/, ...
func (t Topology) NodePaths() []sensor.Topic {
	out := make([]sensor.Topic, 0, t.NumNodes())
	for r := 1; r <= t.Racks; r++ {
		rack := sensor.Root.JoinNode(fmt.Sprintf("r%02d", r))
		for c := 1; c <= t.ChassisPerRack; c++ {
			chassis := rack.JoinNode(fmt.Sprintf("c%02d", c))
			for s := 1; s <= t.NodesPerChassis; s++ {
				if t.MaxNodes > 0 && len(out) >= t.MaxNodes {
					return out
				}
				out = append(out, chassis.JoinNode(fmt.Sprintf("s%02d", s)))
			}
		}
	}
	return out
}

// CPUPaths returns the component paths of the cores of one node:
// <node>/cpu00/, <node>/cpu01/, ...
func (t Topology) CPUPaths(node sensor.Topic) []sensor.Topic {
	out := make([]sensor.Topic, t.CoresPerNode)
	for c := 0; c < t.CoresPerNode; c++ {
		out[c] = node.JoinNode(fmt.Sprintf("cpu%02d", c))
	}
	return out
}

// Standard sensor names published by the simulated samplers.
var (
	// NodeSensors are per-node sensors (powersim/procsim).
	NodeSensors = []string{"power", "temp", "energy", "idle-time", "freq-scale"}
	// CPUSensors are per-core counters (perfsim).
	CPUSensors = []string{"cpu-cycles", "instructions", "cache-misses", "flops", "vector-ops"}
	// RackSensors are per-rack facility sensors.
	RackSensors = []string{"inlet-temp"}
)

// SensorTopics returns every sensor topic of the cluster: rack-level
// facility sensors, node-level power/thermal/OS sensors and per-core
// performance counters.
func (t Topology) SensorTopics() []sensor.Topic {
	var out []sensor.Topic
	for r := 1; r <= t.Racks; r++ {
		rack := sensor.Root.JoinNode(fmt.Sprintf("r%02d", r))
		for _, s := range RackSensors {
			out = append(out, rack.Join(s))
		}
	}
	for _, node := range t.NodePaths() {
		for _, s := range NodeSensors {
			out = append(out, node.Join(s))
		}
		for _, cpu := range t.CPUPaths(node) {
			for _, s := range CPUSensors {
				out = append(out, cpu.Join(s))
			}
		}
	}
	return out
}

// Populate registers every sensor of the topology in a navigator.
func (t Topology) Populate(nav *navigator.Navigator) error {
	return nav.AddSensors(t.SensorTopics())
}
