package cluster

import (
	"testing"

	"github.com/dcdb/wintermute/internal/navigator"
)

func TestCooLMUC3Shape(t *testing.T) {
	topo := CooLMUC3()
	if topo.NumNodes() != 148 {
		t.Fatalf("NumNodes = %d, want 148", topo.NumNodes())
	}
	nodes := topo.NodePaths()
	if len(nodes) != 148 {
		t.Fatalf("NodePaths = %d", len(nodes))
	}
	if nodes[0] != "/r01/c01/s01/" {
		t.Errorf("first node = %q", nodes[0])
	}
	// 148 = 3 full racks (120) + 28 into rack 4.
	if nodes[147] != "/r04/c03/s08/" {
		t.Errorf("last node = %q", nodes[147])
	}
	cpus := topo.CPUPaths(nodes[0])
	if len(cpus) != 64 || cpus[0] != "/r01/c01/s01/cpu00/" || cpus[63] != "/r01/c01/s01/cpu63/" {
		t.Errorf("cpus = %v...%v", cpus[0], cpus[63])
	}
}

func TestSensorTopicsCount(t *testing.T) {
	topo := Small() // 8 nodes, 4 cores
	topics := topo.SensorTopics()
	want := topo.Racks*len(RackSensors) +
		topo.NumNodes()*(len(NodeSensors)+topo.CoresPerNode*len(CPUSensors))
	if len(topics) != want {
		t.Fatalf("topics = %d, want %d", len(topics), want)
	}
	seen := map[string]bool{}
	for _, tp := range topics {
		if err := tp.Validate(); err != nil {
			t.Fatalf("invalid topic %q: %v", tp, err)
		}
		if seen[string(tp)] {
			t.Fatalf("duplicate topic %q", tp)
		}
		seen[string(tp)] = true
	}
}

func TestPopulate(t *testing.T) {
	topo := Small()
	nv := navigator.New()
	if err := topo.Populate(nv); err != nil {
		t.Fatal(err)
	}
	if nv.NumSensors() != len(topo.SensorTopics()) {
		t.Fatalf("navigator sensors = %d", nv.NumSensors())
	}
	// Tree depth: rack(1)/chassis(2)/node(3)/cpu(4).
	if nv.MaxDepth() != 4 {
		t.Fatalf("MaxDepth = %d, want 4", nv.MaxDepth())
	}
	if len(nv.NodesAtDepth(3)) != topo.NumNodes() {
		t.Fatalf("node count at depth 3 = %d", len(nv.NodesAtDepth(3)))
	}
	if len(nv.NodesAtDepth(4)) != topo.NumNodes()*topo.CoresPerNode {
		t.Fatalf("cpu count at depth 4 = %d", len(nv.NodesAtDepth(4)))
	}
}

func TestMaxNodesCap(t *testing.T) {
	topo := Topology{Racks: 2, ChassisPerRack: 2, NodesPerChassis: 10, CoresPerNode: 1, MaxNodes: 13}
	if topo.NumNodes() != 13 {
		t.Fatalf("NumNodes = %d", topo.NumNodes())
	}
	if got := len(topo.NodePaths()); got != 13 {
		t.Fatalf("NodePaths = %d", got)
	}
	uncapped := Topology{Racks: 1, ChassisPerRack: 1, NodesPerChassis: 3, CoresPerNode: 1}
	if uncapped.NumNodes() != 3 {
		t.Fatal("uncapped NumNodes wrong")
	}
}

func TestNodePathsDeterministicOrder(t *testing.T) {
	a := CooLMUC3().NodePaths()
	b := CooLMUC3().NodePaths()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("NodePaths not deterministic")
		}
	}
	for i := 1; i < len(a); i++ {
		if a[i] <= a[i-1] {
			t.Fatal("NodePaths not sorted")
		}
	}
}
