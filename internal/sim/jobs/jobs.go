// Package jobs provides the resource-manager stand-in for job operator
// plugins: a job table recording which jobs run on which compute nodes
// over which time spans (paper §V-C, job operator plugins).
//
// The production integration reads this from SLURM; every consumer in the
// codebase needs only the (id, user, node list, time span) tuples this
// table serves.
package jobs

import (
	"fmt"
	"sort"
	"sync"

	"github.com/dcdb/wintermute/internal/core"
	"github.com/dcdb/wintermute/internal/sensor"
)

// Table is a concurrency-safe job registry implementing core.JobProvider.
type Table struct {
	mu   sync.RWMutex
	jobs map[string]core.Job
	seq  int
}

// NewTable creates an empty job table.
func NewTable() *Table {
	return &Table{jobs: make(map[string]core.Job)}
}

// Submit registers a job with an auto-assigned id, returning the id.
// End may be 0 for jobs without a known end time.
func (t *Table) Submit(user string, nodes []sensor.Topic, start, end int64) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	id := fmt.Sprintf("job%04d", t.seq)
	t.jobs[id] = core.Job{ID: id, User: user, Nodes: nodes, Start: start, End: end}
	return id
}

// Add registers a fully-specified job, replacing any previous job with
// the same id.
func (t *Table) Add(j core.Job) {
	t.mu.Lock()
	t.jobs[j.ID] = j
	t.mu.Unlock()
}

// Finish sets the end time of a job; unknown ids are ignored.
func (t *Table) Finish(id string, end int64) {
	t.mu.Lock()
	if j, ok := t.jobs[id]; ok {
		j.End = end
		t.jobs[id] = j
	}
	t.mu.Unlock()
}

// Job returns a job by id.
func (t *Table) Job(id string) (core.Job, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	j, ok := t.jobs[id]
	return j, ok
}

// RunningJobs implements core.JobProvider: all jobs with Start <= now and
// (End == 0 or End > now), sorted by id for determinism.
func (t *Table) RunningJobs(now int64) []core.Job {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []core.Job
	for _, j := range t.jobs {
		if j.Start <= now && (j.End == 0 || j.End > now) {
			out = append(out, j)
		}
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// All returns every job in the table, sorted by id.
func (t *Table) All() []core.Job {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]core.Job, 0, len(t.jobs))
	for _, j := range t.jobs {
		out = append(out, j)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// Len returns the number of jobs in the table.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.jobs)
}
