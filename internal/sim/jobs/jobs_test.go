package jobs

import (
	"sync"
	"testing"

	"github.com/dcdb/wintermute/internal/core"
	"github.com/dcdb/wintermute/internal/sensor"
)

func TestSubmitAndRunning(t *testing.T) {
	tb := NewTable()
	nodes := []sensor.Topic{"/r1/n1/", "/r1/n2/"}
	id1 := tb.Submit("alice", nodes, 100, 200)
	id2 := tb.Submit("bob", nodes[:1], 150, 0) // open-ended
	if id1 == id2 {
		t.Fatal("ids must be unique")
	}
	if tb.Len() != 2 {
		t.Fatalf("Len = %d", tb.Len())
	}
	// Before any job.
	if got := tb.RunningJobs(50); len(got) != 0 {
		t.Fatalf("running at 50 = %v", got)
	}
	// Both running.
	if got := tb.RunningJobs(160); len(got) != 2 {
		t.Fatalf("running at 160 = %d", len(got))
	}
	// job1 ended at 200 (exclusive).
	got := tb.RunningJobs(200)
	if len(got) != 1 || got[0].User != "bob" {
		t.Fatalf("running at 200 = %+v", got)
	}
}

func TestRunningJobsSorted(t *testing.T) {
	tb := NewTable()
	for i := 0; i < 5; i++ {
		tb.Submit("u", nil, 0, 0)
	}
	got := tb.RunningJobs(10)
	for i := 1; i < len(got); i++ {
		if got[i].ID <= got[i-1].ID {
			t.Fatal("RunningJobs not sorted by id")
		}
	}
}

func TestFinish(t *testing.T) {
	tb := NewTable()
	id := tb.Submit("alice", nil, 0, 0)
	if got := tb.RunningJobs(1000); len(got) != 1 {
		t.Fatal("job should be running")
	}
	tb.Finish(id, 500)
	if got := tb.RunningJobs(1000); len(got) != 0 {
		t.Fatal("job should be finished")
	}
	j, ok := tb.Job(id)
	if !ok || j.End != 500 {
		t.Fatalf("Job = %+v, %v", j, ok)
	}
	tb.Finish("nonexistent", 1) // must not panic
}

func TestAddReplaces(t *testing.T) {
	tb := NewTable()
	tb.Add(core.Job{ID: "j1", User: "x", Start: 1})
	tb.Add(core.Job{ID: "j1", User: "y", Start: 2})
	if tb.Len() != 1 {
		t.Fatalf("Len = %d", tb.Len())
	}
	j, _ := tb.Job("j1")
	if j.User != "y" {
		t.Errorf("User = %q", j.User)
	}
	if len(tb.All()) != 1 {
		t.Error("All length wrong")
	}
}

func TestJobProviderInterface(t *testing.T) {
	var _ core.JobProvider = NewTable()
}

func TestConcurrentAccess(t *testing.T) {
	tb := NewTable()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := tb.Submit("u", nil, int64(i), 0)
				if i%3 == 0 {
					tb.Finish(id, int64(i+10))
				}
			}
		}(w)
	}
	for i := 0; i < 200; i++ {
		tb.RunningJobs(int64(i))
		tb.All()
		tb.Len()
	}
	wg.Wait()
	if tb.Len() != 800 {
		t.Fatalf("Len = %d, want 800", tb.Len())
	}
}
