package jobs

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"github.com/dcdb/wintermute/internal/sensor"
	"github.com/dcdb/wintermute/internal/testseed"
)

// buildRandomTable fills a table with n jobs whose users, node lists and
// time spans are drawn from rng, returning the submitted ids in order.
func buildRandomTable(rng *rand.Rand, n int) (*Table, []string) {
	tb := NewTable()
	ids := make([]string, n)
	for i := range ids {
		nodes := make([]sensor.Topic, 1+rng.Intn(4))
		for k := range nodes {
			nodes[k] = sensor.Topic(fmt.Sprintf("/rack%02d/node%02d", rng.Intn(4), rng.Intn(40)))
		}
		start := rng.Int63n(1000)
		end := int64(0)
		if rng.Intn(3) > 0 { // a third of jobs still running
			end = start + 1 + rng.Int63n(1000)
		}
		ids[i] = tb.Submit(fmt.Sprintf("user%d", rng.Intn(8)), nodes, start, end)
	}
	return tb, ids
}

// TestDeterminismUnderSeed: two tables fed the identical randomized
// submission stream must be indistinguishable — same ids, same jobs, same
// RunningJobs answers at every probe time. Seeded via testseed so a
// failure replays with WINTERMUTE_TEST_SEED.
func TestDeterminismUnderSeed(t *testing.T) {
	seed := testseed.Seed(t)
	t1, ids1 := buildRandomTable(rand.New(rand.NewSource(seed)), 50)
	t2, ids2 := buildRandomTable(rand.New(rand.NewSource(seed)), 50)
	for i := range ids1 {
		if ids1[i] != ids2[i] {
			t.Fatalf("id %d: %q vs %q", i, ids1[i], ids2[i])
		}
	}
	for now := int64(0); now <= 2000; now += 97 {
		a, b := t1.RunningJobs(now), t2.RunningJobs(now)
		if len(a) != len(b) {
			t.Fatalf("now=%d: %d vs %d running jobs", now, len(a), len(b))
		}
		for i := range a {
			if a[i].ID != b[i].ID || a[i].Start != b[i].Start || a[i].End != b[i].End {
				t.Fatalf("now=%d job %d: %+v vs %+v", now, i, a[i], b[i])
			}
		}
	}
}

// TestShapeInvariantsAnySeed: for an arbitrary randomized table,
// RunningJobs(now) must return exactly the jobs whose [Start, End) span
// covers now, sorted by id, and always a subset of All(); ids are unique
// and every submitted job is retrievable.
func TestShapeInvariantsAnySeed(t *testing.T) {
	rng := testseed.Rand(t)
	tb, ids := buildRandomTable(rng, 80)

	seen := make(map[string]bool, len(ids))
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate id %q", id)
		}
		seen[id] = true
		if _, ok := tb.Job(id); !ok {
			t.Fatalf("submitted job %q not retrievable", id)
		}
	}
	all := tb.All()
	if len(all) != len(ids) {
		t.Fatalf("All() returned %d jobs, want %d", len(all), len(ids))
	}
	if !sort.SliceIsSorted(all, func(i, k int) bool { return all[i].ID < all[k].ID }) {
		t.Fatal("All() not sorted by id")
	}

	for probe := 0; probe < 40; probe++ {
		now := rng.Int63n(2200) - 100
		got := tb.RunningJobs(now)
		if !sort.SliceIsSorted(got, func(i, k int) bool { return got[i].ID < got[k].ID }) {
			t.Fatalf("RunningJobs(%d) not sorted", now)
		}
		// Reference answer from the full table.
		want := 0
		for _, j := range all {
			if j.Start <= now && (j.End == 0 || j.End > now) {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("RunningJobs(%d) = %d jobs, reference says %d", now, len(got), want)
		}
		for _, j := range got {
			if !seen[j.ID] {
				t.Fatalf("RunningJobs(%d) invented job %q", now, j.ID)
			}
			if j.Start > now || (j.End != 0 && j.End <= now) {
				t.Fatalf("RunningJobs(%d) returned non-running job %+v", now, j)
			}
		}
	}
}
