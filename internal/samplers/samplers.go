// Package samplers implements the monitoring (data-acquisition) plugins
// hosted by DCDB Pushers. Each sampler owns a set of sensors and produces
// readings for them on demand; the Pusher drives sampling loops and routes
// the readings into caches and over MQTT.
//
// Production DCDB ships perfevent, sysFS, ProcFS and OPA plugins reading
// real hardware; this package provides their simulated counterparts
// reading from the hardware models of internal/sim/hardware, plus the
// "tester" plugin of paper §VI-A, which produces configurable numbers of
// monotonic sensors with negligible overhead to serve as a controlled
// baseline.
package samplers

import (
	"fmt"
	"time"

	"github.com/dcdb/wintermute/internal/core"
	"github.com/dcdb/wintermute/internal/sensor"
	"github.com/dcdb/wintermute/internal/sim/cluster"
	"github.com/dcdb/wintermute/internal/sim/hardware"
)

// Sampler is a monitoring plugin: a named source of sensors sampled at a
// common interval.
type Sampler interface {
	// Name identifies the sampler instance.
	Name() string
	// Interval is the nominal sampling interval.
	Interval() time.Duration
	// Sensors describes every sensor this sampler produces.
	Sensors() []sensor.Info
	// Sample appends readings for all sensors at the given time to dst.
	Sample(now time.Time, dst []core.Output) []core.Output
}

// --- Tester --------------------------------------------------------------

// Tester produces n monotonic counter sensors under a base component path,
// mirroring the tester monitoring plugin of paper §VI-A ("a total of 1000
// monotonic sensors with negligible overhead, so as to provide a reliable
// baseline").
type Tester struct {
	name     string
	interval time.Duration
	topics   []sensor.Topic
	counter  float64
}

// NewTester creates a tester sampler with n sensors named test0..test<n-1>
// under base.
func NewTester(name string, base sensor.Topic, n int, interval time.Duration) *Tester {
	t := &Tester{name: name, interval: interval}
	base = base.AsNode()
	for i := 0; i < n; i++ {
		t.topics = append(t.topics, base.Join(fmt.Sprintf("test%d", i)))
	}
	return t
}

// Name implements Sampler.
func (t *Tester) Name() string { return t.name }

// Interval implements Sampler.
func (t *Tester) Interval() time.Duration { return t.interval }

// Sensors implements Sampler.
func (t *Tester) Sensors() []sensor.Info {
	out := make([]sensor.Info, len(t.topics))
	for i, tp := range t.topics {
		out[i] = sensor.Info{Topic: tp, Unit: "count", Interval: t.interval, Monotonic: true}
	}
	return out
}

// Sample implements Sampler: every sensor advances by one per sample.
func (t *Tester) Sample(now time.Time, dst []core.Output) []core.Output {
	t.counter++
	r := sensor.At(t.counter, now)
	for _, tp := range t.topics {
		dst = append(dst, core.Output{Topic: tp, Reading: r})
	}
	return dst
}

// --- PowerSim ------------------------------------------------------------

// PowerSim reads node-level power, temperature, cumulative energy and the
// DVFS knob from a hardware model — the stand-in for the sysFS/IPMI power
// instrumentation of CooLMUC-3.
type PowerSim struct {
	name     string
	interval time.Duration
	node     *hardware.Node
	path     sensor.Topic
}

// NewPowerSim creates a power sampler for the node model mounted at the
// given component path.
func NewPowerSim(node *hardware.Node, path sensor.Topic, interval time.Duration) *PowerSim {
	return &PowerSim{
		name:     "powersim" + string(path.AsNode()),
		interval: interval,
		node:     node,
		path:     path.AsNode(),
	}
}

// Name implements Sampler.
func (p *PowerSim) Name() string { return p.name }

// Interval implements Sampler.
func (p *PowerSim) Interval() time.Duration { return p.interval }

// Sensors implements Sampler.
func (p *PowerSim) Sensors() []sensor.Info {
	return []sensor.Info{
		{Topic: p.path.Join("power"), Unit: "W", Interval: p.interval},
		{Topic: p.path.Join("temp"), Unit: "C", Interval: p.interval},
		{Topic: p.path.Join("energy"), Unit: "J", Interval: p.interval, Monotonic: true},
		{Topic: p.path.Join("freq-scale"), Unit: "ratio", Interval: p.interval},
	}
}

// Sample implements Sampler.
func (p *PowerSim) Sample(now time.Time, dst []core.Output) []core.Output {
	ns := now.UnixNano()
	p.node.Advance(ns)
	return append(dst,
		core.Output{Topic: p.path.Join("power"), Reading: sensor.Reading{Value: p.node.Power(), Time: ns}},
		core.Output{Topic: p.path.Join("temp"), Reading: sensor.Reading{Value: p.node.Temp(), Time: ns}},
		core.Output{Topic: p.path.Join("energy"), Reading: sensor.Reading{Value: p.node.EnergyJoules(), Time: ns}},
		core.Output{Topic: p.path.Join("freq-scale"), Reading: sensor.Reading{Value: p.node.FreqScale(), Time: ns}},
	)
}

// --- ProcSim -------------------------------------------------------------

// ProcSim reads OS-level metrics (cumulative CPU idle time) from a
// hardware model — the ProcFS plugin's counterpart.
type ProcSim struct {
	name     string
	interval time.Duration
	node     *hardware.Node
	path     sensor.Topic
}

// NewProcSim creates a ProcFS-like sampler for a node model.
func NewProcSim(node *hardware.Node, path sensor.Topic, interval time.Duration) *ProcSim {
	return &ProcSim{
		name:     "procsim" + string(path.AsNode()),
		interval: interval,
		node:     node,
		path:     path.AsNode(),
	}
}

// Name implements Sampler.
func (p *ProcSim) Name() string { return p.name }

// Interval implements Sampler.
func (p *ProcSim) Interval() time.Duration { return p.interval }

// Sensors implements Sampler.
func (p *ProcSim) Sensors() []sensor.Info {
	return []sensor.Info{
		{Topic: p.path.Join("idle-time"), Unit: "s", Interval: p.interval, Monotonic: true},
	}
}

// Sample implements Sampler.
func (p *ProcSim) Sample(now time.Time, dst []core.Output) []core.Output {
	ns := now.UnixNano()
	p.node.Advance(ns)
	return append(dst, core.Output{
		Topic:   p.path.Join("idle-time"),
		Reading: sensor.Reading{Value: p.node.IdleSeconds(), Time: ns},
	})
}

// --- PerfSim -------------------------------------------------------------

// PerfSim reads per-core performance counters from a hardware model — the
// perfevent plugin's counterpart. It produces one sensor per (core,
// counter) pair under <node>/cpuNN/.
type PerfSim struct {
	name     string
	interval time.Duration
	node     *hardware.Node
	path     sensor.Topic
	cpuPaths []sensor.Topic
}

// NewPerfSim creates a perfevent-like sampler for a node model.
func NewPerfSim(node *hardware.Node, path sensor.Topic, interval time.Duration) *PerfSim {
	p := &PerfSim{
		name:     "perfsim" + string(path.AsNode()),
		interval: interval,
		node:     node,
		path:     path.AsNode(),
	}
	for c := 0; c < node.Cores(); c++ {
		p.cpuPaths = append(p.cpuPaths, p.path.JoinNode(fmt.Sprintf("cpu%02d", c)))
	}
	return p
}

// Name implements Sampler.
func (p *PerfSim) Name() string { return p.name }

// Interval implements Sampler.
func (p *PerfSim) Interval() time.Duration { return p.interval }

// Sensors implements Sampler.
func (p *PerfSim) Sensors() []sensor.Info {
	out := make([]sensor.Info, 0, len(p.cpuPaths)*len(cluster.CPUSensors))
	for _, cp := range p.cpuPaths {
		for _, s := range cluster.CPUSensors {
			out = append(out, sensor.Info{Topic: cp.Join(s), Unit: "count", Interval: p.interval, Monotonic: true})
		}
	}
	return out
}

// Sample implements Sampler.
func (p *PerfSim) Sample(now time.Time, dst []core.Output) []core.Output {
	ns := now.UnixNano()
	p.node.Advance(ns)
	for c, cp := range p.cpuPaths {
		cycles, instrs, miss, flops, vec := p.node.CoreCounters(c)
		dst = append(dst,
			core.Output{Topic: cp.Join("cpu-cycles"), Reading: sensor.Reading{Value: cycles, Time: ns}},
			core.Output{Topic: cp.Join("instructions"), Reading: sensor.Reading{Value: instrs, Time: ns}},
			core.Output{Topic: cp.Join("cache-misses"), Reading: sensor.Reading{Value: miss, Time: ns}},
			core.Output{Topic: cp.Join("flops"), Reading: sensor.Reading{Value: flops, Time: ns}},
			core.Output{Topic: cp.Join("vector-ops"), Reading: sensor.Reading{Value: vec, Time: ns}},
		)
	}
	return dst
}
