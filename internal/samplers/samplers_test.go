package samplers

import (
	"testing"
	"time"

	"github.com/dcdb/wintermute/internal/core"
	"github.com/dcdb/wintermute/internal/sim/hardware"
	"github.com/dcdb/wintermute/internal/sim/workload"
)

func TestTesterSampler(t *testing.T) {
	s := NewTester("tester1", "/r1/n1/", 10, time.Second)
	if s.Name() != "tester1" || s.Interval() != time.Second {
		t.Fatal("identity wrong")
	}
	infos := s.Sensors()
	if len(infos) != 10 {
		t.Fatalf("sensors = %d", len(infos))
	}
	if infos[0].Topic != "/r1/n1/test0" || !infos[0].Monotonic {
		t.Fatalf("info[0] = %+v", infos[0])
	}
	now := time.Unix(100, 0)
	outs := s.Sample(now, nil)
	if len(outs) != 10 {
		t.Fatalf("outputs = %d", len(outs))
	}
	if outs[0].Reading.Value != 1 {
		t.Errorf("first sample value = %v", outs[0].Reading.Value)
	}
	outs = s.Sample(now.Add(time.Second), outs[:0])
	if outs[0].Reading.Value != 2 {
		t.Errorf("monotonic counter = %v, want 2", outs[0].Reading.Value)
	}
}

func TestPowerSimSampler(t *testing.T) {
	node := hardware.NewNode(hardware.Config{Cores: 2, Seed: 1})
	node.SetApp(workload.MustNew("hpl", 1, 3600), 0)
	s := NewPowerSim(node, "/r1/n1", time.Second)
	infos := s.Sensors()
	if len(infos) != 4 {
		t.Fatalf("sensors = %v", infos)
	}
	var outs []core.Output
	for i := 0; i < 60; i++ {
		outs = s.Sample(time.Unix(int64(i), 0), outs[:0])
	}
	if len(outs) != 4 {
		t.Fatalf("outputs = %d", len(outs))
	}
	byName := map[string]float64{}
	for _, o := range outs {
		byName[o.Topic.Name()] = o.Reading.Value
	}
	if byName["power"] < 150 {
		t.Errorf("power = %v, want loaded", byName["power"])
	}
	if byName["temp"] < 43 {
		t.Errorf("temp = %v", byName["temp"])
	}
	if byName["energy"] <= 0 {
		t.Errorf("energy = %v", byName["energy"])
	}
	if byName["freq-scale"] != 1 {
		t.Errorf("freq-scale = %v", byName["freq-scale"])
	}
}

func TestProcSimSampler(t *testing.T) {
	node := hardware.NewNode(hardware.Config{Cores: 2, Seed: 2})
	s := NewProcSim(node, "/r1/n1/", time.Second)
	if len(s.Sensors()) != 1 {
		t.Fatal("procsim should expose idle-time")
	}
	var last float64
	for i := 0; i < 30; i++ {
		outs := s.Sample(time.Unix(int64(i), 0), nil)
		v := outs[0].Reading.Value
		if v < last {
			t.Fatalf("idle-time decreased: %v -> %v", last, v)
		}
		last = v
	}
	if last < 25 {
		t.Errorf("idle node idle-time = %v, want ~29", last)
	}
}

func TestPerfSimSampler(t *testing.T) {
	node := hardware.NewNode(hardware.Config{Cores: 4, Seed: 3})
	node.SetApp(workload.MustNew("lammps", 1, 3600), 0)
	s := NewPerfSim(node, "/r1/n1", time.Second)
	infos := s.Sensors()
	if len(infos) != 4*5 {
		t.Fatalf("sensors = %d, want 20", len(infos))
	}
	var out1, out2 []core.Output
	out1 = s.Sample(time.Unix(0, 0), nil)
	out1 = s.Sample(time.Unix(10, 0), out1[:0])
	out2 = s.Sample(time.Unix(20, 0), nil)
	if len(out1) != 20 || len(out2) != 20 {
		t.Fatalf("outputs = %d/%d", len(out1), len(out2))
	}
	// Find cpu00 cycles and instructions in both samples and check the
	// derived CPI is in the LAMMPS band.
	find := func(outs []core.Output, topic string) float64 {
		for _, o := range outs {
			if string(o.Topic) == topic {
				return o.Reading.Value
			}
		}
		t.Fatalf("topic %q missing", topic)
		return 0
	}
	dCycles := find(out2, "/r1/n1/cpu00/cpu-cycles") - find(out1, "/r1/n1/cpu00/cpu-cycles")
	dInstr := find(out2, "/r1/n1/cpu00/instructions") - find(out1, "/r1/n1/cpu00/instructions")
	cpi := dCycles / dInstr
	if cpi < 1.2 || cpi > 2.2 {
		t.Errorf("derived CPI = %v, want ~1.6", cpi)
	}
}

func TestSamplerInterfaceCompliance(t *testing.T) {
	node := hardware.NewNode(hardware.Config{Cores: 1, Seed: 4})
	for _, s := range []Sampler{
		NewTester("t", "/n/", 1, time.Second),
		NewPowerSim(node, "/n/", time.Second),
		NewProcSim(node, "/n/", time.Second),
		NewPerfSim(node, "/n/", time.Second),
	} {
		if s.Name() == "" {
			t.Errorf("%T has empty name", s)
		}
		for _, info := range s.Sensors() {
			if err := info.Topic.Validate(); err != nil {
				t.Errorf("%T produces invalid topic %q", s, info.Topic)
			}
		}
	}
}
