package core

import (
	"github.com/dcdb/wintermute/internal/telemetry"
)

// EnableTelemetry registers the manager's operator/scheduler telemetry
// in reg: a tick-latency histogram plus callback gauges over the
// computation pool (threads, queued, active, saturation) and a
// completed-tasks counter. The callbacks resolve the current scheduler
// on every scrape, so SetThreads swapping the pool keeps the series
// truthful. Handles are released by Close. Calling with a nil registry
// is a no-op.
func (m *Manager) EnableTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	m.mu.Lock()
	m.tickHist = reg.Histogram("dcdb_wintermute_tick_seconds",
		"Seconds per serialized operator tick (compute + sink publish).",
		telemetry.DefDurationBuckets)
	m.mu.Unlock()
	stats := func() SchedulerStats { return m.SchedulerStats() }
	handles := []*telemetry.FuncHandle{
		reg.GaugeFunc("dcdb_scheduler_threads",
			"Workers in the Wintermute computation pool.",
			func() float64 { return float64(stats().Threads) }),
		reg.GaugeFunc("dcdb_scheduler_queued",
			"Computations waiting for a pool worker.",
			func() float64 { return float64(stats().Queued) }),
		reg.GaugeFunc("dcdb_scheduler_active",
			"Computations currently executing on the pool.",
			func() float64 { return float64(stats().Active) }),
		reg.GaugeFunc("dcdb_scheduler_saturation",
			"Pool pressure: (active + queued) / threads.",
			func() float64 {
				s := stats()
				if s.Threads == 0 {
					return 0
				}
				return float64(s.Active+s.Queued) / float64(s.Threads)
			}),
		reg.CounterFunc("dcdb_scheduler_tasks_completed_total",
			"Computations completed by the pool since start.",
			func() float64 { return float64(stats().Completed) }),
	}
	m.mu.Lock()
	m.telemetryHandles = append(m.telemetryHandles, handles...)
	m.mu.Unlock()
}

// closeTelemetry unregisters the manager's callback metrics; called
// from Close before the pool shuts down.
func (m *Manager) closeTelemetry() {
	m.mu.Lock()
	handles := m.telemetryHandles
	m.telemetryHandles = nil
	m.mu.Unlock()
	for _, h := range handles {
		h.Close()
	}
}
