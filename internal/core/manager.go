package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/dcdb/wintermute/internal/sensor"
	"github.com/dcdb/wintermute/internal/telemetry"
)

// Job is the job-related data made available to job operator plugins
// (paper §V-C): identity, owner, the compute nodes the job runs on, and
// its time span in nanoseconds (End == 0 while running).
type Job struct {
	ID   string
	User string
	// Name is the job's script or application name as reported by the
	// resource manager; application-fingerprinting operators use it as
	// the training label.
	Name  string
	Nodes []sensor.Topic // component paths of the allocated nodes
	Start int64
	End   int64
}

// Label returns the job's application label: Name when set, the id
// otherwise.
func (j Job) Label() string {
	if j.Name != "" {
		return j.Name
	}
	return j.ID
}

// JobProvider supplies the set of jobs running at a point in time; the
// resource-manager integration (or its simulation) implements it.
type JobProvider interface {
	RunningJobs(now int64) []Job
}

// Env is the environment handed to plugin configurators: everything an
// operator may bind to beyond plain sensor data.
type Env struct {
	Jobs JobProvider // nil when no resource manager is attached
}

// PluginFactory instantiates the operators of one plugin from its raw
// configuration block.
type PluginFactory func(cfg json.RawMessage, qe *QueryEngine, env Env) ([]Operator, error)

var (
	registryMu sync.RWMutex
	registry   = map[string]PluginFactory{}
)

// RegisterPlugin makes an operator plugin available to managers under the
// given name. It is typically called from plugin init functions and
// panics on duplicates, which indicate a build-level bug.
func RegisterPlugin(name string, f PluginFactory) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic("core: duplicate plugin registration: " + name)
	}
	registry[name] = f
}

// RegisteredPlugins returns the sorted names of all available plugins.
func RegisteredPlugins() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func lookupPlugin(name string) (PluginFactory, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	f, ok := registry[name]
	return f, ok
}

// opRuntime tracks the execution state of one operator.
type opRuntime struct {
	op      Operator
	stop    chan struct{}
	running bool

	// tickMu serializes tick execution: no two ticks of the same operator
	// ever overlap, even when a wall-clock loop and TickAll race.
	tickMu sync.Mutex

	mu      sync.Mutex
	ticks   uint64
	lastErr error
	lastDur time.Duration
}

// OperatorStatus is a snapshot of an operator's state for the REST API.
type OperatorStatus struct {
	Name     string        `json:"name"`
	Plugin   string        `json:"plugin"`
	Mode     string        `json:"mode"`
	Interval time.Duration `json:"interval"`
	Parallel bool          `json:"parallel"`
	Units    int           `json:"units"`
	Running  bool          `json:"running"`
	Ticks    uint64        `json:"ticks"`
	// LastDuration is the wall-clock duration of the most recent tick.
	LastDuration time.Duration `json:"lastDurationNs,omitempty"`
	LastErr      string        `json:"lastError,omitempty"`
}

// Manager is the central entity responsible for reading Wintermute
// configuration, loading plugins and managing operator life cycles
// (paper §V-A). One manager is embedded in each Pusher and Collect Agent.
//
// Lock hierarchy, machine-checked by cmd/invlint: the manager lock is
// outermost; a tick serialization lock may be taken under it; the
// per-runtime stats lock and the scheduler lock are innermost. The PR 1
// Status() deadlock was exactly an inversion of this order.
//
//lint:lockorder Manager.mu < opRuntime.tickMu < opRuntime.mu
//lint:lockorder opRuntime.tickMu < Scheduler.mu
type Manager struct {
	qe   *QueryEngine
	sink Sink
	env  Env

	mu    sync.Mutex
	ops   map[string]*opRuntime // by operator name
	sched *Scheduler

	// tickHist observes per-operator tick latency; never nil (an
	// unattached histogram until EnableTelemetry registers a real one).
	tickHist         *telemetry.Histogram
	telemetryHandles []*telemetry.FuncHandle
}

// NewManager creates a manager computing against qe and emitting operator
// output to sink. Operator computations run on a worker pool sized
// runtime.GOMAXPROCS by default; SetThreads or the `threads` field of
// Config resize it.
func NewManager(qe *QueryEngine, sink Sink, env Env) *Manager {
	return &Manager{
		qe:       qe,
		sink:     sink,
		env:      env,
		ops:      make(map[string]*opRuntime),
		sched:    NewScheduler(0),
		tickHist: (*telemetry.Registry)(nil).Histogram("", "", telemetry.DefDurationBuckets),
	}
}

// QueryEngine returns the manager's query engine.
func (m *Manager) QueryEngine() *QueryEngine { return m.qe }

// SetThreads replaces the computation pool with one of the given size
// (non-positive: runtime.GOMAXPROCS). The previous pool drains its queued
// work and shuts down; in-flight ticks complete on it.
func (m *Manager) SetThreads(threads int) {
	m.mu.Lock()
	old := m.sched
	m.sched = NewScheduler(threads)
	m.mu.Unlock()
	old.Close()
}

// Threads returns the size of the computation pool.
func (m *Manager) Threads() int { return m.scheduler().Threads() }

// SchedulerStats returns a snapshot of the computation pool: size, queued
// and active tasks, total completed tasks.
func (m *Manager) SchedulerStats() SchedulerStats { return m.scheduler().Stats() }

func (m *Manager) scheduler() *Scheduler {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sched
}

// Config is the top-level Wintermute configuration: the list of plugin
// blocks to load and the size of the shared computation pool.
type Config struct {
	// Threads sizes the worker pool executing operator computations
	// (paper §V-A: the `threads` knob of the operator manager). Zero or
	// negative selects runtime.GOMAXPROCS.
	Threads int            `json:"threads"`
	Plugins []PluginConfig `json:"plugins"`
}

// PluginConfig pairs a plugin name with its plugin-specific configuration.
type PluginConfig struct {
	Plugin string          `json:"plugin"`
	Config json.RawMessage `json:"config"`
}

// LoadConfig applies the pool size and loads every plugin block of a
// configuration.
func (m *Manager) LoadConfig(cfg Config) error {
	if cfg.Threads > 0 {
		m.SetThreads(cfg.Threads)
	}
	for _, pc := range cfg.Plugins {
		if err := m.LoadPlugin(pc.Plugin, pc.Config); err != nil {
			return err
		}
	}
	return nil
}

// LoadPlugin instantiates the operators of one plugin from its raw
// configuration and registers them with the manager. Operators are
// created stopped; call Start or StartOperator to run them.
func (m *Manager) LoadPlugin(name string, cfg json.RawMessage) error {
	factory, ok := lookupPlugin(name)
	if !ok {
		return fmt.Errorf("core: unknown plugin %q (available: %v)", name, RegisteredPlugins())
	}
	ops, err := factory(cfg, m.qe, m.env)
	if err != nil {
		return fmt.Errorf("core: plugin %q: %w", name, err)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, op := range ops {
		if _, dup := m.ops[op.Name()]; dup {
			return fmt.Errorf("core: duplicate operator name %q", op.Name())
		}
	}
	for _, op := range ops {
		m.ops[op.Name()] = &opRuntime{op: op}
	}
	return nil
}

// AdoptOperator registers an already-constructed operator with the
// manager, as if a plugin factory had produced it. Embedding hosts and
// benchmark harnesses use it to manage hand-built operators without going
// through configuration. The operator is created stopped.
func (m *Manager) AdoptOperator(op Operator) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.ops[op.Name()]; dup {
		return fmt.Errorf("core: duplicate operator name %q", op.Name())
	}
	m.ops[op.Name()] = &opRuntime{op: op}
	return nil
}

// UnloadPlugin stops and removes every operator created by the named
// plugin, returning how many were removed.
func (m *Manager) UnloadPlugin(name string) int {
	m.mu.Lock()
	var victims []*opRuntime
	for key, rt := range m.ops {
		if rt.op.Plugin() == name {
			victims = append(victims, rt)
			delete(m.ops, key)
		}
	}
	m.mu.Unlock()
	for _, rt := range victims {
		m.stopRuntime(rt)
	}
	return len(victims)
}

// Operators returns the managed operators sorted by name.
func (m *Manager) Operators() []Operator {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Operator, 0, len(m.ops))
	for _, rt := range m.ops {
		out = append(out, rt.op)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// Operator returns the named operator, if managed.
func (m *Manager) Operator(name string) (Operator, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rt, ok := m.ops[name]
	if !ok {
		return nil, false
	}
	return rt.op, true
}

// Start launches the tick loop of every Online operator.
func (m *Manager) Start() {
	for _, op := range m.Operators() {
		// Errors only occur for unknown names, impossible here.
		_ = m.StartOperator(op.Name())
	}
}

// Stop halts all running operators and waits for their loops to exit.
func (m *Manager) Stop() {
	m.mu.Lock()
	var running []*opRuntime
	for _, rt := range m.ops {
		running = append(running, rt)
	}
	m.mu.Unlock()
	for _, rt := range running {
		m.stopRuntime(rt)
	}
}

// Close stops all operators and shuts the computation pool down, ending
// its worker goroutines. The manager stays usable afterwards — further
// ticks run synchronously on their callers — but cannot regain a pool;
// use Stop for a restartable halt.
func (m *Manager) Close() {
	m.Stop()
	m.closeTelemetry()
	m.scheduler().Close()
}

// StartOperator launches the tick loop of one operator. OnDemand
// operators have no loop and are silently left alone.
func (m *Manager) StartOperator(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	rt, ok := m.ops[name]
	if !ok {
		return fmt.Errorf("core: unknown operator %q", name)
	}
	if rt.running || rt.op.Mode() != Online {
		return nil
	}
	rt.stop = make(chan struct{})
	rt.running = true
	go m.runLoop(rt, rt.stop)
	return nil
}

// StopOperator halts one operator's loop.
func (m *Manager) StopOperator(name string) error {
	m.mu.Lock()
	rt, ok := m.ops[name]
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("core: unknown operator %q", name)
	}
	m.stopRuntime(rt)
	return nil
}

func (m *Manager) stopRuntime(rt *opRuntime) {
	m.mu.Lock()
	if !rt.running {
		m.mu.Unlock()
		return
	}
	rt.running = false
	stop := rt.stop
	m.mu.Unlock()
	close(stop)
}

// runLoop drives one operator with a wall-clock ticker. The stop channel
// is passed in rather than read from rt: a stopped operator can be
// restarted, and reading rt.stop here would race with StartOperator
// reassigning it for the new loop.
func (m *Manager) runLoop(rt *opRuntime, stop <-chan struct{}) {
	ticker := time.NewTicker(rt.op.Interval())
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case now := <-ticker.C:
			m.tickRuntime(rt, now)
		}
	}
}

// tickRuntime runs one serialized tick of an operator: computations land
// on the manager's worker pool, and rt.tickMu guarantees ticks of the same
// operator never overlap (a tick outlasting its interval delays the next
// one instead of racing it).
func (m *Manager) tickRuntime(rt *opRuntime, now time.Time) error {
	// Resolve the scheduler (and tick histogram) before taking tickMu:
	// m.mu comes before tickMu in the lock hierarchy, so taking it
	// under tickMu would invert the declared order (invlint: lockorder).
	m.mu.Lock()
	sched, tickHist := m.sched, m.tickHist
	m.mu.Unlock()
	rt.tickMu.Lock()
	defer rt.tickMu.Unlock()
	start := time.Now()
	err := TickScheduled(rt.op, m.qe, m.sink, now, sched)
	dur := time.Since(start)
	tickHist.Observe(dur.Seconds())
	rt.mu.Lock()
	rt.ticks++
	rt.lastErr = err
	rt.lastDur = dur
	rt.mu.Unlock()
	return err
}

// TickAll synchronously runs one computation round of every Online
// operator at the given simulated time. Experiment harnesses and tests
// drive managers with TickAll instead of wall-clock tickers, so that weeks
// of monitoring data can be processed in seconds. Operators are dispatched
// concurrently — the actual computations are bounded by the manager's
// worker pool — and all failures are aggregated with errors.Join.
func (m *Manager) TickAll(now time.Time) error {
	m.mu.Lock()
	rts := make([]*opRuntime, 0, len(m.ops))
	for _, rt := range m.ops {
		if rt.op.Mode() == Online {
			rts = append(rts, rt)
		}
	}
	m.mu.Unlock()
	// Deterministic error ordering across runs.
	sort.Slice(rts, func(i, j int) bool { return rts[i].op.Name() < rts[j].op.Name() })
	errs := make([]error, len(rts))
	var wg sync.WaitGroup
	for i, rt := range rts {
		wg.Add(1)
		go func(i int, rt *opRuntime) {
			defer wg.Done()
			errs[i] = m.tickRuntime(rt, now)
		}(i, rt)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// OnDemand triggers the computation of one operator through the REST
// path (paper §IV-b): output is returned to the caller only, not pushed
// to the sink. An empty unitName computes every unit.
func (m *Manager) OnDemand(opName string, unitName sensor.Topic, now time.Time) ([]Output, error) {
	m.mu.Lock()
	rt, ok := m.ops[opName]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("core: unknown operator %q", opName)
	}
	op := rt.op
	if d, ok := op.(DynamicUnitOperator); ok {
		if err := d.RefreshUnits(m.qe, now); err != nil {
			return nil, err
		}
	}
	if b, ok := op.(BatchOperator); ok {
		return b.ComputeBatch(m.qe, now)
	}
	// On-demand computations run through the same bound-handle/scratch
	// path as ticks, against a fresh (unpooled) context: results go back
	// to the caller, so they must not alias recycled buffers. Each unit's
	// outputs are copied into the response slice before the context is
	// reused for the next unit.
	tc := NewTickContext()
	var outs []Output
	if unitName != "" {
		for _, u := range op.Units() {
			if u.Name == sensor.Clean(string(unitName)).AsNode() {
				return computeUnit(op, m.qe, u, now, tc)
			}
		}
		return nil, fmt.Errorf("core: operator %q has no unit %q", opName, unitName)
	}
	for _, u := range op.Units() {
		o, err := computeUnit(op, m.qe, u, now, tc)
		if err != nil {
			return nil, err
		}
		outs = append(outs, o...)
	}
	return outs, nil
}

// Status returns a snapshot of every operator, sorted by name. The
// running flags are captured in the same m.mu pass that collects the
// runtimes, so Status never interleaves m.mu with the per-runtime locks
// (interleaving the two was a lock-order inversion waiting to deadlock).
func (m *Manager) Status() []OperatorStatus {
	type snapshot struct {
		rt      *opRuntime
		running bool
	}
	m.mu.Lock()
	snaps := make([]snapshot, 0, len(m.ops))
	for _, rt := range m.ops {
		snaps = append(snaps, snapshot{rt: rt, running: rt.running})
	}
	m.mu.Unlock()
	out := make([]OperatorStatus, 0, len(snaps))
	for _, sn := range snaps {
		rt := sn.rt
		rt.mu.Lock()
		st := OperatorStatus{
			Name:         rt.op.Name(),
			Plugin:       rt.op.Plugin(),
			Mode:         rt.op.Mode().String(),
			Interval:     rt.op.Interval(),
			Parallel:     rt.op.Parallel(),
			Units:        len(rt.op.Units()),
			Running:      sn.running,
			Ticks:        rt.ticks,
			LastDuration: rt.lastDur,
		}
		if rt.lastErr != nil {
			st.LastErr = rt.lastErr.Error()
		}
		rt.mu.Unlock()
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
