package core

import (
	"runtime"
	"sync"
)

// Scheduler is the bounded worker pool that executes operator computations
// for a Manager. It mirrors the `threads` boost::asio pool of the DCDB
// Wintermute operator manager (paper §V-A): every plugin shares one pool
// sized by the `threads` configuration knob, so thousands of sensors and
// dozens of operators per node cannot oversubscribe the host's cores —
// monitoring overhead stays bounded no matter how much analytics is loaded.
//
// Tasks are closures; the pool makes no fairness guarantees beyond FIFO
// dispatch. Workers are started lazily on first use, so idle managers (for
// example managers hosting only on-demand operators) cost nothing.
//
// A task must never block on the completion of another task submitted to
// the same scheduler: with every worker waiting, neither task could run.
// The Manager upholds this by keeping coordination (per-operator fan-out
// and joins) on plain goroutines and pushing only leaf computations into
// the pool.
type Scheduler struct {
	threads int

	mu        sync.Mutex
	cond      *sync.Cond
	queue     []func()
	active    int
	completed uint64
	started   bool
	closed    bool
}

// SchedulerStats is a point-in-time snapshot of pool state, exposed
// through Manager.SchedulerStats and the REST /status endpoint.
type SchedulerStats struct {
	// Threads is the fixed size of the worker pool.
	Threads int `json:"threads"`
	// Queued counts tasks waiting for a free worker.
	Queued int `json:"queued"`
	// Active counts tasks currently executing.
	Active int `json:"active"`
	// Completed counts tasks finished since the scheduler was created.
	Completed uint64 `json:"completed"`
}

// NewScheduler creates a pool of the given size. A non-positive size
// selects the default, runtime.GOMAXPROCS(0).
func NewScheduler(threads int) *Scheduler {
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	s := &Scheduler{threads: threads}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Threads returns the pool size.
func (s *Scheduler) Threads() int { return s.threads }

// Submit enqueues a task for execution by the pool. It never blocks: the
// queue is unbounded, so producers (ticker loops, TickAll fan-out) are
// throttled only by the pool draining work, not by submission. Submitting
// to a closed scheduler runs the task synchronously on the caller, so late
// ticks during shutdown still complete rather than vanishing.
func (s *Scheduler) Submit(f func()) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		f()
		return
	}
	if !s.started {
		s.started = true
		for i := 0; i < s.threads; i++ {
			go s.worker()
		}
	}
	s.queue = append(s.queue, f)
	s.mu.Unlock()
	s.cond.Signal()
}

// Do submits a task and waits for it to finish. Callers must not invoke Do
// from inside a pool task (see the type comment).
func (s *Scheduler) Do(f func()) {
	done := make(chan struct{})
	s.Submit(func() {
		defer close(done)
		f()
	})
	<-done
}

// Close stops the pool: queued tasks are drained, then workers exit.
// Subsequent Submit calls degrade to synchronous execution.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.cond.Broadcast()
}

// Stats returns a snapshot of the pool state.
func (s *Scheduler) Stats() SchedulerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SchedulerStats{
		Threads:   s.threads,
		Queued:    len(s.queue),
		Active:    s.active,
		Completed: s.completed,
	}
}

func (s *Scheduler) worker() {
	s.mu.Lock()
	for {
		for len(s.queue) == 0 && !s.closed {
			s.cond.Wait()
		}
		if len(s.queue) == 0 {
			// Closed and drained.
			s.mu.Unlock()
			return
		}
		f := s.queue[0]
		s.queue[0] = nil
		s.queue = s.queue[1:]
		if len(s.queue) == 0 {
			s.queue = nil // release the drained backing array
		}
		s.active++
		s.mu.Unlock()
		f()
		s.mu.Lock()
		s.active--
		s.completed++
	}
}
