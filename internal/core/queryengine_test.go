package core

import (
	"fmt"
	"testing"
	"time"

	"github.com/dcdb/wintermute/internal/cache"
	"github.com/dcdb/wintermute/internal/core/units"
	"github.com/dcdb/wintermute/internal/navigator"
	"github.com/dcdb/wintermute/internal/sensor"
	"github.com/dcdb/wintermute/internal/store"
)

// TestQueryAbsolutePartialCoverageStoreFallback pins the absolute-mode
// fallback contract: when the cache does not reach back to t0 (old
// readings evicted), the Storage Backend must serve the whole range, and
// without a store the cache serves the part it still holds.
func TestQueryAbsolutePartialCoverageStoreFallback(t *testing.T) {
	nav, caches, st, qe := testEnv(t)
	// testEnv caches hold 16..31, the store holds 0..31. Ask for 10..20:
	// partially covered by the cache, fully covered by the store.
	rs := qe.QueryAbsolute("/r0/n0/power", 10*sec, 20*sec, nil)
	if len(rs) != 11 || rs[0].Value != 10 || rs[10].Value != 20 {
		t.Fatalf("store-backed absolute = %+v", rs)
	}
	// Without a store the cache answers with the covered suffix only.
	qe2 := NewQueryEngine(nav, caches, nil)
	rs = qe2.QueryAbsolute("/r0/n0/power", 10*sec, 20*sec, nil)
	if len(rs) != 5 || rs[0].Value != 16 || rs[4].Value != 20 {
		t.Fatalf("cache-only absolute = %+v", rs)
	}
	_ = st
}

// TestAverageStoreFallback covers Average served from the store: sensors
// without a cache must still answer windowed averages when a Storage
// Backend is attached.
func TestAverageStoreFallback(t *testing.T) {
	nav, caches, st, _ := testEnv(t)
	st.Insert("/r9/n9/power", sensor.Reading{Value: 10, Time: 100 * sec})
	st.Insert("/r9/n9/power", sensor.Reading{Value: 20, Time: 101 * sec})
	st.Insert("/r9/n9/power", sensor.Reading{Value: 30, Time: 102 * sec})
	qe := NewQueryEngine(nav, caches, st)
	avg, ok := qe.Average("/r9/n9/power", 2*time.Second)
	if !ok || avg != 20 {
		t.Fatalf("store average = %v, %v", avg, ok)
	}
	// Unknown sensor: no answer from either source.
	if _, ok := qe.Average("/r9/n9/missing", time.Second); ok {
		t.Fatal("average of unknown sensor should not be ok")
	}
	// Without a store the sensor is invisible.
	qe2 := NewQueryEngine(nav, caches, nil)
	if _, ok := qe2.Average("/r9/n9/power", 2*time.Second); ok {
		t.Fatal("cache-only average should not be ok")
	}
}

// TestBoundSensorLateCache exercises the lazy re-resolution of bound
// handles: a handle created before the sensor's cache exists serves store
// fallbacks, then transparently switches to the cache once it appears —
// the lifecycle of every operator-output sensor, whose cache is created by
// the first sink push.
func TestBoundSensorLateCache(t *testing.T) {
	nav := navigator.New()
	caches := cache.NewSet()
	st := store.New(0)
	qe := NewQueryEngine(nav, caches, st)

	b := qe.Bind("/n0/derived")
	if _, ok := b.Latest(); ok {
		t.Fatal("latest before any data should not be ok")
	}
	// Data reaches the store first (e.g. a remote component's history).
	st.Insert("/n0/derived", sensor.Reading{Value: 1, Time: 1 * sec})
	if r, ok := b.Latest(); !ok || r.Value != 1 {
		t.Fatalf("store-served latest = %+v, %v", r, ok)
	}
	if rs := b.QueryRelative(time.Second, nil); len(rs) != 1 || rs[0].Value != 1 {
		t.Fatalf("store-served relative = %+v", rs)
	}
	// The cache appears later (first sink push) and takes over.
	c := caches.GetOrCreate("/n0/derived", 16, time.Second)
	c.Store(sensor.Reading{Value: 2, Time: 2 * sec})
	if r, ok := b.Latest(); !ok || r.Value != 2 {
		t.Fatalf("cache-served latest = %+v, %v", r, ok)
	}
	if rs := b.QueryAbsolute(2*sec, 2*sec, nil); len(rs) != 1 || rs[0].Value != 2 {
		t.Fatalf("cache-served absolute = %+v", rs)
	}
	if avg, ok := b.Average(0); !ok || avg != 2 {
		t.Fatalf("cache-served average = %v, %v", avg, ok)
	}
}

// TestBoundQueryMatchesUnbound checks the bound API against the unbound
// one over cache-hit and store-fallback sensors alike.
func TestBoundQueryMatchesUnbound(t *testing.T) {
	_, _, st, qe := testEnv(t)
	st.Insert("/r9/n9/power", sensor.Reading{Value: 5, Time: 50 * sec})
	for _, topic := range []sensor.Topic{"/r0/n0/power", "/r9/n9/power"} {
		b := qe.Bind(topic)
		br, bok := b.Latest()
		ur, uok := qe.Latest(topic)
		if br != ur || bok != uok {
			t.Fatalf("%s: latest bound=%+v,%v unbound=%+v,%v", topic, br, bok, ur, uok)
		}
		brs := b.QueryRelative(5*time.Second, nil)
		urs := qe.QueryRelative(topic, 5*time.Second, nil)
		if len(brs) != len(urs) {
			t.Fatalf("%s: relative bound=%d unbound=%d", topic, len(brs), len(urs))
		}
		brs = b.QueryAbsolute(0, 40*sec, nil)
		urs = qe.QueryAbsolute(topic, 0, 40*sec, nil)
		if len(brs) != len(urs) {
			t.Fatalf("%s: absolute bound=%d unbound=%d", topic, len(brs), len(urs))
		}
		bavg, bok := b.Average(5 * time.Second)
		uavg, uok := qe.Average(topic, 5*time.Second)
		if bavg != uavg || bok != uok {
			t.Fatalf("%s: average bound=%v,%v unbound=%v,%v", topic, bavg, bok, uavg, uok)
		}
	}
}

// TestBindUnitIdentity verifies that BindUnit memoises per unit — the
// whole point of the handle: one resolution for the unit's lifetime — and
// that the handles are index-parallel with the unit's topic slices.
func TestBindUnitIdentity(t *testing.T) {
	_, _, _, qe := testEnv(t)
	u := &units.Unit{
		Name:    "/r0/n0/",
		Inputs:  []sensor.Topic{"/r0/n0/power", "/r0/n1/power"},
		Outputs: []sensor.Topic{"/r0/n0/power-agg"},
	}
	bu := qe.BindUnit(u)
	if bu2 := qe.BindUnit(u); bu2 != bu {
		t.Fatal("BindUnit should return the memoised binding")
	}
	if len(bu.Inputs) != 2 || len(bu.Outputs) != 1 {
		t.Fatalf("binding shape = %d in, %d out", len(bu.Inputs), len(bu.Outputs))
	}
	for i, in := range u.Inputs {
		if bu.Inputs[i].Topic != in {
			t.Fatalf("input %d bound to %s, want %s", i, bu.Inputs[i].Topic, in)
		}
	}
	if h, ok := bu.InputNamed("power"); !ok || h != bu.Inputs[0] {
		t.Fatalf("InputNamed(power) = %v, %v", h, ok)
	}
	if _, ok := bu.InputNamed("missing"); ok {
		t.Fatal("InputNamed(missing) should not resolve")
	}
	// A different engine over the same unit must not inherit the binding.
	_, _, _, qe2 := testEnv(t)
	if qe2.BindUnit(u) == bu {
		t.Fatal("binding leaked across query engines")
	}
	// ...and the original engine still gets its own back.
	if qe.BindUnit(u) != bu {
		t.Fatal("original binding lost after cross-engine bind")
	}
}

// TestCacheSinkPushBatch checks that the batched sink path delivers the
// same data as per-reading pushes, including topic-run grouping, store
// persistence and series forwarding.
func TestCacheSinkPushBatch(t *testing.T) {
	nav := navigator.New()
	caches := cache.NewSet()
	st := store.New(0)
	var forwarded []Output
	sink := NewCacheSink(caches, nav, 16, time.Second)
	sink.Store = st
	sink.Forward = SinkFunc(func(topic sensor.Topic, r sensor.Reading) {
		forwarded = append(forwarded, Output{Topic: topic, Reading: r})
	})

	outs := []Output{
		{Topic: "/n0/a", Reading: sensor.Reading{Value: 1, Time: 1 * sec}},
		{Topic: "/n0/b", Reading: sensor.Reading{Value: 2, Time: 1 * sec}},
		// A run of three readings on one topic: one cache lock, one
		// store batch, in-order delivery.
		{Topic: "/n0/c", Reading: sensor.Reading{Value: 3, Time: 1 * sec}},
		{Topic: "/n0/c", Reading: sensor.Reading{Value: 4, Time: 2 * sec}},
		{Topic: "/n0/c", Reading: sensor.Reading{Value: 5, Time: 3 * sec}},
	}
	PushOutputs(sink, outs)

	for topic, want := range map[sensor.Topic]int{"/n0/a": 1, "/n0/b": 1, "/n0/c": 3} {
		c, ok := caches.Get(topic)
		if !ok || c.Len() != want {
			t.Fatalf("%s: cache len = %v (ok=%v), want %d", topic, c.Len(), ok, want)
		}
		if st.Count(topic) != want {
			t.Fatalf("%s: store count = %d, want %d", topic, st.Count(topic), want)
		}
		if !nav.HasSensor(topic) {
			t.Fatalf("%s: not registered in navigator", topic)
		}
	}
	if len(forwarded) != len(outs) {
		t.Fatalf("forwarded %d readings, want %d", len(forwarded), len(outs))
	}
	cc, _ := caches.Get("/n0/c")
	if rs := cc.ViewAbsolute(1*sec, 3*sec, nil); len(rs) != 3 || rs[2].Value != 5 {
		t.Fatalf("run contents = %+v", rs)
	}
}

// TestPushOutputsShimsPlainSinks verifies the default shim: sinks that
// only implement Push still receive every reading of a batch, in order.
func TestPushOutputsShimsPlainSinks(t *testing.T) {
	var got []Output
	sink := SinkFunc(func(topic sensor.Topic, r sensor.Reading) {
		got = append(got, Output{Topic: topic, Reading: r})
	})
	outs := make([]Output, 5)
	for i := range outs {
		outs[i] = Output{Topic: sensor.Topic(fmt.Sprintf("/n/%d", i)), Reading: sensor.Reading{Value: float64(i)}}
	}
	PushOutputs(sink, outs)
	if len(got) != 5 || got[4].Reading.Value != 4 {
		t.Fatalf("shimmed pushes = %+v", got)
	}
}
