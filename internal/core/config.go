package core

import (
	"fmt"
	"time"

	"github.com/dcdb/wintermute/internal/core/units"
	"github.com/dcdb/wintermute/internal/navigator"
	"github.com/dcdb/wintermute/internal/sensor"
)

// OperatorConfig is the configuration block shared by all operator
// plugins: identity, mode of operation, computation interval, unit
// management policy and the pattern-unit specification. Plugin-specific
// configurators embed it in their own config structs.
type OperatorConfig struct {
	// Name identifies the operator; it defaults to the plugin name.
	Name string `json:"name"`
	// Mode is "online" (default) or "ondemand".
	Mode string `json:"mode"`
	// IntervalMs is the computation interval in milliseconds for online
	// operators (default 1000).
	IntervalMs int `json:"intervalMs"`
	// Parallel selects parallel unit management: one independent model
	// per unit, computed concurrently (paper §IV-c).
	Parallel bool `json:"parallel"`
	// Inputs and Outputs are pattern expressions (paper §III-C).
	Inputs  []string `json:"inputs"`
	Outputs []string `json:"outputs"`
	// Unit optionally binds the operator to a single unit node instead of
	// instantiating the full domain of the output patterns.
	Unit string `json:"unit"`
}

// IntervalDuration returns the configured computation interval.
func (c OperatorConfig) IntervalDuration() time.Duration {
	if c.IntervalMs <= 0 {
		return time.Second
	}
	return time.Duration(c.IntervalMs) * time.Millisecond
}

// Build constructs the embedded operator base for a plugin: it parses the
// mode, parses the pattern-unit template and instantiates the units
// against the sensor tree.
func (c OperatorConfig) Build(plugin string, nav *navigator.Navigator) (*Base, error) {
	name := c.Name
	if name == "" {
		name = plugin
	}
	mode, err := ParseMode(c.Mode)
	if err != nil {
		return nil, fmt.Errorf("core: operator %q: %w", name, err)
	}
	tmpl, err := units.NewTemplate(c.Inputs, c.Outputs)
	if err != nil {
		return nil, fmt.Errorf("core: operator %q: %w", name, err)
	}
	var us []*units.Unit
	if c.Unit != "" {
		u, err := tmpl.ResolveFor(nav, sensor.Topic(c.Unit))
		if err != nil {
			return nil, fmt.Errorf("core: operator %q: %w", name, err)
		}
		us = []*units.Unit{u}
	} else {
		us, err = tmpl.Instantiate(nav)
		if err != nil {
			return nil, fmt.Errorf("core: operator %q: %w", name, err)
		}
	}
	b := NewBase(name, plugin, mode, c.IntervalDuration(), c.Parallel)
	b.SetUnits(us)
	return b, nil
}
