package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSchedulerDefaultThreads(t *testing.T) {
	s := NewScheduler(0)
	defer s.Close()
	if s.Threads() != runtime.GOMAXPROCS(0) {
		t.Fatalf("default threads = %d, want GOMAXPROCS %d", s.Threads(), runtime.GOMAXPROCS(0))
	}
	if s := NewScheduler(7); s.Threads() != 7 {
		t.Fatalf("threads = %d, want 7", s.Threads())
	}
}

func TestSchedulerRunsAllTasks(t *testing.T) {
	s := NewScheduler(4)
	defer s.Close()
	const n = 200
	var done atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		s.Submit(func() {
			defer wg.Done()
			done.Add(1)
		})
	}
	wg.Wait()
	if done.Load() != n {
		t.Fatalf("ran %d tasks, want %d", done.Load(), n)
	}
	if st := s.Stats(); st.Completed != n || st.Active != 0 || st.Queued != 0 {
		t.Fatalf("stats after drain = %+v", st)
	}
}

// TestSchedulerBoundsConcurrency verifies that no more tasks run at once
// than the pool has workers — the property that keeps analytics overhead
// bounded on a monitored node.
func TestSchedulerBoundsConcurrency(t *testing.T) {
	const threads = 2
	s := NewScheduler(threads)
	defer s.Close()
	var active, peak atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		s.Submit(func() {
			defer wg.Done()
			a := active.Add(1)
			for {
				p := peak.Load()
				if a <= p || peak.CompareAndSwap(p, a) {
					break
				}
			}
			time.Sleep(200 * time.Microsecond)
			active.Add(-1)
		})
	}
	wg.Wait()
	if p := peak.Load(); p > threads {
		t.Fatalf("peak concurrency %d exceeds pool size %d", p, threads)
	}
}

func TestSchedulerDo(t *testing.T) {
	s := NewScheduler(1)
	defer s.Close()
	ran := false
	s.Do(func() { ran = true })
	// Do returns only after the task completed, so plain access is safe.
	if !ran {
		t.Fatal("Do returned before the task ran")
	}
}

func TestSchedulerCloseDrainsAndDegrades(t *testing.T) {
	s := NewScheduler(1)
	var done atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		s.Submit(func() {
			defer wg.Done()
			done.Add(1)
		})
	}
	s.Close()
	wg.Wait()
	if done.Load() != 20 {
		t.Fatalf("queued tasks lost on Close: ran %d of 20", done.Load())
	}
	// After Close, Submit degrades to synchronous execution.
	ran := false
	s.Submit(func() { ran = true })
	if !ran {
		t.Fatal("Submit after Close should run the task synchronously")
	}
	s.Close() // idempotent
}

func TestSchedulerStatsWhileBusy(t *testing.T) {
	s := NewScheduler(1)
	defer s.Close()
	release := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	s.Submit(func() {
		defer wg.Done()
		close(started)
		<-release
	})
	<-started
	s.Submit(func() { defer wg.Done() })
	st := s.Stats()
	if st.Active != 1 {
		t.Errorf("active = %d, want 1", st.Active)
	}
	if st.Queued != 1 {
		t.Errorf("queued = %d, want 1", st.Queued)
	}
	close(release)
	wg.Wait()
}
