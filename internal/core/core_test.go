package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/dcdb/wintermute/internal/cache"
	"github.com/dcdb/wintermute/internal/core/units"
	"github.com/dcdb/wintermute/internal/navigator"
	"github.com/dcdb/wintermute/internal/sensor"
	"github.com/dcdb/wintermute/internal/store"
)

const sec = int64(time.Second)

// testEnv builds a small system: 2 racks x 2 nodes with power sensors,
// caches pre-filled with a ramp, and a store holding older history.
func testEnv(t testing.TB) (*navigator.Navigator, *cache.Set, *store.Store, *QueryEngine) {
	t.Helper()
	nav := navigator.New()
	caches := cache.NewSet()
	st := store.New(0)
	for r := 0; r < 2; r++ {
		for n := 0; n < 2; n++ {
			topic := sensor.Topic(fmt.Sprintf("/r%d/n%d/power", r, n))
			if err := nav.AddSensor(topic); err != nil {
				t.Fatal(err)
			}
			c := caches.GetOrCreate(topic, 16, time.Second)
			// Store holds 0..31; cache holds the last 16 (16..31).
			for i := 0; i < 32; i++ {
				rd := sensor.Reading{Value: float64(i), Time: int64(i) * sec}
				st.Insert(topic, rd)
				if i >= 16 {
					c.Store(rd)
				}
			}
		}
	}
	qe := NewQueryEngine(nav, caches, st)
	return nav, caches, st, qe
}

func TestQueryRelativeFromCache(t *testing.T) {
	_, _, _, qe := testEnv(t)
	rs := qe.QueryRelative("/r0/n0/power", 3*time.Second, nil)
	if len(rs) != 4 || rs[0].Value != 28 || rs[3].Value != 31 {
		t.Fatalf("relative = %+v", rs)
	}
}

func TestQueryRelativeStoreFallback(t *testing.T) {
	nav, caches, st, _ := testEnv(t)
	// A sensor that exists only in the store.
	st.Insert("/r9/n9/power", sensor.Reading{Value: 1, Time: 10 * sec})
	st.Insert("/r9/n9/power", sensor.Reading{Value: 2, Time: 11 * sec})
	qe := NewQueryEngine(nav, caches, st)
	rs := qe.QueryRelative("/r9/n9/power", time.Second, nil)
	if len(rs) != 2 || rs[1].Value != 2 {
		t.Fatalf("fallback = %+v", rs)
	}
	// Without a store, nothing is returned.
	qe2 := NewQueryEngine(nav, caches, nil)
	if rs := qe2.QueryRelative("/r9/n9/power", time.Second, nil); len(rs) != 0 {
		t.Fatalf("cache-only should be empty, got %+v", rs)
	}
}

func TestQueryAbsoluteCacheVsStore(t *testing.T) {
	_, _, _, qe := testEnv(t)
	// Window fully inside the cache: served by cache.
	rs := qe.QueryAbsolute("/r0/n0/power", 20*sec, 22*sec, nil)
	if len(rs) != 3 || rs[0].Value != 20 {
		t.Fatalf("cached absolute = %+v", rs)
	}
	// Window starting before cache coverage: served by store.
	rs = qe.QueryAbsolute("/r0/n0/power", 2*sec, 5*sec, nil)
	if len(rs) != 4 || rs[0].Value != 2 {
		t.Fatalf("store absolute = %+v", rs)
	}
}

func TestQueryAbsoluteCacheOnly(t *testing.T) {
	nav, caches, _, _ := testEnv(t)
	qe := NewQueryEngine(nav, caches, nil)
	// Without a store, the partial cache view is the best obtainable.
	rs := qe.QueryAbsolute("/r0/n0/power", 0, 20*sec, nil)
	if len(rs) != 5 || rs[0].Value != 16 {
		t.Fatalf("partial cache absolute = %+v", rs)
	}
}

func TestLatestAndAverage(t *testing.T) {
	_, _, st, qe := testEnv(t)
	r, ok := qe.Latest("/r0/n0/power")
	if !ok || r.Value != 31 {
		t.Fatalf("Latest = %+v, %v", r, ok)
	}
	avg, ok := qe.Average("/r0/n0/power", 3*time.Second)
	if !ok || avg != (28.0+29+30+31)/4 {
		t.Fatalf("Average = %v, %v", avg, ok)
	}
	// Store-only sensor.
	st.Insert("/only/store", sensor.Reading{Value: 5, Time: sec})
	if r, ok := qe.Latest("/only/store"); !ok || r.Value != 5 {
		t.Fatalf("store Latest = %+v, %v", r, ok)
	}
	if avg, ok := qe.Average("/only/store", time.Second); !ok || avg != 5 {
		t.Fatalf("store Average = %v, %v", avg, ok)
	}
	if _, ok := qe.Latest("/none"); ok {
		t.Error("missing sensor should have no latest")
	}
	if _, ok := qe.Average("/none", time.Second); ok {
		t.Error("missing sensor should have no average")
	}
}

// avgOperator computes the mean of all unit inputs over a 4s window; it
// writes one reading to each output.
type avgOperator struct {
	*Base
	computeCount int32
	mu           sync.Mutex
	seen         []sensor.Topic
}

func (a *avgOperator) Compute(qe *QueryEngine, u *units.Unit, now time.Time) ([]Output, error) {
	a.mu.Lock()
	a.computeCount++
	a.seen = append(a.seen, u.Name)
	a.mu.Unlock()
	var sum float64
	var n int
	for _, in := range u.Inputs {
		for _, r := range qe.QueryRelative(in, 4*time.Second, nil) {
			sum += r.Value
			n++
		}
	}
	if n == 0 {
		return nil, errors.New("no data")
	}
	outs := make([]Output, 0, len(u.Outputs))
	for _, o := range u.Outputs {
		outs = append(outs, Output{Topic: o, Reading: sensor.At(sum/float64(n), now)})
	}
	return outs, nil
}

func newAvgOperator(t testing.TB, nav *navigator.Navigator, parallel bool) *avgOperator {
	t.Helper()
	cfg := OperatorConfig{
		Name:     "avg1",
		Inputs:   []string{"power"},
		Outputs:  []string{"<bottomup>power-avg"},
		Parallel: parallel,
	}
	base, err := cfg.Build("testavg", nav)
	if err != nil {
		t.Fatal(err)
	}
	return &avgOperator{Base: base}
}

func TestTickSequential(t *testing.T) {
	nav, caches, _, qe := testEnv(t)
	op := newAvgOperator(t, nav, false)
	if len(op.Units()) != 4 {
		t.Fatalf("units = %d, want 4", len(op.Units()))
	}
	sink := NewCacheSink(caches, nav, 16, time.Second)
	now := time.Unix(100, 0)
	if err := Tick(op, qe, sink, now); err != nil {
		t.Fatal(err)
	}
	// Output sensors exist in cache and navigator, enabling pipelines.
	out, ok := caches.Get("/r0/n0/power-avg")
	if !ok {
		t.Fatal("output cache missing")
	}
	r, _ := out.Latest()
	want := (27.0 + 28 + 29 + 30 + 31) / 5
	if r.Value != want {
		t.Fatalf("avg output = %v, want %v", r.Value, want)
	}
	if !nav.HasSensor("/r0/n0/power-avg") {
		t.Error("output sensor not registered in navigator")
	}
}

func TestTickParallel(t *testing.T) {
	nav, caches, _, qe := testEnv(t)
	op := newAvgOperator(t, nav, true)
	sink := NewCacheSink(caches, nav, 16, time.Second)
	if err := Tick(op, qe, sink, time.Unix(100, 0)); err != nil {
		t.Fatal(err)
	}
	if op.computeCount != 4 {
		t.Fatalf("computeCount = %d", op.computeCount)
	}
	for r := 0; r < 2; r++ {
		for n := 0; n < 2; n++ {
			topic := sensor.Topic(fmt.Sprintf("/r%d/n%d/power-avg", r, n))
			if _, ok := caches.Get(topic); !ok {
				t.Errorf("missing output %q", topic)
			}
		}
	}
}

func TestTickPropagatesErrors(t *testing.T) {
	nav, caches, _, qe := testEnv(t)
	// Operator bound to a sensor with no readings: avgOperator errors.
	if err := nav.AddSensor("/r0/n0/empty"); err != nil {
		t.Fatal(err)
	}
	cfg := OperatorConfig{
		Name:    "avg-err",
		Inputs:  []string{"empty"},
		Outputs: []string{"empty-avg"},
		Unit:    "/r0/n0/",
	}
	base, err := cfg.Build("testavg", nav)
	if err != nil {
		t.Fatal(err)
	}
	op := &avgOperator{Base: base}
	sink := NewCacheSink(caches, nav, 16, time.Second)
	if err := Tick(op, qe, sink, time.Unix(1, 0)); err == nil {
		t.Error("expected error from empty input")
	}
}

// pipelineStage2 consumes the avg operator's output.
func TestPipelineAcrossOperators(t *testing.T) {
	nav, caches, _, qe := testEnv(t)
	op1 := newAvgOperator(t, nav, false)
	sink := NewCacheSink(caches, nav, 16, time.Second)
	if err := Tick(op1, qe, sink, time.Unix(100, 0)); err != nil {
		t.Fatal(err)
	}
	// Second stage binds to the first stage's output sensors, which only
	// exist because the sink registered them.
	cfg := OperatorConfig{
		Name:    "stage2",
		Inputs:  []string{"power-avg"},
		Outputs: []string{"<bottomup>power-avg2"},
	}
	base, err := cfg.Build("testavg", nav)
	if err != nil {
		t.Fatal(err)
	}
	op2 := &avgOperator{Base: base}
	if err := Tick(op2, qe, sink, time.Unix(101, 0)); err != nil {
		t.Fatal(err)
	}
	if _, ok := caches.Get("/r1/n1/power-avg2"); !ok {
		t.Fatal("pipeline output missing")
	}
}

func TestManagerLifecycle(t *testing.T) {
	nav, caches, _, qe := testEnv(t)
	RegisterPlugin("testavg-lifecycle", func(cfg json.RawMessage, qe *QueryEngine, env Env) ([]Operator, error) {
		var oc OperatorConfig
		if err := json.Unmarshal(cfg, &oc); err != nil {
			return nil, err
		}
		base, err := oc.Build("testavg-lifecycle", qe.Navigator())
		if err != nil {
			return nil, err
		}
		return []Operator{&avgOperator{Base: base}}, nil
	})
	sink := NewCacheSink(caches, nav, 16, time.Second)
	m := NewManager(qe, sink, Env{})
	raw, _ := json.Marshal(OperatorConfig{
		Name: "avgA", Inputs: []string{"power"}, Outputs: []string{"<bottomup>avgA"},
		IntervalMs: 10,
	})
	if err := m.LoadPlugin("testavg-lifecycle", raw); err != nil {
		t.Fatal(err)
	}
	if err := m.LoadPlugin("nope", nil); err == nil {
		t.Error("unknown plugin should fail")
	}
	if _, ok := m.Operator("avgA"); !ok {
		t.Fatal("operator not registered")
	}
	// Manual tick drive.
	if err := m.TickAll(time.Unix(50, 0)); err != nil {
		t.Fatal(err)
	}
	st := m.Status()
	if len(st) != 1 || st[0].Ticks != 1 || st[0].Units != 4 {
		t.Fatalf("status = %+v", st)
	}
	// Real ticker loop.
	m.Start()
	time.Sleep(50 * time.Millisecond)
	m.Stop()
	st = m.Status()
	if st[0].Ticks < 2 {
		t.Errorf("expected several ticks, got %d", st[0].Ticks)
	}
	if st[0].Running {
		t.Error("operator should be stopped")
	}
	if n := m.UnloadPlugin("testavg-lifecycle"); n != 1 {
		t.Errorf("UnloadPlugin removed %d", n)
	}
	if len(m.Operators()) != 0 {
		t.Error("operators should be gone")
	}
}

func TestManagerDuplicateOperator(t *testing.T) {
	nav, caches, _, qe := testEnv(t)
	RegisterPlugin("testavg-dup", func(cfg json.RawMessage, qe *QueryEngine, env Env) ([]Operator, error) {
		var oc OperatorConfig
		if err := json.Unmarshal(cfg, &oc); err != nil {
			return nil, err
		}
		base, err := oc.Build("testavg-dup", qe.Navigator())
		if err != nil {
			return nil, err
		}
		return []Operator{&avgOperator{Base: base}}, nil
	})
	m := NewManager(qe, NewCacheSink(caches, nav, 16, time.Second), Env{})
	raw, _ := json.Marshal(OperatorConfig{
		Name: "dup", Inputs: []string{"power"}, Outputs: []string{"<bottomup>dupout"},
	})
	if err := m.LoadPlugin("testavg-dup", raw); err != nil {
		t.Fatal(err)
	}
	if err := m.LoadPlugin("testavg-dup", raw); err == nil {
		t.Error("duplicate operator name should fail")
	}
}

func TestOnDemand(t *testing.T) {
	_, _, _, qe := testEnv(t)
	RegisterPlugin("testavg-ondemand", func(cfg json.RawMessage, qe *QueryEngine, env Env) ([]Operator, error) {
		var oc OperatorConfig
		if err := json.Unmarshal(cfg, &oc); err != nil {
			return nil, err
		}
		base, err := oc.Build("testavg-ondemand", qe.Navigator())
		if err != nil {
			return nil, err
		}
		return []Operator{&avgOperator{Base: base}}, nil
	})
	pushes := 0
	sink := SinkFunc(func(sensor.Topic, sensor.Reading) { pushes++ })
	m := NewManager(qe, sink, Env{})
	raw, _ := json.Marshal(OperatorConfig{
		Name: "od", Mode: "ondemand",
		Inputs: []string{"power"}, Outputs: []string{"<bottomup>od-out"},
	})
	if err := m.LoadPlugin("testavg-ondemand", raw); err != nil {
		t.Fatal(err)
	}
	// Specific unit.
	outs, err := m.OnDemand("od", "/r0/n1/", time.Unix(42, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 || outs[0].Topic != "/r0/n1/od-out" {
		t.Fatalf("outs = %+v", outs)
	}
	// All units.
	outs, err = m.OnDemand("od", "", time.Unix(42, 0))
	if err != nil || len(outs) != 4 {
		t.Fatalf("all units outs = %d, err %v", len(outs), err)
	}
	// OnDemand output must not reach the sink.
	if pushes != 0 {
		t.Errorf("on-demand output leaked to sink: %d pushes", pushes)
	}
	// Ticker must not run OnDemand operators.
	if err := m.TickAll(time.Unix(43, 0)); err != nil {
		t.Fatal(err)
	}
	if st := m.Status(); st[0].Ticks != 0 {
		t.Error("ondemand operator should not tick")
	}
	// Unknown operator/unit errors.
	if _, err := m.OnDemand("nope", "", time.Now()); err == nil {
		t.Error("unknown operator should fail")
	}
	if _, err := m.OnDemand("od", "/bogus/", time.Now()); err == nil {
		t.Error("unknown unit should fail")
	}
	// StartOperator on ondemand is a no-op.
	if err := m.StartOperator("od"); err != nil {
		t.Fatal(err)
	}
	if st := m.Status(); st[0].Running {
		t.Error("ondemand operator must not run a loop")
	}
}

func TestModeParsing(t *testing.T) {
	if m, err := ParseMode(""); err != nil || m != Online {
		t.Error("empty mode should default to online")
	}
	if m, err := ParseMode("ondemand"); err != nil || m != OnDemand {
		t.Error("ondemand parse failed")
	}
	if _, err := ParseMode("sometimes"); err == nil {
		t.Error("bad mode should fail")
	}
	if Online.String() != "online" || OnDemand.String() != "ondemand" {
		t.Error("mode strings wrong")
	}
}

func TestOperatorConfigDefaults(t *testing.T) {
	nav, _, _, _ := testEnv(t)
	cfg := OperatorConfig{Inputs: []string{"power"}, Outputs: []string{"<bottomup>x"}}
	base, err := cfg.Build("plug", nav)
	if err != nil {
		t.Fatal(err)
	}
	if base.Name() != "plug" {
		t.Errorf("default name = %q", base.Name())
	}
	if base.Interval() != time.Second {
		t.Errorf("default interval = %v", base.Interval())
	}
	if base.Mode() != Online {
		t.Error("default mode should be online")
	}
	if cfg.IntervalDuration() != time.Second {
		t.Error("IntervalDuration default wrong")
	}
}

func TestOperatorConfigErrors(t *testing.T) {
	nav, _, _, _ := testEnv(t)
	bad := []OperatorConfig{
		{Mode: "bogus", Inputs: []string{"power"}, Outputs: []string{"<bottomup>x"}},
		{Inputs: []string{"<oops"}, Outputs: []string{"<bottomup>x"}},
		{Inputs: []string{"power"}, Outputs: []string{}},
		{Inputs: []string{"power"}, Outputs: []string{"<bottomup>x"}, Unit: "/missing/"},
	}
	for i, cfg := range bad {
		if _, err := cfg.Build("p", nav); err == nil {
			t.Errorf("config %d should fail", i)
		}
	}
}

func TestFindUnit(t *testing.T) {
	nav, _, _, _ := testEnv(t)
	op := newAvgOperator(t, nav, false)
	if _, ok := op.FindUnit("/r0/n0/"); !ok {
		t.Error("FindUnit should locate unit")
	}
	if _, ok := op.FindUnit("/r0/n0"); !ok {
		t.Error("FindUnit should normalise to node form")
	}
	if _, ok := op.FindUnit("/zzz/"); ok {
		t.Error("unknown unit found")
	}
}

func TestRegisteredPluginsSorted(t *testing.T) {
	names := RegisteredPlugins()
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Fatal("plugin names not sorted")
		}
	}
}

func TestDuplicatePluginPanics(t *testing.T) {
	RegisterPlugin("dup-plugin-x", func(json.RawMessage, *QueryEngine, Env) ([]Operator, error) { return nil, nil })
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration should panic")
		}
	}()
	RegisterPlugin("dup-plugin-x", func(json.RawMessage, *QueryEngine, Env) ([]Operator, error) { return nil, nil })
}
