// Package core implements the Wintermute framework itself (paper §IV-V):
// the Query Engine exposing the sensor space to operator plugins, the
// operator abstraction with its online/on-demand modes and
// sequential/parallel unit management, and the Operator Manager that loads
// plugins, instantiates operators from configuration and drives their life
// cycle.
//
// The framework is deliberately agnostic of its host: a Pusher embeds it
// with cache-only visibility of locally-sampled sensors, while a Collect
// Agent embeds it with the entire system's sensor space and a Storage
// Backend fallback. Plugins run unmodified in either location.
package core

import (
	"time"

	"github.com/dcdb/wintermute/internal/cache"
	"github.com/dcdb/wintermute/internal/navigator"
	"github.com/dcdb/wintermute/internal/sensor"
	"github.com/dcdb/wintermute/internal/store"
)

// CacheProvider supplies per-sensor caches; *cache.Set implements it.
type CacheProvider interface {
	Get(topic sensor.Topic) (*cache.Cache, bool)
}

// QueryEngine exposes the space of available sensors to operator plugins
// (paper §V-B). It resolves queries cache-first — local sensor caches are
// much faster than the Storage Backend — and falls back to the store when
// the cache is absent or does not cover the requested range. Relative
// queries compute their cache view in O(1); absolute queries use binary
// search in O(log N).
//
// The fallback is any store.Backend: the in-memory store, the embedded
// tsdb engine, or nothing at all (Pushers run cache-only with a nil
// store). Only the read half of the interface is exercised here.
type QueryEngine struct {
	nav    *navigator.Navigator
	caches CacheProvider
	store  store.Backend
}

// NewQueryEngine builds a query engine over the given sensor tree and
// caches; store may be nil for cache-only hosts (Pushers).
func NewQueryEngine(nav *navigator.Navigator, caches CacheProvider, store store.Backend) *QueryEngine {
	return &QueryEngine{nav: nav, caches: caches, store: store}
}

// Store returns the engine's fallback Storage Backend, nil when the host
// runs cache-only.
func (qe *QueryEngine) Store() store.Backend { return qe.store }

// Navigator returns the sensor-tree navigator, through which plugins
// discover which sensors are available and where they stand in the
// hierarchy.
func (qe *QueryEngine) Navigator() *navigator.Navigator { return qe.nav }

// TopicsPrefix resolves a '#'-style fan-out: the sorted sensors at or
// below prefix (empty or root: all). Hosts with a Storage Backend
// answer from its incrementally-maintained topic index in O(matches) —
// and therefore reflect the topics actually holding data, so retention
// leaves no ghost sensors in wildcard expansion. Cache-only hosts
// (Pushers) fall back to walking the navigator tree.
func (qe *QueryEngine) TopicsPrefix(prefix sensor.Topic) []sensor.Topic {
	if qe.store != nil {
		return store.TopicsPrefix(qe.store, prefix)
	}
	if prefix == "" || prefix == sensor.Root {
		return qe.nav.AllSensors()
	}
	return qe.nav.SensorsBelow(prefix)
}

// lookup returns the cache for topic, or nil when absent.
func (qe *QueryEngine) lookup(topic sensor.Topic) *cache.Cache {
	if c, ok := qe.caches.Get(topic); ok {
		return c
	}
	return nil
}

// Latest returns the most recent reading of topic, cache-first.
func (qe *QueryEngine) Latest(topic sensor.Topic) (sensor.Reading, bool) {
	return qe.latestIn(qe.lookup(topic), topic)
}

// latestIn answers a latest-reading query against a resolved cache (nil
// when the sensor has none), falling back to the store. It is shared by
// the unbound topic path and the BoundSensor path.
func (qe *QueryEngine) latestIn(c *cache.Cache, topic sensor.Topic) (sensor.Reading, bool) {
	if c != nil {
		if r, ok := c.Latest(); ok {
			return r, true
		}
	}
	if qe.store != nil {
		return qe.store.Latest(topic)
	}
	return sensor.Reading{}, false
}

// QueryRelative appends to dst the readings of topic in the window
// [latest-lookback, latest] — relative mode, O(1) view computation on the
// cache. When the sensor has no cache the store answers instead.
func (qe *QueryEngine) QueryRelative(topic sensor.Topic, lookback time.Duration, dst []sensor.Reading) []sensor.Reading {
	return qe.relativeIn(qe.lookup(topic), topic, lookback, dst)
}

// relativeIn answers a relative query against a resolved cache, falling
// back to the store when the cache is absent or empty.
func (qe *QueryEngine) relativeIn(c *cache.Cache, topic sensor.Topic, lookback time.Duration, dst []sensor.Reading) []sensor.Reading {
	if c != nil {
		// A non-empty cache always yields at least one reading, so growth
		// of dst doubles as the hit test and saves a second cache lock.
		if out := c.ViewRelative(lookback, dst); len(out) > len(dst) {
			return out
		}
	}
	if qe.store != nil {
		if latest, ok := qe.store.Latest(topic); ok {
			return qe.store.Range(topic, latest.Time-int64(lookback), latest.Time, dst)
		}
	}
	return dst
}

// QueryAbsolute appends to dst the readings of topic with timestamps in
// [t0, t1] — absolute mode, O(log N) binary search on the cache. When the
// cache does not cover the start of the range (old readings evicted), the
// Storage Backend serves the query instead, if available.
func (qe *QueryEngine) QueryAbsolute(topic sensor.Topic, t0, t1 int64, dst []sensor.Reading) []sensor.Reading {
	return qe.absoluteIn(qe.lookup(topic), topic, t0, t1, dst)
}

// absoluteIn answers an absolute query against a resolved cache, falling
// back to the store when the cache is absent, empty, or does not cover
// the start of the range.
func (qe *QueryEngine) absoluteIn(c *cache.Cache, topic sensor.Topic, t0, t1 int64, dst []sensor.Reading) []sensor.Reading {
	if c != nil && c.Len() > 0 {
		oldest, _ := c.Oldest()
		if oldest.Time <= t0 || qe.store == nil {
			return c.ViewAbsolute(t0, t1, dst)
		}
	}
	if qe.store != nil {
		return qe.store.Range(topic, t0, t1, dst)
	}
	return dst
}

// Average returns the mean of the readings of topic over the relative
// window [latest-lookback, latest], serving the REST /average endpoint.
func (qe *QueryEngine) Average(topic sensor.Topic, lookback time.Duration) (float64, bool) {
	return qe.averageIn(qe.lookup(topic), topic, lookback)
}

// averageIn answers a windowed-average query against a resolved cache,
// falling back to the store. It is the aggregation path specialised to
// AggAvg: the store fallback streams through the backend's aggregation
// engine instead of materializing the raw window.
func (qe *QueryEngine) averageIn(c *cache.Cache, topic sensor.Topic, lookback time.Duration) (float64, bool) {
	return qe.aggregateRelativeIn(c, topic, lookback).Value(store.AggAvg)
}
