package core

import (
	"time"

	"github.com/dcdb/wintermute/internal/cache"
	"github.com/dcdb/wintermute/internal/navigator"
	"github.com/dcdb/wintermute/internal/sensor"
)

// StoreWriter receives readings for durable storage; the Storage Backend
// implements it.
type StoreWriter interface {
	Insert(topic sensor.Topic, r sensor.Reading)
}

// CacheSink routes readings into a cache set — creating caches on demand —
// and optionally registers new output sensors in the navigator and
// persists readings to a store. It is the building block of the sinks
// used by Pushers (cache + MQTT) and Collect Agents (cache + store):
// because operator output lands in the same caches as monitoring data,
// operators can consume the output of other operators, forming the
// analysis pipelines of paper §IV-d.
type CacheSink struct {
	Caches   *cache.Set
	Nav      *navigator.Navigator // optional: register output topics
	Store    StoreWriter          // optional: persist readings
	Capacity int                  // cache capacity for new sensors
	Interval time.Duration        // nominal interval for new sensors
	Forward  Sink                 // optional: e.g. an MQTT publisher
}

// NewCacheSink builds a sink with the given defaults for newly-created
// caches.
func NewCacheSink(caches *cache.Set, nav *navigator.Navigator, capacity int, interval time.Duration) *CacheSink {
	if capacity <= 0 {
		capacity = 256
	}
	if interval <= 0 {
		interval = time.Second
	}
	return &CacheSink{Caches: caches, Nav: nav, Capacity: capacity, Interval: interval}
}

// Push implements Sink.
func (s *CacheSink) Push(topic sensor.Topic, r sensor.Reading) {
	if s.Nav != nil {
		if _, known := s.Caches.Get(topic); !known {
			// AddSensor is idempotent; registering once per new topic keeps
			// the sensor tree in sync with the data flowing through.
			_ = s.Nav.AddSensor(topic)
		}
	}
	s.Caches.GetOrCreate(topic, s.Capacity, s.Interval).Store(r)
	if s.Store != nil {
		s.Store.Insert(topic, r)
	}
	if s.Forward != nil {
		s.Forward.Push(topic, r)
	}
}
