package core

import (
	"sync"
	"time"

	"github.com/dcdb/wintermute/internal/cache"
	"github.com/dcdb/wintermute/internal/navigator"
	"github.com/dcdb/wintermute/internal/resultcache"
	"github.com/dcdb/wintermute/internal/sensor"
	"github.com/dcdb/wintermute/internal/store"
)

// BatchSink is optionally implemented by sinks that can accept a whole
// unit's outputs in one call, taking their internal locks once per batch
// instead of once per reading. Sinks that only implement Push keep
// working unchanged: PushOutputs shims the batch onto single pushes.
type BatchSink interface {
	Sink
	PushBatch(outs []Output)
}

// SeriesSink is optionally implemented by sinks that can accept several
// readings of one topic at once (one MQTT message, one store insert, one
// cache lock). The transport-ingest path of the Collect Agent and the
// MQTT forwarder of the Pusher use it. The rs slice may come from a
// recycled buffer: implementations must consume it before returning and
// must not retain it.
type SeriesSink interface {
	Sink
	PushSeries(topic sensor.Topic, rs []sensor.Reading)
}

// PushOutputs delivers outs through sink, using the batched entry point
// when the sink provides one. It is the default shim that lets the tick
// path push batches while old single-push Sink implementations keep
// working.
func PushOutputs(sink Sink, outs []Output) {
	if len(outs) == 0 {
		return
	}
	if bs, ok := sink.(BatchSink); ok {
		bs.PushBatch(outs)
		return
	}
	for _, o := range outs {
		sink.Push(o.Topic, o.Reading)
	}
}

// readingScratch recycles the contiguous reading slices PushBatch needs
// when regrouping outputs into per-topic series.
var readingScratch = sync.Pool{New: func() any {
	s := make([]sensor.Reading, 0, 64)
	return &s
}}

// CacheSink routes readings into a cache set — creating caches on demand —
// and optionally registers new output sensors in the navigator and
// persists readings to a store. It is the building block of the sinks
// used by Pushers (cache + MQTT) and Collect Agents (cache + store):
// because operator output lands in the same caches as monitoring data,
// operators can consume the output of other operators, forming the
// analysis pipelines of paper §IV-d.
//
// CacheSink implements BatchSink and SeriesSink: batches take the cache,
// store and transport locks once per topic run instead of once per
// reading.
type CacheSink struct {
	Caches   *cache.Set
	Nav      *navigator.Navigator // optional: register output topics
	Store    store.Backend        // optional: persist readings
	Capacity int                  // cache capacity for new sensors
	Interval time.Duration        // nominal interval for new sensors
	Forward  Sink                 // optional: e.g. an MQTT publisher

	// Results, when set, receives the write-through invalidation feed of
	// the serving tier's query result cache: every delivered batch
	// publishes its topic's new high-water mark AFTER the readings are
	// visible in the store, so a reader observing the version bump also
	// observes the data (a nil cache accepts and ignores the calls).
	Results *resultcache.Cache
}

// NewCacheSink builds a sink with the given defaults for newly-created
// caches.
func NewCacheSink(caches *cache.Set, nav *navigator.Navigator, capacity int, interval time.Duration) *CacheSink {
	if capacity <= 0 {
		capacity = 256
	}
	if interval <= 0 {
		interval = time.Second
	}
	return &CacheSink{Caches: caches, Nav: nav, Capacity: capacity, Interval: interval}
}

// Push implements Sink.
func (s *CacheSink) Push(topic sensor.Topic, r sensor.Reading) {
	c := s.cacheFor(topic)
	c.Store(r)
	if s.Store != nil {
		s.Store.Insert(topic, r)
	}
	s.Results.Note(topic, r.Time, r.Time)
	if s.Forward != nil {
		s.Forward.Push(topic, r)
	}
}

// PushSeries implements SeriesSink: all readings of one topic land in the
// cache under one lock, reach the store in one insert batch, and are
// forwarded in one message when the forwarder supports series.
func (s *CacheSink) PushSeries(topic sensor.Topic, rs []sensor.Reading) {
	if len(rs) == 0 {
		return
	}
	c := s.cacheFor(topic)
	c.StoreBatch(rs)
	if s.Store != nil {
		s.Store.InsertBatch(topic, rs)
	}
	if s.Results != nil {
		minT, maxT := rs[0].Time, rs[0].Time
		for _, r := range rs[1:] {
			if r.Time < minT {
				minT = r.Time
			}
			if r.Time > maxT {
				maxT = r.Time
			}
		}
		s.Results.Note(topic, minT, maxT)
	}
	if s.Forward != nil {
		forwardSeries(s.Forward, topic, rs)
	}
}

// PushBatch implements BatchSink. Outputs are delivered in order; runs of
// consecutive outputs sharing a topic collapse into one series push.
func (s *CacheSink) PushBatch(outs []Output) {
	for i := 0; i < len(outs); {
		j := i + 1
		for j < len(outs) && outs[j].Topic == outs[i].Topic {
			j++
		}
		if j-i == 1 {
			s.Push(outs[i].Topic, outs[i].Reading)
			i = j
			continue
		}
		bufp := readingScratch.Get().(*[]sensor.Reading)
		rs := (*bufp)[:0]
		for _, o := range outs[i:j] {
			rs = append(rs, o.Reading)
		}
		s.PushSeries(outs[i].Topic, rs)
		*bufp = rs[:0]
		readingScratch.Put(bufp)
		i = j
	}
}

// cacheFor returns the topic's cache, creating it — and registering the
// sensor in the navigator — on first sight.
func (s *CacheSink) cacheFor(topic sensor.Topic) *cache.Cache {
	if s.Nav != nil {
		if _, known := s.Caches.Get(topic); !known {
			// AddSensor is idempotent; registering once per new topic keeps
			// the sensor tree in sync with the data flowing through.
			_ = s.Nav.AddSensor(topic)
		}
	}
	return s.Caches.GetOrCreate(topic, s.Capacity, s.Interval)
}

// forwardSeries hands a topic run to a forwarding sink, preferring its
// series entry point.
func forwardSeries(fw Sink, topic sensor.Topic, rs []sensor.Reading) {
	if ss, ok := fw.(SeriesSink); ok {
		ss.PushSeries(topic, rs)
		return
	}
	for _, r := range rs {
		fw.Push(topic, r)
	}
}
