package units

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"github.com/dcdb/wintermute/internal/navigator"
	"github.com/dcdb/wintermute/internal/sensor"
)

// paperTemplate is the exact pattern unit of the paper's §III-C example.
func paperTemplate(t testing.TB) *Template {
	t.Helper()
	tpl, err := NewTemplate(
		[]string{
			"<topdown+1>power",
			"<bottomup, filter cpu>cpu-cycles",
			"<bottomup, filter cpu>cache-misses",
		},
		[]string{"<bottomup-1>healthy"},
	)
	if err != nil {
		t.Fatal(err)
	}
	return tpl
}

// TestPaperExampleResolution reproduces the resolution walked through in
// paper §III-C: binding the pattern unit to /r03/c02/s02/ must yield the
// exact sensors of Figure 2.
func TestPaperExampleResolution(t *testing.T) {
	nv := figure2Tree(t)
	tpl := paperTemplate(t)
	u, err := tpl.ResolveFor(nv, "/r03/c02/s02/")
	if err != nil {
		t.Fatal(err)
	}
	wantIn := []sensor.Topic{
		"/r03/c02/power",
		"/r03/c02/s02/cpu0/cpu-cycles",
		"/r03/c02/s02/cpu1/cpu-cycles",
		"/r03/c02/s02/cpu0/cache-misses",
		"/r03/c02/s02/cpu1/cache-misses",
	}
	if len(u.Inputs) != len(wantIn) {
		t.Fatalf("inputs = %v", u.Inputs)
	}
	got := map[sensor.Topic]bool{}
	for _, i := range u.Inputs {
		got[i] = true
	}
	for _, w := range wantIn {
		if !got[w] {
			t.Errorf("missing input %q; got %v", w, u.Inputs)
		}
	}
	if len(u.Outputs) != 1 || u.Outputs[0] != "/r03/c02/s02/healthy" {
		t.Errorf("outputs = %v", u.Outputs)
	}
	if u.Name != "/r03/c02/s02/" {
		t.Errorf("unit name = %q", u.Name)
	}
}

// TestPaperExampleInstantiation: instantiating the same template over the
// whole tree must build exactly one unit — s02 — because the siblings
// s01/s03/s04 have no CPU sub-nodes and therefore "cannot be built".
func TestPaperExampleInstantiation(t *testing.T) {
	nv := figure2Tree(t)
	tpl := paperTemplate(t)
	us, err := tpl.Instantiate(nv)
	if err != nil {
		t.Fatal(err)
	}
	if len(us) != 1 || us[0].Name != "/r03/c02/s02/" {
		t.Fatalf("units = %v", us)
	}
}

// TestInstantiateManyUnits checks large-scale instantiation: one config
// block producing one unit per compute node (paper §III-C's motivation).
func TestInstantiateManyUnits(t *testing.T) {
	nv := navigator.New()
	for r := 0; r < 4; r++ {
		for n := 0; n < 16; n++ {
			base := fmt.Sprintf("/r%02d/n%02d", r, n)
			for _, s := range []string{"power", "temp"} {
				if err := nv.AddSensor(sensor.Topic(base + "/" + s)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	tpl, err := NewTemplate(
		[]string{"<bottomup>power", "<bottomup>temp"},
		[]string{"<bottomup>power-pred"},
	)
	if err != nil {
		t.Fatal(err)
	}
	us, err := tpl.Instantiate(nv)
	if err != nil {
		t.Fatal(err)
	}
	if len(us) != 64 {
		t.Fatalf("units = %d, want 64", len(us))
	}
	// Deterministic, sorted order.
	for i := 1; i < len(us); i++ {
		if us[i].Name <= us[i-1].Name {
			t.Fatal("units not sorted by name")
		}
	}
	// Every unit has its own sensors.
	u := us[0]
	if u.Name != "/r00/n00/" || u.Outputs[0] != "/r00/n00/power-pred" {
		t.Errorf("unit[0] = %v", u)
	}
}

func TestResolveForUnknownNode(t *testing.T) {
	nv := figure2Tree(t)
	tpl := paperTemplate(t)
	if _, err := tpl.ResolveFor(nv, "/does/not/exist/"); err == nil {
		t.Error("unknown unit node should fail")
	}
}

func TestResolveMissingInput(t *testing.T) {
	nv := figure2Tree(t)
	tpl, err := NewTemplate([]string{"voltage"}, []string{"out"})
	if err != nil {
		t.Fatal(err)
	}
	_, err = tpl.ResolveFor(nv, "/r03/c02/s02/")
	if !errors.Is(err, ErrUnresolved) {
		t.Errorf("err = %v, want ErrUnresolved", err)
	}
}

func TestSameNodeOutputCreatesTopic(t *testing.T) {
	nv := figure2Tree(t)
	tpl, err := NewTemplate([]string{"memfree"}, []string{"mem-alarm"})
	if err != nil {
		t.Fatal(err)
	}
	u, err := tpl.ResolveFor(nv, "/r03/c02/s02/")
	if err != nil {
		t.Fatal(err)
	}
	if u.Outputs[0] != "/r03/c02/s02/mem-alarm" {
		t.Errorf("output = %v", u.Outputs)
	}
}

func TestAbsoluteInput(t *testing.T) {
	nv := figure2Tree(t)
	tpl, err := NewTemplate([]string{"/r03/inlet-temp"}, []string{"<bottomup-1>alarm"})
	if err != nil {
		t.Fatal(err)
	}
	us, err := tpl.Instantiate(nv)
	if err != nil {
		t.Fatal(err)
	}
	// All four server nodes get a unit; each reads the same absolute topic.
	if len(us) != 4 {
		t.Fatalf("units = %d, want 4", len(us))
	}
	for _, u := range us {
		if len(u.Inputs) != 1 || u.Inputs[0] != "/r03/inlet-temp" {
			t.Errorf("unit %v inputs = %v", u.Name, u.Inputs)
		}
	}
}

func TestRootFallbackUnit(t *testing.T) {
	nv := figure2Tree(t)
	// No level-anchored output: single root unit for operator-level output.
	tpl, err := NewTemplate([]string{"/r03/inlet-temp"}, []string{"avg-error"})
	if err != nil {
		t.Fatal(err)
	}
	us, err := tpl.Instantiate(nv)
	if err != nil {
		t.Fatal(err)
	}
	if len(us) != 1 || us[0].Name != sensor.Root {
		t.Fatalf("units = %v", us)
	}
	if us[0].Outputs[0] != "/avg-error" {
		t.Errorf("output = %v", us[0].Outputs)
	}
}

func TestInstantiateEmptyDomain(t *testing.T) {
	nv := figure2Tree(t)
	tpl, err := NewTemplate([]string{"memfree"}, []string{"<bottomup-9>x"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tpl.Instantiate(nv); err == nil {
		t.Error("empty unit domain should fail")
	}
}

func TestInstantiateNoOutputs(t *testing.T) {
	tpl := &Template{}
	if _, err := tpl.Instantiate(figure2Tree(t)); err == nil {
		t.Error("template without outputs should fail")
	}
}

func TestInstantiateFilterRestrictsUnits(t *testing.T) {
	nv := figure2Tree(t)
	tpl, err := NewTemplate(
		[]string{"memfree"},
		[]string{"<bottomup-1, filter ^s0[13]$>flag"},
	)
	if err != nil {
		t.Fatal(err)
	}
	us, err := tpl.Instantiate(nv)
	if err != nil {
		t.Fatal(err)
	}
	if len(us) != 2 {
		t.Fatalf("units = %v", us)
	}
	if us[0].Name != "/r03/c02/s01/" || us[1].Name != "/r03/c02/s03/" {
		t.Errorf("unit names = %v, %v", us[0].Name, us[1].Name)
	}
}

func TestUnitString(t *testing.T) {
	u := &Unit{
		Name:    "/r1/n1/",
		Inputs:  []sensor.Topic{"/r1/n1/power"},
		Outputs: []sensor.Topic{"/r1/n1/pred"},
	}
	s := u.String()
	for _, want := range []string{"/r1/n1/", "/r1/n1/power", "/r1/n1/pred"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestNewTemplateErrors(t *testing.T) {
	if _, err := NewTemplate([]string{"<bad"}, []string{"x"}); err == nil {
		t.Error("bad input pattern should fail")
	}
	if _, err := NewTemplate([]string{"x"}, []string{"<bad"}); err == nil {
		t.Error("bad output pattern should fail")
	}
}
