package units_test

import (
	"fmt"

	"github.com/dcdb/wintermute/internal/core/units"
	"github.com/dcdb/wintermute/internal/navigator"
	"github.com/dcdb/wintermute/internal/sensor"
)

// ExampleParse shows the pattern-expression forms of paper §III-C.
func ExampleParse() {
	for _, expr := range []string{
		"<topdown+1>power",
		"<bottomup, filter cpu>cpu-cycles",
		"<bottomup-1>healthy",
	} {
		p, err := units.Parse(expr)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		fmt.Printf("%s -> anchor=%s offset=%d name=%s\n", expr, p.Anchor, p.Offset, p.Name)
	}
	// Output:
	// <topdown+1>power -> anchor=topdown offset=1 name=power
	// <bottomup, filter cpu>cpu-cycles -> anchor=bottomup offset=0 name=cpu-cycles
	// <bottomup-1>healthy -> anchor=bottomup offset=1 name=healthy
}

// ExampleTemplate_Instantiate reproduces the paper's walk-through: one
// pattern-unit block binding CPU counters and chassis power to a
// compute-node health model.
func ExampleTemplate_Instantiate() {
	nv := navigator.New()
	topics := []sensor.Topic{
		"/r03/c02/power",
		"/r03/c02/s02/cpu0/cpu-cycles", "/r03/c02/s02/cpu0/cache-misses",
		"/r03/c02/s02/cpu1/cpu-cycles", "/r03/c02/s02/cpu1/cache-misses",
	}
	if err := nv.AddSensors(topics); err != nil {
		fmt.Println("error:", err)
		return
	}
	tpl, err := units.NewTemplate(
		[]string{
			"<topdown+1>power",
			"<bottomup, filter cpu>cpu-cycles",
			"<bottomup, filter cpu>cache-misses",
		},
		[]string{"<bottomup-1>healthy"},
	)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	us, err := tpl.Instantiate(nv)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, u := range us {
		fmt.Println(u)
	}
	// Output:
	// /r03/c02/s02/ in[/r03/c02/power /r03/c02/s02/cpu0/cpu-cycles /r03/c02/s02/cpu1/cpu-cycles /r03/c02/s02/cpu0/cache-misses /r03/c02/s02/cpu1/cache-misses] out[/r03/c02/s02/healthy]
}
