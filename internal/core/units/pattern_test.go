package units

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"github.com/dcdb/wintermute/internal/navigator"
	"github.com/dcdb/wintermute/internal/sensor"
)

func TestParseForms(t *testing.T) {
	cases := []struct {
		expr   string
		anchor Anchor
		offset int
		filter string
		name   string
	}{
		{"power", AnchorSame, 0, "", "power"},
		{"/r01/c01/power", AnchorAbsolute, 0, "", "/r01/c01/power"},
		{"<topdown>inlet-temp", AnchorTopDown, 0, "", "inlet-temp"},
		{"<topdown+1>power", AnchorTopDown, 1, "", "power"},
		{"<topdown+2>memfree", AnchorTopDown, 2, "", "memfree"},
		{"<bottomup>cpu-cycles", AnchorBottomUp, 0, "", "cpu-cycles"},
		{"<bottomup-1>healthy", AnchorBottomUp, 1, "", "healthy"},
		{"<bottomup, filter cpu>cpu-cycles", AnchorBottomUp, 0, "cpu", "cpu-cycles"},
		{"<topdown+1, filter ^c0[12]$>power", AnchorTopDown, 1, "^c0[12]$", "power"},
		{"  <bottomup-2,filter s0>memfree ", AnchorBottomUp, 2, "s0", "memfree"},
	}
	for _, c := range cases {
		p, err := Parse(c.expr)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.expr, err)
			continue
		}
		if p.Anchor != c.anchor || p.Offset != c.offset || p.Name != c.name {
			t.Errorf("Parse(%q) = %+v", c.expr, p)
		}
		got := ""
		if p.Filter != nil {
			got = p.Filter.String()
		}
		if got != c.filter {
			t.Errorf("Parse(%q) filter = %q, want %q", c.expr, got, c.filter)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"   ",
		"<topdown",                 // missing '>'
		"<sideways>x",              // unknown selector
		"<topdown-1>x",             // wrong offset sign
		"<bottomup+1>x",            // wrong offset sign
		"<topdown+>x",              // missing offset value
		"<topdown>",                // missing name
		"<topdown>a/b",             // name with slash
		"<bottomup, filter>x",      // empty filter
		"<bottomup, filter [a->x",  // invalid regexp
		"<bottomup, philtre cpu>x", // unknown keyword
		"a,b",                      // stray comma outside brackets
		"/a b/c",                   // invalid absolute topic
	}
	for _, expr := range bad {
		if _, err := Parse(expr); err == nil {
			t.Errorf("Parse(%q) should fail", expr)
		} else if !errors.Is(err, ErrBadPattern) {
			t.Errorf("Parse(%q) error %v should wrap ErrBadPattern", expr, err)
		}
	}
}

func TestParseRoundTripProperty(t *testing.T) {
	// Canonical forms re-parse to the same pattern.
	f := func(anchorSeed, offSeed uint8, useFilter bool) bool {
		p := Pattern{Name: "power"}
		if anchorSeed%2 == 0 {
			p.Anchor = AnchorTopDown
		} else {
			p.Anchor = AnchorBottomUp
		}
		p.Offset = int(offSeed % 5)
		expr := p.String()
		q, err := Parse(expr)
		if err != nil {
			return false
		}
		return q.Anchor == p.Anchor && q.Offset == p.Offset && q.Name == p.Name
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringForms(t *testing.T) {
	for _, expr := range []string{
		"power",
		"<topdown+1>power",
		"<bottomup, filter cpu>cpu-cycles",
	} {
		p, err := Parse(expr)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(p.String(), p.Name) {
			t.Errorf("String() = %q must contain name", p.String())
		}
	}
	// Synthesised (no raw) string form.
	p := Pattern{Anchor: AnchorBottomUp, Offset: 1, Name: "healthy"}
	if p.String() != "<bottomup-1>healthy" {
		t.Errorf("String() = %q", p.String())
	}
	p = Pattern{Anchor: AnchorTopDown, Offset: 2, Name: "x"}
	if p.String() != "<topdown+2>x" {
		t.Errorf("String() = %q", p.String())
	}
}

// figure2Tree reproduces the sensor tree of the paper's Figure 2.
func figure2Tree(t testing.TB) *navigator.Navigator {
	t.Helper()
	nv := navigator.New()
	topics := []sensor.Topic{
		"/db-uptime", "/time-to-live",
		"/r01/inlet-temp", "/r02/inlet-temp", "/r03/inlet-temp", "/r04/inlet-temp",
		"/r03/c01/power", "/r03/c02/power", "/r03/c03/power",
		"/r03/c02/s01/memfree",
		"/r03/c02/s02/memfree", "/r03/c02/s02/healthy",
		"/r03/c02/s03/memfree", "/r03/c02/s04/memfree",
		"/r03/c02/s02/cpu0/cache-misses", "/r03/c02/s02/cpu0/cpu-cycles",
		"/r03/c02/s02/cpu1/cache-misses", "/r03/c02/s02/cpu1/cpu-cycles",
	}
	if err := nv.AddSensors(topics); err != nil {
		t.Fatal(err)
	}
	return nv
}

func TestDepthMapping(t *testing.T) {
	nv := figure2Tree(t) // MaxDepth = 4 (cpu level)
	cases := []struct {
		expr  string
		depth int
	}{
		{"<topdown>x", 1},
		{"<topdown+1>x", 2},
		{"<topdown+2>x", 3},
		{"<bottomup>x", 4},
		{"<bottomup-1>x", 3},
		{"<bottomup-3>x", 1},
	}
	for _, c := range cases {
		p, err := Parse(c.expr)
		if err != nil {
			t.Fatal(err)
		}
		d, ok := p.Depth(nv)
		if !ok || d != c.depth {
			t.Errorf("Depth(%q) = %d,%v want %d", c.expr, d, ok, c.depth)
		}
	}
	p, _ := Parse("power")
	if _, ok := p.Depth(nv); ok {
		t.Error("same-node pattern has no depth")
	}
}

func TestDomain(t *testing.T) {
	nv := figure2Tree(t)
	p, _ := Parse("<bottomup, filter cpu>cpu-cycles")
	dom := p.Domain(nv)
	if len(dom) != 2 {
		t.Fatalf("cpu domain = %d nodes, want 2", len(dom))
	}
	p, _ = Parse("<topdown>inlet-temp")
	if got := len(p.Domain(nv)); got != 4 {
		t.Fatalf("rack domain = %d, want 4", got)
	}
	p, _ = Parse("/r03/c02/power")
	dom = p.Domain(nv)
	if len(dom) != 1 || dom[0].Path() != "/r03/c02/" {
		t.Fatalf("absolute domain = %v", dom)
	}
	p, _ = Parse("/missing/node/x")
	if p.Domain(nv) != nil {
		t.Error("absolute domain for unknown node should be nil")
	}
	// Out-of-range level: bottomup-9 underflows.
	p, _ = Parse("<bottomup-9>x")
	if p.Domain(nv) != nil {
		t.Error("out-of-range level should have empty domain")
	}
}
