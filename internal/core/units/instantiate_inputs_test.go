package units

import (
	"testing"

	"github.com/dcdb/wintermute/internal/sensor"
)

func TestInstantiateInputsDerivesOutputs(t *testing.T) {
	nv := figure2Tree(t)
	tpl, err := NewTemplate([]string{"<bottomup-1>memfree"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	us, err := tpl.InstantiateInputs(nv, func(u *Unit) []sensor.Topic {
		outs := make([]sensor.Topic, len(u.Inputs))
		for i, in := range u.Inputs {
			outs[i] = in + "-smooth"
		}
		return outs
	})
	if err != nil {
		t.Fatal(err)
	}
	// All four server nodes have memfree.
	if len(us) != 4 {
		t.Fatalf("units = %d, want 4", len(us))
	}
	if us[1].Name != "/r03/c02/s02/" {
		t.Errorf("unit name = %q", us[1].Name)
	}
	if us[0].Outputs[0] != "/r03/c02/s01/memfree-smooth" {
		t.Errorf("derived output = %q", us[0].Outputs[0])
	}
}

func TestInstantiateInputsDropsNilOutputs(t *testing.T) {
	nv := figure2Tree(t)
	tpl, err := NewTemplate([]string{"<bottomup-1>memfree"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Keep only s02.
	us, err := tpl.InstantiateInputs(nv, func(u *Unit) []sensor.Topic {
		if u.Name != "/r03/c02/s02/" {
			return nil
		}
		return []sensor.Topic{u.Name.Join("x")}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(us) != 1 || us[0].Name != "/r03/c02/s02/" {
		t.Fatalf("units = %v", us)
	}
}

func TestInstantiateInputsErrors(t *testing.T) {
	nv := figure2Tree(t)
	keep := func(u *Unit) []sensor.Topic { return []sensor.Topic{u.Name.Join("x")} }
	// No inputs at all.
	if _, err := (&Template{}).InstantiateInputs(nv, keep); err == nil {
		t.Error("no inputs should fail")
	}
	// Inputs resolve nowhere.
	tpl, err := NewTemplate([]string{"<bottomup>does-not-exist"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tpl.InstantiateInputs(nv, keep); err == nil {
		t.Error("unresolvable inputs should fail")
	}
	// deriveOutputs drops everything.
	tpl, err = NewTemplate([]string{"<bottomup-1>memfree"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tpl.InstantiateInputs(nv, func(*Unit) []sensor.Topic { return nil }); err == nil {
		t.Error("all-dropped units should fail")
	}
}

func TestInstantiateInputsRootFallback(t *testing.T) {
	nv := figure2Tree(t)
	// Absolute-only inputs: single unit at the root.
	tpl, err := NewTemplate([]string{"/r03/inlet-temp"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	us, err := tpl.InstantiateInputs(nv, func(u *Unit) []sensor.Topic {
		return []sensor.Topic{"/derived"}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(us) != 1 || us[0].Name != sensor.Root {
		t.Fatalf("units = %v", us)
	}
}
