package units

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"github.com/dcdb/wintermute/internal/navigator"
	"github.com/dcdb/wintermute/internal/sensor"
)

// Unit is a concrete analysis unit: a node of the sensor tree together
// with fully-resolved input and output sensor topics (paper §III-B). Units
// are immutable once built; operators attach per-unit model state in their
// own structures, keyed by the unit name.
type Unit struct {
	// Name is the component path of the tree node the unit represents,
	// e.g. /r03/c02/s02/.
	Name sensor.Topic
	// Inputs are the sensors providing data for the analysis.
	Inputs []sensor.Topic
	// Outputs are the sensors delivering the results of the analysis.
	Outputs []sensor.Topic

	// binding holds the Query Engine's resolved sensor handles for this
	// unit (an opaque *core.BoundUnit; this package cannot name the type
	// without an import cycle). It lives on the unit rather than in a
	// side table so that dynamic-unit operators, which replace their unit
	// set every tick, cannot leak bindings: each one is garbage-collected
	// together with its unit.
	binding atomic.Value
}

// Binding returns the opaque binding attached to the unit, or nil.
func (u *Unit) Binding() any { return u.binding.Load() }

// Bind attaches b as the unit's binding if none is attached yet and
// returns the winning binding — b, or the one a concurrent binder
// attached first.
func (u *Unit) Bind(b any) any {
	if u.binding.CompareAndSwap(nil, b) {
		return b
	}
	return u.binding.Load()
}

// String renders the unit compactly for logs and the REST API.
func (u *Unit) String() string {
	var b strings.Builder
	b.WriteString(string(u.Name))
	b.WriteString(" in[")
	for i, t := range u.Inputs {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(string(t))
	}
	b.WriteString("] out[")
	for i, t := range u.Outputs {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(string(t))
	}
	b.WriteByte(']')
	return b.String()
}

// Template is a pattern unit: the abstract I/O specification from which
// concrete units are instantiated (paper §III-C). Templates are
// independent of where the model runs and of the actual sensors; they
// specify only hierarchical relationships.
type Template struct {
	Inputs  []Pattern
	Outputs []Pattern
}

// NewTemplate parses input and output pattern expressions into a template.
func NewTemplate(inputs, outputs []string) (*Template, error) {
	in, err := ParseAll(inputs)
	if err != nil {
		return nil, fmt.Errorf("units: inputs: %w", err)
	}
	out, err := ParseAll(outputs)
	if err != nil {
		return nil, fmt.Errorf("units: outputs: %w", err)
	}
	return &Template{Inputs: in, Outputs: out}, nil
}

// ResolveFor builds the single unit bound to the given component path,
// resolving every input and output pattern relative to it. Inputs must
// exist in the sensor tree; outputs are constructed unconditionally.
func (t *Template) ResolveFor(nv *navigator.Navigator, unitPath sensor.Topic) (*Unit, error) {
	node, ok := nv.Resolve(unitPath)
	if !ok {
		return nil, fmt.Errorf("units: unknown unit node %q", unitPath)
	}
	return t.resolveNode(nv, node)
}

func (t *Template) resolveNode(nv *navigator.Navigator, node *navigator.Node) (*Unit, error) {
	u := &Unit{Name: node.Path()}
	for _, p := range t.Inputs {
		topics, err := p.resolveFor(nv, node, true)
		if err != nil {
			return nil, err
		}
		u.Inputs = append(u.Inputs, topics...)
	}
	for _, p := range t.Outputs {
		topics, err := p.resolveFor(nv, node, false)
		if err != nil {
			return nil, err
		}
		u.Outputs = append(u.Outputs, topics...)
	}
	return u, nil
}

// Instantiate generates the concrete units of the template against a
// sensor tree, following the unit-generation steps of paper §V-C2:
//
//  1. the domain of the first output pattern is computed over the tree;
//  2. one candidate unit is created for each node in that domain;
//  3. each candidate's inputs and outputs are resolved relative to its
//     node; candidates whose inputs cannot all be bound are dropped (the
//     unit "cannot be built").
//
// Templates whose outputs carry no level anchor (same-node or absolute
// outputs only) produce a single unit bound to the root, which serves
// operator-level outputs. Instantiate returns an error only when no unit
// at all could be built.
func (t *Template) Instantiate(nv *navigator.Navigator) ([]*Unit, error) {
	if len(t.Outputs) == 0 {
		return nil, fmt.Errorf("units: template has no output patterns")
	}
	domain := t.unitDomain(nv)
	if len(domain) == 0 {
		return nil, fmt.Errorf("units: empty unit domain for output %q", t.Outputs[0].String())
	}
	var built []*Unit
	var firstErr error
	for _, node := range domain {
		u, err := t.resolveNode(nv, node)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		built = append(built, u)
	}
	if len(built) == 0 {
		return nil, fmt.Errorf("units: no unit could be built: %w", firstErr)
	}
	sort.Slice(built, func(i, j int) bool { return built[i].Name < built[j].Name })
	return built, nil
}

// unitDomain returns the tree nodes that become unit names: the domain of
// the first level-anchored output pattern, or the root when no output is
// level-anchored.
func (t *Template) unitDomain(nv *navigator.Navigator) []*navigator.Node {
	for _, p := range t.Outputs {
		if p.Anchor == AnchorTopDown || p.Anchor == AnchorBottomUp {
			return p.Domain(nv)
		}
	}
	return []*navigator.Node{nv.Root()}
}

// InstantiateInputs generates units from the input patterns alone, with
// outputs derived per unit by the caller. The unit domain is the domain of
// the first level-anchored input pattern; sensor-transform plugins (e.g.
// smoothing) use this to publish derived sensors next to each input
// without a separate output specification. deriveOutputs receives the unit
// with inputs resolved and returns its output topics; returning nil drops
// the unit.
func (t *Template) InstantiateInputs(nv *navigator.Navigator, deriveOutputs func(u *Unit) []sensor.Topic) ([]*Unit, error) {
	if len(t.Inputs) == 0 {
		return nil, fmt.Errorf("units: template has no input patterns")
	}
	var domain []*navigator.Node
	for _, p := range t.Inputs {
		if p.Anchor == AnchorTopDown || p.Anchor == AnchorBottomUp {
			domain = p.Domain(nv)
			break
		}
	}
	if domain == nil {
		domain = []*navigator.Node{nv.Root()}
	}
	if len(domain) == 0 {
		return nil, fmt.Errorf("units: empty unit domain for input %q", t.Inputs[0].String())
	}
	var built []*Unit
	var firstErr error
	for _, node := range domain {
		u := &Unit{Name: node.Path()}
		ok := true
		for _, p := range t.Inputs {
			topics, err := p.resolveFor(nv, node, true)
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				ok = false
				break
			}
			u.Inputs = append(u.Inputs, topics...)
		}
		if !ok {
			continue
		}
		u.Outputs = deriveOutputs(u)
		if len(u.Outputs) == 0 {
			continue
		}
		built = append(built, u)
	}
	if len(built) == 0 {
		if firstErr == nil {
			firstErr = fmt.Errorf("units: deriveOutputs dropped every unit")
		}
		return nil, fmt.Errorf("units: no unit could be built: %w", firstErr)
	}
	sort.Slice(built, func(i, j int) bool { return built[i].Name < built[j].Name })
	return built, nil
}
