// Package units implements the Wintermute Unit System (paper §III): the
// logical abstractions that bind analysis computations to nodes of the
// sensor tree.
//
// A unit is an atomic component to which an operator's computation is
// bound: it names a node in the sensor tree and carries a set of input and
// output sensors. A pattern unit describes units generically, through
// pattern expressions such as
//
//	<topdown+1>power
//	<bottomup, filter cpu>cpu-cycles
//	<bottomup-1>healthy
//
// where the anchor keyword drives vertical navigation (tree level) and the
// optional filter regular expression drives horizontal navigation within
// that level. Instantiating a pattern unit against a sensor tree produces
// one concrete unit per node in the domain of the output expression, each
// with its own fully-resolved sensors — allowing thousands of independent
// per-component models to be configured with a single block.
package units

import (
	"errors"
	"fmt"
	"regexp"
	"strconv"
	"strings"

	"github.com/dcdb/wintermute/internal/navigator"
	"github.com/dcdb/wintermute/internal/sensor"
)

// Anchor selects the vertical navigation mode of a pattern expression.
type Anchor int

const (
	// AnchorSame binds the sensor to the unit's own node; used when an
	// expression is a bare sensor name without angle brackets.
	AnchorSame Anchor = iota
	// AnchorTopDown counts levels downward from the highest level of the
	// tree (depth 1; the root is excluded from pattern navigation).
	AnchorTopDown
	// AnchorBottomUp counts levels upward from the deepest level.
	AnchorBottomUp
	// AnchorAbsolute denotes a fixed, fully-qualified sensor topic.
	AnchorAbsolute
)

// String returns the anchor keyword as written in pattern expressions.
func (a Anchor) String() string {
	switch a {
	case AnchorSame:
		return "same"
	case AnchorTopDown:
		return "topdown"
	case AnchorBottomUp:
		return "bottomup"
	case AnchorAbsolute:
		return "absolute"
	}
	return "unknown"
}

// ErrBadPattern reports a syntactically invalid pattern expression.
var ErrBadPattern = errors.New("units: malformed pattern expression")

// ErrUnresolved reports that a pattern could not be bound to any sensor for
// a given unit node — per the paper, such a unit "cannot be built".
var ErrUnresolved = errors.New("units: pattern resolves to no sensor")

// Pattern is one parsed pattern expression: a vertical anchor with offset,
// an optional horizontal filter, and the sensor name (last topic segment).
type Pattern struct {
	Anchor Anchor
	Offset int            // levels below topdown / above bottomup
	Filter *regexp.Regexp // nil when absent
	Name   string         // sensor name; full topic for AnchorAbsolute
	raw    string
}

// String returns the canonical textual form of the pattern.
func (p Pattern) String() string {
	if p.raw != "" {
		return p.raw
	}
	switch p.Anchor {
	case AnchorSame, AnchorAbsolute:
		return p.Name
	}
	var b strings.Builder
	b.WriteByte('<')
	b.WriteString(p.Anchor.String())
	if p.Offset != 0 {
		if p.Anchor == AnchorTopDown {
			b.WriteByte('+')
		} else {
			b.WriteByte('-')
		}
		b.WriteString(strconv.Itoa(p.Offset))
	}
	if p.Filter != nil {
		b.WriteString(", filter ")
		b.WriteString(p.Filter.String())
	}
	b.WriteByte('>')
	b.WriteString(p.Name)
	return b.String()
}

// Parse parses a single pattern expression. Accepted forms:
//
//	name                      same-node sensor
//	/abs/olute/topic          absolute sensor topic
//	<topdown>name             highest tree level
//	<topdown+K>name           K levels below the highest
//	<bottomup>name            deepest tree level
//	<bottomup-K>name          K levels above the deepest
//	<anchor, filter RE>name   any of the above with a horizontal filter
func Parse(expr string) (Pattern, error) {
	s := strings.TrimSpace(expr)
	if s == "" {
		return Pattern{}, fmt.Errorf("%w: empty expression", ErrBadPattern)
	}
	if !strings.HasPrefix(s, "<") {
		if strings.HasPrefix(s, "/") {
			topic := sensor.Clean(s)
			if err := topic.Validate(); err != nil {
				return Pattern{}, fmt.Errorf("%w: bad absolute topic %q", ErrBadPattern, s)
			}
			return Pattern{Anchor: AnchorAbsolute, Name: string(topic), raw: s}, nil
		}
		if strings.ContainsAny(s, "<>,") {
			return Pattern{}, fmt.Errorf("%w: %q", ErrBadPattern, expr)
		}
		return Pattern{Anchor: AnchorSame, Name: s, raw: s}, nil
	}
	end := strings.IndexByte(s, '>')
	if end < 0 {
		return Pattern{}, fmt.Errorf("%w: missing '>' in %q", ErrBadPattern, expr)
	}
	name := strings.TrimSpace(s[end+1:])
	if name == "" || strings.Contains(name, "/") {
		return Pattern{}, fmt.Errorf("%w: bad sensor name in %q", ErrBadPattern, expr)
	}
	p := Pattern{Name: name, raw: s}
	inner := s[1:end]
	parts := strings.SplitN(inner, ",", 2)
	if err := p.parseSelector(strings.TrimSpace(parts[0])); err != nil {
		return Pattern{}, fmt.Errorf("%w: %v in %q", ErrBadPattern, err, expr)
	}
	if len(parts) == 2 {
		if err := p.parseFilter(strings.TrimSpace(parts[1])); err != nil {
			return Pattern{}, fmt.Errorf("%w: %v in %q", ErrBadPattern, err, expr)
		}
	}
	return p, nil
}

func (p *Pattern) parseSelector(sel string) error {
	switch {
	case sel == "topdown":
		p.Anchor = AnchorTopDown
	case sel == "bottomup":
		p.Anchor = AnchorBottomUp
	case strings.HasPrefix(sel, "topdown+"):
		p.Anchor = AnchorTopDown
		k, err := strconv.Atoi(sel[len("topdown+"):])
		if err != nil || k < 0 {
			return fmt.Errorf("bad topdown offset %q", sel)
		}
		p.Offset = k
	case strings.HasPrefix(sel, "bottomup-"):
		p.Anchor = AnchorBottomUp
		k, err := strconv.Atoi(sel[len("bottomup-"):])
		if err != nil || k < 0 {
			return fmt.Errorf("bad bottomup offset %q", sel)
		}
		p.Offset = k
	default:
		return fmt.Errorf("unknown selector %q", sel)
	}
	return nil
}

func (p *Pattern) parseFilter(f string) error {
	const kw = "filter"
	if !strings.HasPrefix(f, kw) {
		return fmt.Errorf("expected 'filter', got %q", f)
	}
	src := strings.TrimSpace(f[len(kw):])
	if src == "" {
		return errors.New("empty filter expression")
	}
	re, err := regexp.Compile(src)
	if err != nil {
		return fmt.Errorf("bad filter regexp: %v", err)
	}
	p.Filter = re
	return nil
}

// ParseAll parses a list of pattern expressions.
func ParseAll(exprs []string) ([]Pattern, error) {
	out := make([]Pattern, 0, len(exprs))
	for _, e := range exprs {
		p, err := Parse(e)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// Depth converts the pattern's vertical selector into a concrete tree
// depth for the given navigator. It returns ok=false for anchors that do
// not denote a tree level (same-node and absolute patterns).
func (p Pattern) Depth(nv *navigator.Navigator) (depth int, ok bool) {
	switch p.Anchor {
	case AnchorTopDown:
		return nv.Level(true, p.Offset), true
	case AnchorBottomUp:
		return nv.Level(false, p.Offset), true
	default:
		return 0, false
	}
}

// Domain returns the set of tree nodes the pattern matches, before any
// hierarchical binding to a unit: the nodes at the pattern's level whose
// name passes the filter. Same-node patterns have no free domain and
// return nil; absolute patterns return the node owning the fixed topic.
func (p Pattern) Domain(nv *navigator.Navigator) []*navigator.Node {
	switch p.Anchor {
	case AnchorAbsolute:
		n, ok := nv.Resolve(sensor.Topic(p.Name).Node())
		if !ok {
			return nil
		}
		return []*navigator.Node{n}
	case AnchorSame:
		return nil
	}
	depth, _ := p.Depth(nv)
	if depth < 1 || depth > nv.MaxDepth() {
		return nil
	}
	return nv.NodesAtDepthFiltered(depth, p.Filter)
}

// resolveFor binds the pattern to concrete sensor topics for a unit rooted
// at unitNode. When requireExisting is true (inputs), only sensors present
// in the tree are returned and an empty result is an ErrUnresolved error;
// when false (outputs), topics are constructed for every matching node,
// since output sensors are created by the operator itself.
func (p Pattern) resolveFor(nv *navigator.Navigator, unitNode *navigator.Node, requireExisting bool) ([]sensor.Topic, error) {
	switch p.Anchor {
	case AnchorSame:
		topic := unitNode.Path().Join(p.Name)
		if requireExisting && !nv.HasSensor(topic) {
			return nil, fmt.Errorf("%w: %q at %q", ErrUnresolved, p.Name, unitNode.Path())
		}
		return []sensor.Topic{topic}, nil
	case AnchorAbsolute:
		topic := sensor.Topic(p.Name)
		if requireExisting && !nv.HasSensor(topic) {
			return nil, fmt.Errorf("%w: absolute topic %q", ErrUnresolved, p.Name)
		}
		return []sensor.Topic{topic}, nil
	}
	depth, _ := p.Depth(nv)
	if depth < 1 || depth > nv.MaxDepth() {
		return nil, fmt.Errorf("%w: %q denotes no tree level", ErrUnresolved, p.String())
	}
	var out []sensor.Topic
	// Hierarchical binding walks the tree from the unit node — the single
	// ancestor above it or its descendants below — rather than scanning
	// the whole level, keeping large-scale instantiation linear in the
	// number of resolved sensors.
	for _, n := range nv.RelatedAtDepth(unitNode, depth, p.Filter) {
		topic := n.Path().Join(p.Name)
		if requireExisting {
			if _, ok := n.Sensor(p.Name); !ok {
				continue
			}
		}
		out = append(out, topic)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%w: %q for unit %q", ErrUnresolved, p.String(), unitNode.Path())
	}
	return out, nil
}
