package core

import (
	"encoding/json"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/dcdb/wintermute/internal/core/units"
	"github.com/dcdb/wintermute/internal/navigator"
	"github.com/dcdb/wintermute/internal/sensor"
)

// blockingOp sleeps in Compute and records how many computations of this
// operator run at once.
type blockingOp struct {
	*Base
	dur    time.Duration
	active atomic.Int32
	peak   atomic.Int32
}

func (o *blockingOp) Compute(qe *QueryEngine, u *units.Unit, now time.Time) ([]Output, error) {
	a := o.active.Add(1)
	for {
		p := o.peak.Load()
		if a <= p || o.peak.CompareAndSwap(p, a) {
			break
		}
	}
	time.Sleep(o.dur)
	o.active.Add(-1)
	return nil, nil
}

func newBlockingOp(t testing.TB, nav *navigator.Navigator, name string, dur time.Duration) *blockingOp {
	t.Helper()
	cfg := OperatorConfig{
		Name:    name,
		Inputs:  []string{"power"},
		Outputs: []string{"block-" + name},
		Unit:    "/r0/n0/",
	}
	base, err := cfg.Build("blocktest", nav)
	if err != nil {
		t.Fatal(err)
	}
	return &blockingOp{Base: base, dur: dur}
}

func registerOpList(t *testing.T, plugin string, ops ...Operator) {
	t.Helper()
	RegisterPlugin(plugin, func(json.RawMessage, *QueryEngine, Env) ([]Operator, error) {
		return ops, nil
	})
}

// TestTickAllJoinsErrors verifies that TickAll reports every failing
// operator instead of only the first one.
func TestTickAllJoinsErrors(t *testing.T) {
	nav, caches, _, qe := testEnv(t)
	for _, s := range []sensor.Topic{"/r0/n0/hollow", "/r0/n1/hollow"} {
		if err := nav.AddSensor(s); err != nil {
			t.Fatal(err)
		}
	}
	var ops []Operator
	for _, name := range []string{"joinA", "joinB"} {
		cfg := OperatorConfig{
			Name:    name,
			Inputs:  []string{"hollow"},
			Outputs: []string{"hollow-" + name},
			Unit:    "/r0/n" + string(name[len(name)-1]-'A'+'0') + "/",
		}
		base, err := cfg.Build("jointest", nav)
		if err != nil {
			t.Fatal(err)
		}
		ops = append(ops, &avgOperator{Base: base})
	}
	registerOpList(t, "jointest", ops...)
	m := NewManager(qe, NewCacheSink(caches, nav, 16, time.Second), Env{})
	t.Cleanup(m.Close)
	if err := m.LoadPlugin("jointest", nil); err != nil {
		t.Fatal(err)
	}
	err := m.TickAll(time.Unix(1, 0))
	if err == nil {
		t.Fatal("expected errors from both operators")
	}
	for _, name := range []string{"joinA", "joinB"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q is missing operator %s", err, name)
		}
	}
}

// TestTickJoinsUnitErrors verifies that a sequential tick aggregates every
// failing unit instead of dropping all but the first.
func TestTickJoinsUnitErrors(t *testing.T) {
	nav, caches, _, qe := testEnv(t)
	for _, s := range []sensor.Topic{"/r0/n0/void", "/r0/n1/void", "/r1/n0/void", "/r1/n1/void"} {
		if err := nav.AddSensor(s); err != nil {
			t.Fatal(err)
		}
	}
	cfg := OperatorConfig{
		Name:    "voidavg",
		Inputs:  []string{"void"},
		Outputs: []string{"<bottomup>void-avg"},
	}
	base, err := cfg.Build("voidtest", nav)
	if err != nil {
		t.Fatal(err)
	}
	op := &avgOperator{Base: base}
	if got := len(op.Units()); got != 4 {
		t.Fatalf("units = %d, want 4", got)
	}
	err = Tick(op, qe, NewCacheSink(caches, nav, 16, time.Second), time.Unix(1, 0))
	if err == nil {
		t.Fatal("expected unit errors")
	}
	for _, unit := range []string{"/r0/n0/", "/r1/n1/"} {
		if !strings.Contains(err.Error(), unit) {
			t.Errorf("error %q is missing unit %s", err, unit)
		}
	}
}

// TestTickAllDispatchesConcurrently verifies that independent operators
// overlap during TickAll once the pool has capacity for them.
func TestTickAllDispatchesConcurrently(t *testing.T) {
	nav, caches, _, qe := testEnv(t)
	var ops []Operator
	for _, name := range []string{"conc0", "conc1", "conc2", "conc3"} {
		ops = append(ops, newBlockingOp(t, nav, name, 10*time.Millisecond))
	}
	registerOpList(t, "conctest", ops...)
	m := NewManager(qe, NewCacheSink(caches, nav, 16, time.Second), Env{})
	t.Cleanup(m.Close)
	m.SetThreads(4)
	if err := m.LoadPlugin("conctest", nil); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := m.TickAll(time.Unix(1, 0)); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	// Sequential execution would need >= 40ms; concurrent dispatch on a
	// 4-thread pool needs barely more than 10ms. The generous bound keeps
	// the test robust on loaded CI machines.
	if elapsed >= 35*time.Millisecond {
		t.Errorf("TickAll of 4 blocking operators took %v; expected concurrent dispatch well under 35ms", elapsed)
	}
}

// TestNoOverlappingTicksPerOperator verifies the per-operator serialization
// guarantee: concurrent TickAll calls (and wall-clock loops) never overlap
// two ticks of the same operator.
func TestNoOverlappingTicksPerOperator(t *testing.T) {
	nav, caches, _, qe := testEnv(t)
	op := newBlockingOp(t, nav, "serial", time.Millisecond)
	registerOpList(t, "serialtest", op)
	m := NewManager(qe, NewCacheSink(caches, nav, 16, time.Second), Env{})
	t.Cleanup(m.Close)
	m.SetThreads(4)
	if err := m.LoadPlugin("serialtest", nil); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 5; k++ {
				_ = m.TickAll(time.Unix(int64(k), 0))
			}
		}()
	}
	wg.Wait()
	if p := op.peak.Load(); p != 1 {
		t.Errorf("peak concurrent computes of one operator = %d, want 1", p)
	}
	st := m.Status()
	if len(st) != 1 || st[0].Ticks != 40 {
		t.Errorf("status = %+v, want 40 ticks", st)
	}
	if st[0].LastDuration <= 0 {
		t.Errorf("LastDuration = %v, want > 0", st[0].LastDuration)
	}
}

// TestManagerStartStopStatusRace hammers lifecycle, status and tick paths
// from many goroutines; run under -race it guards the lock discipline of
// Manager (including the Status lock-order fix).
func TestManagerStartStopStatusRace(t *testing.T) {
	nav, caches, _, qe := testEnv(t)
	var ops []Operator
	for _, name := range []string{"raceA", "raceB", "raceC"} {
		cfg := OperatorConfig{
			Name:       name,
			Inputs:     []string{"power"},
			Outputs:    []string{"<bottomup>race-" + name},
			IntervalMs: 1,
			Parallel:   name == "raceB",
		}
		base, err := cfg.Build("racetest", nav)
		if err != nil {
			t.Fatal(err)
		}
		ops = append(ops, &avgOperator{Base: base})
	}
	registerOpList(t, "racetest", ops...)
	m := NewManager(qe, NewCacheSink(caches, nav, 16, time.Second), Env{})
	t.Cleanup(m.Close)
	if err := m.LoadPlugin("racetest", nil); err != nil {
		t.Fatal(err)
	}
	m.Start()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := 0; ; k++ {
				select {
				case <-stop:
					return
				default:
				}
				switch i {
				case 0:
					_ = m.Status()
				case 1:
					_ = m.TickAll(time.Unix(100, 0))
				case 2:
					_ = m.StopOperator("raceA")
					_ = m.StartOperator("raceA")
				case 3:
					_ = m.Operators()
					_, _ = m.Operator("raceB")
					_ = m.SchedulerStats()
				}
			}
		}(i)
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	m.Stop()
	for _, st := range m.Status() {
		if st.Running {
			t.Errorf("operator %s still running after Stop", st.Name)
		}
	}
}

// TestManagerThreadsConfig verifies the `threads` knob: SetThreads and the
// Config field both resize the pool.
func TestManagerThreadsConfig(t *testing.T) {
	_, caches, _, qe := testEnv(t)
	m := NewManager(qe, NewCacheSink(caches, qe.Navigator(), 16, time.Second), Env{})
	t.Cleanup(m.Close)
	m.SetThreads(3)
	if m.Threads() != 3 {
		t.Fatalf("Threads = %d, want 3", m.Threads())
	}
	var cfg Config
	if err := json.Unmarshal([]byte(`{"threads": 2, "plugins": []}`), &cfg); err != nil {
		t.Fatal(err)
	}
	if err := m.LoadConfig(cfg); err != nil {
		t.Fatal(err)
	}
	if m.Threads() != 2 {
		t.Fatalf("Threads after LoadConfig = %d, want 2", m.Threads())
	}
	if st := m.SchedulerStats(); st.Threads != 2 {
		t.Fatalf("SchedulerStats.Threads = %d, want 2", st.Threads)
	}
}
