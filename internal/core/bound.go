package core

import (
	"sync/atomic"
	"time"

	"github.com/dcdb/wintermute/internal/cache"
	"github.com/dcdb/wintermute/internal/core/units"
	"github.com/dcdb/wintermute/internal/sensor"
)

// BoundSensor is a sensor handle resolved once against the Query Engine's
// cache set: the topic together with the cache that serves it. Queries
// through a bound handle skip the per-call topic hash and shard lock of
// cache.Set.Get — the dominant fixed cost of the steady-state tick path —
// and go straight to the ring buffer.
//
// Binding is lazy and sticky: a handle created before the sensor's cache
// exists (operator output sensors are typical — their caches appear on the
// first sink push) re-resolves on every query until the cache shows up,
// then never looks it up again. This is sound because a cache.Set never
// replaces or removes a cache once created (GetOrCreate keeps originals),
// so a resolved pointer cannot go stale.
//
// Handles are safe for concurrent use.
type BoundSensor struct {
	// Topic is the bound sensor topic.
	Topic sensor.Topic

	qe *QueryEngine
	c  atomic.Pointer[cache.Cache]
}

// Bind creates a bound handle for topic. The handle resolves its cache on
// first use and keeps it forever after.
func (qe *QueryEngine) Bind(topic sensor.Topic) *BoundSensor {
	b := &BoundSensor{Topic: topic, qe: qe}
	b.resolved() // bind eagerly when the cache already exists
	return b
}

// resolved returns the sensor's cache, resolving and memoising it on first
// success; nil while no cache exists yet.
func (b *BoundSensor) resolved() *cache.Cache {
	if c := b.c.Load(); c != nil {
		return c
	}
	if c, ok := b.qe.caches.Get(b.Topic); ok {
		b.c.Store(c)
		return c
	}
	return nil
}

// Latest returns the most recent reading, cache-first like
// QueryEngine.Latest but without the topic lookup on the hit path.
func (b *BoundSensor) Latest() (sensor.Reading, bool) {
	return b.qe.latestIn(b.resolved(), b.Topic)
}

// QueryRelative appends to dst the readings in [latest-lookback, latest],
// like QueryEngine.QueryRelative but without the topic lookup on the hit
// path. On the steady-state cache hit it performs zero allocations when
// dst has sufficient capacity.
func (b *BoundSensor) QueryRelative(lookback time.Duration, dst []sensor.Reading) []sensor.Reading {
	return b.qe.relativeIn(b.resolved(), b.Topic, lookback, dst)
}

// QueryAbsolute appends to dst the readings with timestamps in [t0, t1],
// like QueryEngine.QueryAbsolute but without the topic lookup on the hit
// path.
func (b *BoundSensor) QueryAbsolute(t0, t1 int64, dst []sensor.Reading) []sensor.Reading {
	return b.qe.absoluteIn(b.resolved(), b.Topic, t0, t1, dst)
}

// Average returns the mean over the relative window [latest-lookback,
// latest], like QueryEngine.Average but without the topic lookup on the
// hit path.
func (b *BoundSensor) Average(lookback time.Duration) (float64, bool) {
	return b.qe.averageIn(b.resolved(), b.Topic, lookback)
}

// BoundUnit pairs a unit with bound handles for every input and output,
// index-parallel with Unit.Inputs and Unit.Outputs. Operators obtain it
// once per computation via QueryEngine.BindUnit and query through the
// handles, paying the topic resolution once per sensor per unit lifetime
// instead of once per query.
type BoundUnit struct {
	Unit    *units.Unit
	Inputs  []*BoundSensor
	Outputs []*BoundSensor

	qe *QueryEngine
}

// Input returns the bound handle of input i.
func (bu *BoundUnit) Input(i int) *BoundSensor { return bu.Inputs[i] }

// Output returns the bound handle of output i.
func (bu *BoundUnit) Output(i int) *BoundSensor { return bu.Outputs[i] }

// InputNamed returns the bound handle of the input with the given short
// sensor name, if present.
func (bu *BoundUnit) InputNamed(name string) (*BoundSensor, bool) {
	for i, t := range bu.Unit.Inputs {
		if t.Name() == name {
			return bu.Inputs[i], true
		}
	}
	return nil, false
}

// BindUnit returns the unit's bound handles, building and attaching them
// on first use. The binding is stored on the unit itself (not in a side
// table), so dynamic-unit operators that replace their unit set every tick
// do not leak bindings: a binding is garbage-collected with its unit.
//
// The steady-state cost is one atomic load and a type assertion per call.
func (qe *QueryEngine) BindUnit(u *units.Unit) *BoundUnit {
	if b := u.Binding(); b != nil {
		if bu, ok := b.(*BoundUnit); ok && bu.qe == qe {
			return bu
		}
		// Bound against a different engine (only plausible in tests that
		// share units between hosts): serve a fresh, unattached binding.
		return qe.buildBoundUnit(u)
	}
	bu := qe.buildBoundUnit(u)
	if won, ok := u.Bind(bu).(*BoundUnit); ok && won.qe == qe {
		return won // the racing winner, possibly another goroutine's
	}
	return bu
}

func (qe *QueryEngine) buildBoundUnit(u *units.Unit) *BoundUnit {
	bu := &BoundUnit{Unit: u, qe: qe}
	bu.Inputs = make([]*BoundSensor, len(u.Inputs))
	for i, t := range u.Inputs {
		bu.Inputs[i] = qe.Bind(t)
	}
	bu.Outputs = make([]*BoundSensor, len(u.Outputs))
	for i, t := range u.Outputs {
		bu.Outputs[i] = qe.Bind(t)
	}
	return bu
}
