package core

import (
	"time"

	"github.com/dcdb/wintermute/internal/cache"
	"github.com/dcdb/wintermute/internal/sensor"
	"github.com/dcdb/wintermute/internal/store"
)

// Aggregation queries of the Query Engine. Like the raw-reading query
// modes they follow the cache-first discipline — a covering sensor
// cache reduces its ring buffer in place — and otherwise delegate to
// the Storage Backend through the store.Aggregate/store.Downsample
// dispatchers, which use the backend's native streaming engine (the
// tsdb per-chunk pre-aggregates) when it has one and fall back to
// Range+reduce when it does not. No path materializes raw readings
// into the caller's memory.

// AggregateRelative reduces the window [latest-lookback, latest] of
// topic to an AggResult, cache-first. The result is empty (Count 0)
// when the sensor has no data anywhere.
func (qe *QueryEngine) AggregateRelative(topic sensor.Topic, lookback time.Duration) store.AggResult {
	return qe.aggregateRelativeIn(qe.lookup(topic), topic, lookback)
}

// aggregateRelativeIn answers a relative aggregation against a resolved
// cache, falling back to the store. Shared by the unbound topic path
// and the BoundSensor path.
func (qe *QueryEngine) aggregateRelativeIn(c *cache.Cache, topic sensor.Topic, lookback time.Duration) store.AggResult {
	if c != nil {
		if a := c.AggregateRelative(lookback); a.Count > 0 {
			return a
		}
	}
	if qe.store != nil {
		if latest, ok := qe.store.Latest(topic); ok {
			return store.Aggregate(qe.store, topic, latest.Time-int64(lookback), latest.Time)
		}
	}
	return store.AggResult{}
}

// AggregateAbsolute reduces the readings of topic with timestamps in
// [t0, t1] to an AggResult. The cache answers when it covers the start
// of the range; otherwise the Storage Backend does.
func (qe *QueryEngine) AggregateAbsolute(topic sensor.Topic, t0, t1 int64) store.AggResult {
	return qe.aggregateAbsoluteIn(qe.lookup(topic), topic, t0, t1)
}

// aggregateAbsoluteIn answers an absolute aggregation against a
// resolved cache, falling back to the store when the cache is absent,
// empty, or does not cover the start of the range.
func (qe *QueryEngine) aggregateAbsoluteIn(c *cache.Cache, topic sensor.Topic, t0, t1 int64) store.AggResult {
	if c != nil && c.Len() > 0 {
		oldest, _ := c.Oldest()
		if oldest.Time <= t0 || qe.store == nil {
			return c.AggregateAbsolute(t0, t1)
		}
	}
	if qe.store != nil {
		return store.Aggregate(qe.store, topic, t0, t1)
	}
	return store.AggResult{}
}

// Downsample reduces the readings of topic in [t0, t1] into buckets of
// width step aligned to t0, appending only non-empty buckets to dst in
// time order — cache when it covers the range start, Storage Backend
// otherwise.
func (qe *QueryEngine) Downsample(topic sensor.Topic, t0, t1, step int64, dst []store.Bucket) []store.Bucket {
	return qe.downsampleIn(qe.lookup(topic), topic, t0, t1, step, dst)
}

// downsampleIn answers a downsampling query against a resolved cache,
// falling back to the store.
func (qe *QueryEngine) downsampleIn(c *cache.Cache, topic sensor.Topic, t0, t1, step int64, dst []store.Bucket) []store.Bucket {
	if c != nil && c.Len() > 0 {
		oldest, _ := c.Oldest()
		if oldest.Time <= t0 || qe.store == nil {
			return c.DownsampleAbsolute(t0, t1, step, dst)
		}
	}
	if qe.store != nil {
		return store.Downsample(qe.store, topic, t0, t1, step, dst)
	}
	return dst
}

// AggregateRelative reduces the window [latest-lookback, latest], like
// QueryEngine.AggregateRelative but without the topic lookup on the hit
// path. The steady-state cache hit performs zero allocations — this is
// the aggregation tick path of operator plugins.
func (b *BoundSensor) AggregateRelative(lookback time.Duration) store.AggResult {
	return b.qe.aggregateRelativeIn(b.resolved(), b.Topic, lookback)
}

// AggregateAbsolute reduces the readings in [t0, t1], like
// QueryEngine.AggregateAbsolute but without the topic lookup on the hit
// path.
func (b *BoundSensor) AggregateAbsolute(t0, t1 int64) store.AggResult {
	return b.qe.aggregateAbsoluteIn(b.resolved(), b.Topic, t0, t1)
}

// Downsample reduces the readings in [t0, t1] into step-wide buckets,
// like QueryEngine.Downsample but without the topic lookup on the hit
// path.
func (b *BoundSensor) Downsample(t0, t1, step int64, dst []store.Bucket) []store.Bucket {
	return b.qe.downsampleIn(b.resolved(), b.Topic, t0, t1, step, dst)
}
