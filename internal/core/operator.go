package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/dcdb/wintermute/internal/core/units"
	"github.com/dcdb/wintermute/internal/sensor"
)

// Mode selects an operator's mode of operation (paper §IV-b).
type Mode int

const (
	// Online operators are invoked at regular intervals, producing
	// time-series-like output that feeds management decisions.
	Online Mode = iota
	// OnDemand operators compute only when explicitly invoked through the
	// RESTful API, and propagate output only in the response.
	OnDemand
)

// String returns the configuration keyword for the mode.
func (m Mode) String() string {
	if m == OnDemand {
		return "ondemand"
	}
	return "online"
}

// ParseMode converts a configuration keyword into a Mode.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", "online":
		return Online, nil
	case "ondemand", "on-demand":
		return OnDemand, nil
	}
	return Online, fmt.Errorf("core: unknown mode %q", s)
}

// Output is one reading produced by an operator for an output sensor.
type Output struct {
	Topic   sensor.Topic
	Reading sensor.Reading
}

// Sink receives the readings produced by operators (and, in a Pusher, by
// sampler plugins). Implementations must be safe for concurrent use:
// parallel unit management pushes from multiple goroutines.
type Sink interface {
	Push(topic sensor.Topic, r sensor.Reading)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(topic sensor.Topic, r sensor.Reading)

// Push calls f(topic, r).
func (f SinkFunc) Push(topic sensor.Topic, r sensor.Reading) { f(topic, r) }

// TickContext carries reusable scratch buffers for one worker's unit
// computations, eliminating the per-unit-per-tick heap churn of building
// fresh reading and output slices in every Compute. The tick path hands
// each computation a pooled context; ComputeInto implementations slice
// the buffers to zero length, use them, and store any growth back so the
// capacity is retained for the next unit.
//
// A context is owned by exactly one computation at a time; buffers (and
// any output slice aliasing them) are valid only until the computation's
// outputs have been delivered to the sink.
type TickContext struct {
	// Readings is scratch space for Query Engine calls.
	Readings []sensor.Reading
	// Outputs is scratch space for the produced outputs; ComputeInto
	// conventionally appends into Outputs[:0] and returns the result.
	Outputs []Output
	// Floats is scratch space for intermediate numeric vectors whose
	// lifetime ends with the computation (per-unit feature or sample
	// buffers that are NOT retained in model state).
	Floats []float64
}

// NewTickContext returns a fresh, unpooled context for paths that hand
// computation results to a caller (on-demand triggers, plugin Compute
// shims): outputs alias the context, so it must not be reused while they
// are live.
func NewTickContext() *TickContext { return &TickContext{} }

// tickCtxPool recycles contexts across ticks. sync.Pool gives effectively
// per-P caching, so steady-state workers keep reusing their own grown
// buffers without cross-worker contention.
var tickCtxPool = sync.Pool{New: func() any { return new(TickContext) }}

func getTickContext() *TickContext   { return tickCtxPool.Get().(*TickContext) }
func putTickContext(tc *TickContext) { tickCtxPool.Put(tc) }

// Operator is a computational entity performing an ODA task over a set of
// units (paper §V-C1). Implementations usually embed *Base and provide
// Compute.
type Operator interface {
	// Name identifies the operator instance.
	Name() string
	// Plugin names the operator plugin that created this operator.
	Plugin() string
	// Mode returns Online or OnDemand.
	Mode() Mode
	// Interval is the computation interval for Online operators.
	Interval() time.Duration
	// Parallel reports the unit-management policy: parallel units may be
	// computed concurrently (one model per unit); sequential units share
	// one model and are processed in order (paper §IV-c).
	Parallel() bool
	// Units returns the operator's units.
	Units() []*units.Unit
	// Compute performs the analysis for one unit at the given time,
	// returning readings for (a subset of) the unit's output sensors.
	Compute(qe *QueryEngine, u *units.Unit, now time.Time) ([]Output, error)
}

// ContextOperator is implemented by operators whose computation can run
// against a reusable TickContext. When implemented, ComputeInto replaces
// Compute on the tick path: the returned outputs may alias the context's
// buffers and are consumed (pushed to the sink) before the context is
// handed to the next computation. All built-in plugins implement it; their
// plain Compute delegates to ComputeInto with a fresh context.
type ContextOperator interface {
	Operator
	ComputeInto(qe *QueryEngine, u *units.Unit, now time.Time, tc *TickContext) ([]Output, error)
}

// computeUnit performs one unit computation, preferring the scratch-buffer
// path when the operator supports it.
func computeUnit(op Operator, qe *QueryEngine, u *units.Unit, now time.Time, tc *TickContext) ([]Output, error) {
	if co, ok := op.(ContextOperator); ok {
		return co.ComputeInto(qe, u, now, tc)
	}
	return op.Compute(qe, u, now)
}

// BatchOperator is implemented by operators whose analysis spans all units
// at once (e.g. clustering, where every unit is a point of one model).
// When implemented, ComputeBatch replaces per-unit Compute during ticks.
type BatchOperator interface {
	Operator
	ComputeBatch(qe *QueryEngine, now time.Time) ([]Output, error)
}

// DynamicUnitOperator is implemented by operators whose unit set changes
// over time, such as job operators that create one unit per running job
// (paper §V-C: job operator plugins). RefreshUnits runs before each tick.
type DynamicUnitOperator interface {
	Operator
	RefreshUnits(qe *QueryEngine, now time.Time) error
}

// Base carries the configuration and unit set common to all operators.
// Plugin operators embed *Base and implement Compute.
type Base struct {
	name     string
	plugin   string
	mode     Mode
	interval time.Duration
	parallel bool

	mu    sync.RWMutex
	units []*units.Unit
}

// NewBase constructs the embedded operator core.
func NewBase(name, plugin string, mode Mode, interval time.Duration, parallel bool) *Base {
	if interval <= 0 {
		interval = time.Second
	}
	return &Base{name: name, plugin: plugin, mode: mode, interval: interval, parallel: parallel}
}

// Name implements Operator.
func (b *Base) Name() string { return b.name }

// Plugin implements Operator.
func (b *Base) Plugin() string { return b.plugin }

// Mode implements Operator.
func (b *Base) Mode() Mode { return b.mode }

// Interval implements Operator.
func (b *Base) Interval() time.Duration { return b.interval }

// Parallel implements Operator.
func (b *Base) Parallel() bool { return b.parallel }

// Units implements Operator; the returned slice must not be mutated.
func (b *Base) Units() []*units.Unit {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.units
}

// SetUnits replaces the operator's unit set (used at configuration time
// and by dynamic-unit operators).
func (b *Base) SetUnits(us []*units.Unit) {
	b.mu.Lock()
	b.units = us
	b.mu.Unlock()
}

// FindUnit returns the unit with the given name, if present.
func (b *Base) FindUnit(name sensor.Topic) (*units.Unit, bool) {
	name = sensor.Clean(string(name)).AsNode()
	b.mu.RLock()
	defer b.mu.RUnlock()
	for _, u := range b.units {
		if u.Name == name {
			return u, true
		}
	}
	return nil, false
}

// Tick executes one computation round of an operator: it refreshes
// dynamic units, then computes either the whole batch or every unit —
// sequentially or in parallel according to the unit-management policy —
// and pushes all produced outputs to the sink. Unit failures do not stop
// other units, matching the isolation expected between independent
// per-unit models; all errors are aggregated with errors.Join so no
// failure is lost.
func Tick(op Operator, qe *QueryEngine, sink Sink, now time.Time) error {
	return TickScheduled(op, qe, sink, now, nil)
}

// TickScheduled is Tick with the computations executed on a Scheduler's
// worker pool: the whole sequential unit loop (or batch computation) runs
// as one pooled task preserving unit order, while parallel units fan out
// as one pooled task each, bounded by the pool size. A nil scheduler runs
// sequential units inline and parallel units on one goroutine per unit
// (the unbounded pre-pool behaviour).
//
// TickScheduled must not be called from inside a task running on the same
// scheduler: it waits for the tasks it submits, which would deadlock a
// fully occupied pool.
func TickScheduled(op Operator, qe *QueryEngine, sink Sink, now time.Time, sched *Scheduler) error {
	run := func(f func()) {
		if sched != nil {
			sched.Do(f)
		} else {
			f()
		}
	}
	if d, ok := op.(DynamicUnitOperator); ok {
		var err error
		run(func() { err = d.RefreshUnits(qe, now) })
		if err != nil {
			return fmt.Errorf("core: %s: refresh units: %w", op.Name(), err)
		}
	}
	if b, ok := op.(BatchOperator); ok {
		var outs []Output
		var err error
		run(func() { outs, err = b.ComputeBatch(qe, now) })
		PushOutputs(sink, outs)
		if err != nil {
			return fmt.Errorf("core: %s: %w", op.Name(), err)
		}
		return nil
	}
	us := op.Units()
	if !op.Parallel() {
		var err error
		run(func() {
			var errs []error
			tc := getTickContext()
			for _, u := range us {
				outs, cerr := computeUnit(op, qe, u, now, tc)
				if cerr != nil {
					errs = append(errs, fmt.Errorf("core: %s: unit %s: %w", op.Name(), u.Name, cerr))
				}
				// Outputs may alias tc; deliver them before the next unit
				// reuses the buffers.
				PushOutputs(sink, outs)
			}
			putTickContext(tc)
			err = errors.Join(errs...)
		})
		return err
	}
	var wg sync.WaitGroup
	errs := make([]error, len(us))
	for i, u := range us {
		wg.Add(1)
		task := func(i int, u *units.Unit) func() {
			return func() {
				defer wg.Done()
				tc := getTickContext()
				outs, err := computeUnit(op, qe, u, now, tc)
				if err != nil {
					errs[i] = fmt.Errorf("core: %s: unit %s: %w", op.Name(), u.Name, err)
				}
				PushOutputs(sink, outs)
				putTickContext(tc)
			}
		}(i, u)
		if sched != nil {
			sched.Submit(task)
		} else {
			go task()
		}
	}
	wg.Wait()
	return errors.Join(errs...)
}
