package core

import (
	"testing"
	"time"

	"github.com/dcdb/wintermute/internal/cache"
	"github.com/dcdb/wintermute/internal/navigator"
	"github.com/dcdb/wintermute/internal/sensor"
	"github.com/dcdb/wintermute/internal/store"
)

// aggEnv builds a query engine with one cached sensor (recent window)
// and a store holding the sensor's full history plus a store-only
// sensor with no cache at all.
func aggEnv(t *testing.T) (*QueryEngine, int64) {
	t.Helper()
	nav := navigator.New()
	caches := cache.NewSet()
	st := store.New(0)
	sec := int64(time.Second)
	if err := nav.AddSensor("/n/power"); err != nil {
		t.Fatal(err)
	}
	if err := nav.AddSensor("/n/cold"); err != nil {
		t.Fatal(err)
	}
	c := caches.GetOrCreate("/n/power", 10, time.Second)
	for i := 0; i < 100; i++ {
		r := sensor.Reading{Time: int64(i) * sec, Value: float64(i)}
		st.Insert("/n/power", r)
		if i >= 90 {
			c.Store(r) // cache holds only the newest 10
		}
		st.Insert("/n/cold", sensor.Reading{Time: int64(i) * sec, Value: 2 * float64(i)})
	}
	return NewQueryEngine(nav, caches, st), sec
}

func TestQueryEngineAggregateCacheFirst(t *testing.T) {
	qe, sec := aggEnv(t)
	// Relative window inside the cache: served from the ring.
	a := qe.AggregateRelative("/n/power", 4*time.Second)
	if a.Count != 5 || a.Min != 95 || a.Max != 99 || a.Sum != 485 {
		t.Fatalf("cached relative aggregate = %+v", a)
	}
	// Absolute window starting before the cache's oldest: the store
	// answers with the full history.
	a = qe.AggregateAbsolute("/n/power", 0, 99*sec)
	if a.Count != 100 || a.Min != 0 || a.Max != 99 {
		t.Fatalf("store absolute aggregate = %+v", a)
	}
	// Absolute window the cache covers: served from the ring.
	a = qe.AggregateAbsolute("/n/power", 95*sec, 99*sec)
	if a.Count != 5 || a.Min != 95 {
		t.Fatalf("cached absolute aggregate = %+v", a)
	}
	// No cache at all: store fallback.
	a = qe.AggregateRelative("/n/cold", 4*time.Second)
	if a.Count != 5 || a.Max != 198 {
		t.Fatalf("store relative aggregate = %+v", a)
	}
	if a := qe.AggregateRelative("/missing", time.Minute); a.Count != 0 {
		t.Fatalf("missing sensor aggregate = %+v", a)
	}
}

func TestQueryEngineDownsample(t *testing.T) {
	qe, sec := aggEnv(t)
	buckets := qe.Downsample("/n/power", 0, 99*sec, 25*sec, nil)
	if len(buckets) != 4 {
		t.Fatalf("bucket count = %d, want 4", len(buckets))
	}
	for k, b := range buckets {
		if b.Start != int64(k)*25*sec || b.Count != 25 {
			t.Fatalf("bucket %d = %+v", k, b)
		}
	}
	// Average over each bucket reconstructs the arithmetic series.
	if v, _ := buckets[0].Value(store.AggAvg); v != 12 {
		t.Fatalf("bucket 0 avg = %v, want 12", v)
	}
}

func TestBoundSensorAggregate(t *testing.T) {
	qe, sec := aggEnv(t)
	b := qe.Bind("/n/power")
	if got, want := b.AggregateRelative(4*time.Second), qe.AggregateRelative("/n/power", 4*time.Second); got != want {
		t.Fatalf("bound relative = %+v, unbound %+v", got, want)
	}
	if got, want := b.AggregateAbsolute(0, 99*sec), qe.AggregateAbsolute("/n/power", 0, 99*sec); got != want {
		t.Fatalf("bound absolute = %+v, unbound %+v", got, want)
	}
	gb := b.Downsample(0, 99*sec, 25*sec, nil)
	ub := qe.Downsample("/n/power", 0, 99*sec, 25*sec, nil)
	if len(gb) != len(ub) {
		t.Fatalf("bound downsample %d buckets, unbound %d", len(gb), len(ub))
	}

	// The steady-state cache hit must not allocate: this is the
	// aggregation tick path of operator plugins.
	if allocs := testing.AllocsPerRun(100, func() {
		b.AggregateRelative(4 * time.Second)
	}); allocs != 0 {
		t.Fatalf("bound cached AggregateRelative allocates %.1f/op, want 0", allocs)
	}
}
