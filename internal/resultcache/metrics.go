package resultcache

import (
	"github.com/dcdb/wintermute/internal/telemetry"
)

// RegisterMetrics exposes the cache's hit/stale/miss counters and
// entry count through the registry as callback metrics reading the
// same atomics Stats reports, so /metrics can never disagree with the
// Stats endpoint. It returns the handles; the owner must Close them
// before discarding the cache. A nil cache or registry registers
// nothing.
func (c *Cache) RegisterMetrics(reg *telemetry.Registry) []*telemetry.FuncHandle {
	if c == nil || reg == nil {
		return nil
	}
	return []*telemetry.FuncHandle{
		reg.CounterFunc("dcdb_resultcache_hits_total",
			"Result-cache lookups served exactly (entry provably current).",
			func() float64 { return float64(c.hits.Load()) }),
		reg.CounterFunc("dcdb_resultcache_stale_total",
			"Result-cache lookups served within the bounded-staleness TTL.",
			func() float64 { return float64(c.stale.Load()) }),
		reg.CounterFunc("dcdb_resultcache_misses_total",
			"Result-cache lookups that found nothing servable.",
			func() float64 { return float64(c.misses.Load()) }),
		reg.GaugeFunc("dcdb_resultcache_entries",
			"Memoized query results currently cached.",
			func() float64 { return float64(c.Len()) }),
	}
}
