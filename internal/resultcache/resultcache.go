// Package resultcache memoizes read-path query results for the serving
// tier: dashboards issue the same hot-window aggregates over and over,
// and recomputing them per request makes query cost scale with viewer
// count instead of data change rate ("Operational Data Analytics in
// Practice", PAPERS.md).
//
// The cache is a sharded LRU keyed on (topic-set digest, result kind,
// window, step). Invalidation is write-through: the ingest path
// publishes per-topic version counters and high-water marks (Note), and
// every lookup revalidates its entry against them — an entry whose
// window could overlap data written since it was filled is either
// recomputed or, when a bounded-staleness TTL is configured, served
// stale for at most that long. With TTL zero the cache is strict:
// cached answers are indistinguishable from uncached ones.
//
// The validity protocol (see Stamp) exploits the dominant ingest shape:
// monitoring data arrives in timestamp order, and dashboard windows end
// at or before the ingest frontier. In-order writes strictly beyond an
// entry's window end cannot change its result, so hot entries survive
// continuous ingest; any out-of-order write — or a retention prune —
// invalidates conservatively.
package resultcache

import (
	"container/list"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dcdb/wintermute/internal/sensor"
)

// shardCount stripes both the LRU and the version registry; a power of
// two so the shard index is a mask (the cache.Set/tsdb sharding idiom).
const shardCount = 64

// Kind discriminates what a cached entry holds: one merged aggregate,
// a downsampled bucket series, or a raw reading range.
type Kind uint8

// The memoizable result kinds. The aggregation operator is deliberately
// not part of the key: aggregate entries carry every moment (count,
// sum, min, max), so one cached window answers avg, min, max, sum and
// count alike.
const (
	KindAggregate Kind = iota + 1
	KindDownsample
	KindRange
)

// Key identifies one memoizable query: the digest of its expanded topic
// set, the result kind, and the absolute window [Start, End] with the
// downsampling step (0 when none). Callers should only cache windows
// whose boundaries are step-aligned — dashboards align their windows,
// so aligned keys are the ones that repeat.
type Key struct {
	// Digest identifies the expanded, ordered topic set (DigestTopics).
	Digest uint64
	// Kind is the result kind stored under this key.
	Kind Kind
	// Start and End bound the absolute query window (inclusive,
	// nanoseconds).
	Start, End int64
	// Step is the downsampling step in nanoseconds, 0 for plain
	// aggregates and ranges.
	Step int64
}

// DigestTopics returns the FNV-1a digest of an ordered topic list, the
// Digest component of a Key. Callers must pass topics in a canonical
// order (wildcard expansion is sorted); a wildcard whose expansion
// changes — a new sensor appearing under the prefix — therefore changes
// the digest and naturally misses the old entry.
func DigestTopics(topics []sensor.Topic) uint64 {
	h := uint64(14695981039346656037)
	for _, t := range topics {
		for i := 0; i < len(t); i++ {
			h ^= uint64(t[i])
			h *= 1099511628211
		}
		h ^= 0xff // topic separator, so ["/a","/b"] != ["/a/b"]
		h *= 1099511628211
	}
	return h
}

// Stamp is the invalidation snapshot paired with a cached value. The
// caller takes it with Begin BEFORE computing the result: any write
// landing during the computation then shows up as a version mismatch at
// lookup time, conservatively invalidating the entry.
type Stamp struct {
	// VerSum is the sum of the per-topic write versions plus the prune
	// generation. Unchanged sum == no writes or prunes at all: the entry
	// is exact.
	VerSum uint64
	// OOOSum counts out-of-order writes (plus the prune generation).
	OOOSum uint64
	// MinHWM is the smallest per-topic high-water mark at fill time.
	// When every topic's frontier already sat at or beyond the window
	// end, later in-order writes land strictly after it and cannot
	// change the result.
	MinHWM int64
}

// topicVersion is one topic's write-visibility state. The counters are
// atomics so Begin reads them without the owning shard's write lock;
// Note still updates them under mu so ver/ooo/hwm stay a unit.
type topicVersion struct {
	mu  sync.Mutex
	ver atomic.Uint64
	ooo atomic.Uint64
	hwm atomic.Int64
}

// verShard is one stripe of the per-topic version registry.
type verShard struct {
	mu sync.RWMutex
	m  map[sensor.Topic]*topicVersion
}

// entry is one cached result with its invalidation stamp.
type entry struct {
	key    Key
	stamp  Stamp
	filled time.Time
	value  any
}

// lruShard is one stripe of the result LRU.
type lruShard struct {
	mu      sync.Mutex
	entries map[Key]*list.Element
	order   *list.List // front = most recently used
}

// Stats is a point-in-time cache summary.
type Stats struct {
	// Hits counts lookups served exactly (entry provably current).
	Hits uint64
	// Stale counts lookups served within the bounded-staleness TTL
	// despite a version mismatch.
	Stale uint64
	// Misses counts lookups that found nothing servable.
	Misses uint64
	// Entries is the current number of cached results.
	Entries int
}

// Cache is a sharded LRU of memoized query results with write-through
// invalidation. All methods are safe for concurrent use.
//
// The lock hierarchy below is enforced by cmd/invlint: version-registry
// locks nest around the per-topic state, and the LRU stripe lock is a
// leaf never held across either (Get revalidates after releasing it).
//
//lint:lockorder verShard.mu < topicVersion.mu
//lint:lockorder topicVersion.mu < lruShard.mu
type Cache struct {
	maxPerShard int
	ttl         time.Duration

	// pruneGen folds retention passes into every stamp: a prune changes
	// answers without any per-topic write, so bumping it invalidates
	// every entry at once.
	pruneGen atomic.Uint64

	vers   [shardCount]verShard
	shards [shardCount]lruShard

	hits, stale, misses atomic.Uint64
}

// New builds a cache holding up to size entries (rounded up to the
// shard count), serving version-mismatched entries for at most ttl
// after fill. size <= 0 returns nil — a nil *Cache is a valid always-
// miss cache, so call sites need no guards. ttl 0 is strict: a cached
// answer is only served while provably identical to a fresh compute.
func New(size int, ttl time.Duration) *Cache {
	if size <= 0 {
		return nil
	}
	per := (size + shardCount - 1) / shardCount
	c := &Cache{maxPerShard: per, ttl: ttl}
	for i := range c.vers {
		c.vers[i].m = make(map[sensor.Topic]*topicVersion)
	}
	for i := range c.shards {
		c.shards[i].entries = make(map[Key]*list.Element)
		c.shards[i].order = list.New()
	}
	return c
}

// Note publishes one ingested batch for topic covering timestamps
// [minT, maxT]: the write-through invalidation feed. Call it AFTER the
// readings are visible in the backend, so a reader that observes the
// new version also observes the data. A batch at or below the topic's
// previous high-water mark counts as out of order.
func (c *Cache) Note(topic sensor.Topic, minT, maxT int64) {
	if c == nil {
		return
	}
	vs := &c.vers[topic.Hash()&(shardCount-1)]
	vs.mu.RLock()
	tv := vs.m[topic]
	if tv != nil {
		tv.note(minT, maxT)
		vs.mu.RUnlock()
		return
	}
	vs.mu.RUnlock()
	vs.mu.Lock()
	if tv = vs.m[topic]; tv == nil {
		tv = &topicVersion{}
		tv.hwm.Store(math.MinInt64)
		vs.m[topic] = tv
	}
	tv.note(minT, maxT)
	vs.mu.Unlock()
}

// note updates one topic's version state for a batch spanning
// [minT, maxT].
func (tv *topicVersion) note(minT, maxT int64) {
	tv.mu.Lock()
	tv.ver.Add(1)
	if minT <= tv.hwm.Load() {
		tv.ooo.Add(1)
	}
	if maxT > tv.hwm.Load() {
		tv.hwm.Store(maxT)
	}
	tv.mu.Unlock()
}

// NotePrune invalidates every cached entry at once: retention removed
// data, so any window may now answer differently. Wired to the
// backend's prune hook (tsdb.Options.OnPrune).
func (c *Cache) NotePrune() {
	if c == nil {
		return
	}
	c.pruneGen.Add(1)
}

// Begin snapshots the invalidation state of a topic set. Take the stamp
// before computing the result it will guard; hand both to Put.
//
// Read order matters: each topic's high-water mark and out-of-order
// counter are read before its version counter, so any state the stamp
// claims implies the corresponding version bump — and, because Note
// runs after the data lands, implies the computation that follows will
// observe those readings. Overstating ver is safe (the entry validates
// as current only if the compute saw the write); overstating hwm is not
// (it would unlock the beyond-window shortcut for a write the compute
// may have missed).
func (c *Cache) Begin(topics []sensor.Topic) Stamp {
	if c == nil {
		return Stamp{}
	}
	st := Stamp{MinHWM: math.MaxInt64}
	for _, t := range topics {
		vs := &c.vers[t.Hash()&(shardCount-1)]
		vs.mu.RLock()
		tv := vs.m[t]
		vs.mu.RUnlock()
		if tv == nil {
			// Never written through this cache: no frontier to reason
			// about, so disable the beyond-window shortcut for the set.
			st.MinHWM = math.MinInt64
			continue
		}
		if h := tv.hwm.Load(); h < st.MinHWM {
			st.MinHWM = h
		}
		st.OOOSum += tv.ooo.Load()
		st.VerSum += tv.ver.Load()
	}
	g := c.pruneGen.Load()
	st.VerSum += g
	st.OOOSum += g
	return st
}

// Put stores a result under key, guarded by the stamp taken (with
// Begin, over the same topic set the digest covers) before the result
// was computed. The value is shared with every future hit: it must be
// treated as immutable by all parties.
func (c *Cache) Put(key Key, st Stamp, value any) {
	if c == nil {
		return
	}
	sh := &c.shards[shardFor(key)]
	e := &entry{key: key, stamp: st, filled: time.Now(), value: value}
	sh.mu.Lock()
	if el, ok := sh.entries[key]; ok {
		el.Value = e
		sh.order.MoveToFront(el)
	} else {
		sh.entries[key] = sh.order.PushFront(e)
		for sh.order.Len() > c.maxPerShard {
			last := sh.order.Back()
			sh.order.Remove(last)
			delete(sh.entries, last.Value.(*entry).key)
		}
	}
	sh.mu.Unlock()
}

// Get returns the cached value for key if a servable entry exists:
// provably current (no writes to the topic set since fill, or only
// in-order writes strictly beyond the window end), or within the
// bounded-staleness TTL. topics must be the same canonical set the
// key's digest was computed from. Entries that are neither current nor
// within the TTL are evicted and reported as misses.
func (c *Cache) Get(key Key, topics []sensor.Topic) (any, bool) {
	if c == nil {
		return nil, false
	}
	sh := &c.shards[shardFor(key)]
	sh.mu.Lock()
	el, ok := sh.entries[key]
	if !ok {
		sh.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	e := el.Value.(*entry)
	sh.order.MoveToFront(el)
	sh.mu.Unlock()

	// Revalidate outside the LRU stripe lock (lock order: version locks
	// are never taken under lruShard.mu).
	cur := c.Begin(topics)
	switch {
	case cur.VerSum == e.stamp.VerSum:
		// Nothing written or pruned since fill: exact.
		c.hits.Add(1)
		return e.value, true
	case cur.OOOSum == e.stamp.OOOSum && e.stamp.MinHWM >= key.End:
		// Only in-order writes since fill, and at fill every topic's
		// frontier already sat at or beyond the window end — so each of
		// those writes carries a timestamp strictly after End and cannot
		// change this window. Exact despite the version delta.
		c.hits.Add(1)
		return e.value, true
	case c.ttl > 0 && time.Since(e.filled) <= c.ttl:
		c.stale.Add(1)
		return e.value, true
	}
	sh.mu.Lock()
	// Evict only if the slot still holds the entry we judged invalid.
	if el2, ok := sh.entries[key]; ok && el2 == el && el2.Value.(*entry) == e {
		sh.order.Remove(el2)
		delete(sh.entries, key)
	}
	sh.mu.Unlock()
	c.misses.Add(1)
	return nil, false
}

// Len returns the current number of cached entries.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += sh.order.Len()
		sh.mu.Unlock()
	}
	return n
}

// Stats returns hit/stale/miss counters and the entry count.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	return Stats{
		Hits:    c.hits.Load(),
		Stale:   c.stale.Load(),
		Misses:  c.misses.Load(),
		Entries: c.Len(),
	}
}

// shardFor mixes a key into its LRU stripe.
func shardFor(k Key) uint64 {
	h := k.Digest
	h ^= uint64(k.Start) * 0x9e3779b97f4a7c15
	h ^= uint64(k.End) * 0xc2b2ae3d27d4eb4f
	h ^= uint64(k.Step) + uint64(k.Kind)
	h ^= h >> 29
	return h & (shardCount - 1)
}
