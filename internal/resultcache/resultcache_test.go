package resultcache

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/dcdb/wintermute/internal/sensor"
)

var topicsA = []sensor.Topic{"/r1/n0/power"}

func fill(c *Cache, key Key, topics []sensor.Topic, v any) {
	st := c.Begin(topics)
	c.Put(key, st, v)
}

func TestDigestTopics(t *testing.T) {
	a := DigestTopics([]sensor.Topic{"/a", "/b"})
	if a != DigestTopics([]sensor.Topic{"/a", "/b"}) {
		t.Fatal("digest not deterministic")
	}
	if a == DigestTopics([]sensor.Topic{"/b", "/a"}) {
		t.Fatal("digest ignores order")
	}
	if a == DigestTopics([]sensor.Topic{"/a/b"}) {
		t.Fatal("digest misses the topic separator")
	}
	if DigestTopics(nil) == a {
		t.Fatal("empty set collides")
	}
}

func TestNilCache(t *testing.T) {
	var c *Cache
	if c2 := New(0, 0); c2 != nil {
		t.Fatal("size 0 should return nil")
	}
	c.Note("/a", 1, 1)
	c.NotePrune()
	key := Key{Digest: 1, Kind: KindAggregate, Start: 0, End: 10}
	c.Put(key, c.Begin(topicsA), "v")
	if _, ok := c.Get(key, topicsA); ok {
		t.Fatal("nil cache served a value")
	}
	if c.Len() != 0 || c.Stats() != (Stats{}) {
		t.Fatal("nil cache has state")
	}
}

func TestExactHit(t *testing.T) {
	c := New(64, 0)
	c.Note("/r1/n0/power", 0, 10)
	key := Key{Digest: DigestTopics(topicsA), Kind: KindAggregate, Start: 0, End: 10}
	fill(c, key, topicsA, "result")
	v, ok := c.Get(key, topicsA)
	if !ok || v != "result" {
		t.Fatalf("Get = %v, %v", v, ok)
	}
	if _, ok := c.Get(Key{Digest: key.Digest, Kind: KindDownsample, Start: 0, End: 10}, topicsA); ok {
		t.Fatal("kind is not part of the key")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestWriteInvalidates: a write into a cached window must invalidate
// the entry (strict mode), and the entry is evicted on the failed Get.
func TestWriteInvalidates(t *testing.T) {
	c := New(64, 0)
	c.Note("/r1/n0/power", 0, 10)
	key := Key{Digest: DigestTopics(topicsA), Kind: KindAggregate, Start: 0, End: 10}
	fill(c, key, topicsA, "stale")
	c.Note("/r1/n0/power", 5, 5) // out-of-order write inside the window
	if _, ok := c.Get(key, topicsA); ok {
		t.Fatal("served a result invalidated by an in-window write")
	}
	if c.Len() != 0 {
		t.Fatalf("invalid entry not evicted: Len = %d", c.Len())
	}
}

// TestFrontierShortcut: in-order writes strictly beyond the window end
// cannot change the result, so the entry stays servable — but only when
// the frontier had already reached the window end at fill time.
func TestFrontierShortcut(t *testing.T) {
	c := New(64, 0)
	c.Note("/r1/n0/power", 0, 10)
	key := Key{Digest: DigestTopics(topicsA), Kind: KindAggregate, Start: 0, End: 10}
	fill(c, key, topicsA, "v")

	c.Note("/r1/n0/power", 11, 20) // in-order, beyond End
	c.Note("/r1/n0/power", 21, 30)
	if _, ok := c.Get(key, topicsA); !ok {
		t.Fatal("beyond-window in-order writes invalidated the entry")
	}

	// An out-of-order write anywhere kills the shortcut.
	c.Note("/r1/n0/power", 15, 15)
	if _, ok := c.Get(key, topicsA); ok {
		t.Fatal("out-of-order write did not invalidate")
	}
}

// TestFrontierShortRead: when the frontier had NOT reached the window
// end at fill time, later in-order writes may land inside the window —
// the shortcut must not apply.
func TestFrontierShortRead(t *testing.T) {
	c := New(64, 0)
	c.Note("/r1/n0/power", 0, 5) // frontier at 5, window ends at 10
	key := Key{Digest: DigestTopics(topicsA), Kind: KindAggregate, Start: 0, End: 10}
	fill(c, key, topicsA, "v")
	c.Note("/r1/n0/power", 6, 8) // in-order, but inside the window
	if _, ok := c.Get(key, topicsA); ok {
		t.Fatal("served a result missing an in-window write")
	}
}

// TestNeverNotedTopic: a topic with no ingest history disables the
// frontier shortcut for its whole set (there is no frontier to trust).
func TestNeverNotedTopic(t *testing.T) {
	c := New(64, 0)
	topics := []sensor.Topic{"/r1/n0/power", "/r1/n1/power"}
	c.Note("/r1/n0/power", 0, 100)
	key := Key{Digest: DigestTopics(topics), Kind: KindAggregate, Start: 0, End: 10}
	fill(c, key, topics, "v")
	if _, ok := c.Get(key, topics); !ok {
		t.Fatal("unchanged version sums must still hit")
	}
	c.Note("/r1/n0/power", 101, 110) // in-order for n0, but n1 has no frontier
	if _, ok := c.Get(key, topics); ok {
		t.Fatal("shortcut applied with a never-noted topic in the set")
	}
}

func TestNotePrune(t *testing.T) {
	c := New(64, 0)
	c.Note("/r1/n0/power", 0, 10)
	key := Key{Digest: DigestTopics(topicsA), Kind: KindAggregate, Start: 0, End: 10}
	fill(c, key, topicsA, "v")
	c.NotePrune()
	if _, ok := c.Get(key, topicsA); ok {
		t.Fatal("prune did not invalidate")
	}
}

func TestTTLStaleness(t *testing.T) {
	c := New(64, 300*time.Millisecond)
	c.Note("/r1/n0/power", 0, 10)
	key := Key{Digest: DigestTopics(topicsA), Kind: KindAggregate, Start: 0, End: 10}
	fill(c, key, topicsA, "old")
	c.Note("/r1/n0/power", 5, 5) // invalidating write
	if v, ok := c.Get(key, topicsA); !ok || v != "old" {
		t.Fatalf("within TTL: Get = %v, %v (want stale hit)", v, ok)
	}
	if st := c.Stats(); st.Stale != 1 {
		t.Fatalf("stats = %+v, want one stale", st)
	}
	time.Sleep(400 * time.Millisecond)
	if _, ok := c.Get(key, topicsA); ok {
		t.Fatal("served past the staleness bound")
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(64, 0) // one entry per shard
	for i := 0; i < 256; i++ {
		key := Key{Digest: uint64(i), Kind: KindRange, Start: int64(i), End: int64(i + 1)}
		fill(c, key, topicsA, i)
	}
	if n := c.Len(); n == 0 || n > 64 {
		t.Fatalf("Len = %d, want (0, 64]", n)
	}
}

// TestConcurrency drives Note/Begin/Put/Get from many goroutines; under
// -race this validates the locking, and every served value must be
// consistent with strict mode (a hit after the final quiesce is exact).
func TestConcurrency(t *testing.T) {
	c := New(128, 0)
	topics := make([]sensor.Topic, 8)
	for i := range topics {
		topics[i] = sensor.Topic(fmt.Sprintf("/r%d/power", i))
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tp := topics[g]
			for i := 0; i < 500; i++ {
				c.Note(tp, int64(i), int64(i))
				if i%100 == 0 {
					c.NotePrune()
				}
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			set := topics[g : g+2]
			key := Key{Digest: DigestTopics(set), Kind: KindAggregate, Start: 0, End: 1 << 40}
			for i := 0; i < 300; i++ {
				if v, ok := c.Get(key, set); ok {
					if v.(int) < 0 {
						t.Error("corrupt value")
						return
					}
				} else {
					fill(c, key, set, i)
				}
			}
		}(g)
	}
	wg.Wait()
}
