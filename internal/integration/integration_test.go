// Package integration exercises the whole stack end to end: simulated
// hardware sampled by Pushers, readings forwarded over the MQTT-style
// transport into a Collect Agent's storage backend, Wintermute operators
// running on both sides of the pipeline (paper §IV-d), and the RESTful
// API observing the results.
package integration

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"
	"time"

	"github.com/dcdb/wintermute/internal/collect"
	"github.com/dcdb/wintermute/internal/core"
	"github.com/dcdb/wintermute/internal/plugins/aggregator"
	_ "github.com/dcdb/wintermute/internal/plugins/all"
	"github.com/dcdb/wintermute/internal/plugins/health"
	"github.com/dcdb/wintermute/internal/pusher"
	"github.com/dcdb/wintermute/internal/rest"
	"github.com/dcdb/wintermute/internal/samplers"
	"github.com/dcdb/wintermute/internal/sensor"
	"github.com/dcdb/wintermute/internal/sim/hardware"
	"github.com/dcdb/wintermute/internal/sim/workload"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestFullPipelineAcrossComponents(t *testing.T) {
	// Collect Agent with broker and storage backend.
	agent, err := collect.New(collect.Config{ListenMQTT: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()

	// Two Pushers, one node each: n01 runs HPL (hot), n02 idles (cool).
	apps := []string{"hpl", "idle"}
	var pushers []*pusher.Pusher
	for i, app := range apps {
		p, err := pusher.New(pusher.Config{
			Name:     fmt.Sprintf("p%d", i),
			MQTTAddr: agent.Addr(),
		})
		if err != nil {
			t.Fatal(err)
		}
		defer p.Stop()
		node := hardware.NewNode(hardware.Config{Cores: 4, Seed: int64(i + 1)})
		node.SetApp(workload.MustNew(app, int64(i), 3600), 0)
		path := sensor.Topic(fmt.Sprintf("/r01/c01/s%02d/", i+1))
		if err := p.AddSampler(samplers.NewPowerSim(node, path, time.Second)); err != nil {
			t.Fatal(err)
		}
		// Pusher-side Wintermute stage 1: smoothed node power.
		raw, _ := json.Marshal(aggregator.Config{
			OperatorConfig: core.OperatorConfig{
				Name:    "smooth" + fmt.Sprint(i),
				Inputs:  []string{"power"},
				Outputs: []string{"power-avg"},
				Unit:    string(path),
			},
			Operation: aggregator.Mean,
			WindowMs:  10000,
		})
		if err := p.Manager.LoadPlugin("aggregator", raw); err != nil {
			t.Fatal(err)
		}
		pushers = append(pushers, p)
	}

	// Drive 120 simulated seconds on both pushers: sample then compute.
	// Operator outputs flow through the same sink and thus also reach the
	// Collect Agent over MQTT.
	for ts := 0; ts < 120; ts++ {
		now := time.Unix(int64(ts), 0)
		for _, p := range pushers {
			p.SampleOnce(now)
			if ts >= 3 {
				if err := p.TickOnce(now); err != nil {
					t.Fatal(err)
				}
			}
		}
	}

	// All raw and derived sensors must arrive in the agent's store.
	waitFor(t, "store ingestion", func() bool {
		return agent.Store.Count("/r01/c01/s01/power") >= 100 &&
			agent.Store.Count("/r01/c01/s02/power") >= 100 &&
			agent.Store.Count("/r01/c01/s01/power-avg") >= 100
	})

	// The pipeline's numbers are physical: HPL node hot, idle node cool.
	hot, _ := agent.QE.Latest("/r01/c01/s01/power-avg")
	cool, _ := agent.QE.Latest("/r01/c01/s02/power-avg")
	if hot.Value < 150 || cool.Value > 120 {
		t.Fatalf("pipeline values wrong: hpl %v W, idle %v W", hot.Value, cool.Value)
	}

	// Collect-side Wintermute stage 2: health grading on the smoothed
	// power produced by stage 1 in a different process component.
	raw, _ := json.Marshal(health.Config{
		OperatorConfig: core.OperatorConfig{
			Name:    "power-health",
			Inputs:  []string{"<bottomup>power-avg"},
			Outputs: []string{"<bottomup>power-health"},
		},
		WarnAbove:    150,
		CritAbove:    400,
		StaleAfterMs: 1 << 30,
	})
	if err := agent.Manager.LoadPlugin("health", raw); err != nil {
		t.Fatal(err)
	}
	op, _ := agent.Manager.Operator("power-health")
	if len(op.Units()) != 2 {
		t.Fatalf("collect-side units = %d, want one per node", len(op.Units()))
	}
	if err := agent.TickOnce(time.Unix(121, 0)); err != nil {
		t.Fatal(err)
	}
	h1, ok1 := agent.QE.Latest("/r01/c01/s01/power-health")
	h2, ok2 := agent.QE.Latest("/r01/c01/s02/power-health")
	if !ok1 || !ok2 {
		t.Fatal("health outputs missing")
	}
	if h1.Value != health.StatusWarning || h2.Value != health.StatusOK {
		t.Fatalf("health grades = %v/%v, want warning/ok", h1.Value, h2.Value)
	}

	// REST on the Collect Agent observes everything.
	srv, err := rest.Serve("127.0.0.1:0", agent.Manager, agent.QE)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/average?sensor=/r01/c01/s01/power&window=60s")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var avg struct {
		Average float64 `json:"average"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&avg); err != nil {
		t.Fatal(err)
	}
	if avg.Average < 150 {
		t.Fatalf("REST average = %v, want loaded node power", avg.Average)
	}
}

func TestOnDemandAcrossREST(t *testing.T) {
	agent, err := collect.New(collect.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()
	for i := 0; i < 60; i++ {
		agent.Ingest("/r1/n1/temp", sensor.Reading{Value: 40 + float64(i%5), Time: int64(i) * int64(time.Second)})
	}
	raw, _ := json.Marshal(aggregator.Config{
		OperatorConfig: core.OperatorConfig{
			Name:    "od-avg",
			Mode:    "ondemand",
			Inputs:  []string{"temp"},
			Outputs: []string{"temp-avg"},
			Unit:    "/r1/n1/",
		},
		Operation: aggregator.Mean,
		WindowMs:  60000,
	})
	if err := agent.Manager.LoadPlugin("aggregator", raw); err != nil {
		t.Fatal(err)
	}
	srv, err := rest.Serve("127.0.0.1:0", agent.Manager, agent.QE)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Post("http://"+srv.Addr()+"/compute?operator=od-avg&unit=/r1/n1/", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var outs []struct {
		Topic string  `json:"topic"`
		Value float64 `json:"value"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&outs); err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 || outs[0].Topic != "/r1/n1/temp-avg" {
		t.Fatalf("on-demand outs = %+v", outs)
	}
	if outs[0].Value < 40 || outs[0].Value > 45 {
		t.Fatalf("on-demand average = %v", outs[0].Value)
	}
	// On-demand output must NOT have been persisted as a sensor.
	if _, ok := agent.QE.Latest("/r1/n1/temp-avg"); ok {
		t.Fatal("on-demand output leaked into the data path")
	}
}

// TestPersistentAgentRESTIdenticalAfterKill runs the PR3 acceptance
// shape end to end: a Collect Agent on a persistent backend ingests over
// MQTT-style transport, REST answers are snapshotted, the agent is
// killed without Close, and a recovered agent must serve byte-identical
// REST /query responses.
func TestPersistentAgentRESTIdenticalAfterKill(t *testing.T) {
	dir := t.TempDir()
	agent, err := collect.New(collect.Config{StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	topics := []sensor.Topic{"/r01/n01/power", "/r01/n02/power", "/r02/n01/temp"}
	for ti, tp := range topics {
		rs := make([]sensor.Reading, 500)
		for i := range rs {
			rs[i] = sensor.Reading{
				Value: float64(200 + ti*50 + i%13),
				Time:  int64(i) * int64(time.Second),
			}
		}
		agent.IngestBatch(tp, rs)
	}
	// One flush mid-life so both segments and the WAL feed recovery.
	if err := agent.DB.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, tp := range topics {
		agent.Ingest(tp, sensor.Reading{Value: 9999, Time: 1000 * int64(time.Second)})
	}

	queryURL := func(addr string, tp sensor.Topic) string {
		return fmt.Sprintf("http://%s/query?sensor=%s&from=0&to=%d",
			addr, tp, 2000*int64(time.Second))
	}
	fetch := func(url string) string {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	srv, err := rest.Serve("127.0.0.1:0", agent.Manager, agent.QE)
	if err != nil {
		t.Fatal(err)
	}
	before := map[sensor.Topic]string{}
	for _, tp := range topics {
		before[tp] = fetch(queryURL(srv.Addr(), tp))
	}
	srv.Close()
	// Kill: no Agent.Close, heads unflushed; Abandon drops the storage
	// directory lock the way process death would.
	agent.Manager.Close()
	agent.DB.Abandon()

	agent2, err := collect.New(collect.Config{StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer agent2.Close()
	srv2, err := rest.Serve("127.0.0.1:0", agent2.Manager, agent2.QE)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	for _, tp := range topics {
		if got := fetch(queryURL(srv2.Addr(), tp)); got != before[tp] {
			t.Fatalf("%s: REST /query diverged after crash recovery\nbefore: %.120s\nafter:  %.120s",
				tp, before[tp], got)
		}
	}
	// The recovered agent keeps ingesting and reports a sane /storage.
	var stats struct {
		Kind          string `json:"kind"`
		TotalReadings int    `json:"total_readings"`
	}
	resp, err := http.Get("http://" + srv2.Addr() + "/storage")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Kind != "tsdb" || stats.TotalReadings != 3*501 {
		t.Fatalf("/storage after recovery = %+v", stats)
	}
}
