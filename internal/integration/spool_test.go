package integration

import (
	"testing"
	"time"

	"github.com/dcdb/wintermute/internal/collect"
	"github.com/dcdb/wintermute/internal/sensor"
	"github.com/dcdb/wintermute/internal/telemetry"
	"github.com/dcdb/wintermute/internal/transport"
)

// TestSpoolRecoveryAcrossAgentRestart is the end-to-end at-least-once
// story: a spooling pusher keeps accepting batches while the agent is
// down (overflowing to disk), persists the remainder on Close, and a
// restarted pusher (same spool directory) replays it — in order — into
// a restarted agent, which stores every reading exactly once.
func TestSpoolRecoveryAcrossAgentRestart(t *testing.T) {
	storeDir := t.TempDir()
	spoolDir := t.TempDir()
	agent, err := collect.New(collect.Config{ListenMQTT: "127.0.0.1:0", StoreDir: storeDir})
	if err != nil {
		t.Fatalf("starting agent: %v", err)
	}
	addr := agent.Addr()
	topic := sensor.Topic("/r01/c01/n01/power")

	opts := transport.Options{
		SpoolBatches: 4,
		SpoolDir:     spoolDir,
		RetryMin:     5 * time.Millisecond,
		DrainTimeout: 200 * time.Millisecond,
	}
	client, err := transport.DialOptions(addr, opts)
	if err != nil {
		t.Fatalf("dialling pusher client: %v", err)
	}
	// The agent dies mid-run. Publishes keep succeeding: 4 batches stay
	// in the client's memory spool, the rest overflow to disk.
	if err := agent.Close(); err != nil {
		t.Fatalf("closing first agent: %v", err)
	}
	const batches = 24
	for i := 0; i < batches; i++ {
		rs := []sensor.Reading{{Time: int64(i), Value: float64(i * 10)}}
		if err := client.Publish(topic, rs); err != nil {
			t.Fatalf("publish %d with agent down: %v", i, err)
		}
	}
	if st := client.Stats(); st.SpoolDisk == 0 {
		t.Fatalf("no disk overflow after %d batches, stats %+v", batches, st)
	}
	// Close cannot drain (nothing listening): the whole backlog persists.
	if err := client.Close(); err != nil {
		t.Fatalf("close with disk spool configured: %v", err)
	}

	// The agent restarts on the same address; a new pusher incarnation
	// with the same spool directory replays the backlog.
	reg := telemetry.NewRegistry()
	agent2, err := collect.New(collect.Config{ListenMQTT: addr, StoreDir: storeDir, Metrics: reg})
	if err != nil {
		t.Fatalf("restarting agent: %v", err)
	}
	defer agent2.Close()
	client2, err := transport.DialOptions(addr, opts)
	if err != nil {
		t.Fatalf("redialling pusher client: %v", err)
	}
	if err := client2.Close(); err != nil { // Close drains the replayed spool
		t.Fatalf("draining replayed spool: %v", err)
	}

	// The ingest fan-in may still be flushing the last worker queues.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if v, _ := reg.Value("dcdb_ingest_readings_total"); uint64(v) >= batches {
			break
		}
		if time.Now().After(deadline) {
			v, _ := reg.Value("dcdb_ingest_readings_total")
			t.Fatalf("ingested %v of %d replayed readings before timeout", v, batches)
		}
		time.Sleep(5 * time.Millisecond)
	}
	got := agent2.Store.Range(topic, 0, int64(batches)+1, nil)
	if len(got) != batches {
		t.Fatalf("store holds %d readings after replay, want %d", len(got), batches)
	}
	for i, r := range got {
		if r.Time != int64(i) || r.Value != float64(i*10) {
			t.Fatalf("reading %d = {t:%d v:%g}: replay out of order or corrupted", i, r.Time, r.Value)
		}
	}
}

// TestDedupAcrossReconnect kills the pusher's connection repeatedly
// mid-stream: the spool redelivers everything unacknowledged, and the
// agent's (epoch, topic) high-water mark must absorb every duplicate —
// the store ends up with each reading exactly once.
func TestDedupAcrossReconnect(t *testing.T) {
	reg := telemetry.NewRegistry()
	agent, err := collect.New(collect.Config{ListenMQTT: "127.0.0.1:0", Metrics: reg})
	if err != nil {
		t.Fatalf("starting agent: %v", err)
	}
	defer agent.Close()
	topic := sensor.Topic("/r01/c01/n02/temp")

	client, err := transport.DialOptions(agent.Addr(), transport.Options{
		SpoolBatches: 32,
		RetryMin:     5 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("dialling: %v", err)
	}
	const batches = 150
	for i := 0; i < batches; i++ {
		rs := []sensor.Reading{{Time: int64(i), Value: float64(i)}}
		if err := client.Publish(topic, rs); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
		if i%40 == 20 {
			agent.Broker.KillConnections(-1)
		}
	}
	if err := client.Close(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if client.Stats().Reconnects == 0 {
		t.Fatal("kills produced no reconnects")
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		if v, _ := reg.Value("dcdb_ingest_readings_total"); uint64(v) >= batches {
			break
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	got := agent.Store.Range(topic, 0, int64(batches)+1, nil)
	if len(got) != batches {
		t.Fatalf("store holds %d readings, want exactly %d (duplicates or loss)", len(got), batches)
	}
	seen := make(map[int64]bool)
	for _, r := range got {
		if seen[r.Time] {
			t.Fatalf("timestamp %d stored twice — dedup failed", r.Time)
		}
		seen[r.Time] = true
	}
	// When the kills interrupted in-flight batches, redeliveries happened
	// and the dedup counter shows the absorbed duplicates.
	if st := client.Stats(); st.Redeliveries > 0 {
		if v, _ := reg.Value("dcdb_ingest_dup_batches_total"); v == 0 {
			t.Logf("note: %d redeliveries, 0 dups dropped (first copies never routed)", st.Redeliveries)
		}
	}
}
