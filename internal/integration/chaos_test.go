package integration

import (
	"testing"
	"time"

	"github.com/dcdb/wintermute/internal/chaos"
	"github.com/dcdb/wintermute/internal/testseed"
)

// TestChaosSmokeRecovery drives a small pusher fleet through the real
// broker → collect → tsdb → REST pipeline while one pusher connection is
// killed mid-run and one fsync window stalls the WAL's group commits,
// then reconciles the ledger. The pushers run with the at-least-once
// spool (the scenario default), so the bar is absolute: every sent
// reading must be in the store exactly once — the killed connection's
// in-flight batches are redelivered after the automatic reconnect and
// deduplicated by the agent. This is the integration-tier entry point
// into the chaos harness; `make chaos` runs the full schedule at scale.
func TestChaosSmokeRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos smoke takes ~5s of wall clock")
	}
	s := chaos.Scenario{
		Seed:      testseed.Seed(t),
		Pushers:   6,
		Topics:    3,
		Rate:      20,
		BatchSize: 4,
		Duration:  3 * time.Second,
		Faults: []chaos.FaultSpec{
			{Kind: chaos.FaultConnKill, At: 1 * time.Second, Kill: 1},
			{Kind: chaos.FaultFsyncStall, At: 1500 * time.Millisecond, For: time.Second, P: 1, Stall: 15 * time.Millisecond},
		},
		IngestWorkers: 2,
	}
	v, err := s.Run()
	if err != nil {
		t.Fatalf("scenario: %v", err)
	}
	if !v.Pass {
		t.Fatalf("chaos smoke failed: %v\naccounting: %+v", v.Failures, v.Accounting)
	}
	if v.ConnsKilled != 1 {
		t.Fatalf("ConnsKilled = %d, want 1", v.ConnsKilled)
	}
	if v.InjectedFS["sync/wal"] == 0 {
		t.Fatalf("no WAL fsync stalls injected: %v", v.InjectedFS)
	}
	// Zero loss: the kill's in-flight collateral must have been
	// redelivered from the spool and stored exactly once.
	if v.Accounting.Stored != v.Accounting.Sent {
		t.Fatalf("stored %d of %d sent readings — the spool lost data",
			v.Accounting.Stored, v.Accounting.Sent)
	}
	if v.Accounting.UnackedDropped != 0 {
		t.Fatalf("%d unacked drops under spooling, want 0", v.Accounting.UnackedDropped)
	}
	// Exactness of the reconciliation itself: delivered readings and the
	// agent's own ingest counter must agree.
	if v.IngestedReadings != v.Accounting.Delivered {
		t.Fatalf("agent ingested %d readings, ledger delivered %d",
			v.IngestedReadings, v.Accounting.Delivered)
	}
}
