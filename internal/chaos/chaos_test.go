package chaos

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/dcdb/wintermute/internal/sensor"
	"github.com/dcdb/wintermute/internal/testseed"
	"github.com/dcdb/wintermute/internal/transport"
	"github.com/dcdb/wintermute/internal/tsdb"
)

func TestClassify(t *testing.T) {
	cases := map[string]Class{
		"/x/wal/000001.wal":    ClassWAL,
		"/x/seg/000001.seg":    ClassSeg,
		"/x/seg/000001.tmp":    ClassSeg,
		"/x/meta.json":         ClassMeta,
		"/x/meta.json.tmp.now": ClassMeta,
	}
	for path, want := range cases {
		if got := classify(path); got != want {
			t.Errorf("classify(%q) = %v, want %v", path, got, want)
		}
	}
}

func TestFSInjectsWriteAndSyncFaults(t *testing.T) {
	dir := t.TempDir()
	fs := NewFS(nil, testseed.Seed(t))
	fs.Set(OpWrite, ClassWAL, Fault{P: 1})
	f, err := fs.OpenFile(filepath.Join(dir, "000001.wal"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("hello")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write error = %v, want ErrInjected", err)
	}
	// Meta-class writes are unaffected by a WAL-class rule.
	if err := fs.WriteFile(filepath.Join(dir, "meta.json"), []byte("{}"), 0o644); err != nil {
		t.Fatalf("meta write faulted by wal rule: %v", err)
	}
	fs.Clear(OpWrite, ClassWAL)
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatalf("write after clear: %v", err)
	}
	fs.Set(OpSync, ClassWAL, Fault{P: 1})
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync error = %v, want ErrInjected", err)
	}
	hits := fs.Injected()
	if hits["write/wal"] != 1 || hits["sync/wal"] != 1 {
		t.Fatalf("injected counts = %v, want write/wal=1 sync/wal=1", hits)
	}
}

func TestFSPartialWriteTearsFile(t *testing.T) {
	dir := t.TempDir()
	fs := NewFS(nil, testseed.Seed(t))
	path := filepath.Join(dir, "000001.wal")
	f, err := fs.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	fs.Set(OpWrite, ClassWAL, Fault{P: 1, Partial: true})
	payload := []byte("0123456789")
	n, err := f.Write(payload)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("write error = %v, want ErrInjected", err)
	}
	if n != len(payload)/2 {
		t.Fatalf("partial write persisted %d bytes, want %d", n, len(payload)/2)
	}
	f.Close()
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("readback: %v", err)
	}
	if string(got) != "01234" {
		t.Fatalf("torn file holds %q, want the first half %q", got, "01234")
	}
}

func TestFSStallOnlyDelaysButSucceeds(t *testing.T) {
	dir := t.TempDir()
	fs := NewFS(nil, testseed.Seed(t))
	fs.Set(OpSync, ClassWAL, Fault{P: 1, Stall: 30 * time.Millisecond, StallOnly: true})
	f, err := fs.OpenFile(filepath.Join(dir, "000001.wal"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer f.Close()
	t0 := time.Now()
	if err := f.Sync(); err != nil {
		t.Fatalf("stall-only sync failed: %v", err)
	}
	if d := time.Since(t0); d < 30*time.Millisecond {
		t.Fatalf("sync returned after %v, want >= 30ms stall", d)
	}
}

// TestFSSatisfiesTSDB runs a real database on a chaos FS with no rules
// installed: a transparent wrapper must be indistinguishable from OSFS.
func TestFSSatisfiesTSDB(t *testing.T) {
	fs := NewFS(nil, testseed.Seed(t))
	db, err := tsdb.Open(t.TempDir(), tsdb.Options{FS: fs, WALSync: true})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	topic := sensor.Topic("/r01/c01/s01/power")
	db.InsertBatch(topic, []sensor.Reading{{Time: 1, Value: 100}, {Time: 2, Value: 101}})
	if err := db.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if got := db.Range(topic, 0, 10, nil); len(got) != 2 {
		t.Fatalf("range returned %d readings, want 2", len(got))
	}
	if err := db.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

func TestLedgerClassification(t *testing.T) {
	l := NewLedger()
	topic := sensor.Topic("/n/power")
	l.RecordSent(topic, []sensor.Reading{
		{Time: 1, Value: 1.5}, // delivered + stored: delivered
		{Time: 2, Value: 2.5}, // delivered, never stored: acked-lost
		{Time: 3, Value: 3.5}, // never delivered, never stored: unacked drop
		{Time: 4, Value: 4.5}, // stored twice: duplicate
		{Time: 5, Value: 5.5}, // stored with wrong value: mismatch
	})
	l.RecordDelivered(transport.Message{Topic: topic, Readings: []sensor.Reading{
		{Time: 1, Value: 1.5}, {Time: 2, Value: 2.5}, {Time: 4, Value: 4.5}, {Time: 5, Value: 5.5},
	}})
	// A delivered reading nobody sent is a phantom.
	l.RecordDelivered(transport.Message{Topic: topic, Readings: []sensor.Reading{{Time: 99, Value: 0}}})
	stored := []sensor.Reading{
		{Time: 1, Value: 1.5},
		{Time: 4, Value: 4.5}, {Time: 4, Value: 4.5},
		{Time: 5, Value: 9.9},
		{Time: 77, Value: 0}, // stored but never sent: phantom
	}
	acct := l.Reconcile(func(sensor.Topic) []sensor.Reading { return stored })
	want := Accounting{
		Sent: 5, Delivered: 4, Stored: 3,
		AckedLost: 1, UnackedDropped: 1,
		Duplicates: 1, Phantom: 2, ValueMismatch: 1,
	}
	if acct != want {
		t.Fatalf("accounting = %+v, want %+v", acct, want)
	}
	if acct.Clean() {
		t.Fatal("accounting with losses reported Clean")
	}
}

// TestScenarioSmoke is the in-package chaos smoke: a short seeded run
// across every fault class (conn kill, fsync stall, fsync fail, torn
// WAL writes, segment failures, disk-full, slow readers, OOO flood,
// clock skew) plus standing backpressure via a one-slot ingest queue,
// with the at-least-once spool on — asserting exact zero-loss
// accounting: nothing lost, nothing duplicated, nothing corrupted.
// `make chaos-smoke` runs it under -race.
func TestScenarioSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos smoke needs a multi-second run")
	}
	seed := testseed.Seed(t)
	sc := Scenario{
		Seed:           seed,
		Pushers:        12,
		Topics:         4,
		Rate:           25,
		BatchSize:      4,
		Duration:       4 * time.Second,
		IngestWorkers:  2,
		IngestQueueCap: 1, // every enqueue exercises the backpressure path
		QueryWorkers:   2,
		Dir:            t.TempDir(),
	}
	v, err := sc.Run()
	if err != nil {
		t.Fatalf("scenario: %v", err)
	}
	t.Logf("verdict: sent=%d delivered=%d stored=%d dropped=%d reconnects=%d redeliveries=%d dups=%d slowdrops=%d rps=%.0f p99=%.1fms injected=%v killed=%d",
		v.Accounting.Sent, v.Accounting.Delivered, v.Accounting.Stored,
		v.Accounting.UnackedDropped, v.PusherReconnects, v.PusherRedeliveries,
		v.DupBatchesDropped, v.SlowReaderDrops,
		v.ReadingsPerSec, v.QueryP99Ms, v.InjectedFS, v.ConnsKilled)
	if !v.Pass {
		t.Fatalf("chaos verdict failed: %v (accounting %+v)", v.Failures, v.Accounting)
	}
	if v.Accounting.Sent == 0 || v.Accounting.Stored == 0 {
		t.Fatalf("degenerate run: accounting %+v", v.Accounting)
	}
	// Zero lost, period: with the spool on, every sent reading is stored.
	if !v.SpoolEnabled {
		t.Fatal("scenario ran without the at-least-once spool")
	}
	if v.Accounting.UnackedDropped != 0 || v.Accounting.AckedLost != 0 {
		t.Fatalf("lost readings under spooling: %+v", v.Accounting)
	}
	if v.Accounting.Stored != v.Accounting.Sent {
		t.Fatalf("stored %d of %d sent readings", v.Accounting.Stored, v.Accounting.Sent)
	}
	if v.ConnsKilled == 0 {
		t.Fatal("fault schedule killed no connections")
	}
	if v.PusherReconnects == 0 {
		t.Fatal("killed connections produced no reconnects")
	}
	if len(v.InjectedFS) == 0 {
		t.Fatal("fault schedule injected no filesystem faults")
	}
	if got := len(v.FaultClasses); got < 6 {
		t.Fatalf("scenario covered %d fault classes, want >= 6 (%v)", got, v.FaultClasses)
	}
	if v.Queries == 0 {
		t.Fatal("query workers issued no queries")
	}
}

// TestScenarioDeterministicFaults replays the same seed twice and
// expects identical fault dice — the property that makes a failing
// verdict reproducible.
func TestScenarioDeterministicFaults(t *testing.T) {
	roll := func(seed int64) []Op {
		fs := NewFS(tsdb.OSFS, seed)
		fs.Set(OpSync, ClassWAL, Fault{P: 0.5})
		var hit []Op
		for i := 0; i < 64; i++ {
			if fs.decide(OpSync, ClassWAL) != nil {
				hit = append(hit, OpSync)
			} else {
				hit = append(hit, numOps)
			}
		}
		return hit
	}
	seed := testseed.Seed(t)
	a, b := roll(seed), roll(seed)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault dice diverged at roll %d under identical seed", i)
		}
	}
}
