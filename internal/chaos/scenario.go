package chaos

import (
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/dcdb/wintermute/internal/collect"
	"github.com/dcdb/wintermute/internal/rest"
	"github.com/dcdb/wintermute/internal/sensor"
	"github.com/dcdb/wintermute/internal/sim/cluster"
	"github.com/dcdb/wintermute/internal/sim/hardware"
	"github.com/dcdb/wintermute/internal/sim/jobs"
	"github.com/dcdb/wintermute/internal/sim/workload"
	"github.com/dcdb/wintermute/internal/telemetry"
	"github.com/dcdb/wintermute/internal/transport"
	"github.com/dcdb/wintermute/internal/tsdb"
)

// FaultKind names one injectable fault class in a scenario schedule.
type FaultKind string

// The fault classes a scenario can schedule. Backpressure is not
// scheduled — it is the standing IngestQueueCap configuration — but is
// reported as an active class in the verdict when the cap is tiny.
const (
	// FaultConnKill abruptly closes live pusher connections.
	FaultConnKill FaultKind = "conn-kill"
	// FaultFsyncStall makes WAL fsyncs hang mid-group-commit.
	FaultFsyncStall FaultKind = "fsync-stall"
	// FaultFsyncFail makes WAL fsyncs return errors (degraded WAL).
	FaultFsyncFail FaultKind = "fsync-fail"
	// FaultWALTorn tears WAL appends: half the record lands, then error.
	FaultWALTorn FaultKind = "wal-torn-write"
	// FaultSegFail fails segment writes, so flushes abort and retry.
	FaultSegFail FaultKind = "seg-write-fail"
	// FaultOOOFlood makes pushers emit buffered batches in reverse
	// order, flooding the store with out-of-order timestamps.
	FaultOOOFlood FaultKind = "ooo-flood"
	// FaultClockSkew offsets pusher timestamps by a fraction of the
	// sampling step, desynchronising timestamp from arrival order.
	FaultClockSkew FaultKind = "clock-skew"
	// FaultDiskFull makes WAL appends and segment writes return ENOSPC
	// — the storage tier must degrade to memory-only serving and re-arm
	// when space returns.
	FaultDiskFull FaultKind = "disk-full"
	// FaultSlowReader attaches a subscriber that matches every topic
	// and never reads: its outbound queue fills and the broker must
	// shed forwards to it without stalling publishers or acks.
	FaultSlowReader FaultKind = "slow-reader"
)

// FaultSpec schedules one fault: Kind activates At after scenario start
// and (for the window-based kinds) deactivates after For. Zero-valued
// tuning fields pick per-kind defaults.
type FaultSpec struct {
	Kind FaultKind
	// At is the activation offset from scenario start.
	At time.Duration
	// For is the active window; ignored by conn-kill (instantaneous).
	For time.Duration
	// P is the per-operation injection probability for filesystem
	// faults (default 0.5).
	P float64
	// Stall is the fsync-stall delay (default 50ms).
	Stall time.Duration
	// Kill is how many connections conn-kill closes (default 1).
	Kill int
}

// Scenario describes one deterministic chaos run: a fleet of simulated
// pushers driving the real broker → collect → tsdb → REST pipeline
// under a scheduled fault sequence, with every reading accounted.
// Zero values select defaults sized for a smoke run.
type Scenario struct {
	// Seed makes the run deterministic: pusher hardware, workload
	// assignment, fault dice and query load all derive from it.
	Seed int64
	// Pushers is the number of simulated pusher connections.
	Pushers int
	// Topics is the number of sensor topics each pusher owns.
	Topics int
	// Rate is each pusher's publish rate in batches per topic per
	// second.
	Rate float64
	// BatchSize is the readings per published batch.
	BatchSize int
	// Duration is how long pushers publish before the drain phase.
	Duration time.Duration
	// Faults is the fault schedule; nil selects DefaultFaults(Duration).
	// The WAL always runs with per-group-commit fsync so the fsync
	// faults actually bite.
	Faults []FaultSpec
	// WALGroupWindow is the group-commit linger (see collect.Config).
	WALGroupWindow time.Duration
	// IngestWorkers sizes the agent's ingest fan-in (see
	// collect.Config).
	IngestWorkers int
	// IngestQueueCap bounds each ingest queue; 1 forces the
	// backpressure path on every enqueue.
	IngestQueueCap int
	// SpoolBatches sizes each pusher's at-least-once client spool
	// (default 256): batches survive killed connections in the spool and
	// are redelivered after the automatic reconnect, with the agent's
	// dedup keeping the store exactly-once. Negative reverts pushers to
	// fire-and-forget clients, relaxing the verdict to tolerate unacked
	// drops (the pre-spool contract).
	SpoolBatches int
	// QueryWorkers is how many goroutines hammer the REST tier during
	// the run to measure query latency under chaos (default 2).
	QueryWorkers int
	// Dir is the store directory; empty creates (and removes) a
	// temporary one.
	Dir string
	// DrainTimeout bounds the post-run wait for ingest queues to empty
	// (default 15s).
	DrainTimeout time.Duration
}

// Verdict is the JSON result of a scenario run. Pass requires clean
// accounting: zero acked-lost, duplicate, phantom and value-mismatch
// readings — and, with the at-least-once spool on (the default), zero
// unacked drops too: every reading a pusher accepted must be in the
// store, period. Only a fire-and-forget run (SpoolBatches < 0)
// tolerates unacked drops as connection-kill collateral.
type Verdict struct {
	Seed            int64             `json:"seed"`
	Pushers         int               `json:"pushers"`
	TopicsPerPusher int               `json:"topics_per_pusher"`
	Rate            float64           `json:"rate_batches_per_topic_sec"`
	BatchSize       int               `json:"batch_size"`
	DurationSec     float64           `json:"duration_sec"`
	FaultClasses    []string          `json:"fault_classes"`
	InjectedFS      map[string]uint64 `json:"injected_fs_faults"`
	ConnsKilled     int               `json:"conns_killed"`
	Accounting      Accounting        `json:"accounting"`
	// IngestedReadings is the agent's own /metrics ingest counter,
	// cross-checking the ledger's delivered count.
	IngestedReadings uint64 `json:"ingested_readings"`
	// ReadingsPerSec is sustained throughput: stored readings over the
	// publish window.
	ReadingsPerSec float64 `json:"readings_per_sec"`
	Queries        uint64  `json:"queries"`
	QueryErrors    uint64  `json:"query_errors"`
	QueryP50Ms     float64 `json:"query_p50_ms"`
	QueryP99Ms     float64 `json:"query_p99_ms"`
	// SpoolEnabled reports whether pushers ran with the at-least-once
	// spool (and therefore whether the zero-unacked-drop criterion
	// applied).
	SpoolEnabled bool `json:"spool_enabled"`
	// PusherReconnects totals successful redials across the fleet.
	PusherReconnects uint64 `json:"pusher_reconnects"`
	// PusherRedeliveries totals batches re-sent after connection loss.
	PusherRedeliveries uint64 `json:"pusher_redeliveries"`
	// PusherDrainFailures counts pushers whose Close could neither
	// deliver nor persist every spooled batch.
	PusherDrainFailures uint64 `json:"pusher_drain_failures"`
	// PusherDialDropBatches counts batches dropped because a pusher's
	// first dial failed (before the at-least-once client existed, so no
	// spool could hold them).
	PusherDialDropBatches uint64 `json:"pusher_dial_drop_batches"`
	// PusherPersistedBatches counts batches Close persisted to the disk
	// spool instead of delivering within its drain timeout — the
	// durable half of the at-least-once contract, made whole by the
	// restart-replay wave below.
	PusherPersistedBatches uint64 `json:"pusher_persisted_batches"`
	// PusherReplayedBatches counts batches the restart-replay wave
	// delivered from persisted spools: for every non-empty disk spool a
	// fresh client is opened on the same directory (restart semantics)
	// and drained against the still-open broker, the agent's dedup
	// dropping whatever already made it through in the first life.
	PusherReplayedBatches uint64 `json:"pusher_replayed_batches"`
	// DupBatchesDropped is the agent's dedup counter: redelivered
	// batches turned away before ingest.
	DupBatchesDropped uint64 `json:"dup_batches_dropped"`
	// SlowReaderDrops counts broker forwards shed on full outbound
	// queues (the slow-reader fault's intended effect).
	SlowReaderDrops uint64 `json:"slow_reader_drops"`
	// BrokerPubAcks counts publish acknowledgements the broker sent.
	BrokerPubAcks uint64 `json:"broker_pubacks"`
	// DrainedCleanly reports whether the ingest fan-in drained to the
	// ledger's delivered count within DrainTimeout.
	DrainedCleanly bool     `json:"drained_cleanly"`
	Pass           bool     `json:"pass"`
	Failures       []string `json:"failures,omitempty"`
}

// DefaultFaults returns the canonical schedule covering every fault
// class, spread across a run of the given duration with no overlapping
// windows on the same filesystem rule. Ordering matters: torn writes
// come before fsync failures, because a degraded WAL suspends appends
// entirely (there would be nothing left to tear), and the segment
// fault runs last with its own forced flush.
func DefaultFaults(d time.Duration) []FaultSpec {
	frac := func(f float64) time.Duration { return time.Duration(f * float64(d)) }
	return []FaultSpec{
		{Kind: FaultFsyncStall, At: frac(0.05), For: frac(0.15), P: 0.5, Stall: 20 * time.Millisecond},
		{Kind: FaultSlowReader, At: frac(0.10), For: frac(0.35)},
		{Kind: FaultConnKill, At: frac(0.20), Kill: 2},
		{Kind: FaultOOOFlood, At: frac(0.25), For: frac(0.25)},
		{Kind: FaultWALTorn, At: frac(0.30), For: frac(0.15), P: 0.3},
		{Kind: FaultClockSkew, At: frac(0.45), For: frac(0.30)},
		{Kind: FaultFsyncFail, At: frac(0.50), For: frac(0.15), P: 0.5},
		{Kind: FaultDiskFull, At: frac(0.55), For: frac(0.10), P: 0.6},
		{Kind: FaultConnKill, At: frac(0.65), Kill: 2},
		{Kind: FaultSegFail, At: frac(0.72), For: frac(0.18), P: 0.5},
	}
}

// withDefaults fills zero fields with smoke-run sizes.
func (s Scenario) withDefaults() Scenario {
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Pushers <= 0 {
		s.Pushers = 16
	}
	if s.Topics <= 0 {
		s.Topics = 4
	}
	if s.Rate <= 0 {
		s.Rate = 20
	}
	if s.BatchSize <= 0 {
		s.BatchSize = 5
	}
	if s.Duration <= 0 {
		s.Duration = 5 * time.Second
	}
	if s.Faults == nil {
		s.Faults = DefaultFaults(s.Duration)
	}
	if s.SpoolBatches == 0 {
		s.SpoolBatches = 256
	}
	if s.QueryWorkers < 0 {
		s.QueryWorkers = 0
	} else if s.QueryWorkers == 0 {
		s.QueryWorkers = 2
	}
	if s.DrainTimeout <= 0 {
		s.DrainTimeout = 15 * time.Second
	}
	return s
}

// derive maps the scenario seed and a label to a stable child seed
// (same construction as internal/testseed, duplicated to keep the
// testing package out of cmd/chaosrunner's import graph).
func derive(seed int64, label string) int64 {
	h := fnv.New64a()
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(uint64(seed) >> (8 * i))
	}
	h.Write(b[:])
	h.Write([]byte(label))
	return int64(h.Sum64())
}

// stepNs is the logical sampling step between consecutive readings of
// one topic; skewNs (a non-multiple of stepNs) is the clock-skew
// offset, chosen so a skewed timestamp can never collide with any
// unskewed sequence position.
const (
	stepNs = int64(time.Millisecond)
	skewNs = stepNs / 3
)

// topologyFor sizes a cluster topology with at least n node paths.
func topologyFor(n int) cluster.Topology {
	t := cluster.Topology{ChassisPerRack: 4, NodesPerChassis: 10, CoresPerNode: 8}
	t.Racks = (n + t.ChassisPerRack*t.NodesPerChassis - 1) / (t.ChassisPerRack * t.NodesPerChassis)
	if t.Racks < 1 {
		t.Racks = 1
	}
	return t
}

// pusherTopics derives the topic set one pusher owns from its node
// path: the five node-level sensors first, then per-core counters.
func pusherTopics(topo cluster.Topology, node sensor.Topic, n int) []sensor.Topic {
	out := make([]sensor.Topic, 0, n)
	for _, s := range cluster.NodeSensors {
		if len(out) == n {
			return out
		}
		out = append(out, node.Join(s))
	}
	for _, cpu := range topo.CPUPaths(node) {
		for _, s := range cluster.CPUSensors {
			if len(out) == n {
				return out
			}
			out = append(out, cpu.Join(s))
		}
	}
	for i := len(out); i < n; i++ {
		out = append(out, node.Join(fmt.Sprintf("x%03d", i)))
	}
	return out
}

// sensorValue samples the topic's current value from the simulated
// node. The mapping mirrors the dcdbsim pusher plugins: node sensors
// from the power/thermal model, core topics from the perf counters.
func sensorValue(node *hardware.Node, idx int) float64 {
	switch idx % 5 {
	case 0:
		return node.Power()
	case 1:
		return node.Temp()
	case 2:
		return node.EnergyJoules()
	case 3:
		return node.IdleSeconds()
	default:
		cycles, instrs, cacheMiss, flops, vecOps := node.CoreCounters(idx % node.Cores())
		switch idx % 4 {
		case 0:
			return cycles
		case 1:
			return instrs
		case 2:
			return cacheMiss + flops
		default:
			return vecOps
		}
	}
}

// Run executes the scenario end to end and returns its verdict. The
// only error paths are environmental (listen/open failures); pipeline
// misbehaviour is reported through the verdict, not an error.
func (s Scenario) Run() (*Verdict, error) {
	s = s.withDefaults()
	dir := s.Dir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "chaos-*")
		if err != nil {
			return nil, fmt.Errorf("chaos: temp dir: %w", err)
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}

	cfs := NewFS(nil, derive(s.Seed, "fs"))
	reg := telemetry.NewRegistry()
	agent, err := collect.New(collect.Config{
		ListenMQTT:          "127.0.0.1:0",
		StoreDir:            dir,
		StoreFS:             cfs,
		StoreWALSync:        true,
		StoreWALGroupWindow: s.WALGroupWindow,
		IngestWorkers:       s.IngestWorkers,
		IngestQueueCap:      s.IngestQueueCap,
		// A small outbound queue and a short write deadline make the
		// slow-reader fault bite within a smoke-length run: the stalled
		// subscriber's queue fills in milliseconds (forwards shed with a
		// counter) and the deadline tears it down — while publish acks,
		// which may block but never drop, stay bounded by the same
		// deadline.
		BrokerOutQueue:      64,
		BrokerWriteDeadline: 2 * time.Second,
		ResultCacheSize:     512,
		Metrics:             reg,
	})
	if err != nil {
		return nil, fmt.Errorf("chaos: starting agent: %w", err)
	}
	defer agent.Close()

	ledger := NewLedger()
	// Registered after collect.New wired the agent's own handler:
	// route calls handlers in registration order, so "delivered" means
	// the agent's ingest handler already ran for the same message.
	agent.Broker.SubscribeLocal("#", ledger.RecordDelivered)

	api, err := rest.Serve("127.0.0.1:0", agent.Manager, agent.QE, rest.Options{
		ResultCache: agent.Results,
		Metrics:     reg,
	})
	if err != nil {
		return nil, fmt.Errorf("chaos: starting REST tier: %w", err)
	}
	defer api.Close()

	// The simulated cluster: one node (and its job/workload assignment)
	// per pusher, topics carved from the node's sensor space.
	topo := topologyFor(s.Pushers)
	nodePaths := topo.NodePaths()
	table := jobs.NewTable()
	apps := workload.Names()
	baseNs := time.Now().UnixNano()
	endNs := baseNs + int64(s.Duration) + int64(time.Hour)
	byApp := make(map[string][]sensor.Topic)
	for i := 0; i < s.Pushers; i++ {
		byApp[apps[i%len(apps)]] = append(byApp[apps[i%len(apps)]], nodePaths[i])
	}
	for app, nodes := range byApp {
		table.Submit(app, nodes, baseNs, endNs)
	}

	var (
		oooActive    atomic.Bool
		skewActive   atomic.Bool
		stop         = make(chan struct{})
		pusherWG     sync.WaitGroup
		reconnects   atomic.Uint64
		redeliveries atomic.Uint64
		drainFails   atomic.Uint64
		dialDrops    atomic.Uint64
		persisted    atomic.Uint64
		replayed     atomic.Uint64
		slow         slowConns
	)
	defer slow.closeAll()
	spoolRoot := filepath.Join(dir, "spool")
	pushers := make([]*pusher, 0, s.Pushers)
	for i := 0; i < s.Pushers; i++ {
		node := hardware.NewNode(hardware.Config{
			Cores: topo.CoresPerNode,
			Seed:  derive(s.Seed, fmt.Sprintf("node-%d", i)),
		})
		node.SetApp(workload.MustNew(apps[i%len(apps)],
			derive(s.Seed, fmt.Sprintf("app-%d", i)), s.Duration.Seconds()), baseNs)
		p := &pusher{
			addr:         agent.Addr(),
			spool:        s.SpoolBatches,
			spoolDir:     filepath.Join(spoolRoot, fmt.Sprintf("p%03d", i)),
			topics:       pusherTopics(topo, nodePaths[i], s.Topics),
			node:         node,
			rate:         s.Rate,
			batch:        s.BatchSize,
			baseNs:       baseNs,
			ledger:       ledger,
			ooo:          &oooActive,
			skew:         &skewActive,
			stop:         stop,
			seqs:         make([]int64, s.Topics),
			pending:      nil,
			reconnects:   &reconnects,
			redeliveries: &redeliveries,
			drainFails:   &drainFails,
			dialDrops:    &dialDrops,
			persisted:    &persisted,
			replayed:     &replayed,
		}
		pushers = append(pushers, p)
		pusherWG.Add(1)
		go func() {
			defer pusherWG.Done()
			p.run()
		}()
	}

	// Query load: workers hammer /query (raw ranges and wildcard
	// aggregates) for the whole publish window, measuring end-to-end
	// latency while the faults fire.
	var (
		queryWG  sync.WaitGroup
		latMu    sync.Mutex
		lats     []float64
		queries  atomic.Uint64
		qErrors  atomic.Uint64
		queryURL = "http://" + api.Addr() + "/query"
	)
	for w := 0; w < s.QueryWorkers; w++ {
		qseed := derive(s.Seed, fmt.Sprintf("query-%d", w))
		queryWG.Add(1)
		go func() {
			defer queryWG.Done()
			client := &http.Client{Timeout: 10 * time.Second}
			rng := newLCG(qseed)
			for {
				select {
				case <-stop:
					return
				case <-time.After(25 * time.Millisecond):
				}
				var u string
				pi := int(rng.next() % uint64(s.Pushers))
				topics := pusherTopics(topo, nodePaths[pi], s.Topics)
				topic := topics[int(rng.next()%uint64(len(topics)))]
				if rng.next()%4 == 0 {
					u = fmt.Sprintf("%s?sensor=%s&op=avg&from=%d&to=%d",
						queryURL, url.QueryEscape(string(nodePaths[pi])+"#"), baseNs, endNs)
				} else {
					u = fmt.Sprintf("%s?sensor=%s&from=%d&to=%d",
						queryURL, url.QueryEscape(string(topic)), baseNs, endNs)
				}
				t0 := time.Now()
				resp, err := client.Get(u)
				queries.Add(1)
				if err != nil || resp.StatusCode != http.StatusOK {
					qErrors.Add(1)
				}
				if err == nil {
					_ = resp.Body.Close()
				}
				latMu.Lock()
				lats = append(lats, float64(time.Since(t0))/float64(time.Millisecond))
				latMu.Unlock()
			}
		}()
	}

	// The fault schedule, driven off one goroutine as a sorted event
	// list (activate At, deactivate At+For).
	connsKilled := 0
	faultsDone := make(chan struct{})
	go func() {
		defer close(faultsDone)
		type event struct {
			at time.Duration
			fn func()
		}
		var events []event
		for _, spec := range s.Faults {
			spec := spec
			on, off := s.faultActions(cfs, agent.Broker, agent.DB, &oooActive, &skewActive, &connsKilled, &slow, spec)
			events = append(events, event{at: spec.At, fn: on})
			if off != nil {
				events = append(events, event{at: spec.At + spec.For, fn: off})
			}
		}
		sort.SliceStable(events, func(i, j int) bool { return events[i].at < events[j].at })
		start := time.Now()
		for _, ev := range events {
			delay := ev.at - time.Since(start)
			if delay > 0 {
				select {
				case <-stop:
					return
				case <-time.After(delay):
				}
			}
			ev.fn()
		}
	}()

	time.Sleep(s.Duration)
	close(stop)
	pusherWG.Wait()
	queryWG.Wait()
	<-faultsDone
	// Restart-replay wave. A Close that could not drain within its
	// timeout persisted the remainder to the pusher's disk spool — the
	// durable half of the at-least-once contract. The other half is
	// that a restarted pusher replays it, so the scenario models
	// exactly that: faults off (the incident is over), then for every
	// non-empty spool a fresh client opens on the same directory and
	// drains it against the still-open broker. The spooled frames keep
	// their original (epoch, seq) identity, so the agent's dedup drops
	// whatever already made it through in the first life and the store
	// gains only the genuinely missing readings.
	cfs.ClearAll()
	if s.SpoolBatches > 0 {
		var replayWG sync.WaitGroup
		for _, p := range pushers {
			fi, err := os.Stat(filepath.Join(p.spoolDir, "pusher.spool"))
			if err != nil || fi.Size() == 0 {
				continue
			}
			replayWG.Add(1)
			go func(p *pusher) {
				defer replayWG.Done()
				c, err := p.dial()
				if err != nil {
					p.drainFails.Add(1)
					return
				}
				cerr := c.Close()
				st := c.Stats()
				p.replayed.Add(st.Acked)
				p.reconnects.Add(st.Reconnects)
				p.redeliveries.Add(st.Redeliveries)
				// After a replay there is no next life to hand off to:
				// anything still spooled is a real drain failure.
				if cerr != nil || st.SpoolDepth+st.SpoolDisk > 0 {
					p.drainFails.Add(1)
				}
			}(p)
		}
		replayWG.Wait()
	}
	// Close the broker before reconciling: a closed pusher connection
	// can still have complete frames sitting in the broker's read
	// buffers, and Broker.Close waits for every serve loop to finish
	// routing them. Without this barrier a last batch can reach the
	// store mid-reconcile with its delivery recorded too late,
	// misreporting it as stored-but-undelivered. Agent.Close re-closing
	// the broker later is a no-op.
	_ = agent.Broker.Close()

	// Drain: the broker routed everything the pushers managed to send
	// (their connections are closed), so the ingest fan-in is done once
	// the agent's own counter matches the ledger's delivered count.
	drained := true
	if s.IngestWorkers >= 0 {
		deadline := time.Now().Add(s.DrainTimeout)
		for {
			v, _ := reg.Value("dcdb_ingest_readings_total")
			if uint64(v) >= ledger.DeliveredReadings() {
				break
			}
			if time.Now().After(deadline) {
				drained = false
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	// A final flush exercises the segment path post-chaos and re-arms a
	// degraded WAL; its data stays query-visible either way.
	if agent.DB != nil {
		_ = agent.DB.Flush()
	}

	acct := ledger.Reconcile(func(t sensor.Topic) []sensor.Reading {
		return agent.Store.Range(t, 0, math.MaxInt64, nil)
	})
	ingested, _ := reg.Value("dcdb_ingest_readings_total")
	dupBatches, _ := reg.Value("dcdb_ingest_dup_batches_total")
	slowDrops, _ := reg.Value("dcdb_broker_slow_reader_drops_total")
	pubAcks, _ := reg.Value("dcdb_broker_pubacks_total")
	spoolOn := s.SpoolBatches > 0

	v := &Verdict{
		Seed:                   s.Seed,
		Pushers:                s.Pushers,
		TopicsPerPusher:        s.Topics,
		Rate:                   s.Rate,
		BatchSize:              s.BatchSize,
		DurationSec:            s.Duration.Seconds(),
		FaultClasses:           faultClasses(s),
		InjectedFS:             cfs.Injected(),
		ConnsKilled:            connsKilled,
		Accounting:             acct,
		IngestedReadings:       uint64(ingested),
		ReadingsPerSec:         float64(acct.Stored) / s.Duration.Seconds(),
		Queries:                queries.Load(),
		QueryErrors:            qErrors.Load(),
		SpoolEnabled:           spoolOn,
		PusherReconnects:       reconnects.Load(),
		PusherRedeliveries:     redeliveries.Load(),
		PusherDrainFailures:    drainFails.Load(),
		PusherDialDropBatches:  dialDrops.Load(),
		PusherPersistedBatches: persisted.Load(),
		PusherReplayedBatches:  replayed.Load(),
		DupBatchesDropped:      uint64(dupBatches),
		SlowReaderDrops:        uint64(slowDrops),
		BrokerPubAcks:          uint64(pubAcks),
		DrainedCleanly:         drained,
	}
	v.QueryP50Ms, v.QueryP99Ms = percentiles(lats)
	v.Pass = acct.Clean() && drained
	if spoolOn {
		// At-least-once upstream + dedup downstream: zero lost, period.
		// Every reading a pusher accepted is either in the store or the
		// run fails.
		v.Pass = v.Pass && acct.UnackedDropped == 0 && drainFails.Load() == 0
		if acct.UnackedDropped > 0 {
			v.Failures = append(v.Failures, fmt.Sprintf("%d unacked-dropped readings (the spool should have redelivered them)", acct.UnackedDropped))
		}
		if n := drainFails.Load(); n > 0 {
			v.Failures = append(v.Failures, fmt.Sprintf("%d pushers could not drain or persist their spool on close", n))
		}
	}
	if acct.AckedLost > 0 {
		v.Failures = append(v.Failures, fmt.Sprintf("%d acked-lost readings (delivered but not stored)", acct.AckedLost))
	}
	if acct.Duplicates > 0 {
		v.Failures = append(v.Failures, fmt.Sprintf("%d duplicate stored readings", acct.Duplicates))
	}
	if acct.Phantom > 0 {
		v.Failures = append(v.Failures, fmt.Sprintf("%d phantom readings (stored/delivered but never sent)", acct.Phantom))
	}
	if acct.ValueMismatch > 0 {
		v.Failures = append(v.Failures, fmt.Sprintf("%d stored readings with corrupted values", acct.ValueMismatch))
	}
	if !drained {
		v.Failures = append(v.Failures, "ingest fan-in did not drain within the timeout")
	}
	return v, nil
}

// slowConns tracks the slow-reader fault's stalled subscriber
// connections so the run can guarantee their teardown.
type slowConns struct {
	mu sync.Mutex
	cs []io.Closer
}

func (s *slowConns) add(c io.Closer) {
	s.mu.Lock()
	s.cs = append(s.cs, c)
	s.mu.Unlock()
}

// closeAll closes every tracked connection; double closes (the fault's
// own off action already ran) are harmless on net.Conn.
func (s *slowConns) closeAll() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.cs {
		_ = c.Close()
	}
	s.cs = nil
}

// faultActions maps one FaultSpec to its activate/deactivate closures.
func (s Scenario) faultActions(cfs *FS, broker *transport.Broker, db *tsdb.DB,
	ooo, skew *atomic.Bool, connsKilled *int, slow *slowConns, spec FaultSpec) (on, off func()) {
	p := spec.P
	if p <= 0 {
		p = 0.5
	}
	stall := spec.Stall
	if stall <= 0 {
		stall = 50 * time.Millisecond
	}
	kill := spec.Kill
	if kill <= 0 {
		kill = 1
	}
	switch spec.Kind {
	case FaultConnKill:
		return func() { *connsKilled += broker.KillConnections(kill) }, nil
	case FaultFsyncStall:
		return func() { cfs.Set(OpSync, ClassWAL, Fault{P: p, Stall: stall, StallOnly: true}) },
			func() { cfs.Clear(OpSync, ClassWAL) }
	case FaultFsyncFail:
		return func() { cfs.Set(OpSync, ClassWAL, Fault{P: p}) },
			func() { cfs.Clear(OpSync, ClassWAL) }
	case FaultWALTorn:
		return func() { cfs.Set(OpWrite, ClassWAL, Fault{P: p, Partial: true}) },
			func() { cfs.Clear(OpWrite, ClassWAL) }
	case FaultSegFail:
		return func() {
				cfs.Set(OpWrite, ClassSeg, Fault{P: p})
				cfs.Set(OpCreate, ClassSeg, Fault{P: p})
				// Force flushes while the rule is live: the segment
				// write path only runs on flush, and a failed flush
				// must restore its staged heads without loss. A
				// successful rotate also re-arms a WAL degraded by an
				// earlier fsync-fail window.
				go func() {
					for i := 0; i < 3; i++ {
						_ = db.Flush()
					}
				}()
			}, func() {
				cfs.Clear(OpWrite, ClassSeg)
				cfs.Clear(OpCreate, ClassSeg)
			}
	case FaultOOOFlood:
		return func() { ooo.Store(true) }, func() { ooo.Store(false) }
	case FaultClockSkew:
		return func() { skew.Store(true) }, func() { skew.Store(false) }
	case FaultDiskFull:
		// The disk fills: everything the storage tier writes gets
		// ENOSPC. The WAL degrades (memory-only), forced flushes fail
		// and restore their staged heads, and both re-arm when the
		// window closes and the post-chaos flush succeeds.
		full := Fault{P: p, Err: syscall.ENOSPC}
		return func() {
				cfs.Set(OpWrite, ClassWAL, full)
				cfs.Set(OpWrite, ClassSeg, full)
				cfs.Set(OpCreate, ClassSeg, full)
				go func() {
					for i := 0; i < 2; i++ {
						_ = db.Flush()
					}
				}()
			}, func() {
				cfs.Clear(OpWrite, ClassWAL)
				cfs.Clear(OpWrite, ClassSeg)
				cfs.Clear(OpCreate, ClassSeg)
			}
	case FaultSlowReader:
		// A subscriber that matches everything and never reads: its
		// bounded outbound queue fills, forwards to it drop with a
		// counter, and the write deadline eventually tears it down.
		var conn io.Closer
		return func() {
				c, err := transport.NewStalledSubscriber(broker.Addr(), "#")
				if err != nil {
					return // broker gone mid-run; nothing to stall
				}
				conn = c
				slow.add(c)
			}, func() {
				if conn != nil {
					_ = conn.Close()
				}
			}
	}
	return func() {}, nil
}

// faultClasses lists the distinct fault classes a scenario applies,
// including the standing backpressure configuration.
func faultClasses(s Scenario) []string {
	seen := make(map[string]bool)
	var out []string
	for _, f := range s.Faults {
		if !seen[string(f.Kind)] {
			seen[string(f.Kind)] = true
			out = append(out, string(f.Kind))
		}
	}
	if s.IngestQueueCap > 0 && s.IngestQueueCap <= 4 {
		out = append(out, "backpressure")
	}
	sort.Strings(out)
	return out
}

// percentiles returns the p50 and p99 of the samples (0, 0 when empty).
func percentiles(samples []float64) (p50, p99 float64) {
	if len(samples) == 0 {
		return 0, 0
	}
	sort.Float64s(samples)
	at := func(q float64) float64 {
		i := int(q * float64(len(samples)-1))
		return samples[i]
	}
	return at(0.50), at(0.99)
}

// lcg is a tiny splitmix-style generator for goroutines that must not
// share the scenario's locked RNG.
type lcg struct{ state uint64 }

func newLCG(seed int64) *lcg { return &lcg{state: uint64(seed)*2862933555777941757 + 3037000493} }

func (l *lcg) next() uint64 {
	l.state += 0x9e3779b97f4a7c15
	z := l.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// pusher is one simulated pusher connection: it samples its hardware
// node at the configured rate and publishes one batch per topic per
// tick. With spool > 0 (the default) it runs a single at-least-once
// client whose spool absorbs injected connection kills — redial,
// backoff and redelivery all happen inside transport — and whose Close
// drains every outstanding batch at the end of the run. Batches are
// buffered and released in reverse order while the OOO flood fault is
// active.
type pusher struct {
	addr     string
	spool    int    // at-least-once spool size; <= 0 is fire-and-forget
	spoolDir string // disk overflow for the spool
	topics   []sensor.Topic
	node     *hardware.Node
	rate     float64
	batch    int
	baseNs   int64
	ledger   *Ledger
	ooo      *atomic.Bool
	skew     *atomic.Bool
	stop     chan struct{}

	seqs    []int64
	pending []outBatch
	client  *transport.Client

	// Fleet-wide totals the scenario reports in its verdict.
	reconnects, redeliveries, drainFails *atomic.Uint64
	dialDrops, persisted, replayed       *atomic.Uint64
}

// outBatch is one generated (topic, readings) pair awaiting publish.
type outBatch struct {
	topic sensor.Topic
	rs    []sensor.Reading
}

// oooWindow is how many generated batches the OOO fault buffers before
// releasing them newest-first.
const oooWindow = 8

func (p *pusher) run() {
	defer func() {
		p.flushPending()
		if p.client == nil {
			return
		}
		// Close drains the spool against the still-open broker (the
		// scenario closes it only after every pusher returned); a drain
		// that can neither deliver nor persist is a verdict failure.
		err := p.client.Close()
		st := p.client.Stats()
		if p.reconnects != nil {
			p.reconnects.Add(st.Reconnects)
			p.redeliveries.Add(st.Redeliveries)
			// Anything still spooled after Close was persisted to disk
			// (durable handoff, not a drain failure) — but this run's
			// ledger will still see those readings as undelivered.
			p.persisted.Add(uint64(st.SpoolDepth + st.SpoolDisk))
			if err != nil {
				p.drainFails.Add(1)
			}
		}
	}()
	interval := time.Duration(float64(time.Second) / p.rate)
	if interval <= 0 {
		interval = time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	tick := int64(0)
	for {
		select {
		case <-p.stop:
			return
		case <-ticker.C:
		}
		tick++
		p.node.Advance(p.baseNs + tick*int64(interval))
		skewed := p.skew.Load()
		for j, topic := range p.topics {
			rs := make([]sensor.Reading, p.batch)
			for k := range rs {
				p.seqs[j]++
				ts := p.baseNs + p.seqs[j]*stepNs
				if skewed {
					ts += skewNs
				}
				rs[k] = sensor.Reading{Time: ts, Value: sensorValue(p.node, j)}
			}
			p.pending = append(p.pending, outBatch{topic: topic, rs: rs})
		}
		if p.ooo.Load() {
			if len(p.pending) >= oooWindow {
				p.flushReversed()
			}
		} else {
			p.flushPending()
		}
	}
}

// flushPending publishes buffered batches in generation order.
func (p *pusher) flushPending() {
	for _, b := range p.pending {
		p.publish(b)
	}
	p.pending = p.pending[:0]
}

// flushReversed publishes buffered batches newest-first — the OOO
// flood: the store sees every window's timestamps in reverse.
func (p *pusher) flushReversed() {
	for i := len(p.pending) - 1; i >= 0; i-- {
		p.publish(p.pending[i])
	}
	p.pending = p.pending[:0]
}

// publish records the batch as sent, then writes it out. Recording
// first is deliberate: the broker routes on its own goroutine, so a
// delivery may be observed before Publish even returns; a reading the
// ledger did not know about would be misclassified as phantom.
//
// In spooling mode Publish only enqueues — connection loss, redial and
// redelivery are the reliable client's problem, and the only error is
// the client being closed. In fire-and-forget mode a failed publish is
// never retried: the frame may or may not have reached the broker, and
// resending it on a fresh connection could deliver it twice — that
// mode's at-most-once contract forbids it. The batch becomes an
// unacked drop and the pusher redials for the next one.
func (p *pusher) publish(b outBatch) {
	p.ledger.RecordSent(b.topic, b.rs)
	if p.client == nil {
		c, err := p.dial()
		if err != nil {
			if p.dialDrops != nil {
				p.dialDrops.Add(1)
			}
			return // batch dropped unacked; redial on the next batch
		}
		p.client = c
	}
	if err := p.client.Publish(b.topic, b.rs); err != nil {
		// Fire-and-forget: dead connection (likely an injected kill) —
		// drop the handle so the next batch redials. A reliable client
		// only fails with ErrClosed, which never happens mid-run.
		p.client.Close()
		p.client = nil
	}
}

// dial opens this pusher's client: at-least-once with disk overflow in
// spooling mode, the plain fire-and-forget client otherwise.
func (p *pusher) dial() (*transport.Client, error) {
	if p.spool > 0 {
		// AckTimeout must sit well above the worst ack latency the
		// injected faults can manufacture (disk-full and slow-write
		// episodes stall the ingest path, and with it the broker's
		// ack-after-route reply, for seconds at a time). Injected
		// connection kills surface as socket errors immediately, so the
		// stall detector is only a backstop for a silently wedged
		// connection — but set too low it kills healthy-slow connections,
		// and each kill redelivers the whole spool, feeding the very
		// congestion that tripped it.
		return transport.DialOptions(p.addr, transport.Options{
			SpoolBatches: p.spool,
			SpoolDir:     p.spoolDir,
			AckTimeout:   10 * time.Second,
			RetryMin:     10 * time.Millisecond,
			RetryMax:     250 * time.Millisecond,
			DrainTimeout: 30 * time.Second,
		})
	}
	return transport.Dial(p.addr)
}
