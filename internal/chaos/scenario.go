package chaos

import (
	"fmt"
	"hash/fnv"
	"math"
	"net/http"
	"net/url"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dcdb/wintermute/internal/collect"
	"github.com/dcdb/wintermute/internal/rest"
	"github.com/dcdb/wintermute/internal/sensor"
	"github.com/dcdb/wintermute/internal/sim/cluster"
	"github.com/dcdb/wintermute/internal/sim/hardware"
	"github.com/dcdb/wintermute/internal/sim/jobs"
	"github.com/dcdb/wintermute/internal/sim/workload"
	"github.com/dcdb/wintermute/internal/telemetry"
	"github.com/dcdb/wintermute/internal/transport"
	"github.com/dcdb/wintermute/internal/tsdb"
)

// FaultKind names one injectable fault class in a scenario schedule.
type FaultKind string

// The fault classes a scenario can schedule. Backpressure is not
// scheduled — it is the standing IngestQueueCap configuration — but is
// reported as an active class in the verdict when the cap is tiny.
const (
	// FaultConnKill abruptly closes live pusher connections.
	FaultConnKill FaultKind = "conn-kill"
	// FaultFsyncStall makes WAL fsyncs hang mid-group-commit.
	FaultFsyncStall FaultKind = "fsync-stall"
	// FaultFsyncFail makes WAL fsyncs return errors (degraded WAL).
	FaultFsyncFail FaultKind = "fsync-fail"
	// FaultWALTorn tears WAL appends: half the record lands, then error.
	FaultWALTorn FaultKind = "wal-torn-write"
	// FaultSegFail fails segment writes, so flushes abort and retry.
	FaultSegFail FaultKind = "seg-write-fail"
	// FaultOOOFlood makes pushers emit buffered batches in reverse
	// order, flooding the store with out-of-order timestamps.
	FaultOOOFlood FaultKind = "ooo-flood"
	// FaultClockSkew offsets pusher timestamps by a fraction of the
	// sampling step, desynchronising timestamp from arrival order.
	FaultClockSkew FaultKind = "clock-skew"
)

// FaultSpec schedules one fault: Kind activates At after scenario start
// and (for the window-based kinds) deactivates after For. Zero-valued
// tuning fields pick per-kind defaults.
type FaultSpec struct {
	Kind FaultKind
	// At is the activation offset from scenario start.
	At time.Duration
	// For is the active window; ignored by conn-kill (instantaneous).
	For time.Duration
	// P is the per-operation injection probability for filesystem
	// faults (default 0.5).
	P float64
	// Stall is the fsync-stall delay (default 50ms).
	Stall time.Duration
	// Kill is how many connections conn-kill closes (default 1).
	Kill int
}

// Scenario describes one deterministic chaos run: a fleet of simulated
// pushers driving the real broker → collect → tsdb → REST pipeline
// under a scheduled fault sequence, with every reading accounted.
// Zero values select defaults sized for a smoke run.
type Scenario struct {
	// Seed makes the run deterministic: pusher hardware, workload
	// assignment, fault dice and query load all derive from it.
	Seed int64
	// Pushers is the number of simulated pusher connections.
	Pushers int
	// Topics is the number of sensor topics each pusher owns.
	Topics int
	// Rate is each pusher's publish rate in batches per topic per
	// second.
	Rate float64
	// BatchSize is the readings per published batch.
	BatchSize int
	// Duration is how long pushers publish before the drain phase.
	Duration time.Duration
	// Faults is the fault schedule; nil selects DefaultFaults(Duration).
	// The WAL always runs with per-group-commit fsync so the fsync
	// faults actually bite.
	Faults []FaultSpec
	// WALGroupWindow is the group-commit linger (see collect.Config).
	WALGroupWindow time.Duration
	// IngestWorkers sizes the agent's ingest fan-in (see
	// collect.Config).
	IngestWorkers int
	// IngestQueueCap bounds each ingest queue; 1 forces the
	// backpressure path on every enqueue.
	IngestQueueCap int
	// QueryWorkers is how many goroutines hammer the REST tier during
	// the run to measure query latency under chaos (default 2).
	QueryWorkers int
	// Dir is the store directory; empty creates (and removes) a
	// temporary one.
	Dir string
	// DrainTimeout bounds the post-run wait for ingest queues to empty
	// (default 15s).
	DrainTimeout time.Duration
}

// Verdict is the JSON result of a scenario run. Pass requires clean
// accounting: zero acked-lost, duplicate, phantom and value-mismatch
// readings; unacked drops (killed connections' collateral) are allowed
// and reported.
type Verdict struct {
	Seed            int64             `json:"seed"`
	Pushers         int               `json:"pushers"`
	TopicsPerPusher int               `json:"topics_per_pusher"`
	Rate            float64           `json:"rate_batches_per_topic_sec"`
	BatchSize       int               `json:"batch_size"`
	DurationSec     float64           `json:"duration_sec"`
	FaultClasses    []string          `json:"fault_classes"`
	InjectedFS      map[string]uint64 `json:"injected_fs_faults"`
	ConnsKilled     int               `json:"conns_killed"`
	Accounting      Accounting        `json:"accounting"`
	// IngestedReadings is the agent's own /metrics ingest counter,
	// cross-checking the ledger's delivered count.
	IngestedReadings uint64 `json:"ingested_readings"`
	// ReadingsPerSec is sustained throughput: stored readings over the
	// publish window.
	ReadingsPerSec float64 `json:"readings_per_sec"`
	Queries        uint64  `json:"queries"`
	QueryErrors    uint64  `json:"query_errors"`
	QueryP50Ms     float64 `json:"query_p50_ms"`
	QueryP99Ms     float64 `json:"query_p99_ms"`
	// DrainedCleanly reports whether the ingest fan-in drained to the
	// ledger's delivered count within DrainTimeout.
	DrainedCleanly bool     `json:"drained_cleanly"`
	Pass           bool     `json:"pass"`
	Failures       []string `json:"failures,omitempty"`
}

// DefaultFaults returns the canonical schedule covering every fault
// class, spread across a run of the given duration with no overlapping
// windows on the same filesystem rule. Ordering matters: torn writes
// come before fsync failures, because a degraded WAL suspends appends
// entirely (there would be nothing left to tear), and the segment
// fault runs last with its own forced flush.
func DefaultFaults(d time.Duration) []FaultSpec {
	frac := func(f float64) time.Duration { return time.Duration(f * float64(d)) }
	return []FaultSpec{
		{Kind: FaultFsyncStall, At: frac(0.05), For: frac(0.15), P: 0.5, Stall: 20 * time.Millisecond},
		{Kind: FaultConnKill, At: frac(0.20), Kill: 2},
		{Kind: FaultOOOFlood, At: frac(0.25), For: frac(0.25)},
		{Kind: FaultWALTorn, At: frac(0.30), For: frac(0.15), P: 0.3},
		{Kind: FaultClockSkew, At: frac(0.45), For: frac(0.30)},
		{Kind: FaultFsyncFail, At: frac(0.50), For: frac(0.15), P: 0.5},
		{Kind: FaultConnKill, At: frac(0.65), Kill: 2},
		{Kind: FaultSegFail, At: frac(0.72), For: frac(0.18), P: 0.5},
	}
}

// withDefaults fills zero fields with smoke-run sizes.
func (s Scenario) withDefaults() Scenario {
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Pushers <= 0 {
		s.Pushers = 16
	}
	if s.Topics <= 0 {
		s.Topics = 4
	}
	if s.Rate <= 0 {
		s.Rate = 20
	}
	if s.BatchSize <= 0 {
		s.BatchSize = 5
	}
	if s.Duration <= 0 {
		s.Duration = 5 * time.Second
	}
	if s.Faults == nil {
		s.Faults = DefaultFaults(s.Duration)
	}
	if s.QueryWorkers < 0 {
		s.QueryWorkers = 0
	} else if s.QueryWorkers == 0 {
		s.QueryWorkers = 2
	}
	if s.DrainTimeout <= 0 {
		s.DrainTimeout = 15 * time.Second
	}
	return s
}

// derive maps the scenario seed and a label to a stable child seed
// (same construction as internal/testseed, duplicated to keep the
// testing package out of cmd/chaosrunner's import graph).
func derive(seed int64, label string) int64 {
	h := fnv.New64a()
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(uint64(seed) >> (8 * i))
	}
	h.Write(b[:])
	h.Write([]byte(label))
	return int64(h.Sum64())
}

// stepNs is the logical sampling step between consecutive readings of
// one topic; skewNs (a non-multiple of stepNs) is the clock-skew
// offset, chosen so a skewed timestamp can never collide with any
// unskewed sequence position.
const (
	stepNs = int64(time.Millisecond)
	skewNs = stepNs / 3
)

// topologyFor sizes a cluster topology with at least n node paths.
func topologyFor(n int) cluster.Topology {
	t := cluster.Topology{ChassisPerRack: 4, NodesPerChassis: 10, CoresPerNode: 8}
	t.Racks = (n + t.ChassisPerRack*t.NodesPerChassis - 1) / (t.ChassisPerRack * t.NodesPerChassis)
	if t.Racks < 1 {
		t.Racks = 1
	}
	return t
}

// pusherTopics derives the topic set one pusher owns from its node
// path: the five node-level sensors first, then per-core counters.
func pusherTopics(topo cluster.Topology, node sensor.Topic, n int) []sensor.Topic {
	out := make([]sensor.Topic, 0, n)
	for _, s := range cluster.NodeSensors {
		if len(out) == n {
			return out
		}
		out = append(out, node.Join(s))
	}
	for _, cpu := range topo.CPUPaths(node) {
		for _, s := range cluster.CPUSensors {
			if len(out) == n {
				return out
			}
			out = append(out, cpu.Join(s))
		}
	}
	for i := len(out); i < n; i++ {
		out = append(out, node.Join(fmt.Sprintf("x%03d", i)))
	}
	return out
}

// sensorValue samples the topic's current value from the simulated
// node. The mapping mirrors the dcdbsim pusher plugins: node sensors
// from the power/thermal model, core topics from the perf counters.
func sensorValue(node *hardware.Node, idx int) float64 {
	switch idx % 5 {
	case 0:
		return node.Power()
	case 1:
		return node.Temp()
	case 2:
		return node.EnergyJoules()
	case 3:
		return node.IdleSeconds()
	default:
		cycles, instrs, cacheMiss, flops, vecOps := node.CoreCounters(idx % node.Cores())
		switch idx % 4 {
		case 0:
			return cycles
		case 1:
			return instrs
		case 2:
			return cacheMiss + flops
		default:
			return vecOps
		}
	}
}

// Run executes the scenario end to end and returns its verdict. The
// only error paths are environmental (listen/open failures); pipeline
// misbehaviour is reported through the verdict, not an error.
func (s Scenario) Run() (*Verdict, error) {
	s = s.withDefaults()
	dir := s.Dir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "chaos-*")
		if err != nil {
			return nil, fmt.Errorf("chaos: temp dir: %w", err)
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}

	cfs := NewFS(nil, derive(s.Seed, "fs"))
	reg := telemetry.NewRegistry()
	agent, err := collect.New(collect.Config{
		ListenMQTT:          "127.0.0.1:0",
		StoreDir:            dir,
		StoreFS:             cfs,
		StoreWALSync:        true,
		StoreWALGroupWindow: s.WALGroupWindow,
		IngestWorkers:       s.IngestWorkers,
		IngestQueueCap:      s.IngestQueueCap,
		ResultCacheSize:     512,
		Metrics:             reg,
	})
	if err != nil {
		return nil, fmt.Errorf("chaos: starting agent: %w", err)
	}
	defer agent.Close()

	ledger := NewLedger()
	// Registered after collect.New wired the agent's own handler:
	// route calls handlers in registration order, so "delivered" means
	// the agent's ingest handler already ran for the same message.
	agent.Broker.SubscribeLocal("#", ledger.RecordDelivered)

	api, err := rest.Serve("127.0.0.1:0", agent.Manager, agent.QE, rest.Options{
		ResultCache: agent.Results,
		Metrics:     reg,
	})
	if err != nil {
		return nil, fmt.Errorf("chaos: starting REST tier: %w", err)
	}
	defer api.Close()

	// The simulated cluster: one node (and its job/workload assignment)
	// per pusher, topics carved from the node's sensor space.
	topo := topologyFor(s.Pushers)
	nodePaths := topo.NodePaths()
	table := jobs.NewTable()
	apps := workload.Names()
	baseNs := time.Now().UnixNano()
	endNs := baseNs + int64(s.Duration) + int64(time.Hour)
	byApp := make(map[string][]sensor.Topic)
	for i := 0; i < s.Pushers; i++ {
		byApp[apps[i%len(apps)]] = append(byApp[apps[i%len(apps)]], nodePaths[i])
	}
	for app, nodes := range byApp {
		table.Submit(app, nodes, baseNs, endNs)
	}

	var (
		oooActive  atomic.Bool
		skewActive atomic.Bool
		stop       = make(chan struct{})
		pusherWG   sync.WaitGroup
	)
	for i := 0; i < s.Pushers; i++ {
		node := hardware.NewNode(hardware.Config{
			Cores: topo.CoresPerNode,
			Seed:  derive(s.Seed, fmt.Sprintf("node-%d", i)),
		})
		node.SetApp(workload.MustNew(apps[i%len(apps)],
			derive(s.Seed, fmt.Sprintf("app-%d", i)), s.Duration.Seconds()), baseNs)
		p := &pusher{
			addr:    agent.Addr(),
			topics:  pusherTopics(topo, nodePaths[i], s.Topics),
			node:    node,
			rate:    s.Rate,
			batch:   s.BatchSize,
			baseNs:  baseNs,
			ledger:  ledger,
			ooo:     &oooActive,
			skew:    &skewActive,
			stop:    stop,
			seqs:    make([]int64, s.Topics),
			pending: nil,
		}
		pusherWG.Add(1)
		go func() {
			defer pusherWG.Done()
			p.run()
		}()
	}

	// Query load: workers hammer /query (raw ranges and wildcard
	// aggregates) for the whole publish window, measuring end-to-end
	// latency while the faults fire.
	var (
		queryWG  sync.WaitGroup
		latMu    sync.Mutex
		lats     []float64
		queries  atomic.Uint64
		qErrors  atomic.Uint64
		queryURL = "http://" + api.Addr() + "/query"
	)
	for w := 0; w < s.QueryWorkers; w++ {
		qseed := derive(s.Seed, fmt.Sprintf("query-%d", w))
		queryWG.Add(1)
		go func() {
			defer queryWG.Done()
			client := &http.Client{Timeout: 10 * time.Second}
			rng := newLCG(qseed)
			for {
				select {
				case <-stop:
					return
				case <-time.After(25 * time.Millisecond):
				}
				var u string
				pi := int(rng.next() % uint64(s.Pushers))
				topics := pusherTopics(topo, nodePaths[pi], s.Topics)
				topic := topics[int(rng.next()%uint64(len(topics)))]
				if rng.next()%4 == 0 {
					u = fmt.Sprintf("%s?sensor=%s&op=avg&from=%d&to=%d",
						queryURL, url.QueryEscape(string(nodePaths[pi])+"#"), baseNs, endNs)
				} else {
					u = fmt.Sprintf("%s?sensor=%s&from=%d&to=%d",
						queryURL, url.QueryEscape(string(topic)), baseNs, endNs)
				}
				t0 := time.Now()
				resp, err := client.Get(u)
				queries.Add(1)
				if err != nil || resp.StatusCode != http.StatusOK {
					qErrors.Add(1)
				}
				if err == nil {
					_ = resp.Body.Close()
				}
				latMu.Lock()
				lats = append(lats, float64(time.Since(t0))/float64(time.Millisecond))
				latMu.Unlock()
			}
		}()
	}

	// The fault schedule, driven off one goroutine as a sorted event
	// list (activate At, deactivate At+For).
	connsKilled := 0
	faultsDone := make(chan struct{})
	go func() {
		defer close(faultsDone)
		type event struct {
			at time.Duration
			fn func()
		}
		var events []event
		for _, spec := range s.Faults {
			spec := spec
			on, off := s.faultActions(cfs, agent.Broker, agent.DB, &oooActive, &skewActive, &connsKilled, spec)
			events = append(events, event{at: spec.At, fn: on})
			if off != nil {
				events = append(events, event{at: spec.At + spec.For, fn: off})
			}
		}
		sort.SliceStable(events, func(i, j int) bool { return events[i].at < events[j].at })
		start := time.Now()
		for _, ev := range events {
			delay := ev.at - time.Since(start)
			if delay > 0 {
				select {
				case <-stop:
					return
				case <-time.After(delay):
				}
			}
			ev.fn()
		}
	}()

	time.Sleep(s.Duration)
	close(stop)
	pusherWG.Wait()
	queryWG.Wait()
	<-faultsDone
	// Close the broker before reconciling: a closed pusher connection
	// can still have complete frames sitting in the broker's read
	// buffers, and Broker.Close waits for every serve loop to finish
	// routing them. Without this barrier a last batch can reach the
	// store mid-reconcile with its delivery recorded too late,
	// misreporting it as stored-but-undelivered. Agent.Close re-closing
	// the broker later is a no-op.
	_ = agent.Broker.Close()
	// Faults off before the drain: the post-run pipeline must be able
	// to finish its group commits and flushes.
	cfs.ClearAll()

	// Drain: the broker routed everything the pushers managed to send
	// (their connections are closed), so the ingest fan-in is done once
	// the agent's own counter matches the ledger's delivered count.
	drained := true
	if s.IngestWorkers >= 0 {
		deadline := time.Now().Add(s.DrainTimeout)
		for {
			v, _ := reg.Value("dcdb_ingest_readings_total")
			if uint64(v) >= ledger.DeliveredReadings() {
				break
			}
			if time.Now().After(deadline) {
				drained = false
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	// A final flush exercises the segment path post-chaos and re-arms a
	// degraded WAL; its data stays query-visible either way.
	if agent.DB != nil {
		_ = agent.DB.Flush()
	}

	acct := ledger.Reconcile(func(t sensor.Topic) []sensor.Reading {
		return agent.Store.Range(t, 0, math.MaxInt64, nil)
	})
	ingested, _ := reg.Value("dcdb_ingest_readings_total")

	v := &Verdict{
		Seed:             s.Seed,
		Pushers:          s.Pushers,
		TopicsPerPusher:  s.Topics,
		Rate:             s.Rate,
		BatchSize:        s.BatchSize,
		DurationSec:      s.Duration.Seconds(),
		FaultClasses:     faultClasses(s),
		InjectedFS:       cfs.Injected(),
		ConnsKilled:      connsKilled,
		Accounting:       acct,
		IngestedReadings: uint64(ingested),
		ReadingsPerSec:   float64(acct.Stored) / s.Duration.Seconds(),
		Queries:          queries.Load(),
		QueryErrors:      qErrors.Load(),
		DrainedCleanly:   drained,
	}
	v.QueryP50Ms, v.QueryP99Ms = percentiles(lats)
	v.Pass = acct.Clean() && drained
	if acct.AckedLost > 0 {
		v.Failures = append(v.Failures, fmt.Sprintf("%d acked-lost readings (delivered but not stored)", acct.AckedLost))
	}
	if acct.Duplicates > 0 {
		v.Failures = append(v.Failures, fmt.Sprintf("%d duplicate stored readings", acct.Duplicates))
	}
	if acct.Phantom > 0 {
		v.Failures = append(v.Failures, fmt.Sprintf("%d phantom readings (stored/delivered but never sent)", acct.Phantom))
	}
	if acct.ValueMismatch > 0 {
		v.Failures = append(v.Failures, fmt.Sprintf("%d stored readings with corrupted values", acct.ValueMismatch))
	}
	if !drained {
		v.Failures = append(v.Failures, "ingest fan-in did not drain within the timeout")
	}
	return v, nil
}

// faultActions maps one FaultSpec to its activate/deactivate closures.
func (s Scenario) faultActions(cfs *FS, broker *transport.Broker, db *tsdb.DB,
	ooo, skew *atomic.Bool, connsKilled *int, spec FaultSpec) (on, off func()) {
	p := spec.P
	if p <= 0 {
		p = 0.5
	}
	stall := spec.Stall
	if stall <= 0 {
		stall = 50 * time.Millisecond
	}
	kill := spec.Kill
	if kill <= 0 {
		kill = 1
	}
	switch spec.Kind {
	case FaultConnKill:
		return func() { *connsKilled += broker.KillConnections(kill) }, nil
	case FaultFsyncStall:
		return func() { cfs.Set(OpSync, ClassWAL, Fault{P: p, Stall: stall, StallOnly: true}) },
			func() { cfs.Clear(OpSync, ClassWAL) }
	case FaultFsyncFail:
		return func() { cfs.Set(OpSync, ClassWAL, Fault{P: p}) },
			func() { cfs.Clear(OpSync, ClassWAL) }
	case FaultWALTorn:
		return func() { cfs.Set(OpWrite, ClassWAL, Fault{P: p, Partial: true}) },
			func() { cfs.Clear(OpWrite, ClassWAL) }
	case FaultSegFail:
		return func() {
				cfs.Set(OpWrite, ClassSeg, Fault{P: p})
				cfs.Set(OpCreate, ClassSeg, Fault{P: p})
				// Force flushes while the rule is live: the segment
				// write path only runs on flush, and a failed flush
				// must restore its staged heads without loss. A
				// successful rotate also re-arms a WAL degraded by an
				// earlier fsync-fail window.
				go func() {
					for i := 0; i < 3; i++ {
						_ = db.Flush()
					}
				}()
			}, func() {
				cfs.Clear(OpWrite, ClassSeg)
				cfs.Clear(OpCreate, ClassSeg)
			}
	case FaultOOOFlood:
		return func() { ooo.Store(true) }, func() { ooo.Store(false) }
	case FaultClockSkew:
		return func() { skew.Store(true) }, func() { skew.Store(false) }
	}
	return func() {}, nil
}

// faultClasses lists the distinct fault classes a scenario applies,
// including the standing backpressure configuration.
func faultClasses(s Scenario) []string {
	seen := make(map[string]bool)
	var out []string
	for _, f := range s.Faults {
		if !seen[string(f.Kind)] {
			seen[string(f.Kind)] = true
			out = append(out, string(f.Kind))
		}
	}
	if s.IngestQueueCap > 0 && s.IngestQueueCap <= 4 {
		out = append(out, "backpressure")
	}
	sort.Strings(out)
	return out
}

// percentiles returns the p50 and p99 of the samples (0, 0 when empty).
func percentiles(samples []float64) (p50, p99 float64) {
	if len(samples) == 0 {
		return 0, 0
	}
	sort.Float64s(samples)
	at := func(q float64) float64 {
		i := int(q * float64(len(samples)-1))
		return samples[i]
	}
	return at(0.50), at(0.99)
}

// lcg is a tiny splitmix-style generator for goroutines that must not
// share the scenario's locked RNG.
type lcg struct{ state uint64 }

func newLCG(seed int64) *lcg { return &lcg{state: uint64(seed)*2862933555777941757 + 3037000493} }

func (l *lcg) next() uint64 {
	l.state += 0x9e3779b97f4a7c15
	z := l.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// pusher is one simulated pusher connection: it samples its hardware
// node at the configured rate and publishes one batch per topic per
// tick, redialling after injected connection kills. Batches are
// buffered and released in reverse order while the OOO flood fault is
// active.
type pusher struct {
	addr   string
	topics []sensor.Topic
	node   *hardware.Node
	rate   float64
	batch  int
	baseNs int64
	ledger *Ledger
	ooo    *atomic.Bool
	skew   *atomic.Bool
	stop   chan struct{}

	seqs    []int64
	pending []outBatch
	client  *transport.Client
}

// outBatch is one generated (topic, readings) pair awaiting publish.
type outBatch struct {
	topic sensor.Topic
	rs    []sensor.Reading
}

// oooWindow is how many generated batches the OOO fault buffers before
// releasing them newest-first.
const oooWindow = 8

func (p *pusher) run() {
	defer func() {
		p.flushPending()
		if p.client != nil {
			p.client.Close()
		}
	}()
	interval := time.Duration(float64(time.Second) / p.rate)
	if interval <= 0 {
		interval = time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	tick := int64(0)
	for {
		select {
		case <-p.stop:
			return
		case <-ticker.C:
		}
		tick++
		p.node.Advance(p.baseNs + tick*int64(interval))
		skewed := p.skew.Load()
		for j, topic := range p.topics {
			rs := make([]sensor.Reading, p.batch)
			for k := range rs {
				p.seqs[j]++
				ts := p.baseNs + p.seqs[j]*stepNs
				if skewed {
					ts += skewNs
				}
				rs[k] = sensor.Reading{Time: ts, Value: sensorValue(p.node, j)}
			}
			p.pending = append(p.pending, outBatch{topic: topic, rs: rs})
		}
		if p.ooo.Load() {
			if len(p.pending) >= oooWindow {
				p.flushReversed()
			}
		} else {
			p.flushPending()
		}
	}
}

// flushPending publishes buffered batches in generation order.
func (p *pusher) flushPending() {
	for _, b := range p.pending {
		p.publish(b)
	}
	p.pending = p.pending[:0]
}

// flushReversed publishes buffered batches newest-first — the OOO
// flood: the store sees every window's timestamps in reverse.
func (p *pusher) flushReversed() {
	for i := len(p.pending) - 1; i >= 0; i-- {
		p.publish(p.pending[i])
	}
	p.pending = p.pending[:0]
}

// publish records the batch as sent, then writes it out. Recording
// first is deliberate: the broker routes on its own goroutine, so a
// delivery may be observed before Publish even returns; a reading the
// ledger did not know about would be misclassified as phantom.
//
// A failed publish is never retried: the frame may or may not have
// reached the broker, and resending it on a fresh connection could
// deliver it twice — the at-most-once contract forbids that. The batch
// becomes an unacked drop and the pusher redials for the next one.
func (p *pusher) publish(b outBatch) {
	p.ledger.RecordSent(b.topic, b.rs)
	if p.client == nil {
		c, err := transport.Dial(p.addr)
		if err != nil {
			return // batch dropped unacked; redial on the next batch
		}
		p.client = c
	}
	if err := p.client.Publish(b.topic, b.rs); err != nil {
		// Dead connection (likely an injected kill): drop the handle
		// so the next batch redials.
		p.client.Close()
		p.client = nil
	}
}
