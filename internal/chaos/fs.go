// Package chaos is the cluster-in-a-process fault-injection harness:
// it drives fleets of simulated pushers (internal/sim) through the real
// broker → collect → tsdb → REST pipeline in one process, injects
// faults underneath and around it — torn WAL writes, failed and
// stalling fsyncs, a full disk (ENOSPC), killed pusher connections,
// subscribers that stop reading, clock skew, out-of-order floods,
// ingest backpressure — and reconciles every reading sent against what
// the store reports afterwards. Pushers run with the transport's
// at-least-once spool by default, and the agent's dedup keeps the
// store exactly-once, so a passing verdict means zero lost readings,
// period: nothing acked-lost, nothing unacked-dropped, nothing
// duplicated, nothing corrupted.
//
// The three pieces are FS (a fault-injecting tsdb.FS), Ledger (the
// exact per-reading accounting) and Scenario (the seeded, deterministic
// runner that wires them to a live Agent and emits a Verdict). Run it
// via cmd/chaosrunner, `make chaos` or `make chaos-smoke`; the verdict
// format is documented in docs/TESTING.md.
package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"sync"
	"time"

	"github.com/dcdb/wintermute/internal/tsdb"
)

// Op names a filesystem operation class a fault rule can match.
type Op uint8

// Filesystem operations that fault rules target. OpWrite and OpSync
// cover open-handle writes/fsyncs (the WAL append path); the rest map
// one-to-one onto tsdb.FS methods.
const (
	OpWrite Op = iota
	OpSync
	OpSyncDir
	OpCreate
	OpRename
	OpRemove
	OpOpen
	numOps
)

// String returns the operation's verdict-friendly name.
func (o Op) String() string {
	switch o {
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	case OpSyncDir:
		return "syncdir"
	case OpCreate:
		return "create"
	case OpRename:
		return "rename"
	case OpRemove:
		return "remove"
	case OpOpen:
		return "open"
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Class partitions the database's files by role, so a rule can target
// WAL appends without also breaking segment or meta writes.
type Class uint8

// File classes derived from the path the operation touches.
const (
	// ClassWAL matches write-ahead-log files (*.wal).
	ClassWAL Class = iota
	// ClassSeg matches immutable segment files (*.seg and their *.tmp
	// staging twins).
	ClassSeg
	// ClassMeta matches everything else in the database directory:
	// meta/floor files and directory-level operations.
	ClassMeta
	numClasses
)

// String returns the class's verdict-friendly name.
func (c Class) String() string {
	switch c {
	case ClassWAL:
		return "wal"
	case ClassSeg:
		return "seg"
	case ClassMeta:
		return "meta"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// classify maps a path to its file class by suffix.
func classify(name string) Class {
	switch {
	case strings.HasSuffix(name, ".wal"):
		return ClassWAL
	case strings.HasSuffix(name, ".seg"), strings.HasSuffix(name, ".tmp"):
		return ClassSeg
	default:
		return ClassMeta
	}
}

// ErrInjected is the default error returned by an injected fault; loss
// accounting treats any operation failing with it as chaos-induced, not
// an environment problem.
var ErrInjected = errors.New("chaos: injected fault")

// Fault is one active fault rule: with probability P the matched
// operation first stalls for Stall, then (unless the rule is
// stall-only) fails with Err. Partial additionally applies to OpWrite:
// the first half of the buffer reaches the file before the error, the
// torn-write case a crashed writer leaves behind.
type Fault struct {
	// P is the per-operation injection probability in [0, 1].
	P float64
	// Err is the error returned on injection; nil selects ErrInjected.
	// StallOnly suppresses it.
	Err error
	// Stall delays the operation before it proceeds or fails.
	Stall time.Duration
	// StallOnly makes the rule a pure delay: the operation still
	// succeeds after Stall.
	StallOnly bool
	// Partial makes an injected OpWrite persist a prefix of the buffer
	// before failing (a torn write). Ignored for other ops.
	Partial bool
}

// FS is a fault-injecting tsdb.FS: it forwards every operation to a
// real filesystem underneath, except when an active fault rule keyed by
// (Op, Class) fires. Rules are installed and cleared at runtime by the
// scenario's fault schedule; injections are counted per (Op, Class) for
// the verdict. Safe for concurrent use.
type FS struct {
	inner tsdb.FS

	mu    sync.Mutex
	rng   *rand.Rand
	rules [numOps][numClasses]*Fault
	hits  [numOps][numClasses]uint64
}

// NewFS wraps inner (nil selects tsdb.OSFS) with a fault layer drawing
// injection decisions from the given seed.
func NewFS(inner tsdb.FS, seed int64) *FS {
	if inner == nil {
		inner = tsdb.OSFS
	}
	return &FS{inner: inner, rng: rand.New(rand.NewSource(seed))}
}

// Set installs (or replaces) the fault rule for one (op, class) pair.
func (f *FS) Set(op Op, class Class, fault Fault) {
	f.mu.Lock()
	cp := fault
	f.rules[op][class] = &cp
	f.mu.Unlock()
}

// Clear removes the fault rule for one (op, class) pair.
func (f *FS) Clear(op Op, class Class) {
	f.mu.Lock()
	f.rules[op][class] = nil
	f.mu.Unlock()
}

// ClearAll removes every fault rule; injection counters are kept.
func (f *FS) ClearAll() {
	f.mu.Lock()
	f.rules = [numOps][numClasses]*Fault{}
	f.mu.Unlock()
}

// Injected returns the per-rule injection counts keyed "op/class"
// (e.g. "sync/wal"), omitting zero entries.
func (f *FS) Injected() map[string]uint64 {
	out := make(map[string]uint64)
	f.mu.Lock()
	for op := Op(0); op < numOps; op++ {
		for c := Class(0); c < numClasses; c++ {
			if n := f.hits[op][c]; n > 0 {
				out[op.String()+"/"+c.String()] = n
			}
		}
	}
	f.mu.Unlock()
	return out
}

// InjectedTotal returns the total number of injected faults.
func (f *FS) InjectedTotal() uint64 {
	var n uint64
	for _, v := range f.Injected() {
		n += v
	}
	return n
}

// decide rolls the dice for one operation. It returns the matched fault
// (stall already recorded) or nil when the operation proceeds cleanly.
func (f *FS) decide(op Op, class Class) *Fault {
	f.mu.Lock()
	rule := f.rules[op][class]
	if rule == nil || rule.P <= 0 || f.rng.Float64() >= rule.P {
		f.mu.Unlock()
		return nil
	}
	f.hits[op][class]++
	f.mu.Unlock()
	return rule
}

// faultErr resolves the error an injected (non-stall-only) fault yields.
func faultErr(rule *Fault) error {
	if rule.Err != nil {
		return rule.Err
	}
	return ErrInjected
}

// apply runs the stall/fail protocol for an injected rule. It returns
// the injected error, or nil when the rule is stall-only and the
// operation should proceed.
func apply(rule *Fault) error {
	if rule == nil {
		return nil
	}
	if rule.Stall > 0 {
		time.Sleep(rule.Stall)
	}
	if rule.StallOnly {
		return nil
	}
	return faultErr(rule)
}

// MkdirAll implements tsdb.FS; never faulted (a database that cannot
// create its directory fails Open, which is not an interesting run).
func (f *FS) MkdirAll(path string, perm os.FileMode) error {
	return f.inner.MkdirAll(path, perm)
}

// OpenFile implements tsdb.FS. An OpOpen fault fails the open; a
// successful open returns a handle whose Write and Sync consult the
// fault table on every call.
func (f *FS) OpenFile(name string, flag int, perm os.FileMode) (tsdb.File, error) {
	class := classify(name)
	if err := apply(f.decide(OpOpen, class)); err != nil {
		return nil, err
	}
	file, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &chaosFile{File: file, fs: f, class: class}, nil
}

// Open implements tsdb.FS. Read-only opens share the OpOpen rule.
func (f *FS) Open(name string) (tsdb.File, error) {
	class := classify(name)
	if err := apply(f.decide(OpOpen, class)); err != nil {
		return nil, err
	}
	file, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &chaosFile{File: file, fs: f, class: class}, nil
}

// Create implements tsdb.FS, subject to OpCreate rules.
func (f *FS) Create(name string) (tsdb.File, error) {
	class := classify(name)
	if err := apply(f.decide(OpCreate, class)); err != nil {
		return nil, err
	}
	file, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &chaosFile{File: file, fs: f, class: class}, nil
}

// ReadDir implements tsdb.FS; never faulted (listing happens at Open).
func (f *FS) ReadDir(name string) ([]os.DirEntry, error) { return f.inner.ReadDir(name) }

// ReadFile implements tsdb.FS; never faulted (replay reads happen at
// Open, where torn tails — produced by write faults — are the
// interesting input, not read errors).
func (f *FS) ReadFile(name string) ([]byte, error) { return f.inner.ReadFile(name) }

// WriteFile implements tsdb.FS, subject to OpWrite rules (Partial
// persists a half-length prefix).
func (f *FS) WriteFile(name string, data []byte, perm os.FileMode) error {
	class := classify(name)
	if rule := f.decide(OpWrite, class); rule != nil {
		if rule.Stall > 0 {
			time.Sleep(rule.Stall)
		}
		if !rule.StallOnly {
			if rule.Partial && len(data) > 1 {
				_ = f.inner.WriteFile(name, data[:len(data)/2], perm)
			}
			return faultErr(rule)
		}
	}
	return f.inner.WriteFile(name, data, perm)
}

// Rename implements tsdb.FS, subject to OpRename rules.
func (f *FS) Rename(oldpath, newpath string) error {
	if err := apply(f.decide(OpRename, classify(newpath))); err != nil {
		return err
	}
	return f.inner.Rename(oldpath, newpath)
}

// Remove implements tsdb.FS, subject to OpRemove rules.
func (f *FS) Remove(name string) error {
	if err := apply(f.decide(OpRemove, classify(name))); err != nil {
		return err
	}
	return f.inner.Remove(name)
}

// Stat implements tsdb.FS; never faulted.
func (f *FS) Stat(name string) (os.FileInfo, error) { return f.inner.Stat(name) }

// SyncDir implements tsdb.FS, subject to OpSyncDir rules (class meta:
// directory syncs are not per-file).
func (f *FS) SyncDir(name string) error {
	if err := apply(f.decide(OpSyncDir, ClassMeta)); err != nil {
		return err
	}
	return f.inner.SyncDir(name)
}

// chaosFile decorates an open handle: Write and Sync consult the fault
// table on every call, so a rule installed mid-run bites an
// already-open WAL exactly like a disk going bad under a live file.
type chaosFile struct {
	tsdb.File
	fs    *FS
	class Class
}

// Write applies OpWrite rules: an injected Partial fault forwards the
// first half of the buffer before failing, modelling a torn append.
func (c *chaosFile) Write(p []byte) (int, error) {
	if rule := c.fs.decide(OpWrite, c.class); rule != nil {
		if rule.Stall > 0 {
			time.Sleep(rule.Stall)
		}
		if !rule.StallOnly {
			n := 0
			if rule.Partial && len(p) > 1 {
				n, _ = c.File.Write(p[:len(p)/2])
			}
			return n, faultErr(rule)
		}
	}
	return c.File.Write(p)
}

// Sync applies OpSync rules — the mid-group-commit fsync stall/fail
// faults the WAL leader path is gated on.
func (c *chaosFile) Sync() error {
	if err := apply(c.fs.decide(OpSync, c.class)); err != nil {
		return err
	}
	return c.File.Sync()
}
