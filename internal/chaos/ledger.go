package chaos

import (
	"sync"

	"github.com/dcdb/wintermute/internal/sensor"
	"github.com/dcdb/wintermute/internal/transport"
)

// entry is the ledger's record of one reading: the value that was
// sent and the delivery/storage bits filled in as the run progresses.
type entry struct {
	value     float64
	delivered bool
	stored    bool
	mismatch  bool
	copies    int // stored occurrences; >1 is an at-most-once violation
}

// Ledger is the harness's exact accounting of every reading: pushers
// record what they sent, a broker-side local subscriber records what
// the pipeline accepted (delivery is synchronous with the agent's own
// ingest handler, so the two observations cannot diverge), and
// Reconcile compares both against what the store returns afterwards.
//
// The scenario guarantees (topic, timestamp) uniqueness across all
// pushers, which is what makes the per-reading classification exact.
type Ledger struct {
	mu sync.Mutex
	// sent maps topic → timestamp → entry for every reading whose
	// Publish returned nil.
	sent map[sensor.Topic]map[int64]*entry
	// phantomDelivered counts delivered readings no pusher sent.
	phantomDelivered uint64
	deliveredCount   uint64
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{sent: make(map[sensor.Topic]map[int64]*entry)}
}

// RecordSent logs one published batch. Call it only after Publish
// returned nil: a failed publish never entered the pipeline and must
// not be accounted.
func (l *Ledger) RecordSent(topic sensor.Topic, rs []sensor.Reading) {
	l.mu.Lock()
	m := l.sent[topic]
	if m == nil {
		m = make(map[int64]*entry, 1024)
		l.sent[topic] = m
	}
	for _, r := range rs {
		m[r.Time] = &entry{value: r.Value}
	}
	l.mu.Unlock()
}

// RecordDelivered is the broker-side observation hook: register it
// with Broker.SubscribeLocal("#", l.RecordDelivered) AFTER the collect
// agent's own subscription, so a message is marked delivered if and
// only if the agent's ingest handler ran for it in the same
// synchronous route pass. Each reading is counted on its first
// delivery only: an at-least-once pusher redelivers whole batches
// after a reconnect, the agent's dedup admits just the first copy, and
// deliveredCount must keep matching what the agent actually ingested.
func (l *Ledger) RecordDelivered(m transport.Message) {
	l.mu.Lock()
	byTS := l.sent[m.Topic]
	for _, r := range m.Readings {
		e := byTS[r.Time]
		if e == nil {
			l.phantomDelivered++
			continue
		}
		if !e.delivered {
			e.delivered = true
			l.deliveredCount++
		}
	}
	l.mu.Unlock()
}

// DeliveredReadings returns how many sent readings the broker has
// delivered so far; the scenario polls it against the agent's ingest
// counter to detect queue drain.
func (l *Ledger) DeliveredReadings() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.deliveredCount
}

// SentTopics returns every topic with at least one sent reading.
func (l *Ledger) SentTopics() []sensor.Topic {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]sensor.Topic, 0, len(l.sent))
	for t := range l.sent {
		out = append(out, t)
	}
	return out
}

// Accounting is the reconciled fate of every reading the scenario sent.
// A healthy pipeline has AckedLost, Duplicates, Phantom and
// ValueMismatch all zero. UnackedDropped counts readings handed to a
// client but never routed: with the at-least-once spool active (the
// default) the spool must redeliver them, so a passing verdict requires
// zero; only a fire-and-forget run (Scenario.SpoolBatches < 0) tolerates
// them as connection-kill collateral.
type Accounting struct {
	// Sent counts readings whose Publish returned nil.
	Sent uint64 `json:"sent"`
	// Delivered counts sent readings the broker routed to the agent.
	Delivered uint64 `json:"delivered"`
	// Stored counts sent readings present in the store afterwards.
	Stored uint64 `json:"stored"`
	// AckedLost counts readings the pipeline accepted (delivered) but
	// the store cannot produce — each one is a bug.
	AckedLost uint64 `json:"acked_lost"`
	// UnackedDropped counts readings handed to a client but never
	// routed — the frames a killed connection ate. Forbidden when the
	// at-least-once spool is on; allowed only in fire-and-forget runs.
	UnackedDropped uint64 `json:"unacked_dropped"`
	// Duplicates counts (topic, timestamp) keys the store returned more
	// than once — an at-most-once violation.
	Duplicates uint64 `json:"duplicates"`
	// Phantom counts stored or delivered readings no pusher sent.
	Phantom uint64 `json:"phantom"`
	// ValueMismatch counts stored readings whose value differs from the
	// one sent (storage is lossless; any drift is corruption).
	ValueMismatch uint64 `json:"value_mismatch"`
}

// Clean reports whether the accounting shows zero pipeline bugs.
func (a Accounting) Clean() bool {
	return a.AckedLost == 0 && a.Duplicates == 0 && a.Phantom == 0 && a.ValueMismatch == 0
}

// Reconcile classifies every sent reading against the store. rangeAll
// must return every stored reading of the topic (the scenario passes a
// full-time-range Store.Range). Call it after the pipeline has drained:
// readings still in flight would be misclassified as acked-lost.
func (l *Ledger) Reconcile(rangeAll func(sensor.Topic) []sensor.Reading) Accounting {
	l.mu.Lock()
	defer l.mu.Unlock()
	var acct Accounting
	acct.Phantom = l.phantomDelivered
	for topic, byTS := range l.sent {
		for _, r := range rangeAll(topic) {
			e := byTS[r.Time]
			if e == nil {
				acct.Phantom++
				continue
			}
			e.copies++
			if e.copies > 1 {
				acct.Duplicates++
				continue
			}
			e.stored = true
			if r.Value != e.value {
				e.mismatch = true
			}
		}
		for _, e := range byTS {
			acct.Sent++
			if e.delivered {
				acct.Delivered++
			}
			switch {
			case e.stored && e.mismatch:
				acct.Stored++
				acct.ValueMismatch++
			case e.stored:
				acct.Stored++
			case e.delivered:
				acct.AckedLost++
			default:
				acct.UnackedDropped++
			}
		}
	}
	return acct
}
