package sensor

import "time"

// Reading is a single sensor sample: a numerical value paired with a
// nanosecond Unix timestamp. Readings are the atomic unit of data flowing
// through pushers, collect agents, caches, the storage backend and every
// Wintermute operator.
type Reading struct {
	Value float64
	Time  int64 // nanoseconds since the Unix epoch
}

// At builds a reading from a value and a wall-clock time.
func At(v float64, t time.Time) Reading {
	return Reading{Value: v, Time: t.UnixNano()}
}

// T returns the reading's timestamp as a time.Time.
func (r Reading) T() time.Time {
	return time.Unix(0, r.Time)
}

// Before reports whether r was sampled strictly before s.
func (r Reading) Before(s Reading) bool {
	return r.Time < s.Time
}

// Rate converts two samples of a monotonic counter into a per-second rate.
// It returns 0 when the timestamps do not advance or the counter wrapped
// (cur < prev), which is the conventional defensive behaviour for hardware
// counters.
func Rate(prev, cur Reading) float64 {
	dt := float64(cur.Time-prev.Time) / float64(time.Second)
	if dt <= 0 {
		return 0
	}
	dv := cur.Value - prev.Value
	if dv < 0 {
		return 0
	}
	return dv / dt
}

// Delta returns the value difference cur-prev, clamped to zero when a
// monotonic counter wraps.
func Delta(prev, cur Reading) float64 {
	d := cur.Value - prev.Value
	if d < 0 {
		return 0
	}
	return d
}

// Info describes a sensor: its topic, the physical unit of its readings,
// its nominal sampling interval and whether it is a monotonically
// increasing counter (as opposed to a gauge).
type Info struct {
	Topic       Topic
	Unit        string
	Interval    time.Duration
	Monotonic   bool
	Description string
}

// Name returns the sensor's short name (last topic segment).
func (i Info) Name() string { return i.Topic.Name() }
