// Package sensor defines the basic monitoring entities shared by every
// component of the DCDB/Wintermute stack: hierarchical topics, timestamped
// readings and sensor metadata.
//
// A topic is a forward-slash-separated path, MQTT-compatible, expressing the
// physical or logical placement of a sensor in an HPC system, for example
//
//	/rack4/chassis2/server3/power
//
// The last segment names the sensor itself; the preceding path identifies
// the component the sensor belongs to. Component (tree node) paths carry a
// trailing slash, e.g. /rack4/chassis2/server3/, mirroring the convention
// used throughout the Wintermute paper.
package sensor

import (
	"errors"
	"strings"
)

// Topic is a slash-separated sensor or component path.
//
// Sensor topics have no trailing slash (/r01/c01/s01/power); component
// paths keep one (/r01/c01/s01/). The root component is "/".
type Topic string

// Root is the path of the root component of the sensor tree.
const Root Topic = "/"

// ErrBadTopic reports a malformed topic string.
var ErrBadTopic = errors.New("sensor: malformed topic")

// Clean normalises a raw topic string: it guarantees a leading slash,
// collapses repeated slashes and trims surrounding whitespace. A trailing
// slash is preserved, since it distinguishes component paths from sensor
// topics. Clean is idempotent.
func Clean(raw string) Topic {
	s := strings.TrimSpace(raw)
	if s == "" {
		return Root
	}
	trailing := strings.HasSuffix(s, "/")
	parts := strings.Split(s, "/")
	segs := parts[:0]
	for _, p := range parts {
		if p != "" {
			segs = append(segs, p)
		}
	}
	if len(segs) == 0 {
		return Root
	}
	var b strings.Builder
	b.Grow(len(s) + 2)
	for _, p := range segs {
		b.WriteByte('/')
		b.WriteString(p)
	}
	if trailing {
		b.WriteByte('/')
	}
	return Topic(b.String())
}

// Validate reports whether t is a well-formed topic: non-empty, leading
// slash, no empty interior segments and no whitespace inside segments.
func (t Topic) Validate() error {
	if t == Root {
		return nil
	}
	s := string(t)
	if s == "" || s[0] != '/' {
		return ErrBadTopic
	}
	body := strings.TrimSuffix(s[1:], "/")
	if body == "" {
		return ErrBadTopic
	}
	for _, seg := range strings.Split(body, "/") {
		if seg == "" || strings.ContainsAny(seg, " \t\n#+") {
			return ErrBadTopic
		}
	}
	return nil
}

// IsNode reports whether t denotes a component (tree node) path rather than
// a sensor topic. Component paths end with a slash; the root is a node.
func (t Topic) IsNode() bool {
	return t == Root || strings.HasSuffix(string(t), "/")
}

// Segments returns the path segments of t, excluding empty ones. The root
// has no segments.
func (t Topic) Segments() []string {
	if t == Root || t == "" {
		return nil
	}
	s := strings.Trim(string(t), "/")
	if s == "" {
		return nil
	}
	return strings.Split(s, "/")
}

// Depth returns the number of path segments. The root has depth 0; the
// sensor /r01/c01/s01/power has depth 4 and its component /r01/c01/s01/ has
// depth 3.
func (t Topic) Depth() int {
	return len(t.Segments())
}

// Name returns the last segment of the topic: the sensor name for sensor
// topics, the component name for node paths. The root has an empty name.
func (t Topic) Name() string {
	segs := t.Segments()
	if len(segs) == 0 {
		return ""
	}
	return segs[len(segs)-1]
}

// Node returns the component path that contains this topic: for a sensor
// topic its owning component, for a component path its parent component.
// The result always carries a trailing slash. The parent of the root is the
// root itself.
func (t Topic) Node() Topic {
	segs := t.Segments()
	if len(segs) <= 1 {
		return Root
	}
	return Topic("/" + strings.Join(segs[:len(segs)-1], "/") + "/")
}

// Join appends a name to a component path, producing a sensor topic (no
// trailing slash). Join panics if name contains a slash; sensors are always
// leaves.
func (t Topic) Join(name string) Topic {
	if strings.Contains(name, "/") {
		panic("sensor: Join name must not contain '/'")
	}
	if t == Root {
		return Topic("/" + name)
	}
	s := strings.TrimSuffix(string(t), "/")
	return Topic(s + "/" + name)
}

// JoinNode appends a component name to a component path, producing a child
// component path with a trailing slash.
func (t Topic) JoinNode(name string) Topic {
	if strings.Contains(name, "/") {
		panic("sensor: JoinNode name must not contain '/'")
	}
	if t == Root {
		return Topic("/" + name + "/")
	}
	s := strings.TrimSuffix(string(t), "/")
	return Topic(s + "/" + name + "/")
}

// AsNode reinterprets t as a component path, adding the trailing slash if
// missing.
func (t Topic) AsNode() Topic {
	if t.IsNode() {
		return t
	}
	return Topic(string(t) + "/")
}

// AsSensor reinterprets t as a sensor topic, stripping any trailing slash.
// The root cannot be a sensor; AsSensor of the root returns the root.
func (t Topic) AsSensor() Topic {
	if t == Root {
		return Root
	}
	return Topic(strings.TrimSuffix(string(t), "/"))
}

// HasPrefix reports whether t lies inside the component subtree rooted at
// prefix. The comparison is segment-aware: /r1/c10 is not inside /r1/c1/.
func (t Topic) HasPrefix(prefix Topic) bool {
	if prefix == Root {
		return true
	}
	p := strings.TrimSuffix(string(prefix), "/")
	s := string(t)
	if !strings.HasPrefix(s, p) {
		return false
	}
	rest := s[len(p):]
	return rest == "" || rest == "/" || rest[0] == '/'
}

// Ancestor reports whether node a is a strict ancestor of topic b in the
// sensor tree (a and b are expected to be component paths or sensor
// topics; a sensor is never an ancestor).
func Ancestor(a, b Topic) bool {
	if !a.IsNode() {
		return false
	}
	return a != b && b.HasPrefix(a)
}

// Related reports whether two component paths lie on a common root-to-leaf
// path, i.e. one is an ancestor of (or equal to) the other. This is the
// hierarchical-relation test used when resolving pattern units.
func Related(a, b Topic) bool {
	return a == b || Ancestor(a, b) || Ancestor(b, a)
}

// MatchFilter reports whether the topic filter f (which may end in the
// MQTT-style multi-level wildcard "#") matches topic t. A filter without a
// wildcard matches only itself; "/a/b/#" matches every topic below /a/b.
func MatchFilter(f string, t Topic) bool {
	if f == "#" || f == "/#" {
		return true
	}
	if strings.HasSuffix(f, "/#") {
		return t.HasPrefix(Topic(f[:len(f)-1]))
	}
	return string(t) == f
}

// Hash returns the FNV-1a hash of the topic bytes: the shared sharding
// function for every topic-striped structure (cache set shards, tsdb
// head stripes, collect-agent ingest workers), so one topic always
// lands on the same stripe everywhere.
func (t Topic) Hash() uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(t); i++ {
		h ^= uint32(t[i])
		h *= 16777619
	}
	return h
}
