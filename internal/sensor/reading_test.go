package sensor

import (
	"testing"
	"testing/quick"
	"time"
)

func TestReadingAt(t *testing.T) {
	now := time.Now()
	r := At(42.5, now)
	if r.Value != 42.5 {
		t.Errorf("Value = %v", r.Value)
	}
	if !r.T().Equal(now.Truncate(0)) && r.Time != now.UnixNano() {
		t.Errorf("Time round trip failed: %v vs %v", r.T(), now)
	}
}

func TestBefore(t *testing.T) {
	a := Reading{Value: 1, Time: 100}
	b := Reading{Value: 2, Time: 200}
	if !a.Before(b) || b.Before(a) || a.Before(a) {
		t.Error("Before ordering wrong")
	}
}

func TestRate(t *testing.T) {
	sec := int64(time.Second)
	cases := []struct {
		prev, cur Reading
		want      float64
	}{
		{Reading{0, 0}, Reading{100, sec}, 100},
		{Reading{50, 0}, Reading{100, 2 * sec}, 25},
		{Reading{100, 0}, Reading{50, sec}, 0},  // counter wrap
		{Reading{0, sec}, Reading{100, sec}, 0}, // no time advance
		{Reading{0, 2 * sec}, Reading{100, sec}, 0},
	}
	for i, c := range cases {
		if got := Rate(c.prev, c.cur); got != c.want {
			t.Errorf("case %d: Rate = %v, want %v", i, got, c.want)
		}
	}
}

func TestRateNonNegativeProperty(t *testing.T) {
	f := func(v1, v2 float64, t1, t2 int64) bool {
		r := Rate(Reading{v1, t1}, Reading{v2, t2})
		return r >= 0 || r != r // allow NaN propagation from NaN inputs
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDelta(t *testing.T) {
	if got := Delta(Reading{10, 0}, Reading{25, 1}); got != 15 {
		t.Errorf("Delta = %v, want 15", got)
	}
	if got := Delta(Reading{25, 0}, Reading{10, 1}); got != 0 {
		t.Errorf("Delta wrap = %v, want 0", got)
	}
}

func TestInfoName(t *testing.T) {
	i := Info{Topic: "/r01/c01/s01/power", Unit: "W"}
	if i.Name() != "power" {
		t.Errorf("Name = %q", i.Name())
	}
}
