package sensor

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestCleanBasic(t *testing.T) {
	cases := []struct {
		in   string
		want Topic
	}{
		{"", "/"},
		{"/", "/"},
		{"//", "/"},
		{"power", "/power"},
		{"/r01/c01/s01/power", "/r01/c01/s01/power"},
		{"r01/c01/s01/power", "/r01/c01/s01/power"},
		{"/r01//c01///s01/power", "/r01/c01/s01/power"},
		{"/r01/c01/s01/", "/r01/c01/s01/"},
		{"  /r01/c01/ ", "/r01/c01/"},
	}
	for _, c := range cases {
		if got := Clean(c.in); got != c.want {
			t.Errorf("Clean(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestCleanIdempotent(t *testing.T) {
	f := func(raw string) bool {
		once := Clean(raw)
		return Clean(string(once)) == once
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValidate(t *testing.T) {
	valid := []Topic{"/", "/power", "/r01/c01/s01/power", "/r01/c01/"}
	for _, v := range valid {
		if err := v.Validate(); err != nil {
			t.Errorf("Validate(%q) = %v, want nil", v, err)
		}
	}
	invalid := []Topic{"", "power", "/a//b", "/a b", "/a/#", "/a/+/b"}
	for _, v := range invalid {
		if err := v.Validate(); err == nil {
			t.Errorf("Validate(%q) = nil, want error", v)
		}
	}
}

func TestSegmentsDepthName(t *testing.T) {
	tp := Topic("/r01/c02/s03/power")
	segs := tp.Segments()
	if len(segs) != 4 || segs[0] != "r01" || segs[3] != "power" {
		t.Fatalf("Segments = %v", segs)
	}
	if tp.Depth() != 4 {
		t.Errorf("Depth = %d, want 4", tp.Depth())
	}
	if tp.Name() != "power" {
		t.Errorf("Name = %q, want power", tp.Name())
	}
	if Root.Depth() != 0 || Root.Name() != "" {
		t.Errorf("root depth/name wrong: %d %q", Root.Depth(), Root.Name())
	}
}

func TestNodeOfSensor(t *testing.T) {
	if got := Topic("/r01/c02/s03/power").Node(); got != "/r01/c02/s03/" {
		t.Errorf("Node = %q", got)
	}
	if got := Topic("/r01/c02/s03/").Node(); got != "/r01/c02/" {
		t.Errorf("Node of node = %q", got)
	}
	if got := Topic("/power").Node(); got != Root {
		t.Errorf("Node of top-level sensor = %q, want /", got)
	}
	if got := Root.Node(); got != Root {
		t.Errorf("Node of root = %q, want /", got)
	}
}

func TestJoinNodeRoundTrip(t *testing.T) {
	f := func(a, b uint8) bool {
		// Build a two-level component path from constrained names so the
		// property holds for valid topics.
		n1 := "r" + strings.Repeat("x", int(a%4)+1)
		n2 := "s" + strings.Repeat("y", int(b%4)+1)
		node := Root.JoinNode(n1).JoinNode(n2)
		sens := node.Join("power")
		return sens.Node() == node && sens.Name() == "power"
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAsNodeAsSensor(t *testing.T) {
	if got := Topic("/a/b").AsNode(); got != "/a/b/" {
		t.Errorf("AsNode = %q", got)
	}
	if got := Topic("/a/b/").AsNode(); got != "/a/b/" {
		t.Errorf("AsNode idempotent = %q", got)
	}
	if got := Topic("/a/b/").AsSensor(); got != "/a/b" {
		t.Errorf("AsSensor = %q", got)
	}
	if got := Root.AsSensor(); got != Root {
		t.Errorf("AsSensor(root) = %q", got)
	}
}

func TestHasPrefix(t *testing.T) {
	cases := []struct {
		t, p Topic
		want bool
	}{
		{"/r1/c1/s1/power", "/r1/c1/", true},
		{"/r1/c1/s1/power", "/r1/c1/s1/", true},
		{"/r1/c10/s1/power", "/r1/c1/", false}, // segment-aware
		{"/r1/c1/", "/r1/c1/", true},
		{"/anything", "/", true},
		{"/r2/c1", "/r1/", false},
	}
	for _, c := range cases {
		if got := c.t.HasPrefix(c.p); got != c.want {
			t.Errorf("HasPrefix(%q, %q) = %v, want %v", c.t, c.p, got, c.want)
		}
	}
}

func TestAncestorRelated(t *testing.T) {
	if !Ancestor("/r1/", "/r1/c1/s1/") {
		t.Error("rack should be ancestor of node")
	}
	if Ancestor("/r1/c1/s1/", "/r1/") {
		t.Error("node is not ancestor of rack")
	}
	if Ancestor("/r1/", "/r1/") {
		t.Error("ancestor is strict")
	}
	if Ancestor("/r1/c1/s1", "/r1/c1/s1/x") {
		t.Error("a sensor is never an ancestor")
	}
	if !Related("/r1/", "/r1/c1/") || !Related("/r1/c1/", "/r1/") {
		t.Error("Related should be symmetric on ancestry")
	}
	if !Related("/r1/c1/", "/r1/c1/") {
		t.Error("Related should include equality")
	}
	if Related("/r1/c1/", "/r1/c2/") {
		t.Error("siblings are not related")
	}
}

func TestRelatedProperty(t *testing.T) {
	// For any pair of nodes built by extending a common base, the deeper one
	// is related to the base but two diverging extensions are not.
	f := func(n uint8) bool {
		base := Root.JoinNode("r1")
		left := base.JoinNode("a")
		right := base.JoinNode("b")
		deep := left
		for i := 0; i < int(n%5); i++ {
			deep = deep.JoinNode("x")
		}
		return Related(base, deep) && !Related(left, right)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMatchFilter(t *testing.T) {
	cases := []struct {
		f    string
		t    Topic
		want bool
	}{
		{"#", "/a/b/c", true},
		{"/#", "/a", true},
		{"/a/b/#", "/a/b/c", true},
		{"/a/b/#", "/a/b", true},
		{"/a/b/#", "/a/bc", false},
		{"/a/b", "/a/b", true},
		{"/a/b", "/a/b/c", false},
	}
	for _, c := range cases {
		if got := MatchFilter(c.f, c.t); got != c.want {
			t.Errorf("MatchFilter(%q, %q) = %v, want %v", c.f, c.t, got, c.want)
		}
	}
}
