// Package aggregator implements the general-purpose aggregation operator
// plugin: per unit, it reduces the readings of all input sensors over a
// time window to a single statistic (mean, sum, min, max, std or latest
// delta) written to the unit's outputs.
//
// It is the workhorse for hierarchical roll-ups — e.g. rack power as the
// sum of node powers — and the first stage of many pipelines (paper
// §IV-d). Wintermute's production deployment on CooLMUC-3 "performs
// aggregation of monitored metrics" with exactly this kind of plugin.
package aggregator

import (
	"encoding/json"
	"fmt"
	"math"
	"time"

	"github.com/dcdb/wintermute/internal/core"
	"github.com/dcdb/wintermute/internal/core/units"
	"github.com/dcdb/wintermute/internal/ml/stats"
	"github.com/dcdb/wintermute/internal/sensor"
	"github.com/dcdb/wintermute/internal/store"
)

// Op names an aggregation function.
type Op string

// Supported aggregation operations. Mean, Min, Max and Std reduce over
// every reading of every input in the window; Sum adds the per-sensor
// window means (so a rack-power roll-up is the sum of node powers, not a
// multiple of it); Delta adds the per-sensor last-minus-first differences,
// the natural reduction for monotonic counters.
const (
	Mean  Op = "mean"
	Sum   Op = "sum"
	Min   Op = "min"
	Max   Op = "max"
	Std   Op = "std"
	Delta Op = "delta"
)

// Config parameterises an aggregator operator.
type Config struct {
	core.OperatorConfig
	// Operation is one of mean, sum, min, max, std, delta (default mean).
	Operation Op `json:"operation"`
	// WindowMs is the aggregation window in milliseconds (default: one
	// computation interval).
	WindowMs int `json:"windowMs"`
}

// Operator aggregates input readings into one statistic per unit.
type Operator struct {
	*core.Base
	op     Op
	window time.Duration
}

// New builds an aggregator operator from a parsed config.
func New(cfg Config, qe *core.QueryEngine) (*Operator, error) {
	switch cfg.Operation {
	case "":
		cfg.Operation = Mean
	case Mean, Sum, Min, Max, Std, Delta:
	default:
		return nil, fmt.Errorf("aggregator: unknown operation %q", cfg.Operation)
	}
	base, err := cfg.OperatorConfig.Build("aggregator", qe.Navigator())
	if err != nil {
		return nil, err
	}
	window := time.Duration(cfg.WindowMs) * time.Millisecond
	if window <= 0 {
		window = cfg.OperatorConfig.IntervalDuration()
	}
	return &Operator{Base: base, op: cfg.Operation, window: window}, nil
}

// Compute implements core.Operator.
func (o *Operator) Compute(qe *core.QueryEngine, u *units.Unit, now time.Time) ([]core.Output, error) {
	return o.ComputeInto(qe, u, now, core.NewTickContext())
}

// ComputeInto implements core.ContextOperator: queries go through the
// unit's bound sensor handles and all working slices live in the tick
// context, so the steady-state computation performs no allocations.
//
// Mean, Sum, Min and Max stream through the Query Engine's aggregation
// path (BoundSensor.AggregateRelative): the window is reduced inside
// the cache ring — or, on the store fallback, inside the backend's
// aggregation engine — without materializing raw readings. Std needs
// every value (variance) and Delta needs the window's first and last
// readings, so both keep the raw QueryRelative path.
func (o *Operator) ComputeInto(qe *core.QueryEngine, u *units.Unit, now time.Time, tc *core.TickContext) ([]core.Output, error) {
	bu := qe.BindUnit(u)
	var w stats.Welford
	var agg store.AggResult
	var sum, deltaSum float64
	sensorsSeen := 0
	buf := tc.Readings
	for i := range u.Inputs {
		switch o.op {
		case Mean, Min, Max:
			a := bu.Inputs[i].AggregateRelative(o.window)
			if a.Count == 0 {
				continue
			}
			sensorsSeen++
			agg.Merge(a)
		case Sum:
			a := bu.Inputs[i].AggregateRelative(o.window)
			if a.Count == 0 {
				continue
			}
			sensorsSeen++
			sum += a.Sum / float64(a.Count)
		case Delta:
			buf = bu.Inputs[i].QueryRelative(o.window, buf[:0])
			if len(buf) == 0 {
				continue
			}
			sensorsSeen++
			deltaSum += buf[len(buf)-1].Value - buf[0].Value
		default: // Std
			buf = bu.Inputs[i].QueryRelative(o.window, buf[:0])
			if len(buf) == 0 {
				continue
			}
			sensorsSeen++
			for _, r := range buf {
				w.Add(r.Value)
			}
		}
	}
	tc.Readings = buf
	if sensorsSeen == 0 {
		return nil, fmt.Errorf("aggregator: unit %s has no data", u.Name)
	}
	var v float64
	switch o.op {
	case Mean:
		v, _ = agg.Value(store.AggAvg)
	case Sum:
		v = sum
	case Min:
		v = agg.Min
	case Max:
		v = agg.Max
	case Std:
		v = w.Std()
	case Delta:
		v = deltaSum
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return nil, fmt.Errorf("aggregator: unit %s produced non-finite %v", u.Name, v)
	}
	outs := tc.Outputs[:0]
	for _, out := range u.Outputs {
		outs = append(outs, core.Output{Topic: out, Reading: sensor.At(v, now)})
	}
	tc.Outputs = outs
	return outs, nil
}

func init() {
	core.RegisterPlugin("aggregator", func(raw json.RawMessage, qe *core.QueryEngine, env core.Env) ([]core.Operator, error) {
		var cfg Config
		if err := json.Unmarshal(raw, &cfg); err != nil {
			return nil, err
		}
		op, err := New(cfg, qe)
		if err != nil {
			return nil, err
		}
		return []core.Operator{op}, nil
	})
}
