package aggregator

import (
	"math"
	"testing"
	"time"

	"github.com/dcdb/wintermute/internal/cache"
	"github.com/dcdb/wintermute/internal/core"
	"github.com/dcdb/wintermute/internal/navigator"
	"github.com/dcdb/wintermute/internal/sensor"
)

const sec = int64(time.Second)

// env: one rack with two nodes; each node has a power sensor with values
// node0: 10,20,30,40 and node1: 100,200,300,400.
func env(t testing.TB) *core.QueryEngine {
	t.Helper()
	nav := navigator.New()
	caches := cache.NewSet()
	for n, base := range []float64{10, 100} {
		topic := sensor.Topic("/r1/").JoinNode("n" + string(rune('0'+n))).Join("power")
		if err := nav.AddSensor(topic); err != nil {
			t.Fatal(err)
		}
		c := caches.GetOrCreate(topic, 8, time.Second)
		for k := 1; k <= 4; k++ {
			c.Store(sensor.Reading{Value: base * float64(k), Time: int64(k) * sec})
		}
	}
	return core.NewQueryEngine(nav, caches, nil)
}

func mkOp(t testing.TB, qe *core.QueryEngine, op Op, windowMs int) *Operator {
	t.Helper()
	cfg := Config{
		OperatorConfig: core.OperatorConfig{
			Name:    "agg",
			Inputs:  []string{"<bottomup>power"},
			Outputs: []string{"<topdown>power-agg"},
		},
		Operation: op,
		WindowMs:  windowMs,
	}
	o, err := New(cfg, qe)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func compute(t testing.TB, o *Operator, qe *core.QueryEngine) float64 {
	t.Helper()
	us := o.Units()
	if len(us) != 1 {
		t.Fatalf("units = %d, want 1 rack unit", len(us))
	}
	outs, err := o.Compute(qe, us[0], time.Unix(100, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 || outs[0].Topic != "/r1/power-agg" {
		t.Fatalf("outs = %+v", outs)
	}
	return outs[0].Reading.Value
}

func TestMeanAcrossNodes(t *testing.T) {
	qe := env(t)
	// Window covers last 2 readings of each node: 30,40,300,400.
	got := compute(t, mkOp(t, qe, Mean, 1000), qe)
	if got != (30.0+40+300+400)/4 {
		t.Fatalf("mean = %v", got)
	}
}

func TestSumRollup(t *testing.T) {
	qe := env(t)
	// Sum adds per-sensor window means: mean(30,40) + mean(300,400).
	got := compute(t, mkOp(t, qe, Sum, 0), qe) // default window = interval = 1s
	if got != 35+350 {
		t.Fatalf("sum = %v, want 385", got)
	}
}

func TestMinMaxStd(t *testing.T) {
	qe := env(t)
	if got := compute(t, mkOp(t, qe, Min, 1000), qe); got != 30 {
		t.Fatalf("min = %v", got)
	}
	if got := compute(t, mkOp(t, qe, Max, 1000), qe); got != 400 {
		t.Fatalf("max = %v", got)
	}
	got := compute(t, mkOp(t, qe, Std, 1000), qe)
	want := 0.0
	{
		vals := []float64{30, 40, 300, 400}
		var m float64
		for _, v := range vals {
			m += v
		}
		m /= 4
		for _, v := range vals {
			want += (v - m) * (v - m)
		}
		want = math.Sqrt(want / 4)
	}
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("std = %v, want %v", got, want)
	}
}

func TestDeltaForCounters(t *testing.T) {
	qe := env(t)
	// Window covers all 4 readings: deltas are 40-10=30 and 400-100=300.
	got := compute(t, mkOp(t, qe, Delta, 10000), qe)
	if got != 330 {
		t.Fatalf("delta = %v", got)
	}
}

func TestDefaultOperation(t *testing.T) {
	qe := env(t)
	o := mkOp(t, qe, "", 1000)
	if o.op != Mean {
		t.Fatalf("default op = %q", o.op)
	}
}

func TestUnknownOperation(t *testing.T) {
	qe := env(t)
	cfg := Config{
		OperatorConfig: core.OperatorConfig{
			Inputs:  []string{"<bottomup>power"},
			Outputs: []string{"<topdown>x"},
		},
		Operation: "median",
	}
	if _, err := New(cfg, qe); err == nil {
		t.Error("unknown operation should fail")
	}
}

func TestNoDataError(t *testing.T) {
	nav := navigator.New()
	caches := cache.NewSet()
	if err := nav.AddSensor("/r1/n1/power"); err != nil {
		t.Fatal(err)
	}
	caches.GetOrCreate("/r1/n1/power", 4, time.Second) // empty cache
	qe := core.NewQueryEngine(nav, caches, nil)
	cfg := Config{
		OperatorConfig: core.OperatorConfig{
			Inputs:  []string{"power"},
			Outputs: []string{"avg"},
			Unit:    "/r1/n1/",
		},
	}
	o, err := New(cfg, qe)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Compute(qe, o.Units()[0], time.Unix(1, 0)); err == nil {
		t.Error("empty inputs should error")
	}
}

func TestTickThroughSink(t *testing.T) {
	qe := env(t)
	o := mkOp(t, qe, Mean, 1000)
	var pushed []core.Output
	sink := core.SinkFunc(func(tp sensor.Topic, r sensor.Reading) {
		pushed = append(pushed, core.Output{Topic: tp, Reading: r})
	})
	if err := core.Tick(o, qe, sink, time.Unix(100, 0)); err != nil {
		t.Fatal(err)
	}
	if len(pushed) != 1 {
		t.Fatalf("pushed = %d", len(pushed))
	}
}
