// Package all registers every operator plugin with the Wintermute plugin
// registry. Executables and tests import it for side effects:
//
//	import _ "github.com/dcdb/wintermute/internal/plugins/all"
package all

import (
	_ "github.com/dcdb/wintermute/internal/plugins/aggregator"
	_ "github.com/dcdb/wintermute/internal/plugins/clustering"
	_ "github.com/dcdb/wintermute/internal/plugins/controller"
	_ "github.com/dcdb/wintermute/internal/plugins/fingerprint"
	_ "github.com/dcdb/wintermute/internal/plugins/health"
	_ "github.com/dcdb/wintermute/internal/plugins/perfmetrics"
	_ "github.com/dcdb/wintermute/internal/plugins/persyst"
	_ "github.com/dcdb/wintermute/internal/plugins/regressor"
	_ "github.com/dcdb/wintermute/internal/plugins/smoothing"
	_ "github.com/dcdb/wintermute/internal/plugins/tester"
)
