// Package clustering implements the Bayesian Gaussian mixture clustering
// operator plugin of the paper's case study 3 (§VI-D): long-term,
// system-wide characterisation of compute-node behaviour.
//
// The operator has one unit per compute node; "at every computation
// interval the operator computes 2-week averages for the input sensors of
// each unit. Then, each unit is treated as a data point in a
// three-dimensional space, and clustering is applied". The Bayesian
// mixture determines the number of clusters autonomously; points whose
// probability is below a threshold (0.001 in the paper) in the PDFs of
// all fitted Gaussian components are classified as outliers.
//
// This is a batch operator (all units form one model) instantiated in the
// Collect Agent, where the whole system's sensor space is visible.
package clustering

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"github.com/dcdb/wintermute/internal/core"
	"github.com/dcdb/wintermute/internal/core/units"
	"github.com/dcdb/wintermute/internal/ml/bgmm"
	"github.com/dcdb/wintermute/internal/sensor"
)

// OutlierLabel is the cluster label published for outlier nodes.
const OutlierLabel = -1

// Config parameterises a clustering operator.
type Config struct {
	core.OperatorConfig
	// WindowMs is the aggregation window over which input sensors are
	// averaged (2 weeks in the paper's deployment).
	WindowMs int `json:"windowMs"`
	// Counters lists input sensor names that are cumulative counters
	// (e.g. "idle-time"): they are aggregated as last-first over the
	// window instead of averaged.
	Counters []string `json:"counters"`
	// MaxComponents truncates the mixture (default 8).
	MaxComponents int `json:"maxComponents"`
	// OutlierThreshold is the per-component density below which a point
	// is an outlier (default 0.001, the paper's setting), evaluated in
	// standardised space when Standardize is on.
	OutlierThreshold float64 `json:"outlierThreshold"`
	// Standardize z-scores the aggregated features before clustering so
	// the density threshold is scale-free (default true).
	Standardize *bool `json:"standardize"`
	Seed        int64 `json:"seed"`
}

// Result is the outcome of the latest clustering pass, retained for
// introspection by the REST API and the experiment harness.
type Result struct {
	Model    *bgmm.Model
	Units    []sensor.Topic // unit names in model row order
	Points   [][]float64    // aggregated (pre-standardisation) features
	Labels   []int          // cluster label per unit; OutlierLabel for outliers
	Outliers int
}

// Operator clusters per-node aggregate behaviour.
type Operator struct {
	*core.Base
	cfg       Config
	window    time.Duration
	threshold float64
	stdize    bool

	mu   sync.Mutex
	last *Result
}

// New builds a clustering operator from a parsed config.
func New(cfg Config, qe *core.QueryEngine) (*Operator, error) {
	base, err := cfg.OperatorConfig.Build("clustering", qe.Navigator())
	if err != nil {
		return nil, err
	}
	window := time.Duration(cfg.WindowMs) * time.Millisecond
	if window <= 0 {
		window = cfg.OperatorConfig.IntervalDuration()
	}
	threshold := cfg.OutlierThreshold
	if threshold <= 0 {
		threshold = 0.001
	}
	stdize := true
	if cfg.Standardize != nil {
		stdize = *cfg.Standardize
	}
	return &Operator{
		Base:      base,
		cfg:       cfg,
		window:    window,
		threshold: threshold,
		stdize:    stdize,
	}, nil
}

// LastResult returns the most recent clustering result, if any.
func (o *Operator) LastResult() *Result {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.last
}

func (o *Operator) isCounter(name string) bool {
	for _, c := range o.cfg.Counters {
		if c == name {
			return true
		}
	}
	return false
}

// aggregate reduces one unit's inputs to its feature vector: windowed
// mean for gauges, last-first for counters. ok is false when any input
// lacks data. Queries go through the unit's bound handles, so the
// once-per-interval sweep over all fleet units costs no topic lookups.
func (o *Operator) aggregate(qe *core.QueryEngine, u *units.Unit, buf []sensor.Reading) (vec []float64, ok bool, out []sensor.Reading) {
	bu := qe.BindUnit(u)
	vec = make([]float64, 0, len(u.Inputs))
	for i, in := range u.Inputs {
		buf = bu.Inputs[i].QueryRelative(o.window, buf[:0])
		if len(buf) == 0 {
			return nil, false, buf
		}
		if o.isCounter(in.Name()) {
			vec = append(vec, buf[len(buf)-1].Value-buf[0].Value)
			continue
		}
		var sum float64
		for _, r := range buf {
			sum += r.Value
		}
		vec = append(vec, sum/float64(len(buf)))
	}
	return vec, true, buf
}

// Compute implements core.Operator but is never called directly: the
// manager always uses ComputeBatch for batch operators. It exists to
// satisfy the interface and computes the single unit via a batch pass.
func (o *Operator) Compute(qe *core.QueryEngine, u *units.Unit, now time.Time) ([]core.Output, error) {
	outs, err := o.ComputeBatch(qe, now)
	if err != nil {
		return nil, err
	}
	var mine []core.Output
	for _, out := range outs {
		if out.Topic.Node() == u.Name {
			mine = append(mine, out)
		}
	}
	return mine, nil
}

// ComputeBatch implements core.BatchOperator: every unit contributes one
// aggregated point; the mixture is fitted over all points and each unit's
// output sensor receives its cluster label (OutlierLabel for outliers).
func (o *Operator) ComputeBatch(qe *core.QueryEngine, now time.Time) ([]core.Output, error) {
	us := o.Units()
	res := &Result{}
	var buf []sensor.Reading
	var valid []*units.Unit
	for _, u := range us {
		vec, ok, b := o.aggregate(qe, u, buf)
		buf = b
		if !ok {
			continue
		}
		res.Points = append(res.Points, vec)
		res.Units = append(res.Units, u.Name)
		valid = append(valid, u)
	}
	if len(res.Points) < 3 {
		return nil, fmt.Errorf("clustering: only %d units have data", len(res.Points))
	}
	data := res.Points
	if o.stdize {
		data, _, _ = bgmm.Standardize(res.Points)
	}
	model, err := bgmm.Fit(data, bgmm.Params{
		MaxComponents: o.cfg.MaxComponents,
		Seed:          o.cfg.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("clustering: %w", err)
	}
	res.Model = model
	res.Labels = make([]int, len(data))
	outs := make([]core.Output, 0, len(valid))
	for i, u := range valid {
		label := model.Assign(data[i])
		if model.IsOutlier(data[i], o.threshold) {
			label = OutlierLabel
			res.Outliers++
		}
		res.Labels[i] = label
		for _, out := range u.Outputs {
			outs = append(outs, core.Output{Topic: out, Reading: sensor.At(float64(label), now)})
		}
	}
	o.mu.Lock()
	o.last = res
	o.mu.Unlock()
	return outs, nil
}

func init() {
	core.RegisterPlugin("clustering", func(raw json.RawMessage, qe *core.QueryEngine, env core.Env) ([]core.Operator, error) {
		var cfg Config
		if err := json.Unmarshal(raw, &cfg); err != nil {
			return nil, err
		}
		op, err := New(cfg, qe)
		if err != nil {
			return nil, err
		}
		return []core.Operator{op}, nil
	})
}
