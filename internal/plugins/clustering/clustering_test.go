package clustering

import (
	"fmt"
	"testing"
	"time"

	"github.com/dcdb/wintermute/internal/cache"
	"github.com/dcdb/wintermute/internal/core"
	"github.com/dcdb/wintermute/internal/navigator"
	"github.com/dcdb/wintermute/internal/sensor"
)

const sec = int64(time.Second)

// rig builds 30 nodes in three behaviour groups (idle / normal / loaded)
// plus one strong outlier, with power, temp and idle-time sensors.
func newRig(t testing.TB) (*core.QueryEngine, *Operator) {
	t.Helper()
	nav := navigator.New()
	caches := cache.NewSet()
	groups := []struct {
		power, temp, idleRate float64
	}{
		{90, 47.5, 0.9},  // idle-ish
		{140, 50.5, 0.4}, // normal
		{195, 53.5, 0.1}, // loaded
	}
	addNode := func(name string, power, temp, idleRate float64) {
		base := sensor.Topic("/r1/").JoinNode(name)
		for _, s := range []string{"power", "temp", "idle-time"} {
			if err := nav.AddSensor(base.Join(s)); err != nil {
				t.Fatal(err)
			}
		}
		pc := caches.GetOrCreate(base.Join("power"), 64, time.Second)
		tc := caches.GetOrCreate(base.Join("temp"), 64, time.Second)
		ic := caches.GetOrCreate(base.Join("idle-time"), 64, time.Second)
		for k := 0; k < 60; k++ {
			ts := int64(k) * sec
			jitter := float64(k%5) * 0.3
			pc.Store(sensor.Reading{Value: power + jitter, Time: ts})
			tc.Store(sensor.Reading{Value: temp + jitter/10, Time: ts})
			ic.Store(sensor.Reading{Value: idleRate * float64(k), Time: ts})
		}
	}
	// 25 nodes per group: large enough that a singleton outlier component
	// falls below the weight-pruning threshold, as at the paper's
	// 148-node fleet scale.
	n := 0
	for _, spec := range groups {
		for i := 0; i < 25; i++ {
			addNode(fmt.Sprintf("n%02d", n), spec.power+float64(i%3), spec.temp, spec.idleRate)
			n++
		}
	}
	// Outlier: consumes far more power than its idle time justifies.
	addNode("n98", 260, 58, 0.9)
	qe := core.NewQueryEngine(nav, caches, nil)
	cfg := Config{
		OperatorConfig: core.OperatorConfig{
			Name:    "clust",
			Inputs:  []string{"power", "temp", "idle-time"},
			Outputs: []string{"<bottomup>cluster-label"},
		},
		WindowMs:      60000,
		Counters:      []string{"idle-time"},
		MaxComponents: 6,
		Seed:          3,
	}
	op, err := New(cfg, qe)
	if err != nil {
		t.Fatal(err)
	}
	return qe, op
}

func TestClusterDiscovery(t *testing.T) {
	qe, op := newRig(t)
	if len(op.Units()) != 76 {
		t.Fatalf("units = %d, want 76", len(op.Units()))
	}
	outs, err := op.ComputeBatch(qe, time.Unix(60, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 76 {
		t.Fatalf("outputs = %d", len(outs))
	}
	res := op.LastResult()
	if res == nil {
		t.Fatal("no result retained")
	}
	if got := res.Model.NumActive(); got < 3 || got > 4 {
		t.Fatalf("clusters = %d, want 3 (maybe +1 for the outlier)", got)
	}
	// Group labels coherent: nodes 0-9 share a label, distinct from 10-19
	// and 20-29.
	labelOf := map[string]int{}
	for i, name := range res.Units {
		labelOf[string(name)] = res.Labels[i]
	}
	for g := 0; g < 3; g++ {
		ref := labelOf[fmt.Sprintf("/r1/n%02d/", g*25)]
		for i := 1; i < 25; i++ {
			if l := labelOf[fmt.Sprintf("/r1/n%02d/", g*25+i)]; l != ref {
				t.Errorf("group %d split: node %d label %d vs %d", g, i, l, ref)
			}
		}
	}
	if labelOf["/r1/n00/"] == labelOf["/r1/n25/"] || labelOf["/r1/n25/"] == labelOf["/r1/n50/"] {
		t.Error("distinct groups share a label")
	}
}

func TestOutlierFlagged(t *testing.T) {
	qe, op := newRig(t)
	if _, err := op.ComputeBatch(qe, time.Unix(60, 0)); err != nil {
		t.Fatal(err)
	}
	res := op.LastResult()
	found := false
	for i, name := range res.Units {
		if name == "/r1/n98/" && res.Labels[i] == OutlierLabel {
			found = true
		}
	}
	if !found {
		t.Errorf("outlier node not flagged; outliers=%d", res.Outliers)
	}
	// The bulk of the fleet is not outliers.
	if res.Outliers > 5 {
		t.Errorf("too many outliers: %d", res.Outliers)
	}
}

func TestLabelsPublishedAsSensors(t *testing.T) {
	qe, op := newRig(t)
	var labels []core.Output
	sink := core.SinkFunc(func(tp sensor.Topic, r sensor.Reading) {
		labels = append(labels, core.Output{Topic: tp, Reading: r})
	})
	if err := core.Tick(op, qe, sink, time.Unix(60, 0)); err != nil {
		t.Fatal(err)
	}
	if len(labels) != 76 {
		t.Fatalf("published labels = %d", len(labels))
	}
	if labels[0].Topic.Name() != "cluster-label" {
		t.Errorf("label topic = %q", labels[0].Topic)
	}
}

func TestInsufficientData(t *testing.T) {
	nav := navigator.New()
	caches := cache.NewSet()
	for i := 0; i < 4; i++ {
		topic := sensor.Topic(fmt.Sprintf("/r1/n%d/power", i))
		if err := nav.AddSensor(topic); err != nil {
			t.Fatal(err)
		}
		caches.GetOrCreate(topic, 4, time.Second) // empty
	}
	qe := core.NewQueryEngine(nav, caches, nil)
	cfg := Config{
		OperatorConfig: core.OperatorConfig{
			Inputs:  []string{"power"},
			Outputs: []string{"<bottomup>label"},
		},
	}
	op, err := New(cfg, qe)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := op.ComputeBatch(qe, time.Unix(1, 0)); err == nil {
		t.Error("all-empty caches should error")
	}
}

func TestComputeSingleUnitDelegates(t *testing.T) {
	qe, op := newRig(t)
	u := op.Units()[0]
	outs, err := op.Compute(qe, u, time.Unix(60, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 || outs[0].Topic.Node() != u.Name {
		t.Fatalf("outs = %+v", outs)
	}
}

func TestDefaultThreshold(t *testing.T) {
	qe, _ := newRig(t)
	cfg := Config{
		OperatorConfig: core.OperatorConfig{
			Inputs:  []string{"power"},
			Outputs: []string{"<bottomup>label"},
		},
	}
	op, err := New(cfg, qe)
	if err != nil {
		t.Fatal(err)
	}
	if op.threshold != 0.001 {
		t.Errorf("default threshold = %v, want 0.001 (paper)", op.threshold)
	}
	if !op.stdize {
		t.Error("standardisation should default to on")
	}
}
