// Package health implements a threshold-based fault-detection operator
// plugin — the "fault detection" class of the paper's taxonomy (Figure 1,
// online + in-band). Per unit it grades the most recent reading of every
// input sensor against warning and critical thresholds and publishes the
// worst grade as a health status sensor:
//
//	0 = healthy, 1 = warning, 2 = critical, 3 = stale (no fresh data)
//
// Pointing the unit outputs one level up the tree turns per-node statuses
// into rack-level health roll-ups via an aggregator stage.
package health

import (
	"encoding/json"
	"fmt"
	"time"

	"github.com/dcdb/wintermute/internal/core"
	"github.com/dcdb/wintermute/internal/core/units"
	"github.com/dcdb/wintermute/internal/sensor"
)

// Status values published by the plugin.
const (
	StatusOK       = 0
	StatusWarning  = 1
	StatusCritical = 2
	StatusStale    = 3
)

// Config parameterises a health operator.
type Config struct {
	core.OperatorConfig
	// WarnAbove and CritAbove grade readings exceeding the thresholds.
	WarnAbove float64 `json:"warnAbove"`
	CritAbove float64 `json:"critAbove"`
	// WarnBelow and CritBelow grade readings below the thresholds; they
	// are ignored when zero. (Use both directions for corridor checks.)
	WarnBelow float64 `json:"warnBelow"`
	CritBelow float64 `json:"critBelow"`
	// StaleAfterMs grades a sensor stale when its latest reading is older
	// than this (default: 10 computation intervals).
	StaleAfterMs int `json:"staleAfterMs"`
}

// Operator grades sensor readings against thresholds.
type Operator struct {
	*core.Base
	cfg   Config
	stale time.Duration
}

// New builds a health operator from a parsed config.
func New(cfg Config, qe *core.QueryEngine) (*Operator, error) {
	if cfg.CritAbove != 0 && cfg.WarnAbove != 0 && cfg.CritAbove < cfg.WarnAbove {
		return nil, fmt.Errorf("health: critAbove %v below warnAbove %v", cfg.CritAbove, cfg.WarnAbove)
	}
	base, err := cfg.OperatorConfig.Build("health", qe.Navigator())
	if err != nil {
		return nil, err
	}
	stale := time.Duration(cfg.StaleAfterMs) * time.Millisecond
	if stale <= 0 {
		stale = 10 * cfg.OperatorConfig.IntervalDuration()
	}
	return &Operator{Base: base, cfg: cfg, stale: stale}, nil
}

// grade returns the status of a single reading value.
func (o *Operator) grade(v float64) float64 {
	switch {
	case o.cfg.CritAbove != 0 && v > o.cfg.CritAbove:
		return StatusCritical
	case o.cfg.CritBelow != 0 && v < o.cfg.CritBelow:
		return StatusCritical
	case o.cfg.WarnAbove != 0 && v > o.cfg.WarnAbove:
		return StatusWarning
	case o.cfg.WarnBelow != 0 && v < o.cfg.WarnBelow:
		return StatusWarning
	}
	return StatusOK
}

// Compute implements core.Operator: the unit's status is the worst grade
// across its input sensors.
func (o *Operator) Compute(qe *core.QueryEngine, u *units.Unit, now time.Time) ([]core.Output, error) {
	return o.ComputeInto(qe, u, now, core.NewTickContext())
}

// ComputeInto implements core.ContextOperator: latest-reading probes go
// through bound handles and outputs land in the context's scratch buffer.
func (o *Operator) ComputeInto(qe *core.QueryEngine, u *units.Unit, now time.Time, tc *core.TickContext) ([]core.Output, error) {
	bu := qe.BindUnit(u)
	worst := float64(StatusOK)
	for i := range u.Inputs {
		r, ok := bu.Inputs[i].Latest()
		var g float64
		switch {
		case !ok, now.UnixNano()-r.Time > int64(o.stale):
			g = StatusStale
		default:
			g = o.grade(r.Value)
		}
		if g > worst {
			worst = g
		}
	}
	outs := tc.Outputs[:0]
	for _, out := range u.Outputs {
		outs = append(outs, core.Output{Topic: out, Reading: sensor.At(worst, now)})
	}
	tc.Outputs = outs
	return outs, nil
}

func init() {
	core.RegisterPlugin("health", func(raw json.RawMessage, qe *core.QueryEngine, env core.Env) ([]core.Operator, error) {
		var cfg Config
		if err := json.Unmarshal(raw, &cfg); err != nil {
			return nil, err
		}
		op, err := New(cfg, qe)
		if err != nil {
			return nil, err
		}
		return []core.Operator{op}, nil
	})
}
