package health

import (
	"testing"
	"time"

	"github.com/dcdb/wintermute/internal/cache"
	"github.com/dcdb/wintermute/internal/core"
	"github.com/dcdb/wintermute/internal/navigator"
	"github.com/dcdb/wintermute/internal/sensor"
)

func env(t testing.TB, temp float64, at time.Time) *core.QueryEngine {
	t.Helper()
	nav := navigator.New()
	caches := cache.NewSet()
	if err := nav.AddSensor("/n1/temp"); err != nil {
		t.Fatal(err)
	}
	c := caches.GetOrCreate("/n1/temp", 8, time.Second)
	c.Store(sensor.At(temp, at))
	return core.NewQueryEngine(nav, caches, nil)
}

func mk(t testing.TB, qe *core.QueryEngine, cfg Config) *Operator {
	t.Helper()
	cfg.OperatorConfig = core.OperatorConfig{
		Name: "h", Inputs: []string{"temp"}, Outputs: []string{"health"}, Unit: "/n1/",
	}
	o, err := New(cfg, qe)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func status(t testing.TB, o *Operator, qe *core.QueryEngine, now time.Time) float64 {
	t.Helper()
	outs, err := o.Compute(qe, o.Units()[0], now)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 || outs[0].Topic != "/n1/health" {
		t.Fatalf("outs = %+v", outs)
	}
	return outs[0].Reading.Value
}

func TestGrades(t *testing.T) {
	now := time.Unix(100, 0)
	cases := []struct {
		temp float64
		want float64
	}{
		{50, StatusOK},
		{66, StatusWarning},
		{81, StatusCritical},
		{9, StatusWarning},  // below warnBelow
		{4, StatusCritical}, // below critBelow
	}
	for _, c := range cases {
		qe := env(t, c.temp, now)
		o := mk(t, qe, Config{WarnAbove: 65, CritAbove: 80, WarnBelow: 10, CritBelow: 5})
		if got := status(t, o, qe, now); got != c.want {
			t.Errorf("temp %v: status = %v, want %v", c.temp, got, c.want)
		}
	}
}

func TestStaleDetection(t *testing.T) {
	old := time.Unix(100, 0)
	qe := env(t, 50, old)
	o := mk(t, qe, Config{WarnAbove: 65, StaleAfterMs: 5000})
	// Fresh enough.
	if got := status(t, o, qe, old.Add(2*time.Second)); got != StatusOK {
		t.Errorf("fresh status = %v", got)
	}
	// Stale.
	if got := status(t, o, qe, old.Add(10*time.Second)); got != StatusStale {
		t.Errorf("stale status = %v", got)
	}
}

func TestMissingSensorIsStale(t *testing.T) {
	nav := navigator.New()
	caches := cache.NewSet()
	if err := nav.AddSensor("/n1/temp"); err != nil {
		t.Fatal(err)
	}
	caches.GetOrCreate("/n1/temp", 4, time.Second) // no readings
	qe := core.NewQueryEngine(nav, caches, nil)
	o := mk(t, qe, Config{WarnAbove: 65})
	if got := status(t, o, qe, time.Unix(5, 0)); got != StatusStale {
		t.Errorf("missing data status = %v", got)
	}
}

func TestWorstOfManyInputs(t *testing.T) {
	nav := navigator.New()
	caches := cache.NewSet()
	now := time.Unix(100, 0)
	for name, v := range map[string]float64{"a": 50, "b": 90} {
		topic := sensor.Topic("/n1/").Join(name)
		if err := nav.AddSensor(topic); err != nil {
			t.Fatal(err)
		}
		caches.GetOrCreate(topic, 4, time.Second).Store(sensor.At(v, now))
	}
	qe := core.NewQueryEngine(nav, caches, nil)
	cfg := Config{
		OperatorConfig: core.OperatorConfig{
			Name: "h", Inputs: []string{"a", "b"}, Outputs: []string{"health"}, Unit: "/n1/",
		},
		WarnAbove: 65, CritAbove: 80,
	}
	o, err := New(cfg, qe)
	if err != nil {
		t.Fatal(err)
	}
	outs, err := o.Compute(qe, o.Units()[0], now)
	if err != nil {
		t.Fatal(err)
	}
	if outs[0].Reading.Value != StatusCritical {
		t.Errorf("worst-of = %v, want critical", outs[0].Reading.Value)
	}
}

func TestInvalidThresholds(t *testing.T) {
	qe := env(t, 50, time.Unix(1, 0))
	cfg := Config{
		OperatorConfig: core.OperatorConfig{
			Inputs: []string{"temp"}, Outputs: []string{"health"}, Unit: "/n1/",
		},
		WarnAbove: 80, CritAbove: 65,
	}
	if _, err := New(cfg, qe); err == nil {
		t.Error("crit below warn should fail")
	}
}
