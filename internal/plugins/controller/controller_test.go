package controller

import (
	"testing"
	"time"

	"github.com/dcdb/wintermute/internal/cache"
	"github.com/dcdb/wintermute/internal/core"
	"github.com/dcdb/wintermute/internal/navigator"
	"github.com/dcdb/wintermute/internal/sensor"
	"github.com/dcdb/wintermute/internal/sim/hardware"
	"github.com/dcdb/wintermute/internal/sim/workload"
)

func newRig(t testing.TB, budget float64) (*core.QueryEngine, *core.CacheSink, *Operator) {
	t.Helper()
	nav := navigator.New()
	caches := cache.NewSet()
	if err := nav.AddSensor("/n1/power"); err != nil {
		t.Fatal(err)
	}
	caches.GetOrCreate("/n1/power", 64, time.Second)
	qe := core.NewQueryEngine(nav, caches, nil)
	sink := core.NewCacheSink(caches, nav, 64, time.Second)
	cfg := Config{
		OperatorConfig: core.OperatorConfig{
			Name:    "cap",
			Inputs:  []string{"power"},
			Outputs: []string{"freq-target"},
			Unit:    "/n1/",
		},
		BudgetW: budget,
		Gain:    0.005,
	}
	op, err := New(cfg, qe)
	if err != nil {
		t.Fatal(err)
	}
	return qe, sink, op
}

func TestKnobDropsWhenOverBudget(t *testing.T) {
	qe, sink, op := newRig(t, 150)
	for i := 0; i < 20; i++ {
		now := time.Unix(int64(i), 0)
		sink.Push("/n1/power", sensor.At(200, now)) // 50 W over budget
		if err := core.Tick(op, qe, sink, now); err != nil {
			t.Fatal(err)
		}
	}
	r, ok := qe.Latest("/n1/freq-target")
	if !ok {
		t.Fatal("no control output")
	}
	if r.Value >= 1 {
		t.Errorf("knob = %v, should have dropped below 1", r.Value)
	}
	if r.Value < 0.5 {
		t.Errorf("knob = %v, must respect the minimum", r.Value)
	}
}

func TestKnobRecoversUnderBudget(t *testing.T) {
	qe, sink, op := newRig(t, 150)
	for i := 0; i < 30; i++ {
		now := time.Unix(int64(i), 0)
		sink.Push("/n1/power", sensor.At(220, now))
		if err := core.Tick(op, qe, sink, now); err != nil {
			t.Fatal(err)
		}
	}
	low, _ := qe.Latest("/n1/freq-target")
	for i := 30; i < 60; i++ {
		now := time.Unix(int64(i), 0)
		sink.Push("/n1/power", sensor.At(100, now)) // well under budget
		if err := core.Tick(op, qe, sink, now); err != nil {
			t.Fatal(err)
		}
	}
	high, _ := qe.Latest("/n1/freq-target")
	if high.Value <= low.Value {
		t.Errorf("knob did not recover: %v -> %v", low.Value, high.Value)
	}
}

func TestKnobClampsAtMin(t *testing.T) {
	qe, sink, op := newRig(t, 50)
	for i := 0; i < 300; i++ {
		now := time.Unix(int64(i), 0)
		sink.Push("/n1/power", sensor.At(300, now))
		if err := core.Tick(op, qe, sink, now); err != nil {
			t.Fatal(err)
		}
	}
	r, _ := qe.Latest("/n1/freq-target")
	if r.Value != 0.5 {
		t.Errorf("knob = %v, want clamped at 0.5", r.Value)
	}
}

// TestClosedLoopWithHardware wires the full feedback loop of paper §IV-d:
// hardware power -> controller -> actuator -> hardware DVFS knob. Under a
// saturating workload the loop must pull power towards the budget.
func TestClosedLoopWithHardware(t *testing.T) {
	qe, sink, op := newRig(t, 150)
	node := hardware.NewNode(hardware.Config{Cores: 4, Seed: 1, TurboProb: 1e-9})
	node.SetApp(workload.MustNew("hpl", 1, 7200), 0)
	const sec = int64(time.Second)
	var freePower float64
	for i := int64(0); i < 600; i++ {
		ns := i * sec
		now := time.Unix(0, ns)
		node.Advance(ns)
		sink.Push("/n1/power", sensor.Reading{Value: node.Power(), Time: ns})
		if err := core.Tick(op, qe, sink, now); err != nil {
			t.Fatal(err)
		}
		// Actuator: apply the published knob to the hardware.
		if r, ok := qe.Latest("/n1/freq-target"); ok {
			node.SetFreqScale(r.Value)
		}
		if i == 60 {
			freePower = node.Power() // before the loop has bitten hard
		}
	}
	final := node.Power()
	if final >= freePower {
		t.Fatalf("feedback loop ineffective: %v -> %v W", freePower, final)
	}
	if final > 175 {
		t.Errorf("power %v W far above 150 W budget after 10 min of control", final)
	}
}

func TestConfigValidation(t *testing.T) {
	nav := navigator.New()
	if err := nav.AddSensor("/n1/power"); err != nil {
		t.Fatal(err)
	}
	qe := core.NewQueryEngine(nav, cache.NewSet(), nil)
	base := core.OperatorConfig{
		Inputs: []string{"power"}, Outputs: []string{"f"}, Unit: "/n1/",
	}
	if _, err := New(Config{OperatorConfig: base}, qe); err == nil {
		t.Error("missing budget should fail")
	}
	if _, err := New(Config{OperatorConfig: base, BudgetW: 100, Min: 0.9, Max: 0.6}, qe); err == nil {
		t.Error("min above max should fail")
	}
}

func TestNoDataNoOutput(t *testing.T) {
	qe, _, op := newRig(t, 100)
	outs, err := op.Compute(qe, op.Units()[0], time.Unix(0, 0))
	if err != nil || len(outs) != 0 {
		t.Fatalf("no-data compute = %+v, %v", outs, err)
	}
}
