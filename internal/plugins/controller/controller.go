// Package controller implements a control operator plugin: the last stage
// of an analysis pipeline that turns processed sensor data into an
// actuation signal, closing the feedback loop of paper §IV-d ("control
// operators at the end of the pipeline that use processed data to tune
// system knobs") — the runtime-optimization class of the taxonomy.
//
// The operator is a proportional power-cap controller: per unit it
// compares the windowed average of a power sensor against a budget and
// publishes a frequency-scaling target in [min, max]. An actuator (the
// DVFS backend, or the hardware simulation in the examples) subscribes to
// the output sensor and applies the knob.
package controller

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"github.com/dcdb/wintermute/internal/core"
	"github.com/dcdb/wintermute/internal/core/units"
	"github.com/dcdb/wintermute/internal/sensor"
)

// Config parameterises a controller operator.
type Config struct {
	core.OperatorConfig
	// BudgetW is the per-unit power budget in watts.
	BudgetW float64 `json:"budgetW"`
	// WindowMs is the power-averaging window (default: 4 intervals).
	WindowMs int `json:"windowMs"`
	// Gain is the proportional gain in knob units per watt of error
	// (default 0.002).
	Gain float64 `json:"gain"`
	// Min and Max clamp the published knob value (defaults 0.5 and 1.0,
	// matching the DVFS range of the hardware model).
	Min float64 `json:"min"`
	Max float64 `json:"max"`
}

// Operator is a proportional power capper.
type Operator struct {
	*core.Base
	cfg    Config
	window time.Duration

	mu      sync.Mutex
	targets map[sensor.Topic]float64 // last knob value per unit
}

// New builds a controller operator from a parsed config.
func New(cfg Config, qe *core.QueryEngine) (*Operator, error) {
	if cfg.BudgetW <= 0 {
		return nil, fmt.Errorf("controller: budgetW must be positive")
	}
	if cfg.Gain <= 0 {
		cfg.Gain = 0.002
	}
	if cfg.Min <= 0 {
		cfg.Min = 0.5
	}
	if cfg.Max <= 0 || cfg.Max > 1 {
		cfg.Max = 1
	}
	if cfg.Min >= cfg.Max {
		return nil, fmt.Errorf("controller: min %v must be below max %v", cfg.Min, cfg.Max)
	}
	base, err := cfg.OperatorConfig.Build("controller", qe.Navigator())
	if err != nil {
		return nil, err
	}
	window := time.Duration(cfg.WindowMs) * time.Millisecond
	if window <= 0 {
		window = 4 * cfg.OperatorConfig.IntervalDuration()
	}
	return &Operator{
		Base:    base,
		cfg:     cfg,
		window:  window,
		targets: make(map[sensor.Topic]float64),
	}, nil
}

// Compute implements core.Operator: knob <- clamp(knob - gain*(avgPower -
// budget)); over-budget power lowers the knob, headroom raises it back.
func (o *Operator) Compute(qe *core.QueryEngine, u *units.Unit, now time.Time) ([]core.Output, error) {
	return o.ComputeInto(qe, u, now, core.NewTickContext())
}

// ComputeInto implements core.ContextOperator.
func (o *Operator) ComputeInto(qe *core.QueryEngine, u *units.Unit, now time.Time, tc *core.TickContext) ([]core.Output, error) {
	if len(u.Inputs) == 0 || len(u.Outputs) == 0 {
		return nil, nil
	}
	bu := qe.BindUnit(u)
	avg, ok := bu.Inputs[0].Average(o.window)
	if !ok {
		return nil, nil
	}
	o.mu.Lock()
	knob, seen := o.targets[u.Name]
	if !seen {
		knob = o.cfg.Max
	}
	knob -= o.cfg.Gain * (avg - o.cfg.BudgetW)
	if knob < o.cfg.Min {
		knob = o.cfg.Min
	}
	if knob > o.cfg.Max {
		knob = o.cfg.Max
	}
	o.targets[u.Name] = knob
	o.mu.Unlock()
	outs := append(tc.Outputs[:0], core.Output{Topic: u.Outputs[0], Reading: sensor.At(knob, now)})
	tc.Outputs = outs
	return outs, nil
}

func init() {
	core.RegisterPlugin("controller", func(raw json.RawMessage, qe *core.QueryEngine, env core.Env) ([]core.Operator, error) {
		var cfg Config
		if err := json.Unmarshal(raw, &cfg); err != nil {
			return nil, err
		}
		op, err := New(cfg, qe)
		if err != nil {
			return nil, err
		}
		return []core.Operator{op}, nil
	})
}
