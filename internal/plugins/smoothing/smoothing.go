// Package smoothing implements DCDB's sensor-smoothing operator plugin:
// for every input sensor it continuously publishes moving averages over a
// set of time windows as derived sensors living next to the original
// (e.g. /node/power -> /node/power-avg60). Smoothed series are the usual
// first stage of dashboards and of coarse-scale pipelines consuming
// fine-grained data.
package smoothing

import (
	"encoding/json"
	"fmt"
	"time"

	"github.com/dcdb/wintermute/internal/core"
	"github.com/dcdb/wintermute/internal/core/units"
	"github.com/dcdb/wintermute/internal/sensor"
)

// Config parameterises a smoothing operator. Outputs are derived, not
// configured: each input sensor S gets one output S-avg<w> per window of w
// seconds.
type Config struct {
	// Name identifies the operator (default "smoothing").
	Name string `json:"name"`
	// IntervalMs is the computation interval (default 1000).
	IntervalMs int `json:"intervalMs"`
	// Parallel selects parallel unit management.
	Parallel bool `json:"parallel"`
	// Inputs are pattern expressions selecting the sensors to smooth.
	Inputs []string `json:"inputs"`
	// WindowsS are the averaging windows in seconds (default 60 and 300,
	// DCDB's common configuration).
	WindowsS []int `json:"windowsS"`
}

// Operator publishes moving averages of its input sensors.
type Operator struct {
	*core.Base
	windows []time.Duration
}

// suffix renders the derived-sensor suffix of one window.
func suffix(w int) string { return fmt.Sprintf("-avg%d", w) }

// New builds a smoothing operator from a parsed config.
func New(cfg Config, qe *core.QueryEngine) (*Operator, error) {
	if cfg.Name == "" {
		cfg.Name = "smoothing"
	}
	if len(cfg.WindowsS) == 0 {
		cfg.WindowsS = []int{60, 300}
	}
	for _, w := range cfg.WindowsS {
		if w <= 0 {
			return nil, fmt.Errorf("smoothing: non-positive window %d", w)
		}
	}
	tmpl, err := units.NewTemplate(cfg.Inputs, nil)
	if err != nil {
		return nil, err
	}
	// One output per (input, window), ordered input-major so Compute can
	// index outputs as i*len(windows)+j.
	us, err := tmpl.InstantiateInputs(qe.Navigator(), func(u *units.Unit) []sensor.Topic {
		outs := make([]sensor.Topic, 0, len(u.Inputs)*len(cfg.WindowsS))
		for _, in := range u.Inputs {
			for _, w := range cfg.WindowsS {
				outs = append(outs, in+sensor.Topic(suffix(w)))
			}
		}
		return outs
	})
	if err != nil {
		return nil, fmt.Errorf("smoothing: %w", err)
	}
	interval := time.Duration(cfg.IntervalMs) * time.Millisecond
	if interval <= 0 {
		interval = time.Second
	}
	base := core.NewBase(cfg.Name, "smoothing", core.Online, interval, cfg.Parallel)
	base.SetUnits(us)
	op := &Operator{Base: base}
	for _, w := range cfg.WindowsS {
		op.windows = append(op.windows, time.Duration(w)*time.Second)
	}
	return op, nil
}

// Compute implements core.Operator: output (i, j) receives the average of
// input i over window j.
func (o *Operator) Compute(qe *core.QueryEngine, u *units.Unit, now time.Time) ([]core.Output, error) {
	return o.ComputeInto(qe, u, now, core.NewTickContext())
}

// ComputeInto implements core.ContextOperator: averages are computed
// through bound handles, outputs accumulate in the context's buffer.
func (o *Operator) ComputeInto(qe *core.QueryEngine, u *units.Unit, now time.Time, tc *core.TickContext) ([]core.Output, error) {
	bu := qe.BindUnit(u)
	outs := tc.Outputs[:0]
	for i := range u.Inputs {
		for j, w := range o.windows {
			avg, ok := bu.Inputs[i].Average(w)
			if !ok {
				continue // sensor not warm yet
			}
			outs = append(outs, core.Output{
				Topic:   u.Outputs[i*len(o.windows)+j],
				Reading: sensor.At(avg, now),
			})
		}
	}
	tc.Outputs = outs
	return outs, nil
}

func init() {
	core.RegisterPlugin("smoothing", func(raw json.RawMessage, qe *core.QueryEngine, env core.Env) ([]core.Operator, error) {
		var cfg Config
		if err := json.Unmarshal(raw, &cfg); err != nil {
			return nil, err
		}
		op, err := New(cfg, qe)
		if err != nil {
			return nil, err
		}
		return []core.Operator{op}, nil
	})
}
