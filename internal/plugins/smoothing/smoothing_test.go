package smoothing

import (
	"fmt"
	"testing"
	"time"

	"github.com/dcdb/wintermute/internal/cache"
	"github.com/dcdb/wintermute/internal/core"
	"github.com/dcdb/wintermute/internal/navigator"
	"github.com/dcdb/wintermute/internal/sensor"
)

const sec = int64(time.Second)

func env(t testing.TB) *core.QueryEngine {
	t.Helper()
	nav := navigator.New()
	caches := cache.NewSet()
	for n := 0; n < 3; n++ {
		for _, name := range []string{"power", "temp"} {
			topic := sensor.Topic(fmt.Sprintf("/r1/n%d/%s", n, name))
			if err := nav.AddSensor(topic); err != nil {
				t.Fatal(err)
			}
			c := caches.GetOrCreate(topic, 512, time.Second)
			for k := 0; k < 400; k++ {
				c.Store(sensor.Reading{Value: float64(k%100) + float64(n)*1000, Time: int64(k) * sec})
			}
		}
	}
	return core.NewQueryEngine(nav, caches, nil)
}

func TestDerivedOutputsLayout(t *testing.T) {
	qe := env(t)
	op, err := New(Config{
		Inputs:   []string{"<bottomup>power", "<bottomup>temp"},
		WindowsS: []int{60, 300},
	}, qe)
	if err != nil {
		t.Fatal(err)
	}
	us := op.Units()
	if len(us) != 3 {
		t.Fatalf("units = %d, want one per node", len(us))
	}
	u := us[0]
	if len(u.Inputs) != 2 || len(u.Outputs) != 4 {
		t.Fatalf("unit io = %d in, %d out", len(u.Inputs), len(u.Outputs))
	}
	if u.Outputs[0] != "/r1/n0/power-avg60" || u.Outputs[1] != "/r1/n0/power-avg300" ||
		u.Outputs[2] != "/r1/n0/temp-avg60" || u.Outputs[3] != "/r1/n0/temp-avg300" {
		t.Fatalf("outputs = %v", u.Outputs)
	}
}

func TestComputeAverages(t *testing.T) {
	qe := env(t)
	op, err := New(Config{
		Inputs:   []string{"<bottomup>power"},
		WindowsS: []int{9},
	}, qe)
	if err != nil {
		t.Fatal(err)
	}
	outs, err := op.Compute(qe, op.Units()[0], time.Unix(399, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 {
		t.Fatalf("outs = %+v", outs)
	}
	// Values 90..99 (last 10 readings of the k%100 ramp at node 0).
	want := (90.0 + 99) / 2
	if outs[0].Reading.Value != want {
		t.Fatalf("avg = %v, want %v", outs[0].Reading.Value, want)
	}
}

func TestSmoothedSensorsJoinPipeline(t *testing.T) {
	qe := env(t)
	nav := qe.Navigator()
	caches := cache.NewSet() // separate set: only derived sensors land here
	sink := core.NewCacheSink(caches, nav, 64, time.Second)
	op, err := New(Config{Inputs: []string{"<bottomup>power"}, WindowsS: []int{60}}, qe)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Tick(op, qe, sink, time.Unix(399, 0)); err != nil {
		t.Fatal(err)
	}
	// Derived sensors are registered in the tree, so downstream pattern
	// units can bind to them.
	if !nav.HasSensor("/r1/n1/power-avg60") {
		t.Fatal("derived sensor not registered")
	}
}

func TestDefaults(t *testing.T) {
	qe := env(t)
	op, err := New(Config{Inputs: []string{"<bottomup>power"}}, qe)
	if err != nil {
		t.Fatal(err)
	}
	if op.Name() != "smoothing" {
		t.Errorf("name = %q", op.Name())
	}
	if len(op.windows) != 2 || op.windows[0] != 60*time.Second {
		t.Errorf("default windows = %v", op.windows)
	}
}

func TestConfigErrors(t *testing.T) {
	qe := env(t)
	if _, err := New(Config{Inputs: []string{"<bottomup>power"}, WindowsS: []int{0}}, qe); err == nil {
		t.Error("zero window should fail")
	}
	if _, err := New(Config{Inputs: []string{"<oops"}}, qe); err == nil {
		t.Error("bad pattern should fail")
	}
	if _, err := New(Config{Inputs: []string{"<bottomup>nonexistent"}}, qe); err == nil {
		t.Error("unresolvable inputs should fail")
	}
	if _, err := New(Config{}, qe); err == nil {
		t.Error("no inputs should fail")
	}
}
