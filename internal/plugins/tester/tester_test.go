package tester

import (
	"encoding/json"
	"testing"
	"time"

	"github.com/dcdb/wintermute/internal/cache"
	"github.com/dcdb/wintermute/internal/core"
	"github.com/dcdb/wintermute/internal/navigator"
	"github.com/dcdb/wintermute/internal/sensor"
)

const sec = int64(time.Second)

func env(t testing.TB, sensors, readings int) *core.QueryEngine {
	t.Helper()
	nav := navigator.New()
	caches := cache.NewSet()
	for i := 0; i < sensors; i++ {
		topic := sensor.Topic("/node/").Join("test" + string(rune('a'+i)))
		if err := nav.AddSensor(topic); err != nil {
			t.Fatal(err)
		}
		c := caches.GetOrCreate(topic, readings, time.Second)
		for k := 0; k < readings; k++ {
			c.Store(sensor.Reading{Value: float64(k), Time: int64(k) * sec})
		}
	}
	return core.NewQueryEngine(nav, caches, nil)
}

func TestComputeCountsReadings(t *testing.T) {
	qe := env(t, 4, 100)
	cfg := Config{
		OperatorConfig: core.OperatorConfig{
			Name:   "t1",
			Inputs: []string{"testa", "testb", "testc", "testd"},
			Outputs: []string{
				"tester-readings",
			},
			Unit: "/node/",
		},
		Queries:  8,
		WindowMs: 9000, // 10 readings per query at 1s interval
	}
	op, err := New(cfg, qe)
	if err != nil {
		t.Fatal(err)
	}
	u := op.Units()[0]
	outs, err := op.Compute(qe, u, time.Unix(99, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 || outs[0].Topic != "/node/tester-readings" {
		t.Fatalf("outs = %+v", outs)
	}
	if outs[0].Reading.Value != 8*10 {
		t.Fatalf("readings = %v, want 80", outs[0].Reading.Value)
	}
	if op.ReadingsRetrieved() != 80 {
		t.Fatalf("ReadingsRetrieved = %d", op.ReadingsRetrieved())
	}
}

func TestAbsoluteAndRelativeAgree(t *testing.T) {
	for _, window := range []int{0, 5000, 50000} {
		var got [2]float64
		for i, abs := range []bool{false, true} {
			qe := env(t, 2, 60)
			cfg := Config{
				OperatorConfig: core.OperatorConfig{
					Name: "t", Inputs: []string{"testa", "testb"},
					Outputs: []string{"n"}, Unit: "/node/",
				},
				Queries: 10, WindowMs: window, Absolute: abs,
			}
			op, err := New(cfg, qe)
			if err != nil {
				t.Fatal(err)
			}
			// Query at the time of the newest reading so absolute windows
			// anchored at "now" line up with relative ones.
			outs, err := op.Compute(qe, op.Units()[0], time.Unix(59, 0))
			if err != nil {
				t.Fatal(err)
			}
			got[i] = outs[0].Reading.Value
		}
		if got[0] != got[1] {
			t.Errorf("window %d: relative %v != absolute %v", window, got[0], got[1])
		}
	}
}

func TestWindowZeroFetchesLatestOnly(t *testing.T) {
	qe := env(t, 1, 50)
	cfg := Config{
		OperatorConfig: core.OperatorConfig{
			Name: "t", Inputs: []string{"testa"}, Outputs: []string{"n"}, Unit: "/node/",
		},
		Queries: 5, WindowMs: 0,
	}
	op, err := New(cfg, qe)
	if err != nil {
		t.Fatal(err)
	}
	outs, err := op.Compute(qe, op.Units()[0], time.Unix(49, 0))
	if err != nil {
		t.Fatal(err)
	}
	if outs[0].Reading.Value != 5 {
		t.Fatalf("readings = %v, want 5 (one per query)", outs[0].Reading.Value)
	}
}

func TestDefaultQueries(t *testing.T) {
	qe := env(t, 1, 10)
	cfg := Config{
		OperatorConfig: core.OperatorConfig{
			Name: "t", Inputs: []string{"testa"}, Outputs: []string{"n"}, Unit: "/node/",
		},
	}
	op, err := New(cfg, qe)
	if err != nil {
		t.Fatal(err)
	}
	if op.cfg.Queries != 1 {
		t.Fatalf("default queries = %d", op.cfg.Queries)
	}
}

func TestPluginRegistration(t *testing.T) {
	qe := env(t, 2, 10)
	sink := core.SinkFunc(func(sensor.Topic, sensor.Reading) {})
	m := core.NewManager(qe, sink, core.Env{})
	raw, _ := json.Marshal(Config{
		OperatorConfig: core.OperatorConfig{
			Name: "via-registry", Inputs: []string{"testa"},
			Outputs: []string{"count"}, Unit: "/node/",
		},
		Queries: 3,
	})
	if err := m.LoadPlugin("tester", raw); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Operator("via-registry"); !ok {
		t.Fatal("operator not created via registry")
	}
	if err := m.LoadPlugin("tester", []byte("{bad json")); err == nil {
		t.Error("bad json should fail")
	}
}

func TestBadConfig(t *testing.T) {
	qe := env(t, 1, 10)
	cfg := Config{
		OperatorConfig: core.OperatorConfig{
			Name: "t", Inputs: []string{"missing-sensor"}, Outputs: []string{"n"}, Unit: "/node/",
		},
	}
	if _, err := New(cfg, qe); err == nil {
		t.Error("missing input sensor should fail")
	}
}
