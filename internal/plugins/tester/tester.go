// Package tester implements the tester operator plugin of paper §VI-A:
// operators that "simply perform a certain number of queries over the
// input sensors of their units" per computation interval. It is the
// workload used to characterise the Query Engine's overhead (Figure 5),
// parameterised by the number of queries, the queried time range, and the
// query mode (absolute vs relative time-stamps).
package tester

import (
	"encoding/json"
	"sync"
	"time"

	"github.com/dcdb/wintermute/internal/core"
	"github.com/dcdb/wintermute/internal/core/units"
	"github.com/dcdb/wintermute/internal/sensor"
)

// Config parameterises a tester operator.
type Config struct {
	core.OperatorConfig
	// Queries is the number of sensor queries issued per computation
	// interval (the x-axis of Figure 5).
	Queries int `json:"queries"`
	// WindowMs is the temporal range of each query in milliseconds (the
	// y-axis of Figure 5); 0 retrieves only the most recent value.
	WindowMs int `json:"windowMs"`
	// Absolute selects absolute-timestamp queries (binary search,
	// O(log N)) instead of relative ones (O(1)).
	Absolute bool `json:"absolute"`
}

// Operator issues configurable query load against the Query Engine.
type Operator struct {
	*core.Base
	cfg Config

	// readings counts the total readings retrieved, exposed for tests.
	mu       sync.Mutex
	readings uint64
}

// New builds a tester operator from a parsed config.
func New(cfg Config, qe *core.QueryEngine) (*Operator, error) {
	base, err := cfg.OperatorConfig.Build("tester", qe.Navigator())
	if err != nil {
		return nil, err
	}
	if cfg.Queries <= 0 {
		cfg.Queries = 1
	}
	return &Operator{Base: base, cfg: cfg}, nil
}

// ReadingsRetrieved returns the cumulative number of readings fetched.
func (o *Operator) ReadingsRetrieved() uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.readings
}

// Compute issues the configured number of queries round-robin over the
// unit's input sensors and reports the number of readings retrieved on the
// unit's outputs.
func (o *Operator) Compute(qe *core.QueryEngine, u *units.Unit, now time.Time) ([]core.Output, error) {
	return o.ComputeInto(qe, u, now, core.NewTickContext())
}

// ComputeInto implements core.ContextOperator: the query workload runs
// through bound sensor handles against the context's reading scratch, so
// a steady-state tick performs no per-query topic resolution and no
// allocations — the configuration the paper's Figure 5 sweeps.
func (o *Operator) ComputeInto(qe *core.QueryEngine, u *units.Unit, now time.Time, tc *core.TickContext) ([]core.Output, error) {
	if len(u.Inputs) == 0 {
		return nil, nil
	}
	bu := qe.BindUnit(u)
	window := time.Duration(o.cfg.WindowMs) * time.Millisecond
	nowNs := now.UnixNano()
	buf := tc.Readings
	var total int
	for q := 0; q < o.cfg.Queries; q++ {
		in := bu.Inputs[q%len(u.Inputs)]
		buf = buf[:0]
		if o.cfg.Absolute {
			buf = in.QueryAbsolute(nowNs-int64(window), nowNs, buf)
		} else {
			buf = in.QueryRelative(window, buf)
		}
		total += len(buf)
	}
	tc.Readings = buf
	o.mu.Lock()
	o.readings += uint64(total)
	o.mu.Unlock()
	outs := tc.Outputs[:0]
	for _, out := range u.Outputs {
		outs = append(outs, core.Output{Topic: out, Reading: sensor.At(float64(total), now)})
	}
	tc.Outputs = outs
	return outs, nil
}

func init() {
	core.RegisterPlugin("tester", func(raw json.RawMessage, qe *core.QueryEngine, env core.Env) ([]core.Operator, error) {
		var cfg Config
		if err := json.Unmarshal(raw, &cfg); err != nil {
			return nil, err
		}
		op, err := New(cfg, qe)
		if err != nil {
			return nil, err
		}
		return []core.Operator{op}, nil
	})
}
