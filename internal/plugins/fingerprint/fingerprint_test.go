package fingerprint

import (
	"testing"
	"time"

	"github.com/dcdb/wintermute/internal/cache"
	"github.com/dcdb/wintermute/internal/core"
	"github.com/dcdb/wintermute/internal/navigator"
	"github.com/dcdb/wintermute/internal/sensor"
	"github.com/dcdb/wintermute/internal/sim/hardware"
	"github.com/dcdb/wintermute/internal/sim/jobs"
	"github.com/dcdb/wintermute/internal/sim/workload"
)

// rig drives two nodes through labelled application phases, with CPI and
// miss-rate metrics derived from the hardware models.
type rig struct {
	qe    *core.QueryEngine
	sink  *core.CacheSink
	table *jobs.Table
	op    *Operator
	nodes []*hardware.Node
	paths []sensor.Topic
	prevC []float64
	prevI []float64
	prevM []float64
}

func newRig(t testing.TB, trainSize int) *rig {
	t.Helper()
	nav := navigator.New()
	caches := cache.NewSet()
	qe := core.NewQueryEngine(nav, caches, nil)
	sink := core.NewCacheSink(caches, nav, 64, time.Second)
	r := &rig{qe: qe, sink: sink, table: jobs.NewTable()}
	for i := 0; i < 2; i++ {
		path := sensor.Topic("/r1/").JoinNode("n" + string(rune('1'+i)))
		for _, s := range []string{"cpi", "miss-rate", "flops-rate"} {
			if err := nav.AddSensor(path.Join(s)); err != nil {
				t.Fatal(err)
			}
		}
		r.nodes = append(r.nodes, hardware.NewNode(hardware.Config{Cores: 4, Seed: int64(i + 1)}))
		r.paths = append(r.paths, path)
	}
	r.prevC = make([]float64, 2)
	r.prevI = make([]float64, 2)
	r.prevM = make([]float64, 2)
	op, err := New(Config{
		OperatorConfig: core.OperatorConfig{
			Name:    "fp",
			Inputs:  []string{"cpi", "miss-rate", "flops-rate"},
			Outputs: []string{"<bottomup>app-class", "<bottomup>app-conf"},
		},
		TrainingSetSize: trainSize,
		Trees:           12,
		Seed:            5,
	}, qe, core.Env{Jobs: r.table})
	if err != nil {
		t.Fatal(err)
	}
	r.op = op
	return r
}

// runPhase runs app on both nodes for `secs` simulated seconds starting
// at t0, with job labels, sampling metrics and ticking the operator.
func (r *rig) runPhase(t testing.TB, app string, t0, secs int64) {
	jobID := r.table.Submit("u", append([]sensor.Topic(nil), r.paths...),
		t0*int64(time.Second), (t0+secs)*int64(time.Second))
	job, _ := r.table.Job(jobID)
	job.Name = app
	r.table.Add(job)
	for i, n := range r.nodes {
		n.SetApp(workload.MustNew(app, int64(i)+t0, float64(secs)), t0*int64(time.Second))
	}
	for s := t0; s < t0+secs; s++ {
		ns := s * int64(time.Second)
		now := time.Unix(0, ns)
		for i, n := range r.nodes {
			n.Advance(ns)
			var cy, in, ms float64
			for c := 0; c < 4; c++ {
				c1, i1, m1, _, _ := n.CoreCounters(c)
				cy += c1
				in += i1
				ms += m1
			}
			dt := 1.0
			cpi := 0.0
			if in-r.prevI[i] > 0 {
				cpi = (cy - r.prevC[i]) / (in - r.prevI[i])
			}
			missRate := (ms - r.prevM[i]) / dt
			flopsRate := (in - r.prevI[i]) / dt
			r.prevC[i], r.prevI[i], r.prevM[i] = cy, in, ms
			r.sink.Push(r.paths[i].Join("cpi"), sensor.Reading{Value: cpi, Time: ns})
			r.sink.Push(r.paths[i].Join("miss-rate"), sensor.Reading{Value: missRate, Time: ns})
			r.sink.Push(r.paths[i].Join("flops-rate"), sensor.Reading{Value: flopsRate, Time: ns})
		}
		if s > t0+1 {
			if err := core.Tick(r.op, r.qe, r.sink, now); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestTrainsAndRecognisesApps(t *testing.T) {
	r := newRig(t, 120)
	// Labelled training phases alternating two very different apps.
	t0 := int64(0)
	for round := 0; round < 3; round++ {
		r.runPhase(t, "lammps", t0, 40)
		t0 += 40
		r.runPhase(t, "kripke", t0, 40)
		t0 += 40
	}
	if !r.op.Trained() {
		have, want := r.op.TrainingProgress()
		t.Fatalf("not trained: %d/%d", have, want)
	}
	classes := r.op.Classes()
	if len(classes) != 2 || classes[0] != "kripke" || classes[1] != "lammps" {
		t.Fatalf("classes = %v", classes)
	}
	// Recognition phase: run lammps again, unlabelled readings classified.
	r.runPhase(t, "lammps", t0, 30)
	label, ok := r.qe.Latest(r.paths[0].Join("app-class"))
	if !ok {
		t.Fatal("no classification output")
	}
	if int(label.Value) != 1 { // index of "lammps"
		t.Errorf("classified as %v, want lammps (1); classes %v", label.Value, classes)
	}
	conf, ok := r.qe.Latest(r.paths[0].Join("app-conf"))
	if !ok || conf.Value < 0.5 {
		t.Errorf("confidence = %v, %v", conf.Value, ok)
	}
}

func TestUnknownWhenUncertain(t *testing.T) {
	r := newRig(t, 60)
	t0 := int64(0)
	r.runPhase(t, "lammps", t0, 40)
	t0 += 40
	r.runPhase(t, "kripke", t0, 40)
	t0 += 40
	if !r.op.Trained() {
		t.Skip("training incomplete at this scale") // deterministic rig: should not happen
	}
	// Idle node produces out-of-distribution metrics; prediction may be
	// either class but with split votes it must degrade to Unknown, and
	// the output must always be a valid class index or Unknown.
	r.runPhase(t, "idle", t0, 30)
	label, ok := r.qe.Latest(r.paths[0].Join("app-class"))
	if !ok {
		t.Fatal("no output")
	}
	if v := int(label.Value); v != Unknown && v != 0 && v != 1 {
		t.Errorf("class = %v, not a valid index", v)
	}
}

func TestConfigErrors(t *testing.T) {
	nav := navigator.New()
	if err := nav.AddSensor("/n1/cpi"); err != nil {
		t.Fatal(err)
	}
	qe := core.NewQueryEngine(nav, cache.NewSet(), nil)
	cfg := Config{
		OperatorConfig: core.OperatorConfig{
			Inputs: []string{"cpi"}, Outputs: []string{"app"}, Unit: "/n1/",
		},
	}
	if _, err := New(cfg, qe, core.Env{}); err == nil {
		t.Error("missing job provider should fail")
	}
	table := jobs.NewTable()
	op, err := New(cfg, qe, core.Env{Jobs: table})
	if err != nil {
		t.Fatal(err)
	}
	if op.Parallel() {
		t.Error("fingerprint must force sequential unit management")
	}
	if _, want := op.TrainingProgress(); want != 500 {
		t.Errorf("default training size = %d", want)
	}
	if op.Classes() != nil {
		t.Error("untrained Classes should be nil")
	}
}

func TestJobLabelHelper(t *testing.T) {
	j := core.Job{ID: "job1"}
	if j.Label() != "job1" {
		t.Error("Label should fall back to ID")
	}
	j.Name = "lammps"
	if j.Label() != "lammps" {
		t.Error("Label should prefer Name")
	}
}
