// Package fingerprint implements an application-fingerprinting operator
// plugin — the taxonomy class of the paper's Figure 1 in which management
// decisions are optimised "by predicting the behavior of user jobs, and
// correlating this to historical data" (Taxonomist [30] and related
// systems).
//
// Per compute-node unit, windows of derived performance metrics (CPI,
// FLOPS rate, miss rate, ...) are turned into feature vectors. While jobs
// with known application names run on a node, the vectors accumulate as
// labelled training data; once the configured training-set size is
// reached, a random-forest classifier is fitted and the operator starts
// publishing, per node, the index of the recognised application plus the
// classification confidence. The class-index-to-name mapping is exposed
// via Classes for the REST layer.
package fingerprint

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"github.com/dcdb/wintermute/internal/core"
	"github.com/dcdb/wintermute/internal/core/units"
	"github.com/dcdb/wintermute/internal/ml/features"
	"github.com/dcdb/wintermute/internal/ml/forest"
	"github.com/dcdb/wintermute/internal/sensor"
)

// Config parameterises a fingerprint operator. The unit's first output
// receives the predicted class index; an optional second output receives
// the confidence.
type Config struct {
	core.OperatorConfig
	// TrainingSetSize is the number of labelled windows accumulated
	// before the classifier is trained (default 500).
	TrainingSetSize int `json:"trainingSetSize"`
	// WindowMs is the feature window (default: 4 computation intervals).
	WindowMs int `json:"windowMs"`
	// MinConfidence suppresses predictions below this vote fraction;
	// suppressed ticks publish class -1 (default 0.5).
	MinConfidence float64 `json:"minConfidence"`
	Trees         int     `json:"trees"`
	MaxDepth      int     `json:"maxDepth"`
	Seed          int64   `json:"seed"`
}

// Unknown is the class index published when no confident prediction is
// available.
const Unknown = -1

// Operator learns and recognises application signatures.
type Operator struct {
	*core.Base
	cfg    Config
	window time.Duration
	jobs   core.JobProvider

	mu      sync.Mutex
	model   *forest.Classifier
	trained bool
	trainX  [][]float64
	trainY  []string
	classes map[string]int
}

// New builds a fingerprint operator; it requires a job provider for
// training labels.
func New(cfg Config, qe *core.QueryEngine, env core.Env) (*Operator, error) {
	if env.Jobs == nil {
		return nil, fmt.Errorf("fingerprint: no job provider available")
	}
	if cfg.TrainingSetSize <= 0 {
		cfg.TrainingSetSize = 500
	}
	if cfg.MinConfidence <= 0 {
		cfg.MinConfidence = 0.5
	}
	// The model is shared across units: sequential unit management.
	cfg.OperatorConfig.Parallel = false
	base, err := cfg.OperatorConfig.Build("fingerprint", qe.Navigator())
	if err != nil {
		return nil, err
	}
	window := time.Duration(cfg.WindowMs) * time.Millisecond
	if window <= 0 {
		window = 4 * cfg.OperatorConfig.IntervalDuration()
	}
	return &Operator{
		Base:   base,
		cfg:    cfg,
		window: window,
		jobs:   env.Jobs,
		model: forest.NewClassifier(forest.Params{
			Trees:    cfg.Trees,
			MaxDepth: cfg.MaxDepth,
			Seed:     cfg.Seed,
		}),
	}, nil
}

// Trained reports whether the classifier has been fitted.
func (o *Operator) Trained() bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.trained
}

// TrainingProgress returns accumulated and required labelled windows.
func (o *Operator) TrainingProgress() (have, want int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.trainY), o.cfg.TrainingSetSize
}

// Classes returns the application names in class-index order, available
// once trained.
func (o *Operator) Classes() []string {
	o.mu.Lock()
	defer o.mu.Unlock()
	if !o.trained {
		return nil
	}
	return o.model.Classes()
}

// labelFor returns the application label of the job running on the
// unit's node, if exactly one is known.
func (o *Operator) labelFor(u *units.Unit, now time.Time) (string, bool) {
	for _, job := range o.jobs.RunningJobs(now.UnixNano()) {
		for _, node := range job.Nodes {
			if node == u.Name {
				return job.Label(), true
			}
		}
	}
	return "", false
}

// Compute implements core.Operator: during training, windows of input
// metrics labelled by the running job accumulate; after training, every
// window yields a recognised application index and confidence.
func (o *Operator) Compute(qe *core.QueryEngine, u *units.Unit, now time.Time) ([]core.Output, error) {
	return o.ComputeInto(qe, u, now, core.NewTickContext())
}

// ComputeInto implements core.ContextOperator. The reading buffer is
// context scratch; the feature vector is freshly allocated on purpose —
// it may be retained as labelled training data.
func (o *Operator) ComputeInto(qe *core.QueryEngine, u *units.Unit, now time.Time, tc *core.TickContext) ([]core.Output, error) {
	bu := qe.BindUnit(u)
	feat := make([]float64, 0, features.VectorSize(len(u.Inputs)))
	buf := tc.Readings
	samples := 0
	for i := range u.Inputs {
		buf = bu.Inputs[i].QueryRelative(o.window, buf[:0])
		samples += len(buf)
		feat = features.Extract(buf, feat)
	}
	tc.Readings = buf
	if samples == 0 {
		return nil, nil // sensors not warm yet
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if !o.trained {
		label, ok := o.labelFor(u, now)
		if !ok {
			return nil, nil // unlabelled window: idle node or unknown job
		}
		o.trainX = append(o.trainX, feat)
		o.trainY = append(o.trainY, label)
		if len(o.trainY) >= o.cfg.TrainingSetSize {
			if err := o.model.Fit(o.trainX, o.trainY); err != nil {
				return nil, fmt.Errorf("fingerprint: training: %w", err)
			}
			o.trained = true
			o.trainX, o.trainY = nil, nil
		}
		return nil, nil
	}
	label, conf := o.model.Predict(feat)
	class := Unknown
	if conf >= o.cfg.MinConfidence {
		for i, name := range o.model.Classes() {
			if name == label {
				class = i
				break
			}
		}
	}
	outs := tc.Outputs[:0]
	if len(u.Outputs) >= 1 {
		outs = append(outs, core.Output{Topic: u.Outputs[0], Reading: sensor.At(float64(class), now)})
	}
	if len(u.Outputs) >= 2 {
		outs = append(outs, core.Output{Topic: u.Outputs[1], Reading: sensor.At(conf, now)})
	}
	tc.Outputs = outs
	return outs, nil
}

func init() {
	core.RegisterPlugin("fingerprint", func(raw json.RawMessage, qe *core.QueryEngine, env core.Env) ([]core.Operator, error) {
		var cfg Config
		if err := json.Unmarshal(raw, &cfg); err != nil {
			return nil, err
		}
		op, err := New(cfg, qe, env)
		if err != nil {
			return nil, err
		}
		return []core.Operator{op}, nil
	})
}
