package persyst

import (
	"fmt"
	"testing"
	"time"

	"github.com/dcdb/wintermute/internal/cache"
	"github.com/dcdb/wintermute/internal/core"
	"github.com/dcdb/wintermute/internal/navigator"
	"github.com/dcdb/wintermute/internal/sensor"
	"github.com/dcdb/wintermute/internal/sim/jobs"
)

const sec = int64(time.Second)

// rig: 2 nodes x 4 cpus with a "cpi" metric sensor per cpu; one job on
// both nodes, one job on the first node only.
type rig struct {
	qe    *core.QueryEngine
	table *jobs.Table
	op    *Operator
}

func newRig(t testing.TB) *rig {
	t.Helper()
	nav := navigator.New()
	caches := cache.NewSet()
	val := 0.0
	for n := 1; n <= 2; n++ {
		for c := 0; c < 4; c++ {
			topic := sensor.Topic(fmt.Sprintf("/r1/n%d/cpu%02d/cpi", n, c))
			if err := nav.AddSensor(topic); err != nil {
				t.Fatal(err)
			}
			val++
			// cpi values 1..8 across the 8 cores.
			caches.GetOrCreate(topic, 8, time.Second).
				Store(sensor.Reading{Value: val, Time: 10 * sec})
		}
	}
	qe := core.NewQueryEngine(nav, caches, nil)
	table := jobs.NewTable()
	table.Add(core.Job{ID: "jobA", User: "u1", Nodes: []sensor.Topic{"/r1/n1/", "/r1/n2/"}, Start: 0})
	table.Add(core.Job{ID: "jobB", User: "u2", Nodes: []sensor.Topic{"/r1/n1/"}, Start: 0, End: 100 * sec})
	op, err := New(Config{Metric: "cpi"}, qe, core.Env{Jobs: table})
	if err != nil {
		t.Fatal(err)
	}
	return &rig{qe: qe, table: table, op: op}
}

func TestRefreshUnitsPerJob(t *testing.T) {
	r := newRig(t)
	if err := r.op.RefreshUnits(r.qe, time.Unix(50, 0)); err != nil {
		t.Fatal(err)
	}
	us := r.op.Units()
	if len(us) != 2 {
		t.Fatalf("units = %d, want 2 running jobs", len(us))
	}
	if us[0].Name != "/jobs/jobA/" || us[1].Name != "/jobs/jobB/" {
		t.Fatalf("unit names = %v, %v", us[0].Name, us[1].Name)
	}
	if len(us[0].Inputs) != 8 {
		t.Errorf("jobA inputs = %d, want 8 (2 nodes x 4 cpus)", len(us[0].Inputs))
	}
	if len(us[1].Inputs) != 4 {
		t.Errorf("jobB inputs = %d, want 4", len(us[1].Inputs))
	}
	if len(us[0].Outputs) != 11 {
		t.Errorf("outputs = %d, want 11 deciles", len(us[0].Outputs))
	}
	if us[0].Outputs[0] != "/jobs/jobA/cpi-dec0" || us[0].Outputs[10] != "/jobs/jobA/cpi-dec10" {
		t.Errorf("output names = %v .. %v", us[0].Outputs[0], us[0].Outputs[10])
	}
}

func TestUnitsFollowJobLifecycle(t *testing.T) {
	r := newRig(t)
	// After jobB ends only jobA remains.
	if err := r.op.RefreshUnits(r.qe, time.Unix(150, 0)); err != nil {
		t.Fatal(err)
	}
	us := r.op.Units()
	if len(us) != 1 || us[0].Name != "/jobs/jobA/" {
		t.Fatalf("units after jobB end = %+v", us)
	}
}

func TestComputeDeciles(t *testing.T) {
	r := newRig(t)
	if err := r.op.RefreshUnits(r.qe, time.Unix(50, 0)); err != nil {
		t.Fatal(err)
	}
	us := r.op.Units()
	outs, err := r.op.Compute(r.qe, us[0], time.Unix(50, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 11 {
		t.Fatalf("outs = %d", len(outs))
	}
	// jobA sees cpi values 1..8: dec0 = 1, dec10 = 8, dec5 = 4.5.
	byName := map[string]float64{}
	for _, o := range outs {
		byName[o.Topic.Name()] = o.Reading.Value
	}
	if byName["cpi-dec0"] != 1 || byName["cpi-dec10"] != 8 {
		t.Errorf("dec0/dec10 = %v/%v", byName["cpi-dec0"], byName["cpi-dec10"])
	}
	if byName["cpi-dec5"] != 4.5 {
		t.Errorf("median = %v, want 4.5", byName["cpi-dec5"])
	}
}

func TestFullTickPublishesThroughSink(t *testing.T) {
	r := newRig(t)
	var pushed int
	sink := core.SinkFunc(func(sensor.Topic, sensor.Reading) { pushed++ })
	if err := core.Tick(r.op, r.qe, sink, time.Unix(50, 0)); err != nil {
		t.Fatal(err)
	}
	if pushed != 22 { // 2 jobs x 11 deciles
		t.Fatalf("pushed = %d, want 22", pushed)
	}
}

func TestCustomQuantiles(t *testing.T) {
	r := newRig(t)
	op, err := New(Config{Metric: "cpi", Quantiles: []float64{0.25, 0.75}}, r.qe, core.Env{Jobs: r.table})
	if err != nil {
		t.Fatal(err)
	}
	if err := op.RefreshUnits(r.qe, time.Unix(50, 0)); err != nil {
		t.Fatal(err)
	}
	us := op.Units()
	if len(us[0].Outputs) != 2 {
		t.Fatalf("outputs = %v", us[0].Outputs)
	}
	if us[0].Outputs[0].Name() != "cpi-q25" {
		t.Errorf("quantile output name = %q", us[0].Outputs[0].Name())
	}
}

func TestConfigErrors(t *testing.T) {
	r := newRig(t)
	if _, err := New(Config{}, r.qe, core.Env{Jobs: r.table}); err == nil {
		t.Error("missing metric should fail")
	}
	if _, err := New(Config{Metric: "cpi"}, r.qe, core.Env{}); err == nil {
		t.Error("missing job provider should fail")
	}
	if _, err := New(Config{Metric: "cpi", Quantiles: []float64{1.5}}, r.qe, core.Env{Jobs: r.table}); err == nil {
		t.Error("out-of-range quantile should fail")
	}
}

func TestJobWithoutMetricSkipped(t *testing.T) {
	r := newRig(t)
	r.table.Add(core.Job{ID: "jobC", User: "u3", Nodes: []sensor.Topic{"/r9/nX/"}, Start: 0})
	if err := r.op.RefreshUnits(r.qe, time.Unix(50, 0)); err != nil {
		t.Fatal(err)
	}
	for _, u := range r.op.Units() {
		if u.Name == "/jobs/jobC/" {
			t.Fatal("job without metric sensors should be skipped")
		}
	}
}
