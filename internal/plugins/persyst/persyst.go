// Package persyst implements the job-level aggregation operator plugin of
// the paper's case study 2 (§VI-C), a re-implementation of the PerSyst
// framework's quantile transport: "at each computing interval, it queries
// the set of running jobs on the HPC system, and for each of them it
// instantiates a unit according to its configuration. [...] the operator
// computes a series of job-level statistical indicators" — here the
// deciles of a derived metric (e.g. CPI) across all cores of a job.
//
// It is a job operator plugin (paper §V-C): its units are dynamic, one per
// running job, with inputs gathered from all compute nodes the job runs
// on and outputs published under a virtual /jobs/<id>/ subtree.
package persyst

import (
	"encoding/json"
	"fmt"
	"math"
	"time"

	"github.com/dcdb/wintermute/internal/core"
	"github.com/dcdb/wintermute/internal/core/units"
	"github.com/dcdb/wintermute/internal/ml/quantile"
	"github.com/dcdb/wintermute/internal/sensor"
)

// Config parameterises a persyst operator.
type Config struct {
	// Name identifies the operator (default "persyst").
	Name string `json:"name"`
	// IntervalMs is the computation interval (default 1000).
	IntervalMs int `json:"intervalMs"`
	// Metric is the short name of the input metric aggregated per job,
	// e.g. "cpi" as produced by the perfmetrics plugin.
	Metric string `json:"metric"`
	// Quantiles are the probabilities published per job; the default is
	// the eleven deciles 0, 0.1, ..., 1.0 of the paper's Figure 7.
	Quantiles []float64 `json:"quantiles"`
	// JobPrefix is the virtual component under which job outputs are
	// published (default "/jobs/").
	JobPrefix string `json:"jobPrefix"`
}

// Operator aggregates a metric into per-job quantiles.
type Operator struct {
	*core.Base
	cfg  Config
	jobs core.JobProvider
}

// New builds a persyst operator; it requires a job provider in the
// environment.
func New(cfg Config, qe *core.QueryEngine, env core.Env) (*Operator, error) {
	if env.Jobs == nil {
		return nil, fmt.Errorf("persyst: no job provider available")
	}
	if cfg.Metric == "" {
		return nil, fmt.Errorf("persyst: missing metric name")
	}
	if cfg.Name == "" {
		cfg.Name = "persyst"
	}
	if cfg.JobPrefix == "" {
		cfg.JobPrefix = "/jobs/"
	}
	if len(cfg.Quantiles) == 0 {
		for i := 0; i <= 10; i++ {
			cfg.Quantiles = append(cfg.Quantiles, float64(i)/10)
		}
	}
	for _, q := range cfg.Quantiles {
		if q < 0 || q > 1 || math.IsNaN(q) {
			return nil, fmt.Errorf("persyst: quantile %v out of range", q)
		}
	}
	interval := time.Duration(cfg.IntervalMs) * time.Millisecond
	if interval <= 0 {
		interval = time.Second
	}
	base := core.NewBase(cfg.Name, "persyst", core.Online, interval, false)
	return &Operator{Base: base, cfg: cfg, jobs: env.Jobs}, nil
}

// outputName renders the output sensor name of one quantile: deciles get
// the dec0..dec10 names of the paper, other probabilities a q<percent>
// name.
func (o *Operator) outputName(q float64) string {
	dec := q * 10
	if dec == math.Trunc(dec) {
		return fmt.Sprintf("%s-dec%d", o.cfg.Metric, int(dec))
	}
	return fmt.Sprintf("%s-q%02d", o.cfg.Metric, int(math.Round(q*100)))
}

// RefreshUnits implements core.DynamicUnitOperator: one unit per running
// job, with inputs discovered from the sensor tree below the job's nodes.
func (o *Operator) RefreshUnits(qe *core.QueryEngine, now time.Time) error {
	running := o.jobs.RunningJobs(now.UnixNano())
	nav := qe.Navigator()
	us := make([]*units.Unit, 0, len(running))
	for _, job := range running {
		var inputs []sensor.Topic
		for _, node := range job.Nodes {
			for _, tp := range nav.SensorsBelow(node) {
				if tp.Name() == o.cfg.Metric {
					inputs = append(inputs, tp)
				}
			}
		}
		if len(inputs) == 0 {
			continue // upstream pipeline stage not warm yet
		}
		unitPath := sensor.Topic(o.cfg.JobPrefix).AsNode().JoinNode(job.ID)
		u := &units.Unit{Name: unitPath, Inputs: inputs}
		for _, q := range o.cfg.Quantiles {
			u.Outputs = append(u.Outputs, unitPath.Join(o.outputName(q)))
		}
		us = append(us, u)
	}
	o.SetUnits(us)
	return nil
}

// Compute implements core.Operator: the latest reading of every input is
// collected and reduced to the configured quantiles.
func (o *Operator) Compute(qe *core.QueryEngine, u *units.Unit, now time.Time) ([]core.Output, error) {
	return o.ComputeInto(qe, u, now, core.NewTickContext())
}

// ComputeInto implements core.ContextOperator: the per-job sample vector
// lives in the context's float scratch. Units are rebuilt every tick by
// RefreshUnits, so bound handles are attached to each fresh unit on its
// first computation and collected with it.
func (o *Operator) ComputeInto(qe *core.QueryEngine, u *units.Unit, now time.Time, tc *core.TickContext) ([]core.Output, error) {
	bu := qe.BindUnit(u)
	values := tc.Floats[:0]
	for i := range u.Inputs {
		if r, ok := bu.Inputs[i].Latest(); ok {
			values = append(values, r.Value)
		}
	}
	tc.Floats = values
	if len(values) == 0 {
		return nil, nil
	}
	qs := quantile.ExactMany(values, o.cfg.Quantiles)
	outs := tc.Outputs[:0]
	for i, v := range qs {
		if math.IsNaN(v) {
			continue
		}
		outs = append(outs, core.Output{Topic: u.Outputs[i], Reading: sensor.At(v, now)})
	}
	tc.Outputs = outs
	return outs, nil
}

func init() {
	core.RegisterPlugin("persyst", func(raw json.RawMessage, qe *core.QueryEngine, env core.Env) ([]core.Operator, error) {
		var cfg Config
		if err := json.Unmarshal(raw, &cfg); err != nil {
			return nil, err
		}
		op, err := New(cfg, qe, env)
		if err != nil {
			return nil, err
		}
		return []core.Operator{op}, nil
	})
}
