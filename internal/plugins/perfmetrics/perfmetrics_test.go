package perfmetrics

import (
	"math"
	"testing"
	"time"

	"github.com/dcdb/wintermute/internal/cache"
	"github.com/dcdb/wintermute/internal/core"
	"github.com/dcdb/wintermute/internal/navigator"
	"github.com/dcdb/wintermute/internal/sensor"
	"github.com/dcdb/wintermute/internal/sim/hardware"
	"github.com/dcdb/wintermute/internal/sim/workload"
)

const sec = int64(time.Second)

// env builds one cpu with synthetic counters: cycles grow by 2e9/s,
// instructions by 1e9/s (CPI 2), flops by 5e8/s, vector-ops by 2.5e8/s,
// cache misses by 1e6/s.
func env(t testing.TB) *core.QueryEngine {
	t.Helper()
	nav := navigator.New()
	caches := cache.NewSet()
	rates := map[string]float64{
		CounterCycles:       2e9,
		CounterInstructions: 1e9,
		CounterFlops:        5e8,
		CounterVectorOps:    2.5e8,
		CounterCacheMisses:  1e6,
	}
	for name, rate := range rates {
		topic := sensor.Topic("/n1/cpu00/").Join(name)
		if err := nav.AddSensor(topic); err != nil {
			t.Fatal(err)
		}
		c := caches.GetOrCreate(topic, 16, time.Second)
		for k := 0; k < 10; k++ {
			c.Store(sensor.Reading{Value: rate * float64(k), Time: int64(k) * sec})
		}
	}
	return core.NewQueryEngine(nav, caches, nil)
}

func mk(t testing.TB, qe *core.QueryEngine, outputs []string) *Operator {
	t.Helper()
	cfg := Config{
		OperatorConfig: core.OperatorConfig{
			Name: "pm",
			Inputs: []string{
				CounterCycles, CounterInstructions, CounterFlops,
				CounterVectorOps, CounterCacheMisses,
			},
			Outputs: outputs,
			Unit:    "/n1/cpu00/",
		},
		WindowMs: 3000,
	}
	o, err := New(cfg, qe)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestAllMetrics(t *testing.T) {
	qe := env(t)
	o := mk(t, qe, []string{MetricCPI, MetricFlopsRate, MetricVectorRatio, MetricMissRate})
	outs, err := o.Compute(qe, o.Units()[0], time.Unix(9, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 4 {
		t.Fatalf("outs = %+v", outs)
	}
	got := map[string]float64{}
	for _, out := range outs {
		got[out.Topic.Name()] = out.Reading.Value
	}
	if math.Abs(got[MetricCPI]-2) > 1e-9 {
		t.Errorf("cpi = %v, want 2", got[MetricCPI])
	}
	if math.Abs(got[MetricFlopsRate]-5e8) > 1 {
		t.Errorf("flops-rate = %v, want 5e8", got[MetricFlopsRate])
	}
	if math.Abs(got[MetricVectorRatio]-0.5) > 1e-9 {
		t.Errorf("vector-ratio = %v, want 0.5", got[MetricVectorRatio])
	}
	if math.Abs(got[MetricMissRate]-1e-3) > 1e-12 {
		t.Errorf("miss-rate = %v, want 1e-3", got[MetricMissRate])
	}
}

func TestWarmupProducesNoOutput(t *testing.T) {
	nav := navigator.New()
	caches := cache.NewSet()
	for _, name := range []string{CounterCycles, CounterInstructions} {
		topic := sensor.Topic("/n1/cpu00/").Join(name)
		if err := nav.AddSensor(topic); err != nil {
			t.Fatal(err)
		}
		c := caches.GetOrCreate(topic, 8, time.Second)
		c.Store(sensor.Reading{Value: 1, Time: 0}) // single reading only
	}
	qe := core.NewQueryEngine(nav, caches, nil)
	cfg := Config{
		OperatorConfig: core.OperatorConfig{
			Name:   "pm",
			Inputs: []string{CounterCycles, CounterInstructions},
			Outputs: []string{
				MetricCPI,
			},
			Unit: "/n1/cpu00/",
		},
	}
	o, err := New(cfg, qe)
	if err != nil {
		t.Fatal(err)
	}
	outs, err := o.Compute(qe, o.Units()[0], time.Unix(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 0 {
		t.Fatalf("warm-up outs = %+v", outs)
	}
}

func TestUnknownMetricRejected(t *testing.T) {
	qe := env(t)
	cfg := Config{
		OperatorConfig: core.OperatorConfig{
			Name:    "pm",
			Inputs:  []string{CounterCycles, CounterInstructions},
			Outputs: []string{"bogus-metric"},
			Unit:    "/n1/cpu00/",
		},
	}
	if _, err := New(cfg, qe); err == nil {
		t.Error("unknown metric should fail at construction")
	}
}

// TestEndToEndWithHardwareModel drives the real pipeline: hardware model
// -> counter sensors -> perfmetrics CPI, and checks the LAMMPS band.
func TestEndToEndWithHardwareModel(t *testing.T) {
	nav := navigator.New()
	caches := cache.NewSet()
	node := hardware.NewNode(hardware.Config{Cores: 2, Seed: 1})
	node.SetApp(workload.MustNew("lammps", 1, 3600), 0)
	for _, name := range []string{CounterCycles, CounterInstructions} {
		if err := nav.AddSensor(sensor.Topic("/n1/cpu00/").Join(name)); err != nil {
			t.Fatal(err)
		}
	}
	sink := core.NewCacheSink(caches, nav, 32, time.Second)
	qe := core.NewQueryEngine(nav, caches, nil)
	for i := int64(0); i < 10; i++ {
		ns := i * sec
		node.Advance(ns)
		cy, in, _, _, _ := node.CoreCounters(0)
		sink.Push("/n1/cpu00/cpu-cycles", sensor.Reading{Value: cy, Time: ns})
		sink.Push("/n1/cpu00/instructions", sensor.Reading{Value: in, Time: ns})
	}
	cfg := Config{
		OperatorConfig: core.OperatorConfig{
			Name:    "pm",
			Inputs:  []string{CounterCycles, CounterInstructions},
			Outputs: []string{MetricCPI},
			Unit:    "/n1/cpu00/",
		},
		WindowMs: 2000,
	}
	o, err := New(cfg, qe)
	if err != nil {
		t.Fatal(err)
	}
	outs, err := o.Compute(qe, o.Units()[0], time.Unix(9, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 {
		t.Fatalf("outs = %+v", outs)
	}
	cpi := outs[0].Reading.Value
	if cpi < 1.2 || cpi > 2.2 {
		t.Errorf("pipeline CPI = %v, want ~1.6", cpi)
	}
}
