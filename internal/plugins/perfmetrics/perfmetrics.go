// Package perfmetrics implements the first stage of the paper's case
// study 2 (§VI-C): an operator plugin that converts raw per-core
// performance counters into derived metrics "such as cycles per
// instruction (CPI), floating point operations per second (FLOPS) or
// vectorization ratio, which are useful to evaluate application
// performance". Instantiated in Pushers, typically with one unit per CPU
// core, its outputs feed the persyst plugin in the Collect Agent — the
// pipeline of paper §IV-d.
package perfmetrics

import (
	"encoding/json"
	"fmt"
	"time"

	"github.com/dcdb/wintermute/internal/core"
	"github.com/dcdb/wintermute/internal/core/units"
	"github.com/dcdb/wintermute/internal/sensor"
)

// Counter names expected among the unit inputs (matched by sensor name).
const (
	CounterCycles       = "cpu-cycles"
	CounterInstructions = "instructions"
	CounterFlops        = "flops"
	CounterVectorOps    = "vector-ops"
	CounterCacheMisses  = "cache-misses"
)

// Metric names produced on outputs (matched by output sensor name).
const (
	MetricCPI         = "cpi"
	MetricFlopsRate   = "flops-rate"
	MetricVectorRatio = "vector-ratio"
	MetricMissRate    = "miss-rate" // cache misses per instruction
)

// Config parameterises a perfmetrics operator. The metrics computed are
// chosen by the *names* of the output pattern expressions: an output
// named "cpi" produces CPI, "flops-rate" produces FLOPS, and so on.
type Config struct {
	core.OperatorConfig
	// WindowMs is the differentiation window in milliseconds (default:
	// two computation intervals, guaranteeing two samples).
	WindowMs int `json:"windowMs"`
}

// Operator derives performance metrics from counter deltas.
type Operator struct {
	*core.Base
	window time.Duration
}

// New builds a perfmetrics operator from a parsed config.
func New(cfg Config, qe *core.QueryEngine) (*Operator, error) {
	base, err := cfg.OperatorConfig.Build("perfmetrics", qe.Navigator())
	if err != nil {
		return nil, err
	}
	window := time.Duration(cfg.WindowMs) * time.Millisecond
	if window <= 0 {
		window = 2 * cfg.OperatorConfig.IntervalDuration()
	}
	// Validate that every requested output metric is computable.
	for _, u := range base.Units() {
		for _, out := range u.Outputs {
			if _, err := requiredCounters(out.Name()); err != nil {
				return nil, err
			}
		}
		break // all units share the template; checking one suffices
	}
	return &Operator{Base: base, window: window}, nil
}

// requiredCounters maps a metric name to the counters it differentiates.
func requiredCounters(metric string) ([2]string, error) {
	switch metric {
	case MetricCPI:
		return [2]string{CounterCycles, CounterInstructions}, nil
	case MetricFlopsRate:
		return [2]string{CounterFlops, ""}, nil
	case MetricVectorRatio:
		return [2]string{CounterVectorOps, CounterFlops}, nil
	case MetricMissRate:
		return [2]string{CounterCacheMisses, CounterInstructions}, nil
	}
	return [2]string{}, fmt.Errorf("perfmetrics: unknown metric %q", metric)
}

// delta returns the (first, last) readings of the input sensor with the
// given short name over the differentiation window, querying through the
// unit's bound handles.
func (o *Operator) delta(bu *core.BoundUnit, name string, buf []sensor.Reading) (first, last sensor.Reading, ok bool, out []sensor.Reading) {
	in, found := bu.InputNamed(name)
	if !found {
		return sensor.Reading{}, sensor.Reading{}, false, buf
	}
	buf = in.QueryRelative(o.window, buf[:0])
	if len(buf) < 2 {
		return sensor.Reading{}, sensor.Reading{}, false, buf
	}
	return buf[0], buf[len(buf)-1], true, buf
}

// Compute implements core.Operator: each output sensor receives its
// derived metric computed from counter deltas over the window.
func (o *Operator) Compute(qe *core.QueryEngine, u *units.Unit, now time.Time) ([]core.Output, error) {
	return o.ComputeInto(qe, u, now, core.NewTickContext())
}

// ComputeInto implements core.ContextOperator.
func (o *Operator) ComputeInto(qe *core.QueryEngine, u *units.Unit, now time.Time, tc *core.TickContext) ([]core.Output, error) {
	bu := qe.BindUnit(u)
	outs := tc.Outputs[:0]
	buf := tc.Readings
	defer func() {
		tc.Outputs = outs
		tc.Readings = buf
	}()
	for _, out := range u.Outputs {
		metric := out.Name()
		counters, err := requiredCounters(metric)
		if err != nil {
			return outs, err
		}
		var num, den float64
		var ok bool
		var f, l sensor.Reading
		f, l, ok, buf = o.delta(bu, counters[0], buf)
		if !ok {
			continue // not enough data yet; normal during warm-up
		}
		num = sensor.Delta(f, l)
		switch metric {
		case MetricFlopsRate:
			den = float64(l.Time-f.Time) / 1e9 // per second
		default:
			f2, l2, ok2, b := o.delta(bu, counters[1], buf)
			buf = b
			if !ok2 {
				continue
			}
			den = sensor.Delta(f2, l2)
		}
		if den <= 0 {
			continue
		}
		outs = append(outs, core.Output{Topic: out, Reading: sensor.At(num/den, now)})
	}
	return outs, nil
}

func init() {
	core.RegisterPlugin("perfmetrics", func(raw json.RawMessage, qe *core.QueryEngine, env core.Env) ([]core.Operator, error) {
		var cfg Config
		if err := json.Unmarshal(raw, &cfg); err != nil {
			return nil, err
		}
		op, err := New(cfg, qe)
		if err != nil {
			return nil, err
		}
		return []core.Operator{op}, nil
	})
}
