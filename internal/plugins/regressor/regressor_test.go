package regressor

import (
	"math"
	"testing"
	"time"

	"github.com/dcdb/wintermute/internal/cache"
	"github.com/dcdb/wintermute/internal/core"
	"github.com/dcdb/wintermute/internal/navigator"
	"github.com/dcdb/wintermute/internal/sensor"
)

const interval = 250 * time.Millisecond

// signal is a predictable power-like trace: a slow sine plus a square wave.
func signal(step int) float64 {
	t := float64(step) * 0.25
	v := 150 + 40*math.Sin(2*math.Pi*t/60)
	if int(t/15)%2 == 0 {
		v += 20
	}
	return v
}

type rig struct {
	qe   *core.QueryEngine
	sink *core.CacheSink
	op   *Operator
}

func newRig(t testing.TB, trainSize int, outputs []string) *rig {
	t.Helper()
	nav := navigator.New()
	caches := cache.NewSet()
	if err := nav.AddSensor("/n1/power"); err != nil {
		t.Fatal(err)
	}
	caches.GetOrCreate("/n1/power", 720, interval)
	qe := core.NewQueryEngine(nav, caches, nil)
	sink := core.NewCacheSink(caches, nav, 720, interval)
	cfg := Config{
		OperatorConfig: core.OperatorConfig{
			Name:       "reg",
			Inputs:     []string{"power"},
			Outputs:    outputs,
			Unit:       "/n1/",
			IntervalMs: 250,
		},
		Target:          "power",
		TrainingSetSize: trainSize,
		Trees:           16,
		Seed:            7,
	}
	op, err := New(cfg, qe)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{qe: qe, sink: sink, op: op}
}

// step feeds one reading and runs one tick.
func (r *rig) step(t testing.TB, i int) {
	now := time.Unix(0, int64(i)*int64(interval))
	r.sink.Push("/n1/power", sensor.At(signal(i), now))
	if err := core.Tick(r.op, r.qe, r.sink, now); err != nil {
		t.Fatal(err)
	}
}

func TestTrainsAfterConfiguredSamples(t *testing.T) {
	r := newRig(t, 100, []string{"power-pred"})
	for i := 0; i < 50; i++ {
		r.step(t, i)
	}
	if r.op.Trained() {
		t.Fatal("trained too early")
	}
	have, want := r.op.TrainingProgress()
	if want != 100 || have < 45 {
		t.Fatalf("progress = %d/%d", have, want)
	}
	for i := 50; i < 110; i++ {
		r.step(t, i)
	}
	if !r.op.Trained() {
		t.Fatal("should be trained after 100+ samples")
	}
}

func TestOnlinePredictionAccuracy(t *testing.T) {
	r := newRig(t, 400, []string{"power-pred", "power-pred-err"})
	// Train over several signal periods, then evaluate online.
	for i := 0; i < 900; i++ {
		r.step(t, i)
	}
	if !r.op.Trained() {
		t.Fatal("not trained")
	}
	if got := r.op.AvgRelError(); got > 0.15 {
		t.Errorf("avg rel error = %v, want < 15%% on a predictable signal", got)
	}
	// Prediction sensor materialised through the pipeline.
	pred := r.qe.QueryRelative("/n1/power-pred", time.Hour, nil)
	if len(pred) == 0 {
		t.Fatal("no prediction readings")
	}
	errs := r.qe.QueryRelative("/n1/power-pred-err", time.Hour, nil)
	if len(errs) == 0 {
		t.Fatal("no error readings")
	}
	// Predictions stay inside the plausible power envelope.
	for _, p := range pred {
		if p.Value < 80 || p.Value > 250 {
			t.Fatalf("prediction %v outside envelope", p.Value)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	nav := navigator.New()
	if err := nav.AddSensor("/n1/power"); err != nil {
		t.Fatal(err)
	}
	qe := core.NewQueryEngine(nav, cache.NewSet(), nil)
	// Missing target.
	cfg := Config{
		OperatorConfig: core.OperatorConfig{
			Inputs: []string{"power"}, Outputs: []string{"p"}, Unit: "/n1/",
		},
	}
	if _, err := New(cfg, qe); err == nil {
		t.Error("missing target should fail")
	}
	// Target not among inputs.
	cfg.Target = "voltage"
	if _, err := New(cfg, qe); err == nil {
		t.Error("target not among inputs should fail")
	}
}

func TestDefaultTrainingSetSize(t *testing.T) {
	r := newRig(t, 0, []string{"p"})
	if _, want := r.op.TrainingProgress(); want != 30000 {
		t.Fatalf("default training set size = %d, want 30000 (paper)", want)
	}
}

func TestSequentialForced(t *testing.T) {
	nav := navigator.New()
	if err := nav.AddSensor("/n1/power"); err != nil {
		t.Fatal(err)
	}
	caches := cache.NewSet()
	caches.GetOrCreate("/n1/power", 8, interval)
	qe := core.NewQueryEngine(nav, caches, nil)
	cfg := Config{
		OperatorConfig: core.OperatorConfig{
			Inputs: []string{"power"}, Outputs: []string{"p"}, Unit: "/n1/",
			Parallel: true, // must be overridden: the model is shared
		},
		Target: "power",
	}
	op, err := New(cfg, qe)
	if err != nil {
		t.Fatal(err)
	}
	if op.Parallel() {
		t.Error("regressor must force sequential unit management")
	}
}

func TestNoDataIsQuiet(t *testing.T) {
	r := newRig(t, 10, []string{"p"})
	outs, err := r.op.Compute(r.qe, r.op.Units()[0], time.Unix(0, 0))
	if err != nil || len(outs) != 0 {
		t.Fatalf("empty compute = %+v, %v", outs, err)
	}
}
