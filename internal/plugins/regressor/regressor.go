// Package regressor implements the random-forest regression operator
// plugin of the paper's case study 1 (§VI-B): online prediction of a
// sensor's next-interval value from statistical features of recent
// readings.
//
// At each computation interval, "for each input sensor of a certain unit a
// series of statistical features (e.g., mean or standard deviation) are
// computed from its recent readings. These features are then combined to
// form a feature vector, which is fed into the random forest model to
// perform regression and output a sensor prediction" of the next interval.
// Training is automatic: feature vectors accumulate in memory together
// with the responses of the target sensor until the configured training
// set size is reached, then the shared model is fitted once and used for
// all of the operator's units. The production plugin wraps OpenCV's random
// forest; this one uses internal/ml/forest.
package regressor

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"github.com/dcdb/wintermute/internal/core"
	"github.com/dcdb/wintermute/internal/core/units"
	"github.com/dcdb/wintermute/internal/ml/features"
	"github.com/dcdb/wintermute/internal/ml/forest"
	"github.com/dcdb/wintermute/internal/ml/stats"
	"github.com/dcdb/wintermute/internal/sensor"
)

// Config parameterises a regressor operator.
type Config struct {
	core.OperatorConfig
	// Target is the short name of the input sensor to predict (e.g.
	// "power"); it must appear among the unit inputs.
	Target string `json:"target"`
	// TrainingSetSize is the number of (features, response) pairs
	// accumulated before the model is trained (paper: 30k).
	TrainingSetSize int `json:"trainingSetSize"`
	// WindowMs is the feature-extraction window in milliseconds
	// (default: 4 computation intervals).
	WindowMs int `json:"windowMs"`
	// Trees and MaxDepth configure the forest (defaults 32 and 12).
	Trees    int   `json:"trees"`
	MaxDepth int   `json:"maxDepth"`
	Seed     int64 `json:"seed"`
	// ErrorSensor optionally names an absolute topic receiving the
	// operator-level average relative error over all units each interval —
	// the operator-level output facility of paper §V-C2 ("store the
	// average error of a model applied to a set of units").
	ErrorSensor string `json:"errorSensor"`
}

// unitState is the per-unit prediction bookkeeping.
type unitState struct {
	lastFeatures []float64
	lastPred     float64
	hasPred      bool
}

// Operator performs online random-forest regression. The model is shared
// by all units (paper §VI-B); unit computation is therefore sequential.
type Operator struct {
	*core.Base
	cfg    Config
	window time.Duration

	mu      sync.Mutex
	model   *forest.Forest
	trained bool
	trainX  [][]float64
	trainY  []float64
	state   map[sensor.Topic]*unitState
	errs    stats.Welford // relative error of realised predictions
}

// New builds a regressor operator from a parsed config.
func New(cfg Config, qe *core.QueryEngine) (*Operator, error) {
	if cfg.Target == "" {
		return nil, fmt.Errorf("regressor: missing target sensor name")
	}
	if cfg.TrainingSetSize <= 0 {
		cfg.TrainingSetSize = 30000
	}
	// The model is shared across units: force sequential unit management
	// to avoid racing on the training set (paper §IV-c).
	cfg.OperatorConfig.Parallel = false
	base, err := cfg.OperatorConfig.Build("regressor", qe.Navigator())
	if err != nil {
		return nil, err
	}
	for _, u := range base.Units() {
		if _, err := targetOf(u, cfg.Target); err != nil {
			return nil, err
		}
	}
	window := time.Duration(cfg.WindowMs) * time.Millisecond
	if window <= 0 {
		window = 4 * cfg.OperatorConfig.IntervalDuration()
	}
	return &Operator{
		Base:   base,
		cfg:    cfg,
		window: window,
		model: forest.New(forest.Params{
			Trees:    cfg.Trees,
			MaxDepth: cfg.MaxDepth,
			Seed:     cfg.Seed,
		}),
		state: make(map[sensor.Topic]*unitState),
	}, nil
}

func targetOf(u *units.Unit, name string) (sensor.Topic, error) {
	for _, in := range u.Inputs {
		if in.Name() == name {
			return in, nil
		}
	}
	return "", fmt.Errorf("regressor: unit %s has no input named %q", u.Name, name)
}

// Trained reports whether the shared model has been fitted.
func (o *Operator) Trained() bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.trained
}

// TrainingProgress returns accumulated and required training samples.
func (o *Operator) TrainingProgress() (have, want int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.trainY), o.cfg.TrainingSetSize
}

// AvgRelError returns the mean relative error over all realised
// predictions so far — the paper's headline metric (6.2 % at 250 ms).
func (o *Operator) AvgRelError() float64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.errs.Mean()
}

// Compute implements core.Operator. The unit's first output receives the
// prediction of the target's next-interval value; a second output, when
// configured, receives the relative error of the previous prediction as it
// is realised.
func (o *Operator) Compute(qe *core.QueryEngine, u *units.Unit, now time.Time) ([]core.Output, error) {
	return o.ComputeInto(qe, u, now, core.NewTickContext())
}

// ComputeInto implements core.ContextOperator. The reading buffer comes
// from the tick context; the feature vector is freshly allocated on
// purpose — it outlives the computation as training data or as the unit's
// lastFeatures state.
func (o *Operator) ComputeInto(qe *core.QueryEngine, u *units.Unit, now time.Time, tc *core.TickContext) ([]core.Output, error) {
	bu := qe.BindUnit(u)
	target, found := bu.InputNamed(o.cfg.Target)
	if !found {
		return nil, fmt.Errorf("regressor: unit %s has no input named %q", u.Name, o.cfg.Target)
	}
	cur, ok := target.Latest()
	if !ok {
		return nil, nil // no data yet
	}
	// Feature vector: window statistics of every input sensor.
	feat := make([]float64, 0, features.VectorSize(len(u.Inputs)))
	buf := tc.Readings
	for i := range u.Inputs {
		buf = bu.Inputs[i].QueryRelative(o.window, buf[:0])
		feat = features.Extract(buf, feat)
	}
	tc.Readings = buf

	o.mu.Lock()
	defer o.mu.Unlock()
	st := o.state[u.Name]
	if st == nil {
		st = &unitState{}
		o.state[u.Name] = st
	}
	outs := tc.Outputs[:0]
	defer func() { tc.Outputs = outs }()
	// The previous tick's features predicted the current value: realise
	// the training pair and the prediction error.
	if st.lastFeatures != nil {
		if !o.trained {
			o.trainX = append(o.trainX, st.lastFeatures)
			o.trainY = append(o.trainY, cur.Value)
			if len(o.trainY) >= o.cfg.TrainingSetSize {
				if err := o.model.Fit(o.trainX, o.trainY); err != nil {
					return nil, fmt.Errorf("regressor: training: %w", err)
				}
				o.trained = true
				o.trainX, o.trainY = nil, nil // release training memory
			}
		}
		if st.hasPred {
			rel := stats.RelativeError(st.lastPred, cur.Value)
			o.errs.Add(rel)
			if len(u.Outputs) >= 2 {
				outs = append(outs, core.Output{Topic: u.Outputs[1], Reading: sensor.At(rel, now)})
			}
		}
	}
	st.lastFeatures = feat
	st.hasPred = false
	if o.trained && len(u.Outputs) >= 1 {
		pred := o.model.Predict(feat)
		if pred == pred { // not NaN
			st.lastPred = pred
			st.hasPred = true
			outs = append(outs, core.Output{Topic: u.Outputs[0], Reading: sensor.At(pred, now)})
		}
	}
	// Operator-level output: published once per tick, alongside the
	// first unit, so it appears exactly once per interval.
	if o.cfg.ErrorSensor != "" && o.errs.N() > 0 && len(o.Units()) > 0 && u.Name == o.Units()[0].Name {
		outs = append(outs, core.Output{
			Topic:   sensor.Clean(o.cfg.ErrorSensor),
			Reading: sensor.At(o.errs.Mean(), now),
		})
	}
	return outs, nil
}

func init() {
	core.RegisterPlugin("regressor", func(raw json.RawMessage, qe *core.QueryEngine, env core.Env) ([]core.Operator, error) {
		var cfg Config
		if err := json.Unmarshal(raw, &cfg); err != nil {
			return nil, err
		}
		op, err := New(cfg, qe)
		if err != nil {
			return nil, err
		}
		return []core.Operator{op}, nil
	})
}
