package pusher

import (
	"testing"
	"time"

	"github.com/dcdb/wintermute/internal/collect"
	"github.com/dcdb/wintermute/internal/samplers"
	"github.com/dcdb/wintermute/internal/sim/hardware"
	"github.com/dcdb/wintermute/internal/sim/workload"
)

func TestStandalonePusherSampling(t *testing.T) {
	p, err := New(Config{Name: "test"})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AddSampler(samplers.NewTester("t", "/node/", 5, time.Second)); err != nil {
		t.Fatal(err)
	}
	if p.Nav.NumSensors() != 5 {
		t.Fatalf("sensors registered = %d", p.Nav.NumSensors())
	}
	for i := 0; i < 3; i++ {
		p.SampleOnce(time.Unix(int64(i), 0))
	}
	if p.Samples() != 15 {
		t.Fatalf("Samples = %d, want 15", p.Samples())
	}
	c, ok := p.Caches.Get("/node/test0")
	if !ok {
		t.Fatal("cache missing")
	}
	r, _ := c.Latest()
	if r.Value != 3 {
		t.Fatalf("latest = %v, want 3", r.Value)
	}
	// Query engine sees the data.
	if got := p.QE.QueryRelative("/node/test0", time.Hour, nil); len(got) != 3 {
		t.Fatalf("query = %d readings", len(got))
	}
}

func TestCacheRetentionSizing(t *testing.T) {
	p, err := New(Config{CacheRetention: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	node := hardware.NewNode(hardware.Config{Cores: 2, Seed: 1})
	if err := p.AddSampler(samplers.NewPowerSim(node, "/n1/", 2*time.Second)); err != nil {
		t.Fatal(err)
	}
	c, ok := p.Caches.Get("/n1/power")
	if !ok {
		t.Fatal("power cache missing")
	}
	if c.Capacity() != 5 {
		t.Fatalf("capacity = %d, want 10s/2s = 5", c.Capacity())
	}
}

func TestPusherToCollectAgentFlow(t *testing.T) {
	agent, err := collect.New(collect.Config{ListenMQTT: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()

	p, err := New(Config{MQTTAddr: agent.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()
	node := hardware.NewNode(hardware.Config{Cores: 2, Seed: 2})
	node.SetApp(workload.MustNew("hpl", 1, 3600), 0)
	if err := p.AddSampler(samplers.NewPowerSim(node, "/r1/n1/", time.Second)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		p.SampleOnce(time.Unix(int64(i), 0))
	}
	// Await asynchronous delivery into the agent's store.
	deadline := time.Now().Add(2 * time.Second)
	for agent.Store.Count("/r1/n1/power") < 5 {
		if time.Now().After(deadline) {
			t.Fatalf("store has %d readings, want 5", agent.Store.Count("/r1/n1/power"))
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The agent's sensor tree learned the topics.
	if !agent.Nav.HasSensor("/r1/n1/temp") {
		t.Error("agent navigator missing forwarded sensor")
	}
	// Cache-first query works on the agent side too.
	if _, ok := agent.QE.Latest("/r1/n1/power"); !ok {
		t.Error("agent query engine has no data")
	}
}

func TestStartStopLoops(t *testing.T) {
	p, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AddSampler(samplers.NewTester("t", "/n/", 3, 5*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	p.Start()
	p.Start() // idempotent
	time.Sleep(40 * time.Millisecond)
	p.Stop()
	p.Stop() // idempotent
	if p.Samples() == 0 {
		t.Error("sampling loop produced no samples")
	}
	n := p.Samples()
	time.Sleep(20 * time.Millisecond)
	if p.Samples() != n {
		t.Error("sampling continued after Stop")
	}
}

func TestBadBrokerAddress(t *testing.T) {
	if _, err := New(Config{MQTTAddr: "127.0.0.1:1"}); err == nil {
		t.Error("connecting to a dead broker should fail")
	}
}
