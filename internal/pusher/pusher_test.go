package pusher

import (
	"testing"
	"time"

	"github.com/dcdb/wintermute/internal/collect"
	"github.com/dcdb/wintermute/internal/samplers"
	"github.com/dcdb/wintermute/internal/sim/hardware"
	"github.com/dcdb/wintermute/internal/sim/workload"
	"github.com/dcdb/wintermute/internal/telemetry"
)

func TestStandalonePusherSampling(t *testing.T) {
	p, err := New(Config{Name: "test"})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AddSampler(samplers.NewTester("t", "/node/", 5, time.Second)); err != nil {
		t.Fatal(err)
	}
	if p.Nav.NumSensors() != 5 {
		t.Fatalf("sensors registered = %d", p.Nav.NumSensors())
	}
	for i := 0; i < 3; i++ {
		p.SampleOnce(time.Unix(int64(i), 0))
	}
	if p.Samples() != 15 {
		t.Fatalf("Samples = %d, want 15", p.Samples())
	}
	c, ok := p.Caches.Get("/node/test0")
	if !ok {
		t.Fatal("cache missing")
	}
	r, _ := c.Latest()
	if r.Value != 3 {
		t.Fatalf("latest = %v, want 3", r.Value)
	}
	// Query engine sees the data.
	if got := p.QE.QueryRelative("/node/test0", time.Hour, nil); len(got) != 3 {
		t.Fatalf("query = %d readings", len(got))
	}
}

func TestCacheRetentionSizing(t *testing.T) {
	p, err := New(Config{CacheRetention: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	node := hardware.NewNode(hardware.Config{Cores: 2, Seed: 1})
	if err := p.AddSampler(samplers.NewPowerSim(node, "/n1/", 2*time.Second)); err != nil {
		t.Fatal(err)
	}
	c, ok := p.Caches.Get("/n1/power")
	if !ok {
		t.Fatal("power cache missing")
	}
	if c.Capacity() != 5 {
		t.Fatalf("capacity = %d, want 10s/2s = 5", c.Capacity())
	}
}

func TestPusherToCollectAgentFlow(t *testing.T) {
	agent, err := collect.New(collect.Config{ListenMQTT: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()

	p, err := New(Config{MQTTAddr: agent.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()
	node := hardware.NewNode(hardware.Config{Cores: 2, Seed: 2})
	node.SetApp(workload.MustNew("hpl", 1, 3600), 0)
	if err := p.AddSampler(samplers.NewPowerSim(node, "/r1/n1/", time.Second)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		p.SampleOnce(time.Unix(int64(i), 0))
	}
	// Await asynchronous delivery into the agent's store.
	deadline := time.Now().Add(2 * time.Second)
	for agent.Store.Count("/r1/n1/power") < 5 {
		if time.Now().After(deadline) {
			t.Fatalf("store has %d readings, want 5", agent.Store.Count("/r1/n1/power"))
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The agent's sensor tree learned the topics.
	if !agent.Nav.HasSensor("/r1/n1/temp") {
		t.Error("agent navigator missing forwarded sensor")
	}
	// Cache-first query works on the agent side too.
	if _, ok := agent.QE.Latest("/r1/n1/power"); !ok {
		t.Error("agent query engine has no data")
	}
}

func TestStartStopLoops(t *testing.T) {
	p, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AddSampler(samplers.NewTester("t", "/n/", 3, 5*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	p.Start()
	p.Start() // idempotent
	time.Sleep(40 * time.Millisecond)
	p.Stop()
	p.Stop() // idempotent
	if p.Samples() == 0 {
		t.Error("sampling loop produced no samples")
	}
	n := p.Samples()
	time.Sleep(20 * time.Millisecond)
	if p.Samples() != n {
		t.Error("sampling continued after Stop")
	}
}

func TestBadBrokerAddress(t *testing.T) {
	if _, err := New(Config{MQTTAddr: "127.0.0.1:1"}); err == nil {
		t.Error("connecting to a dead broker should fail")
	}
}

// TestSpoolingPusherDelivers runs the daemon with the at-least-once
// spool on: forwarded readings reach the agent's store and the client's
// delivery counters surface through both ClientStats and telemetry.
func TestSpoolingPusherDelivers(t *testing.T) {
	agent, err := collect.New(collect.Config{ListenMQTT: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()

	reg := telemetry.NewRegistry()
	p, err := New(Config{
		MQTTAddr: agent.Addr(),
		Spool:    64,
		SpoolDir: t.TempDir(),
		Metrics:  reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	node := hardware.NewNode(hardware.Config{Cores: 2, Seed: 2})
	node.SetApp(workload.MustNew("hpl", 1, 3600), 0)
	if err := p.AddSampler(samplers.NewPowerSim(node, "/r1/n1/", time.Second)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		p.SampleOnce(time.Unix(int64(i), 0))
	}
	// Await the asynchronous acked delivery, visible through telemetry
	// (the func-metric handles are live until Stop).
	deadline := time.Now().Add(2 * time.Second)
	for {
		if v, _ := reg.Value("dcdb_pusher_acked_batches_total"); v >= 5 {
			break
		}
		if time.Now().After(deadline) {
			v, _ := reg.Value("dcdb_pusher_acked_batches_total")
			t.Fatalf("acked-batches telemetry reached %v, want >= 5", v)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Stop drains the spool, so everything sampled is already stored.
	p.Stop()
	if got := agent.Store.Count("/r1/n1/power"); got != 5 {
		t.Fatalf("store has %d readings after drain, want 5", got)
	}
	st, ok := p.ClientStats()
	if !ok {
		t.Fatal("ClientStats not ok with MQTT configured")
	}
	if st.Acked == 0 || st.Acked != st.Published {
		t.Fatalf("drained client stats %+v, want Acked == Published > 0", st)
	}
}
