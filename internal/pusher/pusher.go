// Package pusher implements the DCDB Pusher: the per-node daemon that
// samples sensors through monitoring plugins, keeps recent readings in
// in-memory caches, forwards data to a Collect Agent over the MQTT-style
// transport, and embeds the Wintermute framework for in-band operational
// data analytics (paper §IV-A).
//
// Operators instantiated in a Pusher see only locally-sampled sensors and
// their caches — the location "optimal for runtime models requiring data
// liveness, low latency and horizontal scalability".
package pusher

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dcdb/wintermute/internal/cache"
	"github.com/dcdb/wintermute/internal/core"
	"github.com/dcdb/wintermute/internal/navigator"
	"github.com/dcdb/wintermute/internal/samplers"
	"github.com/dcdb/wintermute/internal/sensor"
	"github.com/dcdb/wintermute/internal/telemetry"
	"github.com/dcdb/wintermute/internal/transport"
)

// Config parameterises a Pusher.
type Config struct {
	// Name identifies the pusher (usually the hostname).
	Name string
	// CacheRetention sizes sensor caches by time span (default 180 s, the
	// evaluation configuration of the paper).
	CacheRetention time.Duration
	// MQTTAddr is the Collect Agent broker address; empty disables
	// forwarding (standalone operation).
	MQTTAddr string
	// Spool > 0 forwards with at-least-once delivery: up to Spool
	// batches are held in an in-memory spool, streamed to the broker as
	// acknowledged PUBLISH frames, and redelivered after reconnects.
	// 0 keeps the historical fire-and-forget client (at-most-once).
	Spool int
	// SpoolDir, with Spool, adds on-disk overflow: batches beyond the
	// in-memory high-water mark spill to a file there, and Stop
	// persists whatever the broker never acknowledged so the next run
	// (same SpoolDir) replays it.
	SpoolDir string
	// AckTimeout bounds broker-acknowledgement waits in spooling mode
	// (0: the transport default, 5s).
	AckTimeout time.Duration
	// RetryMin and RetryMax bound the spooling client's reconnect
	// backoff (0: transport defaults, 50ms and 2s).
	RetryMin time.Duration
	// RetryMax is the reconnect backoff ceiling (see RetryMin).
	RetryMax time.Duration
	// DrainTimeout bounds how long Stop waits for the spool to drain
	// (0: the transport default, 5s).
	DrainTimeout time.Duration
	// Threads sizes the Wintermute worker pool executing operator
	// computations (0: runtime.GOMAXPROCS).
	Threads int
	// Env is handed to Wintermute plugin configurators.
	Env core.Env
	// Metrics receives the pusher's delivery telemetry (spool depth,
	// reconnects, redeliveries); nil disables registration.
	Metrics *telemetry.Registry
}

// Pusher hosts sampler plugins and a Wintermute manager.
type Pusher struct {
	cfg Config

	Nav     *navigator.Navigator
	Caches  *cache.Set
	QE      *core.QueryEngine
	Manager *core.Manager

	sink      *core.CacheSink
	mqtt      *transport.Client
	statFuncs []*telemetry.FuncHandle

	mu       sync.Mutex
	samplers []samplers.Sampler
	stops    []chan struct{}
	running  bool
	wg       sync.WaitGroup

	samples atomic.Uint64
}

// mqttSink forwards readings to the broker: one message per reading on
// the single-push path, one message per topic series on the batched path
// (core.SeriesSink), which is how a unit's outputs and a sampler's batch
// reach the Collect Agent without per-reading transport overhead.
type mqttSink struct{ c *transport.Client }

// singleScratch recycles the one-element slices of the single-push path.
var singleScratch = sync.Pool{New: func() any {
	s := make([]sensor.Reading, 1)
	return &s
}}

func (s mqttSink) Push(topic sensor.Topic, r sensor.Reading) {
	// Forwarding is best-effort: local caching and analytics continue
	// even when the Collect Agent is unreachable.
	bufp := singleScratch.Get().(*[]sensor.Reading)
	(*bufp)[0] = r
	_ = s.c.Publish(topic, *bufp)
	singleScratch.Put(bufp)
}

// PushSeries implements core.SeriesSink: the whole series travels in one
// broker message.
func (s mqttSink) PushSeries(topic sensor.Topic, rs []sensor.Reading) {
	_ = s.c.Publish(topic, rs)
}

// New creates a Pusher, connecting to the MQTT broker when configured.
func New(cfg Config) (*Pusher, error) {
	if cfg.CacheRetention <= 0 {
		cfg.CacheRetention = 180 * time.Second
	}
	nav := navigator.New()
	caches := cache.NewSet()
	qe := core.NewQueryEngine(nav, caches, nil)
	sink := core.NewCacheSink(caches, nav, int(cfg.CacheRetention/time.Second), time.Second)
	p := &Pusher{
		cfg:    cfg,
		Nav:    nav,
		Caches: caches,
		QE:     qe,
		sink:   sink,
	}
	if cfg.MQTTAddr != "" {
		client, err := dialBroker(cfg)
		if err != nil {
			return nil, fmt.Errorf("pusher: connecting to broker: %w", err)
		}
		p.mqtt = client
		sink.Forward = mqttSink{client}
		p.registerClientMetrics(cfg.Metrics)
	}
	p.Manager = core.NewManager(qe, sink, cfg.Env)
	if cfg.Threads > 0 {
		p.Manager.SetThreads(cfg.Threads)
	}
	return p, nil
}

// dialBroker connects to the Collect Agent, in at-least-once spooling
// mode when Config.Spool asks for it.
func dialBroker(cfg Config) (*transport.Client, error) {
	if cfg.Spool <= 0 {
		return transport.Dial(cfg.MQTTAddr)
	}
	return transport.DialOptions(cfg.MQTTAddr, transport.Options{
		SpoolBatches: cfg.Spool,
		SpoolDir:     cfg.SpoolDir,
		AckTimeout:   cfg.AckTimeout,
		RetryMin:     cfg.RetryMin,
		RetryMax:     cfg.RetryMax,
		DrainTimeout: cfg.DrainTimeout,
	})
}

// registerClientMetrics exposes the broker client's delivery state; reg
// may be nil (no-op handles). Stop closes the handles before the client.
func (p *Pusher) registerClientMetrics(reg *telemetry.Registry) {
	c := p.mqtt
	p.statFuncs = []*telemetry.FuncHandle{
		reg.GaugeFunc("dcdb_pusher_spool_depth",
			"Batches in the in-memory spool (unsent plus unacknowledged).",
			func() float64 { return float64(c.Stats().SpoolDepth) }),
		reg.GaugeFunc("dcdb_pusher_spool_disk_batches",
			"Overflow batches on disk not yet loaded into memory.",
			func() float64 { return float64(c.Stats().SpoolDisk) }),
		reg.CounterFunc("dcdb_pusher_acked_batches_total",
			"Batches the broker acknowledged.",
			func() float64 { return float64(c.Stats().Acked) }),
		reg.CounterFunc("dcdb_pusher_reconnects_total",
			"Successful broker redials after a lost connection.",
			func() float64 { return float64(c.Stats().Reconnects) }),
		reg.CounterFunc("dcdb_pusher_redeliveries_total",
			"Batches re-sent because a connection died with them unacknowledged.",
			func() float64 { return float64(c.Stats().Redeliveries) }),
	}
}

// Sink returns the pusher's reading sink (caches + MQTT forwarding).
func (p *Pusher) Sink() core.Sink { return p.sink }

// ClientStats reports the broker client's delivery counters; ok is
// false when the pusher runs standalone (no MQTTAddr).
func (p *Pusher) ClientStats() (st transport.ClientStats, ok bool) {
	if p.mqtt == nil {
		return transport.ClientStats{}, false
	}
	return p.mqtt.Stats(), true
}

// Samples returns the total number of readings sampled so far.
func (p *Pusher) Samples() uint64 { return p.samples.Load() }

// AddSampler registers a monitoring plugin: its sensors are added to the
// sensor tree and given caches sized for the configured retention.
func (p *Pusher) AddSampler(s samplers.Sampler) error {
	for _, info := range s.Sensors() {
		if err := p.Nav.AddSensor(info.Topic); err != nil {
			return fmt.Errorf("pusher: sampler %s: %w", s.Name(), err)
		}
		interval := info.Interval
		if interval <= 0 {
			interval = s.Interval()
		}
		capacity := int(p.cfg.CacheRetention / interval)
		if capacity < 1 {
			capacity = 1
		}
		p.Caches.GetOrCreate(info.Topic, capacity, interval)
	}
	p.mu.Lock()
	p.samplers = append(p.samplers, s)
	p.mu.Unlock()
	return nil
}

// SampleOnce synchronously runs one sampling round of every sampler at
// the given time, pushing readings into the sink. Experiment harnesses
// drive pushers with SampleOnce under simulated clocks.
func (p *Pusher) SampleOnce(now time.Time) {
	p.mu.Lock()
	ss := append([]samplers.Sampler(nil), p.samplers...)
	p.mu.Unlock()
	var buf []core.Output
	for _, s := range ss {
		buf = s.Sample(now, buf[:0])
		core.PushOutputs(p.sink, buf)
		p.samples.Add(uint64(len(buf)))
	}
}

// TickOnce synchronously runs one Wintermute computation round at the
// given time.
func (p *Pusher) TickOnce(now time.Time) error {
	return p.Manager.TickAll(now)
}

// Start launches one sampling loop per sampler plus the Wintermute
// operator loops.
func (p *Pusher) Start() {
	p.mu.Lock()
	if p.running {
		p.mu.Unlock()
		return
	}
	p.running = true
	for _, s := range p.samplers {
		stop := make(chan struct{})
		p.stops = append(p.stops, stop)
		p.wg.Add(1)
		go p.sampleLoop(s, stop)
	}
	p.mu.Unlock()
	p.Manager.Start()
}

func (p *Pusher) sampleLoop(s samplers.Sampler, stop chan struct{}) {
	defer p.wg.Done()
	ticker := time.NewTicker(s.Interval())
	defer ticker.Stop()
	var buf []core.Output
	for {
		select {
		case <-stop:
			return
		case now := <-ticker.C:
			buf = s.Sample(now, buf[:0])
			core.PushOutputs(p.sink, buf)
			p.samples.Add(uint64(len(buf)))
		}
	}
}

// Stop halts sampling loops and operators, then closes the broker
// connection.
func (p *Pusher) Stop() {
	p.mu.Lock()
	if !p.running {
		p.mu.Unlock()
		return
	}
	p.running = false
	for _, stop := range p.stops {
		close(stop)
	}
	p.stops = nil
	p.mu.Unlock()
	p.wg.Wait()
	// Stop is terminal for the pusher (the broker connection closes too),
	// so shut the Wintermute worker pool down with the operators.
	p.Manager.Close()
	for _, h := range p.statFuncs {
		h.Close()
	}
	if p.mqtt != nil {
		// In spooling mode Close drains (bounded by DrainTimeout) and
		// persists the remainder when SpoolDir is configured.
		_ = p.mqtt.Close()
	}
}
