package transport

import (
	"testing"
	"time"

	"github.com/dcdb/wintermute/internal/sensor"
	"github.com/dcdb/wintermute/internal/telemetry"
)

// TestBrokerMetrics drives a publish through the broker to a network
// subscriber and checks the dcdb_broker_* series: frames and bytes in,
// readings routed, deliveries forwarded, connection gauge.
func TestBrokerMetrics(t *testing.T) {
	reg := telemetry.NewRegistry()
	b, err := NewBroker("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	recv := make(chan Message, 1)
	sub, err := Dial(b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if err := sub.Subscribe("/a/#", func(m Message) { recv <- m }); err != nil {
		t.Fatal(err)
	}
	pub, err := Dial(b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	if err := pub.Publish("/a/x", []sensor.Reading{{Value: 1, Time: 1}, {Value: 2, Time: 2}}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-recv:
	case <-time.After(2 * time.Second):
		t.Fatal("delivery timeout")
	}

	if v, ok := reg.Value("dcdb_broker_connections"); !ok || v != 2 {
		t.Fatalf("connections = %v (ok=%v), want 2", v, ok)
	}
	if v, _ := reg.Value("dcdb_broker_readings_total"); v != 2 {
		t.Fatalf("readings routed = %v, want 2", v)
	}
	if v, _ := reg.Value("dcdb_broker_messages_routed_total"); v != 1 {
		t.Fatalf("messages routed = %v, want 1", v)
	}
	if v, _ := reg.Value("dcdb_broker_messages_forwarded_total"); v < 1 {
		t.Fatalf("forwarded = %v, want >= 1", v)
	}
	if v, _ := reg.Value("dcdb_broker_frames_total"); v < 1 {
		t.Fatalf("frames = %v, want >= 1", v)
	}
	if v, _ := reg.Value("dcdb_broker_bytes_received_total"); v <= 0 {
		t.Fatalf("bytes in = %v, want > 0", v)
	}
	if v, _ := reg.Value("dcdb_broker_bytes_forwarded_total"); v <= 0 {
		t.Fatalf("bytes out = %v, want > 0", v)
	}

	// Closing the broker unregisters its connection gauge.
	b.Close()
	if _, ok := reg.Value("dcdb_broker_connections"); ok {
		t.Fatal("connection gauge still registered after Close")
	}
}
