package transport

import (
	"bytes"
	"encoding/binary"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"github.com/dcdb/wintermute/internal/sensor"
)

func TestEncodeDecodePublish(t *testing.T) {
	m := Message{
		Topic: "/r1/n1/power",
		Readings: []sensor.Reading{
			{Value: 42.5, Time: 1000},
			{Value: -1.25, Time: 2000},
		},
	}
	got, err := DecodePublish(EncodePublish(m))
	if err != nil {
		t.Fatal(err)
	}
	if got.Topic != m.Topic || len(got.Readings) != 2 {
		t.Fatalf("round trip = %+v", got)
	}
	for i := range m.Readings {
		if got.Readings[i] != m.Readings[i] {
			t.Fatalf("reading %d = %+v", i, got.Readings[i])
		}
	}
}

func TestEncodeDecodePublishProperty(t *testing.T) {
	f := func(topic string, vals []float64, times []int64) bool {
		n := len(vals)
		if len(times) < n {
			n = len(times)
		}
		rs := make([]sensor.Reading, n)
		for i := 0; i < n; i++ {
			rs[i] = sensor.Reading{Value: vals[i], Time: times[i]}
		}
		m := Message{Topic: sensor.Topic(topic), Readings: rs}
		got, err := DecodePublish(EncodePublish(m))
		if err != nil || got.Topic != m.Topic || len(got.Readings) != n {
			return false
		}
		for i := range rs {
			// NaN != NaN; compare bit patterns via equality of encoded form.
			a, b := rs[i], got.Readings[i]
			if a.Time != b.Time {
				return false
			}
			if a.Value != b.Value && !(a.Value != a.Value && b.Value != b.Value) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDecodePublishErrors(t *testing.T) {
	// A forged count chosen so cnt*16 wraps uint64 to the actual payload
	// length: the multiply-based length check would pass and the decode
	// loop would run off the end of the buffer.
	overflow := []byte{1, 'a'}
	overflow = binary.AppendUvarint(overflow, 1<<60+1)
	overflow = append(overflow, make([]byte, 16)...)
	bad := [][]byte{
		{},             // empty
		{0xff},         // truncated uvarint
		{5, 'a'},       // topic shorter than declared
		{1, 'a', 2, 0}, // reading records truncated
		overflow,       // count * 16 wraps uint64
	}
	for i, payload := range bad {
		if _, err := DecodePublish(payload); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, framePublish, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := readFrame(&buf)
	if err != nil || typ != framePublish || string(payload) != "hello" {
		t.Fatalf("frame = %d %q %v", typ, payload, err)
	}
}

func TestFrameTooLarge(t *testing.T) {
	var buf bytes.Buffer
	big := make([]byte, maxFrameSize+1)
	if err := writeFrame(&buf, framePublish, big); err != ErrFrameTooLarge {
		t.Errorf("write err = %v", err)
	}
	// Forged oversized header.
	buf.Reset()
	buf.Write([]byte{framePublish, 0xff, 0xff, 0xff, 0xff})
	if _, _, err := readFrame(&buf); err != ErrFrameTooLarge {
		t.Errorf("read err = %v", err)
	}
}

func TestBrokerLocalDelivery(t *testing.T) {
	b, err := NewBroker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	var mu sync.Mutex
	var got []Message
	b.SubscribeLocal("/r1/#", func(m Message) {
		// The broker owns m.Readings only for the duration of the call
		// (see Handler); retaining the batch requires a copy.
		m.Readings = append([]sensor.Reading(nil), m.Readings...)
		mu.Lock()
		got = append(got, m)
		mu.Unlock()
	})

	c, err := Dial(b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Publish("/r1/n1/power", []sensor.Reading{{Value: 7, Time: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Publish("/r2/n1/power", []sensor.Reading{{Value: 8, Time: 2}}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n >= 1 && b.Published() >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("timeout waiting for delivery")
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 || got[0].Topic != "/r1/n1/power" || got[0].Readings[0].Value != 7 {
		t.Fatalf("local delivery = %+v", got)
	}
}

func TestBrokerNetworkSubscription(t *testing.T) {
	b, err := NewBroker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	sub, err := Dial(b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	recv := make(chan Message, 4)
	if err := sub.Subscribe("/a/#", func(m Message) { recv <- m }); err != nil {
		t.Fatal(err)
	}

	pub, err := Dial(b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	if err := pub.Publish("/a/x", []sensor.Reading{{Value: 1, Time: 10}}); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish("/b/x", []sensor.Reading{{Value: 2, Time: 20}}); err != nil {
		t.Fatal(err)
	}

	select {
	case m := <-recv:
		if m.Topic != "/a/x" || m.Readings[0].Value != 1 {
			t.Fatalf("received %+v", m)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("timeout")
	}
	// The /b/x message must not arrive.
	select {
	case m := <-recv:
		t.Fatalf("unexpected message %+v", m)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestPing(t *testing.T) {
	b, err := NewBroker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	c, err := Dial(b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
}

func TestPublishAfterClose(t *testing.T) {
	b, err := NewBroker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	c, err := Dial(b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Publish("/x", nil); err != ErrClosed {
		t.Errorf("err = %v, want ErrClosed", err)
	}
	if err := c.Close(); err != nil {
		t.Errorf("double close err = %v", err)
	}
}

func TestConcurrentPublishers(t *testing.T) {
	b, err := NewBroker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	var count sync.WaitGroup
	var mu sync.Mutex
	total := 0
	b.SubscribeLocal("#", func(m Message) {
		mu.Lock()
		total += len(m.Readings)
		mu.Unlock()
	})

	const publishers = 4
	const msgs = 50
	for p := 0; p < publishers; p++ {
		count.Add(1)
		go func(p int) {
			defer count.Done()
			c, err := Dial(b.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for i := 0; i < msgs; i++ {
				if err := c.Publish("/n/power", []sensor.Reading{{Value: float64(i), Time: int64(i)}}); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}
	count.Wait()
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := total
		mu.Unlock()
		if n == publishers*msgs {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("received %d of %d readings", n, publishers*msgs)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestBrokerCloseUnblocksClients(t *testing.T) {
	b, err := NewBroker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	// Client close after broker shutdown must not hang.
	done := make(chan struct{})
	go func() {
		c.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("client Close hung after broker shutdown")
	}
}
