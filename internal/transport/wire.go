// Package transport implements the MQTT-flavoured push transport between
// DCDB Pushers and Collect Agents: a minimal topic-based publish/subscribe
// protocol over TCP.
//
// The production DCDB uses full MQTT brokers; every data path in this
// codebase needs exactly the subset implemented here — CONNECT, PUBLISH of
// reading batches to slash-separated topics, SUBSCRIBE with the '#'
// multi-level wildcard, and PING — over length-prefixed binary frames.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"github.com/dcdb/wintermute/internal/sensor"
)

// Frame types. framePublishV2 and framePubAck extend the original
// protocol with at-least-once delivery: a v2 PUBLISH prefixes the v1
// payload with a (client-epoch, sequence) pair, and the broker answers
// each one with a PubAck echoing that pair. Peers that predate the
// extension keep speaking framePublish and receive no acks — both sides
// ignore frame types they do not know, so mixed-version pairs degrade
// to the old fire-and-forget behaviour instead of desyncing.
const (
	frameConnect    = 1
	frameConnAck    = 2
	framePublish    = 3
	frameSubscribe  = 4
	frameSubAck     = 5
	framePingReq    = 6
	framePingResp   = 7
	frameDisconnect = 8
	framePublishV2  = 9
	framePubAck     = 10
)

// maxFrameSize bounds a single frame payload; larger frames indicate a
// protocol violation or corruption.
const maxFrameSize = 16 << 20

// ErrFrameTooLarge reports an oversized frame.
var ErrFrameTooLarge = errors.New("transport: frame exceeds size limit")

// ErrBadFrame reports a structurally invalid frame payload.
var ErrBadFrame = errors.New("transport: malformed frame")

// writeFrame emits one frame: type byte, 4-byte big-endian length, payload.
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload) > maxFrameSize {
		return ErrFrameTooLarge
	}
	hdr := [5]byte{typ}
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// readFrame reads one frame into a fresh payload slice the caller owns.
func readFrame(r io.Reader) (typ byte, payload []byte, err error) {
	var payloadBuf []byte
	return readFrameReuse(r, &payloadBuf)
}

// readFrameReuse reads one frame into *buf, growing it as needed and
// reusing its capacity across calls. The returned payload aliases *buf
// and is only valid until the next call.
func readFrameReuse(r io.Reader, buf *[]byte) (typ byte, payload []byte, err error) {
	var hdr [5]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > maxFrameSize {
		return 0, nil, ErrFrameTooLarge
	}
	if uint32(cap(*buf)) < n {
		*buf = make([]byte, n)
	}
	payload = (*buf)[:n]
	if _, err = io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[0], payload, nil
}

// Message is one published batch of readings for a topic. Epoch and Seq
// are the at-least-once delivery identity carried by v2 PUBLISH frames:
// Epoch identifies one client incarnation and Seq increases by one per
// published batch within it. Both are zero for messages that arrived as
// unversioned (v1) publishes, which receive no ack and no dedup.
type Message struct {
	Topic    sensor.Topic
	Readings []sensor.Reading
	Epoch    uint64
	Seq      uint64
}

// EncodePublish serialises a message into a PUBLISH payload: uvarint topic
// length, topic bytes, uvarint reading count, then (value, time) pairs as
// fixed 16-byte records.
func EncodePublish(m Message) []byte {
	topic := []byte(m.Topic)
	buf := make([]byte, 0, len(topic)+10+16*len(m.Readings))
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(topic)))
	buf = append(buf, tmp[:n]...)
	buf = append(buf, topic...)
	n = binary.PutUvarint(tmp[:], uint64(len(m.Readings)))
	buf = append(buf, tmp[:n]...)
	var rec [16]byte
	for _, r := range m.Readings {
		binary.BigEndian.PutUint64(rec[0:8], math.Float64bits(r.Value))
		binary.BigEndian.PutUint64(rec[8:16], uint64(r.Time))
		buf = append(buf, rec[:]...)
	}
	return buf
}

// DecodePublish parses a PUBLISH payload into freshly-allocated storage
// the caller owns.
func DecodePublish(payload []byte) (Message, error) {
	return decodePublishInto(payload, nil, nil)
}

// decodePublishInto parses a PUBLISH payload, appending the readings to
// rs (reusing its capacity) and resolving the topic through the intern
// table when one is given — so a connection's steady-state decode
// allocates nothing once its topics and batch size have been seen. The
// intern table is bounded: a publisher cycling through unbounded topics
// degrades to one string allocation per message, not unbounded memory.
func decodePublishInto(payload []byte, rs []sensor.Reading, intern map[string]sensor.Topic) (Message, error) {
	var m Message
	tl, n := binary.Uvarint(payload)
	if n <= 0 || uint64(len(payload)-n) < tl {
		return m, fmt.Errorf("%w: topic length", ErrBadFrame)
	}
	payload = payload[n:]
	rawTopic := payload[:tl]
	payload = payload[tl:]
	cnt, n := binary.Uvarint(payload)
	if n <= 0 {
		return m, fmt.Errorf("%w: reading count", ErrBadFrame)
	}
	payload = payload[n:]
	// Divide instead of multiplying: cnt*16 can wrap uint64, letting a
	// forged count pass the length check and crash the decode loop.
	if uint64(len(payload))%16 != 0 || uint64(len(payload))/16 != cnt {
		return m, fmt.Errorf("%w: reading records", ErrBadFrame)
	}
	// Topic resolution happens only after the frame validated whole, and
	// only short topics are pinned in the table — a hostile publisher
	// can neither poison the intern table with malformed frames nor grow
	// it by megabytes per entry.
	if t, ok := intern[string(rawTopic)]; ok {
		m.Topic = t
	} else {
		m.Topic = sensor.Topic(rawTopic)
		if intern != nil && len(rawTopic) <= 256 && len(intern) < 4096 {
			intern[string(m.Topic)] = m.Topic
		}
	}
	for i := uint64(0); i < cnt; i++ {
		rs = append(rs, sensor.Reading{
			Value: math.Float64frombits(binary.BigEndian.Uint64(payload[0:8])),
			Time:  int64(binary.BigEndian.Uint64(payload[8:16])),
		})
		payload = payload[16:]
	}
	m.Readings = rs
	return m, nil
}

// EncodePublishV2 serialises a message into a v2 PUBLISH payload: the
// uvarint (epoch, seq) delivery identity, then the v1 payload verbatim.
// The layout lets the broker forward a v2 publish to unversioned
// subscribers by re-slicing past the prefix — no re-encoding.
func EncodePublishV2(m Message) []byte {
	var tmp [2 * binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], m.Epoch)
	n += binary.PutUvarint(tmp[n:], m.Seq)
	v1 := EncodePublish(m)
	buf := make([]byte, 0, n+len(v1))
	buf = append(buf, tmp[:n]...)
	return append(buf, v1...)
}

// decodePublishV2Prefix parses the (epoch, seq) prefix of a v2 PUBLISH
// payload and returns the offset where the embedded v1 payload starts.
func decodePublishV2Prefix(payload []byte) (epoch, seq uint64, off int, err error) {
	var n int
	epoch, n = binary.Uvarint(payload)
	if n <= 0 {
		return 0, 0, 0, fmt.Errorf("%w: publish epoch", ErrBadFrame)
	}
	off = n
	seq, n = binary.Uvarint(payload[off:])
	if n <= 0 {
		return 0, 0, 0, fmt.Errorf("%w: publish seq", ErrBadFrame)
	}
	return epoch, seq, off + n, nil
}

// encodePubAck serialises a PubAck payload: the acknowledged batch's
// uvarint (epoch, seq) pair.
func encodePubAck(buf []byte, epoch, seq uint64) []byte {
	var tmp [2 * binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], epoch)
	n += binary.PutUvarint(tmp[n:], seq)
	return append(buf[:0], tmp[:n]...)
}

// decodePubAck parses a PubAck payload.
func decodePubAck(payload []byte) (epoch, seq uint64, err error) {
	epoch, seq, _, err = decodePublishV2Prefix(payload)
	return epoch, seq, err
}

// encodeString serialises a SUBSCRIBE filter.
func encodeString(s string) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(s)))
	return append(tmp[:n:n], s...)
}

// decodeString parses a SUBSCRIBE filter.
func decodeString(payload []byte) (string, error) {
	l, n := binary.Uvarint(payload)
	if n <= 0 || uint64(len(payload)-n) != l {
		return "", fmt.Errorf("%w: string field", ErrBadFrame)
	}
	return string(payload[n : n+int(l)]), nil
}
