// Package transport implements the MQTT-flavoured push transport between
// DCDB Pushers and Collect Agents: a minimal topic-based publish/subscribe
// protocol over TCP.
//
// The production DCDB uses full MQTT brokers; every data path in this
// codebase needs exactly the subset implemented here — CONNECT, PUBLISH of
// reading batches to slash-separated topics, SUBSCRIBE with the '#'
// multi-level wildcard, and PING — over length-prefixed binary frames.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"github.com/dcdb/wintermute/internal/sensor"
)

// Frame types.
const (
	frameConnect    = 1
	frameConnAck    = 2
	framePublish    = 3
	frameSubscribe  = 4
	frameSubAck     = 5
	framePingReq    = 6
	framePingResp   = 7
	frameDisconnect = 8
)

// maxFrameSize bounds a single frame payload; larger frames indicate a
// protocol violation or corruption.
const maxFrameSize = 16 << 20

// ErrFrameTooLarge reports an oversized frame.
var ErrFrameTooLarge = errors.New("transport: frame exceeds size limit")

// ErrBadFrame reports a structurally invalid frame payload.
var ErrBadFrame = errors.New("transport: malformed frame")

// writeFrame emits one frame: type byte, 4-byte big-endian length, payload.
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload) > maxFrameSize {
		return ErrFrameTooLarge
	}
	hdr := [5]byte{typ}
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// readFrame reads one frame into a fresh payload slice the caller owns.
func readFrame(r io.Reader) (typ byte, payload []byte, err error) {
	var payloadBuf []byte
	return readFrameReuse(r, &payloadBuf)
}

// readFrameReuse reads one frame into *buf, growing it as needed and
// reusing its capacity across calls. The returned payload aliases *buf
// and is only valid until the next call.
func readFrameReuse(r io.Reader, buf *[]byte) (typ byte, payload []byte, err error) {
	var hdr [5]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > maxFrameSize {
		return 0, nil, ErrFrameTooLarge
	}
	if uint32(cap(*buf)) < n {
		*buf = make([]byte, n)
	}
	payload = (*buf)[:n]
	if _, err = io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[0], payload, nil
}

// Message is one published batch of readings for a topic.
type Message struct {
	Topic    sensor.Topic
	Readings []sensor.Reading
}

// EncodePublish serialises a message into a PUBLISH payload: uvarint topic
// length, topic bytes, uvarint reading count, then (value, time) pairs as
// fixed 16-byte records.
func EncodePublish(m Message) []byte {
	topic := []byte(m.Topic)
	buf := make([]byte, 0, len(topic)+10+16*len(m.Readings))
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(topic)))
	buf = append(buf, tmp[:n]...)
	buf = append(buf, topic...)
	n = binary.PutUvarint(tmp[:], uint64(len(m.Readings)))
	buf = append(buf, tmp[:n]...)
	var rec [16]byte
	for _, r := range m.Readings {
		binary.BigEndian.PutUint64(rec[0:8], math.Float64bits(r.Value))
		binary.BigEndian.PutUint64(rec[8:16], uint64(r.Time))
		buf = append(buf, rec[:]...)
	}
	return buf
}

// DecodePublish parses a PUBLISH payload into freshly-allocated storage
// the caller owns.
func DecodePublish(payload []byte) (Message, error) {
	return decodePublishInto(payload, nil, nil)
}

// decodePublishInto parses a PUBLISH payload, appending the readings to
// rs (reusing its capacity) and resolving the topic through the intern
// table when one is given — so a connection's steady-state decode
// allocates nothing once its topics and batch size have been seen. The
// intern table is bounded: a publisher cycling through unbounded topics
// degrades to one string allocation per message, not unbounded memory.
func decodePublishInto(payload []byte, rs []sensor.Reading, intern map[string]sensor.Topic) (Message, error) {
	var m Message
	tl, n := binary.Uvarint(payload)
	if n <= 0 || uint64(len(payload)-n) < tl {
		return m, fmt.Errorf("%w: topic length", ErrBadFrame)
	}
	payload = payload[n:]
	rawTopic := payload[:tl]
	payload = payload[tl:]
	cnt, n := binary.Uvarint(payload)
	if n <= 0 {
		return m, fmt.Errorf("%w: reading count", ErrBadFrame)
	}
	payload = payload[n:]
	// Divide instead of multiplying: cnt*16 can wrap uint64, letting a
	// forged count pass the length check and crash the decode loop.
	if uint64(len(payload))%16 != 0 || uint64(len(payload))/16 != cnt {
		return m, fmt.Errorf("%w: reading records", ErrBadFrame)
	}
	// Topic resolution happens only after the frame validated whole, and
	// only short topics are pinned in the table — a hostile publisher
	// can neither poison the intern table with malformed frames nor grow
	// it by megabytes per entry.
	if t, ok := intern[string(rawTopic)]; ok {
		m.Topic = t
	} else {
		m.Topic = sensor.Topic(rawTopic)
		if intern != nil && len(rawTopic) <= 256 && len(intern) < 4096 {
			intern[string(m.Topic)] = m.Topic
		}
	}
	for i := uint64(0); i < cnt; i++ {
		rs = append(rs, sensor.Reading{
			Value: math.Float64frombits(binary.BigEndian.Uint64(payload[0:8])),
			Time:  int64(binary.BigEndian.Uint64(payload[8:16])),
		})
		payload = payload[16:]
	}
	m.Readings = rs
	return m, nil
}

// encodeString serialises a SUBSCRIBE filter.
func encodeString(s string) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(s)))
	return append(tmp[:n:n], s...)
}

// decodeString parses a SUBSCRIBE filter.
func decodeString(payload []byte) (string, error) {
	l, n := binary.Uvarint(payload)
	if n <= 0 || uint64(len(payload)-n) != l {
		return "", fmt.Errorf("%w: string field", ErrBadFrame)
	}
	return string(payload[n : n+int(l)]), nil
}
