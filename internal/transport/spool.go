package transport

import (
	"bufio"
	crand "crypto/rand"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"sync"
	"time"

	"github.com/dcdb/wintermute/internal/sensor"
)

// ClientStats is a snapshot of a reliable client's delivery counters,
// exposed for telemetry (the pusher republishes them as gauges).
type ClientStats struct {
	// SpoolDepth is the number of batches in the in-memory spool
	// (unsent plus sent-but-unacknowledged).
	SpoolDepth int
	// SpoolDisk is the number of overflow batches on disk not yet
	// loaded into memory.
	SpoolDisk int
	// SpoolDiskBytes is the overflow file's current size.
	SpoolDiskBytes int64
	// Published counts batches accepted by Publish.
	Published uint64
	// Acked counts batches the broker acknowledged.
	Acked uint64
	// Reconnects counts successful dials after the initial one.
	Reconnects uint64
	// Redeliveries counts batches re-sent after a connection died with
	// them unacknowledged.
	Redeliveries uint64
}

// relBatch is one spooled publish: the encoded v2 payload plus the
// delivery identity it carries. fromDisk marks batches loaded from the
// overflow file (already persisted — Close must not write them again).
type relBatch struct {
	epoch, seq uint64
	payload    []byte
	fromDisk   bool
	sentAt     time.Time
}

// reliable is the at-least-once engine behind a spooling Client: a
// bounded in-memory batch queue with optional disk overflow, one sender
// goroutine that owns dialling/redialling, and one receive loop per
// live connection feeding acknowledgements back.
//
// Queue discipline: queue[:sendIdx] have been written to the current
// connection and await acks; queue[sendIdx:] are unsent. PubAcks are
// cumulative — TCP delivers frames in order, so an ack for (epoch, seq)
// proves the broker routed every earlier batch sent on the same
// connection — and pop from the head. When a connection dies sendIdx
// rewinds to zero: everything unacknowledged is redelivered.
type reliable struct {
	c *Client

	epoch uint64

	mu      sync.Mutex
	space   sync.Cond // signalled when spool space frees or state changes
	queue   []*relBatch
	sendIdx int
	nextSeq uint64
	conn    net.Conn
	gen     uint64 // connection generation, guards stale teardowns
	closed  bool
	disk    *diskSpool // nil without SpoolDir

	// lastProgress is the last moment this connection demonstrably moved
	// acknowledgements forward: set at registration and on every ack that
	// pops batches. The stall detector keys on it rather than on the
	// head batch's send time — under sustained pipelining the head is
	// re-stamped only on redelivery, so send age would condemn a healthy
	// but merely slow connection and trigger a redelivery storm.
	lastProgress time.Time

	published    uint64
	acked        uint64
	reconnects   uint64
	redeliveries uint64

	kickCh chan struct{} // wakes the sender (cap 1)
	stopCh chan struct{} // closed when Close stops draining
	wg     sync.WaitGroup

	// Vectored-send scratch, owned by the sender goroutine: frame
	// headers live in hdrs, iov alternates header/payload slices so a
	// burst of spooled batches leaves in one writev.
	iov  net.Buffers
	hdrs []byte
}

// newEpoch draws a random nonzero client-epoch. Uniqueness across all
// client incarnations that ever reach one agent is what keeps the
// dedup watermarks from crossing streams; 64 random bits make a
// collision negligible where a timestamp (many pushers starting the
// same nanosecond) would not.
func newEpoch() uint64 {
	var b [8]byte
	for {
		if _, err := crand.Read(b[:]); err != nil {
			// Crypto randomness is best-effort here; fall back to time.
			return uint64(time.Now().UnixNano()) | 1
		}
		if e := binary.LittleEndian.Uint64(b[:]); e != 0 {
			return e
		}
	}
}

// newReliable builds the engine, replays any existing disk spool, makes
// the initial connection (failing fast on misconfiguration) and starts
// the sender.
func newReliable(c *Client) (*reliable, error) {
	r := &reliable{
		c:      c,
		epoch:  newEpoch(),
		kickCh: make(chan struct{}, 1),
		stopCh: make(chan struct{}),
	}
	r.space.L = &r.mu
	if c.opts.SpoolDir != "" {
		d, err := openDiskSpool(filepath.Join(c.opts.SpoolDir, "pusher.spool"), c.opts.SpoolMaxBytes)
		if err != nil {
			return nil, fmt.Errorf("transport: opening disk spool: %w", err)
		}
		r.disk = d
	}
	conn, err := r.dialOnce()
	if err != nil {
		if r.disk != nil {
			r.disk.close()
		}
		return nil, err
	}
	r.conn = conn
	r.gen = 1
	r.lastProgress = time.Now()
	r.wg.Add(2)
	go r.recvLoop(conn, 1)
	go r.sendLoop()
	return r, nil
}

// liveConn returns the current connection, nil between redials.
func (r *reliable) liveConn() net.Conn {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.conn
}

func (r *reliable) stats() ClientStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := ClientStats{
		SpoolDepth:   len(r.queue),
		Published:    r.published,
		Acked:        r.acked,
		Reconnects:   r.reconnects,
		Redeliveries: r.redeliveries,
	}
	if r.disk != nil {
		st.SpoolDisk = r.disk.pending
		st.SpoolDiskBytes = r.disk.size
	}
	return st
}

// publish spools one batch. It blocks only when both the disk overflow
// (if any) and the in-memory spool are at capacity — backpressure, not
// loss.
func (r *reliable) publish(topic sensor.Topic, readings []sensor.Reading) error {
	r.mu.Lock()
	// Order is sacred: the agent's dedup watermark assumes per-topic
	// sequence numbers arrive monotonically, so sequences are assigned
	// at enqueue time under a continuously-held lock (never across a
	// cond wait — a concurrent publisher could slip a later sequence in
	// front), and a batch may only enter the memory queue behind every
	// disk-resident batch. While the overflow file holds anything, all
	// new batches go to its tail. Both destination checks live in ONE
	// loop re-evaluated after every wait: a publisher that blocked on a
	// full disk must return to the disk path whenever disk.pending rises
	// again while it slept (a concurrent publisher's append succeeded),
	// or its memory enqueue would jump ahead of a lower-sequence
	// disk-resident batch — which the dedup watermark would then reject
	// on replay even though the broker acked it: acked data loss.
	for {
		if r.closed {
			r.mu.Unlock()
			return ErrClosed
		}
		if r.disk != nil && (r.disk.pending > 0 || len(r.queue) >= r.c.opts.SpoolBatches) {
			r.nextSeq++
			payload := EncodePublishV2(Message{
				Topic: topic, Readings: readings, Epoch: r.epoch, Seq: r.nextSeq,
			})
			if err := r.disk.append(payload); err == nil {
				r.published++
				r.mu.Unlock()
				r.kick()
				return nil
			}
			// Disk full (or failing): the sequence just burnt is
			// discarded (gaps are harmless to a high-water mark) and the
			// publisher waits for state to change before re-deciding
			// where this batch may go.
			r.space.Wait()
			continue
		}
		if len(r.queue) >= r.c.opts.SpoolBatches {
			r.space.Wait()
			continue
		}
		break
	}
	r.nextSeq++
	payload := EncodePublishV2(Message{
		Topic: topic, Readings: readings, Epoch: r.epoch, Seq: r.nextSeq,
	})
	r.queue = append(r.queue, &relBatch{epoch: r.epoch, seq: r.nextSeq, payload: payload})
	r.published++
	r.mu.Unlock()
	r.kick()
	return nil
}

// kick wakes the sender without blocking.
func (r *reliable) kick() {
	select {
	case r.kickCh <- struct{}{}:
	default:
	}
}

// sendLoop owns the connection lifecycle: dial (with backoff + jitter),
// stream unsent batches, watch the head-of-line ack deadline, redial on
// failure. It exits when the client is closed and the spool is drained,
// or when Close abandons the drain (stopCh).
func (r *reliable) sendLoop() {
	defer r.wg.Done()
	backoff := r.c.opts.RetryMin
	for {
		r.mu.Lock()
		if r.closed && len(r.queue) == 0 && (r.disk == nil || r.disk.pending == 0) {
			r.mu.Unlock()
			return
		}
		conn, gen := r.conn, r.gen
		if conn == nil {
			r.mu.Unlock()
			select {
			case <-r.stopCh:
				return
			default:
			}
			c2, err := r.dialOnce()
			if err != nil {
				select {
				case <-time.After(jitter(backoff)):
				case <-r.stopCh:
					return
				}
				if backoff *= 2; backoff > r.c.opts.RetryMax {
					backoff = r.c.opts.RetryMax
				}
				continue
			}
			backoff = r.c.opts.RetryMin
			r.mu.Lock()
			// Registration races with close(): stopCh is closed strictly
			// before close() tears down r.conn, so if the dial completed
			// after that teardown this check (under the same lock) sees it
			// and abandons c2 — registering would orphan a receiver on a
			// connection nobody will ever close, wedging close()'s Wait.
			select {
			case <-r.stopCh:
				r.mu.Unlock()
				c2.Close()
				return
			default:
			}
			r.conn = c2
			r.gen++
			r.sendIdx = 0 // redeliver everything unacknowledged
			r.lastProgress = time.Now()
			r.reconnects++
			gen = r.gen
			r.mu.Unlock()
			r.wg.Add(1)
			go r.recvLoop(c2, gen)
			continue
		}
		r.refillLocked()
		if r.sendIdx < len(r.queue) {
			// Gather every unsent batch (capped to keep each writev's
			// iovec list bounded) into one vectored write: under
			// sustained load many frames leave per syscall, which is
			// what keeps the acked path's throughput at the
			// fire-and-forget client's level.
			const maxBurst = 256
			now := time.Now()
			r.iov = r.iov[:0]
			r.hdrs = r.hdrs[:0]
			n := 0
			for r.sendIdx < len(r.queue) && n < maxBurst {
				b := r.queue[r.sendIdx]
				if !b.sentAt.IsZero() {
					r.redeliveries++
				}
				b.sentAt = now
				r.sendIdx++
				r.hdrs = append(r.hdrs, framePublishV2, 0, 0, 0, 0)
				binary.BigEndian.PutUint32(r.hdrs[len(r.hdrs)-4:], uint32(len(b.payload)))
				r.iov = append(r.iov, nil, b.payload)
				n++
			}
			// Headers slice into hdrs only after it stops growing: append
			// may reallocate the arena mid-gather.
			for i := 0; i < n; i++ {
				r.iov[2*i] = r.hdrs[5*i : 5*i+5]
			}
			r.mu.Unlock()
			// The burst shares the connection with Subscribe/Ping frames
			// written under c.writeMu; hold it across the vectored write
			// (which may span several writev syscalls) so a concurrent
			// control frame can never interleave bytes mid-frame and
			// desync the broker's stream.
			r.c.writeMu.Lock()
			_, err := r.iov.WriteTo(conn)
			r.c.writeMu.Unlock()
			if err != nil {
				r.connDead(gen)
			}
			continue
		}
		// Idle: wait for new work, and while acks are outstanding watch
		// for ack progress — a connection that swallows frames without
		// ever acking is as dead as a closed one, but one that keeps
		// popping batches (however slowly) is healthy and must not be
		// torn down: every teardown rewinds sendIdx and redelivers the
		// whole spool, so a false positive feeds itself.
		wait := r.c.opts.AckTimeout
		if r.sendIdx > 0 {
			if d := time.Until(r.lastProgress.Add(r.c.opts.AckTimeout)); d < wait {
				wait = d
			}
		}
		r.mu.Unlock()
		if wait < time.Millisecond {
			wait = time.Millisecond
		}
		select {
		case <-r.kickCh:
		case <-time.After(wait):
			r.mu.Lock()
			stuck := r.gen == gen && r.conn != nil && r.sendIdx > 0 &&
				time.Since(r.lastProgress) >= r.c.opts.AckTimeout
			r.mu.Unlock()
			if stuck {
				conn.Close()
				r.connDead(gen)
			}
		case <-r.stopCh:
			return
		}
	}
}

// refillLocked loads overflow batches into the tail of the memory
// queue. Callers hold r.mu.
func (r *reliable) refillLocked() {
	if r.disk == nil || r.disk.pending == 0 || len(r.queue) >= r.c.opts.SpoolBatches {
		return
	}
	loaded, err := r.disk.load(r.c.opts.SpoolBatches - len(r.queue))
	if err != nil {
		// A torn or unreadable overflow tail: drop what cannot be
		// parsed rather than wedging the sender. The loss is bounded to
		// batches that were never acknowledged anyway.
		r.disk.abandonPending()
		r.space.Broadcast()
		return
	}
	r.queue = append(r.queue, loaded...)
}

// connDead retires generation gen's connection: everything sent on it
// but unacknowledged rewinds to unsent for redelivery on the next dial.
func (r *reliable) connDead(gen uint64) {
	r.mu.Lock()
	if r.gen != gen || r.conn == nil {
		r.mu.Unlock()
		return
	}
	conn := r.conn
	r.conn = nil
	r.sendIdx = 0
	r.mu.Unlock()
	conn.Close()
	r.kick()
}

// ack applies one cumulative PubAck: every batch at or before
// (epoch, seq) in send order is confirmed routed and leaves the spool.
func (r *reliable) ack(epoch, seq uint64) {
	r.mu.Lock()
	n := 0
	for n < r.sendIdx {
		b := r.queue[n]
		if b.epoch == epoch && b.seq > seq {
			break
		}
		n++
		if b.epoch == epoch && b.seq == seq {
			break
		}
	}
	if n > 0 {
		r.acked += uint64(n)
		r.lastProgress = time.Now()
		copy(r.queue, r.queue[n:])
		for i := len(r.queue) - n; i < len(r.queue); i++ {
			r.queue[i] = nil
		}
		r.queue = r.queue[:len(r.queue)-n]
		r.sendIdx -= n
		if r.disk != nil && len(r.queue) == 0 && r.disk.pending == 0 {
			r.disk.reset()
		}
		r.space.Broadcast()
	}
	r.mu.Unlock()
	if n > 0 {
		// The sender may be idle with the queue it saw fully sent; freed
		// space lets it refill from the disk overflow.
		r.kick()
	}
}

// recvLoop reads one connection until it dies, feeding acks to the
// spool and everything else to the shared client dispatch.
func (r *reliable) recvLoop(conn net.Conn, gen uint64) {
	defer r.wg.Done()
	// This loop is the connection's only reader, so buffering is safe;
	// it batches the small PubAck frames into one read syscall each
	// time the broker's coalesced flush lands.
	br := bufio.NewReaderSize(conn, 32<<10)
	var buf []byte
	for {
		typ, payload, err := readFrameReuse(br, &buf)
		if err != nil {
			r.connDead(gen)
			return
		}
		if typ == framePubAck {
			if e, s, derr := decodePubAck(payload); derr == nil {
				r.ack(e, s)
			}
			continue
		}
		r.c.dispatch(typ, payload)
	}
}

// dialOnce makes one connection attempt including the CONNECT handshake
// and resubscription of every registered filter.
func (r *reliable) dialOnce() (net.Conn, error) {
	conn, err := net.DialTimeout("tcp", r.c.addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	if err := r.handshake(conn); err != nil {
		conn.Close()
		return nil, err
	}
	return conn, nil
}

// handshake runs CONNECT/CONNACK and re-sends the client's subscription
// filters synchronously, all under one deadline, before the connection
// is handed to the concurrent send/receive loops.
func (r *reliable) handshake(conn net.Conn) error {
	_ = conn.SetDeadline(time.Now().Add(r.c.opts.AckTimeout))
	defer conn.SetDeadline(time.Time{})
	if err := writeFrame(conn, frameConnect, nil); err != nil {
		return err
	}
	typ, _, err := readFrame(conn)
	if err != nil {
		return err
	}
	if typ != frameConnAck {
		return ErrUnexpectedAck
	}
	r.c.mu.Lock()
	filters := make([]string, len(r.c.subs))
	for i, s := range r.c.subs {
		filters[i] = s.filter
	}
	r.c.mu.Unlock()
	for _, f := range filters {
		if err := writeFrame(conn, frameSubscribe, encodeString(f)); err != nil {
			return err
		}
		typ, _, err := readFrame(conn)
		if err != nil {
			return err
		}
		if typ != frameSubAck {
			return ErrUnexpectedAck
		}
	}
	return nil
}

// close drains the spool (bounded by DrainTimeout), persists any
// remainder to the disk spool, then stops the sender and receiver.
func (r *reliable) close() error {
	r.c.mu.Lock()
	if r.c.closed {
		r.c.mu.Unlock()
		return nil
	}
	r.c.closed = true
	r.c.mu.Unlock()

	r.mu.Lock()
	r.closed = true
	r.space.Broadcast() // publishers blocked on backpressure get ErrClosed
	r.mu.Unlock()
	r.kick()

	var err error
	deadline := time.Now().Add(r.c.opts.DrainTimeout)
	for {
		r.mu.Lock()
		drained := len(r.queue) == 0 && (r.disk == nil || r.disk.pending == 0)
		r.mu.Unlock()
		if drained {
			break
		}
		if time.Now().After(deadline) {
			err = r.persistRemainder()
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(r.stopCh)
	r.mu.Lock()
	conn := r.conn
	r.conn = nil
	r.mu.Unlock()
	if conn != nil {
		// TryLock: the sender may be wedged mid-write on this very
		// connection holding c.writeMu, and conn.Close() below is what
		// unblocks it — so the courtesy DISCONNECT is skipped rather
		// than deadlocking Close behind it.
		if r.c.writeMu.TryLock() {
			_ = writeFrame(conn, frameDisconnect, nil)
			r.c.writeMu.Unlock()
		}
		conn.Close()
	}
	r.wg.Wait()
	if r.disk != nil {
		if derr := r.disk.close(); err == nil {
			err = derr
		}
	}
	return err
}

// persistRemainder rewrites the disk spool as exactly the
// unacknowledged backlog in publish order: the in-memory queue first
// (its older, memory-born batches precede any disk-loaded ones), then
// the overflow records never loaded — so a restart replays everything
// in the original sequence order the dedup watermark depends on.
// Without a disk spool the remainder is abandoned and reported.
func (r *reliable) persistRemainder() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.disk == nil {
		if n := len(r.queue); n > 0 {
			return fmt.Errorf("%w: %d batches", ErrSpoolNotDrained, n)
		}
		return nil
	}
	payloads := make([][]byte, len(r.queue))
	for i, b := range r.queue {
		payloads[i] = b.payload
	}
	err := r.disk.rewrite(payloads)
	r.queue = nil
	r.sendIdx = 0
	if err != nil {
		return fmt.Errorf("transport: persisting spool remainder: %w", err)
	}
	return nil
}

// jitter spreads a backoff delay over [d/2, d) so a fleet of clients
// disconnected by the same fault does not redial in lockstep.
func jitter(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	half := d / 2
	return half + time.Duration(rand.Int63n(int64(half)))
}

// spoolMagic versions the overflow-file record framing.
const spoolMagic = uint32(0x53504c31) // "SPL1"

// maxSpoolRecord bounds a single record's payload during scan: spooled
// payloads are v2 PUBLISH frames, so anything past the wire frame limit
// (plus the delivery-identity prefix, generously) is corruption, not a
// large batch. The configured SpoolMaxBytes cap must NOT bound this
// check — Close's persistRemainder appends via appendUnbounded, which
// deliberately ignores the cap, and those records (and everything after
// them) must survive the next open's scan.
const maxSpoolRecord = maxFrameSize + 2*binary.MaxVarintLen64

// diskSpool is the append-only overflow file: CRC-framed v2 publish
// payloads, appended at the tail, loaded in order from a read offset,
// truncated to empty once every record has been loaded and
// acknowledged. On open, existing records (a previous incarnation's
// unacknowledged remainder) are validated and queued for replay; a torn
// tail is cut off, mirroring the tsdb WAL's recovery contract.
type diskSpool struct {
	path    string
	f       *os.File
	pending int   // records on disk not yet loaded into memory
	readOff int64 // offset of the next record to load
	size    int64 // bytes of valid records
	max     int64
}

// openDiskSpool opens (or creates) the overflow file and scans it for
// replayable records.
func openDiskSpool(path string, max int64) (*diskSpool, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	d := &diskSpool{path: path, f: f, max: max}
	if err := d.scan(); err != nil {
		f.Close()
		return nil, err
	}
	return d, nil
}

// scan validates the file record by record, counting replayable entries
// and truncating any torn tail.
func (d *diskSpool) scan() error {
	br := bufio.NewReaderSize(io.NewSectionReader(d.f, 0, 1<<62), 64<<10)
	var (
		off  int64
		hdr  [12]byte
		body []byte
	)
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			break
		}
		if binary.LittleEndian.Uint32(hdr[0:4]) != spoolMagic {
			break
		}
		n := binary.LittleEndian.Uint32(hdr[4:8])
		if int64(n) > maxSpoolRecord {
			break
		}
		if cap(body) < int(n) {
			body = make([]byte, n)
		}
		body = body[:n]
		if _, err := io.ReadFull(br, body); err != nil {
			break
		}
		if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(hdr[8:12]) {
			break
		}
		off += int64(len(hdr)) + int64(n)
		d.pending++
	}
	d.size = off
	d.readOff = 0
	return d.f.Truncate(off)
}

// append writes one record, honouring the size cap.
func (d *diskSpool) append(payload []byte) error {
	if d.size+int64(len(payload))+12 > d.max {
		return fmt.Errorf("transport: disk spool full (%d bytes)", d.size)
	}
	return d.appendUnbounded(payload)
}

// appendUnbounded writes one record regardless of the cap; Close uses
// it so persisting the final remainder cannot fail on the size limit.
func (d *diskSpool) appendUnbounded(payload []byte) error {
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:4], spoolMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[8:12], crc32.ChecksumIEEE(payload))
	if _, err := d.f.WriteAt(hdr[:], d.size); err != nil {
		return err
	}
	if _, err := d.f.WriteAt(payload, d.size+12); err != nil {
		return err
	}
	d.size += 12 + int64(len(payload))
	d.pending++
	return nil
}

// load reads up to n records from the read offset into relBatches.
func (d *diskSpool) load(n int) ([]*relBatch, error) {
	var out []*relBatch
	var hdr [12]byte
	for len(out) < n && d.pending > 0 {
		if _, err := d.f.ReadAt(hdr[:], d.readOff); err != nil {
			return out, err
		}
		if binary.LittleEndian.Uint32(hdr[0:4]) != spoolMagic {
			return out, fmt.Errorf("transport: disk spool: bad record magic")
		}
		sz := binary.LittleEndian.Uint32(hdr[4:8])
		payload := make([]byte, sz)
		if _, err := d.f.ReadAt(payload, d.readOff+12); err != nil {
			return out, err
		}
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(hdr[8:12]) {
			return out, fmt.Errorf("transport: disk spool: record checksum mismatch")
		}
		epoch, seq, _, err := decodePublishV2Prefix(payload)
		if err != nil {
			return out, err
		}
		d.readOff += 12 + int64(sz)
		d.pending--
		out = append(out, &relBatch{epoch: epoch, seq: seq, payload: payload, fromDisk: true})
	}
	return out, nil
}

// rewrite replaces the file's contents with the given payloads (in
// order) followed by the not-yet-loaded tail records, which stay
// newest: the queue being persisted always predates them.
func (d *diskSpool) rewrite(payloads [][]byte) error {
	tailN := d.pending
	tail := make([]byte, d.size-d.readOff)
	if len(tail) > 0 {
		if _, err := d.f.ReadAt(tail, d.readOff); err != nil {
			return err
		}
	}
	if err := d.f.Truncate(0); err != nil {
		return err
	}
	d.size, d.readOff, d.pending = 0, 0, 0
	var err error
	for _, p := range payloads {
		if aerr := d.appendUnbounded(p); aerr != nil && err == nil {
			err = aerr
		}
	}
	if len(tail) > 0 {
		if _, werr := d.f.WriteAt(tail, d.size); werr != nil {
			if err == nil {
				err = werr
			}
		} else {
			d.size += int64(len(tail))
			d.pending += tailN
		}
	}
	return err
}

// abandonPending gives up on unloadable records (corrupt mid-file):
// the read offset jumps to the tail so new appends still work.
func (d *diskSpool) abandonPending() {
	d.pending = 0
	d.readOff = d.size
}

// reset truncates a fully-drained file so it does not grow without
// bound across overflow episodes.
func (d *diskSpool) reset() {
	if d.size == 0 {
		return
	}
	if err := d.f.Truncate(0); err == nil {
		d.size = 0
		d.readOff = 0
	}
}

// close syncs and closes the file, leaving persisted records for the
// next incarnation.
func (d *diskSpool) close() error {
	_ = d.f.Sync()
	return d.f.Close()
}
