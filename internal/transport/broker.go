package transport

import (
	"log"
	"net"
	"sync"
	"sync/atomic"

	"github.com/dcdb/wintermute/internal/sensor"
)

// Handler consumes published messages delivered to a subscription.
type Handler func(Message)

// Broker is the message broker at the heart of a Collect Agent: it
// accepts Pusher connections, routes published reading batches to network
// subscribers whose filters match, and delivers them to local handlers
// registered in-process (the Collect Agent's storage path).
type Broker struct {
	ln net.Listener

	mu     sync.RWMutex
	conns  map[net.Conn][]string // network subscriptions per connection
	local  []localSub
	closed bool

	wg sync.WaitGroup
	// published counts all messages routed, for the footprint experiment.
	published atomic.Uint64
}

type localSub struct {
	filter string
	fn     Handler
}

// NewBroker starts a broker listening on addr (e.g. "127.0.0.1:0").
func NewBroker(addr string) (*Broker, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	b := &Broker{ln: ln, conns: make(map[net.Conn][]string)}
	b.wg.Add(1)
	go b.acceptLoop()
	return b, nil
}

// Addr returns the broker's listen address.
func (b *Broker) Addr() string { return b.ln.Addr().String() }

// Published returns the number of messages routed since start.
func (b *Broker) Published() uint64 { return b.published.Load() }

// SubscribeLocal registers an in-process handler for every message whose
// topic matches filter ('#' wildcard supported). Used by the Collect Agent
// to receive data without a network hop.
func (b *Broker) SubscribeLocal(filter string, fn Handler) {
	b.mu.Lock()
	b.local = append(b.local, localSub{filter: filter, fn: fn})
	b.mu.Unlock()
}

// Close stops the broker and disconnects all clients.
func (b *Broker) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.closed = true
	conns := make([]net.Conn, 0, len(b.conns))
	for c := range b.conns {
		conns = append(conns, c)
	}
	b.mu.Unlock()
	err := b.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	b.wg.Wait()
	return err
}

func (b *Broker) acceptLoop() {
	defer b.wg.Done()
	for {
		conn, err := b.ln.Accept()
		if err != nil {
			return // listener closed
		}
		b.mu.Lock()
		if b.closed {
			b.mu.Unlock()
			conn.Close()
			return
		}
		b.conns[conn] = nil
		b.mu.Unlock()
		b.wg.Add(1)
		go b.serveConn(conn)
	}
}

func (b *Broker) serveConn(conn net.Conn) {
	defer b.wg.Done()
	defer func() {
		b.mu.Lock()
		delete(b.conns, conn)
		b.mu.Unlock()
		conn.Close()
	}()
	var writeMu sync.Mutex
	for {
		typ, payload, err := readFrame(conn)
		if err != nil {
			return
		}
		switch typ {
		case frameConnect:
			writeMu.Lock()
			err = writeFrame(conn, frameConnAck, nil)
			writeMu.Unlock()
		case framePublish:
			msg, derr := DecodePublish(payload)
			if derr != nil {
				log.Printf("transport: broker: dropping bad publish: %v", derr)
				continue
			}
			b.route(msg, payload)
		case frameSubscribe:
			filter, derr := decodeString(payload)
			if derr != nil {
				return
			}
			b.mu.Lock()
			b.conns[conn] = append(b.conns[conn], filter)
			b.mu.Unlock()
			writeMu.Lock()
			err = writeFrame(conn, frameSubAck, nil)
			writeMu.Unlock()
		case framePingReq:
			writeMu.Lock()
			err = writeFrame(conn, framePingResp, nil)
			writeMu.Unlock()
		case frameDisconnect:
			return
		}
		if err != nil {
			return
		}
	}
}

// route delivers a message to local handlers and matching subscribers.
// The already-encoded payload is reused for network forwarding.
func (b *Broker) route(msg Message, payload []byte) {
	b.published.Add(1)
	b.mu.RLock()
	locals := b.local
	var targets []net.Conn
	for conn, filters := range b.conns {
		for _, f := range filters {
			if sensor.MatchFilter(f, msg.Topic) {
				targets = append(targets, conn)
				break
			}
		}
	}
	b.mu.RUnlock()
	for _, ls := range locals {
		if sensor.MatchFilter(ls.filter, msg.Topic) {
			ls.fn(msg)
		}
	}
	for _, conn := range targets {
		// Best effort: a slow or dead subscriber must not stall routing
		// for others; errors surface as connection teardown on read.
		if err := writeFrame(conn, framePublish, payload); err != nil {
			conn.Close()
		}
	}
}
