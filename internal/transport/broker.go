package transport

import (
	"bufio"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dcdb/wintermute/internal/sensor"
	"github.com/dcdb/wintermute/internal/telemetry"
)

// Handler consumes published messages delivered to a subscription.
//
// Broker-side local handlers receive a Message whose Readings slice is
// owned by the broker and reused for the next frame: it is valid only
// for the duration of the call. A handler that hands the batch to
// another goroutine (or stores it) must copy it first. Client-side
// subscription handlers receive a private slice and may retain it.
type Handler func(Message)

// outFrame is one frame queued for a connection's writer goroutine; buf
// is pooled and returns to outBufPool after the write (or the drop).
type outFrame struct {
	typ byte
	buf *[]byte
}

// outBufPool recycles outbound frame payload copies. A frame must be
// copied to cross into the writer goroutine: the serve loop's decode
// buffer is reused for the next frame the moment route returns.
var outBufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 512)
	return &b
}}

// makeOutFrame copies payload into a pooled buffer.
func makeOutFrame(typ byte, payload []byte) outFrame {
	buf := outBufPool.Get().(*[]byte)
	*buf = append((*buf)[:0], payload...)
	//lint:ignore poolescape ownership transfer by design: the frame crosses to the connection's single writer goroutine, which returns buf to outBufPool after the write or the drop
	return outFrame{typ: typ, buf: buf}
}

// brokerConn is one client connection's broker-side state. All writes
// go through a bounded outbound queue drained by a single writer
// goroutine under a per-frame write deadline, so a stalled reader can
// neither interleave frames nor wedge the broker: acknowledgements
// enqueue blocking (backpressure on that connection's own serve loop,
// never a drop), subscriber forwards enqueue non-blocking and are
// dropped with a counter when the queue is full.
type brokerConn struct {
	conn net.Conn
	bw   *bufio.Writer

	out      chan outFrame
	dead     chan struct{}
	dieOnce  sync.Once
	deadline time.Duration

	filters []string // network subscriptions; guarded by Broker.mu
}

// die marks the connection dead exactly once and closes the socket,
// releasing the writer goroutine, pending ack enqueuers and the serve
// loop wherever they block.
func (c *brokerConn) die() {
	c.dieOnce.Do(func() { close(c.dead) })
	c.conn.Close()
}

// enqueueAck queues a protocol acknowledgement (CONNACK, SUBACK,
// PINGRESP, PUBACK). It blocks while the queue is full — an ack is a
// delivery promise and must never be dropped — and returns false only
// when the connection died, which the writer's deadline guarantees
// happens in bounded time.
func (c *brokerConn) enqueueAck(typ byte, payload []byte) bool {
	f := makeOutFrame(typ, payload)
	select {
	case c.out <- f:
		return true
	case <-c.dead:
		outBufPool.Put(f.buf)
		return false
	}
}

// enqueueForward queues a publish forward without blocking: a slow
// subscriber sheds load by losing forwards, not by stalling routing.
func (c *brokerConn) enqueueForward(typ byte, payload []byte) bool {
	select {
	case <-c.dead:
		return false
	default:
	}
	f := makeOutFrame(typ, payload)
	select {
	case c.out <- f:
		return true
	default:
		outBufPool.Put(f.buf)
		return false
	}
}

// writeLoop is the connection's single writer: it drains the outbound
// queue, arming a fresh write deadline per frame and flushing whenever
// the queue momentarily empties. A write error (including a deadline
// expiry against a stalled reader) kills the connection.
func (c *brokerConn) writeLoop(m *brokerMetrics) {
	for {
		select {
		case f := <-c.out:
			_ = c.conn.SetWriteDeadline(time.Now().Add(c.deadline))
			err := writeFrame(c.bw, f.typ, *f.buf)
			if err == nil && len(c.out) == 0 {
				err = c.bw.Flush()
			}
			outBufPool.Put(f.buf)
			if err != nil {
				m.writeFails.Inc()
				c.die()
				return
			}
		case <-c.dead:
			return
		}
	}
}

// netSub is one entry of the copy-on-write subscriber snapshot: a
// connection and an immutable copy of its filters at snapshot time.
type netSub struct {
	c       *brokerConn
	filters []string
}

// BrokerOptions tunes a broker beyond its defaults.
type BrokerOptions struct {
	// WriteDeadline bounds every frame write to a client connection
	// (default 10s): a subscriber that stops reading is torn down
	// instead of wedging the writer.
	WriteDeadline time.Duration
	// OutQueue bounds each connection's outbound frame queue (default
	// 1024). Acks block on a full queue; subscriber forwards drop.
	OutQueue int
	// Metrics, when set, instruments the broker into this registry.
	Metrics *telemetry.Registry
}

// withDefaults resolves zero option fields.
func (o BrokerOptions) withDefaults() BrokerOptions {
	if o.WriteDeadline <= 0 {
		o.WriteDeadline = 10 * time.Second
	}
	if o.OutQueue <= 0 {
		o.OutQueue = 1024
	}
	return o
}

// Broker is the message broker at the heart of a Collect Agent: it
// accepts Pusher connections, routes published reading batches to network
// subscribers whose filters match, and delivers them to local handlers
// registered in-process (the Collect Agent's storage path). Versioned
// (v2) publishes are acknowledged with a PubAck after the message has
// been routed to every local handler, which is what makes a spooling
// client's at-least-once delivery land exactly-once in the store.
type Broker struct {
	ln   net.Listener
	opts BrokerOptions

	mu     sync.Mutex
	conns  map[*brokerConn]struct{}
	closed bool

	// subs and locals are copy-on-write snapshots rebuilt under mu on
	// every (rare) subscription change, so the per-message route path
	// reads them with one atomic load — no lock, no allocation.
	subs   atomic.Pointer[[]netSub]
	locals atomic.Pointer[[]localSub]

	wg sync.WaitGroup
	// published counts all messages routed, for the footprint experiment.
	published atomic.Uint64

	// metrics is never nil on a running broker; without a registry the
	// counters are unattached, so route stays unconditional.
	metrics *brokerMetrics
}

type localSub struct {
	filter string
	fn     Handler
}

// NewBroker starts a broker listening on addr (e.g. "127.0.0.1:0").
// An optional telemetry registry instruments the broker (frame/byte
// counters, connection gauge); at most one may be given.
func NewBroker(addr string, reg ...*telemetry.Registry) (*Broker, error) {
	var o BrokerOptions
	if len(reg) > 0 {
		o.Metrics = reg[0]
	}
	return NewBrokerOpts(addr, o)
}

// NewBrokerOpts starts a broker with explicit options.
func NewBrokerOpts(addr string, opts BrokerOptions) (*Broker, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	b := &Broker{ln: ln, opts: opts.withDefaults(), conns: make(map[*brokerConn]struct{})}
	b.metrics = newBrokerMetrics(b.opts.Metrics, b)
	b.wg.Add(1)
	go b.acceptLoop()
	return b, nil
}

// Addr returns the broker's listen address.
func (b *Broker) Addr() string { return b.ln.Addr().String() }

// Published returns the number of messages routed since start.
func (b *Broker) Published() uint64 { return b.published.Load() }

// SubscribeLocal registers an in-process handler for every message whose
// topic matches filter ('#' wildcard supported). Used by the Collect Agent
// to receive data without a network hop. See Handler for the ownership
// rules of the delivered Message.
func (b *Broker) SubscribeLocal(filter string, fn Handler) {
	b.mu.Lock()
	var locals []localSub
	if cur := b.locals.Load(); cur != nil {
		locals = append(locals, *cur...)
	}
	locals = append(locals, localSub{filter: filter, fn: fn})
	b.locals.Store(&locals)
	b.mu.Unlock()
}

// rebuildSubs regenerates the network-subscriber snapshot. Callers hold
// b.mu. Filters are copied so a later subscribe on the same connection
// cannot mutate a slice the lock-free route path is iterating.
func (b *Broker) rebuildSubs() {
	subs := make([]netSub, 0, len(b.conns))
	for c := range b.conns {
		if len(c.filters) == 0 {
			continue
		}
		subs = append(subs, netSub{c: c, filters: append([]string(nil), c.filters...)})
	}
	b.subs.Store(&subs)
}

// KillConnections abruptly closes up to n live client connections
// (all of them when n < 0) and returns how many were killed. The
// victims' serve loops observe the closed socket, deregister and tear
// down exactly as they would on a network fault — this is the chaos
// harness's connection-kill fault, not a graceful disconnect. Iteration
// order over the connection map is intentionally left to the runtime:
// chaos scenarios want arbitrary victims.
func (b *Broker) KillConnections(n int) int {
	b.mu.Lock()
	victims := make([]*brokerConn, 0, len(b.conns))
	for c := range b.conns {
		if n >= 0 && len(victims) >= n {
			break
		}
		victims = append(victims, c)
	}
	b.mu.Unlock()
	// Close outside b.mu: serve-loop teardown takes the lock to
	// deregister, and holding it here would invert the shutdown order.
	for _, c := range victims {
		c.die()
	}
	return len(victims)
}

// Close stops the broker and disconnects all clients.
func (b *Broker) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.closed = true
	conns := make([]*brokerConn, 0, len(b.conns))
	for c := range b.conns {
		conns = append(conns, c)
	}
	b.mu.Unlock()
	err := b.ln.Close()
	for _, c := range conns {
		c.die()
	}
	b.wg.Wait()
	b.metrics.closeMetrics()
	return err
}

func (b *Broker) acceptLoop() {
	defer b.wg.Done()
	for {
		conn, err := b.ln.Accept()
		if err != nil {
			return // listener closed
		}
		bc := &brokerConn{
			conn:     conn,
			bw:       bufio.NewWriterSize(conn, 4<<10),
			out:      make(chan outFrame, b.opts.OutQueue),
			dead:     make(chan struct{}),
			deadline: b.opts.WriteDeadline,
		}
		b.metrics.connsTotal.Inc()
		b.mu.Lock()
		if b.closed {
			b.mu.Unlock()
			conn.Close()
			return
		}
		b.conns[bc] = struct{}{}
		b.mu.Unlock()
		b.wg.Add(2)
		go func() {
			defer b.wg.Done()
			bc.writeLoop(b.metrics)
		}()
		go b.serveConn(bc)
	}
}

func (b *Broker) serveConn(bc *brokerConn) {
	defer b.wg.Done()
	defer func() {
		bc.die()
		b.mu.Lock()
		delete(b.conns, bc)
		if len(bc.filters) > 0 {
			b.rebuildSubs()
		}
		b.mu.Unlock()
	}()
	// Per-connection scratch, reused frame to frame: the buffered
	// reader, the frame payload buffer, the decoded readings, an intern
	// table for this publisher's (few, recurring) topics and the PubAck
	// encode buffer. The steady-state publish path allocates nothing
	// outside the pooled outbound copies.
	br := bufio.NewReaderSize(bc.conn, 32<<10)
	var (
		payloadBuf []byte
		readings   []sensor.Reading
		ackBuf     []byte
	)
	topics := make(map[string]sensor.Topic, 64)
	// PubAcks are cumulative, so while more frames from a pipelining
	// publisher sit in the read buffer the ack is only deferred: one
	// PubAck for the newest routed batch confirms the whole burst. The
	// pending ack is flushed before the loop can block on the socket
	// (and before any other ack type, keeping the reply stream ordered),
	// and at latest every maxAckDefer publishes: a publisher that keeps
	// the read buffer full must still see steady ack progress, or its
	// stall detector would kill a perfectly healthy connection.
	const maxAckDefer = 64
	var (
		pendAck            bool
		pendN              int
		pendEpoch, pendSeq uint64
	)
	flushAck := func() bool {
		if !pendAck {
			return true
		}
		pendAck = false
		pendN = 0
		ackBuf = encodePubAck(ackBuf, pendEpoch, pendSeq)
		if !bc.enqueueAck(framePubAck, ackBuf) {
			return false
		}
		b.metrics.acks.Inc()
		return true
	}
	for {
		if br.Buffered() == 0 && !flushAck() {
			return
		}
		typ, payload, err := readFrameReuse(br, &payloadBuf)
		if err != nil {
			return
		}
		b.metrics.frames.Inc()
		b.metrics.bytesIn.Add(uint64(len(payload)))
		if typ != framePublishV2 && !flushAck() {
			return
		}
		ok := true
		switch typ {
		case frameConnect:
			ok = bc.enqueueAck(frameConnAck, nil)
		case framePublish, framePublishV2:
			var epoch, seq uint64
			body := payload
			if typ == framePublishV2 {
				var off int
				var derr error
				epoch, seq, off, derr = decodePublishV2Prefix(payload)
				if derr != nil {
					b.metrics.dropped.Inc()
					log.Printf("transport: broker: dropping bad publish: %v", derr)
					continue
				}
				body = payload[off:]
			}
			msg, derr := decodePublishInto(body, readings[:0], topics)
			if derr != nil {
				b.metrics.dropped.Inc()
				log.Printf("transport: broker: dropping bad publish: %v", derr)
				continue
			}
			msg.Epoch, msg.Seq = epoch, seq
			readings = msg.Readings[:0]
			b.route(msg, body)
			if typ == framePublishV2 {
				// Ack strictly after route returned: every local
				// handler (the agent's ingest path) has accepted the
				// batch, so an acked batch can no longer be lost by
				// anything short of a storage bug. The ack itself is
				// deferred (see flushAck): a later batch's ack covers
				// this one cumulatively.
				pendAck, pendEpoch, pendSeq = true, epoch, seq
				if pendN++; pendN >= maxAckDefer && !flushAck() {
					return
				}
			}
		case frameSubscribe:
			filter, derr := decodeString(payload)
			if derr != nil {
				return
			}
			b.mu.Lock()
			bc.filters = append(bc.filters, filter)
			b.rebuildSubs()
			b.mu.Unlock()
			ok = bc.enqueueAck(frameSubAck, nil)
		case framePingReq:
			ok = bc.enqueueAck(framePingResp, nil)
		case frameDisconnect:
			return
		}
		if !ok {
			return
		}
	}
}

// route delivers a message to local handlers and matching subscribers.
// The payload is the unversioned (v1) encoding — for a v2 publish the
// caller already sliced the delivery prefix off — so subscribers of any
// protocol vintage can decode the forward. The subscriber and
// local-handler snapshots are copy-on-write, so the steady-state
// routing path takes no lock; forwards copy into pooled buffers to
// cross into each subscriber's writer goroutine.
func (b *Broker) route(msg Message, payload []byte) {
	b.published.Add(1)
	b.metrics.routed.Inc()
	b.metrics.readings.Add(uint64(len(msg.Readings)))
	if locals := b.locals.Load(); locals != nil {
		for _, ls := range *locals {
			if sensor.MatchFilter(ls.filter, msg.Topic) {
				ls.fn(msg)
			}
		}
	}
	subs := b.subs.Load()
	if subs == nil {
		return
	}
	for _, s := range *subs {
		for _, f := range s.filters {
			if !sensor.MatchFilter(f, msg.Topic) {
				continue
			}
			if s.c.enqueueForward(framePublish, payload) {
				b.metrics.forwarded.Inc()
				b.metrics.bytesOut.Add(uint64(len(payload)))
			} else {
				// Slow reader: its queue is full (or it is dead).
				// Dropping the forward here is the load-shedding
				// contract; acks are never dropped.
				b.metrics.slowDrops.Inc()
			}
			break
		}
	}
}
