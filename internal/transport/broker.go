package transport

import (
	"bufio"
	"log"
	"net"
	"sync"
	"sync/atomic"

	"github.com/dcdb/wintermute/internal/sensor"
	"github.com/dcdb/wintermute/internal/telemetry"
)

// Handler consumes published messages delivered to a subscription.
//
// Broker-side local handlers receive a Message whose Readings slice is
// owned by the broker and reused for the next frame: it is valid only
// for the duration of the call. A handler that hands the batch to
// another goroutine (or stores it) must copy it first. Client-side
// subscription handlers receive a private slice and may retain it.
type Handler func(Message)

// brokerConn is one client connection's broker-side state. Every frame
// written to the connection — acks from the serve loop, publishes
// forwarded by route — goes through writeFrame, whose mutex keeps
// frames whole when both paths write concurrently. The bufio writer
// coalesces a frame's header and payload into a single syscall.
type brokerConn struct {
	conn net.Conn

	writeMu sync.Mutex
	bw      *bufio.Writer

	filters []string // network subscriptions; guarded by Broker.mu
}

// writeFrame emits one whole frame under the connection's write lock,
// flushed before the lock is released so a concurrent writer can never
// interleave mid-frame.
func (c *brokerConn) writeFrame(typ byte, payload []byte) error {
	c.writeMu.Lock()
	err := writeFrame(c.bw, typ, payload)
	if err == nil {
		err = c.bw.Flush()
	}
	c.writeMu.Unlock()
	return err
}

// netSub is one entry of the copy-on-write subscriber snapshot: a
// connection and an immutable copy of its filters at snapshot time.
type netSub struct {
	c       *brokerConn
	filters []string
}

// Broker is the message broker at the heart of a Collect Agent: it
// accepts Pusher connections, routes published reading batches to network
// subscribers whose filters match, and delivers them to local handlers
// registered in-process (the Collect Agent's storage path).
//
// Lock hierarchy, machine-checked by cmd/invlint: the broker lock is
// taken before any per-connection write lock, never the reverse.
//
//lint:lockorder Broker.mu < brokerConn.writeMu
type Broker struct {
	ln net.Listener

	mu     sync.Mutex
	conns  map[*brokerConn]struct{}
	closed bool

	// subs and locals are copy-on-write snapshots rebuilt under mu on
	// every (rare) subscription change, so the per-message route path
	// reads them with one atomic load — no lock, no allocation.
	subs   atomic.Pointer[[]netSub]
	locals atomic.Pointer[[]localSub]

	wg sync.WaitGroup
	// published counts all messages routed, for the footprint experiment.
	published atomic.Uint64

	// metrics is never nil on a running broker; without a registry the
	// counters are unattached, so route stays unconditional.
	metrics *brokerMetrics
}

type localSub struct {
	filter string
	fn     Handler
}

// NewBroker starts a broker listening on addr (e.g. "127.0.0.1:0").
// An optional telemetry registry instruments the broker (frame/byte
// counters, connection gauge); at most one may be given.
func NewBroker(addr string, reg ...*telemetry.Registry) (*Broker, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	b := &Broker{ln: ln, conns: make(map[*brokerConn]struct{})}
	var r *telemetry.Registry
	if len(reg) > 0 {
		r = reg[0]
	}
	b.metrics = newBrokerMetrics(r, b)
	b.wg.Add(1)
	go b.acceptLoop()
	return b, nil
}

// Addr returns the broker's listen address.
func (b *Broker) Addr() string { return b.ln.Addr().String() }

// Published returns the number of messages routed since start.
func (b *Broker) Published() uint64 { return b.published.Load() }

// SubscribeLocal registers an in-process handler for every message whose
// topic matches filter ('#' wildcard supported). Used by the Collect Agent
// to receive data without a network hop. See Handler for the ownership
// rules of the delivered Message.
func (b *Broker) SubscribeLocal(filter string, fn Handler) {
	b.mu.Lock()
	var locals []localSub
	if cur := b.locals.Load(); cur != nil {
		locals = append(locals, *cur...)
	}
	locals = append(locals, localSub{filter: filter, fn: fn})
	b.locals.Store(&locals)
	b.mu.Unlock()
}

// rebuildSubs regenerates the network-subscriber snapshot. Callers hold
// b.mu. Filters are copied so a later subscribe on the same connection
// cannot mutate a slice the lock-free route path is iterating.
func (b *Broker) rebuildSubs() {
	subs := make([]netSub, 0, len(b.conns))
	for c := range b.conns {
		if len(c.filters) == 0 {
			continue
		}
		subs = append(subs, netSub{c: c, filters: append([]string(nil), c.filters...)})
	}
	b.subs.Store(&subs)
}

// KillConnections abruptly closes up to n live client connections
// (all of them when n < 0) and returns how many were killed. The
// victims' serve loops observe the closed socket, deregister and tear
// down exactly as they would on a network fault — this is the chaos
// harness's connection-kill fault, not a graceful disconnect. Iteration
// order over the connection map is intentionally left to the runtime:
// chaos scenarios want arbitrary victims.
func (b *Broker) KillConnections(n int) int {
	b.mu.Lock()
	victims := make([]*brokerConn, 0, len(b.conns))
	for c := range b.conns {
		if n >= 0 && len(victims) >= n {
			break
		}
		victims = append(victims, c)
	}
	b.mu.Unlock()
	// Close outside b.mu: serve-loop teardown takes the lock to
	// deregister, and holding it here would invert the shutdown order.
	for _, c := range victims {
		c.conn.Close()
	}
	return len(victims)
}

// Close stops the broker and disconnects all clients.
func (b *Broker) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.closed = true
	conns := make([]*brokerConn, 0, len(b.conns))
	for c := range b.conns {
		conns = append(conns, c)
	}
	b.mu.Unlock()
	err := b.ln.Close()
	for _, c := range conns {
		c.conn.Close()
	}
	b.wg.Wait()
	b.metrics.closeMetrics()
	return err
}

func (b *Broker) acceptLoop() {
	defer b.wg.Done()
	for {
		conn, err := b.ln.Accept()
		if err != nil {
			return // listener closed
		}
		bc := &brokerConn{conn: conn, bw: bufio.NewWriterSize(conn, 4<<10)}
		b.metrics.connsTotal.Inc()
		b.mu.Lock()
		if b.closed {
			b.mu.Unlock()
			conn.Close()
			return
		}
		b.conns[bc] = struct{}{}
		b.mu.Unlock()
		b.wg.Add(1)
		go b.serveConn(bc)
	}
}

func (b *Broker) serveConn(bc *brokerConn) {
	defer b.wg.Done()
	defer func() {
		b.mu.Lock()
		delete(b.conns, bc)
		if len(bc.filters) > 0 {
			b.rebuildSubs()
		}
		b.mu.Unlock()
		bc.conn.Close()
	}()
	// Per-connection scratch, reused frame to frame: the buffered
	// reader, the frame payload buffer, the decoded readings and an
	// intern table for this publisher's (few, recurring) topics. The
	// steady-state publish path allocates nothing.
	br := bufio.NewReaderSize(bc.conn, 32<<10)
	var (
		payloadBuf []byte
		readings   []sensor.Reading
	)
	topics := make(map[string]sensor.Topic, 64)
	for {
		typ, payload, err := readFrameReuse(br, &payloadBuf)
		if err != nil {
			return
		}
		b.metrics.frames.Inc()
		b.metrics.bytesIn.Add(uint64(len(payload)))
		switch typ {
		case frameConnect:
			err = bc.writeFrame(frameConnAck, nil)
		case framePublish:
			msg, derr := decodePublishInto(payload, readings[:0], topics)
			if derr != nil {
				b.metrics.dropped.Inc()
				log.Printf("transport: broker: dropping bad publish: %v", derr)
				continue
			}
			readings = msg.Readings[:0]
			b.route(msg, payload)
		case frameSubscribe:
			filter, derr := decodeString(payload)
			if derr != nil {
				return
			}
			b.mu.Lock()
			bc.filters = append(bc.filters, filter)
			b.rebuildSubs()
			b.mu.Unlock()
			err = bc.writeFrame(frameSubAck, nil)
		case framePingReq:
			err = bc.writeFrame(framePingResp, nil)
		case frameDisconnect:
			return
		}
		if err != nil {
			return
		}
	}
}

// route delivers a message to local handlers and matching subscribers.
// The already-encoded payload is reused for network forwarding. The
// subscriber and local-handler snapshots are copy-on-write, so the
// steady-state routing path takes no lock and performs no allocation.
func (b *Broker) route(msg Message, payload []byte) {
	b.published.Add(1)
	b.metrics.routed.Inc()
	b.metrics.readings.Add(uint64(len(msg.Readings)))
	if locals := b.locals.Load(); locals != nil {
		for _, ls := range *locals {
			if sensor.MatchFilter(ls.filter, msg.Topic) {
				ls.fn(msg)
			}
		}
	}
	subs := b.subs.Load()
	if subs == nil {
		return
	}
	for _, s := range *subs {
		for _, f := range s.filters {
			if !sensor.MatchFilter(f, msg.Topic) {
				continue
			}
			// Best effort: a slow or dead subscriber must not stall
			// routing for others; errors surface as connection teardown
			// on read.
			if err := s.c.writeFrame(framePublish, payload); err != nil {
				b.metrics.writeFails.Inc()
				s.c.conn.Close()
			} else {
				b.metrics.forwarded.Inc()
				b.metrics.bytesOut.Add(uint64(len(payload)))
			}
			break
		}
	}
}
