package transport

import (
	"github.com/dcdb/wintermute/internal/telemetry"
)

// brokerMetrics is the broker's telemetry bundle. Always non-nil on a
// running broker: with no registry the metrics are minted from a nil
// *telemetry.Registry and count into nowhere, so the per-frame route
// path stays branch-free. Connection count is a callback gauge over
// the conns map, closed when the broker closes.
type brokerMetrics struct {
	frames     *telemetry.Counter // frames read off client connections
	routed     *telemetry.Counter // publish messages routed
	readings   *telemetry.Counter // readings carried by routed messages
	dropped    *telemetry.Counter // malformed publishes dropped
	forwarded  *telemetry.Counter // publishes forwarded to network subscribers
	writeFails *telemetry.Counter // connection write failures (connection torn down)
	bytesIn    *telemetry.Counter // payload bytes received
	bytesOut   *telemetry.Counter // payload bytes forwarded to subscribers
	connsTotal *telemetry.Counter // connections accepted since start
	acks       *telemetry.Counter // PubAcks sent for v2 publishes
	slowDrops  *telemetry.Counter // forwards dropped on full outbound queues

	handles []*telemetry.FuncHandle
}

func newBrokerMetrics(reg *telemetry.Registry, b *Broker) *brokerMetrics {
	m := &brokerMetrics{
		frames: reg.Counter("dcdb_broker_frames_total",
			"Frames read from client connections."),
		routed: reg.Counter("dcdb_broker_messages_routed_total",
			"Publish messages routed to local handlers and subscribers."),
		readings: reg.Counter("dcdb_broker_readings_total",
			"Sensor readings carried by routed publish messages."),
		dropped: reg.Counter("dcdb_broker_publishes_dropped_total",
			"Malformed publish frames dropped before routing."),
		forwarded: reg.Counter("dcdb_broker_messages_forwarded_total",
			"Publish messages forwarded to matching network subscribers."),
		writeFails: reg.Counter("dcdb_broker_subscriber_write_failures_total",
			"Write errors (including write-deadline expiries) that tore down a connection."),
		acks: reg.Counter("dcdb_broker_pubacks_total",
			"PubAck frames sent acknowledging versioned publishes."),
		slowDrops: reg.Counter("dcdb_broker_slow_reader_drops_total",
			"Subscriber forwards dropped because the connection's outbound queue was full."),
		bytesIn: reg.Counter("dcdb_broker_bytes_received_total",
			"Frame payload bytes received from clients."),
		bytesOut: reg.Counter("dcdb_broker_bytes_forwarded_total",
			"Frame payload bytes forwarded to network subscribers."),
		connsTotal: reg.Counter("dcdb_broker_connections_total",
			"Client connections accepted since start."),
	}
	if reg != nil && b != nil {
		m.handles = append(m.handles, reg.GaugeFunc("dcdb_broker_connections",
			"Currently open client connections.",
			func() float64 {
				b.mu.Lock()
				n := len(b.conns)
				b.mu.Unlock()
				return float64(n)
			}))
	}
	return m
}

func (m *brokerMetrics) closeMetrics() {
	for _, h := range m.handles {
		h.Close()
	}
	m.handles = nil
}
