package transport

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/dcdb/wintermute/internal/sensor"
)

// TestSubscriberFramesNeverInterleave regression-tests the broker
// frame-write race: route used to write framePublish to a subscriber's
// connection without the mutex serveConn held for acks, so a publish
// could interleave mid-frame with a SubAck or PingResp and desync the
// subscriber's stream. Here one subscriber pings continuously (acks on
// its conn) while a publisher floods matching messages (publishes on
// the same conn): every ping must succeed and every message must arrive
// intact.
func TestSubscriberFramesNeverInterleave(t *testing.T) {
	b, err := NewBroker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	sub, err := Dial(b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	var received atomic.Int64
	if err := sub.Subscribe("/race/#", func(m Message) {
		if len(m.Readings) != 3 || m.Readings[0].Value != 1 {
			t.Errorf("corrupted delivery: %+v", m)
		}
		received.Add(1)
	}); err != nil {
		t.Fatal(err)
	}

	const msgs = 400
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // continuous acks on the subscriber conn
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if err := sub.Ping(); err != nil {
				t.Errorf("ping failed mid-flood (frame stream desynced?): %v", err)
				return
			}
		}
	}()
	// A second subscription mid-flood exercises the SubAck path too.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if err := sub.Subscribe(fmt.Sprintf("/other%d/#", i), func(Message) {}); err != nil {
				t.Errorf("subscribe failed mid-flood: %v", err)
				return
			}
		}
	}()

	pub, err := Dial(b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	batch := []sensor.Reading{{Value: 1, Time: 1}, {Value: 2, Time: 2}, {Value: 3, Time: 3}}
	for i := 0; i < msgs; i++ {
		if err := pub.Publish("/race/n1/power", batch); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for received.Load() < msgs {
		if time.Now().After(deadline) {
			t.Fatalf("received %d of %d messages", received.Load(), msgs)
		}
		time.Sleep(time.Millisecond)
	}
	close(done)
	wg.Wait()
}

// TestRouteSteadyStateAllocFree pins the satellite guarantee that
// steady-state routing (decode + local delivery + subscriber matching)
// performs no per-message allocation once a connection's topics and
// batch shape have been seen.
func TestRouteSteadyStateAllocFree(t *testing.T) {
	b := &Broker{conns: make(map[*brokerConn]struct{})}
	b.metrics = newBrokerMetrics(nil, nil)
	b.SubscribeLocal("/a/#", func(Message) {})
	payload := EncodePublish(Message{
		Topic:    "/a/n1/power",
		Readings: []sensor.Reading{{Value: 1, Time: 1}, {Value: 2, Time: 2}},
	})
	var readings []sensor.Reading
	topics := make(map[string]sensor.Topic)
	warm := func() {
		msg, err := decodePublishInto(payload, readings[:0], topics)
		if err != nil {
			t.Fatal(err)
		}
		readings = msg.Readings[:0]
		b.route(msg, payload)
	}
	warm()
	if allocs := testing.AllocsPerRun(200, warm); allocs > 0 {
		t.Fatalf("steady-state decode+route allocates %.1f times per message", allocs)
	}
}
