package transport

import (
	"fmt"
	"io"
	"net"
	"time"
)

// NewStalledSubscriber connects to the broker at addr, subscribes to
// filter, and then never reads from the connection again — the
// worst-case slow reader. The chaos harness uses it to fill one broker
// connection's bounded outbound queue and exercise the
// drop-with-counter and write-deadline degradation paths. Close the
// returned connection to end the stall.
func NewStalledSubscriber(addr, filter string) (io.Closer, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	if err := stalledHandshake(conn, filter); err != nil {
		conn.Close()
		return nil, fmt.Errorf("transport: stalled subscriber handshake: %w", err)
	}
	return conn, nil
}

// stalledHandshake performs CONNECT and SUBSCRIBE under one deadline;
// after it returns the caller stops reading forever.
func stalledHandshake(conn net.Conn, filter string) error {
	if err := conn.SetDeadline(time.Now().Add(5 * time.Second)); err != nil {
		return err
	}
	defer conn.SetDeadline(time.Time{})
	if err := writeFrame(conn, frameConnect, nil); err != nil {
		return err
	}
	typ, _, err := readFrame(conn)
	if err != nil {
		return err
	}
	if typ != frameConnAck {
		return ErrUnexpectedAck
	}
	if err := writeFrame(conn, frameSubscribe, encodeString(filter)); err != nil {
		return err
	}
	typ, _, err = readFrame(conn)
	if err != nil {
		return err
	}
	if typ != frameSubAck {
		return ErrUnexpectedAck
	}
	return nil
}
