package transport

import (
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/dcdb/wintermute/internal/sensor"
	"github.com/dcdb/wintermute/internal/telemetry"
)

// recorder collects delivered (epoch, seq) pairs per topic from a
// broker-side local subscription.
type recorder struct {
	mu     sync.Mutex
	seqs   map[sensor.Topic][]uint64
	epochs map[sensor.Topic][]uint64
	values map[sensor.Topic][]float64
}

func newRecorder() *recorder {
	return &recorder{
		seqs:   make(map[sensor.Topic][]uint64),
		epochs: make(map[sensor.Topic][]uint64),
		values: make(map[sensor.Topic][]float64),
	}
}

func (r *recorder) handle(m Message) {
	r.mu.Lock()
	r.seqs[m.Topic] = append(r.seqs[m.Topic], m.Seq)
	r.epochs[m.Topic] = append(r.epochs[m.Topic], m.Epoch)
	if len(m.Readings) > 0 {
		r.values[m.Topic] = append(r.values[m.Topic], m.Readings[0].Value)
	}
	r.mu.Unlock()
}

func (r *recorder) count(topic sensor.Topic) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.seqs[topic])
}

// TestReliablePublishAckDrain: a spooling client's batches are all
// acknowledged, Close drains cleanly, and the broker counted the acks.
func TestReliablePublishAckDrain(t *testing.T) {
	reg := telemetry.NewRegistry()
	b, err := NewBrokerOpts("127.0.0.1:0", BrokerOptions{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	rec := newRecorder()
	b.SubscribeLocal("#", rec.handle)

	c, err := DialOptions(b.Addr(), Options{SpoolBatches: 8})
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := 0; i < n; i++ {
		if err := c.Publish("/rel/a", []sensor.Reading{{Value: float64(i), Time: int64(i)}}); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatalf("close did not drain: %v", err)
	}
	st := c.Stats()
	if st.Acked != n {
		t.Fatalf("acked %d batches, want %d", st.Acked, n)
	}
	if st.Published != n {
		t.Fatalf("published %d batches, want %d", st.Published, n)
	}
	if got := rec.count("/rel/a"); got != n {
		t.Fatalf("delivered %d batches, want %d", got, n)
	}
	// Acks are cumulative and the broker coalesces them across a
	// pipelined burst, so the frame count is 1..n — never more.
	if v, _ := reg.Value("dcdb_broker_pubacks_total"); v < 1 || uint64(v) > n {
		t.Fatalf("broker sent %v ack frames, want between 1 and %d", v, n)
	}
}

// TestReliableRedeliveryAfterKill: killing the connection mid-stream
// loses nothing — unacked batches are redelivered after the automatic
// reconnect, and per-topic sequence numbers stay monotonic within each
// delivery attempt's order (duplicates allowed, gaps not).
func TestReliableRedeliveryAfterKill(t *testing.T) {
	b, err := NewBroker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	rec := newRecorder()
	b.SubscribeLocal("#", rec.handle)

	c, err := DialOptions(b.Addr(), Options{
		SpoolBatches: 64,
		RetryMin:     5 * time.Millisecond,
		AckTimeout:   2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	for i := 0; i < n; i++ {
		if err := c.Publish("/rel/kill", []sensor.Reading{{Value: float64(i), Time: int64(i)}}); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
		if i == 40 || i == 120 {
			b.KillConnections(-1)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatalf("close did not drain: %v", err)
	}
	if c.Stats().Reconnects == 0 {
		t.Fatal("expected at least one reconnect after kills")
	}
	// Every sequence must be delivered at least once.
	rec.mu.Lock()
	defer rec.mu.Unlock()
	seen := make(map[uint64]bool)
	var maxSeen uint64
	for _, s := range rec.seqs["/rel/kill"] {
		seen[s] = true
		if s > maxSeen {
			maxSeen = s
		}
	}
	missing := 0
	for s := uint64(1); s <= maxSeen; s++ {
		if !seen[s] {
			missing++
		}
	}
	if missing > 0 {
		t.Fatalf("%d of %d sequences never delivered", missing, maxSeen)
	}
	if len(seen) != n {
		t.Fatalf("delivered %d distinct sequences, want %d", len(seen), n)
	}
}

// TestReliableDiskSpoolRestart: batches spooled while the broker is
// down survive Close via the disk spool, and a restarted client (same
// spool directory) replays them in the original order.
func TestReliableDiskSpoolRestart(t *testing.T) {
	dir := t.TempDir()
	b, err := NewBroker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := b.Addr()

	c, err := DialOptions(addr, Options{
		SpoolBatches: 4,
		SpoolDir:     dir,
		RetryMin:     5 * time.Millisecond,
		DrainTimeout: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Take the broker away, then publish: 4 batches stay in memory, the
	// rest overflow to disk.
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	const n = 20
	for i := 0; i < n; i++ {
		if err := c.Publish("/rel/disk", []sensor.Reading{{Value: float64(i), Time: int64(i)}}); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}
	if st := c.Stats(); st.SpoolDisk == 0 {
		t.Fatalf("expected disk overflow, stats %+v", st)
	}
	// Close cannot drain (no broker): everything must persist, no error.
	if err := c.Close(); err != nil {
		t.Fatalf("close with disk spool: %v", err)
	}

	// Restart broker and client: the spool replays in order.
	b2, err := NewBroker(addr)
	if err != nil {
		t.Fatalf("rebinding broker addr: %v", err)
	}
	defer b2.Close()
	rec := newRecorder()
	b2.SubscribeLocal("#", rec.handle)
	c2, err := DialOptions(addr, Options{
		SpoolBatches: 4,
		SpoolDir:     dir,
		RetryMin:     5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.Close(); err != nil { // Close drains the replayed spool
		t.Fatalf("close after replay: %v", err)
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	vals := rec.values["/rel/disk"]
	if len(vals) != n {
		t.Fatalf("replayed %d batches, want %d", len(vals), n)
	}
	for i, v := range vals {
		if v != float64(i) {
			t.Fatalf("replay out of order: batch %d has value %v", i, v)
		}
	}
	seqs := rec.seqs["/rel/disk"]
	for i := 1; i < len(seqs); i++ {
		if seqs[i] <= seqs[i-1] {
			t.Fatalf("replayed sequences not increasing: %v", seqs)
		}
	}
}

// TestReliableCloseWithoutDiskReportsLoss: a drain that cannot finish
// and has no disk spool to fall back on must say so.
func TestReliableCloseWithoutDiskReportsLoss(t *testing.T) {
	b, err := NewBroker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := DialOptions(b.Addr(), Options{
		SpoolBatches: 8,
		RetryMin:     5 * time.Millisecond,
		DrainTimeout: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := c.Publish("/rel/lost", []sensor.Reading{{Value: 1, Time: int64(i)}}); err != nil {
			t.Fatalf("publish: %v", err)
		}
	}
	if err := c.Close(); !errors.Is(err, ErrSpoolNotDrained) {
		t.Fatalf("close error = %v, want ErrSpoolNotDrained", err)
	}
}

// TestReliableBackpressure: Publish blocks at the in-memory high-water
// mark (no disk spool) instead of growing without bound, and unblocks
// when acks free space.
func TestReliableBackpressure(t *testing.T) {
	b, err := NewBroker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	c, err := DialOptions(b.Addr(), Options{SpoolBatches: 2, RetryMin: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			if err := c.Publish("/rel/bp", []sensor.Reading{{Value: float64(i), Time: int64(i)}}); err != nil {
				t.Errorf("publish: %v", err)
				return
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("publisher wedged under backpressure")
	}
}

// TestAckErrorTypes pins the typed handshake errors: a broker that
// never answers yields ErrAckTimeout, one that answers with the wrong
// frame type yields ErrUnexpectedAck.
func TestAckErrorTypes(t *testing.T) {
	// Silent peer: accepts and never writes.
	silent, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer silent.Close()
	go func() {
		for {
			conn, err := silent.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
		}
	}()
	if _, err := DialOptions(silent.Addr().String(), Options{AckTimeout: 50 * time.Millisecond}); !errors.Is(err, ErrAckTimeout) {
		t.Fatalf("silent broker: err = %v, want ErrAckTimeout", err)
	}

	// Confused peer: answers CONNECT with a SubAck.
	confused, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer confused.Close()
	go func() {
		for {
			conn, err := confused.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				var buf []byte
				if _, _, err := readFrameReuse(conn, &buf); err != nil {
					return
				}
				_ = writeFrame(conn, frameSubAck, nil)
				time.Sleep(time.Second)
			}(conn)
		}
	}()
	if _, err := DialOptions(confused.Addr().String(), Options{AckTimeout: time.Second}); !errors.Is(err, ErrUnexpectedAck) {
		t.Fatalf("confused broker: err = %v, want ErrUnexpectedAck", err)
	}
	// The reliable handshake path reports the same typed error.
	if _, err := DialOptions(confused.Addr().String(), Options{AckTimeout: time.Second, SpoolBatches: 4}); !errors.Is(err, ErrUnexpectedAck) {
		t.Fatalf("confused broker (reliable): err = %v, want ErrUnexpectedAck", err)
	}
}

// TestSlowReaderShedsLoad: a subscriber that stops reading fills its
// bounded outbound queue; forwards to it drop with a counter while
// publishing and local delivery continue unimpeded, and the write
// deadline eventually tears the stalled connection down.
func TestSlowReaderShedsLoad(t *testing.T) {
	reg := telemetry.NewRegistry()
	b, err := NewBrokerOpts("127.0.0.1:0", BrokerOptions{
		Metrics:       reg,
		OutQueue:      8,
		WriteDeadline: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	var delivered int
	var mu sync.Mutex
	b.SubscribeLocal("#", func(Message) { mu.Lock(); delivered++; mu.Unlock() })

	// Raw subscriber that subscribes to everything and then goes silent.
	conn, err := net.Dial("tcp", b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := writeFrame(conn, frameConnect, nil); err != nil {
		t.Fatal(err)
	}
	var buf []byte
	if typ, _, err := readFrameReuse(conn, &buf); err != nil || typ != frameConnAck {
		t.Fatalf("connack: %v %d", err, typ)
	}
	if err := writeFrame(conn, frameSubscribe, encodeString("#")); err != nil {
		t.Fatal(err)
	}
	if typ, _, err := readFrameReuse(conn, &buf); err != nil || typ != frameSubAck {
		t.Fatalf("suback: %v %d", err, typ)
	}
	// From here on the subscriber never reads again.

	pub, err := Dial(b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	big := make([]sensor.Reading, 256) // large frames fill socket buffers fast
	for i := range big {
		big[i] = sensor.Reading{Value: 1, Time: int64(i)}
	}
	deadline := time.Now().Add(10 * time.Second)
	for i := 0; ; i++ {
		if err := pub.Publish(sensor.Topic(fmt.Sprintf("/slow/t%d", i%4)), big); err != nil {
			t.Fatalf("publish: %v", err)
		}
		if v, _ := reg.Value("dcdb_broker_slow_reader_drops_total"); v > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no slow-reader drops recorded")
		}
	}
	mu.Lock()
	got := delivered
	mu.Unlock()
	if got == 0 {
		t.Fatal("local delivery stalled behind the slow reader")
	}
}

// TestReliableCloseDuringRedial pins the shutdown race where Close runs
// its connection teardown while the sender is still inside a redial:
// the freshly-dialed connection must be abandoned, not registered, or
// its receiver goroutine outlives Close and the drain wedges forever.
// A hand-rolled broker makes the window deterministic: it stalls the
// redial's CONNACK until Close has already torn down (nil) r.conn.
func TestReliableCloseDuringRedial(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	handshook := make(chan struct{})
	release := make(chan struct{})
	go func() {
		// First session: full handshake, ack the one publish, then die.
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		if typ, _, err := readFrame(conn); err != nil || typ != frameConnect {
			t.Errorf("session 1: want CONNECT, got type %d err %v", typ, err)
			return
		}
		_ = writeFrame(conn, frameConnAck, nil)
		typ, payload, err := readFrame(conn)
		if err != nil || typ != framePublishV2 {
			t.Errorf("session 1: want PUBLISHv2, got type %d err %v", typ, err)
			return
		}
		epoch, seq, _, err := decodePublishV2Prefix(payload)
		if err != nil {
			t.Errorf("session 1: decoding publish: %v", err)
			return
		}
		_ = writeFrame(conn, framePubAck, encodePubAck(nil, epoch, seq))
		time.Sleep(20 * time.Millisecond) // let the ack land and drain the spool
		conn.Close()

		// Second session (the redial): swallow CONNECT, then hold the
		// CONNACK until the test says Close's teardown has passed.
		conn2, err := ln.Accept()
		if err != nil {
			return
		}
		if typ, _, err := readFrame(conn2); err != nil || typ != frameConnect {
			t.Errorf("session 2: want CONNECT, got type %d err %v", typ, err)
			return
		}
		close(handshook)
		<-release
		_ = writeFrame(conn2, frameConnAck, nil)
		// Leave conn2 open: only the client may close it now.
	}()

	c, err := DialOptions(ln.Addr().String(), Options{
		SpoolBatches: 8,
		RetryMin:     time.Millisecond,
		RetryMax:     2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Publish("/rel/redial", []sensor.Reading{{Value: 1, Time: 1}}); err != nil {
		t.Fatalf("publish: %v", err)
	}
	<-handshook // the sender is now parked inside dialOnce's handshake
	done := make(chan error, 1)
	go func() { done <- c.Close() }()
	// Close drains instantly (the spool is empty) and tears down a nil
	// r.conn; give it time to get there before the dial completes.
	time.Sleep(50 * time.Millisecond)
	close(release)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("close: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Close hung: redial registered its connection after teardown (orphaned receiver)")
	}
}

// TestDiskSpoolScanSurvivesUnboundedRecords: Close's persistRemainder
// writes via appendUnbounded, deliberately ignoring SpoolMaxBytes, so
// the next open's scan must not mistake an over-cap record for a torn
// tail — that would silently discard it and every valid record after
// it on restart replay.
func TestDiskSpoolScanSurvivesUnboundedRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pusher.spool")
	d, err := openDiskSpool(path, 64) // cap far below the record written below
	if err != nil {
		t.Fatal(err)
	}
	big := EncodePublishV2(Message{
		Topic: "/spool/big", Readings: make([]sensor.Reading, 16), Epoch: 7, Seq: 1,
	})
	if int64(len(big)) <= d.max {
		t.Fatalf("test needs a record above the %d-byte cap, got %d bytes", d.max, len(big))
	}
	if err := d.append(big); err == nil {
		t.Fatal("capped append above SpoolMaxBytes must fail")
	}
	if err := d.appendUnbounded(big); err != nil {
		t.Fatal(err)
	}
	small := EncodePublishV2(Message{
		Topic: "/spool/small", Readings: []sensor.Reading{{Value: 1, Time: 1}}, Epoch: 7, Seq: 2,
	})
	if err := d.appendUnbounded(small); err != nil {
		t.Fatal(err)
	}
	if err := d.close(); err != nil {
		t.Fatal(err)
	}

	d2, err := openDiskSpool(path, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.close()
	if d2.pending != 2 {
		t.Fatalf("scan found %d records, want 2 (over-cap record treated as torn tail)", d2.pending)
	}
	loaded, err := d2.load(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 2 || loaded[0].seq != 1 || loaded[1].seq != 2 {
		t.Fatalf("loaded records out of order or missing: %+v", loaded)
	}
}

// TestPublishNoReorderAroundFullDisk: concurrent publishers racing a
// repeatedly-full overflow file must never let a batch enter the memory
// queue ahead of a lower-sequence disk-resident batch. Small batches
// fit the tiny disk cap, large ones never do (their publishers take the
// blocked path); under the old two-stage wait a blocked publisher could
// enqueue to memory after a smaller batch landed on disk, delivering
// sequences out of order — which the agent's high-water dedup would
// drop on replay despite the broker acking them.
func TestPublishNoReorderAroundFullDisk(t *testing.T) {
	b, err := NewBroker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	rec := newRecorder()
	b.SubscribeLocal("#", rec.handle)

	c, err := DialOptions(b.Addr(), Options{
		SpoolBatches:  1,
		SpoolDir:      t.TempDir(),
		SpoolMaxBytes: 200,
		RetryMin:      5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	big := make([]sensor.Reading, 64) // encodes past SpoolMaxBytes: never fits on disk
	for i := range big {
		big[i] = sensor.Reading{Value: 1, Time: int64(i)}
	}
	const perWorker = 150
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				rs := []sensor.Reading{{Value: float64(i), Time: int64(i)}}
				if w == 1 {
					rs = big
				}
				if err := c.Publish("/rel/order", rs); err != nil {
					t.Errorf("worker %d publish %d: %v", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := c.Close(); err != nil {
		t.Fatalf("close did not drain: %v", err)
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	seqs := rec.seqs["/rel/order"]
	if len(seqs) != 2*perWorker {
		t.Fatalf("delivered %d batches, want %d", len(seqs), 2*perWorker)
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i] <= seqs[i-1] {
			t.Fatalf("sequence inversion at delivery %d: %d after %d", i, seqs[i], seqs[i-1])
		}
	}
}

// TestControlFramesDoNotCorruptPublishStream: Subscribe and Ping frames
// share the connection with the reliable sender's vectored bursts, so
// both must serialize on the client write lock — a control frame landing
// mid-burst would desync the broker's framing and kill the connection.
// A clean run delivers every batch in order with zero reconnects.
func TestControlFramesDoNotCorruptPublishStream(t *testing.T) {
	b, err := NewBroker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	rec := newRecorder()
	b.SubscribeLocal("#", rec.handle)

	c, err := DialOptions(b.Addr(), Options{SpoolBatches: 64, RetryMin: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_ = c.Ping()
			_ = c.Subscribe(fmt.Sprintf("/ctl/none%d", i), func(Message) {})
		}
	}()
	const n = 1000
	batch := make([]sensor.Reading, 16)
	for i := 0; i < n; i++ {
		for j := range batch {
			batch[j] = sensor.Reading{Value: float64(i), Time: int64(j)}
		}
		if err := c.Publish("/rel/ctl", batch); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
	if err := c.Close(); err != nil {
		t.Fatalf("close did not drain: %v", err)
	}
	if rc := c.Stats().Reconnects; rc != 0 {
		t.Fatalf("%d reconnects during control-frame traffic: stream corrupted", rc)
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	seqs := rec.seqs["/rel/ctl"]
	if len(seqs) != n {
		t.Fatalf("delivered %d batches, want %d", len(seqs), n)
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i] <= seqs[i-1] {
			t.Fatalf("sequence inversion at delivery %d: %d after %d", i, seqs[i], seqs[i-1])
		}
	}
}
