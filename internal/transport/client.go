package transport

import (
	"errors"
	"net"
	"sync"
	"time"

	"github.com/dcdb/wintermute/internal/sensor"
)

// ErrClosed reports use of a closed client.
var ErrClosed = errors.New("transport: client closed")

// Client is the Pusher-side MQTT-style client: it publishes reading
// batches to the broker and can subscribe to topic filters.
type Client struct {
	conn net.Conn

	writeMu sync.Mutex

	mu       sync.Mutex
	subs     []localSub
	closed   bool
	pingResp chan struct{}
	ackCh    chan byte

	wg sync.WaitGroup
}

// Dial connects and performs the CONNECT handshake.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn:     conn,
		pingResp: make(chan struct{}, 1),
		ackCh:    make(chan byte, 4),
	}
	if err := writeFrame(conn, frameConnect, nil); err != nil {
		conn.Close()
		return nil, err
	}
	c.wg.Add(1)
	go c.readLoop()
	if err := c.waitAck(frameConnAck); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

func (c *Client) readLoop() {
	defer c.wg.Done()
	for {
		typ, payload, err := readFrame(c.conn)
		if err != nil {
			return
		}
		switch typ {
		case frameConnAck, frameSubAck:
			select {
			case c.ackCh <- typ:
			default:
			}
		case framePingResp:
			select {
			case c.pingResp <- struct{}{}:
			default:
			}
		case framePublish:
			msg, derr := DecodePublish(payload)
			if derr != nil {
				continue
			}
			c.mu.Lock()
			subs := c.subs
			c.mu.Unlock()
			for _, s := range subs {
				if sensor.MatchFilter(s.filter, msg.Topic) {
					s.fn(msg)
				}
			}
		}
	}
}

func (c *Client) waitAck(want byte) error {
	select {
	case got := <-c.ackCh:
		if got != want {
			return errors.New("transport: unexpected ack type")
		}
		return nil
	case <-time.After(5 * time.Second):
		return errors.New("transport: ack timeout")
	}
}

// Publish sends one batch of readings for a topic. It is safe for
// concurrent use. The readings slice is fully encoded before Publish
// returns and is never retained — callers (e.g. the Pusher's pooled
// forwarding buffers) may reuse it immediately; any future asynchronous
// implementation must copy it first.
func (c *Client) Publish(topic sensor.Topic, readings []sensor.Reading) error {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return ErrClosed
	}
	payload := EncodePublish(Message{Topic: topic, Readings: readings})
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	return writeFrame(c.conn, framePublish, payload)
}

// Subscribe registers fn for all messages matching filter and waits for
// the broker's acknowledgement.
func (c *Client) Subscribe(filter string, fn Handler) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	c.subs = append(c.subs, localSub{filter: filter, fn: fn})
	c.mu.Unlock()
	c.writeMu.Lock()
	err := writeFrame(c.conn, frameSubscribe, encodeString(filter))
	c.writeMu.Unlock()
	if err != nil {
		return err
	}
	return c.waitAck(frameSubAck)
}

// Ping performs a PINGREQ/PINGRESP round trip.
func (c *Client) Ping() error {
	c.writeMu.Lock()
	err := writeFrame(c.conn, framePingReq, nil)
	c.writeMu.Unlock()
	if err != nil {
		return err
	}
	select {
	case <-c.pingResp:
		return nil
	case <-time.After(5 * time.Second):
		return errors.New("transport: ping timeout")
	}
}

// Close sends DISCONNECT and tears the connection down.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	c.writeMu.Lock()
	_ = writeFrame(c.conn, frameDisconnect, nil)
	c.writeMu.Unlock()
	err := c.conn.Close()
	c.wg.Wait()
	return err
}
