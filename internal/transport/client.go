package transport

import (
	"errors"
	"net"
	"sync"
	"time"

	"github.com/dcdb/wintermute/internal/sensor"
)

// ErrClosed reports use of a closed client.
var ErrClosed = errors.New("transport: client closed")

// ErrAckTimeout reports that the broker did not acknowledge within the
// configured Options.AckTimeout.
var ErrAckTimeout = errors.New("transport: ack timeout")

// ErrUnexpectedAck reports an acknowledgement frame of the wrong type —
// a protocol desync, distinct from the broker simply being slow
// (ErrAckTimeout).
var ErrUnexpectedAck = errors.New("transport: unexpected ack type")

// ErrNotConnected reports an operation that needs a live connection
// while a reliable client is between redial attempts.
var ErrNotConnected = errors.New("transport: not connected")

// ErrSpoolNotDrained reports that Close abandoned unacknowledged
// spooled batches: the drain timeout expired and no spool directory was
// configured to persist them.
var ErrSpoolNotDrained = errors.New("transport: close: unacked spooled batches abandoned")

// Options tunes a Client beyond the zero-value fire-and-forget
// behaviour. The zero value reproduces the original client exactly.
type Options struct {
	// AckTimeout bounds every wait for a broker acknowledgement:
	// CONNACK/SUBACK round trips and, in spooling mode, the
	// head-of-line PubAck watchdog that declares a silent connection
	// dead. Default 5s.
	AckTimeout time.Duration
	// SpoolBatches > 0 enables at-least-once delivery: Publish appends
	// the batch to a bounded in-memory spool and returns immediately; a
	// sender goroutine streams the spool to the broker as v2 PUBLISH
	// frames, redials with exponential backoff after connection loss,
	// and redelivers everything unacknowledged. Publish blocks
	// (backpressure) only once SpoolBatches batches are in flight.
	SpoolBatches int
	// SpoolDir, when set with SpoolBatches, enables on-disk overflow:
	// batches beyond the in-memory high-water mark spill to an
	// append-only file in this directory, and Close persists whatever
	// remains unacknowledged so a restarted client (same SpoolDir)
	// replays it in order.
	SpoolDir string
	// SpoolMaxBytes caps the overflow file (default 64 MiB). A full
	// file degrades to in-memory backpressure.
	SpoolMaxBytes int64
	// RetryMin and RetryMax bound the reconnect backoff (defaults 50ms
	// and 2s); each failed dial doubles the delay, jittered, up to
	// RetryMax.
	RetryMin time.Duration
	// RetryMax is the reconnect backoff ceiling (see RetryMin).
	RetryMax time.Duration
	// DrainTimeout bounds how long Close keeps the sender alive waiting
	// for outstanding batches to be acknowledged (default 5s). On
	// expiry the remainder is persisted to SpoolDir when configured,
	// otherwise abandoned with ErrSpoolNotDrained.
	DrainTimeout time.Duration
}

// withDefaults resolves zero option fields.
func (o Options) withDefaults() Options {
	if o.AckTimeout <= 0 {
		o.AckTimeout = 5 * time.Second
	}
	if o.SpoolMaxBytes <= 0 {
		o.SpoolMaxBytes = 64 << 20
	}
	if o.RetryMin <= 0 {
		o.RetryMin = 50 * time.Millisecond
	}
	if o.RetryMax <= 0 {
		o.RetryMax = 2 * time.Second
	}
	if o.RetryMax < o.RetryMin {
		o.RetryMax = o.RetryMin
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 5 * time.Second
	}
	return o
}

// Client is the Pusher-side MQTT-style client: it publishes reading
// batches to the broker and can subscribe to topic filters. A client
// dialled with Options.SpoolBatches > 0 additionally provides
// at-least-once delivery (see Options).
type Client struct {
	addr string
	opts Options

	// conn is the single connection of a fire-and-forget client; a
	// reliable client's live connection is owned by rel instead.
	conn net.Conn

	writeMu sync.Mutex

	mu       sync.Mutex
	subs     []localSub
	closed   bool
	pingResp chan struct{}
	ackCh    chan byte

	wg sync.WaitGroup

	// rel is the at-least-once engine, nil in fire-and-forget mode.
	rel *reliable
}

// Dial connects and performs the CONNECT handshake with default
// options (fire-and-forget publishing).
func Dial(addr string) (*Client, error) {
	return DialOptions(addr, Options{})
}

// DialOptions connects with explicit options. With SpoolBatches > 0 the
// returned client delivers at-least-once: the initial dial must still
// succeed (misconfiguration fails fast), but later connection loss is
// absorbed by the spool and the redial loop.
func DialOptions(addr string, opts Options) (*Client, error) {
	c := &Client{
		addr:     addr,
		opts:     opts.withDefaults(),
		pingResp: make(chan struct{}, 1),
		ackCh:    make(chan byte, 4),
	}
	if c.opts.SpoolBatches > 0 {
		rel, err := newReliable(c)
		if err != nil {
			return nil, err
		}
		c.rel = rel
		return c, nil
	}
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	c.conn = conn
	if err := writeFrame(conn, frameConnect, nil); err != nil {
		conn.Close()
		return nil, err
	}
	c.wg.Add(1)
	go c.readLoop()
	if err := c.waitAck(frameConnAck); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

func (c *Client) readLoop() {
	defer c.wg.Done()
	for {
		typ, payload, err := readFrame(c.conn)
		if err != nil {
			return
		}
		c.dispatch(typ, payload)
	}
}

// dispatch routes one received frame; shared between the simple read
// loop and the reliable engine's per-connection receive loops.
func (c *Client) dispatch(typ byte, payload []byte) {
	switch typ {
	case frameConnAck, frameSubAck:
		select {
		case c.ackCh <- typ:
		default:
		}
	case framePingResp:
		select {
		case c.pingResp <- struct{}{}:
		default:
		}
	case framePublish, framePublishV2:
		body := payload
		if typ == framePublishV2 {
			_, _, off, derr := decodePublishV2Prefix(payload)
			if derr != nil {
				return
			}
			body = payload[off:]
		}
		msg, derr := DecodePublish(body)
		if derr != nil {
			return
		}
		c.mu.Lock()
		subs := c.subs
		c.mu.Unlock()
		for _, s := range subs {
			if sensor.MatchFilter(s.filter, msg.Topic) {
				s.fn(msg)
			}
		}
	}
}

func (c *Client) waitAck(want byte) error {
	select {
	case got := <-c.ackCh:
		if got != want {
			return ErrUnexpectedAck
		}
		return nil
	case <-time.After(c.opts.AckTimeout):
		return ErrAckTimeout
	}
}

// Publish sends one batch of readings for a topic. It is safe for
// concurrent use. The readings slice is fully encoded before Publish
// returns and is never retained — callers (e.g. the Pusher's pooled
// forwarding buffers) may reuse it immediately.
//
// Fire-and-forget mode writes the frame synchronously and reports the
// write error. Spooling mode enqueues the batch for the sender
// goroutine and returns nil immediately, blocking only when the spool
// is at its high-water mark; the only error is ErrClosed.
func (c *Client) Publish(topic sensor.Topic, readings []sensor.Reading) error {
	if c.rel != nil {
		return c.rel.publish(topic, readings)
	}
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return ErrClosed
	}
	payload := EncodePublish(Message{Topic: topic, Readings: readings})
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	return writeFrame(c.conn, framePublish, payload)
}

// Subscribe registers fn for all messages matching filter and waits for
// the broker's acknowledgement. On a reliable client between redial
// attempts the registration still succeeds — the filter is included in
// the next reconnect handshake — but no ack is awaited.
func (c *Client) Subscribe(filter string, fn Handler) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	c.subs = append(c.subs, localSub{filter: filter, fn: fn})
	c.mu.Unlock()
	conn := c.conn
	if c.rel != nil {
		conn = c.rel.liveConn()
		if conn == nil {
			return nil // resubscribed by the next reconnect handshake
		}
	}
	c.writeMu.Lock()
	err := writeFrame(conn, frameSubscribe, encodeString(filter))
	c.writeMu.Unlock()
	if err != nil {
		return err
	}
	return c.waitAck(frameSubAck)
}

// Ping performs a PINGREQ/PINGRESP round trip.
func (c *Client) Ping() error {
	conn := c.conn
	if c.rel != nil {
		conn = c.rel.liveConn()
		if conn == nil {
			return ErrNotConnected
		}
	}
	c.writeMu.Lock()
	err := writeFrame(conn, framePingReq, nil)
	c.writeMu.Unlock()
	if err != nil {
		return err
	}
	select {
	case <-c.pingResp:
		return nil
	case <-time.After(c.opts.AckTimeout):
		return ErrAckTimeout
	}
}

// Stats returns a snapshot of the client's delivery counters. All
// fields are zero for a fire-and-forget client.
func (c *Client) Stats() ClientStats {
	if c.rel == nil {
		return ClientStats{}
	}
	return c.rel.stats()
}

// Close tears the client down. A reliable client first drains its
// spool (bounded by Options.DrainTimeout), then persists any remainder
// to the disk spool when one is configured — the error reports batches
// that could be neither delivered nor persisted.
func (c *Client) Close() error {
	if c.rel != nil {
		return c.rel.close()
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	c.writeMu.Lock()
	_ = writeFrame(c.conn, frameDisconnect, nil)
	c.writeMu.Unlock()
	err := c.conn.Close()
	c.wg.Wait()
	return err
}
