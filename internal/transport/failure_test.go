package transport

import (
	"net"
	"testing"
	"time"

	"github.com/dcdb/wintermute/internal/sensor"
)

// TestBrokerSurvivesGarbage injects malformed bytes on a raw TCP
// connection; the broker must drop that client and keep serving others.
func TestBrokerSurvivesGarbage(t *testing.T) {
	b, err := NewBroker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	// Raw connection writing junk.
	raw, err := net.Dial("tcp", b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := raw.Write([]byte{0xde, 0xad, 0xbe, 0xef, 0xff, 0xff, 0xff, 0xff, 0xff}); err != nil {
		t.Fatal(err)
	}
	raw.Close()

	// A well-behaved client still works.
	c, err := Dial(b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatalf("broker unhealthy after garbage: %v", err)
	}
}

// TestBrokerDropsBadPublishKeepsConnection: a structurally-valid frame
// with a corrupt PUBLISH payload is dropped without killing the session.
func TestBrokerDropsBadPublishKeepsConnection(t *testing.T) {
	b, err := NewBroker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	got := make(chan Message, 1)
	b.SubscribeLocal("#", func(m Message) {
		m.Readings = append([]sensor.Reading(nil), m.Readings...)
		got <- m
	})

	raw, err := net.Dial("tcp", b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if err := writeFrame(raw, frameConnect, nil); err != nil {
		t.Fatal(err)
	}
	// Corrupt publish payload: declares a topic longer than the frame.
	if err := writeFrame(raw, framePublish, []byte{200, 'x'}); err != nil {
		t.Fatal(err)
	}
	// A valid publish on the same connection must still be routed.
	valid := EncodePublish(Message{Topic: "/ok", Readings: []sensor.Reading{{Value: 1, Time: 1}}})
	if err := writeFrame(raw, framePublish, valid); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-got:
		if m.Topic != "/ok" {
			t.Fatalf("routed %+v", m)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("valid publish after corrupt one was not routed")
	}
}

// TestSubscriberDisconnectDoesNotStallRouting: publishing continues for
// healthy subscribers when one subscriber's connection dies.
func TestSubscriberDisconnectDoesNotStallRouting(t *testing.T) {
	b, err := NewBroker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	dead, err := Dial(b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := dead.Subscribe("#", func(Message) {}); err != nil {
		t.Fatal(err)
	}
	healthy, err := Dial(b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer healthy.Close()
	got := make(chan Message, 16)
	if err := healthy.Subscribe("#", func(m Message) { got <- m }); err != nil {
		t.Fatal(err)
	}
	// Kill the first subscriber abruptly.
	dead.conn.Close()

	pub, err := Dial(b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	deadline := time.Now().Add(3 * time.Second)
	for {
		if err := pub.Publish("/x", []sensor.Reading{{Value: 1, Time: 1}}); err != nil {
			t.Fatal(err)
		}
		select {
		case <-got:
			return // healthy subscriber still served
		case <-time.After(50 * time.Millisecond):
		}
		if time.Now().After(deadline) {
			t.Fatal("healthy subscriber starved after peer death")
		}
	}
}

// TestKillConnections: the chaos fault injector's connection killer must
// sever exactly the requested number of live sessions (all with n < 0),
// the victims must observe the break, and the broker must keep accepting
// fresh connections afterwards.
func TestKillConnections(t *testing.T) {
	b, err := NewBroker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	clients := make([]*Client, 3)
	for i := range clients {
		c, err := Dial(b.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		clients[i] = c
		if err := c.Ping(); err != nil { // session fully established
			t.Fatal(err)
		}
	}

	if n := b.KillConnections(1); n != 1 {
		t.Fatalf("KillConnections(1) = %d", n)
	}
	if n := b.KillConnections(-1); n != 2 {
		t.Fatalf("KillConnections(-1) after one kill = %d, want remaining 2", n)
	}

	// Every client observes the break: writes start failing once the RST
	// lands (the first post-kill write may still land in the TCP buffer).
	deadline := time.Now().Add(3 * time.Second)
	for _, c := range clients {
		for c.Publish("/probe", []sensor.Reading{{Value: 1, Time: 1}}) == nil {
			if time.Now().After(deadline) {
				t.Fatal("client still writable after KillConnections(-1)")
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// The broker itself survives: fresh sessions connect and publish.
	got := make(chan Message, 1)
	b.SubscribeLocal("#", func(m Message) {
		select {
		case got <- m:
		default:
		}
	})
	fresh, err := Dial(b.Addr())
	if err != nil {
		t.Fatalf("dial after kill: %v", err)
	}
	defer fresh.Close()
	if err := fresh.Publish("/alive", []sensor.Reading{{Value: 1, Time: 1}}); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-got:
		if m.Topic != "/alive" {
			t.Fatalf("routed %+v", m)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("publish after kill not routed")
	}
	if n := b.KillConnections(-1); n != 1 {
		t.Fatalf("KillConnections(-1) with one fresh conn = %d", n)
	}
}
