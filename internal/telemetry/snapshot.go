package telemetry

import (
	"sort"
	"strings"
)

// Label is one key=value pair attached to a Sample.
type Label struct {
	Key   string
	Value string
}

// Bucket is one cumulative histogram bucket: Count observations had a
// value <= Le.
type Bucket struct {
	Le    float64
	Count uint64
}

// Sample is one metric series as seen by Snapshot. The Labels and
// Buckets slices are scratch storage owned by the registry iteration —
// valid only for the duration of the visit callback; copy them if you
// need to keep them.
type Sample struct {
	Name   string
	Help   string
	Type   MetricType
	Labels []Label
	// Value carries counter and gauge readings.
	Value float64
	// Count, Sum and Buckets carry histogram readings; Buckets is
	// cumulative and ends with the +Inf bucket (Le = +Inf, Count =
	// Count field).
	Count   uint64
	Sum     float64
	Buckets []Bucket
}

// Snapshot runs the registered updaters, then visits every series in
// the registry in sorted (family name, label values) order. It is the
// single read path shared by WritePrometheus, the REST status
// endpoints and the self-monitoring loop, so every consumer sees the
// same numbers for the same scrape.
//
// The *Sample passed to visit is reused between calls; its slices are
// only valid inside the callback.
func (r *Registry) Snapshot(visit func(*Sample)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if !r.sorted {
		sort.Strings(r.order)
		r.sorted = true
	}
	names := r.order
	upds := r.globalUpdaters
	r.mu.Unlock()

	// Updaters run outside the registry lock: they call into foreign
	// subsystems (backend Stats, scheduler stats) that must not nest
	// under Registry.mu.
	for _, u := range upds {
		u.upd()
	}

	var s Sample
	var counts []uint64
	for _, name := range names {
		r.mu.RLock()
		f := r.families[name]
		r.mu.RUnlock()
		if f == nil {
			continue
		}
		counts = f.visit(&s, counts, visit)
	}
}

// visit emits every child of the family into visit, reusing s and
// counts as scratch.
func (f *family) visit(s *Sample, counts []uint64, visit func(*Sample)) []uint64 {
	// Copy the child references under the family lock, then emit (and
	// run func callbacks) outside it: callbacks reach into foreign
	// subsystems whose locks must never nest under family.mu.
	f.mu.Lock()
	plain := f.plain
	childKey := append([]string(nil), f.childKey...)
	kids := make([]any, len(childKey))
	for i, k := range childKey {
		kids[i] = f.children[k]
	}
	funcs := append([]*FuncHandle(nil), f.funcs...)
	f.mu.Unlock()

	s.Name, s.Help, s.Type = f.name, f.help, f.typ

	emit := func(vals []string, child any) []uint64 {
		s.Labels = s.Labels[:0]
		for i, k := range f.keys {
			s.Labels = append(s.Labels, Label{Key: k, Value: vals[i]})
		}
		s.Value, s.Count, s.Sum = 0, 0, 0
		s.Buckets = s.Buckets[:0]
		switch m := child.(type) {
		case *Counter:
			s.Value = float64(m.Value())
		case *Gauge:
			s.Value = m.Value()
		case *Histogram:
			counts = m.BucketCounts(counts)
			var cum uint64
			for i, le := range m.bounds {
				cum += counts[i]
				s.Buckets = append(s.Buckets, Bucket{Le: le, Count: cum})
			}
			s.Count = cum + counts[len(counts)-1]
			s.Sum = m.Sum()
		}
		visit(s)
		return counts
	}

	if plain != nil {
		counts = emit(nil, plain)
	}
	for i, key := range childKey {
		vals := splitKey(key, len(f.keys))
		counts = emit(vals, kids[i])
	}
	// Callback-backed children: group by label values, summing the
	// callbacks that share one label set so multi-instance components
	// aggregate into a single exposition series.
	if len(funcs) > 0 {
		type group struct {
			vals []string
			sum  float64
		}
		groups := map[string]*group{}
		var order []string
		for _, h := range funcs {
			key := strings.Join(h.labels, "\x00")
			g, ok := groups[key]
			if !ok {
				g = &group{vals: h.labels}
				groups[key] = g
				order = append(order, key)
			}
			g.sum += h.fn()
		}
		sort.Strings(order)
		for _, key := range order {
			g := groups[key]
			s.Labels = s.Labels[:0]
			for i, k := range f.keys {
				s.Labels = append(s.Labels, Label{Key: k, Value: g.vals[i]})
			}
			s.Value, s.Count, s.Sum = g.sum, 0, 0
			s.Buckets = s.Buckets[:0]
			s.Name, s.Help, s.Type = f.name, f.help, f.typ
			visit(s)
		}
	}
	return counts
}

func splitKey(key string, n int) []string {
	if n == 0 {
		return nil
	}
	return strings.SplitN(key, "\x00", n)
}

// Value returns the current value of the named series, summing
// callback-backed children when present. Histograms report their
// observation count. The second result is false when the series does
// not exist. Value does not run updaters; use Snapshot when reading
// several related series consistently.
func (r *Registry) Value(name string, labelValues ...string) (float64, bool) {
	if r == nil {
		return 0, false
	}
	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f == nil {
		return 0, false
	}
	key := strings.Join(labelValues, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(labelValues) == 0 && f.plain != nil {
		switch m := f.plain.(type) {
		case *Counter:
			return float64(m.Value()), true
		case *Gauge:
			return m.Value(), true
		case *Histogram:
			return float64(m.Count()), true
		}
	}
	if c, ok := f.children[key]; ok {
		switch m := c.(type) {
		case *Counter:
			return float64(m.Value()), true
		case *Gauge:
			return m.Value(), true
		case *Histogram:
			return float64(m.Count()), true
		}
	}
	var sum float64
	found := false
	for _, h := range f.funcs {
		if strings.Join(h.labels, "\x00") == key {
			sum += h.fn()
			found = true
		}
	}
	return sum, found
}
