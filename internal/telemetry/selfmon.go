package telemetry

import (
	"strings"
	"sync"
	"time"
)

// PublishFunc receives one self-monitoring reading: a sensor topic
// (already prefixed), the metric value and the sample timestamp in
// nanoseconds. The collect agent wires this to its cache sink so the
// readings land in the sensor tree, caches and storage backend like
// any pusher-delivered sensor.
type PublishFunc func(topic string, value float64, timeNanos int64)

// SelfMonitor periodically republishes a registry into sensor topics —
// the Wintermute move: the monitoring system's own health becomes
// queryable, aggregatable and dashboard-cacheable data. Counters and
// gauges map to <prefix>/<name>; histograms publish <prefix>/<name>/count
// and <prefix>/<name>/sum; label values are appended as path segments.
type SelfMonitor struct {
	reg     *Registry
	prefix  string
	every   time.Duration
	publish PublishFunc

	once    sync.Once
	started bool
	stop    chan struct{}
	done    chan struct{}
}

// NewSelfMonitor returns a self-monitor republishing reg under prefix
// (e.g. "/telemetry") every interval. Call Start to run the loop, or
// PublishOnce to drive it manually (tests, forced scrapes).
func NewSelfMonitor(reg *Registry, prefix string, every time.Duration, publish PublishFunc) *SelfMonitor {
	return &SelfMonitor{
		reg:     reg,
		prefix:  strings.TrimSuffix(prefix, "/"),
		every:   every,
		publish: publish,
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
}

// Start launches the publishing loop in its own goroutine.
func (sm *SelfMonitor) Start() {
	sm.started = true
	go func() {
		defer close(sm.done)
		t := time.NewTicker(sm.every)
		defer t.Stop()
		for {
			select {
			case <-sm.stop:
				return
			case now := <-t.C:
				sm.PublishOnce(now)
			}
		}
	}()
}

// Close stops the publishing loop and waits for it to exit. Closing a
// monitor that was never started is safe.
func (sm *SelfMonitor) Close() {
	if sm == nil {
		return
	}
	sm.once.Do(func() { close(sm.stop) })
	if sm.started {
		<-sm.done
	}
}

// PublishOnce takes one registry snapshot and publishes every series
// with the given timestamp.
func (sm *SelfMonitor) PublishOnce(now time.Time) {
	if sm == nil || sm.publish == nil {
		return
	}
	ts := now.UnixNano()
	var b strings.Builder
	sm.reg.Snapshot(func(s *Sample) {
		b.Reset()
		b.WriteString(sm.prefix)
		b.WriteByte('/')
		b.WriteString(s.Name)
		for _, l := range s.Labels {
			b.WriteByte('/')
			b.WriteString(sanitizeSegment(l.Value))
		}
		base := b.String()
		switch s.Type {
		case TypeHistogram:
			sm.publish(base+"/count", float64(s.Count), ts)
			sm.publish(base+"/sum", s.Sum, ts)
		default:
			sm.publish(base, s.Value, ts)
		}
	})
}

// sanitizeSegment makes a label value safe as one sensor-topic path
// segment: separators and MQTT wildcards are replaced so a label can
// never splice extra levels into the topic tree.
func sanitizeSegment(v string) string {
	if v == "" {
		return "_"
	}
	return topicSegmentEscaper.Replace(v)
}

var topicSegmentEscaper = strings.NewReplacer("/", "_", "#", "_", "+", "_", " ", "_")
