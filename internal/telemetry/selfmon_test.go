package telemetry

import (
	"testing"
	"time"
)

func TestSelfMonitorPublishOnce(t *testing.T) {
	r := NewRegistry()
	r.Counter("dcdb_sm_events_total", "x").Add(9)
	r.Gauge("dcdb_sm_depth", "x").Set(2.5)
	r.Histogram("dcdb_sm_seconds", "x", []float64{1}).Observe(0.5)
	r.NewCounterVec("dcdb_sm_routes_total", "x", "route").With("/query").Add(3)

	got := map[string]float64{}
	sm := NewSelfMonitor(r, "/telemetry/", time.Hour, func(topic string, v float64, ts int64) {
		if ts != time.Unix(100, 0).UnixNano() {
			t.Fatalf("timestamp = %d", ts)
		}
		got[topic] = v
	})
	sm.PublishOnce(time.Unix(100, 0))
	sm.Close() // never started: must not hang

	want := map[string]float64{
		"/telemetry/dcdb_sm_events_total":        9,
		"/telemetry/dcdb_sm_depth":               2.5,
		"/telemetry/dcdb_sm_seconds/count":       1,
		"/telemetry/dcdb_sm_seconds/sum":         0.5,
		"/telemetry/dcdb_sm_routes_total/_query": 3,
	}
	for topic, v := range want {
		if got[topic] != v {
			t.Fatalf("topic %s = %v, want %v (all: %v)", topic, got[topic], v, got)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("published %d topics, want %d: %v", len(got), len(want), got)
	}
}

func TestSelfMonitorLoop(t *testing.T) {
	r := NewRegistry()
	r.Counter("dcdb_sm_loop_total", "x").Inc()
	ch := make(chan string, 64)
	sm := NewSelfMonitor(r, "/telemetry", 5*time.Millisecond, func(topic string, v float64, ts int64) {
		select {
		case ch <- topic:
		default:
		}
	})
	sm.Start()
	select {
	case topic := <-ch:
		if topic != "/telemetry/dcdb_sm_loop_total" {
			t.Fatalf("topic = %s", topic)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("self-monitor loop never published")
	}
	sm.Close()
	sm.Close() // idempotent
}

func TestSanitizeSegment(t *testing.T) {
	cases := map[string]string{
		"":          "_",
		"/query":    "_query",
		"a/b#c+d e": "a_b_c_d_e",
		"plain":     "plain",
	}
	for in, want := range cases {
		if got := sanitizeSegment(in); got != want {
			t.Fatalf("sanitizeSegment(%q) = %q, want %q", in, got, want)
		}
	}
}
