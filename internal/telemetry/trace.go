package telemetry

import (
	"context"
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// traceSeq mints process-unique request trace IDs.
var traceSeq atomic.Uint64

// Trace is the request-scoped context a serving handler threads
// through the query path. The handler creates it, lower layers
// annotate it (cache verdict, topic fan-out, chunks decoded), and the
// slow-query log names those annotations when the request runs over
// threshold. A nil *Trace is safe: every setter is a no-op, so the
// query path annotates unconditionally and pays nothing when slow-query
// logging is off.
type Trace struct {
	id     uint64
	start  time.Time
	op     string
	sensor string
	cache  string
	fanout int
	chunks uint64
}

// NewTrace starts a request trace with a fresh process-unique ID, or
// nil when telemetry is disabled — the nil-safe setters make the
// disabled request path cost one atomic load, like every other hot
// path in this package.
func NewTrace() *Trace {
	if disabled.Load() {
		return nil
	}
	return &Trace{id: traceSeq.Add(1), start: time.Now()}
}

// ID returns the trace identifier in the form used by the X-Trace-Id
// header and the slow-query log, e.g. "t-000000c4".
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	const hex = "0123456789abcdef"
	var b [10]byte
	b[0], b[1] = 't', '-'
	for i := 0; i < 8; i++ {
		b[9-i] = hex[(t.id>>(4*uint(i)))&0xf]
	}
	return string(b[:])
}

// SetQuery records the query kind and sensor pattern.
func (t *Trace) SetQuery(op, sensor string) {
	if t == nil {
		return
	}
	t.op, t.sensor = op, sensor
}

// SetCacheVerdict records the result-cache outcome for the request:
// "hit", "miss", "stale" or "bypass".
func (t *Trace) SetCacheVerdict(v string) {
	if t == nil {
		return
	}
	t.cache = v
}

// SetFanout records how many concrete topics a wildcard expanded to.
func (t *Trace) SetFanout(n int) {
	if t == nil {
		return
	}
	t.fanout = n
}

// AddChunksDecoded adds to the count of storage chunks decoded on
// behalf of this request.
func (t *Trace) AddChunksDecoded(n uint64) {
	if t == nil {
		return
	}
	t.chunks += n
}

type traceCtxKey struct{}

// WithTrace attaches t to ctx.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, t)
}

// TraceFrom returns the trace attached to ctx, or nil. The nil result
// composes with the nil-safe Trace setters, so callees annotate
// without checking.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceCtxKey{}).(*Trace)
	return t
}

// SlowQueryEntry is one line of the structured slow-query log,
// serialized as JSON.
type SlowQueryEntry struct {
	Time          string  `json:"time"`
	Trace         string  `json:"trace"`
	Route         string  `json:"route"`
	Status        int     `json:"status"`
	DurationMs    float64 `json:"duration_ms"`
	Op            string  `json:"op,omitempty"`
	Sensor        string  `json:"sensor,omitempty"`
	Cache         string  `json:"cache,omitempty"`
	Fanout        int     `json:"fanout,omitempty"`
	ChunksDecoded uint64  `json:"chunks_decoded,omitempty"`
}

// SlowQueryLog writes one JSON line per request that ran at or over
// the configured threshold. It is safe for concurrent use.
type SlowQueryLog struct {
	threshold time.Duration
	mu        sync.Mutex
	w         io.Writer
	logged    atomic.Uint64
}

// NewSlowQueryLog returns a log that records requests whose duration
// is >= threshold. A zero or negative threshold disables logging and
// returns nil, which every method accepts.
func NewSlowQueryLog(w io.Writer, threshold time.Duration) *SlowQueryLog {
	if threshold <= 0 || w == nil {
		return nil
	}
	return &SlowQueryLog{threshold: threshold, w: w}
}

// Threshold returns the configured slow threshold, or 0 for a nil log.
func (l *SlowQueryLog) Threshold() time.Duration {
	if l == nil {
		return 0
	}
	return l.threshold
}

// Record logs the request if it ran at or over threshold. route and
// status describe the HTTP exchange; t may be nil for routes that do
// not thread a trace.
func (l *SlowQueryLog) Record(t *Trace, route string, status int, d time.Duration) {
	if l == nil || d < l.threshold {
		return
	}
	e := SlowQueryEntry{
		Time:       time.Now().UTC().Format(time.RFC3339Nano),
		Trace:      t.ID(),
		Route:      route,
		Status:     status,
		DurationMs: float64(d.Microseconds()) / 1e3,
	}
	if t != nil {
		e.Op, e.Sensor, e.Cache = t.op, t.sensor, t.cache
		e.Fanout, e.ChunksDecoded = t.fanout, t.chunks
	}
	buf, err := json.Marshal(e)
	if err != nil {
		return
	}
	buf = append(buf, '\n')
	l.mu.Lock()
	l.w.Write(buf)
	l.mu.Unlock()
	l.logged.Add(1)
}

// Logged returns how many entries the log has emitted; exposed so the
// registry can count slow queries as a metric.
func (l *SlowQueryLog) Logged() uint64 {
	if l == nil {
		return 0
	}
	return l.logged.Load()
}
