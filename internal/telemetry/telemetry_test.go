package telemetry

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_events_total", "events")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("test_depth", "depth")
	g.Set(10)
	g.Add(-2.5)
	if got := g.Value(); got != 7.5 {
		t.Fatalf("gauge = %v, want 7.5", got)
	}
}

func TestDuplicateRegistrationSharesMetric(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("dup_total", "x")
	b := r.Counter("dup_total", "x")
	if a != b {
		t.Fatal("duplicate registration returned a different counter")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("shared counter did not share state")
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("shape_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("shape_total", "x")
}

func TestNilRegistrySafe(t *testing.T) {
	var r *Registry
	c := r.Counter("n", "n")
	c.Inc()
	if c.Value() != 1 {
		t.Fatal("nil-registry counter is not live")
	}
	r.Gauge("g", "g").Set(1)
	r.Histogram("h", "h", []float64{1}).Observe(0.5)
	r.NewCounterVec("cv", "cv", "k").With("v").Inc()
	r.NewHistogramVec("hv", "hv", []float64{1}, "k").With("v").Observe(2)
	r.GaugeFunc("gf", "gf", func() float64 { return 1 }).Close()
	r.AddUpdater(func() {}).Close()
	r.Snapshot(func(*Sample) { t.Fatal("nil registry snapshot visited a sample") })
	if _, ok := r.Value("n"); ok {
		t.Fatal("nil registry Value reported a series")
	}
}

func TestEnabledGate(t *testing.T) {
	defer SetEnabled(true)
	r := NewRegistry()
	c := r.Counter("gate_total", "x")
	h := r.Histogram("gate_seconds", "x", []float64{1, 2})
	SetEnabled(false)
	if Enabled() {
		t.Fatal("Enabled() = true after SetEnabled(false)")
	}
	c.Inc()
	h.Observe(1)
	start := Clock()
	if !start.IsZero() {
		t.Fatal("Clock() should be zero while disabled")
	}
	h.ObserveSince(start)
	SetEnabled(true)
	if c.Value() != 0 || h.Count() != 0 {
		t.Fatalf("disabled metrics mutated: counter=%d hist=%d", c.Value(), h.Count())
	}
	c.Inc()
	if c.Value() != 1 {
		t.Fatal("re-enabled counter did not count")
	}
}

func TestGaugeFuncSumsAcrossInstances(t *testing.T) {
	r := NewRegistry()
	h1 := r.GaugeFunc("inst_depth", "x", func() float64 { return 3 })
	h2 := r.GaugeFunc("inst_depth", "x", func() float64 { return 4 })
	if v, ok := r.Value("inst_depth"); !ok || v != 7 {
		t.Fatalf("summed gauge funcs = %v,%v, want 7,true", v, ok)
	}
	h1.Close()
	if v, _ := r.Value("inst_depth"); v != 4 {
		t.Fatalf("after closing one handle = %v, want 4", v)
	}
	h2.Close()
	h2.Close() // double close is a no-op
	if v, ok := r.Value("inst_depth"); ok || v != 0 {
		t.Fatalf("after closing all handles = %v,%v, want 0,false", v, ok)
	}
}

func TestUpdaterRunsBeforeSnapshot(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("u_depth", "x")
	n := 0
	h := r.AddUpdater(func() { n++; g.Set(float64(n)) })
	var got float64
	r.Snapshot(func(s *Sample) {
		if s.Name == "u_depth" {
			got = s.Value
		}
	})
	if got != 1 {
		t.Fatalf("snapshot saw %v, want updater-written 1", got)
	}
	h.Close()
	r.Snapshot(func(*Sample) {})
	if n != 1 {
		t.Fatalf("closed updater still ran: n=%d", n)
	}
}

func TestVecChildrenAndValue(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("route_total", "by route", "route")
	v.With("/query").Add(3)
	v.With("/status").Inc()
	if x, ok := r.Value("route_total", "/query"); !ok || x != 3 {
		t.Fatalf("Value(/query) = %v,%v", x, ok)
	}
	if v.With("/query") != v.With("/query") {
		t.Fatal("With is not stable for one label set")
	}
	var names []string
	r.Snapshot(func(s *Sample) {
		if len(s.Labels) != 1 || s.Labels[0].Key != "route" {
			t.Fatalf("bad labels: %+v", s.Labels)
		}
		names = append(names, s.Labels[0].Value)
	})
	if strings.Join(names, ",") != "/query,/status" {
		t.Fatalf("snapshot order = %v, want sorted label values", names)
	}
}

func TestSnapshotSortedByFamily(t *testing.T) {
	r := NewRegistry()
	r.Counter("zzz_total", "z").Inc()
	r.Counter("aaa_total", "a").Inc()
	var names []string
	r.Snapshot(func(s *Sample) { names = append(names, s.Name) })
	if strings.Join(names, ",") != "aaa_total,zzz_total" {
		t.Fatalf("snapshot order = %v", names)
	}
}

// TestConcurrentIncrements is the concurrent-increment race suite: a
// pile of goroutines hammering one counter, one gauge, one histogram
// and one vec while a reader snapshots, with exact final counts.
func TestConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("race_total", "x")
	g := r.Gauge("race_gauge", "x")
	h := r.Histogram("race_seconds", "x", []float64{0.25, 0.5, 0.75})
	v := r.NewCounterVec("race_vec_total", "x", "k")

	const goroutines = 16
	const iters = 2000
	var workers, reader sync.WaitGroup
	stop := make(chan struct{})
	reader.Add(1)
	go func() { // concurrent snapshotter
		defer reader.Done()
		for {
			select {
			case <-stop:
				return
			default:
				r.Snapshot(func(*Sample) {})
			}
		}
	}()
	for i := 0; i < goroutines; i++ {
		workers.Add(1)
		go func(i int) {
			defer workers.Done()
			lbl := string(rune('a' + i%4))
			for j := 0; j < iters; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(j%4) / 4)
				v.With(lbl).Inc()
			}
		}(i)
	}
	workers.Wait()
	close(stop)
	reader.Wait()

	const want = goroutines * iters
	if c.Value() != want {
		t.Fatalf("counter = %d, want %d", c.Value(), want)
	}
	if g.Value() != want {
		t.Fatalf("gauge = %v, want %d", g.Value(), want)
	}
	if h.Count() != want {
		t.Fatalf("histogram count = %d, want %d", h.Count(), want)
	}
	var vecSum uint64
	r.Snapshot(func(s *Sample) {
		if s.Name == "race_vec_total" {
			vecSum += uint64(s.Value)
		}
	})
	if vecSum != want {
		t.Fatalf("vec sum = %d, want %d", vecSum, want)
	}
}
