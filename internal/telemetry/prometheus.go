package telemetry

import (
	"bufio"
	"io"
	"math"
	"strconv"
	"strings"
)

// ContentType is the Content-Type header value for the Prometheus text
// exposition format produced by WritePrometheus.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4): one # HELP and # TYPE header per
// family, cumulative le-labelled buckets plus _sum and _count for
// histograms.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var lastFamily string
	r.Snapshot(func(s *Sample) {
		if s.Name != lastFamily {
			bw.WriteString("# HELP ")
			bw.WriteString(s.Name)
			bw.WriteByte(' ')
			bw.WriteString(escapeHelp(s.Help))
			bw.WriteString("\n# TYPE ")
			bw.WriteString(s.Name)
			bw.WriteByte(' ')
			bw.WriteString(s.Type.String())
			bw.WriteByte('\n')
			lastFamily = s.Name
		}
		switch s.Type {
		case TypeHistogram:
			for _, b := range s.Buckets {
				writeSeries(bw, s.Name+"_bucket", s.Labels, "le", formatFloat(b.Le), float64(b.Count))
			}
			writeSeries(bw, s.Name+"_bucket", s.Labels, "le", "+Inf", float64(s.Count))
			writeSeries(bw, s.Name+"_sum", s.Labels, "", "", s.Sum)
			writeSeries(bw, s.Name+"_count", s.Labels, "", "", float64(s.Count))
		default:
			writeSeries(bw, s.Name, s.Labels, "", "", s.Value)
		}
	})
	return bw.Flush()
}

// writeSeries emits one sample line, appending the optional extra
// label (used for histogram le) after the sample's own labels.
func writeSeries(bw *bufio.Writer, name string, labels []Label, extraKey, extraVal string, v float64) {
	bw.WriteString(name)
	if len(labels) > 0 || extraKey != "" {
		bw.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(l.Key)
			bw.WriteString(`="`)
			bw.WriteString(escapeLabel(l.Value))
			bw.WriteByte('"')
		}
		if extraKey != "" {
			if len(labels) > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(extraKey)
			bw.WriteString(`="`)
			bw.WriteString(extraVal)
			bw.WriteByte('"')
		}
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(formatFloat(v))
	bw.WriteByte('\n')
}

// formatFloat renders v the way Prometheus clients expect: integral
// values without an exponent or trailing .0, +Inf spelled literally.
func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabel(s string) string { return labelEscaper.Replace(s) }

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeHelp(s string) string { return helpEscaper.Replace(s) }
