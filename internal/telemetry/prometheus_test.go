package telemetry

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite prometheus exposition golden file")

// TestWritePrometheusGolden locks the exposition byte-for-byte against
// testdata/metrics.golden: family ordering, HELP/TYPE headers,
// histogram le buckets with +Inf, label escaping, float formatting.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("dcdb_test_events_total", "Events observed by the test fixture.").Add(42)
	r.Gauge("dcdb_test_depth", "Current queue depth.").Set(3.5)
	v := r.NewCounterVec("dcdb_test_requests_total", "Requests by route.", "route")
	v.With("/query").Add(7)
	v.With("/status").Add(2)
	r.GaugeFunc("dcdb_test_conns", "Open connections.", func() float64 { return 4 })
	r.NewCounterVec("dcdb_test_escape_total", `Tricky "help" with \backslash`, "path").
		With("a\\b\"c\nd").Inc()
	h := r.Histogram("dcdb_test_latency_seconds", "Request latency.", []float64{0.001, 0.01, 0.1})
	for _, x := range []float64{0.0005, 0.002, 0.05, 0.5} {
		h.Observe(x)
	}
	hv := r.NewHistogramVec("dcdb_test_size", "Batch size.", []float64{1, 10}, "kind")
	hv.With("batch").Observe(5)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()

	golden := filepath.Join("testdata", "metrics.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update-golden to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("exposition mismatch\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestWritePrometheusValid does structural checks independent of the
// golden bytes: every series line parses, histograms are cumulative
// and end at +Inf == _count.
func TestWritePrometheusValid(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("v_seconds", "x", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(99)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	mustContain := []string{
		"# TYPE v_seconds histogram",
		`v_seconds_bucket{le="1"} 1`,
		`v_seconds_bucket{le="2"} 2`,
		`v_seconds_bucket{le="+Inf"} 3`,
		"v_seconds_sum 101",
		"v_seconds_count 3",
	}
	for _, m := range mustContain {
		if !strings.Contains(out, m) {
			t.Fatalf("exposition missing %q:\n%s", m, out)
		}
	}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.Contains(line, " ") {
			t.Fatalf("malformed sample line %q", line)
		}
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		42:      "42",
		3.5:     "3.5",
		0.001:   "0.001",
		1e16:    "1e+16",
		-7:      "-7",
		0.0001:  "0.0001",
		1e21:    "1e+21",
		1.0 / 3: "0.3333333333333333",
	}
	for v, want := range cases {
		if got := formatFloat(v); got != want {
			t.Fatalf("formatFloat(%v) = %q, want %q", v, got, want)
		}
	}
}
