// Package telemetry is the repo's self-monitoring layer: a
// dependency-free, allocation-free metrics registry plus lightweight
// span timing and a structured slow-query log.
//
// The design splits the work into a hot path and a cold path. The hot
// path — Counter.Inc, Gauge.Set, Histogram.Observe — is
// atomic-increment-only: no locks, no allocations, no map lookups.
// Metric handles are resolved once at component construction
// (Registry.Counter, CounterVec.With, ...) and then held in struct
// fields, so instrumented code pays one atomic RMW per event. The cold
// path — registration, Snapshot, WritePrometheus — takes the registry
// lock and runs at scrape cadence.
//
// A process-wide enable switch (SetEnabled) turns every hot-path
// operation into a single atomic load, which is how the paired
// overhead benchmarks measure the instrumentation cost honestly: the
// "off" side still executes the instrumented code, it just bails at
// the gate.
//
// All constructors are nil-receiver safe: a metric minted from a nil
// *Registry is live (it counts) but unattached (nothing exposes it),
// so call sites never need nil checks and tests that do not care about
// telemetry pay nothing for it.
package telemetry

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// MetricType distinguishes the three exposition families.
type MetricType uint8

// The metric families understood by the registry and the Prometheus
// exposition writer.
const (
	TypeCounter MetricType = iota + 1
	TypeGauge
	TypeHistogram
)

// String returns the Prometheus TYPE keyword for t.
func (t MetricType) String() string {
	switch t {
	case TypeCounter:
		return "counter"
	case TypeGauge:
		return "gauge"
	case TypeHistogram:
		return "histogram"
	}
	return "untyped"
}

// disabled is the process-wide kill switch, stored inverted so the
// zero value means "enabled". Hot paths issue exactly one atomic load
// against it before touching their metric.
var disabled atomic.Bool

// SetEnabled flips the process-wide instrumentation switch. With
// telemetry disabled every Counter.Inc/Gauge.Set/Histogram.Observe
// reduces to one atomic load, and Clock returns the zero time so span
// timing skips time.Now entirely. Registration and Snapshot still
// work; only hot-path mutation is gated.
func SetEnabled(on bool) { disabled.Store(!on) }

// Enabled reports whether hot-path instrumentation is currently live.
func Enabled() bool { return !disabled.Load() }

// Clock returns the current time for span timing, or the zero time
// when telemetry is disabled. Pair it with Histogram.ObserveSince:
//
//	start := telemetry.Clock()
//	... work ...
//	hist.ObserveSince(start)
//
// so the disabled cost is one atomic load and no time.Now call.
func Clock() time.Time {
	if disabled.Load() {
		return time.Time{}
	}
	return time.Now()
}

// Counter is a monotonically increasing uint64 metric. The zero value
// is ready to use; counters handed out by a Registry are additionally
// visible to Snapshot and the exposition endpoints.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one to the counter.
func (c *Counter) Inc() {
	if disabled.Load() {
		return
	}
	c.v.Add(1)
}

// Add adds n to the counter.
func (c *Counter) Add(n uint64) {
	if disabled.Load() {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 metric that can go up and down, stored as IEEE
// bits in a uint64 so mutation stays lock-free. The zero value is
// ready to use.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if disabled.Load() {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds delta (which may be negative) to the gauge via a CAS loop.
func (g *Gauge) Add(delta float64) {
	if disabled.Load() {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Registry is a named collection of metrics. Metrics are grouped into
// families (one name, one type, one label-key set); registering the
// same unlabelled name twice returns the same metric, so independent
// components can share a family without coordination. The zero value
// is not usable; call NewRegistry. A nil *Registry is safe: every
// constructor returns a live but unattached metric.
type Registry struct {
	mu             sync.RWMutex
	families       map[string]*family
	order          []string // registration-ordered family names, sorted lazily at snapshot
	sorted         bool
	globalUpdaters []*FuncHandle
}

// family holds every child metric sharing one exposition name.
type family struct {
	name   string
	help   string
	typ    MetricType
	keys   []string  // label keys, empty for unlabelled families
	bounds []float64 // histogram bucket upper bounds

	mu       sync.Mutex
	plain    any            // unlabelled child: *Counter, *Gauge or *Histogram
	children map[string]any // label-values key -> child
	childKey []string       // sorted children keys, rebuilt on registration
	funcs    []*FuncHandle  // callback-backed children, summed per label set
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Default is the process-wide registry used by the daemons. Libraries
// take a *Registry so tests can isolate; main packages pass Default.
var Default = NewRegistry()

// lookup returns the family for name, creating it on first use and
// panicking on a type or label-key mismatch — re-registering a name
// with a different shape is a programming error, not a runtime
// condition.
//
//lint:lockorder Registry.mu < family.mu
func (r *Registry) lookup(name, help string, typ MetricType, keys []string, bounds []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, keys: keys, bounds: bounds}
		r.families[name] = f
		r.order = append(r.order, name)
		r.sorted = false
		return f
	}
	if f.typ != typ || len(f.keys) != len(keys) {
		panic(fmt.Sprintf("telemetry: %s re-registered as %s(%d labels), was %s(%d labels)",
			name, typ, len(keys), f.typ, len(f.keys)))
	}
	for i := range keys {
		if f.keys[i] != keys[i] {
			panic(fmt.Sprintf("telemetry: %s re-registered with label %q, was %q", name, keys[i], f.keys[i]))
		}
	}
	return f
}

// Counter registers (or finds) an unlabelled counter family and
// returns its single child.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return &Counter{}
	}
	f := r.lookup(name, help, TypeCounter, nil, nil)
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.plain == nil {
		f.plain = &Counter{}
	}
	return f.plain.(*Counter)
}

// Gauge registers (or finds) an unlabelled gauge family and returns
// its single child.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return &Gauge{}
	}
	f := r.lookup(name, help, TypeGauge, nil, nil)
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.plain == nil {
		f.plain = &Gauge{}
	}
	return f.plain.(*Gauge)
}

// Histogram registers (or finds) an unlabelled histogram family with
// the given bucket upper bounds and returns its single child.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return newHistogram(bounds)
	}
	f := r.lookup(name, help, TypeHistogram, nil, checkBounds(bounds))
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.plain == nil {
		f.plain = newHistogram(f.bounds)
	}
	return f.plain.(*Histogram)
}

// FuncHandle is a registered callback metric (GaugeFunc, CounterFunc
// or AddUpdater). Closing it unregisters the callback; components that
// register funcs over their own state must Close the handles before
// tearing that state down.
type FuncHandle struct {
	f      *family // nil for updaters and unattached handles
	r      *Registry
	labels []string
	fn     func() float64
	upd    func() // updater body, exclusive with fn
}

// Close unregisters the callback from its registry. Closing a nil or
// already-closed handle is a no-op.
func (h *FuncHandle) Close() {
	if h == nil || h.r == nil {
		return
	}
	if h.f != nil {
		h.f.mu.Lock()
		h.f.funcs = removeHandle(h.f.funcs, h)
		h.f.mu.Unlock()
	} else {
		h.r.mu.Lock()
		h.r.globalUpdaters = removeHandle(h.r.globalUpdaters, h)
		h.r.mu.Unlock()
	}
	h.r = nil
}

func removeHandle(hs []*FuncHandle, h *FuncHandle) []*FuncHandle {
	for i, x := range hs {
		if x == h {
			return append(hs[:i:i], hs[i+1:]...)
		}
	}
	return hs
}

// GaugeFunc registers a callback-backed gauge. The callback runs at
// snapshot time; when several live handles share one family and label
// set their values are summed, which lets N broker or DB instances
// contribute to one exposition series. labelPairs alternates key,
// value (possibly empty).
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labelPairs ...string) *FuncHandle {
	return r.addFunc(name, help, TypeGauge, fn, labelPairs)
}

// CounterFunc registers a callback-backed counter: like GaugeFunc but
// exposed with counter semantics. The callback must be monotonic.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labelPairs ...string) *FuncHandle {
	return r.addFunc(name, help, TypeCounter, fn, labelPairs)
}

func (r *Registry) addFunc(name, help string, typ MetricType, fn func() float64, labelPairs []string) *FuncHandle {
	if r == nil {
		return &FuncHandle{}
	}
	keys, vals := splitPairs(labelPairs)
	f := r.lookup(name, help, typ, keys, nil)
	h := &FuncHandle{f: f, r: r, labels: vals, fn: fn}
	f.mu.Lock()
	f.funcs = append(f.funcs, h)
	f.mu.Unlock()
	return h
}

// AddUpdater registers a hook that runs once per Snapshot (and
// WritePrometheus) before any family is visited. Use it when one
// expensive stats call feeds several plain gauges: the hook calls the
// source once and Sets each gauge, keeping every derived series
// consistent within a single scrape.
func (r *Registry) AddUpdater(fn func()) *FuncHandle {
	if r == nil {
		return &FuncHandle{}
	}
	h := &FuncHandle{r: r, upd: fn}
	r.mu.Lock()
	r.globalUpdaters = append(r.globalUpdaters, h)
	r.mu.Unlock()
	return h
}

func splitPairs(pairs []string) (keys, vals []string) {
	if len(pairs)%2 != 0 {
		panic("telemetry: label pairs must alternate key, value")
	}
	for i := 0; i < len(pairs); i += 2 {
		keys = append(keys, pairs[i])
		vals = append(vals, pairs[i+1])
	}
	return keys, vals
}
