package telemetry

import (
	"math"
	"testing"
)

// TestHistogramBucketEdges pins the edge semantics: an observation
// equal to a bucket's upper bound lands in that bucket (Prometheus
// le = less-or-equal), and anything above the last bound lands in the
// implicit +Inf bucket.
func TestHistogramBucketEdges(t *testing.T) {
	bounds := []float64{0.1, 1, 10}
	h := newHistogram(bounds)
	cases := []struct {
		v      float64
		bucket int
	}{
		{0, 0}, {0.05, 0}, {0.1, 0}, // exactly on the first bound
		{0.1000001, 1}, {1, 1}, // exactly on the second bound
		{5, 2}, {10, 2}, // exactly on the last bound
		{10.5, 3}, {1e9, 3}, // +Inf bucket
	}
	for _, c := range cases {
		before := h.BucketCounts(nil)
		h.Observe(c.v)
		after := h.BucketCounts(nil)
		for i := range after {
			want := before[i]
			if i == c.bucket {
				want++
			}
			if after[i] != want {
				t.Fatalf("Observe(%v): bucket %d count %d, want %d", c.v, i, after[i], want)
			}
		}
		// The linear hot-path scan must agree with binary search.
		if got := searchBounds(bounds, c.v); got != c.bucket && c.bucket < len(bounds) {
			t.Fatalf("searchBounds(%v) = %d, want %d", c.v, got, c.bucket)
		}
	}
	if h.Count() != uint64(len(cases)) {
		t.Fatalf("count = %d, want %d", h.Count(), len(cases))
	}
	var sum float64
	for _, c := range cases {
		sum += c.v
	}
	if math.Abs(h.Sum()-sum) > 1e-9*sum {
		t.Fatalf("sum = %v, want %v", h.Sum(), sum)
	}
}

func TestHistogramCumulativeSnapshot(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("cum_seconds", "x", []float64{1, 2, 3})
	for _, v := range []float64{0.5, 1.5, 2.5, 2.7, 9} {
		h.Observe(v)
	}
	var got *Sample
	r.Snapshot(func(s *Sample) {
		if s.Name == "cum_seconds" {
			cp := *s
			cp.Buckets = append([]Bucket(nil), s.Buckets...)
			got = &cp
		}
	})
	if got == nil {
		t.Fatal("histogram not in snapshot")
	}
	wantCum := []uint64{1, 2, 4}
	for i, b := range got.Buckets {
		if b.Count != wantCum[i] {
			t.Fatalf("bucket le=%v cumulative = %d, want %d", b.Le, b.Count, wantCum[i])
		}
	}
	if got.Count != 5 || math.Abs(got.Sum-16.2) > 1e-9 {
		t.Fatalf("count/sum = %d/%v, want 5/16.2", got.Count, got.Sum)
	}
}

func TestBucketHelpers(t *testing.T) {
	exp := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if exp[i] != want[i] {
			t.Fatalf("ExpBuckets = %v", exp)
		}
	}
	lin := LinearBuckets(10, 5, 3)
	want = []float64{10, 15, 20}
	for i := range want {
		if lin[i] != want[i] {
			t.Fatalf("LinearBuckets = %v", lin)
		}
	}
	checkBounds(DefDurationBuckets)
	checkBounds(DefSizeBuckets)
	defer func() {
		if recover() == nil {
			t.Fatal("non-increasing bounds did not panic")
		}
	}()
	newHistogram([]float64{1, 1})
}
