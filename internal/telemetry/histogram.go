package telemetry

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket histogram with Prometheus semantics: an
// observation v lands in the first bucket whose upper bound satisfies
// v <= bound, with an implicit +Inf bucket catching the rest. Bounds
// are immutable after construction, so Observe is lock-free: one
// linear scan over a handful of bounds, two atomic adds and one CAS
// loop for the float64 sum.
type Histogram struct {
	bounds []float64 // sorted upper bounds, exclusive of +Inf
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits
}

func checkBounds(bounds []float64) []float64 {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("telemetry: histogram bounds must be strictly increasing")
		}
	}
	return bounds
}

func newHistogram(bounds []float64) *Histogram {
	checkBounds(bounds)
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if disabled.Load() {
		return
	}
	// Bucket count is small (≤ ~16), so a branch-predictable linear
	// scan beats binary search on the hot path.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since start, as captured by
// Clock. A zero start (telemetry was disabled when the span opened) is
// dropped, so ObserveSince composes with Clock into a span whose
// disabled cost is one atomic load.
func (h *Histogram) ObserveSince(start time.Time) {
	if start.IsZero() || disabled.Load() {
		return
	}
	h.Observe(time.Since(start).Seconds())
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Bounds returns the bucket upper bounds (shared; do not mutate).
func (h *Histogram) Bounds() []float64 { return h.bounds }

// BucketCounts copies the per-bucket (non-cumulative) counts into dst,
// growing it as needed; the last element is the +Inf bucket. It
// returns the filled slice.
func (h *Histogram) BucketCounts(dst []uint64) []uint64 {
	if cap(dst) < len(h.counts) {
		dst = make([]uint64, len(h.counts))
	}
	dst = dst[:len(h.counts)]
	for i := range h.counts {
		dst[i] = h.counts[i].Load()
	}
	return dst
}

// ExpBuckets returns n strictly increasing bounds starting at start
// and multiplying by factor, for registering histograms over
// quantities with multiplicative spread (latencies, sizes).
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("telemetry: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// LinearBuckets returns n bounds starting at start with the given
// positive step.
func LinearBuckets(start, step float64, n int) []float64 {
	if step <= 0 || n < 1 {
		panic("telemetry: LinearBuckets needs step > 0, n >= 1")
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = start + float64(i)*step
	}
	return b
}

// DefDurationBuckets is the default bucket layout for latency
// histograms: 100µs to ~6.5s in powers of two.
var DefDurationBuckets = ExpBuckets(100e-6, 2, 16)

// DefSizeBuckets is the default bucket layout for size/count
// histograms: 1 to 32768 in powers of four.
var DefSizeBuckets = ExpBuckets(1, 4, 8)

// searchBounds is kept for reference/testing parity with the linear
// scan in Observe: both must agree on edge placement (v == bound lands
// in that bucket).
func searchBounds(bounds []float64, v float64) int {
	return sort.SearchFloat64s(bounds, v)
}
