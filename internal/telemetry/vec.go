package telemetry

import (
	"sort"
	"strings"
)

// CounterVec is a counter family partitioned by labels. With resolves
// one label combination to its child Counter; resolve once at
// construction and keep the child, never call With on a hot path.
type CounterVec struct {
	f *family
}

// NewCounterVec registers (or finds) a labelled counter family.
func (r *Registry) NewCounterVec(name, help string, labelKeys ...string) *CounterVec {
	if r == nil {
		return &CounterVec{}
	}
	return &CounterVec{f: r.lookup(name, help, TypeCounter, labelKeys, nil)}
}

// With returns the child counter for the given label values (one per
// label key, in key order), creating it on first use.
func (v *CounterVec) With(labelValues ...string) *Counter {
	if v.f == nil {
		return &Counter{}
	}
	c, _ := v.f.child(labelValues, func() any { return &Counter{} })
	return c.(*Counter)
}

// GaugeVec is a gauge family partitioned by labels.
type GaugeVec struct {
	f *family
}

// NewGaugeVec registers (or finds) a labelled gauge family.
func (r *Registry) NewGaugeVec(name, help string, labelKeys ...string) *GaugeVec {
	if r == nil {
		return &GaugeVec{}
	}
	return &GaugeVec{f: r.lookup(name, help, TypeGauge, labelKeys, nil)}
}

// With returns the child gauge for the given label values, creating it
// on first use.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	if v.f == nil {
		return &Gauge{}
	}
	g, _ := v.f.child(labelValues, func() any { return &Gauge{} })
	return g.(*Gauge)
}

// HistogramVec is a histogram family partitioned by labels; every
// child shares the family's bucket bounds.
type HistogramVec struct {
	f      *family
	bounds []float64
}

// NewHistogramVec registers (or finds) a labelled histogram family
// with the given bucket upper bounds.
func (r *Registry) NewHistogramVec(name, help string, bounds []float64, labelKeys ...string) *HistogramVec {
	if r == nil {
		return &HistogramVec{bounds: checkBounds(bounds)}
	}
	return &HistogramVec{f: r.lookup(name, help, TypeHistogram, labelKeys, checkBounds(bounds)), bounds: bounds}
}

// With returns the child histogram for the given label values,
// creating it on first use.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	if v.f == nil {
		return newHistogram(v.bounds)
	}
	h, _ := v.f.child(labelValues, func() any { return newHistogram(v.f.bounds) })
	return h.(*Histogram)
}

// child finds or creates the child for one label-value combination.
func (f *family) child(vals []string, mk func() any) (any, string) {
	if len(vals) != len(f.keys) {
		panic("telemetry: " + f.name + ": wrong number of label values")
	}
	key := strings.Join(vals, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.children == nil {
		f.children = make(map[string]any)
	}
	c, ok := f.children[key]
	if !ok {
		c = mk()
		f.children[key] = c
		f.childKey = append(f.childKey, key)
		sort.Strings(f.childKey)
	}
	return c, key
}
