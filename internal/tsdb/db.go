package tsdb

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dcdb/wintermute/internal/sensor"
	"github.com/dcdb/wintermute/internal/store"
	"github.com/dcdb/wintermute/internal/telemetry"
)

// Options configures a DB. The zero value enables the janitor with
// defaults suitable for a Collect Agent.
type Options struct {
	// Retention drops readings older than now-Retention (0: keep
	// forever). Whole expired segments are deleted from disk; a
	// retention watermark hides expired readings of segments still
	// partially live.
	Retention time.Duration
	// FlushEvery is the janitor pass interval (default 10s; negative
	// disables the janitor entirely — tests drive Flush/Prune manually).
	FlushEvery time.Duration
	// MaxHeadReadings flushes heads to a segment once this many readings
	// are buffered across all series (default 65536).
	MaxHeadReadings int
	// MaxHeadAge flushes heads once the oldest buffered reading's
	// arrival is this old (default 60s), bounding WAL replay time.
	MaxHeadAge time.Duration
	// WALSync fsyncs the write-ahead log on every group commit. Off by
	// default: an OS crash may then lose the last moments of data, but a
	// process kill loses nothing, matching the paper's "near-line"
	// durability needs at a fraction of the insert cost. With group
	// commit the fsync is amortized across every concurrently-inserting
	// writer, so the cost no longer scales with writer count.
	WALSync bool
	// WALGroupWindow makes a group-commit leader linger this long before
	// persisting its cohort, trading per-batch latency for larger groups
	// (fewer writes and fsyncs). 0 — the default — commits immediately;
	// concurrent writers still coalesce naturally while the previous
	// cohort's write/fsync is in flight.
	WALGroupWindow time.Duration
	// LegacyIngest selects the pre-group-commit ingest path: WAL encode,
	// write and fsync under one writer lock (one fsync per batch) and a
	// global mutex on head resolution. Kept only so the paired
	// ingest_concurrent benchmarks can measure the before side; never
	// set it in production.
	LegacyIngest bool
	// OnPrune, when set, runs after every retention pass that hid or
	// removed data, with the cutoff and the count of readings removed.
	// The serving tier hooks result-cache invalidation here (janitor
	// prunes change query answers without any insert). The callback runs
	// while the prune cycle still holds its serialisation mutex: it must
	// not call Flush, Prune or Close on this DB.
	OnPrune func(cutoff int64, removed int)
	// FS abstracts the file operations the database performs (WAL
	// appends and fsyncs, segment writes, renames, directory syncs).
	// Nil selects OSFS, the real filesystem. The chaos harness injects a
	// fault-injecting implementation here; production code never sets it.
	FS FS
	// Metrics, when set, registers the DB's telemetry families (WAL
	// cohort/commit histograms, flush/prune/janitor durations,
	// head/segment gauges, chunk-decode counter) in the given registry.
	// Nil leaves the DB uninstrumented at near-zero cost: hot paths
	// still run their metric calls, against unattached metrics.
	Metrics *telemetry.Registry
}

func (o Options) withDefaults() Options {
	if o.FlushEvery == 0 {
		o.FlushEvery = 10 * time.Second
	}
	if o.MaxHeadReadings <= 0 {
		o.MaxHeadReadings = 65536
	}
	if o.MaxHeadAge <= 0 {
		o.MaxHeadAge = 60 * time.Second
	}
	if o.FS == nil {
		o.FS = OSFS
	}
	return o
}

// headShardCount is the number of stripes in the head map; a power of
// two so the shard index is a mask. 64 stripes (matching cache.Set)
// keep two hot topics off the same lock with high probability.
const headShardCount = 64

// headShard is one stripe of the head map: an independent lock + map so
// concurrent InsertBatch calls for different topics never contend.
type headShard struct {
	mu    sync.RWMutex
	heads map[sensor.Topic]*head
}

// headShardIdx maps a topic to its stripe with the shared FNV-1a topic
// hash (the cache.Set sharding idiom).
func headShardIdx(topic sensor.Topic) uint32 {
	return topic.Hash() & (headShardCount - 1)
}

// DB is an embedded persistent time-series database implementing
// store.Backend. All methods are safe for concurrent use.
//
// The package's lock hierarchy is declared below and machine-checked by
// cmd/invlint (see docs/ANALYSIS.md): any function holding a lock may
// only acquire locks that come later in a chain.
//
//lint:lockorder DB.flushMu < DB.ingest < DB.mu < headShard.mu < head.mu
//lint:lockorder DB.mu < wal.mu
//lint:lockorder DB.ingest < wal.mu
//lint:lockorder DB.ingest < DB.legacyMu < headShard.mu
//lint:lockorder DB.ingest < DB.walErrMu
type DB struct {
	dir  string
	opts Options
	fs   FS

	// ingest serialises flushes against the append path: inserts hold it
	// shared while writing WAL record + head so a flush (exclusive) can
	// atomically pair "heads drained" with "WAL rotated" — no reading is
	// ever in a deleted WAL file but missing from both heads and
	// segments.
	ingest sync.RWMutex

	// flushMu serialises whole flush and prune cycles against each
	// other; queries and inserts never take it.
	flushMu sync.Mutex

	mu     sync.RWMutex // guards segs, segSeq, floor, flushing, epoch
	segs   []*segment
	segSeq uint64
	floor  int64 // retention watermark: readings < floor are pruned

	// shards stripe the head map so the insert hot path touches only its
	// topic's lock; db.mu is never taken by InsertBatch. Relocation
	// (flush detach) locks every stripe while holding db.mu exclusively,
	// so the epoch-retry read protocol still detects data moving tiers.
	shards [headShardCount]headShard

	headN     atomic.Int64 // total readings across heads
	headSince atomic.Int64 // unix nanos of the oldest buffered arrival, 0 = empty

	// epoch counts data-relocation events: flush detach/registration,
	// restore, prune. A query snapshots the epoch with its tier
	// pointers, reads lock-free, and retries on a mismatch — so a flush
	// moving readings between heads, the flushing stage and segments can
	// never make them transiently invisible (or visible twice) to a
	// concurrent reader. Plain data arrival does not bump the epoch.
	epoch uint64

	// flushing stages head data detached by an in-progress Flush: the
	// readings stay query-visible here for the whole segment
	// compress+write+fsync window, until the segment is registered in
	// segs (or, on failure, the data is restored into heads). Slices in
	// the map are sorted and immutable.
	flushing map[sensor.Topic][]sensor.Reading

	wal *wal
	// walErr is the first WAL append failure (sticky): once set, the DB
	// keeps serving from memory but reports itself degraded through
	// Stats and Close. walDegraded mirrors it so the insert fast path
	// checks one atomic instead of taking a mutex per batch.
	walErrMu    sync.Mutex
	walErr      error
	walDegraded atomic.Bool
	// flushErr is the most recent flush failure (sticky until a flush
	// succeeds): disk-full or a dead device keeps head data memory-only,
	// and operators see it in Stats instead of only in janitor stderr.
	// Guarded by walErrMu — both stickies describe the same "durability
	// lost" condition.
	flushErr error

	// legacyMu emulates the pre-PR5 global head-resolution lock when
	// Options.LegacyIngest is set (paired benchmarks only).
	legacyMu sync.Mutex

	// idx is the sorted prefix table over live topics answering wildcard
	// expansion in O(matches): built from the recovered topic set at
	// Open, extended by InsertBatch on first sight of a topic, and
	// reconciled by Prune (ResetWith) so retention leaves no ghosts.
	// Its mutex slots between DB.ingest and DB.mu in the cross-package
	// lock order (inserts hold ingest when adding; the prune rebuild's
	// snapshot callback takes db.mu under it) — see docs/ANALYSIS.md.
	idx *store.TopicIndex

	lock *os.File // exclusive directory lock (LOCK file)

	janitorStop chan struct{}
	janitorDone chan struct{}
	closeOnce   sync.Once
	closeErr    error

	// metrics is never nil on an opened DB; without Options.Metrics it
	// holds unattached metrics so instrumentation sites stay
	// unconditional.
	metrics *dbMetrics
}

var _ store.Backend = (*DB)(nil)
var _ store.StatsProvider = (*DB)(nil)
var _ store.PrefixMatcher = (*DB)(nil)

// Open creates or recovers a database in dir. Recovery loads every
// segment index, discards WAL files already covered by segments (a crash
// window between flush and WAL deletion), and replays the remainder into
// fresh heads — after which queries answer exactly as before the crash.
func Open(dir string, opts Options) (*DB, error) {
	opts = opts.withDefaults()
	fs := opts.FS
	openStart := time.Now()
	walDir := filepath.Join(dir, "wal")
	segDir := filepath.Join(dir, "seg")
	for _, d := range []string{dir, walDir, segDir} {
		if err := fs.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("tsdb: %w", err)
		}
	}
	lock, err := lockDir(filepath.Join(dir, "LOCK"))
	if err != nil {
		return nil, err
	}
	segs, err := listSegments(fs, segDir)
	if err != nil {
		lock.Close()
		return nil, err
	}
	db := &DB{
		dir:   dir,
		opts:  opts,
		fs:    fs,
		segs:  segs,
		floor: loadFloor(fs, dir),
		lock:  lock,
		idx:   store.NewTopicIndex(),
	}
	for i := range db.shards {
		db.shards[i].heads = make(map[sensor.Topic]*head)
	}
	db.metrics = newDBMetrics(opts.Metrics, db)
	for _, s := range segs {
		s.decodes = db.metrics.chunkDecodes
	}
	// Re-derive the per-segment prune bookkeeping the persisted
	// watermark implies, so post-restart Prune calls report accurate
	// removal counts.
	if db.floor > math.MinInt64 {
		for _, s := range segs {
			if s.minT < db.floor {
				if n, err := s.countBelow(db.floor); err == nil {
					s.prunedCount = n
				}
			}
		}
	}
	coveredWAL := uint64(0)
	for _, s := range segs {
		if s.seq >= db.segSeq {
			db.segSeq = s.seq + 1
		}
		if s.coveredWAL > coveredWAL {
			coveredWAL = s.coveredWAL
		}
	}
	walFiles, err := listWAL(fs, walDir)
	if err != nil {
		db.metrics.closeMetrics()
		lock.Close()
		return nil, err
	}
	maxWALSeq := coveredWAL
	for _, wf := range walFiles {
		if wf.seq <= coveredWAL {
			fs.Remove(wf.path) // flushed before the crash; leftover
			continue
		}
		if err := replayWAL(fs, wf.path, func(topic sensor.Topic, rs []sensor.Reading) {
			// Drop readings below the persisted retention watermark: a
			// pre-crash Prune already removed them, and replaying them
			// into heads would skew head counts and later Prune totals.
			if db.floor > math.MinInt64 {
				live := rs[:0]
				for _, r := range rs {
					if r.Time >= db.floor {
						live = append(live, r)
					}
				}
				rs = live
			}
			if len(rs) == 0 {
				return
			}
			db.headFor(topic).insert(rs)
			db.headN.Add(int64(len(rs)))
		}); err != nil {
			db.metrics.closeMetrics()
			lock.Close()
			return nil, fmt.Errorf("tsdb: replaying %s: %w", wf.path, err)
		}
		if wf.seq > maxWALSeq {
			maxWALSeq = wf.seq
		}
	}
	if db.headN.Load() > 0 {
		db.headSince.Store(time.Now().UnixNano())
	}
	// Recovery: seed the prefix index with every live topic (segments +
	// replayed heads), so wildcard expansion answers right after restart.
	db.idx.ResetWith(db.Topics)
	db.wal, err = newWAL(fs, walDir, maxWALSeq+1, opts.WALSync)
	if err != nil {
		db.metrics.closeMetrics()
		lock.Close()
		return nil, err
	}
	db.wal.groupWindow = opts.WALGroupWindow
	db.wal.legacy = opts.LegacyIngest
	db.wal.m = db.metrics
	db.metrics.recoverySec.Set(time.Since(openStart).Seconds())
	if opts.FlushEvery > 0 {
		db.janitorStop = make(chan struct{})
		db.janitorDone = make(chan struct{})
		go db.janitor()
	}
	return db, nil
}

// Dir returns the database directory.
func (db *DB) Dir() string { return db.dir }

// headFor returns the topic's head block, creating it on first sight.
// Only the topic's shard lock is taken; creation upgrades internally.
func (db *DB) headFor(topic sensor.Topic) *head {
	sh := &db.shards[headShardIdx(topic)]
	sh.mu.RLock()
	h := sh.heads[topic]
	sh.mu.RUnlock()
	if h != nil {
		return h
	}
	sh.mu.Lock()
	if h = sh.heads[topic]; h == nil {
		h = &head{}
		sh.heads[topic] = h
	}
	sh.mu.Unlock()
	return h
}

// headLookup returns the topic's head block, or nil, without creating
// one.
func (db *DB) headLookup(topic sensor.Topic) *head {
	sh := &db.shards[headShardIdx(topic)]
	sh.mu.RLock()
	h := sh.heads[topic]
	sh.mu.RUnlock()
	return h
}

// Insert appends one reading.
func (db *DB) Insert(topic sensor.Topic, r sensor.Reading) {
	db.InsertBatch(topic, []sensor.Reading{r})
}

// InsertBatch logs and buffers one topic's reading batch: one staged
// group-commit record, one head-shard lock. Concurrent batches for
// different topics share a single WAL write (+ fsync) and never touch a
// common lock beyond the shared ingest read-lock.
func (db *DB) InsertBatch(topic sensor.Topic, rs []sensor.Reading) {
	if len(rs) == 0 {
		return
	}
	db.ingest.RLock()
	defer db.ingest.RUnlock()
	if !db.walDegraded.Load() {
		// A failing WAL (disk full, dead device) must not lose data
		// silently while the process lives: keep serving from memory and
		// surface the error through Stats/Close. Appending is suspended
		// entirely once degraded — a partial write leaves a torn record
		// mid-file, and replay would stop there, silently dropping any
		// record written after it. A later successful Flush covers the
		// un-logged heads with a segment and re-arms the fresh WAL.
		if err := db.wal.Append(topic, rs); err != nil {
			db.noteWALError(err)
		}
	}
	if db.opts.LegacyIngest {
		// Pre-PR5 shape: every writer funnels through one mutex to
		// resolve its head block (benchmarks only).
		db.legacyMu.Lock()
		h := db.headFor(topic)
		db.headN.Add(int64(len(rs)))
		db.headSince.CompareAndSwap(0, time.Now().UnixNano())
		db.legacyMu.Unlock()
		h.insert(rs)
		db.idx.Add(topic)
		return
	}
	h := db.headFor(topic)
	h.insert(rs)
	db.headN.Add(int64(len(rs)))
	db.headSince.CompareAndSwap(0, time.Now().UnixNano())
	// Index after the data is live: should this Add serialise after a
	// concurrent prune rebuild, the rebuild's snapshot already saw the
	// readings, and either ordering leaves the topic indexed.
	db.idx.Add(topic)
}

func (db *DB) noteWALError(err error) {
	db.walErrMu.Lock()
	first := db.walErr == nil
	if first {
		db.walErr = err
		db.walDegraded.Store(true)
	}
	db.walErrMu.Unlock()
	if first {
		db.metrics.walDegrades.Inc()
		fmt.Fprintf(os.Stderr, "tsdb: WAL write failed (serving from memory only): %v\n", err)
	}
}

// walError returns the sticky WAL failure, if any.
func (db *DB) walError() error {
	db.walErrMu.Lock()
	defer db.walErrMu.Unlock()
	return db.walErr
}

// clearWALError re-arms durability after a successful rotate, returning
// the previous sticky failure.
func (db *DB) clearWALError() error {
	db.walErrMu.Lock()
	prev := db.walErr
	db.walErr = nil
	db.walDegraded.Store(false)
	db.walErrMu.Unlock()
	return prev
}

// noteFlushError records a failed flush (sticky until one succeeds) so
// a database wedged on a full disk is visible in Stats, not only in the
// janitor's stderr.
func (db *DB) noteFlushError(err error) {
	db.metrics.flushFailures.Inc()
	db.walErrMu.Lock()
	db.flushErr = err
	db.walErrMu.Unlock()
}

// clearFlushError re-arms after a successful flush — space returned (or
// the device recovered) and the staged data reached a segment.
func (db *DB) clearFlushError() {
	db.walErrMu.Lock()
	db.flushErr = nil
	db.walErrMu.Unlock()
}

// flushError returns the sticky flush failure, if any.
func (db *DB) flushError() error {
	db.walErrMu.Lock()
	defer db.walErrMu.Unlock()
	return db.flushErr
}

// metaPath holds the persisted retention watermark.
func metaPath(dir string) string { return filepath.Join(dir, "meta.json") }

type metaFile struct {
	Floor int64 `json:"floor"`
}

// loadFloor reads the persisted retention watermark; a missing or
// unreadable meta file means no watermark (the janitor re-derives it on
// its first retention pass).
func loadFloor(fs FS, dir string) int64 {
	raw, err := fs.ReadFile(metaPath(dir))
	if err != nil {
		return math.MinInt64
	}
	var m metaFile
	if json.Unmarshal(raw, &m) != nil || m.Floor == 0 {
		return math.MinInt64
	}
	return m.Floor
}

// saveFloor persists the watermark atomically. Best-effort: a crash
// before the write merely resurrects already-expired readings until the
// next retention pass.
func saveFloor(fs FS, dir string, floor int64) {
	raw, err := json.Marshal(metaFile{Floor: floor})
	if err != nil {
		return
	}
	tmp := metaPath(dir) + ".tmp"
	if err := fs.WriteFile(tmp, raw, 0o644); err != nil {
		fs.Remove(tmp)
		return
	}
	if err := fs.Rename(tmp, metaPath(dir)); err != nil {
		fs.Remove(tmp)
	}
}

// tierView is one epoch-stamped snapshot of where a topic's readings
// live: immutable segments, the immutable flushing stage and the
// mutable head block.
type tierView struct {
	epoch uint64
	floor int64
	segs  []*segment
	fl    []sensor.Reading
	h     *head
}

func (db *DB) view(topic sensor.Topic) tierView {
	db.mu.RLock()
	v := tierView{
		epoch: db.epoch,
		floor: db.floor,
		segs:  db.segs,
		fl:    db.flushing[topic],
	}
	db.mu.RUnlock()
	// The head pointer is resolved outside db.mu (shard lock only); if a
	// flush relocates it between the snapshot above and this lookup, the
	// epoch check catches it and the read retries.
	v.h = db.headLookup(topic)
	return v
}

// stable reports whether no data relocation happened since the view was
// taken; an unstable read is discarded and retried.
func (db *DB) stable(v tierView) bool {
	db.mu.RLock()
	ok := db.epoch == v.epoch
	db.mu.RUnlock()
	return ok
}

// appendSortedRange appends the readings of a sorted slice with
// timestamps in [t0, t1] to dst.
func appendSortedRange(rs []sensor.Reading, t0, t1 int64, dst []sensor.Reading) []sensor.Reading {
	lo := sort.Search(len(rs), func(i int) bool { return rs[i].Time >= t0 })
	hi := sort.Search(len(rs), func(i int) bool { return rs[i].Time > t1 })
	return append(dst, rs[lo:hi]...)
}

// Range implements store.Backend: segments first (oldest flush to
// newest), then the flushing stage, then the head block. The merged
// result is re-sorted only when an out-of-order insert straddled a flush
// boundary.
func (db *DB) Range(topic sensor.Topic, t0, t1 int64, dst []sensor.Reading) []sensor.Reading {
	if t1 < t0 {
		return dst
	}
	base := len(dst)
	for {
		v := db.view(topic)
		lo := t0
		if lo < v.floor {
			lo = v.floor
		}
		out := dst[:base]
		for _, s := range v.segs {
			// An unreadable or corrupt chunk is skipped whole — partial
			// decodes are truncated away so a silently cut-short series
			// never masquerades as a complete answer.
			mark := len(out)
			res, err := s.appendRange(topic, lo, t1, out)
			if err != nil {
				out = res[:mark]
				continue
			}
			out = res
		}
		out = appendSortedRange(v.fl, lo, t1, out)
		if v.h != nil {
			out = v.h.appendRange(lo, t1, out)
		}
		if !db.stable(v) {
			dst = out[:base]
			continue
		}
		if !sortedFrom(out, base) {
			sort.SliceStable(out[base:], func(i, j int) bool {
				return out[base+i].Time < out[base+j].Time
			})
		}
		return out
	}
}

func sortedFrom(rs []sensor.Reading, start int) bool {
	for i := start + 1; i < len(rs); i++ {
		if rs[i].Time < rs[i-1].Time {
			return false
		}
	}
	return true
}

// Latest implements store.Backend. Because a late out-of-order arrival
// can leave the head's newest reading older than a flushed segment's,
// every tier whose time bound can beat the current best is consulted.
func (db *DB) Latest(topic sensor.Topic) (sensor.Reading, bool) {
	for {
		v := db.view(topic)
		var best sensor.Reading
		found := false
		if v.h != nil {
			if r, ok := v.h.latest(v.floor); ok {
				best, found = r, true
			}
		}
		if n := len(v.fl); n > 0 && v.fl[n-1].Time >= v.floor &&
			(!found || v.fl[n-1].Time > best.Time) {
			best, found = v.fl[n-1], true
		}
		for i := len(v.segs) - 1; i >= 0; i-- {
			ss, ok := v.segs[i].series[topic]
			if !ok || ss.maxT < v.floor || (found && ss.maxT <= best.Time) {
				continue
			}
			if r, ok, err := v.segs[i].latest(topic, v.floor); err == nil && ok &&
				(!found || r.Time > best.Time) {
				best, found = r, true
			}
		}
		if db.stable(v) {
			return best, found
		}
	}
}

// Count implements store.Backend.
func (db *DB) Count(topic sensor.Topic) int {
	for {
		v := db.view(topic)
		n := 0
		for _, s := range v.segs {
			c, err := s.countFrom(topic, v.floor)
			if err == nil {
				n += c
			}
		}
		n += len(v.fl) - sort.Search(len(v.fl), func(i int) bool {
			return v.fl[i].Time >= v.floor
		})
		if v.h != nil {
			n += v.h.countFrom(v.floor)
		}
		if db.stable(v) {
			return n
		}
	}
}

// topicSet returns the set of topics with at least one live reading.
// Heads are striped, so the scan cannot read heads and the flushing
// stage under one lock anymore; the epoch retry makes the combined
// snapshot consistent (a flush draining a head into the stage mid-scan
// bumps the epoch and the scan reruns).
func (db *DB) topicSet() map[sensor.Topic]bool {
	for {
		db.mu.RLock()
		epoch := db.epoch
		floor := db.floor
		segs := db.segs
		flushing := db.flushing
		db.mu.RUnlock()
		var seen map[sensor.Topic]bool
		for i := range db.shards {
			sh := &db.shards[i]
			sh.mu.RLock()
			if seen == nil {
				seen = make(map[sensor.Topic]bool, (len(sh.heads)+1)*headShardCount)
			}
			for t, h := range sh.heads {
				if h.countFrom(floor) > 0 {
					seen[t] = true
				}
			}
			sh.mu.RUnlock()
		}
		for t, rs := range flushing {
			if !seen[t] && len(rs) > 0 && rs[len(rs)-1].Time >= floor {
				seen[t] = true
			}
		}
		for _, s := range segs {
			for t, ss := range s.series {
				if !seen[t] && ss.maxT >= floor {
					seen[t] = true
				}
			}
		}
		if db.stable(tierView{epoch: epoch}) {
			return seen
		}
	}
}

// Topics implements store.Backend.
func (db *DB) Topics() []sensor.Topic {
	seen := db.topicSet()
	out := make([]sensor.Topic, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// collectHeads snapshots every live head block across the shards.
func (db *DB) collectHeads(dst []*head) []*head {
	for i := range db.shards {
		sh := &db.shards[i]
		sh.mu.RLock()
		for _, h := range sh.heads {
			dst = append(dst, h)
		}
		sh.mu.RUnlock()
	}
	return dst
}

// TotalReadings returns the number of live readings across all series.
func (db *DB) TotalReadings() int {
	for {
		db.mu.RLock()
		epoch := db.epoch
		floor := db.floor
		n := 0
		// Segment counts and prune bookkeeping are mutated only under
		// db.mu, so tally them while holding it (no chunk decodes here).
		for _, s := range db.segs {
			for _, ss := range s.series {
				n += ss.count
			}
			n -= s.prunedCount
		}
		flushing := db.flushing
		db.mu.RUnlock()
		heads := db.collectHeads(nil)
		for _, rs := range flushing {
			n += len(rs) - sort.Search(len(rs), func(i int) bool {
				return rs[i].Time >= floor
			})
		}
		for _, h := range heads {
			n += h.countFrom(floor)
		}
		if db.stable(tierView{epoch: epoch}) {
			return n
		}
	}
}

// Flush drains every head block into one new immutable segment and
// retires the WAL files the segment now covers. A flush with empty heads
// only rotates the WAL. Safe to call concurrently with inserts and
// queries: the detached data stays visible through the flushing stage
// for the entire segment-write window.
func (db *DB) Flush() error {
	db.flushMu.Lock()
	defer db.flushMu.Unlock()
	flushStart := telemetry.Clock()
	defer db.metrics.flushSeconds.ObserveSince(flushStart)
	db.metrics.flushes.Inc()
	db.ingest.Lock()
	// Atomically: detach head data into the flushing stage, rotate the
	// WAL. Inserts resume into fresh heads + the new WAL file while the
	// segment is written from the stage. The shard locks nest inside
	// db.mu (the one place both are held), so the detach is invisible to
	// epoch-checked readers until db.mu is released with the epoch
	// bumped.
	db.mu.Lock()
	data := make(map[sensor.Topic][]sensor.Reading)
	for i := range db.shards {
		sh := &db.shards[i]
		sh.mu.Lock()
		for t, h := range sh.heads {
			h.mu.Lock() // a janitor-less Prune may be trimming concurrently
			if len(h.data) > 0 {
				data[t] = h.data
				h.data = nil
			}
			h.mu.Unlock()
		}
		sh.heads = make(map[sensor.Topic]*head, len(sh.heads))
		sh.mu.Unlock()
	}
	db.headN.Store(0)
	db.headSince.Store(0)
	db.flushing = data
	segSeq := db.segSeq
	db.segSeq++
	db.epoch++
	db.mu.Unlock()
	retiredWAL, err := db.wal.rotate()
	// A degraded WAL re-arms here, before inserts resume: the rotate
	// produced a fresh untorn file, and everything the old WAL missed is
	// in the detached stage bound for the segment. Clearing later (after
	// the segment write) would let inserts racing that window skip the
	// WAL and then report healthy.
	var prevWALErr error
	if err == nil {
		prevWALErr = db.clearWALError()
	}
	db.ingest.Unlock()
	if err != nil {
		db.restoreFlushing()
		ferr := fmt.Errorf("tsdb: rotating WAL: %w", err)
		db.noteFlushError(ferr)
		return ferr
	}

	walDir := filepath.Join(db.dir, "wal")
	if len(data) == 0 {
		// Nothing buffered: the retired WAL files hold nothing beyond
		// what segments already cover.
		db.mu.Lock()
		db.flushing = nil
		db.epoch++
		db.mu.Unlock()
		db.removeWALThrough(walDir, retiredWAL)
		db.clearFlushError()
		return nil
	}
	seg, err := writeSegment(db.fs, filepath.Join(db.dir, "seg"), segSeq, retiredWAL, data)
	if err != nil {
		// Segment write failed: put the data back into heads so memory
		// still serves it; the retired WAL files stay for recovery. If
		// the WAL had been degraded, the restored heads contain readings
		// in no log or segment — stay degraded until a flush succeeds.
		db.restoreFlushing()
		if prevWALErr != nil {
			db.noteWALError(prevWALErr)
		}
		ferr := fmt.Errorf("tsdb: writing segment: %w", err)
		db.noteFlushError(ferr)
		return ferr
	}
	seg.decodes = db.metrics.chunkDecodes
	flushed := 0
	for _, rs := range data {
		flushed += len(rs)
	}
	db.metrics.flushedRead.Add(uint64(flushed))
	db.mu.Lock()
	db.segs = append(db.segs, seg)
	db.flushing = nil
	db.epoch++
	db.mu.Unlock()
	db.removeWALThrough(walDir, retiredWAL)
	db.clearFlushError()
	return nil
}

// restoreFlushing moves staged flush data back into the head blocks
// after a failed flush, so live queries keep answering from memory and
// the next flush retries.
func (db *DB) restoreFlushing() {
	db.mu.Lock()
	defer db.mu.Unlock()
	n := 0
	for t, rs := range db.flushing {
		db.headFor(t).insert(rs)
		n += len(rs)
	}
	db.flushing = nil
	db.headN.Add(int64(n))
	if n > 0 {
		db.headSince.CompareAndSwap(0, time.Now().UnixNano())
	}
	db.epoch++
}

// removeWALThrough deletes WAL files with sequence <= maxSeq. Failures
// are harmless: recovery skips covered files by sequence.
func (db *DB) removeWALThrough(walDir string, maxSeq uint64) {
	files, err := listWAL(db.fs, walDir)
	if err != nil {
		return
	}
	for _, wf := range files {
		if wf.seq <= maxSeq {
			db.fs.Remove(wf.path)
		}
	}
}

// Prune implements store.Backend: it advances the retention watermark,
// physically trims head blocks, deletes fully-expired segment files and
// returns the number of readings newly removed. Data in the flushing
// stage is left for its segment; the watermark hides it. The watermark
// persists across restarts (meta.json), so expired readings do not
// resurrect when segments and WAL are reloaded.
func (db *DB) Prune(cutoff int64) int {
	db.flushMu.Lock() // serialise against Flush: segs/head bookkeeping
	defer db.flushMu.Unlock()
	pruneStart := telemetry.Clock()
	defer db.metrics.pruneSeconds.ObserveSince(pruneStart)
	db.mu.Lock()
	if cutoff <= db.floor {
		db.mu.Unlock()
		return 0
	}
	db.epoch++ // the floor moved: in-flight reads must retry against it
	db.floor = cutoff
	segs := db.segs
	db.mu.Unlock()
	heads := db.collectHeads(nil)

	// Chunk decodes (countBelow) run without any db-wide lock: segments
	// are immutable and flushMu keeps the set stable. Inserts and
	// queries proceed throughout.
	removed := 0
	kept := make([]*segment, 0, len(segs))
	newPruned := make(map[*segment]int)
	var expired []*segment
	for _, s := range segs {
		if s.maxT < cutoff {
			expired = append(expired, s)
			continue
		}
		if s.minT < cutoff {
			// Watermark cuts through this segment: count what it newly
			// hides, on top of what previous prunes already counted.
			// Only Prune mutates prunedCount, and flushMu serialises
			// Prunes, so reading it here is safe.
			if below, err := s.countBelow(cutoff); err == nil && below != s.prunedCount {
				removed += below - s.prunedCount
				newPruned[s] = below
			}
		}
		kept = append(kept, s)
	}
	headDropped := 0
	for _, h := range heads {
		headDropped += h.prune(cutoff)
	}
	removed += headDropped

	changed := len(newPruned) > 0 || len(expired) > 0 || headDropped > 0
	db.mu.Lock()
	// Readers hold snapshots of the old slice header, so the surviving
	// set goes into the fresh slice, never compacted in place; the
	// prunedCount writes land under db.mu because TotalReadings reads
	// them there.
	for s, n := range newPruned {
		s.prunedCount = n
	}
	db.segs = kept
	if changed {
		db.epoch++
	}
	db.mu.Unlock()
	db.headN.Add(int64(-headDropped))
	for _, s := range expired {
		total := 0
		for _, ss := range s.series {
			total += ss.count
		}
		removed += total - s.prunedCount
		s.close()
		db.fs.Remove(s.path)
	}
	// Persist the watermark only when it actually hid or dropped
	// something: a janitor pass on an idle window then costs no write.
	if changed {
		saveFloor(db.fs, db.dir, cutoff)
		// Reconcile the prefix index against the surviving topic set so
		// wildcard expansion stops listing fully-expired sensors. The
		// snapshot runs under the index lock: an insert reviving a topic
		// either lands before the snapshot (and is seen) or re-adds
		// itself right after — never lost, never a ghost.
		db.idx.ResetWith(db.Topics)
		if db.opts.OnPrune != nil {
			db.opts.OnPrune(cutoff, removed)
		}
	}
	if removed > 0 {
		db.metrics.prunedReadings.Add(uint64(removed))
	}
	return removed
}

// TopicsPrefix implements store.PrefixMatcher: the sorted live topics at
// or below prefix, answered from the incrementally-maintained prefix
// index in O(log n + matches). Between retention passes the index may
// briefly retain a topic whose last readings the watermark already
// hides; the next Prune reconciles it away.
func (db *DB) TopicsPrefix(prefix sensor.Topic) []sensor.Topic {
	return db.idx.Prefix(prefix, nil)
}

// Stats implements store.StatsProvider.
func (db *DB) Stats() store.BackendStats {
	db.mu.RLock()
	segs := db.segs
	headN := int(db.headN.Load())
	for _, rs := range db.flushing {
		headN += len(rs) // staged mid-flush: still memory-resident
	}
	db.mu.RUnlock()
	st := store.BackendStats{
		Kind:         "tsdb",
		Segments:     len(segs),
		HeadReadings: headN,
	}
	if err := db.walError(); err != nil {
		st.Error = fmt.Sprintf("WAL degraded, recent data not durable: %v", err)
	}
	if err := db.flushError(); err != nil {
		if st.Error != "" {
			st.Error += "; "
		}
		st.Error += fmt.Sprintf("last flush failed, head data retained in memory: %v", err)
	}
	st.Topics = len(db.topicSet())
	st.TotalReadings = db.TotalReadings()
	for _, s := range segs {
		st.DiskBytes += s.size
	}
	walDir := filepath.Join(db.dir, "wal")
	if files, err := listWAL(db.fs, walDir); err == nil {
		for _, wf := range files {
			if fi, err := db.fs.Stat(wf.path); err == nil {
				st.WALFiles++
				st.WALBytes += fi.Size()
			}
		}
	}
	st.DiskBytes += st.WALBytes
	return st
}

// Close stops the janitor, flushes outstanding heads into a final
// segment and closes every file, releasing the directory lock. In-flight
// group commits are drained first (Flush waits out concurrent inserts,
// and wal.Close waits out any commit leader), so every acknowledged
// InsertBatch is on disk before the process moves on. After a clean
// Close the WAL is empty and reopening serves entirely from segments. A
// WAL append failure during the DB's lifetime (data served from memory
// but not durable) surfaces in the returned error.
func (db *DB) Close() error {
	db.closeOnce.Do(func() {
		if db.janitorStop != nil {
			close(db.janitorStop)
			<-db.janitorDone
		}
		err := db.Flush()
		if werr := db.wal.Close(); err == nil {
			err = werr
		}
		db.mu.Lock()
		for _, s := range db.segs {
			if cerr := s.close(); err == nil {
				err = cerr
			}
		}
		db.mu.Unlock()
		if werr := db.walError(); err == nil && werr != nil {
			err = fmt.Errorf("tsdb: WAL degraded during run, recent data may not be durable: %w", werr)
		}
		if db.lock != nil {
			db.lock.Close()
		}
		db.metrics.closeMetrics()
		db.closeErr = err
	})
	return db.closeErr
}

// Abandon simulates a process kill for crash-recovery tests and drills:
// it stops the janitor and releases every file handle — including the
// directory lock, exactly as process death would — WITHOUT flushing
// heads or syncing the WAL. In-flight group commits are waited out (an
// acknowledged Append is on disk; an unacknowledged one may or may not
// be, exactly the kill semantics). The on-disk state is what a SIGKILL
// leaves behind; the DB must not be used afterwards.
func (db *DB) Abandon() {
	db.closeOnce.Do(func() {
		if db.janitorStop != nil {
			close(db.janitorStop)
			<-db.janitorDone
		}
		db.wal.abandon()
		db.mu.Lock()
		for _, s := range db.segs {
			s.close()
		}
		db.mu.Unlock()
		if db.lock != nil {
			db.lock.Close()
		}
		db.metrics.closeMetrics()
		db.closeErr = fmt.Errorf("tsdb: database was abandoned")
	})
}
