package tsdb

import (
	"github.com/dcdb/wintermute/internal/telemetry"
)

// dbMetrics bundles every telemetry handle a DB touches. It is always
// non-nil on an opened DB: with no registry configured the metrics are
// minted from a nil *telemetry.Registry, so they count into nowhere and
// the instrumentation call sites stay unconditional. Hot-path members
// (WAL counters/histograms, chunk decodes) are plain atomics; the
// derived sizes (head readings, segment count) are callback gauges
// evaluated only at scrape time.
type dbMetrics struct {
	walAppends *telemetry.Counter   // records staged through Append
	walBytes   *telemetry.Counter   // bytes written to the active WAL file
	walCommits *telemetry.Counter   // physical write (+sync) operations
	walCohort  *telemetry.Histogram // records persisted per commit cohort
	walCommitS *telemetry.Histogram // seconds per commit write (+fsync)

	flushes        *telemetry.Counter
	flushFailures  *telemetry.Counter // flush cycles that returned an error
	walDegrades    *telemetry.Counter // WAL degrade episodes (first sticky error)
	flushSeconds   *telemetry.Histogram
	flushedRead    *telemetry.Counter
	pruneSeconds   *telemetry.Histogram
	prunedReadings *telemetry.Counter
	janitorSeconds *telemetry.Histogram
	recoverySec    *telemetry.Gauge

	chunkDecodes *telemetry.Counter

	handles []*telemetry.FuncHandle
}

// walCohortBuckets sizes the cohort histogram: group commit coalesces
// from 1 (uncontended) to hundreds of records per fsync under load.
var walCohortBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}

// newDBMetrics registers the DB's metric families in reg (which may be
// nil) and returns the bundle. Callback gauges read db state and are
// closed by closeMetrics before the DB tears that state down.
func newDBMetrics(reg *telemetry.Registry, db *DB) *dbMetrics {
	m := &dbMetrics{
		walAppends: reg.Counter("dcdb_tsdb_wal_appends_total",
			"WAL records staged through the group committer."),
		walBytes: reg.Counter("dcdb_tsdb_wal_bytes_total",
			"Bytes written to the write-ahead log."),
		walCommits: reg.Counter("dcdb_tsdb_wal_commits_total",
			"Physical WAL commit operations (one write, plus one fsync in sync mode)."),
		walCohort: reg.Histogram("dcdb_tsdb_wal_cohort_records",
			"Records persisted per group-commit cohort.", walCohortBuckets),
		walCommitS: reg.Histogram("dcdb_tsdb_wal_commit_seconds",
			"Seconds per WAL commit write (includes the fsync in sync mode).",
			telemetry.DefDurationBuckets),
		flushes: reg.Counter("dcdb_tsdb_flushes_total",
			"Head-to-segment flush cycles."),
		flushFailures: reg.Counter("dcdb_tsdb_flush_failures_total",
			"Flush cycles that failed (disk full, write errors); staged data restored to heads."),
		walDegrades: reg.Counter("dcdb_tsdb_wal_degrade_episodes_total",
			"Times the WAL entered degraded (memory-only) mode on a sticky append failure."),
		flushSeconds: reg.Histogram("dcdb_tsdb_flush_seconds",
			"Seconds per flush cycle (detach, segment write, WAL retirement).",
			telemetry.DefDurationBuckets),
		flushedRead: reg.Counter("dcdb_tsdb_flushed_readings_total",
			"Readings moved from heads into segments by flushes."),
		pruneSeconds: reg.Histogram("dcdb_tsdb_prune_seconds",
			"Seconds per retention prune pass.", telemetry.DefDurationBuckets),
		prunedReadings: reg.Counter("dcdb_tsdb_pruned_readings_total",
			"Readings removed or hidden by retention pruning."),
		janitorSeconds: reg.Histogram("dcdb_tsdb_janitor_pass_seconds",
			"Seconds per janitor pass (flush/prune decisions included).",
			telemetry.DefDurationBuckets),
		recoverySec: reg.Gauge("dcdb_tsdb_recovery_seconds",
			"Duration of the last Open recovery (segment load + WAL replay)."),
		chunkDecodes: reg.Counter("dcdb_tsdb_chunk_decodes_total",
			"Segment chunks decoded on behalf of queries and prunes."),
	}
	if reg != nil && db != nil {
		m.handles = append(m.handles,
			reg.GaugeFunc("dcdb_tsdb_head_readings",
				"Readings buffered in mutable heads (flushing stage excluded).",
				func() float64 { return float64(db.headN.Load()) }),
			reg.GaugeFunc("dcdb_tsdb_segments",
				"Open immutable segment files.",
				func() float64 {
					db.mu.RLock()
					n := len(db.segs)
					db.mu.RUnlock()
					return float64(n)
				}),
			reg.GaugeFunc("dcdb_tsdb_wal_degraded",
				"1 when the WAL has a sticky append failure, else 0.",
				func() float64 {
					if db.walDegraded.Load() {
						return 1
					}
					return 0
				}),
		)
	}
	return m
}

// closeMetrics unregisters the DB's callback gauges; called from Close
// and Abandon before file handles go away.
func (m *dbMetrics) closeMetrics() {
	for _, h := range m.handles {
		h.Close()
	}
	m.handles = nil
}

// ChunksDecoded returns the number of segment chunks this DB has
// decoded since Open, the currency of the slow-query log's
// chunks_decoded field. Counting follows the telemetry enable switch.
func (db *DB) ChunksDecoded() uint64 { return db.metrics.chunkDecodes.Value() }
