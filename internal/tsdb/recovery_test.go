package tsdb

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/dcdb/wintermute/internal/sensor"
	"github.com/dcdb/wintermute/internal/testseed"
)

// crash abandons a DB the way a process kill would: no flush, no WAL
// sync beyond what Append already wrote. The data files on disk are
// exactly what a killed collect agent leaves behind (Abandon also
// releases the directory flock, as process death would).
func crash(db *DB) {
	db.Abandon()
}

// fill inserts a randomized workload: per readings on each of n
// topics, mixing batch sizes, with integer-ish sensor values. The rng
// comes from testseed so a failing shape is replayable by seed.
func fill(db *DB, rng *rand.Rand, n, per int, t0 int64) []sensor.Topic {
	topics := make([]sensor.Topic, n)
	for i := range topics {
		topics[i] = sensor.Topic(fmt.Sprintf("/r%02d/c%d/s%d/power", i/16, i/4%4, i%4))
	}
	for _, tp := range topics {
		for k := 0; k < per; {
			batch := 1 + rng.Intn(8)
			if k+batch > per {
				batch = per - k
			}
			rs := make([]sensor.Reading, batch)
			for j := range rs {
				rs[j] = sensor.Reading{
					Time:  t0 + int64(k+j)*sec,
					Value: 100 + float64((k+j)%23) + float64(rng.Intn(5)),
				}
			}
			db.InsertBatch(tp, rs)
			k += batch
		}
	}
	return topics
}

// snapshotQueries captures every answer shape the acceptance criteria
// compare across a crash: full ranges, sub-ranges, latest and counts.
type querySnapshot struct {
	ranges map[sensor.Topic][]sensor.Reading
	sub    map[sensor.Topic][]sensor.Reading
	latest map[sensor.Topic]sensor.Reading
	counts map[sensor.Topic]int
}

func snapshotQueries(db *DB, topics []sensor.Topic, t0, t1 int64) querySnapshot {
	s := querySnapshot{
		ranges: map[sensor.Topic][]sensor.Reading{},
		sub:    map[sensor.Topic][]sensor.Reading{},
		latest: map[sensor.Topic]sensor.Reading{},
		counts: map[sensor.Topic]int{},
	}
	mid := t0 + (t1-t0)/2
	for _, tp := range topics {
		s.ranges[tp] = db.Range(tp, t0, t1, nil)
		s.sub[tp] = db.Range(tp, t0+(t1-t0)/4, mid, nil)
		if r, ok := db.Latest(tp); ok {
			s.latest[tp] = r
		}
		s.counts[tp] = db.Count(tp)
	}
	return s
}

func compareSnapshots(t *testing.T, want, got querySnapshot, topics []sensor.Topic) {
	t.Helper()
	sameReadings := func(a, b []sensor.Reading) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i].Time != b[i].Time ||
				math.Float64bits(a[i].Value) != math.Float64bits(b[i].Value) {
				return false
			}
		}
		return true
	}
	for _, tp := range topics {
		if !sameReadings(want.ranges[tp], got.ranges[tp]) {
			t.Fatalf("%s: full Range diverged after recovery (%d vs %d readings)",
				tp, len(want.ranges[tp]), len(got.ranges[tp]))
		}
		if !sameReadings(want.sub[tp], got.sub[tp]) {
			t.Fatalf("%s: sub Range diverged after recovery", tp)
		}
		if want.latest[tp] != got.latest[tp] {
			t.Fatalf("%s: Latest = %+v, want %+v", tp, got.latest[tp], want.latest[tp])
		}
		if want.counts[tp] != got.counts[tp] {
			t.Fatalf("%s: Count = %d, want %d", tp, got.counts[tp], want.counts[tp])
		}
	}
}

// TestCrashRecoveryWALOnly kills the DB before any flush: recovery must
// come entirely from WAL replay.
func TestCrashRecoveryWALOnly(t *testing.T) {
	dir := t.TempDir()
	db := openTest(t, dir, Options{})
	topics := fill(db, testseed.Rand(t), 16, 100, 0)
	want := snapshotQueries(db, topics, 0, 100*sec)
	crash(db)

	db2 := openTest(t, dir, Options{})
	defer db2.Close()
	compareSnapshots(t, want, snapshotQueries(db2, topics, 0, 100*sec), topics)
	if st := db2.Stats(); st.Segments != 0 || st.HeadReadings == 0 {
		t.Fatalf("recovery should land in heads: %+v", st)
	}
}

// TestCrashRecoveryMixed flushes mid-stream, keeps writing, then kills:
// recovery must merge segments with WAL replay without duplicating the
// flushed readings.
func TestCrashRecoveryMixed(t *testing.T) {
	dir := t.TempDir()
	db := openTest(t, dir, Options{})
	rng := testseed.Rand(t)
	topics := fill(db, rng, 16, 60, 0)
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	fill(db, rng, 16, 60, 60*sec) // same topics, later window
	want := snapshotQueries(db, topics, 0, 120*sec)
	crash(db)

	db2 := openTest(t, dir, Options{})
	defer db2.Close()
	compareSnapshots(t, want, snapshotQueries(db2, topics, 0, 120*sec), topics)
	if st := db2.Stats(); st.Segments != 1 {
		t.Fatalf("Segments = %d, want 1", st.Segments)
	}
}

// TestCrashRecoveryTornWALRecord simulates a kill mid-write: the final
// WAL record is torn. Recovery must keep everything before the tear and
// ignore the tail without erroring.
func TestCrashRecoveryTornWALRecord(t *testing.T) {
	dir := t.TempDir()
	db := openTest(t, dir, Options{})
	for i := 0; i < 100; i++ {
		db.Insert("/x", sensor.Reading{Value: float64(i), Time: int64(i) * sec})
	}
	crash(db)

	wals, err := listWAL(OSFS, filepath.Join(dir, "wal"))
	if err != nil || len(wals) == 0 {
		t.Fatalf("listWAL: %v (%d files)", err, len(wals))
	}
	last := wals[len(wals)-1].path
	fi, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the last record: chop 5 bytes off the file.
	if err := os.Truncate(last, fi.Size()-5); err != nil {
		t.Fatal(err)
	}

	db2 := openTest(t, dir, Options{})
	defer db2.Close()
	got := db2.Range("/x", 0, 200*sec, nil)
	if len(got) != 99 {
		t.Fatalf("recovered %d readings, want 99 (final record torn)", len(got))
	}
	for i, r := range got {
		if r.Value != float64(i) {
			t.Fatalf("reading %d = %+v", i, r)
		}
	}
}

// TestCrashRecoveryCorruptWALRecord flips a payload byte in the tail
// record: the CRC must reject it while earlier records survive.
func TestCrashRecoveryCorruptWALRecord(t *testing.T) {
	dir := t.TempDir()
	db := openTest(t, dir, Options{})
	for i := 0; i < 10; i++ {
		db.Insert("/x", sensor.Reading{Value: float64(i), Time: int64(i) * sec})
	}
	crash(db)

	wals, _ := listWAL(OSFS, filepath.Join(dir, "wal"))
	last := wals[len(wals)-1].path
	data, err := os.ReadFile(last)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(last, data, 0o644); err != nil {
		t.Fatal(err)
	}

	db2 := openTest(t, dir, Options{})
	defer db2.Close()
	got := db2.Range("/x", 0, 200*sec, nil)
	if len(got) != 9 {
		t.Fatalf("recovered %d readings, want 9 (tail record corrupt)", len(got))
	}
}

// TestRecoveryAfterCleanClose reopens a cleanly-closed DB: everything
// must come from segments, with an empty WAL.
func TestRecoveryAfterCleanClose(t *testing.T) {
	dir := t.TempDir()
	db := openTest(t, dir, Options{})
	topics := fill(db, testseed.Rand(t), 8, 50, 0)
	want := snapshotQueries(db, topics, 0, 50*sec)
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	db2 := openTest(t, dir, Options{})
	defer db2.Close()
	compareSnapshots(t, want, snapshotQueries(db2, topics, 0, 50*sec), topics)
	st := db2.Stats()
	if st.HeadReadings != 0 || st.WALBytes != 0 {
		t.Fatalf("clean close should leave empty WAL/heads: %+v", st)
	}
}

// TestCrashBetweenFlushAndWALDelete covers the crash window after a
// segment lands but before its WAL files are deleted: replaying them
// would duplicate every flushed reading.
func TestCrashBetweenFlushAndWALDelete(t *testing.T) {
	dir := t.TempDir()
	db := openTest(t, dir, Options{})
	for i := 0; i < 50; i++ {
		db.Insert("/x", sensor.Reading{Value: float64(i), Time: int64(i) * sec})
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	crash(db)
	// Resurrect a WAL file the flush retired, as if the delete had not
	// happened before the kill.
	walDir := filepath.Join(dir, "wal")
	stale := walPath(walDir, 1)
	var buf []byte
	buf = appendWALRecord(buf, "/x", []sensor.Reading{{Value: 7, Time: 7 * sec}})
	if err := os.WriteFile(stale, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	db2 := openTest(t, dir, Options{})
	defer db2.Close()
	if n := db2.Count("/x"); n != 50 {
		t.Fatalf("Count = %d, want 50 (covered WAL must not replay)", n)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatal("covered WAL file should be deleted on open")
	}
}

// TestCrashRecoveryAtScale is the acceptance scenario shrunk to test
// time: >=64 topics, heavy write volume with a mid-stream flush, killed
// without Close, reopened, and every query answer compared.
func TestCrashRecoveryAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	dir := t.TempDir()
	db := openTest(t, dir, Options{})
	rng := testseed.Rand(t)
	topics := fill(db, rng, 64, 200, 0)
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	fill(db, rng, 64, 100, 200*sec)
	want := snapshotQueries(db, topics, 0, 300*sec)
	crash(db)

	start := time.Now()
	db2 := openTest(t, dir, Options{})
	defer db2.Close()
	t.Logf("recovered %d readings in %s", db2.TotalReadings(), time.Since(start))
	compareSnapshots(t, want, snapshotQueries(db2, topics, 0, 300*sec), topics)
	if n := db2.TotalReadings(); n != 64*300 {
		t.Fatalf("TotalReadings = %d, want %d", n, 64*300)
	}
}

// TestDoubleOpenRejected proves the directory lock: a second live DB on
// the same directory must be refused (interleaved WAL/segment writes
// would silently lose data), and releasing the first unblocks it.
func TestDoubleOpenRejected(t *testing.T) {
	dir := t.TempDir()
	db := openTest(t, dir, Options{})
	if _, err := Open(dir, Options{FlushEvery: -1}); err == nil {
		t.Fatal("second Open on a locked directory must fail")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2 := openTest(t, dir, Options{})
	db2.Close()
}

// TestFloorSurvivesRestart proves retention persistence: readings Prune
// removed must not resurrect after a crash, even though their segments
// and WAL records are still on disk.
func TestFloorSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	db := openTest(t, dir, Options{})
	for i := 0; i < 20; i++ {
		db.Insert("/x", sensor.Reading{Value: float64(i), Time: int64(i) * sec})
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 20; i < 30; i++ {
		db.Insert("/x", sensor.Reading{Value: float64(i), Time: int64(i) * sec})
	}
	if removed := db.Prune(25 * sec); removed != 25 {
		t.Fatalf("Prune removed = %d, want 25", removed)
	}
	if db.Count("/x") != 5 {
		t.Fatalf("Count = %d, want 5", db.Count("/x"))
	}
	crash(db)

	db2 := openTest(t, dir, Options{})
	defer db2.Close()
	if got := db2.Count("/x"); got != 5 {
		t.Fatalf("Count after restart = %d, want 5 (pruned readings resurrected)", got)
	}
	rs := db2.Range("/x", 0, 100*sec, nil)
	if len(rs) != 5 || rs[0].Value != 25 {
		t.Fatalf("Range after restart = %+v", rs)
	}
	// Prune bookkeeping re-derived: pruning at the same cutoff removes
	// nothing new, a deeper cutoff counts only the newly-hidden readings.
	if removed := db2.Prune(25 * sec); removed != 0 {
		t.Fatalf("same-cutoff Prune after restart removed %d", removed)
	}
	if removed := db2.Prune(27 * sec); removed != 2 {
		t.Fatalf("deeper Prune after restart removed %d, want 2", removed)
	}
}

// TestWALFailureSurfacesAsDegraded forces WAL appends to fail and
// checks the DB reports itself degraded through Stats and Close while
// still serving from memory.
func TestWALFailureSurfacesAsDegraded(t *testing.T) {
	db := openTest(t, t.TempDir(), Options{})
	// Break the WAL the way a yanked disk would: close its file.
	db.wal.mu.Lock()
	db.wal.f.Close()
	db.wal.mu.Unlock()
	db.Insert("/x", sensor.Reading{Value: 1, Time: 1})
	if r, ok := db.Latest("/x"); !ok || r.Value != 1 {
		t.Fatalf("memory serving broken: %+v %v", r, ok)
	}
	if st := db.Stats(); st.Error == "" {
		t.Fatal("Stats must report the degraded WAL")
	}
	if err := db.Close(); err == nil {
		t.Fatal("Close must surface the WAL failure")
	}
}
