package tsdb

import (
	"fmt"
	"os"
	"time"

	"github.com/dcdb/wintermute/internal/telemetry"
)

// The janitor is the database's single background goroutine. Each pass it
// decides whether the heads are worth flushing — enough buffered readings
// to fill a respectable segment, or buffered long enough that WAL replay
// time (and the unflushed window an OS crash could lose) warrants it —
// and enforces time-based retention by pruning against the configured
// window. Keeping both duties on one goroutine means segment writes and
// segment deletes never race each other.
func (db *DB) janitor() {
	defer close(db.janitorDone)
	ticker := time.NewTicker(db.opts.FlushEvery)
	defer ticker.Stop()
	for {
		select {
		case <-db.janitorStop:
			return
		case <-ticker.C:
			db.janitorPass(time.Now())
		}
	}
}

// janitorPass runs one flush/retention decision at the given wall time.
// Exposed to tests through Tick-like manual invocation via Flush/Prune;
// the daemon path only reaches it from the janitor goroutine.
func (db *DB) janitorPass(now time.Time) {
	passStart := telemetry.Clock()
	defer db.metrics.janitorSeconds.ObserveSince(passStart)
	headN := int(db.headN.Load())
	since := db.headSince.Load()
	if headN >= db.opts.MaxHeadReadings ||
		(headN > 0 && since != 0 && now.Sub(time.Unix(0, since)) >= db.opts.MaxHeadAge) {
		if err := db.Flush(); err != nil {
			fmt.Fprintf(os.Stderr, "tsdb: janitor flush: %v\n", err)
		}
	}
	if db.opts.Retention > 0 {
		db.Prune(now.Add(-db.opts.Retention).UnixNano())
	}
}
