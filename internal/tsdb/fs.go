package tsdb

import (
	"io"
	"os"
)

// FS abstracts every file operation the database performs inside its
// directory — WAL appends and fsyncs, segment writes, renames, directory
// syncs, meta-file updates, listing and deletion — so tests and the
// chaos harness (internal/chaos) can inject failing, stalling or
// torn-write filesystems underneath an otherwise-real DB via Options.FS.
// The production implementation is OSFS.
//
// The directory LOCK file is deliberately exempt: flock semantics need a
// real *os.File descriptor, and a faulty lock is not an interesting
// failure mode for the engine (it fails Open, nothing else).
type FS interface {
	// MkdirAll creates a directory path like os.MkdirAll.
	MkdirAll(path string, perm os.FileMode) error
	// OpenFile opens a file like os.OpenFile (WAL files use
	// O_CREATE|O_WRONLY|O_APPEND).
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Open opens a file read-only like os.Open.
	Open(name string) (File, error)
	// Create truncate-creates a writable file like os.Create.
	Create(name string) (File, error)
	// ReadDir lists a directory like os.ReadDir.
	ReadDir(name string) ([]os.DirEntry, error)
	// ReadFile slurps a file like os.ReadFile.
	ReadFile(name string) ([]byte, error)
	// WriteFile writes a whole file like os.WriteFile.
	WriteFile(name string, data []byte, perm os.FileMode) error
	// Rename atomically moves a file like os.Rename.
	Rename(oldpath, newpath string) error
	// Remove deletes a file like os.Remove.
	Remove(name string) error
	// Stat stats a path like os.Stat.
	Stat(name string) (os.FileInfo, error)
	// SyncDir fsyncs a directory so a preceding rename or create is
	// durable against OS crashes.
	SyncDir(name string) error
}

// File is the subset of *os.File the database uses on open handles.
type File interface {
	io.Writer
	io.ReaderAt
	io.Closer
	// Sync fsyncs the file like (*os.File).Sync.
	Sync() error
	// Stat stats the open file like (*os.File).Stat.
	Stat() (os.FileInfo, error)
}

// OSFS is the production filesystem: thin pass-throughs to the os
// package. It is the default for Options.FS.
var OSFS FS = osFS{}

type osFS struct{}

func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (osFS) Open(name string) (File, error) { return os.Open(name) }

func (osFS) Create(name string) (File, error) { return os.Create(name) }

func (osFS) ReadDir(name string) ([]os.DirEntry, error) { return os.ReadDir(name) }

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (osFS) WriteFile(name string, data []byte, perm os.FileMode) error {
	return os.WriteFile(name, data, perm)
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) Stat(name string) (os.FileInfo, error) { return os.Stat(name) }

func (osFS) SyncDir(name string) error {
	d, err := os.Open(name)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
