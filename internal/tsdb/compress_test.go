package tsdb

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"github.com/dcdb/wintermute/internal/sensor"
)

// roundTrip encodes rs and decodes them back, failing on any mismatch.
// Values are compared as bit patterns so NaNs and signed zeros must
// survive exactly.
func roundTrip(t *testing.T, rs []sensor.Reading) {
	t.Helper()
	app := NewAppender()
	for _, r := range rs {
		app.Append(r)
	}
	it, err := NewIter(app.Bytes())
	if err != nil {
		t.Fatalf("NewIter: %v", err)
	}
	if it.Count() != len(rs) {
		t.Fatalf("Count = %d, want %d", it.Count(), len(rs))
	}
	for i, want := range rs {
		if !it.Next() {
			t.Fatalf("Next = false at sample %d (err %v)", i, it.Err())
		}
		got := it.At()
		if got.Time != want.Time {
			t.Fatalf("sample %d: time = %d, want %d", i, got.Time, want.Time)
		}
		if math.Float64bits(got.Value) != math.Float64bits(want.Value) {
			t.Fatalf("sample %d: value = %x, want %x",
				i, math.Float64bits(got.Value), math.Float64bits(want.Value))
		}
	}
	if it.Next() {
		t.Fatal("iterator yields samples past the count")
	}
	if it.Err() != nil {
		t.Fatalf("Err = %v", it.Err())
	}
}

func TestCompressEmpty(t *testing.T) {
	roundTrip(t, nil)
}

func TestCompressSingle(t *testing.T) {
	roundTrip(t, []sensor.Reading{{Time: time.Now().UnixNano(), Value: 42.5}})
}

func TestCompressRegularSeries(t *testing.T) {
	base := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC).UnixNano()
	rs := make([]sensor.Reading, 0, 1000)
	for i := 0; i < 1000; i++ {
		rs = append(rs, sensor.Reading{
			Time:  base + int64(i)*int64(time.Second),
			Value: 100 + float64(i%7),
		})
	}
	roundTrip(t, rs)
	// Regularly sampled integer-ish sensors must compress far below the
	// 16 raw bytes per reading — this is the property the on-disk
	// bytes-per-reading acceptance bound rests on.
	app := NewAppender()
	for _, r := range rs {
		app.Append(r)
	}
	if got := len(app.Bytes()); got > 4*len(rs) {
		t.Fatalf("chunk = %d bytes for %d readings (> 4 B/reading)", got, len(rs))
	}
}

func TestCompressSpecialValues(t *testing.T) {
	roundTrip(t, []sensor.Reading{
		{Time: -5, Value: math.Inf(1)},
		{Time: 0, Value: math.Inf(-1)},
		{Time: 1, Value: math.NaN()},
		{Time: 2, Value: math.Copysign(0, -1)},
		{Time: 3, Value: 0},
		{Time: 3, Value: math.MaxFloat64},
		{Time: 4, Value: math.SmallestNonzeroFloat64},
	})
}

func TestCompressIdenticalTimestamps(t *testing.T) {
	rs := make([]sensor.Reading, 50)
	for i := range rs {
		rs[i] = sensor.Reading{Time: 1234, Value: float64(i)}
	}
	roundTrip(t, rs)
}

// TestCompressRoundTripProperty feeds random (sorted) series through the
// codec: random jittered timestamps spanning the dod buckets and fully
// random float64 bit patterns for values.
func TestCompressRoundTripProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		rs := make([]sensor.Reading, 0, int(n))
		ts := rng.Int63n(1 << 40)
		for i := 0; i < int(n); i++ {
			// Mix of regular steps, small jitter and huge jumps so every
			// delta-of-delta bucket (1, 14, 24, 34 and 64 bit) is hit.
			switch rng.Intn(4) {
			case 0:
				ts += int64(time.Second)
			case 1:
				ts += int64(time.Second) + rng.Int63n(2000) - 1000
			case 2:
				ts += rng.Int63n(1 << 34)
			default:
				ts += rng.Int63n(1 << 50)
			}
			rs = append(rs, sensor.Reading{
				Time:  ts,
				Value: math.Float64frombits(rng.Uint64()),
			})
		}
		app := NewAppender()
		for _, r := range rs {
			app.Append(r)
		}
		it, err := NewIter(app.Bytes())
		if err != nil {
			return false
		}
		for _, want := range rs {
			if !it.Next() {
				return false
			}
			got := it.At()
			if got.Time != want.Time ||
				math.Float64bits(got.Value) != math.Float64bits(want.Value) {
				return false
			}
		}
		return !it.Next() && it.Err() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestCompressSortedRandomReadings mirrors how segments are written:
// arbitrary reading sets sorted by time before encoding.
func TestCompressSortedRandomReadings(t *testing.T) {
	f := func(times []int32, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rs := make([]sensor.Reading, 0, len(times))
		for _, ts := range times {
			rs = append(rs, sensor.Reading{Time: int64(ts), Value: rng.NormFloat64() * 1e6})
		}
		sort.SliceStable(rs, func(i, j int) bool { return rs[i].Time < rs[j].Time })
		app := NewAppender()
		for _, r := range rs {
			app.Append(r)
		}
		it, err := NewIter(app.Bytes())
		if err != nil {
			return false
		}
		for _, want := range rs {
			if !it.Next() {
				return false
			}
			got := it.At()
			if got.Time != want.Time ||
				math.Float64bits(got.Value) != math.Float64bits(want.Value) {
				return false
			}
		}
		return !it.Next()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestIterTruncatedChunk(t *testing.T) {
	app := NewAppender()
	for i := 0; i < 100; i++ {
		app.Append(sensor.Reading{Time: int64(i) * 1000, Value: float64(i)})
	}
	chunk := app.Bytes()
	it, err := NewIter(chunk[:len(chunk)/2])
	if err != nil {
		t.Fatalf("NewIter: %v", err)
	}
	n := 0
	for it.Next() {
		n++
	}
	if it.Err() == nil {
		t.Fatal("truncated chunk must surface a decode error")
	}
	if n >= 100 {
		t.Fatalf("decoded %d samples from a half chunk", n)
	}
}
