//go:build unix

package tsdb

import (
	"fmt"
	"os"
	"syscall"
)

// lockDir takes an exclusive advisory lock on the database's LOCK file
// so two processes (or two DB instances in one process) can never run
// the same directory — interleaved WAL appends and segment renames
// would silently lose acknowledged readings. flock locks die with the
// process, so a SIGKILLed owner never wedges the directory.
func lockDir(path string) (*os.File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("tsdb: database directory locked by another instance: %w", err)
	}
	return f, nil
}
