// Fault-path tests: a real database on a chaos filesystem, verifying
// the WAL and segment error contracts the chaos harness relies on —
// no insert is ever dropped in-process, torn WAL tails recover to a
// clean prefix, and failed flushes restore their staged data. External
// test package: internal/chaos imports tsdb, so these live outside the
// tsdb package proper.
package tsdb_test

import (
	"strings"
	"syscall"
	"testing"
	"time"

	"github.com/dcdb/wintermute/internal/chaos"
	"github.com/dcdb/wintermute/internal/sensor"
	"github.com/dcdb/wintermute/internal/telemetry"
	"github.com/dcdb/wintermute/internal/testseed"
	"github.com/dcdb/wintermute/internal/tsdb"
)

// fill inserts n sequential readings for topic starting at timestamp
// from, value == timestamp, and returns the next free timestamp.
func fill(db *tsdb.DB, topic sensor.Topic, from int64, n int) int64 {
	rs := make([]sensor.Reading, n)
	for i := range rs {
		rs[i] = sensor.Reading{Time: from + int64(i), Value: float64(from + int64(i))}
	}
	db.InsertBatch(topic, rs)
	return from + int64(n)
}

// expectRange asserts the topic holds exactly the readings [0, upto)
// with value == timestamp.
func expectRange(t *testing.T, db *tsdb.DB, topic sensor.Topic, upto int64) {
	t.Helper()
	got := db.Range(topic, 0, upto+1, nil)
	if len(got) != int(upto) {
		t.Fatalf("range returned %d readings, want %d", len(got), upto)
	}
	for i, r := range got {
		if r.Time != int64(i) || r.Value != float64(i) {
			t.Fatalf("reading %d = {t:%d v:%g}, want {t:%d v:%d}", i, r.Time, r.Value, i, i)
		}
	}
}

// TestWALDegradeServesFromMemory: a failing WAL fsync must degrade the
// log (Stats reports it) without losing a single in-process reading,
// and a successful flush must re-arm durability.
func TestWALDegradeServesFromMemory(t *testing.T) {
	fs := chaos.NewFS(nil, testseed.Seed(t))
	db, err := tsdb.Open(t.TempDir(), tsdb.Options{FS: fs, WALSync: true})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer db.Close()
	topic := sensor.Topic("/n01/power")
	next := fill(db, topic, 0, 100)

	fs.Set(chaos.OpSync, chaos.ClassWAL, chaos.Fault{P: 1})
	next = fill(db, topic, next, 100) // fails the group commit, degrades the WAL
	fs.Clear(chaos.OpSync, chaos.ClassWAL)
	next = fill(db, topic, next, 100) // appended while degraded: memory only

	if st := db.Stats(); !strings.Contains(st.Error, "WAL degraded") {
		t.Fatalf("stats after fsync failure = %q, want WAL degraded", st.Error)
	}
	expectRange(t, db, topic, next) // nothing lost in-process

	if err := db.Flush(); err != nil {
		t.Fatalf("flush after clearing fault: %v", err)
	}
	if st := db.Stats(); st.Error != "" {
		t.Fatalf("stats after successful flush = %q, want re-armed (empty)", st.Error)
	}
	next = fill(db, topic, next, 100) // logged again on the fresh WAL
	expectRange(t, db, topic, next)
}

// TestTornWALRecoversCleanPrefix: a torn append (half the record
// persisted) must degrade the WAL immediately — later appends are
// suspended rather than written after the tear, where replay would
// silently drop them — and recovery must replay the clean prefix
// without error or corruption.
func TestTornWALRecoversCleanPrefix(t *testing.T) {
	dir := t.TempDir()
	fs := chaos.NewFS(nil, testseed.Seed(t))
	db, err := tsdb.Open(dir, tsdb.Options{FS: fs, WALSync: true})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	topic := sensor.Topic("/n01/power")
	next := fill(db, topic, 0, 200)

	fs.Set(chaos.OpWrite, chaos.ClassWAL, chaos.Fault{P: 1, Partial: true})
	next = fill(db, topic, next, 50) // torn mid-record on disk
	fs.Clear(chaos.OpWrite, chaos.ClassWAL)
	fill(db, topic, next, 50) // suspended: memory only, never after the tear

	db.Abandon() // simulated crash: no final flush

	re, err := tsdb.Open(dir, tsdb.Options{})
	if err != nil {
		t.Fatalf("reopen after torn WAL: %v", err)
	}
	defer re.Close()
	got := re.Range(topic, 0, int64(next)+100, nil)
	if len(got) != 200 {
		t.Fatalf("recovered %d readings, want exactly the 200 clean-prefix ones", len(got))
	}
	for i, r := range got {
		if r.Time != int64(i) || r.Value != float64(i) {
			t.Fatalf("recovered reading %d = {t:%d v:%g}: corrupt replay past the tear", i, r.Time, r.Value)
		}
	}
}

// TestSegmentWriteFailureKeepsData: a failed segment write must abort
// the flush, restore the staged heads (queries keep answering) and
// retain the retired WAL for recovery; a retried flush succeeds.
func TestSegmentWriteFailureKeepsData(t *testing.T) {
	dir := t.TempDir()
	fs := chaos.NewFS(nil, testseed.Seed(t))
	db, err := tsdb.Open(dir, tsdb.Options{FS: fs, WALSync: true})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	topic := sensor.Topic("/n01/power")
	next := fill(db, topic, 0, 300)

	fs.Set(chaos.OpCreate, chaos.ClassSeg, chaos.Fault{P: 1})
	fs.Set(chaos.OpWrite, chaos.ClassSeg, chaos.Fault{P: 1})
	if err := db.Flush(); err == nil {
		t.Fatal("flush under segment faults succeeded, want error")
	}
	expectRange(t, db, topic, next) // restored heads still serve

	fs.Clear(chaos.OpCreate, chaos.ClassSeg)
	fs.Clear(chaos.OpWrite, chaos.ClassSeg)
	if err := db.Flush(); err != nil {
		t.Fatalf("retried flush: %v", err)
	}
	if st := db.Stats(); st.Segments == 0 {
		t.Fatal("retried flush produced no segment")
	}
	expectRange(t, db, topic, next)
	if err := db.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	re, err := tsdb.Open(dir, tsdb.Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	expectRange(t, re, topic, next)
}

// TestSegmentFailureThenCrashRecoversFromWAL: when the flush fails AND
// the process dies before retrying, the retired WAL files — deliberately
// kept on flush failure — must carry the data into the next life.
func TestSegmentFailureThenCrashRecoversFromWAL(t *testing.T) {
	dir := t.TempDir()
	fs := chaos.NewFS(nil, testseed.Seed(t))
	db, err := tsdb.Open(dir, tsdb.Options{FS: fs, WALSync: true})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	topic := sensor.Topic("/n01/power")
	next := fill(db, topic, 0, 300)

	fs.Set(chaos.OpRename, chaos.ClassSeg, chaos.Fault{P: 1})
	if err := db.Flush(); err == nil {
		t.Fatal("flush under rename fault succeeded, want error")
	}
	db.Abandon() // crash before any retry

	re, err := tsdb.Open(dir, tsdb.Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	expectRange(t, re, topic, next)
}

// TestDiskFullDegradesAndRearms: ENOSPC on the WAL and on segment
// writes must ride the same degradation machinery as any write failure —
// serve from memory, sticky errors in Stats, zero in-process loss — and
// a flush after space returns must re-arm everything.
func TestDiskFullDegradesAndRearms(t *testing.T) {
	fs := chaos.NewFS(nil, testseed.Seed(t))
	reg := telemetry.NewRegistry()
	db, err := tsdb.Open(t.TempDir(), tsdb.Options{FS: fs, WALSync: true, Metrics: reg})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer db.Close()
	topic := sensor.Topic("/n01/power")
	next := fill(db, topic, 0, 100)

	// The disk fills: WAL appends and segment writes all return ENOSPC.
	full := chaos.Fault{P: 1, Err: syscall.ENOSPC}
	fs.Set(chaos.OpWrite, chaos.ClassWAL, full)
	fs.Set(chaos.OpCreate, chaos.ClassSeg, full)
	fs.Set(chaos.OpWrite, chaos.ClassSeg, full)

	next = fill(db, topic, next, 100) // degrades the WAL, memory-only
	st := db.Stats()
	if !strings.Contains(st.Error, "WAL degraded") || !strings.Contains(st.Error, "no space left") {
		t.Fatalf("stats under ENOSPC = %q, want WAL degraded with ENOSPC", st.Error)
	}
	if err := db.Flush(); err == nil {
		t.Fatal("flush on a full disk succeeded, want error")
	}
	if st := db.Stats(); !strings.Contains(st.Error, "last flush failed") {
		t.Fatalf("stats after failed flush = %q, want sticky flush error", st.Error)
	}
	if v, _ := reg.Value("dcdb_tsdb_flush_failures_total"); v < 1 {
		t.Fatalf("flush failures counter = %v, want >= 1", v)
	}
	if v, _ := reg.Value("dcdb_tsdb_wal_degrade_episodes_total"); v < 1 {
		t.Fatalf("wal degrade episodes counter = %v, want >= 1", v)
	}
	expectRange(t, db, topic, next) // nothing lost while degraded

	// Space returns: the next flush covers everything with a segment and
	// both sticky errors clear.
	fs.ClearAll()
	if err := db.Flush(); err != nil {
		t.Fatalf("flush after space returned: %v", err)
	}
	if st := db.Stats(); st.Error != "" {
		t.Fatalf("stats after recovery = %q, want clean", st.Error)
	}
	next = fill(db, topic, next, 100)
	expectRange(t, db, topic, next)
}

// TestFsyncStallBlocksButCommits: a stalled fsync must delay the group
// commit, not corrupt or drop it.
func TestFsyncStallBlocksButCommits(t *testing.T) {
	dir := t.TempDir()
	fs := chaos.NewFS(nil, testseed.Seed(t))
	db, err := tsdb.Open(dir, tsdb.Options{FS: fs, WALSync: true})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	topic := sensor.Topic("/n01/power")
	fs.Set(chaos.OpSync, chaos.ClassWAL, chaos.Fault{P: 1, Stall: 50 * time.Millisecond, StallOnly: true})
	t0 := time.Now()
	next := fill(db, topic, 0, 10)
	if d := time.Since(t0); d < 50*time.Millisecond {
		t.Fatalf("stalled group commit returned after %v, want >= 50ms", d)
	}
	fs.Clear(chaos.OpSync, chaos.ClassWAL)
	db.Abandon() // data must already be durable in the WAL

	re, err := tsdb.Open(dir, tsdb.Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	expectRange(t, re, topic, next)
}
