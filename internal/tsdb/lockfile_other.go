//go:build !unix

package tsdb

import "os"

// lockDir on platforms without flock only creates the marker file; the
// double-open guard is advisory there.
func lockDir(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
}
