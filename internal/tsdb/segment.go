package tsdb

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"github.com/dcdb/wintermute/internal/sensor"
	"github.com/dcdb/wintermute/internal/store"
	"github.com/dcdb/wintermute/internal/telemetry"
)

// Segment files are immutable and time-partitioned: each one holds every
// reading flushed from the heads in one janitor pass, one Gorilla chunk
// per series, with a CRC-protected index at the tail:
//
//	header:  magic "WTSG" | u32le version | u64le covered WAL seq
//	chunks:  concatenated per-series chunks
//	index:   u32le series count, then per series
//	         uvarint topic len | topic | uvarint count |
//	         varint minT | varint maxT | uvarint offset | uvarint length |
//	         f64le min value | f64le max value | f64le value sum   (v2)
//	footer:  u64le index offset | u32le index CRC-32 | magic "WTSG"
//
// The covered WAL sequence records the newest WAL file whose contents are
// fully represented by this segment and its predecessors; recovery uses
// it to decide which WAL files still need replaying.
//
// Version 2 added the per-chunk value pre-aggregates (min/max/sum; the
// count was in the index from the start), recorded once at flush time.
// They let an aggregation query answer a fully-covered chunk from index
// metadata in O(1) without touching the chunk bytes; only chunks the
// window boundary or retention watermark cuts through are decoded.
// Version 1 segments remain readable — their series carry no
// pre-aggregates (hasAgg false) and always take the decode path.

const (
	segMagic     = "WTSG"
	segVersion   = 2
	segVersionV1 = 1
	segHeader    = 4 + 4 + 8
	segFooter    = 8 + 4 + 4
)

// segSeries locates one series' chunk inside a segment file, together
// with the chunk's pre-aggregates (v2 segments).
type segSeries struct {
	count      int
	minT, maxT int64
	off        int64
	length     int64

	// Per-chunk value pre-aggregates, recorded at flush time. hasAgg is
	// false for series read from version-1 segments; those always
	// decode.
	hasAgg           bool
	vmin, vmax, vsum float64
}

// segment is one open, immutable segment file.
type segment struct {
	path       string
	seq        uint64
	coveredWAL uint64
	minT, maxT int64
	size       int64
	series     map[sensor.Topic]segSeries
	f          File

	// prunedCount is the number of readings in this segment already
	// counted as removed by DB.Prune (retention watermark bookkeeping).
	prunedCount int

	// decodes, when set by the owning DB, counts chunk decodes into the
	// DB's telemetry (queries, counts and prune bookkeeping all pay it).
	decodes *telemetry.Counter
}

func segPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%08d.seg", seq))
}

// writeSegment persists data as segment file seq, fsyncing file and
// directory before the atomic rename, and returns the opened segment.
// Series chunks are encoded in sorted topic order for determinism.
func writeSegment(fs FS, dir string, seq, coveredWAL uint64, data map[sensor.Topic][]sensor.Reading) (*segment, error) {
	topics := make([]sensor.Topic, 0, len(data))
	for t, rs := range data {
		if len(rs) > 0 {
			topics = append(topics, t)
		}
	}
	if len(topics) == 0 {
		return nil, nil
	}
	sort.Slice(topics, func(i, j int) bool { return topics[i] < topics[j] })

	buf := make([]byte, 0, 1<<16)
	buf = append(buf, segMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, segVersion)
	buf = binary.LittleEndian.AppendUint64(buf, coveredWAL)

	index := make([]byte, 0, len(topics)*56)
	index = binary.LittleEndian.AppendUint32(index, uint32(len(topics)))
	for _, topic := range topics {
		rs := data[topic]
		app := NewAppender()
		var agg store.AggResult
		for _, r := range rs {
			app.Append(r)
			agg.Observe(r.Value)
		}
		chunk := app.Bytes()
		off := len(buf)
		buf = append(buf, chunk...)
		index = binary.AppendUvarint(index, uint64(len(topic)))
		index = append(index, topic...)
		index = binary.AppendUvarint(index, uint64(len(rs)))
		index = binary.AppendVarint(index, rs[0].Time)
		index = binary.AppendVarint(index, rs[len(rs)-1].Time)
		index = binary.AppendUvarint(index, uint64(off))
		index = binary.AppendUvarint(index, uint64(len(chunk)))
		index = binary.LittleEndian.AppendUint64(index, math.Float64bits(agg.Min))
		index = binary.LittleEndian.AppendUint64(index, math.Float64bits(agg.Max))
		index = binary.LittleEndian.AppendUint64(index, math.Float64bits(agg.Sum))
	}
	indexOff := len(buf)
	buf = append(buf, index...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(indexOff))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(index))
	buf = append(buf, segMagic...)

	path := segPath(dir, seq)
	tmp := path + ".tmp"
	if err := writeFileSync(fs, tmp, buf); err != nil {
		fs.Remove(tmp)
		return nil, err
	}
	if err := fs.Rename(tmp, path); err != nil {
		fs.Remove(tmp)
		return nil, err
	}
	// Past the rename the file is live: any later failure must take it
	// back out, or the flush's error path restores the same readings
	// into heads and the next flush duplicates them all.
	if err := fs.SyncDir(dir); err != nil {
		fs.Remove(path)
		return nil, err
	}
	seg, err := openSegment(fs, path, seq)
	if err != nil {
		fs.Remove(path)
		return nil, err
	}
	return seg, nil
}

func writeFileSync(fs FS, path string, data []byte) error {
	f, err := fs.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// listSegments opens every segment file in dir, sorted by sequence.
// Leftover .tmp files from an interrupted flush are removed.
func listSegments(fs FS, dir string) ([]*segment, error) {
	entries, err := fs.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []*segment
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			fs.Remove(filepath.Join(dir, name))
			continue
		}
		if e.IsDir() || !strings.HasSuffix(name, ".seg") {
			continue
		}
		seq, err := strconv.ParseUint(strings.TrimSuffix(name, ".seg"), 10, 64)
		if err != nil {
			continue
		}
		seg, err := openSegment(fs, filepath.Join(dir, name), seq)
		if err != nil {
			return nil, fmt.Errorf("tsdb: opening segment %s: %w", name, err)
		}
		segs = append(segs, seg)
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })
	return segs, nil
}

// openSegment memory-loads a segment's index and keeps the file open for
// on-demand chunk reads.
func openSegment(fs FS, path string, seq uint64) (*segment, error) {
	f, err := fs.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	size := st.Size()
	if size < segHeader+segFooter {
		f.Close()
		return nil, fmt.Errorf("file too small (%d bytes)", size)
	}
	hdr := make([]byte, segHeader)
	if _, err := f.ReadAt(hdr, 0); err != nil {
		f.Close()
		return nil, err
	}
	if string(hdr[:4]) != segMagic {
		f.Close()
		return nil, fmt.Errorf("bad magic")
	}
	version := binary.LittleEndian.Uint32(hdr[4:])
	if version != segVersion && version != segVersionV1 {
		f.Close()
		return nil, fmt.Errorf("unsupported version %d", version)
	}
	coveredWAL := binary.LittleEndian.Uint64(hdr[8:])

	foot := make([]byte, segFooter)
	if _, err := f.ReadAt(foot, size-segFooter); err != nil {
		f.Close()
		return nil, err
	}
	if string(foot[12:]) != segMagic {
		f.Close()
		return nil, fmt.Errorf("bad footer magic")
	}
	indexOff := int64(binary.LittleEndian.Uint64(foot))
	indexCRC := binary.LittleEndian.Uint32(foot[8:])
	if indexOff < segHeader || indexOff > size-segFooter {
		f.Close()
		return nil, fmt.Errorf("index offset out of bounds")
	}
	index := make([]byte, size-segFooter-indexOff)
	if _, err := f.ReadAt(index, indexOff); err != nil {
		f.Close()
		return nil, err
	}
	if crc32.ChecksumIEEE(index) != indexCRC {
		f.Close()
		return nil, fmt.Errorf("index checksum mismatch")
	}

	seg := &segment{
		path:       path,
		seq:        seq,
		coveredWAL: coveredWAL,
		size:       size,
		series:     make(map[sensor.Topic]segSeries),
		f:          f,
	}
	if len(index) < 4 {
		f.Close()
		return nil, fmt.Errorf("short index")
	}
	nSeries := binary.LittleEndian.Uint32(index)
	p := index[4:]
	bad := func() (*segment, error) {
		f.Close()
		return nil, fmt.Errorf("corrupt index entry")
	}
	uvar := func() (uint64, bool) {
		v, n := binary.Uvarint(p)
		if n <= 0 {
			return 0, false
		}
		p = p[n:]
		return v, true
	}
	svar := func() (int64, bool) {
		v, n := binary.Varint(p)
		if n <= 0 {
			return 0, false
		}
		p = p[n:]
		return v, true
	}
	first := true
	for i := uint32(0); i < nSeries; i++ {
		tlen, ok := uvar()
		if !ok || uint64(len(p)) < tlen {
			return bad()
		}
		topic := sensor.Topic(p[:tlen])
		p = p[tlen:]
		count, ok1 := uvar()
		minT, ok2 := svar()
		maxT, ok3 := svar()
		off, ok4 := uvar()
		length, ok5 := uvar()
		if !ok1 || !ok2 || !ok3 || !ok4 || !ok5 {
			return bad()
		}
		ss := segSeries{
			count: int(count), minT: minT, maxT: maxT,
			off: int64(off), length: int64(length),
		}
		if version >= segVersion {
			if len(p) < 24 {
				return bad()
			}
			ss.hasAgg = true
			ss.vmin = math.Float64frombits(binary.LittleEndian.Uint64(p))
			ss.vmax = math.Float64frombits(binary.LittleEndian.Uint64(p[8:]))
			ss.vsum = math.Float64frombits(binary.LittleEndian.Uint64(p[16:]))
			p = p[24:]
		}
		seg.series[topic] = ss
		if first || minT < seg.minT {
			seg.minT = minT
		}
		if first || maxT > seg.maxT {
			seg.maxT = maxT
		}
		first = false
	}
	return seg, nil
}

// readChunk loads and parses one series' chunk.
func (s *segment) readChunk(ss segSeries) (*Iter, error) {
	if s.decodes != nil {
		s.decodes.Inc()
	}
	chunk := make([]byte, ss.length)
	if _, err := s.f.ReadAt(chunk, ss.off); err != nil {
		return nil, err
	}
	return NewIter(chunk)
}

// appendRange appends the series' readings within [t0, t1] to dst.
func (s *segment) appendRange(topic sensor.Topic, t0, t1 int64, dst []sensor.Reading) ([]sensor.Reading, error) {
	ss, ok := s.series[topic]
	if !ok || ss.maxT < t0 || ss.minT > t1 {
		return dst, nil
	}
	it, err := s.readChunk(ss)
	if err != nil {
		return dst, err
	}
	for it.Next() {
		r := it.At()
		if r.Time > t1 {
			break
		}
		if r.Time >= t0 {
			dst = append(dst, r)
		}
	}
	return dst, it.Err()
}

// latest returns the series' newest reading at or after floor.
func (s *segment) latest(topic sensor.Topic, floor int64) (sensor.Reading, bool, error) {
	ss, ok := s.series[topic]
	if !ok || ss.maxT < floor {
		return sensor.Reading{}, false, nil
	}
	it, err := s.readChunk(ss)
	if err != nil {
		return sensor.Reading{}, false, err
	}
	var last sensor.Reading
	found := false
	for it.Next() {
		if r := it.At(); r.Time >= floor {
			last = r
			found = true
		}
	}
	return last, found, it.Err()
}

// countFrom returns how many of the series' readings are at or after
// floor, decoding the chunk only when the watermark cuts through it.
func (s *segment) countFrom(topic sensor.Topic, floor int64) (int, error) {
	ss, ok := s.series[topic]
	if !ok || ss.maxT < floor {
		return 0, nil
	}
	if ss.minT >= floor {
		return ss.count, nil
	}
	it, err := s.readChunk(ss)
	if err != nil {
		return 0, err
	}
	n := 0
	for it.Next() {
		if it.At().Time >= floor {
			n++
		}
	}
	return n, it.Err()
}

// countBelow returns how many readings across all series are strictly
// older than cutoff.
func (s *segment) countBelow(cutoff int64) (int, error) {
	if s.minT >= cutoff {
		return 0, nil
	}
	if s.maxT < cutoff {
		total := 0
		for _, ss := range s.series {
			total += ss.count
		}
		return total, nil
	}
	total := 0
	for topic, ss := range s.series {
		if ss.minT >= cutoff {
			continue
		}
		if ss.maxT < cutoff {
			total += ss.count
			continue
		}
		n, err := s.countFrom(topic, cutoff)
		if err != nil {
			return 0, err
		}
		total += ss.count - n
	}
	return total, nil
}

// close releases the underlying file.
func (s *segment) close() error { return s.f.Close() }
