// Package tsdb implements the persistent Storage Backend: an embedded
// time-series engine standing in for the Cassandra deployment of the
// production DCDB stack (paper §IV-A).
//
// Readings enter through a shared write-ahead log and an in-memory head
// block per series; a background janitor periodically flushes heads into
// immutable, time-partitioned segment files compressed with the Gorilla
// scheme (delta-of-delta timestamps, XOR float values) and enforces
// time-based retention by dropping expired segments. Opening a database
// replays the WAL, so a crash — even mid-write — loses nothing that
// reached the log.
//
// File layout under the database directory:
//
//	wal/00000001.wal   append-only CRC-framed reading batches
//	seg/00000001.seg   immutable compressed segments (chunks + index)
package tsdb

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"

	"github.com/dcdb/wintermute/internal/sensor"
)

// The chunk encoding follows Facebook's Gorilla paper (Pelkonen et al.,
// VLDB 2015), adapted for nanosecond timestamps: the first sample is
// stored raw, the second stores a zigzag-varint time delta, and every
// further timestamp stores only the delta-of-delta in one of four
// variable-width buckets (regularly sampled sensors collapse to a single
// zero bit per sample). Values store the XOR against the previous value,
// reusing the previous leading/trailing-zero window when it still fits.

// bitWriter appends bits MSB-first to a byte slice.
type bitWriter struct {
	b    []byte
	free uint8 // unused low bits in the last byte
}

func (w *bitWriter) writeBit(bit uint64) {
	if w.free == 0 {
		w.b = append(w.b, 0)
		w.free = 8
	}
	w.free--
	if bit != 0 {
		w.b[len(w.b)-1] |= 1 << w.free
	}
}

// writeBits appends the n low bits of v, most significant first.
func (w *bitWriter) writeBits(v uint64, n uint8) {
	for n > 0 {
		if w.free == 0 {
			w.b = append(w.b, 0)
			w.free = 8
		}
		take := w.free
		if n < take {
			take = n
		}
		n -= take
		w.free -= take
		w.b[len(w.b)-1] |= byte(v>>n&(1<<take-1)) << w.free
	}
}

// writeVarint appends a zigzag varint byte-by-byte into the bit stream.
func (w *bitWriter) writeVarint(v int64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], zigzag(v))
	for _, b := range tmp[:n] {
		w.writeBits(uint64(b), 8)
	}
}

// bitReader consumes bits MSB-first from a byte slice.
type bitReader struct {
	b    []byte
	off  int   // next byte
	used uint8 // consumed high bits of b[off]
}

var errShortChunk = fmt.Errorf("tsdb: truncated chunk")

func (r *bitReader) readBit() (uint64, error) {
	if r.off >= len(r.b) {
		return 0, errShortChunk
	}
	bit := uint64(r.b[r.off]>>(7-r.used)) & 1
	r.used++
	if r.used == 8 {
		r.used = 0
		r.off++
	}
	return bit, nil
}

func (r *bitReader) readBits(n uint8) (uint64, error) {
	var v uint64
	for n > 0 {
		if r.off >= len(r.b) {
			return 0, errShortChunk
		}
		avail := 8 - r.used
		take := avail
		if n < take {
			take = n
		}
		v = v<<take | uint64(r.b[r.off]>>(avail-take))&(1<<take-1)
		r.used += take
		n -= take
		if r.used == 8 {
			r.used = 0
			r.off++
		}
	}
	return v, nil
}

func (r *bitReader) readVarint() (int64, error) {
	var u uint64
	for shift := uint(0); ; shift += 7 {
		if shift >= 64 {
			return 0, fmt.Errorf("tsdb: varint overflow")
		}
		b, err := r.readBits(8)
		if err != nil {
			return 0, err
		}
		u |= (b & 0x7f) << shift
		if b&0x80 == 0 {
			break
		}
	}
	return unzigzag(u), nil
}

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// dod buckets: control prefix + payload width (signed, two's complement).
var dodBuckets = []struct {
	ctrl     uint64
	ctrlBits uint8
	valBits  uint8
}{
	{0b10, 2, 14},
	{0b110, 3, 24},
	{0b1110, 4, 34},
	{0b1111, 4, 64},
}

// invalidWindow marks the leading/trailing window as not yet established.
const invalidWindow = 0xff

// Appender encodes one series chunk sample by sample. Samples must be
// appended in non-decreasing time order (segment writers flush sorted
// head blocks, so this holds by construction).
type Appender struct {
	w        bitWriter
	n        int
	t        int64
	tDelta   int64
	v        uint64
	leading  uint8
	trailing uint8
}

// NewAppender returns an empty chunk appender.
func NewAppender() *Appender {
	return &Appender{leading: invalidWindow}
}

// Count returns the number of samples appended so far.
func (a *Appender) Count() int { return a.n }

// Append encodes one reading.
func (a *Appender) Append(r sensor.Reading) {
	switch a.n {
	case 0:
		a.w.writeBits(uint64(r.Time), 64)
		a.w.writeBits(math.Float64bits(r.Value), 64)
	case 1:
		a.tDelta = r.Time - a.t
		a.w.writeVarint(a.tDelta)
		a.writeValue(math.Float64bits(r.Value))
	default:
		delta := r.Time - a.t
		dod := delta - a.tDelta
		a.tDelta = delta
		if dod == 0 {
			a.w.writeBit(0)
		} else {
			for _, bk := range dodBuckets {
				if bk.valBits == 64 || fitsSigned(dod, bk.valBits) {
					a.w.writeBits(bk.ctrl, bk.ctrlBits)
					a.w.writeBits(uint64(dod), bk.valBits)
					break
				}
			}
		}
		a.writeValue(math.Float64bits(r.Value))
	}
	a.t = r.Time
	if a.n == 0 {
		a.v = math.Float64bits(r.Value)
	}
	a.n++
}

// fitsSigned reports whether v is representable in n two's-complement bits.
func fitsSigned(v int64, n uint8) bool {
	lim := int64(1) << (n - 1)
	return v >= -lim && v < lim
}

func (a *Appender) writeValue(v uint64) {
	xor := v ^ a.v
	a.v = v
	if xor == 0 {
		a.w.writeBit(0)
		return
	}
	a.w.writeBit(1)
	leading := uint8(bits.LeadingZeros64(xor))
	if leading > 31 {
		leading = 31 // 5-bit field; larger windows gain almost nothing
	}
	trailing := uint8(bits.TrailingZeros64(xor))
	if a.leading != invalidWindow && leading >= a.leading && trailing >= a.trailing {
		// Previous window still covers the significant bits: reuse it.
		a.w.writeBit(0)
		a.w.writeBits(xor>>a.trailing, 64-a.leading-a.trailing)
		return
	}
	a.leading, a.trailing = leading, trailing
	sig := 64 - leading - trailing
	a.w.writeBit(1)
	a.w.writeBits(uint64(leading), 5)
	a.w.writeBits(uint64(sig-1), 6) // sig in [1,64] stored as sig-1
	a.w.writeBits(xor>>trailing, sig)
}

// Bytes returns the finished chunk: a uvarint sample count followed by
// the bit stream. The appender may keep receiving samples afterwards;
// Bytes snapshots the current state.
func (a *Appender) Bytes() []byte {
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(a.n))
	out := make([]byte, 0, n+len(a.w.b))
	out = append(out, hdr[:n]...)
	return append(out, a.w.b...)
}

// Iter decodes a chunk produced by Appender.
type Iter struct {
	r        bitReader
	n        int
	read     int
	t        int64
	tDelta   int64
	v        uint64
	leading  uint8
	trailing uint8
	err      error
}

// NewIter parses the chunk header and returns a sample iterator.
func NewIter(chunk []byte) (*Iter, error) {
	count, n := binary.Uvarint(chunk)
	if n <= 0 {
		return nil, fmt.Errorf("tsdb: bad chunk header")
	}
	return &Iter{r: bitReader{b: chunk[n:]}, n: int(count), leading: invalidWindow}, nil
}

// Count returns the total number of samples in the chunk.
func (it *Iter) Count() int { return it.n }

// Next advances to the next sample, returning false at the end of the
// chunk or on a decoding error (see Err).
func (it *Iter) Next() bool {
	if it.err != nil || it.read >= it.n {
		return false
	}
	var err error
	switch it.read {
	case 0:
		var tv, vv uint64
		if tv, err = it.r.readBits(64); err == nil {
			it.t = int64(tv)
			if vv, err = it.r.readBits(64); err == nil {
				it.v = vv
			}
		}
	case 1:
		if it.tDelta, err = it.r.readVarint(); err == nil {
			it.t += it.tDelta
			err = it.readValue()
		}
	default:
		if err = it.readDoD(); err == nil {
			err = it.readValue()
		}
	}
	if err != nil {
		it.err = err
		return false
	}
	it.read++
	return true
}

func (it *Iter) readDoD() error {
	bit, err := it.r.readBit()
	if err != nil {
		return err
	}
	if bit == 0 {
		it.t += it.tDelta
		return nil
	}
	var width uint8
	for i, bk := range dodBuckets {
		if i+1 < len(dodBuckets) {
			if bit, err = it.r.readBit(); err != nil {
				return err
			}
			if bit == 0 {
				width = bk.valBits
				break
			}
			continue
		}
		width = bk.valBits
	}
	raw, err := it.r.readBits(width)
	if err != nil {
		return err
	}
	dod := int64(raw)
	if width < 64 && raw&(1<<(width-1)) != 0 {
		dod = int64(raw) - int64(1)<<width // sign-extend
	}
	it.tDelta += dod
	it.t += it.tDelta
	return nil
}

func (it *Iter) readValue() error {
	bit, err := it.r.readBit()
	if err != nil {
		return err
	}
	if bit == 0 {
		return nil // identical value
	}
	if bit, err = it.r.readBit(); err != nil {
		return err
	}
	if bit != 0 {
		lead, err := it.r.readBits(5)
		if err != nil {
			return err
		}
		sigm1, err := it.r.readBits(6)
		if err != nil {
			return err
		}
		it.leading = uint8(lead)
		it.trailing = 64 - it.leading - uint8(sigm1) - 1
	} else if it.leading == invalidWindow {
		return fmt.Errorf("tsdb: chunk reuses value window before defining one")
	}
	sig := 64 - it.leading - it.trailing
	xor, err := it.r.readBits(sig)
	if err != nil {
		return err
	}
	it.v ^= xor << it.trailing
	return nil
}

// At returns the current sample.
func (it *Iter) At() sensor.Reading {
	return sensor.Reading{Time: it.t, Value: math.Float64frombits(it.v)}
}

// Err reports a decoding failure, if any.
func (it *Iter) Err() error { return it.err }
