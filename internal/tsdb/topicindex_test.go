package tsdb

import (
	"reflect"
	"testing"
	"time"

	"github.com/dcdb/wintermute/internal/sensor"
	"github.com/dcdb/wintermute/internal/store"
)

// TestTopicsPrefixMaintained checks the incrementally-maintained index
// against inserts on both the normal and the batch path.
func TestTopicsPrefixMaintained(t *testing.T) {
	db, err := Open(t.TempDir(), Options{FlushEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.Insert("/r1/n0/power", sensor.Reading{Value: 1, Time: 1})
	db.InsertBatch("/r1/n1/power", []sensor.Reading{{Value: 1, Time: 1}, {Value: 2, Time: 2}})
	db.Insert("/r10/n0/power", sensor.Reading{Value: 1, Time: 1})
	db.Insert("/r2/n0/power", sensor.Reading{Value: 1, Time: 1})

	if got := db.TopicsPrefix("/r1"); !reflect.DeepEqual(got,
		[]sensor.Topic{"/r1/n0/power", "/r1/n1/power"}) {
		t.Fatalf("TopicsPrefix(/r1) = %v", got)
	}
	if got, want := db.TopicsPrefix(""), db.Topics(); !reflect.DeepEqual(got, want) {
		t.Fatalf("full index %v != Topics %v", got, want)
	}
	// The dispatcher must route to the index, not the fallback scan.
	if got := store.TopicsPrefix(db, "/r10"); !reflect.DeepEqual(got,
		[]sensor.Topic{"/r10/n0/power"}) {
		t.Fatalf("dispatcher = %v", got)
	}
}

// TestTopicsPrefixRecovered checks the index is rebuilt on reopen, from
// both flushed segments and WAL-replayed head data.
func TestTopicsPrefixRecovered(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{FlushEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	db.Insert("/flushed/a", sensor.Reading{Value: 1, Time: 1})
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	db.Insert("/unflushed/b", sensor.Reading{Value: 1, Time: 2})
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(dir, Options{FlushEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if got := db2.TopicsPrefix(""); !reflect.DeepEqual(got,
		[]sensor.Topic{"/flushed/a", "/unflushed/b"}) {
		t.Fatalf("recovered index = %v", got)
	}
}

// TestTopicsPrefixPruneGhosts is the persistent-backend ghost
// regression: retention that removes a topic's last reading must remove
// it from wildcard expansion, and a later insert must bring it back.
func TestTopicsPrefixPruneGhosts(t *testing.T) {
	db, err := Open(t.TempDir(), Options{FlushEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	var pruned int
	db.opts.OnPrune = func(cutoff int64, removed int) { pruned += removed }

	for i := 0; i < 5; i++ {
		db.Insert("/old/x", sensor.Reading{Value: 1, Time: int64(i) * int64(time.Second)})
	}
	db.Insert("/new/y", sensor.Reading{Value: 1, Time: int64(time.Hour)})
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if n := db.Prune(int64(30 * time.Minute)); n != 5 {
		t.Fatalf("pruned %d, want 5", n)
	}
	if pruned != 5 {
		t.Fatalf("OnPrune hook saw %d removals, want 5", pruned)
	}
	if got := db.TopicsPrefix("/old"); len(got) != 0 {
		t.Fatalf("ghost topic after prune: %v", got)
	}
	if got := db.TopicsPrefix(""); !reflect.DeepEqual(got, []sensor.Topic{"/new/y"}) {
		t.Fatalf("index after prune = %v", got)
	}
	db.Insert("/old/x", sensor.Reading{Value: 2, Time: 2 * int64(time.Hour)})
	if got := db.TopicsPrefix("/old"); !reflect.DeepEqual(got, []sensor.Topic{"/old/x"}) {
		t.Fatalf("re-insert did not re-index: %v", got)
	}
}
