package tsdb

import (
	"testing"
	"time"

	"github.com/dcdb/wintermute/internal/sensor"
	"github.com/dcdb/wintermute/internal/telemetry"
)

// TestDBMetrics drives the engine through its instrumented paths — WAL
// appends, flush, query-time chunk decodes, prune — and checks each
// series through the registry.
func TestDBMetrics(t *testing.T) {
	reg := telemetry.NewRegistry()
	// WALSync selects the group-commit leader path, the one that times
	// its commits (the inline no-sync path skips the clock by design).
	db, err := Open(t.TempDir(), Options{FlushEvery: -1, WALSync: true, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	rs := make([]sensor.Reading, 100)
	for i := range rs {
		rs[i] = sensor.Reading{Value: float64(i), Time: int64(i) * int64(time.Second)}
	}
	db.InsertBatch("/a", rs)
	db.InsertBatch("/b", rs)

	if v, _ := reg.Value("dcdb_tsdb_wal_appends_total"); v != 2 {
		t.Fatalf("wal appends = %v, want 2", v)
	}
	if v, _ := reg.Value("dcdb_tsdb_wal_commits_total"); v < 1 {
		t.Fatalf("wal commits = %v, want >= 1", v)
	}
	if v, ok := reg.Value("dcdb_tsdb_head_readings"); !ok || v != 200 {
		t.Fatalf("head readings = %v (ok=%v), want 200", v, ok)
	}

	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if v, _ := reg.Value("dcdb_tsdb_flushes_total"); v != 1 {
		t.Fatalf("flushes = %v, want 1", v)
	}
	if v, _ := reg.Value("dcdb_tsdb_flushed_readings_total"); v != 200 {
		t.Fatalf("flushed readings = %v, want 200", v)
	}
	if v, ok := reg.Value("dcdb_tsdb_segments"); !ok || v != 1 {
		t.Fatalf("segments = %v (ok=%v), want 1", v, ok)
	}

	// Reads from the flushed segment decode chunks, and the count is
	// visible both as the metric and through ChunksDecoded (the
	// slow-query attribution hook).
	if got := db.Range("/a", 0, int64(99)*int64(time.Second), nil); len(got) != 100 {
		t.Fatalf("range = %d readings", len(got))
	}
	if n := db.ChunksDecoded(); n == 0 {
		t.Fatal("no chunk decodes counted")
	}
	if v, _ := reg.Value("dcdb_tsdb_chunk_decodes_total"); uint64(v) != db.ChunksDecoded() {
		t.Fatalf("metric %v != ChunksDecoded %d", v, db.ChunksDecoded())
	}

	// Histogram series carry observations.
	for _, name := range []string{
		"dcdb_tsdb_wal_cohort_records",
		"dcdb_tsdb_wal_commit_seconds",
		"dcdb_tsdb_flush_seconds",
	} {
		if v, ok := reg.Value(name); !ok || v < 1 {
			t.Errorf("%s observations = %v (ok=%v), want >= 1", name, v, ok)
		}
	}
	if v, ok := reg.Value("dcdb_tsdb_recovery_seconds"); !ok || v < 0 {
		t.Errorf("recovery seconds = %v (ok=%v)", v, ok)
	}
}

// TestDBMetricsClosedOnClose checks that the DB's callback gauges are
// unregistered when the DB closes, so a scrape after Close cannot read
// freed state.
func TestDBMetricsClosedOnClose(t *testing.T) {
	reg := telemetry.NewRegistry()
	db, err := Open(t.TempDir(), Options{FlushEvery: -1, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := reg.Value("dcdb_tsdb_head_readings"); !ok {
		t.Fatal("head gauge not registered while open")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := reg.Value("dcdb_tsdb_head_readings"); ok {
		t.Fatal("head gauge still registered after Close")
	}
	// The scrape path stays healthy with the gauges gone.
	reg.Snapshot(func(*telemetry.Sample) {})
}

// TestDBMetricsSharedRegistry: two DBs on one registry sum their
// callback gauges into one exposition series instead of colliding.
func TestDBMetricsSharedRegistry(t *testing.T) {
	reg := telemetry.NewRegistry()
	db1, err := Open(t.TempDir(), Options{FlushEvery: -1, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer db1.Close()
	db2, err := Open(t.TempDir(), Options{FlushEvery: -1, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()

	db1.Insert("/a", sensor.Reading{Value: 1, Time: 1})
	db2.Insert("/b", sensor.Reading{Value: 2, Time: 2})
	db2.Insert("/b", sensor.Reading{Value: 3, Time: 3})

	if v, ok := reg.Value("dcdb_tsdb_head_readings"); !ok || v != 3 {
		t.Fatalf("summed head readings = %v (ok=%v), want 3", v, ok)
	}
}
