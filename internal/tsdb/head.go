package tsdb

import (
	"sort"
	"sync"

	"github.com/dcdb/wintermute/internal/sensor"
)

// head is the mutable in-memory block of one series: every reading since
// the last flush, kept in timestamp order so queries and segment writes
// need no extra sort. It mirrors the in-memory store's series but is
// transient — the janitor periodically drains heads into segments.
type head struct {
	mu   sync.RWMutex
	data []sensor.Reading
}

// insert places readings at their sorted positions (append-fast for the
// common in-order case).
func (h *head) insert(rs []sensor.Reading) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, r := range rs {
		n := len(h.data)
		if n == 0 || h.data[n-1].Time <= r.Time {
			h.data = append(h.data, r)
			continue
		}
		i := sort.Search(n, func(i int) bool { return h.data[i].Time > r.Time })
		h.data = append(h.data, sensor.Reading{})
		copy(h.data[i+1:], h.data[i:])
		h.data[i] = r
	}
}

// appendRange appends the readings within [t0, t1] to dst.
func (h *head) appendRange(t0, t1 int64, dst []sensor.Reading) []sensor.Reading {
	h.mu.RLock()
	defer h.mu.RUnlock()
	lo := sort.Search(len(h.data), func(i int) bool { return h.data[i].Time >= t0 })
	hi := sort.Search(len(h.data), func(i int) bool { return h.data[i].Time > t1 })
	return append(dst, h.data[lo:hi]...)
}

// latest returns the newest reading at or after floor.
func (h *head) latest(floor int64) (sensor.Reading, bool) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	if n := len(h.data); n > 0 && h.data[n-1].Time >= floor {
		return h.data[n-1], true
	}
	return sensor.Reading{}, false
}

// countFrom returns how many readings are at or after floor.
func (h *head) countFrom(floor int64) int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	lo := sort.Search(len(h.data), func(i int) bool { return h.data[i].Time >= floor })
	return len(h.data) - lo
}

// len returns the number of buffered readings.
func (h *head) len() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.data)
}

// prune drops readings strictly older than cutoff, returning how many.
func (h *head) prune(cutoff int64) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	lo := sort.Search(len(h.data), func(i int) bool { return h.data[i].Time >= cutoff })
	if lo > 0 {
		h.data = append(h.data[:0], h.data[lo:]...)
	}
	return lo
}
