package tsdb

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"github.com/dcdb/wintermute/internal/sensor"
)

// The write-ahead log is shared by every series: one append per ingest
// batch, framed as
//
//	u32le payload length | u32le CRC-32 (IEEE) of payload | payload
//
// with the payload holding the topic and a delta-varint-compressed run of
// readings. Records are written with a single Write call and no
// user-space buffering, so everything an Append returned from survives a
// process kill. Replay stops at the first torn or corrupt record — by
// construction that can only be the interrupted tail.

const walHeaderSize = 8

// walFile names one on-disk WAL file.
type walFile struct {
	seq  uint64
	path string
}

// listWAL returns the directory's WAL files sorted by sequence number.
func listWAL(dir string) ([]walFile, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []walFile
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".wal") {
			continue
		}
		seq, err := strconv.ParseUint(strings.TrimSuffix(name, ".wal"), 10, 64)
		if err != nil {
			continue // foreign file; leave it alone
		}
		files = append(files, walFile{seq: seq, path: filepath.Join(dir, name)})
	}
	sort.Slice(files, func(i, j int) bool { return files[i].seq < files[j].seq })
	return files, nil
}

func walPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%08d.wal", seq))
}

// wal is the active write-ahead log file.
type wal struct {
	dir      string
	syncEach bool

	mu   sync.Mutex
	f    *os.File
	seq  uint64
	size int64
	buf  []byte // record scratch, reused across appends
}

// newWAL starts a fresh WAL file with the given sequence number.
func newWAL(dir string, seq uint64, syncEach bool) (*wal, error) {
	f, err := os.OpenFile(walPath(dir, seq), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &wal{dir: dir, syncEach: syncEach, f: f, seq: seq}, nil
}

// Append durably logs one topic's reading batch.
func (w *wal) Append(topic sensor.Topic, rs []sensor.Reading) error {
	if len(rs) == 0 {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf = appendWALRecord(w.buf[:0], topic, rs)
	n, err := w.f.Write(w.buf)
	w.size += int64(n)
	if err != nil {
		return fmt.Errorf("tsdb: wal append: %w", err)
	}
	if w.syncEach {
		return w.f.Sync()
	}
	return nil
}

// rotate starts the next WAL file and retires the active one, returning
// the retired sequence number. It is fail-safe: the next file is opened
// and the old one synced before anything is switched, so on error the
// old file stays active and appends keep working.
func (w *wal) rotate() (retired uint64, err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	next := walPath(w.dir, w.seq+1)
	f, err := os.OpenFile(next, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return 0, err
	}
	if err := w.f.Sync(); err != nil {
		f.Close()
		os.Remove(next)
		return 0, err
	}
	w.f.Close() // contents are synced; a close error loses nothing
	retired = w.seq
	w.seq++
	w.f = f
	w.size = 0
	return retired, nil
}

// Close syncs and closes the active file.
func (w *wal) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// appendWALRecord frames one (topic, readings) batch into dst.
func appendWALRecord(dst []byte, topic sensor.Topic, rs []sensor.Reading) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0) // header placeholder
	dst = binary.AppendUvarint(dst, uint64(len(topic)))
	dst = append(dst, topic...)
	dst = binary.AppendUvarint(dst, uint64(len(rs)))
	prev := int64(0)
	for _, r := range rs {
		dst = binary.AppendVarint(dst, r.Time-prev)
		prev = r.Time
		var v [8]byte
		binary.LittleEndian.PutUint64(v[:], math.Float64bits(r.Value))
		dst = append(dst, v[:]...)
	}
	payload := dst[start+walHeaderSize:]
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[start+4:], crc32.ChecksumIEEE(payload))
	return dst
}

// replayWAL streams every intact record of one WAL file into fn. A torn
// or corrupt tail record ends the replay silently: it is the expected
// shape of a crash interrupting Append, and everything before it is
// protected by its own CRC.
func replayWAL(path string, fn func(topic sensor.Topic, rs []sensor.Reading)) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	for len(data) > 0 {
		if len(data) < walHeaderSize {
			return nil // torn header
		}
		plen := binary.LittleEndian.Uint32(data)
		crc := binary.LittleEndian.Uint32(data[4:])
		rest := data[walHeaderSize:]
		if uint64(plen) > uint64(len(rest)) {
			return nil // torn payload
		}
		payload := rest[:plen]
		if crc32.ChecksumIEEE(payload) != crc {
			return nil // corrupt tail
		}
		topic, rs, err := decodeWALPayload(payload)
		if err != nil {
			return nil // structurally invalid tail
		}
		fn(topic, rs)
		data = rest[plen:]
	}
	return nil
}

func decodeWALPayload(p []byte) (sensor.Topic, []sensor.Reading, error) {
	tlen, n := binary.Uvarint(p)
	if n <= 0 || uint64(len(p)-n) < tlen {
		return "", nil, io.ErrUnexpectedEOF
	}
	topic := sensor.Topic(p[n : n+int(tlen)])
	p = p[n+int(tlen):]
	count, n := binary.Uvarint(p)
	if n <= 0 {
		return "", nil, io.ErrUnexpectedEOF
	}
	p = p[n:]
	// Every reading needs at least 9 payload bytes (1-byte varint delta +
	// 8-byte value); a count beyond that bound is a corrupt record, not a
	// preallocation request.
	if count > uint64(len(p))/9 {
		return "", nil, io.ErrUnexpectedEOF
	}
	rs := make([]sensor.Reading, 0, count)
	prev := int64(0)
	for i := uint64(0); i < count; i++ {
		dt, n := binary.Varint(p)
		if n <= 0 || len(p) < n+8 {
			return "", nil, io.ErrUnexpectedEOF
		}
		prev += dt
		v := binary.LittleEndian.Uint64(p[n:])
		rs = append(rs, sensor.Reading{Time: prev, Value: math.Float64frombits(v)})
		p = p[n+8:]
	}
	return topic, rs, nil
}
