package tsdb

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/dcdb/wintermute/internal/sensor"
	"github.com/dcdb/wintermute/internal/telemetry"
)

// The write-ahead log is shared by every series: one record per ingest
// batch, framed as
//
//	u32le payload length | u32le CRC-32 (IEEE) of payload | payload
//
// with the payload holding the topic and a delta-varint-compressed run of
// readings. Persistence uses group commit: each writer encodes its record
// outside any lock, stages it into the current commit cohort, and one
// writer — the cohort's leader — flushes every staged record with a
// single Write (and, with syncEach, a single Sync) before waking the
// whole cohort. Append therefore keeps its durability meaning (a
// returned Append survives a process kill; with syncEach an OS crash
// too) while the write/fsync cost is amortized across every concurrent
// batch. Records are written whole, so replay stops at the first torn or
// corrupt record — by construction that can only be the interrupted
// tail.

const walHeaderSize = 8

// walFile names one on-disk WAL file.
type walFile struct {
	seq  uint64
	path string
}

// listWAL returns the directory's WAL files sorted by sequence number.
func listWAL(fs FS, dir string) ([]walFile, error) {
	entries, err := fs.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []walFile
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".wal") {
			continue
		}
		seq, err := strconv.ParseUint(strings.TrimSuffix(name, ".wal"), 10, 64)
		if err != nil {
			continue // foreign file; leave it alone
		}
		files = append(files, walFile{seq: seq, path: filepath.Join(dir, name)})
	}
	sort.Slice(files, func(i, j int) bool { return files[i].seq < files[j].seq })
	return files, nil
}

func walPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%08d.wal", seq))
}

// walGroup is one commit cohort: the concatenated records of every
// writer that staged while the previous cohort was being persisted.
// done is closed once the cohort's single write (+ sync) finished; err
// is its shared outcome.
type walGroup struct {
	buf  []byte
	n    int // records staged
	done chan struct{}
	err  error
}

// walRecPool recycles the per-writer encode scratch so staging a record
// allocates nothing in steady state.
var walRecPool = sync.Pool{New: func() any { return new([]byte) }}

// wal is the active write-ahead log file.
type wal struct {
	fs          FS
	dir         string
	syncEach    bool
	groupWindow time.Duration
	legacy      bool // pre-group-commit append path, kept for the paired bench

	// m is the owning DB's telemetry bundle, set by Open before any
	// Append can run; nil only when a wal is constructed bare in tests.
	m *dbMetrics

	mu         sync.Mutex
	drained    *sync.Cond // signalled when committing falls back to false
	staging    *walGroup  // cohort accepting writers, nil when empty
	committing bool       // a leader is persisting a cohort outside mu
	err        error      // sticky commit failure; cleared by rotate
	f          File
	seq        uint64
	size       int64
	buf        []byte // legacy-path record scratch
}

// newWAL starts a fresh WAL file with the given sequence number.
func newWAL(fs FS, dir string, seq uint64, syncEach bool) (*wal, error) {
	f, err := fs.OpenFile(walPath(dir, seq), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	w := &wal{fs: fs, dir: dir, syncEach: syncEach, f: f, seq: seq}
	w.drained = sync.NewCond(&w.mu)
	return w, nil
}

// Append durably logs one topic's reading batch through the group
// committer: the record is encoded outside the lock, staged into the
// current cohort, and Append returns once a leader has persisted the
// cohort with one write (+ one sync when syncEach is set).
func (w *wal) Append(topic sensor.Topic, rs []sensor.Reading) error {
	if len(rs) == 0 {
		return nil
	}
	if w.legacy {
		return w.appendLegacy(topic, rs)
	}
	rec := walRecPool.Get().(*[]byte)
	*rec = appendWALRecord((*rec)[:0], topic, rs)

	w.mu.Lock()
	if w.err != nil {
		// A previous cohort failed: the file may end in a torn record, and
		// anything written after it would be silently lost by replay. Stay
		// failed until rotate produces a fresh file.
		err := w.err
		w.mu.Unlock()
		walRecPool.Put(rec)
		return err
	}
	if !w.syncEach && w.groupWindow == 0 && !w.committing && w.staging == nil {
		// No fsync to amortize: the bare write is cheaper than cohort
		// coordination, so commit inline under the lock (the encode
		// already happened outside it). Writers arriving mid-write
		// queue on the mutex exactly as cohort followers would.
		n, err := w.f.Write(*rec)
		w.size += int64(n)
		if err != nil {
			err = fmt.Errorf("tsdb: wal append: %w", err)
			w.err = err
		}
		w.mu.Unlock()
		walRecPool.Put(rec)
		if m := w.m; m != nil && err == nil {
			m.walAppends.Inc()
			m.walCommits.Inc()
			m.walBytes.Add(uint64(n))
			m.walCohort.Observe(1)
		}
		return err
	}
	g := w.staging
	if g == nil {
		g = &walGroup{done: make(chan struct{})}
		w.staging = g
	}
	g.buf = append(g.buf, *rec...)
	g.n++
	walRecPool.Put(rec)
	if w.committing {
		// A leader is persisting the previous cohort; it will take this
		// one next. Park until our cohort is durable.
		w.mu.Unlock()
		<-g.done
		return g.err
	}
	// No commit in flight: this writer leads. Optionally linger so more
	// concurrent writers join the cohort before it is persisted.
	w.committing = true
	if w.groupWindow > 0 {
		w.mu.Unlock()
		time.Sleep(w.groupWindow)
		w.mu.Lock()
	}
	for w.staging != nil && w.err == nil {
		if w.syncEach && w.groupWindow == 0 {
			// An fsync dwarfs everything else on this path, so make each
			// one count: yield until the cohort stops growing — writers
			// woken by the previous commit (runnable, about to re-stage)
			// join this cohort instead of forcing a near-empty fsync of
			// their own. A lone writer exits after two yields (~ns), so
			// the uncontended append pays no measurable latency.
			for prev, stable, spins := w.staging.n, 0, 0; stable < 2 && spins < 256; spins++ {
				w.mu.Unlock()
				runtime.Gosched()
				w.mu.Lock()
				if n := w.staging.n; n == prev {
					stable++
				} else {
					prev, stable = n, 0
				}
			}
		}
		cur := w.staging
		w.staging = nil
		w.mu.Unlock()
		commitStart := telemetry.Clock()
		n, err := w.f.Write(cur.buf)
		if err == nil && w.syncEach {
			err = w.f.Sync()
		}
		if err != nil {
			err = fmt.Errorf("tsdb: wal append: %w", err)
		}
		if m := w.m; m != nil && err == nil {
			m.walCommitS.ObserveSince(commitStart)
			m.walCommits.Inc()
			m.walAppends.Add(uint64(cur.n))
			m.walBytes.Add(uint64(n))
			m.walCohort.Observe(float64(cur.n))
		}
		w.mu.Lock()
		w.size += int64(n)
		if err != nil && w.err == nil {
			w.err = err
		}
		cur.err = err
		close(cur.done)
	}
	// A sticky error fails any cohort staged after the failing one
	// without touching the file.
	if g2 := w.staging; g2 != nil {
		w.staging = nil
		g2.err = w.err
		close(g2.done)
	}
	w.committing = false
	w.drained.Broadcast()
	w.mu.Unlock()
	return g.err
}

// appendLegacy is the pre-group-commit path: encode, write and sync all
// under the writer lock, one fsync per batch. Kept selectable (see
// Options.LegacyIngest) so the paired ingest benchmarks can measure the
// before side.
func (w *wal) appendLegacy(topic sensor.Topic, rs []sensor.Reading) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	w.buf = appendWALRecord(w.buf[:0], topic, rs)
	commitStart := telemetry.Clock()
	n, err := w.f.Write(w.buf)
	w.size += int64(n)
	if err != nil {
		err = fmt.Errorf("tsdb: wal append: %w", err)
		w.err = err
		return err
	}
	if w.syncEach {
		if err := w.f.Sync(); err != nil {
			w.err = err
			return err
		}
	}
	if m := w.m; m != nil {
		m.walCommitS.ObserveSince(commitStart)
		m.walCommits.Inc()
		m.walAppends.Inc()
		m.walBytes.Add(uint64(n))
		m.walCohort.Observe(1)
	}
	return nil
}

// waitDrainedLocked blocks until no cohort is staged or being committed.
// Callers hold w.mu.
func (w *wal) waitDrainedLocked() {
	for w.committing {
		w.drained.Wait()
	}
}

// rotate starts the next WAL file and retires the active one, returning
// the retired sequence number. It waits out any in-flight group commit,
// and is fail-safe: the next file is opened and the old one synced
// before anything is switched, so on error the old file stays active
// and appends keep working. A successful rotate also clears the sticky
// commit error — the fresh file cannot end in a torn record.
func (w *wal) rotate() (retired uint64, err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.waitDrainedLocked()
	next := walPath(w.dir, w.seq+1)
	f, err := w.fs.OpenFile(next, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return 0, err
	}
	if err := w.f.Sync(); err != nil {
		f.Close()
		w.fs.Remove(next)
		return 0, err
	}
	w.f.Close() // contents are synced; a close error loses nothing
	retired = w.seq
	w.seq++
	w.f = f
	w.size = 0
	w.err = nil
	return retired, nil
}

// Close drains any in-flight group commit, then syncs and closes the
// active file.
func (w *wal) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.waitDrainedLocked()
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// abandon closes the file handle without syncing, simulating process
// death for crash drills. In-flight commits are waited out first so the
// close cannot race a leader's Write.
func (w *wal) abandon() {
	w.mu.Lock()
	w.waitDrainedLocked()
	w.f.Close()
	w.mu.Unlock()
}

// appendWALRecord frames one (topic, readings) batch into dst.
func appendWALRecord(dst []byte, topic sensor.Topic, rs []sensor.Reading) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0) // header placeholder
	dst = binary.AppendUvarint(dst, uint64(len(topic)))
	dst = append(dst, topic...)
	dst = binary.AppendUvarint(dst, uint64(len(rs)))
	prev := int64(0)
	for _, r := range rs {
		dst = binary.AppendVarint(dst, r.Time-prev)
		prev = r.Time
		var v [8]byte
		binary.LittleEndian.PutUint64(v[:], math.Float64bits(r.Value))
		dst = append(dst, v[:]...)
	}
	payload := dst[start+walHeaderSize:]
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[start+4:], crc32.ChecksumIEEE(payload))
	return dst
}

// replayWAL streams every intact record of one WAL file into fn. A torn
// or corrupt tail record ends the replay silently: it is the expected
// shape of a crash interrupting Append, and everything before it is
// protected by its own CRC.
func replayWAL(fs FS, path string, fn func(topic sensor.Topic, rs []sensor.Reading)) error {
	data, err := fs.ReadFile(path)
	if err != nil {
		return err
	}
	for len(data) > 0 {
		if len(data) < walHeaderSize {
			return nil // torn header
		}
		plen := binary.LittleEndian.Uint32(data)
		crc := binary.LittleEndian.Uint32(data[4:])
		rest := data[walHeaderSize:]
		if uint64(plen) > uint64(len(rest)) {
			return nil // torn payload
		}
		payload := rest[:plen]
		if crc32.ChecksumIEEE(payload) != crc {
			return nil // corrupt tail
		}
		topic, rs, err := decodeWALPayload(payload)
		if err != nil {
			return nil // structurally invalid tail
		}
		fn(topic, rs)
		data = rest[plen:]
	}
	return nil
}

func decodeWALPayload(p []byte) (sensor.Topic, []sensor.Reading, error) {
	tlen, n := binary.Uvarint(p)
	if n <= 0 || uint64(len(p)-n) < tlen {
		return "", nil, io.ErrUnexpectedEOF
	}
	topic := sensor.Topic(p[n : n+int(tlen)])
	p = p[n+int(tlen):]
	count, n := binary.Uvarint(p)
	if n <= 0 {
		return "", nil, io.ErrUnexpectedEOF
	}
	p = p[n:]
	// Every reading needs at least 9 payload bytes (1-byte varint delta +
	// 8-byte value); a count beyond that bound is a corrupt record, not a
	// preallocation request.
	if count > uint64(len(p))/9 {
		return "", nil, io.ErrUnexpectedEOF
	}
	rs := make([]sensor.Reading, 0, count)
	prev := int64(0)
	for i := uint64(0); i < count; i++ {
		dt, n := binary.Varint(p)
		if n <= 0 || len(p) < n+8 {
			return "", nil, io.ErrUnexpectedEOF
		}
		prev += dt
		v := binary.LittleEndian.Uint64(p[n:])
		rs = append(rs, sensor.Reading{Time: prev, Value: math.Float64frombits(v)})
		p = p[n+8:]
	}
	return topic, rs, nil
}
