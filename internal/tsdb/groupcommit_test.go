package tsdb

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/dcdb/wintermute/internal/sensor"
)

// TestConcurrentWritersFlushRotate races N concurrent batch writers
// against whole Flush cycles, bare WAL rotations and epoch-checked
// queries: nothing acknowledged may go missing, and the run must be
// race-clean (exercised by `make race`).
func TestConcurrentWritersFlushRotate(t *testing.T) {
	db := openTest(t, t.TempDir(), Options{})
	defer db.Close()
	const writers = 8
	const batches = 60
	const batchLen = 16
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			topic := sensor.Topic(fmt.Sprintf("/r1/n%02d/power", w))
			batch := make([]sensor.Reading, batchLen)
			for i := 0; i < batches; i++ {
				for j := range batch {
					batch[j] = sensor.Reading{Value: float64(w), Time: int64(i*batchLen+j) * sec}
				}
				db.InsertBatch(topic, batch)
			}
		}(w)
	}
	stop := make(chan struct{})
	var aux sync.WaitGroup
	aux.Add(2)
	go func() { // flush cycles (detach + rotate + segment write)
		defer aux.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := db.Flush(); err != nil {
				t.Errorf("Flush: %v", err)
				return
			}
		}
	}()
	go func() { // bare WAL rotations racing the group committer
		defer aux.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := db.wal.rotate(); err != nil {
				t.Errorf("rotate: %v", err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	for i := 0; i < 50; i++ {
		for w := 0; w < writers; w++ {
			topic := sensor.Topic(fmt.Sprintf("/r1/n%02d/power", w))
			db.Range(topic, 0, int64(batches*batchLen)*sec, nil)
			db.Latest(topic)
		}
	}
	wg.Wait()
	close(stop)
	aux.Wait()
	total := 0
	for w := 0; w < writers; w++ {
		total += db.Count(sensor.Topic(fmt.Sprintf("/r1/n%02d/power", w)))
	}
	if want := writers * batches * batchLen; total != want {
		t.Fatalf("total = %d, want %d", total, want)
	}
}

// TestGroupCommitAckedSurvivesKill is the durability contract of the
// group-commit WAL under -store-wal-sync: every InsertBatch that has
// returned is on synced disk, so a process kill (Abandon) straight
// after the last ack loses nothing.
func TestGroupCommitAckedSurvivesKill(t *testing.T) {
	dir := t.TempDir()
	db := openTest(t, dir, Options{WALSync: true})
	const writers = 16
	const batches = 10
	const batchLen = 8
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			topic := sensor.Topic(fmt.Sprintf("/k/n%02d/power", w))
			batch := make([]sensor.Reading, batchLen)
			for i := 0; i < batches; i++ {
				for j := range batch {
					batch[j] = sensor.Reading{Value: float64(w*1000 + i), Time: int64(i*batchLen+j) * sec}
				}
				db.InsertBatch(topic, batch)
			}
		}(w)
	}
	wg.Wait()
	db.Abandon() // SIGKILL: no flush, no extra sync

	db2 := openTest(t, dir, Options{})
	defer db2.Close()
	for w := 0; w < writers; w++ {
		topic := sensor.Topic(fmt.Sprintf("/k/n%02d/power", w))
		if got := db2.Count(topic); got != batches*batchLen {
			t.Fatalf("%s: recovered %d readings, want %d", topic, got, batches*batchLen)
		}
		rs := db2.Range(topic, 0, int64(batches*batchLen)*sec, nil)
		for i := 1; i < len(rs); i++ {
			if rs[i].Time < rs[i-1].Time {
				t.Fatalf("%s: recovered readings unordered at %d", topic, i)
			}
		}
	}
}

// TestOrderedShutdownDrainsCommitQueue closes the DB while writers are
// still staging records into the group committer: Close must wait out
// the in-flight inserts (ingest lock) and drain every committed cohort
// before closing the file, so a reopen replays every acknowledged
// record.
func TestOrderedShutdownDrainsCommitQueue(t *testing.T) {
	dir := t.TempDir()
	db := openTest(t, dir, Options{})
	const writers = 8
	var acked atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			topic := sensor.Topic(fmt.Sprintf("/s/n%02d/power", w))
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				db.InsertBatch(topic, []sensor.Reading{{Value: float64(i), Time: int64(i) * sec}})
				acked.Add(1)
				i++
			}
		}(w)
	}
	time.Sleep(20 * time.Millisecond) // let the committer build real cohorts
	close(stop)
	wg.Wait()
	total := int(acked.Load())
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	db2 := openTest(t, dir, Options{})
	defer db2.Close()
	if got := db2.TotalReadings(); got != total {
		t.Fatalf("reopened DB has %d readings, %d were acked", got, total)
	}
}

// TestGroupCommitErrorPropagation exercises the WAL-level sticky error:
// once a cohort fails, later appends fail fast without touching the
// (possibly torn) file, the DB reports degraded, keeps serving from
// memory, and a failed rotate keeps it degraded (matching the pre-PR
// fail-safe rotate semantics).
func TestGroupCommitErrorPropagation(t *testing.T) {
	db := openTest(t, t.TempDir(), Options{})
	db.InsertBatch("/x", []sensor.Reading{{Value: 1, Time: 1}})
	// Force a commit failure the way a yanked disk would: close the file
	// under the WAL.
	db.wal.mu.Lock()
	db.wal.f.Close()
	db.wal.mu.Unlock()
	db.InsertBatch("/x", []sensor.Reading{{Value: 2, Time: 2}})
	if db.walError() == nil {
		t.Fatal("commit failure not surfaced as degraded WAL")
	}
	// Later appends take the sticky fast path; memory still serves.
	db.InsertBatch("/x", []sensor.Reading{{Value: 3, Time: 3}})
	if got := db.Count("/x"); got != 3 {
		t.Fatalf("Count = %d, want 3 (memory-resident)", got)
	}
	// The fail-safe rotate cannot sync the broken file, so the flush
	// fails, data is restored into heads and the DB stays degraded.
	if err := db.Flush(); err == nil {
		t.Fatal("Flush over a broken WAL file must fail")
	}
	if got := db.Count("/x"); got != 3 {
		t.Fatalf("Count after failed flush = %d, want 3", got)
	}
	if err := db.Close(); err == nil {
		t.Fatal("Close must surface the WAL failure")
	}
}

// TestLegacyIngestPathStillCorrect keeps the benchmark-only legacy path
// honest: same data in, same data out.
func TestLegacyIngestPathStillCorrect(t *testing.T) {
	dir := t.TempDir()
	db := openTest(t, dir, Options{LegacyIngest: true, WALSync: true})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			topic := sensor.Topic(fmt.Sprintf("/l/n%02d/power", w))
			for i := 0; i < 50; i++ {
				db.InsertBatch(topic, []sensor.Reading{{Value: float64(i), Time: int64(i) * sec}})
			}
		}(w)
	}
	wg.Wait()
	db.Abandon()
	db2 := openTest(t, dir, Options{})
	defer db2.Close()
	if got := db2.TotalReadings(); got != 4*50 {
		t.Fatalf("recovered %d readings, want 200", got)
	}
}

// TestGroupWindowCoalesces sanity-checks the linger knob: with a window
// set, concurrent appends from many goroutines land in few cohorts (and
// none are lost).
func TestGroupWindowCoalesces(t *testing.T) {
	dir := t.TempDir()
	db := openTest(t, dir, Options{WALGroupWindow: 2 * time.Millisecond})
	const writers = 8
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			topic := sensor.Topic(fmt.Sprintf("/g/n%02d/power", w))
			for i := 0; i < 20; i++ {
				db.InsertBatch(topic, []sensor.Reading{{Value: float64(i), Time: int64(i) * sec}})
			}
		}(w)
	}
	wg.Wait()
	if got := db.TotalReadings(); got != writers*20 {
		t.Fatalf("TotalReadings = %d, want %d", got, writers*20)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}
