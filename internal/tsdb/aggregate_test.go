package tsdb

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"github.com/dcdb/wintermute/internal/sensor"
	"github.com/dcdb/wintermute/internal/store"
	"github.com/dcdb/wintermute/internal/testseed"
)

// The property suite: for randomized series — out-of-order arrivals,
// data straddling flush boundaries, every tier populated at once —
// the streaming aggregation engine must answer exactly like the naive
// materializing Range+reduce reference. Values are integer-valued
// floats, so every partial sum is exact regardless of summation order
// and the equivalence can be asserted bit for bit.

// buildRandomDB fills a janitor-less DB with nTopics random series,
// flushing at random points so data lands in several segments plus the
// live heads, with a slice of out-of-order stragglers inserted after
// flushes (straddling the flush boundary).
func buildRandomDB(t *testing.T, rng *rand.Rand, dir string, nTopics, perTopic int) (*DB, []sensor.Topic, int64) {
	t.Helper()
	db, err := Open(dir, Options{FlushEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	topics := make([]sensor.Topic, nTopics)
	for i := range topics {
		topics[i] = sensor.Topic(fmt.Sprintf("/rack%d/node%d/power", i/2, i))
	}
	var maxT int64
	for round := 0; round < 4; round++ {
		for _, tp := range topics {
			batch := make([]sensor.Reading, 0, perTopic/4)
			base := int64(round * perTopic / 4 * 10)
			for k := 0; k < perTopic/4; k++ {
				ts := base + int64(k*10) + rng.Int63n(7)
				if rng.Intn(8) == 0 && len(batch) > 0 {
					ts = batch[len(batch)-1].Time - rng.Int63n(30) // out of order
				}
				if ts < 0 {
					ts = 0
				}
				if ts > maxT {
					maxT = ts
				}
				batch = append(batch, sensor.Reading{Time: ts, Value: float64(rng.Intn(1000))})
			}
			db.InsertBatch(tp, batch)
		}
		if round < 3 {
			if err := db.Flush(); err != nil {
				t.Fatal(err)
			}
			// Stragglers older than the segment just written: the next
			// query window straddles the flush boundary.
			for _, tp := range topics {
				db.Insert(tp, sensor.Reading{
					Time:  rng.Int63n(int64(round+1) * int64(perTopic) / 4 * 10),
					Value: float64(rng.Intn(1000)),
				})
			}
		}
	}
	return db, topics, maxT
}

// checkAggEquivalence asserts, for a set of random windows and steps,
// that the native engine and the naive reference agree exactly.
func checkAggEquivalence(t *testing.T, rng *rand.Rand, db *DB, topics []sensor.Topic, maxT int64, label string) {
	t.Helper()
	for trial := 0; trial < 60; trial++ {
		t0 := rng.Int63n(maxT+100) - 50
		t1 := t0 + rng.Int63n(maxT/2+100)
		if trial%9 == 0 {
			t1 = t0 - 1 // inverted window
		}
		tp := topics[rng.Intn(len(topics))]
		got := db.Aggregate(tp, t0, t1)
		want := store.AggregateNaive(db, tp, t0, t1)
		if got != want {
			t.Fatalf("%s: Aggregate(%s, %d, %d) = %+v, naive = %+v", label, tp, t0, t1, got, want)
		}
		step := []int64{1, 3, 17, 100, 1000, maxT + 1}[rng.Intn(6)]
		gotB := db.Downsample(tp, t0, t1, step, nil)
		wantB := store.DownsampleNaive(db, tp, t0, t1, step, nil)
		if len(gotB) != len(wantB) {
			t.Fatalf("%s: Downsample(%s, %d, %d, %d): %d buckets, naive %d",
				label, tp, t0, t1, step, len(gotB), len(wantB))
		}
		for i := range gotB {
			if gotB[i] != wantB[i] {
				t.Fatalf("%s: Downsample(%s, %d, %d, %d) bucket %d = %+v, naive %+v",
					label, tp, t0, t1, step, i, gotB[i], wantB[i])
			}
		}
	}
}

func TestAggregateEquivalenceProperty(t *testing.T) {
	base := testseed.Seed(t)
	for i := 1; i <= 4; i++ {
		t.Run(fmt.Sprintf("round%d", i), func(t *testing.T) {
			rng := rand.New(rand.NewSource(testseed.Derive(base, fmt.Sprintf("round%d", i))))
			db, topics, maxT := buildRandomDB(t, rng, t.TempDir(), 4, 800)
			defer db.Close()

			checkAggEquivalence(t, rng, db, topics, maxT, "live")

			// Retention watermark cutting through segments and heads: both
			// paths must clamp identically.
			db.Prune(maxT / 3)
			checkAggEquivalence(t, rng, db, topics, maxT, "pruned")
		})
	}
}

// TestAggregateEquivalenceAfterRecovery re-checks the property on both
// recovery shapes: a clean Close (all data in segments) and a simulated
// kill (WAL replay back into heads).
func TestAggregateEquivalenceAfterRecovery(t *testing.T) {
	for _, kill := range []bool{false, true} {
		name := "clean_close"
		if kill {
			name = "kill_wal_replay"
		}
		t.Run(name, func(t *testing.T) {
			rng := testseed.Rand(t)
			dir := t.TempDir()
			db, topics, maxT := buildRandomDB(t, rng, dir, 3, 400)
			if kill {
				db.Abandon()
			} else if err := db.Close(); err != nil {
				t.Fatal(err)
			}
			db2, err := Open(dir, Options{FlushEvery: -1})
			if err != nil {
				t.Fatal(err)
			}
			defer db2.Close()
			checkAggEquivalence(t, rng, db2, topics, maxT, name)
		})
	}
}

// TestAggregateUsesChunkMetadata pins the O(1) fast path: aggregating a
// window that fully covers a flushed chunk must not read the chunk
// bytes at all. The segment file is truncated to its header after the
// index is loaded — metadata answers still work, decodes cannot.
func TestAggregateUsesChunkMetadata(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{FlushEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	rs := make([]sensor.Reading, 100)
	for i := range rs {
		rs[i] = sensor.Reading{Time: int64(i), Value: float64(i)}
	}
	db.InsertBatch("/n/power", rs)
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	// Sever the chunk bytes: replace the open file handle with one on
	// an empty scratch file. Only the in-memory index remains usable.
	db.mu.Lock()
	seg := db.segs[0]
	db.mu.Unlock()
	scratch, err := os.CreateTemp(dir, "severed")
	if err != nil {
		t.Fatal(err)
	}
	old := seg.f
	seg.f = scratch
	defer func() { seg.f = old; scratch.Close() }()

	got := db.Aggregate("/n/power", 0, 99)
	want := store.AggResult{Count: 100, Sum: 4950, Min: 0, Max: 99}
	if got != want {
		t.Fatalf("fully-covered aggregate = %+v, want %+v (metadata-only)", got, want)
	}
	if b := db.Downsample("/n/power", 0, 99, 1000, nil); len(b) != 1 || b[0].AggResult != want {
		t.Fatalf("single-bucket downsample = %+v, want one bucket %+v", b, want)
	}
	// A boundary window must decode — and with the bytes severed, the
	// chunk is skipped whole rather than answered partially.
	if got := db.Aggregate("/n/power", 10, 20); got.Count != 0 {
		t.Fatalf("boundary aggregate with severed chunk = %+v, want empty", got)
	}
}

// writeSegmentV1 writes a version-1 segment (no per-chunk
// pre-aggregates), byte-identical to the PR3 on-disk format, for the
// compatibility test.
func writeSegmentV1(t *testing.T, path string, coveredWAL uint64, data map[sensor.Topic][]sensor.Reading) {
	t.Helper()
	buf := append([]byte(nil), segMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, segVersionV1)
	buf = binary.LittleEndian.AppendUint64(buf, coveredWAL)
	index := binary.LittleEndian.AppendUint32(nil, uint32(len(data)))
	for topic, rs := range data {
		app := NewAppender()
		for _, r := range rs {
			app.Append(r)
		}
		chunk := app.Bytes()
		off := len(buf)
		buf = append(buf, chunk...)
		index = binary.AppendUvarint(index, uint64(len(topic)))
		index = append(index, topic...)
		index = binary.AppendUvarint(index, uint64(len(rs)))
		index = binary.AppendVarint(index, rs[0].Time)
		index = binary.AppendVarint(index, rs[len(rs)-1].Time)
		index = binary.AppendUvarint(index, uint64(off))
		index = binary.AppendUvarint(index, uint64(len(chunk)))
	}
	indexOff := len(buf)
	buf = append(buf, index...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(indexOff))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(index))
	buf = append(buf, segMagic...)
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestSegmentV1Compatibility opens a database whose segment directory
// holds a version-1 file: ranges, aggregates and downsampling must all
// work (via the decode path — v1 series carry no pre-aggregates).
func TestSegmentV1Compatibility(t *testing.T) {
	dir := t.TempDir()
	segDir := filepath.Join(dir, "seg")
	if err := os.MkdirAll(segDir, 0o755); err != nil {
		t.Fatal(err)
	}
	rs := make([]sensor.Reading, 50)
	for i := range rs {
		rs[i] = sensor.Reading{Time: int64(i * 10), Value: float64(i % 7)}
	}
	writeSegmentV1(t, segPath(segDir, 1), 0, map[sensor.Topic][]sensor.Reading{"/n/power": rs})

	db, err := Open(dir, Options{FlushEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.mu.RLock()
	ss := db.segs[0].series["/n/power"]
	db.mu.RUnlock()
	if ss.hasAgg {
		t.Fatal("v1 series unexpectedly claims pre-aggregates")
	}
	if got := db.Range("/n/power", 0, 490, nil); len(got) != 50 {
		t.Fatalf("v1 Range returned %d readings, want 50", len(got))
	}
	got := db.Aggregate("/n/power", 0, 490)
	want := store.AggregateNaive(db, "/n/power", 0, 490)
	if got != want || got.Count != 50 {
		t.Fatalf("v1 Aggregate = %+v, naive = %+v", got, want)
	}
	gotB := db.Downsample("/n/power", 0, 490, 100, nil)
	wantB := store.DownsampleNaive(db, "/n/power", 0, 490, 100, nil)
	if len(gotB) != len(wantB) {
		t.Fatalf("v1 Downsample: %d buckets, naive %d", len(gotB), len(wantB))
	}
	for i := range gotB {
		if gotB[i] != wantB[i] {
			t.Fatalf("v1 Downsample bucket %d = %+v, naive %+v", i, gotB[i], wantB[i])
		}
	}
}
