package tsdb

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/dcdb/wintermute/internal/sensor"
	"github.com/dcdb/wintermute/internal/testseed"
)

// openTest opens a DB without the background janitor so tests control
// flush and retention timing deterministically.
func openTest(t *testing.T, dir string, opts Options) *DB {
	t.Helper()
	opts.FlushEvery = -1
	db, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return db
}

const sec = int64(time.Second)

func TestInsertRangeLatestCount(t *testing.T) {
	db := openTest(t, t.TempDir(), Options{})
	defer db.Close()
	for i := 0; i < 10; i++ {
		db.Insert("/n/power", sensor.Reading{Value: float64(i), Time: int64(i * 100)})
	}
	got := db.Range("/n/power", 200, 500, nil)
	if len(got) != 4 || got[0].Value != 2 || got[3].Value != 5 {
		t.Fatalf("Range = %+v", got)
	}
	if got := db.Range("/missing", 0, 100, nil); len(got) != 0 {
		t.Fatalf("missing topic = %+v", got)
	}
	if got := db.Range("/n/power", 500, 200, nil); len(got) != 0 {
		t.Fatalf("inverted range = %+v", got)
	}
	if r, ok := db.Latest("/n/power"); !ok || r.Value != 9 {
		t.Fatalf("Latest = %+v, %v", r, ok)
	}
	if db.Count("/n/power") != 10 {
		t.Fatalf("Count = %d", db.Count("/n/power"))
	}
}

func TestQueriesSpanFlushBoundary(t *testing.T) {
	db := openTest(t, t.TempDir(), Options{})
	defer db.Close()
	for i := 0; i < 100; i++ {
		db.Insert("/x", sensor.Reading{Value: float64(i), Time: int64(i) * sec})
	}
	if err := db.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	for i := 100; i < 200; i++ {
		db.Insert("/x", sensor.Reading{Value: float64(i), Time: int64(i) * sec})
	}
	// Range crossing segment -> head.
	got := db.Range("/x", 90*sec, 110*sec, nil)
	if len(got) != 21 || got[0].Value != 90 || got[20].Value != 110 {
		t.Fatalf("boundary range: len=%d %+v", len(got), got[:min(3, len(got))])
	}
	if db.Count("/x") != 200 {
		t.Fatalf("Count = %d", db.Count("/x"))
	}
	if r, ok := db.Latest("/x"); !ok || r.Value != 199 {
		t.Fatalf("Latest = %+v", r)
	}
	// Latest served from segments once heads flush again.
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if r, ok := db.Latest("/x"); !ok || r.Value != 199 {
		t.Fatalf("segment Latest = %+v, %v", r, ok)
	}
}

func TestOutOfOrderAcrossFlush(t *testing.T) {
	db := openTest(t, t.TempDir(), Options{})
	defer db.Close()
	for i := 0; i < 10; i++ {
		db.Insert("/x", sensor.Reading{Value: float64(i), Time: int64(10+i) * sec})
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	// A late reading older than the flushed segment lands in the head;
	// Range must still come back time-ordered.
	db.Insert("/x", sensor.Reading{Value: -1, Time: 5 * sec})
	got := db.Range("/x", 0, 100*sec, nil)
	if len(got) != 11 || got[0].Value != -1 {
		t.Fatalf("Range = %+v", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Time < got[i-1].Time {
			t.Fatalf("unordered at %d: %+v", i, got)
		}
	}
}

func TestTopicsAndTotalReadings(t *testing.T) {
	db := openTest(t, t.TempDir(), Options{})
	defer db.Close()
	for _, tp := range []sensor.Topic{"/c", "/a", "/b"} {
		db.Insert(tp, sensor.Reading{Time: 1, Value: 1})
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	db.Insert("/d", sensor.Reading{Time: 2, Value: 2})
	got := db.Topics()
	want := []sensor.Topic{"/a", "/b", "/c", "/d"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Topics = %v", got)
	}
	if db.TotalReadings() != 4 {
		t.Fatalf("TotalReadings = %d", db.TotalReadings())
	}
}

func TestPruneDropsSegmentsAndTrimsHeads(t *testing.T) {
	db := openTest(t, t.TempDir(), Options{})
	defer db.Close()
	// Segment 1: t in [0, 9]s; segment 2: t in [10, 19]s; head: [20, 29]s.
	for batch := 0; batch < 2; batch++ {
		for i := 0; i < 10; i++ {
			ts := int64(batch*10+i) * sec
			db.Insert("/x", sensor.Reading{Value: float64(batch*10 + i), Time: ts})
		}
		if err := db.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 20; i < 30; i++ {
		db.Insert("/x", sensor.Reading{Value: float64(i), Time: int64(i) * sec})
	}

	// Cut inside segment 2: segment 1 fully expires (10 readings), the
	// watermark hides 5 readings of segment 2.
	removed := db.Prune(15 * sec)
	if removed != 15 {
		t.Fatalf("Prune removed = %d, want 15", removed)
	}
	if db.Count("/x") != 15 {
		t.Fatalf("Count = %d, want 15", db.Count("/x"))
	}
	got := db.Range("/x", 0, 100*sec, nil)
	if len(got) != 15 || got[0].Value != 15 {
		t.Fatalf("Range after prune = %+v", got)
	}
	st := db.Stats()
	if st.Segments != 1 {
		t.Fatalf("Segments = %d, want 1 (expired segment not deleted)", st.Segments)
	}
	// Advancing the watermark again must not double-count segment 2's
	// already-hidden readings.
	if removed := db.Prune(16 * sec); removed != 1 {
		t.Fatalf("second Prune removed = %d, want 1", removed)
	}
	// Prune into the head.
	if removed := db.Prune(22 * sec); removed != 6 {
		t.Fatalf("head Prune removed = %d, want 6", removed)
	}
	if db.TotalReadings() != 8 {
		t.Fatalf("TotalReadings = %d, want 8", db.TotalReadings())
	}
}

func TestStats(t *testing.T) {
	db := openTest(t, t.TempDir(), Options{})
	defer db.Close()
	for i := 0; i < 100; i++ {
		db.Insert("/a", sensor.Reading{Value: float64(i), Time: int64(i) * sec})
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	db.Insert("/b", sensor.Reading{Value: 1, Time: 200 * sec})
	st := db.Stats()
	if st.Kind != "tsdb" || st.Topics != 2 || st.TotalReadings != 101 {
		t.Fatalf("Stats = %+v", st)
	}
	if st.Segments != 1 || st.HeadReadings != 1 {
		t.Fatalf("Stats = %+v", st)
	}
	if st.DiskBytes <= 0 || st.WALFiles == 0 {
		t.Fatalf("Stats disk accounting = %+v", st)
	}
}

func TestJanitorFlushesAndPrunes(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{
		FlushEvery:      time.Hour, // passes driven manually below
		MaxHeadReadings: 10,
		Retention:       time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	now := time.Now()
	for i := 0; i < 20; i++ {
		db.Insert("/x", sensor.Reading{Value: float64(i), Time: now.Add(time.Duration(i-19) * time.Second).UnixNano()})
	}
	db.janitorPass(now)
	st := db.Stats()
	if st.Segments != 1 || st.HeadReadings != 0 {
		t.Fatalf("after janitor pass: %+v", st)
	}
	// A pass an hour later expires everything.
	db.janitorPass(now.Add(time.Hour))
	if n := db.TotalReadings(); n != 0 {
		t.Fatalf("after retention pass: %d readings live", n)
	}
}

func TestConcurrentInsertFlushQuery(t *testing.T) {
	db := openTest(t, t.TempDir(), Options{})
	defer db.Close()
	base := testseed.Seed(t)
	topics := []sensor.Topic{"/a", "/b", "/c", "/d"}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 500; i++ {
				tp := topics[rng.Intn(len(topics))]
				db.Insert(tp, sensor.Reading{Value: float64(i), Time: int64(i) * sec})
			}
		}(testseed.Derive(base, fmt.Sprintf("writer-%d", w)))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if err := db.Flush(); err != nil {
				t.Errorf("Flush: %v", err)
			}
		}
	}()
	for i := 0; i < 200; i++ {
		for _, tp := range topics {
			db.Range(tp, 0, int64(i)*sec, nil)
			db.Latest(tp)
		}
	}
	wg.Wait()
	total := 0
	for _, tp := range topics {
		total += db.Count(tp)
	}
	if total != 4*500 {
		t.Fatalf("total readings = %d, want 2000", total)
	}
}

func TestManyTopicsSurviveFlush(t *testing.T) {
	db := openTest(t, t.TempDir(), Options{})
	defer db.Close()
	const topics, per = 64, 50
	for n := 0; n < topics; n++ {
		tp := sensor.Topic(fmt.Sprintf("/r%02d/n%02d/power", n/8, n%8))
		for i := 0; i < per; i++ {
			db.Insert(tp, sensor.Reading{Value: float64(n*1000 + i), Time: int64(i) * sec})
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	for n := 0; n < topics; n++ {
		tp := sensor.Topic(fmt.Sprintf("/r%02d/n%02d/power", n/8, n%8))
		rs := db.Range(tp, 0, per*sec, nil)
		if len(rs) != per {
			t.Fatalf("%s: %d readings", tp, len(rs))
		}
		if rs[per-1].Value != float64(n*1000+per-1) {
			t.Fatalf("%s: wrong tail %+v", tp, rs[per-1])
		}
	}
}

// TestLatestPrefersNewestAcrossTiers covers the out-of-order case where
// a late arrival leaves the head's newest reading older than a flushed
// segment's: Latest must still answer with the globally newest reading,
// matching the in-memory store's behaviour.
func TestLatestPrefersNewestAcrossTiers(t *testing.T) {
	db := openTest(t, t.TempDir(), Options{})
	defer db.Close()
	db.InsertBatch("/x", []sensor.Reading{
		{Value: 1, Time: 100 * sec},
		{Value: 2, Time: 200 * sec},
	})
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	db.Insert("/x", sensor.Reading{Value: 3, Time: 150 * sec}) // late arrival
	r, ok := db.Latest("/x")
	if !ok || r.Time != 200*sec || r.Value != 2 {
		t.Fatalf("Latest = %+v, %v; want the segment's T=200s reading", r, ok)
	}
	// And once the late arrival is flushed into its own segment too.
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if r, ok := db.Latest("/x"); !ok || r.Time != 200*sec {
		t.Fatalf("Latest across segments = %+v, %v", r, ok)
	}
}

// TestQueriesNeverMissDataDuringFlush hammers Range/Latest/Count while
// flushes relocate readings between heads, the flushing stage and
// segments: a query must never observe fewer readings than have been
// fully inserted, and never duplicates.
func TestQueriesNeverMissDataDuringFlush(t *testing.T) {
	db := openTest(t, t.TempDir(), Options{})
	defer db.Close()
	const total = 2000
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < total; i++ {
			db.Insert("/x", sensor.Reading{Value: float64(i), Time: int64(i) * sec})
			if i%100 == 99 {
				if err := db.Flush(); err != nil {
					t.Errorf("Flush: %v", err)
					return
				}
			}
		}
	}()
	prev := 0
	for alive := true; alive; {
		select {
		case <-done:
			alive = false
		default:
		}
		rs := db.Range("/x", 0, total*sec, nil)
		if len(rs) < prev {
			t.Fatalf("Range shrank: %d -> %d readings (flush made data invisible)", prev, len(rs))
		}
		for i := 1; i < len(rs); i++ {
			if rs[i].Time == rs[i-1].Time {
				t.Fatalf("duplicate reading at T=%d (tier overlap)", rs[i].Time)
			}
		}
		if c := db.Count("/x"); c < prev {
			t.Fatalf("Count shrank below %d: %d", prev, c)
		}
		prev = len(rs)
	}
	if got := db.Range("/x", 0, total*sec, nil); len(got) != total {
		t.Fatalf("final Range = %d readings, want %d", len(got), total)
	}
}
