package tsdb

import (
	"github.com/dcdb/wintermute/internal/sensor"
	"github.com/dcdb/wintermute/internal/store"
)

// This file implements store.Aggregator for the tsdb engine: windowed
// aggregates and time-bucketed downsampling evaluated directly over the
// storage tiers — per-chunk pre-aggregates and streaming chunk decodes
// for segments, binary-searched streaming passes for the flushing stage
// and head blocks. Raw readings are never materialized into a slice;
// a fully-covered v2 chunk is answered from index metadata in O(1).

var _ store.Aggregator = (*DB)(nil)

// Aggregate implements store.Aggregator. Per segment chunk it merges
// the flush-time pre-aggregates when the window (clamped to the
// retention watermark) fully covers the chunk, and streams the decoder
// over boundary chunks; the flushing stage and head block are reduced
// in one pass each. Like Range, a corrupt chunk is skipped whole, and
// the epoch-retry loop guarantees a concurrent flush or prune can never
// make readings invisible (or visible twice) to the accumulator.
func (db *DB) Aggregate(topic sensor.Topic, t0, t1 int64) store.AggResult {
	if t1 < t0 {
		return store.AggResult{}
	}
	for {
		v := db.view(topic)
		lo := t0
		if lo < v.floor {
			lo = v.floor
		}
		var a store.AggResult
		for _, s := range v.segs {
			part, err := s.aggregate(topic, lo, t1)
			if err != nil {
				continue
			}
			a.Merge(part)
		}
		a.Merge(store.AggregateSorted(v.fl, lo, t1))
		if v.h != nil {
			a.Merge(v.h.aggregate(lo, t1))
		}
		if db.stable(v) {
			return a
		}
	}
}

// Downsample implements store.Aggregator. Every tier yields its buckets
// in Start order (chunks, the flushing stage and head blocks are all
// time-sorted), so the tiers are combined by pairwise ordered merges —
// no dense bucket array whose size scales with the window instead of
// the data. A chunk that the window fully covers and that falls into a
// single bucket is merged from its pre-aggregates without a decode.
func (db *DB) Downsample(topic sensor.Topic, t0, t1, step int64, dst []store.Bucket) []store.Bucket {
	if step <= 0 || t1 < t0 {
		return dst
	}
	var cur, tier, merged []store.Bucket
	for {
		v := db.view(topic)
		lo := t0
		if lo < v.floor {
			lo = v.floor
		}
		cur = cur[:0]
		for _, s := range v.segs {
			var err error
			tier, err = s.downsample(topic, t0, lo, t1, step, tier[:0])
			if err != nil {
				continue
			}
			cur, merged = mergeBuckets(cur, tier, merged[:0]), cur
		}
		tier = store.DownsampleSorted(v.fl, t0, lo, t1, step, tier[:0])
		cur, merged = mergeBuckets(cur, tier, merged[:0]), cur
		if v.h != nil {
			tier = v.h.downsample(t0, lo, t1, step, tier[:0])
			cur, merged = mergeBuckets(cur, tier, merged[:0]), cur
		}
		if db.stable(v) {
			return append(dst, cur...)
		}
	}
}

// aggregate reduces the series' readings within [t0, t1]; a fully
// covered v2 chunk is answered from the index pre-aggregates without
// touching the chunk bytes. A decode error discards the whole chunk's
// contribution, mirroring appendRange.
func (s *segment) aggregate(topic sensor.Topic, t0, t1 int64) (store.AggResult, error) {
	var a store.AggResult
	ss, ok := s.series[topic]
	if !ok || ss.maxT < t0 || ss.minT > t1 {
		return a, nil
	}
	if ss.hasAgg && ss.minT >= t0 && ss.maxT <= t1 {
		return store.AggResult{Count: int64(ss.count), Sum: ss.vsum, Min: ss.vmin, Max: ss.vmax}, nil
	}
	it, err := s.readChunk(ss)
	if err != nil {
		return store.AggResult{}, err
	}
	for it.Next() {
		r := it.At()
		if r.Time > t1 {
			break
		}
		if r.Time >= t0 {
			a.Observe(r.Value)
		}
	}
	if err := it.Err(); err != nil {
		return store.AggResult{}, err
	}
	return a, nil
}

// downsample appends the series' buckets within [lo, t1] to dst in
// Start order (buckets aligned to t0). A fully covered chunk that fits
// in one bucket is merged from its pre-aggregates; otherwise the chunk
// is decoded streaming, emitting buckets as the sorted timestamps cross
// bucket boundaries. A decode error discards the chunk whole.
func (s *segment) downsample(topic sensor.Topic, t0, lo, t1, step int64, dst []store.Bucket) ([]store.Bucket, error) {
	ss, ok := s.series[topic]
	if !ok || ss.maxT < lo || ss.minT > t1 {
		return dst, nil
	}
	if ss.hasAgg && ss.minT >= lo && ss.maxT <= t1 {
		if k := (ss.minT - t0) / step; k == (ss.maxT-t0)/step {
			return append(dst, store.Bucket{Start: t0 + k*step, AggResult: store.AggResult{
				Count: int64(ss.count), Sum: ss.vsum, Min: ss.vmin, Max: ss.vmax,
			}}), nil
		}
	}
	it, err := s.readChunk(ss)
	if err != nil {
		return dst, err
	}
	mark := len(dst)
	var a store.AggResult
	k := int64(-1)
	for it.Next() {
		r := it.At()
		if r.Time > t1 {
			break
		}
		if r.Time < lo {
			continue
		}
		if rk := (r.Time - t0) / step; rk != k {
			if a.Count > 0 {
				dst = append(dst, store.Bucket{Start: t0 + k*step, AggResult: a})
			}
			a, k = store.AggResult{}, rk
		}
		a.Observe(r.Value)
	}
	if err := it.Err(); err != nil {
		return dst[:mark], err
	}
	if a.Count > 0 {
		dst = append(dst, store.Bucket{Start: t0 + k*step, AggResult: a})
	}
	return dst, nil
}

// aggregate reduces the head block's readings within [t0, t1] in one
// pass under the read lock.
func (h *head) aggregate(t0, t1 int64) store.AggResult {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return store.AggregateSorted(h.data, t0, t1)
}

// downsample appends the head block's buckets within [lo, t1] to dst.
func (h *head) downsample(t0, lo, t1, step int64, dst []store.Bucket) []store.Bucket {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return store.DownsampleSorted(h.data, t0, lo, t1, step, dst)
}

// mergeBuckets merges two Start-ordered bucket lists into dst,
// combining buckets with equal Start. The tiers of one series overlap
// in time only around flush boundaries and out-of-order arrivals, so
// the merge is usually a near-concatenation.
func mergeBuckets(a, b, dst []store.Bucket) []store.Bucket {
	if len(a) == 0 {
		return append(dst, b...)
	}
	if len(b) == 0 {
		return append(dst, a...)
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Start < b[j].Start:
			dst = append(dst, a[i])
			i++
		case b[j].Start < a[i].Start:
			dst = append(dst, b[j])
			j++
		default:
			m := a[i]
			m.Merge(b[j].AggResult)
			dst = append(dst, m)
			i, j = i+1, j+1
		}
	}
	dst = append(dst, a[i:]...)
	return append(dst, b[j:]...)
}
