package rest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/dcdb/wintermute/internal/cache"
	"github.com/dcdb/wintermute/internal/core"
	"github.com/dcdb/wintermute/internal/navigator"
	"github.com/dcdb/wintermute/internal/resultcache"
	"github.com/dcdb/wintermute/internal/sensor"
	"github.com/dcdb/wintermute/internal/store"
	"github.com/dcdb/wintermute/internal/telemetry"
	"github.com/dcdb/wintermute/internal/tsdb"
)

// syncBuffer is a goroutine-safe log sink: the slow-query Record runs
// after the handler body, so the client can observe the response before
// the log line lands.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// newTelemetryServer builds a fully instrumented serving stack: tsdb
// backend, result cache, manager telemetry and the REST metrics, all
// registered into one private registry.
func newTelemetryServer(t *testing.T, opts Options) (*httptest.Server, *telemetry.Registry) {
	t.Helper()
	reg := telemetry.NewRegistry()
	opts.Metrics = reg

	nav := navigator.New()
	caches := cache.NewSet()
	db, err := tsdb.Open(t.TempDir(), tsdb.Options{FlushEvery: -1, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	for _, topic := range []sensor.Topic{"/r1/n0/power", "/r1/n1/power"} {
		if err := nav.AddSensor(topic); err != nil {
			t.Fatal(err)
		}
		rs := make([]sensor.Reading, 20)
		for i := range rs {
			rs[i] = sensor.Reading{Value: float64(i), Time: int64(i) * int64(time.Second)}
		}
		db.InsertBatch(topic, rs)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}

	rc := resultcache.New(64, 0)
	opts.ResultCache = rc
	for _, h := range rc.RegisterMetrics(reg) {
		t.Cleanup(h.Close)
	}
	for _, h := range store.RegisterBackendMetrics(reg, db) {
		t.Cleanup(h.Close)
	}

	qe := core.NewQueryEngine(nav, caches, db)
	m := core.NewManager(qe, core.NewCacheSink(caches, nav, 16, time.Second), core.Env{})
	m.EnableTelemetry(reg)
	t.Cleanup(func() { m.Close() })

	srv := httptest.NewServer(NewHandler(m, qe, opts))
	t.Cleanup(srv.Close)
	return srv, reg
}

func get(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

// TestMetricsEndpoint locks the coverage the issue demands: one scrape
// shows the broker-facing ingest engine (tsdb WAL/flush), the result
// cache, the storage backend, the scheduler and the REST tier itself.
func TestMetricsEndpoint(t *testing.T) {
	srv, _ := newTelemetryServer(t, Options{})

	// Generate traffic so the request series have non-zero children: a
	// cache miss, then a hit on the same window.
	q := srv.URL + "/query?sensor=/r1/%23&op=avg&start=0&end=" + fmt.Sprint(int64(19*time.Second))
	for i := 0; i < 2; i++ {
		if resp, _ := get(t, q); resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /query = %d", resp.StatusCode)
		}
	}

	resp, body := get(t, srv.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != telemetry.ContentType {
		t.Fatalf("Content-Type = %q", ct)
	}
	for _, want := range []string{
		`dcdb_http_requests_total{route="/query"} 2`,
		`dcdb_http_request_seconds_bucket{route="/query",le="+Inf"} 2`,
		`dcdb_http_responses_total{class="2xx"} 2`,
		"dcdb_http_inflight_requests 0",
		"dcdb_resultcache_hits_total 1",
		"dcdb_resultcache_misses_total 1",
		"dcdb_tsdb_wal_appends_total 2",
		"dcdb_tsdb_flushes_total 1",
		"dcdb_storage_readings 40",
		"dcdb_storage_segments 1",
		"dcdb_scheduler_threads",
		"# TYPE dcdb_tsdb_wal_cohort_records histogram",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
}

// TestTraceHeaderAndSlowQueryLog checks that every instrumented request
// returns an X-Trace-Id and that requests over threshold emit one JSON
// log line naming the route, op, sensor, cache verdict and fan-out
// under the same trace ID.
func TestTraceHeaderAndSlowQueryLog(t *testing.T) {
	var logBuf syncBuffer
	srv, _ := newTelemetryServer(t, Options{
		SlowQuery:    time.Nanosecond, // everything is slow
		SlowQueryOut: &logBuf,
	})

	q := srv.URL + "/query?sensor=/r1/%23&op=max&start=0&end=" + fmt.Sprint(int64(19*time.Second))
	resp, _ := get(t, q)
	trace := resp.Header.Get("X-Trace-Id")
	if !regexp.MustCompile(`^t-[0-9a-f]{8}$`).MatchString(trace) {
		t.Fatalf("X-Trace-Id = %q", trace)
	}

	// Record runs after the handler body; poll briefly for the line.
	deadline := time.Now().Add(2 * time.Second)
	var line string
	for time.Now().Before(deadline) {
		if s := logBuf.String(); strings.Contains(s, trace) {
			line = s
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if line == "" {
		t.Fatalf("no slow-query line for trace %s; log: %q", trace, logBuf.String())
	}
	var e telemetry.SlowQueryEntry
	if err := json.Unmarshal([]byte(strings.SplitN(line, "\n", 2)[0]), &e); err != nil {
		t.Fatalf("unmarshal log line: %v", err)
	}
	if e.Trace != trace || e.Route != "/query" || e.Status != http.StatusOK {
		t.Fatalf("entry = %+v", e)
	}
	if e.Op != "max" || e.Sensor != "/r1/#" || e.Cache != "miss" || e.Fanout != 2 {
		t.Fatalf("query annotations = %+v", e)
	}

	// A raw absolute range cannot be answered from chunk pre-aggregates:
	// its entry must attribute decoded chunks.
	resp, _ = get(t, srv.URL+"/query?sensor=/r1/n0/power&from=0&to="+fmt.Sprint(int64(19*time.Second)))
	rangeTrace := resp.Header.Get("X-Trace-Id")
	deadline = time.Now().Add(2 * time.Second)
	var rangeLine string
	for time.Now().Before(deadline) {
		for _, l := range strings.Split(logBuf.String(), "\n") {
			if strings.Contains(l, rangeTrace) {
				rangeLine = l
			}
		}
		if rangeLine != "" {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if rangeLine == "" {
		t.Fatalf("no slow-query line for trace %s", rangeTrace)
	}
	var re telemetry.SlowQueryEntry
	if err := json.Unmarshal([]byte(rangeLine), &re); err != nil {
		t.Fatal(err)
	}
	if re.Op != "range" || re.Sensor != "/r1/n0/power" || re.Cache != "miss" {
		t.Fatalf("range annotations = %+v", re)
	}
	if re.ChunksDecoded == 0 {
		t.Fatalf("expected chunk decodes attributed to a segment-backed range query: %+v", re)
	}
}

// TestStatusStorageConsistentWithMetrics re-sources /status and
// /storage from the registry and cross-checks them against a /metrics
// scrape: the numbers come from the same snapshot machinery, so they
// must agree.
func TestStatusStorageConsistentWithMetrics(t *testing.T) {
	srv, reg := newTelemetryServer(t, Options{})

	var status struct {
		Scheduler core.SchedulerStats `json:"scheduler"`
	}
	resp, body := get(t, srv.URL+"/status")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /status = %d", resp.StatusCode)
	}
	if err := json.Unmarshal([]byte(body), &status); err != nil {
		t.Fatal(err)
	}
	threads, ok := reg.Value("dcdb_scheduler_threads")
	if !ok {
		t.Fatal("scheduler series not registered")
	}
	if status.Scheduler.Threads != int(threads) {
		t.Fatalf("/status threads %d != metrics %v", status.Scheduler.Threads, threads)
	}

	var st store.BackendStats
	resp, body = get(t, srv.URL+"/storage")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /storage = %d", resp.StatusCode)
	}
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if st.Kind != "tsdb" || st.TotalReadings != 40 {
		t.Fatalf("/storage = %+v", st)
	}
	readings, ok := reg.Value("dcdb_storage_readings")
	if !ok || int(readings) != st.TotalReadings {
		t.Fatalf("/storage readings %d != metrics %v (ok=%v)", st.TotalReadings, readings, ok)
	}
	cached, ok := store.LastBackendStats(reg)
	if !ok || cached != st {
		t.Fatalf("/storage did not serve the snapshot-cached stats: %+v vs %+v", st, cached)
	}
}

// TestThrottledCounter counts limiter rejections into
// dcdb_http_throttled_total.
func TestThrottledCounter(t *testing.T) {
	srv, reg := newTelemetryServer(t, Options{RateLimit: 0.001, RateBurst: 1})
	codes := []int{}
	for i := 0; i < 3; i++ {
		resp, _ := get(t, srv.URL+"/sensors")
		codes = append(codes, resp.StatusCode)
	}
	if codes[0] != http.StatusOK || codes[1] != http.StatusTooManyRequests {
		t.Fatalf("codes = %v", codes)
	}
	v, ok := reg.Value("dcdb_http_throttled_total")
	if !ok || v != 2 {
		t.Fatalf("throttled = %v (ok=%v), want 2", v, ok)
	}
}

// TestZeroOptionsUninstrumented pins the compatibility contract: with
// no registry and no slow-query threshold the handler tree has no
// /metrics route and adds no trace header.
func TestZeroOptionsUninstrumented(t *testing.T) {
	srv, _ := newTestServer(t)
	resp, _ := get(t, srv.URL+"/metrics")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /metrics on zero-options handler = %d", resp.StatusCode)
	}
	resp, _ = get(t, srv.URL+"/status")
	if h := resp.Header.Get("X-Trace-Id"); h != "" {
		t.Fatalf("unexpected X-Trace-Id %q on un-instrumented handler", h)
	}
}

// TestDebugServer boots the diagnostics endpoint and checks pprof and
// the metrics rendition answer on it.
func TestDebugServer(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("dcdb_test_total", "Test counter.").Inc()
	dbg, err := ServeDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dbg.Close() })

	resp, body := get(t, "http://"+dbg.Addr()+"/debug/pprof/")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index: status %d", resp.StatusCode)
	}
	resp, body = get(t, "http://"+dbg.Addr()+"/metrics")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "dcdb_test_total 1") {
		t.Fatalf("debug /metrics: status %d body %q", resp.StatusCode, body)
	}
}
