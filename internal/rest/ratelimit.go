package rest

import (
	"math"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"github.com/dcdb/wintermute/internal/telemetry"
)

// limiter is a per-client token bucket: each client address accrues
// rate tokens per second up to burst, and every request spends one.
// Implemented by hand — the serving tier stays dependency-free — with
// lazy refill (tokens are computed from the elapsed time on each
// request, no background goroutine).
type limiter struct {
	rate  float64 // tokens per second
	burst float64 // bucket depth

	mu      sync.Mutex
	clients map[string]*tokenBucket
}

// tokenBucket is one client's refill state.
type tokenBucket struct {
	tokens float64
	last   time.Time
}

// maxLimiterClients bounds the client map; past it, idle full buckets
// are discarded (they refill instantly on return, so dropping them is
// lossless for well-behaved clients).
const maxLimiterClients = 4096

func newLimiter(rate float64, burst int) *limiter {
	b := float64(burst)
	if b <= 0 {
		b = math.Max(1, 2*rate)
	}
	return &limiter{rate: rate, burst: b, clients: make(map[string]*tokenBucket)}
}

// allow spends one token for client, reporting whether the request may
// proceed and, if not, how long until a token is available.
func (l *limiter) allow(client string, now time.Time) (bool, time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	tb := l.clients[client]
	if tb == nil {
		if len(l.clients) >= maxLimiterClients {
			l.evictIdle(now)
		}
		tb = &tokenBucket{tokens: l.burst, last: now}
		l.clients[client] = tb
	}
	if dt := now.Sub(tb.last).Seconds(); dt > 0 {
		tb.tokens = math.Min(l.burst, tb.tokens+dt*l.rate)
		tb.last = now
	}
	if tb.tokens >= 1 {
		tb.tokens--
		return true, 0
	}
	wait := time.Duration((1 - tb.tokens) / l.rate * float64(time.Second))
	return false, wait
}

// evictIdle drops buckets that have fully refilled (idle for at least
// burst/rate seconds). Callers must hold l.mu.
func (l *limiter) evictIdle(now time.Time) {
	idle := time.Duration(l.burst / l.rate * float64(time.Second))
	for c, tb := range l.clients {
		if now.Sub(tb.last) >= idle {
			delete(l.clients, c)
		}
	}
}

// clientKey extracts the per-client limiter key: the remote host
// without the ephemeral port, so one dashboard's connections share a
// budget.
func clientKey(r *http.Request) string {
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// withRateLimit wraps next with the token-bucket gate: over-budget
// requests receive 429 with a Retry-After hint instead of queueing
// behind the query engine. throttled counts the rejections.
func withRateLimit(l *limiter, next http.Handler, throttled *telemetry.Counter) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ok, wait := l.allow(clientKey(r), time.Now())
		if !ok {
			throttled.Inc()
			secs := int(math.Ceil(wait.Seconds()))
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(secs))
			writeJSON(w, http.StatusTooManyRequests,
				map[string]string{"error": "rate limit exceeded"})
			return
		}
		next.ServeHTTP(w, r)
	})
}
