package rest

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/dcdb/wintermute/internal/cache"
	"github.com/dcdb/wintermute/internal/core"
	"github.com/dcdb/wintermute/internal/core/units"
	"github.com/dcdb/wintermute/internal/navigator"
	"github.com/dcdb/wintermute/internal/sensor"
	"github.com/dcdb/wintermute/internal/store"
	"github.com/dcdb/wintermute/internal/tsdb"
)

// doubler is a trivial operator: output = 2 * latest input.
type doubler struct{ *core.Base }

func (d *doubler) Compute(qe *core.QueryEngine, u *units.Unit, now time.Time) ([]core.Output, error) {
	r, ok := qe.Latest(u.Inputs[0])
	if !ok {
		return nil, fmt.Errorf("no data for %s", u.Inputs[0])
	}
	return []core.Output{{Topic: u.Outputs[0], Reading: sensor.At(2*r.Value, now)}}, nil
}

func init() {
	core.RegisterPlugin("doubler", func(cfg json.RawMessage, qe *core.QueryEngine, env core.Env) ([]core.Operator, error) {
		var oc core.OperatorConfig
		if err := json.Unmarshal(cfg, &oc); err != nil {
			return nil, err
		}
		base, err := oc.Build("doubler", qe.Navigator())
		if err != nil {
			return nil, err
		}
		return []core.Operator{&doubler{Base: base}}, nil
	})
}

func newTestServer(t *testing.T) (*httptest.Server, *core.Manager) {
	t.Helper()
	nav := navigator.New()
	caches := cache.NewSet()
	for i := 0; i < 3; i++ {
		topic := sensor.Topic(fmt.Sprintf("/r1/n%d/power", i))
		if err := nav.AddSensor(topic); err != nil {
			t.Fatal(err)
		}
		c := caches.GetOrCreate(topic, 16, time.Second)
		for k := 0; k < 8; k++ {
			c.Store(sensor.Reading{Value: float64(100 + k), Time: int64(k) * int64(time.Second)})
		}
	}
	qe := core.NewQueryEngine(nav, caches, nil)
	sink := core.NewCacheSink(caches, nav, 16, time.Second)
	m := core.NewManager(qe, sink, core.Env{})
	raw, _ := json.Marshal(core.OperatorConfig{
		Name:   "dbl",
		Mode:   "ondemand",
		Inputs: []string{"power"}, Outputs: []string{"<bottomup>power2x"},
	})
	if err := m.LoadPlugin("doubler", raw); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(m, qe))
	t.Cleanup(srv.Close)
	return srv, m
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func postJSON(t *testing.T, url, body string, out any) int {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestPluginsEndpoint(t *testing.T) {
	srv, _ := newTestServer(t)
	var got struct {
		Plugins []string `json:"plugins"`
	}
	if code := getJSON(t, srv.URL+"/plugins", &got); code != 200 {
		t.Fatalf("status = %d", code)
	}
	found := false
	for _, p := range got.Plugins {
		if p == "doubler" {
			found = true
		}
	}
	if !found {
		t.Errorf("doubler not in %v", got.Plugins)
	}
}

func TestOperatorsAndUnits(t *testing.T) {
	srv, _ := newTestServer(t)
	var ops []core.OperatorStatus
	if code := getJSON(t, srv.URL+"/operators", &ops); code != 200 {
		t.Fatalf("status = %d", code)
	}
	if len(ops) != 1 || ops[0].Name != "dbl" || ops[0].Units != 3 {
		t.Fatalf("operators = %+v", ops)
	}
	var us []struct {
		Name    string   `json:"name"`
		Inputs  []string `json:"inputs"`
		Outputs []string `json:"outputs"`
	}
	if code := getJSON(t, srv.URL+"/units?operator=dbl", &us); code != 200 {
		t.Fatal("units failed")
	}
	if len(us) != 3 || us[0].Name != "/r1/n0/" {
		t.Fatalf("units = %+v", us)
	}
	if code := getJSON(t, srv.URL+"/units?operator=ghost", nil); code != 404 {
		t.Errorf("unknown operator status = %d", code)
	}
}

func TestStatusEndpoint(t *testing.T) {
	srv, m := newTestServer(t)
	m.SetThreads(3)
	var got struct {
		Scheduler core.SchedulerStats   `json:"scheduler"`
		Operators []core.OperatorStatus `json:"operators"`
	}
	if code := getJSON(t, srv.URL+"/status", &got); code != 200 {
		t.Fatalf("status = %d", code)
	}
	if got.Scheduler.Threads != 3 {
		t.Errorf("scheduler threads = %d, want 3", got.Scheduler.Threads)
	}
	if len(got.Operators) != 1 || got.Operators[0].Name != "dbl" {
		t.Fatalf("operators = %+v", got.Operators)
	}
}

func TestSensorsEndpoint(t *testing.T) {
	srv, _ := newTestServer(t)
	var got struct {
		Sensors []string `json:"sensors"`
		Count   int      `json:"count"`
	}
	if code := getJSON(t, srv.URL+"/sensors", &got); code != 200 || got.Count != 3 {
		t.Fatalf("sensors = %+v", got)
	}
	if code := getJSON(t, srv.URL+"/sensors?prefix=/r1/n1/", &got); code != 200 || got.Count != 1 {
		t.Fatalf("prefixed sensors = %+v", got)
	}
}

func TestAverageEndpoint(t *testing.T) {
	srv, _ := newTestServer(t)
	var got struct {
		Average float64 `json:"average"`
	}
	code := getJSON(t, srv.URL+"/average?sensor=/r1/n0/power&window=3s", &got)
	if code != 200 {
		t.Fatalf("status = %d", code)
	}
	want := (104.0 + 105 + 106 + 107) / 4
	if got.Average != want {
		t.Fatalf("average = %v, want %v", got.Average, want)
	}
	if code := getJSON(t, srv.URL+"/average?sensor=/none&window=3s", nil); code != 404 {
		t.Errorf("missing sensor status = %d", code)
	}
	if code := getJSON(t, srv.URL+"/average?sensor=/r1/n0/power&window=banana", nil); code != 400 {
		t.Errorf("bad window status = %d", code)
	}
}

func TestQueryEndpoint(t *testing.T) {
	srv, _ := newTestServer(t)
	var got struct {
		Count    int `json:"count"`
		Readings []struct {
			Value float64 `json:"Value"`
		} `json:"readings"`
	}
	// Latest only.
	if code := getJSON(t, srv.URL+"/query?sensor=/r1/n0/power", &got); code != 200 || got.Count != 1 {
		t.Fatalf("latest query = %+v", got)
	}
	// Relative.
	if code := getJSON(t, srv.URL+"/query?sensor=/r1/n0/power&lookback=2s", &got); code != 200 || got.Count != 3 {
		t.Fatalf("relative query = %+v", got)
	}
	// Absolute.
	url := fmt.Sprintf("%s/query?sensor=/r1/n0/power&from=%d&to=%d",
		srv.URL, int64(time.Second), 3*int64(time.Second))
	if code := getJSON(t, url, &got); code != 200 || got.Count != 3 {
		t.Fatalf("absolute query = %+v", got)
	}
	if code := getJSON(t, srv.URL+"/query?sensor=/r1/n0/power&from=abc&to=1", nil); code != 400 {
		t.Error("bad from/to should 400")
	}
}

func TestComputeEndpoint(t *testing.T) {
	srv, _ := newTestServer(t)
	var outs []struct {
		Topic string  `json:"topic"`
		Value float64 `json:"value"`
	}
	code := postJSON(t, srv.URL+"/compute?operator=dbl&unit=/r1/n1/", "", &outs)
	if code != 200 {
		t.Fatalf("status = %d", code)
	}
	if len(outs) != 1 || outs[0].Topic != "/r1/n1/power2x" || outs[0].Value != 214 {
		t.Fatalf("outs = %+v", outs)
	}
	// All units.
	code = postJSON(t, srv.URL+"/compute?operator=dbl", "", &outs)
	if code != 200 || len(outs) != 3 {
		t.Fatalf("all-units compute = %d outputs, status %d", len(outs), code)
	}
	if code := postJSON(t, srv.URL+"/compute?operator=ghost", "", nil); code != 404 {
		t.Errorf("unknown operator compute = %d", code)
	}
}

func TestStartStopEndpoints(t *testing.T) {
	srv, _ := newTestServer(t)
	if code := postJSON(t, srv.URL+"/operators/start?operator=dbl", "", nil); code != 200 {
		t.Errorf("start status = %d", code)
	}
	if code := postJSON(t, srv.URL+"/operators/stop?operator=dbl", "", nil); code != 200 {
		t.Errorf("stop status = %d", code)
	}
	if code := postJSON(t, srv.URL+"/operators/start?operator=ghost", "", nil); code != 404 {
		t.Errorf("unknown start status = %d", code)
	}
}

func TestLoadUnloadEndpoints(t *testing.T) {
	srv, m := newTestServer(t)
	cfg, _ := json.Marshal(core.OperatorConfig{
		Name: "dbl2", Mode: "ondemand",
		Inputs: []string{"power"}, Outputs: []string{"<bottomup>power4x"},
	})
	if code := postJSON(t, srv.URL+"/plugins/load?plugin=doubler", string(cfg), nil); code != 200 {
		t.Fatalf("load status = %d", code)
	}
	if _, ok := m.Operator("dbl2"); !ok {
		t.Fatal("dbl2 not loaded")
	}
	if code := postJSON(t, srv.URL+"/plugins/load?plugin=ghost", "{}", nil); code != 400 {
		t.Errorf("unknown plugin load = %d", code)
	}
	var got struct {
		Operators int `json:"operators"`
	}
	if code := postJSON(t, srv.URL+"/plugins/unload?plugin=doubler", "", &got); code != 200 {
		t.Fatal("unload failed")
	}
	if got.Operators != 2 {
		t.Errorf("unloaded %d operators, want 2", got.Operators)
	}
}

func TestServeAndClose(t *testing.T) {
	nav := navigator.New()
	caches := cache.NewSet()
	qe := core.NewQueryEngine(nav, caches, nil)
	m := core.NewManager(qe, core.SinkFunc(func(sensor.Topic, sensor.Reading) {}), core.Env{})
	s, err := Serve("127.0.0.1:0", m, qe)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + s.Addr() + "/plugins")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestStorageEndpoint(t *testing.T) {
	// Cache-only host (no backend): kind "none".
	srv, _ := newTestServer(t)
	var none store.BackendStats
	if code := getJSON(t, srv.URL+"/storage", &none); code != http.StatusOK {
		t.Fatalf("GET /storage = %d", code)
	}
	if none.Kind != "none" {
		t.Fatalf("cache-only kind = %q", none.Kind)
	}

	// In-memory backend.
	nav := navigator.New()
	caches := cache.NewSet()
	st := store.New(0)
	st.Insert("/a", sensor.Reading{Value: 1, Time: 1})
	st.Insert("/a", sensor.Reading{Value: 2, Time: 2})
	st.Insert("/b", sensor.Reading{Value: 3, Time: 3})
	qe := core.NewQueryEngine(nav, caches, st)
	m := core.NewManager(qe, core.NewCacheSink(caches, nav, 16, time.Second), core.Env{})
	memSrv := httptest.NewServer(NewHandler(m, qe))
	t.Cleanup(memSrv.Close)
	var mem store.BackendStats
	if code := getJSON(t, memSrv.URL+"/storage", &mem); code != http.StatusOK {
		t.Fatalf("GET /storage = %d", code)
	}
	if mem.Kind != "memory" || mem.Topics != 2 || mem.TotalReadings != 3 {
		t.Fatalf("memory stats = %+v", mem)
	}

	// Persistent backend: disk and WAL/segment accounting present.
	db, err := tsdb.Open(t.TempDir(), tsdb.Options{FlushEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	for i := 0; i < 50; i++ {
		db.Insert("/a", sensor.Reading{Value: float64(i), Time: int64(i)})
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	db.Insert("/b", sensor.Reading{Value: 1, Time: 100})
	qe2 := core.NewQueryEngine(nav, caches, db)
	m2 := core.NewManager(qe2, core.NewCacheSink(caches, nav, 16, time.Second), core.Env{})
	dbSrv := httptest.NewServer(NewHandler(m2, qe2))
	t.Cleanup(dbSrv.Close)
	var ts store.BackendStats
	if code := getJSON(t, dbSrv.URL+"/storage", &ts); code != http.StatusOK {
		t.Fatalf("GET /storage = %d", code)
	}
	if ts.Kind != "tsdb" || ts.Topics != 2 || ts.TotalReadings != 51 {
		t.Fatalf("tsdb stats = %+v", ts)
	}
	if ts.Segments != 1 || ts.DiskBytes <= 0 || ts.WALFiles == 0 || ts.HeadReadings != 1 {
		t.Fatalf("tsdb accounting = %+v", ts)
	}
}

// newAggTestServer serves a query engine whose only data source is a
// persistent tsdb backend (no caches cover the sensors), so /query
// aggregation exercises the full streaming path down to the segment
// pre-aggregates.
func newAggTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	nav := navigator.New()
	caches := cache.NewSet()
	db, err := tsdb.Open(t.TempDir(), tsdb.Options{FlushEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	fill := func(topic sensor.Topic, base float64, slope float64) {
		if err := nav.AddSensor(topic); err != nil {
			t.Fatal(err)
		}
		rs := make([]sensor.Reading, 10)
		for i := range rs {
			rs[i] = sensor.Reading{Value: base + slope*float64(i), Time: int64(i) * int64(time.Second)}
		}
		db.InsertBatch(topic, rs)
	}
	fill("/r1/n0/power", 10, 1)
	fill("/r1/n1/power", 20, 2)
	fill("/r2/n0/power", 5, 0)
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	qe := core.NewQueryEngine(nav, caches, db)
	m := core.NewManager(qe, core.NewCacheSink(caches, nav, 16, time.Second), core.Env{})
	t.Cleanup(func() { m.Close() })
	srv := httptest.NewServer(NewHandler(m, qe))
	t.Cleanup(srv.Close)
	return srv
}

// TestQueryAggregateGolden locks the /query aggregation response shape:
// exact bodies for the wildcard fan-out, the bucketed downsampling and
// the relative-window forms.
func TestQueryAggregateGolden(t *testing.T) {
	srv := newAggTestServer(t)
	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		if _, err := io.Copy(&sb, resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, sb.String()
	}
	for _, tc := range []struct {
		name, path, want string
	}{
		{
			name: "wildcard_avg",
			path: "/query?op=avg&sensor=/r1/%23&start=0&end=9000000000",
			want: `{"op":"avg","start":0,"end":9000000000,"sensors":[{"sensor":"/r1/n0/power","count":10,"value":14.5},{"sensor":"/r1/n1/power","count":10,"value":29}],"combined":{"sensor":"","count":20,"value":21.75}}` + "\n",
		},
		{
			name: "downsample_max",
			path: "/query?op=max&sensor=/r1/n0/power&start=0&end=9000000000&step=5s",
			want: `{"op":"max","start":0,"end":9000000000,"step":"5s","sensors":[{"sensor":"/r1/n0/power","count":10,"buckets":[{"start":0,"count":5,"value":14},{"start":5000000000,"count":5,"value":19}]}],"combined":{"sensor":"","count":10,"value":19}}` + "\n",
		},
		{
			name: "lookback_count",
			path: "/query?op=count&sensor=/r1/n0/power&lookback=5s",
			want: `{"op":"count","lookback":"5s","sensors":[{"sensor":"/r1/n0/power","count":6,"value":6}],"combined":{"sensor":"","count":6,"value":6}}` + "\n",
		},
		{
			name: "sum_from_to_aliases",
			path: "/query?op=sum&sensor=/r2/n0/power&from=0&to=2000000000",
			want: `{"op":"sum","start":0,"end":2000000000,"sensors":[{"sensor":"/r2/n0/power","count":3,"value":15}],"combined":{"sensor":"","count":3,"value":15}}` + "\n",
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			code, body := get(tc.path)
			if code != 200 {
				t.Fatalf("status = %d, body %s", code, body)
			}
			if body != tc.want {
				t.Fatalf("GET %s\n got: %swant: %s", tc.path, body, tc.want)
			}
		})
	}
}

// TestQueryAggregateErrors covers the request-validation surface of the
// aggregation form.
func TestQueryAggregateErrors(t *testing.T) {
	srv := newAggTestServer(t)
	for _, tc := range []struct{ name, path string }{
		{"unknown_op", "/query?op=median&sensor=/r1/n0/power&start=0&end=1"},
		{"missing_window", "/query?op=avg&sensor=/r1/n0/power"},
		{"step_with_lookback", "/query?op=avg&sensor=/r1/n0/power&lookback=10s&step=1s"},
		{"no_wildcard_match", "/query?op=avg&sensor=/r9/%23&start=0&end=1"},
		{"missing_sensor", "/query?op=avg&start=0&end=1"},
		{"too_many_buckets", "/query?op=avg&sensor=/r1/n0/power&start=0&end=9000000000000&step=1ms"},
		{"negative_step", "/query?op=avg&sensor=/r1/n0/power&start=0&end=1&step=-5s"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if code := getJSON(t, srv.URL+tc.path, nil); code != http.StatusBadRequest {
				t.Fatalf("GET %s: status = %d, want 400", tc.path, code)
			}
		})
	}
}
