package rest

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/dcdb/wintermute/internal/cache"
	"github.com/dcdb/wintermute/internal/core"
	"github.com/dcdb/wintermute/internal/navigator"
	"github.com/dcdb/wintermute/internal/resultcache"
	"github.com/dcdb/wintermute/internal/sensor"
	"github.com/dcdb/wintermute/internal/store"
	"github.com/dcdb/wintermute/internal/tsdb"
)

// cachedStack is an in-memory serving stack with the result cache wired
// write-through: readings pushed through sink reach the store AND feed
// the cache's invalidation counters, exactly as in a Collect Agent.
type cachedStack struct {
	cached *httptest.Server // handler with the result cache
	plain  *httptest.Server // same engine, no cache: ground truth
	sink   *core.CacheSink
	rc     *resultcache.Cache
}

func newCachedStack(t *testing.T, ttl time.Duration) *cachedStack {
	t.Helper()
	nav := navigator.New()
	caches := cache.NewSet()
	st := store.New(0)
	rc := resultcache.New(256, ttl)
	sink := core.NewCacheSink(caches, nav, 16, time.Second)
	sink.Store = st
	sink.Results = rc
	qe := core.NewQueryEngine(nav, caches, st)
	m := core.NewManager(qe, sink, core.Env{})
	t.Cleanup(func() { m.Close() })
	cached := httptest.NewServer(NewHandler(m, qe, Options{ResultCache: rc}))
	t.Cleanup(cached.Close)
	plain := httptest.NewServer(NewHandler(m, qe))
	t.Cleanup(plain.Close)
	return &cachedStack{cached: cached, plain: plain, sink: sink, rc: rc}
}

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	if _, err := io.Copy(&sb, resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, sb.String()
}

// TestQueryCacheCoherence is the cached ≡ uncached property: with TTL
// zero, after every write batch a cached response must be byte-identical
// to the same request served without the cache — across plain
// aggregates, downsamples and raw ranges — while the hit counter proves
// the cached path actually served from memory between writes.
func TestQueryCacheCoherence(t *testing.T) {
	s := newCachedStack(t, 0)
	paths := []string{
		"/query?op=avg&sensor=/a&start=0&end=3600000000000",
		"/query?op=max&sensor=/a&start=0&end=3600000000000&step=1s",
		"/query?sensor=/a&from=0&to=3600000000000",
	}
	next := int64(0)
	for round := 0; round < 5; round++ {
		rs := make([]sensor.Reading, 7)
		for i := range rs {
			rs[i] = sensor.Reading{Value: float64(next), Time: next * int64(time.Second)}
			next++
		}
		s.sink.PushSeries("/a", rs)
		for _, p := range paths {
			_, want := getBody(t, s.plain.URL+p)
			if _, got := getBody(t, s.cached.URL+p); got != want {
				t.Fatalf("round %d %s: cached fill diverged\n got: %swant: %s", round, p, got, want)
			}
			// No writes since: must be a hit AND still byte-identical.
			if _, got := getBody(t, s.cached.URL+p); got != want {
				t.Fatalf("round %d %s: cached hit diverged\n got: %swant: %s", round, p, got, want)
			}
		}
	}
	st := s.rc.Stats()
	if st.Hits == 0 {
		t.Fatalf("no cache hits recorded: %+v", st)
	}
	if st.Stale != 0 {
		t.Fatalf("strict cache served stale: %+v", st)
	}
}

// TestQueryCacheOpSharing locks the op-independent key: one cached
// window must answer every aggregation operator without extra fills.
func TestQueryCacheOpSharing(t *testing.T) {
	s := newCachedStack(t, 0)
	rs := make([]sensor.Reading, 10)
	for i := range rs {
		rs[i] = sensor.Reading{Value: float64(i), Time: int64(i) * int64(time.Second)}
	}
	s.sink.PushSeries("/a", rs)
	for _, op := range []string{"avg", "min", "max", "sum", "count"} {
		p := "/query?op=" + op + "&sensor=/a&start=0&end=9000000000"
		_, want := getBody(t, s.plain.URL+p)
		if _, got := getBody(t, s.cached.URL+p); got != want {
			t.Fatalf("op %s: cached diverged\n got: %swant: %s", op, got, want)
		}
	}
	st := s.rc.Stats()
	// avg fills; min/max/sum/count all hit the same entry.
	if st.Hits < 4 {
		t.Fatalf("ops did not share one entry: %+v", st)
	}
}

// TestQueryCacheFrontierShortcut exercises the in-order ingest
// shortcut: writes strictly beyond a window's end keep its entry valid,
// while one out-of-order write into the window invalidates it.
func TestQueryCacheFrontierShortcut(t *testing.T) {
	s := newCachedStack(t, 0)
	rs := make([]sensor.Reading, 10)
	for i := range rs {
		rs[i] = sensor.Reading{Value: 1, Time: int64(i) * int64(time.Second)}
	}
	s.sink.PushSeries("/a", rs)

	p := "/query?op=count&sensor=/a&start=0&end=9000000000"
	_, filled := getBody(t, s.cached.URL+p) // fill at frontier == window end
	before := s.rc.Stats()

	// In-order ingest past the window: entry must survive as a hit.
	// (Enough readings that the sensor cache rolls past the window start,
	// so any recompute below goes to the store.)
	for i := 20; i < 36; i++ {
		s.sink.Push("/a", sensor.Reading{Value: 1, Time: int64(i) * int64(time.Second)})
	}
	if _, got := getBody(t, s.cached.URL+p); got != filled {
		t.Fatalf("in-order write beyond window changed response:\n got: %swas: %s", got, filled)
	}
	if st := s.rc.Stats(); st.Hits != before.Hits+1 {
		t.Fatalf("beyond-window write did not keep entry hot: before %+v after %+v", before, st)
	}

	// Out-of-order write INSIDE the window: must recompute.
	s.sink.Push("/a", sensor.Reading{Value: 1, Time: 4500 * int64(time.Millisecond)})
	_, got := getBody(t, s.cached.URL+p)
	if got == filled {
		t.Fatalf("out-of-order write not reflected: %s", got)
	}
	var resp struct {
		Combined struct {
			Count int64 `json:"count"`
		} `json:"combined"`
	}
	if err := json.Unmarshal([]byte(got), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Combined.Count != 11 {
		t.Fatalf("combined count = %d, want 11", resp.Combined.Count)
	}
}

// TestQueryCacheStaleness pins the bounded-staleness knob from both
// sides: within the TTL a version-mismatched entry may serve the old
// answer; past the TTL it must not.
func TestQueryCacheStaleness(t *testing.T) {
	s := newCachedStack(t, 300*time.Millisecond)
	rs := make([]sensor.Reading, 10)
	for i := range rs {
		rs[i] = sensor.Reading{Value: 1, Time: int64(i) * int64(time.Second)}
	}
	s.sink.PushSeries("/a", rs)

	p := "/query?op=count&sensor=/a&start=0&end=20000000000"
	_, filled := getBody(t, s.cached.URL+p)

	// A write into the window, then an immediate read: stale service is
	// allowed, but only the old or the new answer — never junk.
	s.sink.Push("/a", sensor.Reading{Value: 1, Time: 10 * int64(time.Second)})
	_, within := getBody(t, s.cached.URL+p)
	if within != filled {
		t.Fatalf("within-TTL read is neither the stale nor original body: %s", within)
	}
	if st := s.rc.Stats(); st.Stale == 0 {
		t.Fatalf("expected a stale-served read: %+v", st)
	}

	// Past the TTL the bound kicks in: the new reading must appear.
	time.Sleep(600 * time.Millisecond)
	_, after := getBody(t, s.cached.URL+p)
	var resp struct {
		Combined struct {
			Count int64 `json:"count"`
		} `json:"combined"`
	}
	if err := json.Unmarshal([]byte(after), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Combined.Count != 11 {
		t.Fatalf("post-TTL count = %d, want 11 (staleness bound violated)", resp.Combined.Count)
	}
}

// TestQueryCacheConcurrentIngest races continuous in-order ingest and a
// background full-invalidation feed against cached reads of a fixed
// window. With TTL zero every served answer must reflect a prefix of
// the writes: the count for the window may only grow.
func TestQueryCacheConcurrentIngest(t *testing.T) {
	s := newCachedStack(t, 0)
	const total = 1500
	windowEnd := int64(total/2) * int64(time.Millisecond)
	p := fmt.Sprintf("/query?op=count&sensor=/a&start=0&end=%d", windowEnd)

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < total; i++ {
			s.sink.Push("/a", sensor.Reading{Value: 1, Time: int64(i) * int64(time.Millisecond)})
			if i%200 == 0 {
				s.rc.NotePrune() // full invalidation is always safe
			}
		}
		close(done)
	}()

	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := int64(-1)
			for {
				select {
				case <-done:
					return
				default:
				}
				_, body := getBody(t, s.cached.URL+p)
				var resp struct {
					Combined struct {
						Count int64 `json:"count"`
					} `json:"combined"`
				}
				if err := json.Unmarshal([]byte(body), &resp); err != nil {
					t.Errorf("bad body: %v", err)
					return
				}
				if resp.Combined.Count < last {
					t.Errorf("served stale data under strict TTL: count %d after %d",
						resp.Combined.Count, last)
					return
				}
				last = resp.Combined.Count
			}
		}()
	}
	wg.Wait()

	// Quiescent: cached must equal ground truth exactly.
	_, want := getBody(t, s.plain.URL+p)
	if _, got := getBody(t, s.cached.URL+p); got != want {
		t.Fatalf("post-ingest divergence\n got: %swant: %s", got, want)
	}
}

// TestWildcardPruneGhosts is the ghost-topic regression: after
// retention removes every reading of a topic, '#' expansion — now
// backed by the store's topic index rather than the static navigator
// tree — must stop naming it.
func TestWildcardPruneGhosts(t *testing.T) {
	nav := navigator.New()
	caches := cache.NewSet()
	db, err := tsdb.Open(t.TempDir(), tsdb.Options{FlushEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	old := func(topic sensor.Topic) {
		if err := nav.AddSensor(topic); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			db.Insert(topic, sensor.Reading{Value: 1, Time: int64(i) * int64(time.Second)})
		}
	}
	old("/r1/n0/power")
	old("/r1/n1/power")
	if err := nav.AddSensor("/r2/n0/power"); err != nil {
		t.Fatal(err)
	}
	recent := int64(time.Hour)
	db.Insert("/r2/n0/power", sensor.Reading{Value: 7, Time: recent})
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if n := db.Prune(30 * int64(time.Minute)); n == 0 {
		t.Fatal("prune removed nothing")
	}

	qe := core.NewQueryEngine(nav, caches, db)
	m := core.NewManager(qe, core.NewCacheSink(caches, nav, 16, time.Second), core.Env{})
	t.Cleanup(func() { m.Close() })
	srv := httptest.NewServer(NewHandler(m, qe))
	t.Cleanup(srv.Close)

	var got struct {
		Sensors []struct {
			Sensor string `json:"sensor"`
		} `json:"sensors"`
	}
	if code := getJSON(t, srv.URL+fmt.Sprintf("/query?op=count&sensor=/%%23&start=0&end=%d", 2*recent), &got); code != 200 {
		t.Fatalf("status = %d", code)
	}
	if len(got.Sensors) != 1 || got.Sensors[0].Sensor != "/r2/n0/power" {
		t.Fatalf("wildcard expansion after prune = %+v, want only /r2/n0/power", got.Sensors)
	}
	// The fully-pruned subtree must 400 like any unmatched wildcard.
	if code := getJSON(t, srv.URL+"/query?op=count&sensor=/r1/%23&start=0&end=1", nil); code != 400 {
		t.Fatalf("pruned subtree wildcard status = %d, want 400", code)
	}
}

// TestRateLimit covers the serving-tier throttle: a client exhausting
// its burst gets 429 with a Retry-After hint and is admitted again once
// the bucket refills.
func TestRateLimit(t *testing.T) {
	nav := navigator.New()
	caches := cache.NewSet()
	qe := core.NewQueryEngine(nav, caches, nil)
	m := core.NewManager(qe, core.SinkFunc(func(sensor.Topic, sensor.Reading) {}), core.Env{})
	t.Cleanup(func() { m.Close() })
	srv := httptest.NewServer(NewHandler(m, qe, Options{RateLimit: 50, RateBurst: 3}))
	t.Cleanup(srv.Close)

	get := func() *http.Response {
		t.Helper()
		resp, err := http.Get(srv.URL + "/plugins")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}
	limited := false
	for i := 0; i < 20; i++ {
		resp := get()
		switch resp.StatusCode {
		case http.StatusOK:
		case http.StatusTooManyRequests:
			limited = true
			secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
			if err != nil || secs < 1 {
				t.Fatalf("Retry-After = %q", resp.Header.Get("Retry-After"))
			}
		default:
			t.Fatalf("status = %d", resp.StatusCode)
		}
	}
	if !limited {
		t.Fatal("burst of 20 requests against burst=3 never rate-limited")
	}
	// Refill admits the client again.
	time.Sleep(60 * time.Millisecond)
	if resp := get(); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-refill status = %d", resp.StatusCode)
	}
}

// TestRateLimitUnconfigured pins the default: no Options means no
// throttle, arbitrary bursts pass.
func TestRateLimitUnconfigured(t *testing.T) {
	srv, _ := newTestServer(t)
	for i := 0; i < 50; i++ {
		if code := getJSON(t, srv.URL+"/plugins", nil); code != 200 {
			t.Fatalf("request %d status = %d", i, code)
		}
	}
}
