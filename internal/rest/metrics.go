package rest

import (
	"net/http"
	"time"

	"github.com/dcdb/wintermute/internal/store"
	"github.com/dcdb/wintermute/internal/telemetry"
)

// restMetrics instruments the serving tier. Always non-nil on an API;
// without a registry the metrics are unattached, so handlers stay
// unconditional.
type restMetrics struct {
	requests  *telemetry.CounterVec   // dcdb_http_requests_total{route}
	latency   *telemetry.HistogramVec // dcdb_http_request_seconds{route}
	inflight  *telemetry.Gauge        // requests currently being served
	throttled *telemetry.Counter      // 429s from the rate limiter

	// Per-status-class response counters, resolved once so the request
	// path never touches the vec's child map.
	c2xx, c3xx, c4xx, c5xx *telemetry.Counter
}

func newRESTMetrics(reg *telemetry.Registry) *restMetrics {
	responses := reg.NewCounterVec("dcdb_http_responses_total",
		"HTTP responses by status class.", "class")
	return &restMetrics{
		requests: reg.NewCounterVec("dcdb_http_requests_total",
			"HTTP requests by route.", "route"),
		latency: reg.NewHistogramVec("dcdb_http_request_seconds",
			"HTTP request latency by route.",
			telemetry.DefDurationBuckets, "route"),
		inflight: reg.Gauge("dcdb_http_inflight_requests",
			"Requests currently being served."),
		throttled: reg.Counter("dcdb_http_throttled_total",
			"Requests rejected by the rate limiter (HTTP 429)."),
		c2xx: responses.With("2xx"),
		c3xx: responses.With("3xx"),
		c4xx: responses.With("4xx"),
		c5xx: responses.With("5xx"),
	}
}

// classCounter maps an HTTP status to its response-class counter.
func (m *restMetrics) classCounter(status int) *telemetry.Counter {
	switch {
	case status >= 500:
		return m.c5xx
	case status >= 400:
		return m.c4xx
	case status >= 300:
		return m.c3xx
	default:
		return m.c2xx
	}
}

// statusWriter captures the response status for the per-class counters
// and the slow-query log. It forwards Flush so streamed responses keep
// their chunked behavior through the wrapper.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrumented wraps one route handler with the serving-tier telemetry:
// per-route request counter and latency histogram, the in-flight gauge,
// response-class counters, a request-scoped trace (returned to the
// client as X-Trace-Id and threaded through the query path via the
// request context) and the slow-query log. The per-route metric
// children are resolved here, once, at handler-wiring time.
func (a *API) instrumented(route string, h http.HandlerFunc) http.HandlerFunc {
	requests := a.mx.requests.With(route)
	latency := a.mx.latency.With(route)
	return func(w http.ResponseWriter, r *http.Request) {
		requests.Inc()
		a.mx.inflight.Add(1)
		defer a.mx.inflight.Add(-1)
		start := time.Now()
		tr := telemetry.NewTrace()
		if id := tr.ID(); id != "" {
			w.Header().Set("X-Trace-Id", id)
		}
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}

		// Attribute storage chunk decodes to this request by sampling the
		// backend's decode counter around the handler. Concurrent requests
		// share the counter, so the attribution is an upper bound — which
		// is the useful direction for a slow-query log.
		var sp store.DecodeStatsProvider
		var decodesBefore uint64
		if backend := a.qe.Store(); backend != nil {
			if p, ok := backend.(store.DecodeStatsProvider); ok {
				sp = p
				decodesBefore = sp.ChunksDecoded()
			}
		}

		h(sw, r.WithContext(telemetry.WithTrace(r.Context(), tr)))

		if sp != nil {
			tr.AddChunksDecoded(sp.ChunksDecoded() - decodesBefore)
		}
		dur := time.Since(start)
		latency.Observe(dur.Seconds())
		a.mx.classCounter(sw.status).Inc()
		a.slow.Record(tr, route, sw.status, dur)
	}
}

// metrics serves GET /metrics: the Prometheus text exposition of the
// registry handed to NewHandler.
func (a *API) metrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", telemetry.ContentType)
	_ = a.reg.WritePrometheus(w)
}
