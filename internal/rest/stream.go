package rest

import (
	"bufio"
	"encoding/json"
	"net/http"
	"strconv"
)

// streamFlushEvery is the element interval between explicit flushes of
// a streamed response: large Range/wildcard answers leave the process
// in chunks as they are computed instead of materializing one giant
// response buffer.
const streamFlushEvery = 256

// jsonStream writes one JSON response incrementally: structural tokens
// go out raw, values through the standard encoder, and every
// streamFlushEvery elements the buffer is pushed to the client (chunked
// transfer — the status line is long gone by then, which is why every
// request validation error must be raised before the stream starts).
type jsonStream struct {
	w  http.ResponseWriter
	bw *bufio.Writer
	n  int
}

// startStream opens a streamed JSON response with the given status.
func startStream(w http.ResponseWriter, status int) *jsonStream {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	return &jsonStream{w: w, bw: bufio.NewWriterSize(w, 8<<10)}
}

// raw emits structural JSON (braces, brackets, pre-escaped field names).
func (s *jsonStream) raw(tok string) { s.bw.WriteString(tok) }

// value emits one JSON-encoded value.
func (s *jsonStream) value(v any) {
	b, err := json.Marshal(v)
	if err != nil {
		// Unreachable for the plain structs streamed here; keep the
		// document well-formed regardless.
		b = []byte("null")
	}
	s.bw.Write(b)
}

// int64 emits one integer without the reflection round-trip.
func (s *jsonStream) int64(v int64) {
	s.bw.WriteString(strconv.FormatInt(v, 10))
}

// element emits one array element, comma-separating after the first and
// flushing the chunk window as it fills. i is the element's index.
func (s *jsonStream) element(i int, v any) {
	if i > 0 {
		s.bw.WriteByte(',')
	}
	s.value(v)
	s.n++
	if s.n%streamFlushEvery == 0 {
		s.flush()
	}
}

// flush pushes buffered bytes to the client immediately.
func (s *jsonStream) flush() {
	s.bw.Flush()
	if f, ok := s.w.(http.Flusher); ok {
		f.Flush()
	}
}

// done terminates the response (trailing newline matching writeJSON's
// encoder) and flushes the final chunk.
func (s *jsonStream) done() {
	s.bw.WriteByte('\n')
	s.bw.Flush()
}
