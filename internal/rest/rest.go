// Package rest implements the RESTful control and query API that DCDB
// exposes on every component (paper §IV-A, §V-A): plugin and operator
// introspection, operator life-cycle control, on-demand computation
// triggers, sensor discovery and cache/store queries.
package rest

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"github.com/dcdb/wintermute/internal/core"
	"github.com/dcdb/wintermute/internal/sensor"
	"github.com/dcdb/wintermute/internal/store"
)

// API wraps a Wintermute manager and query engine with HTTP handlers.
type API struct {
	m  *core.Manager
	qe *core.QueryEngine
}

// NewHandler builds the HTTP handler tree for one DCDB component.
func NewHandler(m *core.Manager, qe *core.QueryEngine) http.Handler {
	api := &API{m: m, qe: qe}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /plugins", api.plugins)
	mux.HandleFunc("GET /status", api.status)
	mux.HandleFunc("GET /storage", api.storage)
	mux.HandleFunc("GET /operators", api.operators)
	mux.HandleFunc("GET /units", api.units)
	mux.HandleFunc("GET /sensors", api.sensors)
	mux.HandleFunc("GET /average", api.average)
	mux.HandleFunc("GET /query", api.query)
	mux.HandleFunc("POST /operators/start", api.start)
	mux.HandleFunc("POST /operators/stop", api.stop)
	mux.HandleFunc("POST /compute", api.compute)
	mux.HandleFunc("POST /plugins/load", api.load)
	mux.HandleFunc("POST /plugins/unload", api.unload)
	return mux
}

// Server is a running REST endpoint.
type Server struct {
	http net.Listener
	srv  *http.Server
}

// Serve starts the API on addr (e.g. "127.0.0.1:0").
func Serve(addr string, m *core.Manager, qe *core.QueryEngine) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: NewHandler(m, qe)}
	go func() { _ = srv.Serve(ln) }()
	return &Server{http: ln, srv: srv}, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.http.Addr().String() }

// Close shuts the server down.
func (s *Server) Close() error { return s.srv.Close() }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (a *API) plugins(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"plugins": core.RegisteredPlugins()})
}

func (a *API) operators(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, a.m.Status())
}

// status reports the component's Wintermute health in one response: the
// tick scheduler's pool state plus every operator's snapshot, including
// per-operator last tick durations.
func (a *API) status(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"scheduler": a.m.SchedulerStats(),
		"operators": a.m.Status(),
	})
}

// storage reports the component's Storage Backend: its kind, series and
// reading counts and — for the persistent tsdb engine — the on-disk
// footprint and WAL/segment state. Cache-only components (Pushers)
// answer with kind "none".
func (a *API) storage(w http.ResponseWriter, r *http.Request) {
	backend := a.qe.Store()
	if backend == nil {
		writeJSON(w, http.StatusOK, store.BackendStats{Kind: "none"})
		return
	}
	if sp, ok := backend.(store.StatsProvider); ok {
		writeJSON(w, http.StatusOK, sp.Stats())
		return
	}
	// A backend without native statistics still has the Backend surface:
	// derive the counts.
	st := store.BackendStats{Kind: "unknown"}
	for _, topic := range backend.Topics() {
		st.Topics++
		st.TotalReadings += backend.Count(topic)
	}
	writeJSON(w, http.StatusOK, st)
}

func (a *API) units(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("operator")
	op, ok := a.m.Operator(name)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown operator %q", name))
		return
	}
	type unitJSON struct {
		Name    sensor.Topic   `json:"name"`
		Inputs  []sensor.Topic `json:"inputs"`
		Outputs []sensor.Topic `json:"outputs"`
	}
	var out []unitJSON
	for _, u := range op.Units() {
		out = append(out, unitJSON{Name: u.Name, Inputs: u.Inputs, Outputs: u.Outputs})
	}
	writeJSON(w, http.StatusOK, out)
}

func (a *API) sensors(w http.ResponseWriter, r *http.Request) {
	nav := a.qe.Navigator()
	prefix := r.URL.Query().Get("prefix")
	var topics []sensor.Topic
	if prefix == "" {
		topics = nav.AllSensors()
	} else {
		topics = nav.SensorsBelow(sensor.Topic(prefix))
	}
	writeJSON(w, http.StatusOK, map[string]any{"sensors": topics, "count": len(topics)})
}

func (a *API) average(w http.ResponseWriter, r *http.Request) {
	topic := sensor.Topic(r.URL.Query().Get("sensor"))
	window, err := parseWindow(r.URL.Query().Get("window"), 60*time.Second)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	avg, ok := a.qe.Average(topic, window)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no data for %q", topic))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"sensor": topic, "window": window.String(), "average": avg})
}

// query serves GET /query. Without op it returns raw readings of one
// sensor (relative, absolute or latest mode). With op (avg, min, max,
// sum, count) it evaluates the aggregate over the requested window
// through the Query Engine's streaming aggregation path — adding
// step=<duration> buckets the window into a downsampled series — and
// the sensor parameter may end in the '#' multi-level wildcard
// (e.g. /rack0/#) to fan the aggregation out over every sensor below
// that prefix.
func (a *API) query(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	if q.Get("op") != "" {
		a.queryAggregate(w, r)
		return
	}
	topic := sensor.Topic(q.Get("sensor"))
	var readings []sensor.Reading
	switch {
	case q.Get("lookback") != "":
		lookback, err := parseWindow(q.Get("lookback"), 0)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		readings = a.qe.QueryRelative(topic, lookback, nil)
	case q.Get("from") != "" || q.Get("to") != "":
		from, err1 := strconv.ParseInt(q.Get("from"), 10, 64)
		to, err2 := strconv.ParseInt(q.Get("to"), 10, 64)
		if err1 != nil || err2 != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("from/to must be nanosecond timestamps"))
			return
		}
		readings = a.qe.QueryAbsolute(topic, from, to, nil)
	default:
		if latest, ok := a.qe.Latest(topic); ok {
			readings = []sensor.Reading{latest}
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"sensor": topic, "readings": readings, "count": len(readings)})
}

// maxQueryBuckets bounds a downsampling response across the whole
// request: window/step buckets times the number of fanned-out sensors,
// keeping one request (a '#' wildcard over a dense history, say) from
// asking the engine — and the JSON encoder — for millions of buckets.
const maxQueryBuckets = 100_000

// aggSensorJSON is one sensor's slot in an aggregation response. Value
// is absent when the sensor had no readings in the window; Buckets is
// only present on step (downsampling) queries.
type aggSensorJSON struct {
	Sensor  sensor.Topic    `json:"sensor"`
	Count   int64           `json:"count"`
	Value   *float64        `json:"value,omitempty"`
	Buckets []aggBucketJSON `json:"buckets,omitempty"`
}

// aggBucketJSON is one downsampling bucket: its start timestamp, the
// reading count and the operator evaluated over the bucket.
type aggBucketJSON struct {
	Start int64   `json:"start"`
	Count int64   `json:"count"`
	Value float64 `json:"value"`
}

// queryAggregate answers GET /query with op set.
func (a *API) queryAggregate(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	op, err := store.ParseAggOp(q.Get("op"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	topics, err := a.expandTopics(q.Get("sensor"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}

	resp := map[string]any{"op": op.String()}
	val := func(res store.AggResult) *float64 {
		if v, ok := res.Value(op); ok {
			return &v
		}
		return nil
	}

	// Relative window: one lookback aggregate per sensor, each anchored
	// at that sensor's latest reading. Bucketing needs an absolute
	// window to align to.
	if lb := q.Get("lookback"); lb != "" {
		if q.Get("step") != "" {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("step requires an absolute start/end window"))
			return
		}
		lookback, err := parseWindow(lb, 0)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		resp["lookback"] = lookback.String()
		sensors := make([]aggSensorJSON, 0, len(topics))
		var combined store.AggResult
		for _, tp := range topics {
			res := a.qe.AggregateRelative(tp, lookback)
			combined.Merge(res)
			sensors = append(sensors, aggSensorJSON{Sensor: tp, Count: res.Count, Value: val(res)})
		}
		resp["sensors"] = sensors
		resp["combined"] = aggSensorJSON{Sensor: "", Count: combined.Count, Value: val(combined)}
		writeJSON(w, http.StatusOK, resp)
		return
	}

	start, err1 := strconv.ParseInt(firstOf(q, "start", "from"), 10, 64)
	end, err2 := strconv.ParseInt(firstOf(q, "end", "to"), 10, 64)
	if err1 != nil || err2 != nil {
		writeErr(w, http.StatusBadRequest,
			fmt.Errorf("aggregation needs start/end nanosecond timestamps or a lookback duration"))
		return
	}
	resp["start"], resp["end"] = start, end

	var step int64
	if s := q.Get("step"); s != "" {
		d, err := parseWindow(s, 0)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		step = int64(d)
		if step <= 0 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("step must be positive"))
			return
		}
		if end >= start && ((end-start)/step+1) > maxQueryBuckets/int64(len(topics)) {
			writeErr(w, http.StatusBadRequest,
				fmt.Errorf("window/step yields more than %d buckets across %d sensors",
					maxQueryBuckets, len(topics)))
			return
		}
		resp["step"] = d.String()
	}

	sensors := make([]aggSensorJSON, 0, len(topics))
	var combined store.AggResult
	var buckets []store.Bucket
	for _, tp := range topics {
		if step > 0 {
			buckets = a.qe.Downsample(tp, start, end, step, buckets[:0])
			out := make([]aggBucketJSON, 0, len(buckets))
			var total store.AggResult
			for _, b := range buckets {
				v, _ := b.Value(op)
				out = append(out, aggBucketJSON{Start: b.Start, Count: b.Count, Value: v})
				total.Merge(b.AggResult)
			}
			combined.Merge(total)
			sensors = append(sensors, aggSensorJSON{Sensor: tp, Count: total.Count, Buckets: out})
			continue
		}
		res := a.qe.AggregateAbsolute(tp, start, end)
		combined.Merge(res)
		sensors = append(sensors, aggSensorJSON{Sensor: tp, Count: res.Count, Value: val(res)})
	}
	resp["sensors"] = sensors
	resp["combined"] = aggSensorJSON{Sensor: "", Count: combined.Count, Value: val(combined)}
	writeJSON(w, http.StatusOK, resp)
}

// expandTopics resolves the sensor parameter of an aggregation query:
// a plain topic names itself; a topic ending in the '#' multi-level
// wildcard (MQTT-style, as in the push transport) expands to every
// sensor at or below the prefix, resolved through the navigator.
func (a *API) expandTopics(spec string) ([]sensor.Topic, error) {
	if spec == "" {
		return nil, fmt.Errorf("missing sensor parameter")
	}
	if !strings.HasSuffix(spec, "#") {
		return []sensor.Topic{sensor.Topic(spec)}, nil
	}
	prefix := strings.TrimSuffix(strings.TrimSuffix(spec, "#"), "/")
	nav := a.qe.Navigator()
	var topics []sensor.Topic
	if prefix == "" {
		topics = nav.AllSensors()
	} else {
		topics = nav.SensorsBelow(sensor.Topic(prefix))
	}
	if len(topics) == 0 {
		return nil, fmt.Errorf("no sensors match %q", spec)
	}
	return topics, nil
}

// firstOf returns the first non-empty value among the named query
// parameters (start/end accept from/to as aliases).
func firstOf(q url.Values, names ...string) string {
	for _, n := range names {
		if v := q.Get(n); v != "" {
			return v
		}
	}
	return ""
}

func (a *API) start(w http.ResponseWriter, r *http.Request) {
	if err := a.m.StartOperator(r.URL.Query().Get("operator")); err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "started"})
}

func (a *API) stop(w http.ResponseWriter, r *http.Request) {
	if err := a.m.StopOperator(r.URL.Query().Get("operator")); err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "stopped"})
}

func (a *API) compute(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	outs, err := a.m.OnDemand(q.Get("operator"), sensor.Topic(q.Get("unit")), time.Now())
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	type outJSON struct {
		Topic sensor.Topic `json:"topic"`
		Value float64      `json:"value"`
		Time  int64        `json:"time"`
	}
	res := make([]outJSON, 0, len(outs))
	for _, o := range outs {
		res = append(res, outJSON{Topic: o.Topic, Value: o.Reading.Value, Time: o.Reading.Time})
	}
	writeJSON(w, http.StatusOK, res)
}

func (a *API) load(w http.ResponseWriter, r *http.Request) {
	plugin := r.URL.Query().Get("plugin")
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err := a.m.LoadPlugin(plugin, body); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "loaded"})
}

func (a *API) unload(w http.ResponseWriter, r *http.Request) {
	n := a.m.UnloadPlugin(r.URL.Query().Get("plugin"))
	writeJSON(w, http.StatusOK, map[string]any{"status": "unloaded", "operators": n})
}

func parseWindow(s string, def time.Duration) (time.Duration, error) {
	if s == "" {
		if def > 0 {
			return def, nil
		}
		return 0, fmt.Errorf("missing duration parameter")
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("bad duration %q: %w", s, err)
	}
	if d < 0 {
		return 0, fmt.Errorf("negative duration %q", s)
	}
	return d, nil
}
